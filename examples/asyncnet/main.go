// Asyncnet: the 2-state MIS process on the asynchronous beeping medium.
//
// The paper's synchronous model advances every node in lockstep rounds. A
// real radio network has no global round clock: every node runs on its own
// oscillator, slots drift apart, and a beep is heard by whoever happens to
// be listening while it is on the air. This walkthrough runs the SAME
// per-node program on both media and shows three things:
//
//  1. at drift bound ρ = 1 the asynchronous medium IS the synchronous one —
//     identical rounds, identical MIS, identical coin usage;
//  2. under real drift (ρ > 1, three different drift models) the process
//     still stabilizes to a valid MIS in a comparable number of rounds;
//  3. clock skew grows with drift while stabilization barely moves — the
//     weak-communication claim survives asynchrony.
//
// Run with: go run ./examples/asyncnet
package main

import (
	"fmt"
	"log"

	"ssmis"
)

func main() {
	// A sensor-field-like random graph: 1500 nodes, average degree ~8.
	g := ssmis.GnpAvgDegree(1500, 8, 21)
	const seed = 42
	fmt.Printf("graph: %d vertices, %d edges, max degree %d\n\n", g.N(), g.M(), g.MaxDegree())

	// Step 1 — the synchronous baseline: the goroutine-per-node beeping
	// runtime, lockstep rounds.
	sync := ssmis.NewBeepingMIS(g, seed, nil)
	syncRounds, ok := sync.Run(5000)
	if !ok {
		log.Fatal("synchronous run did not stabilize")
	}
	fmt.Printf("synchronous beeping:        %4d rounds, %5d random bits\n",
		syncRounds, sync.RandomBits())

	// Step 2 — the asynchronous medium at ρ = 1. Slots cannot drift, so the
	// execution must collapse to the synchronous one coin-for-coin.
	lock := ssmis.NewAsyncMIS(g, seed, ssmis.BoundedDrift(1), nil)
	lockRounds, ok := lock.Run(5000)
	if !ok {
		log.Fatal("async ρ=1 run did not stabilize")
	}
	same := lockRounds == syncRounds && lock.RandomBits() == sync.RandomBits()
	for u := 0; same && u < g.N(); u++ {
		same = lock.Black(u) == sync.Black(u)
	}
	fmt.Printf("async, ρ=1 (lockstep):      %4d rounds, %5d random bits — identical to synchronous: %v\n\n",
		lockRounds, lock.RandomBits(), same)
	sync.Close()

	// Step 3 — real asynchrony: three drift models at growing ρ. "rounds"
	// are virtual rounds (the slowest clock's completed slots), so the
	// numbers are comparable to the synchronous count; "skew" is how many
	// slots the fastest clock ran ahead of the slowest.
	fmt.Println("drift model    ρ     rounds  skew  MIS ok")
	for _, row := range []struct {
		name  string
		drift ssmis.Drift
	}{
		{"bounded", ssmis.BoundedDrift(1.5)},
		{"bounded", ssmis.BoundedDrift(3)},
		{"eventual-sync", ssmis.EventualSyncDrift(3, 16)},
		{"adversarial", ssmis.AdversarialDrift(2)},
	} {
		m := ssmis.NewAsyncMIS(g, seed, row.drift, nil)
		rounds, ok := m.Run(5000)
		if !ok {
			log.Fatalf("%s ρ=%g did not stabilize", row.name, row.drift.Rho())
		}
		set := make([]int, 0, g.N())
		for u := 0; u < g.N(); u++ {
			if m.Black(u) {
				set = append(set, u)
			}
		}
		fmt.Printf("%-13s %4.1f  %6d  %4d  %v\n",
			row.name, row.drift.Rho(), rounds, m.Engine().MaxSkew(),
			ssmis.VerifyMIS(g, set) == nil)
	}
	fmt.Println("\nthe process never sees the medium: same Emit/Deliver program, drifting clocks,")
	fmt.Println("interval-overlap hearing — and stabilization stays in the same ballpark.")
}

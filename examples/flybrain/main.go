// Flybrain: the sensory-organ-precursor (SOP) selection scenario. During
// the development of the fly's nervous system, cells on an epithelium
// self-select into a sparse set of SOPs such that every cell either becomes
// an SOP or touches one — Afek et al. (Science 2011) showed this is exactly
// distributed MIS, solved by cells that can only emit or sense a Delta
// signal (a beep). The paper's 3-state process fits the biological
// constraints even better than the original model: constant memory per
// cell, one coin per round, and no collision detection.
//
// We model the epithelium as a torus-like patch with local neighborhoods
// and run the 3-state process in the stone-age runtime (one goroutine per
// cell, two signalling channels).
//
// Run with: go run ./examples/flybrain
package main

import (
	"fmt"
	"log"
	"strings"

	"ssmis"
)

func main() {
	const side = 30 // 30×30 cell patch
	// Each cell touches its 8 surrounding cells (Moore neighborhood, torus
	// wraparound) — a denser contact graph than the 4-neighbor grid.
	var edges [][2]int
	id := func(r, c int) int { return ((r+side)%side)*side + (c+side)%side }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			u := id(r, c)
			for _, d := range [][2]int{{0, 1}, {1, 0}, {1, 1}, {1, -1}} {
				v := id(r+d[0], c+d[1])
				if u < v {
					edges = append(edges, [2]int{u, v})
				} else {
					edges = append(edges, [2]int{v, u})
				}
			}
		}
	}
	g := ssmis.FromEdges(side*side, edges)
	fmt.Printf("epithelium: %d cells, %d contacts (8-neighbor torus)\n", g.N(), g.M())

	cells := ssmis.NewStoneAgeThreeState(g, 11)
	defer cells.Close()
	rounds, ok := cells.Run(100000)
	if !ok {
		log.Fatal("development did not converge")
	}

	sops := 0
	for u := 0; u < g.N(); u++ {
		if cells.Black(u) {
			sops++
		}
	}
	if err := ssmis.VerifyMIS(g, blackSet(cells.Black, g.N())); err != nil {
		log.Fatalf("SOP pattern invalid: %v", err)
	}
	fmt.Printf("SOP selection converged in %d rounds: %d SOPs among %d cells (%.1f%%)\n",
		rounds, sops, g.N(), 100*float64(sops)/float64(g.N()))

	// Render the patch: '*' SOP, '.' epithelial cell.
	var b strings.Builder
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if cells.Black(id(r, c)) {
				b.WriteByte('*')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Print(b.String())
	fmt.Println("every '.' touches a '*', no two '*' touch: a maximal independent set")
}

func blackSet(pred func(int) bool, n int) []int {
	var out []int
	for u := 0; u < n; u++ {
		if pred(u) {
			out = append(out, u)
		}
	}
	return out
}

// Sensornet: clusterhead election in a wireless sensor field using the
// beeping-model runtime — every sensor is a goroutine that can only beep or
// listen, exactly the communication the paper's 2-state process needs
// (sender collision detection included).
//
// Sensors are scattered on the unit square; two sensors hear each other
// within the radio radius. An MIS of the resulting disk graph is a classic
// clusterhead assignment: no two heads interfere, every sensor has a head in
// range.
//
// Run with: go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	"ssmis"
)

// lcg is a tiny deterministic generator for node placement (the protocol's
// randomness is separate, inside the ssmis runtime).
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(*l>>11) / float64(1<<53)
}

func main() {
	const (
		sensors = 600
		radius  = 0.07
	)
	// Scatter sensors and connect pairs within radio range.
	rng := lcg(2024)
	xs := make([]float64, sensors)
	ys := make([]float64, sensors)
	for i := range xs {
		xs[i], ys[i] = rng.next(), rng.next()
	}
	var edges [][2]int
	for i := 0; i < sensors; i++ {
		for j := i + 1; j < sensors; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if dx*dx+dy*dy <= radius*radius {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	g := ssmis.FromEdges(sensors, edges)
	fmt.Printf("sensor field: %d sensors, %d radio links, max degree %d\n",
		g.N(), g.M(), g.MaxDegree())

	// Start one goroutine per sensor under the beeping medium. nil initial
	// colors = arbitrary (random) boot state: sensors need no coordinated
	// initialization, no IDs, and no knowledge of the network.
	net := ssmis.NewBeepingMIS(g, 99, nil)
	defer net.Close()
	rounds, ok := net.Run(100000)
	if !ok {
		log.Fatal("network did not stabilize")
	}

	heads := 0
	for u := 0; u < g.N(); u++ {
		if net.Black(u) {
			heads++
		}
	}
	if err := ssmis.VerifyMIS(g, collect(net.Black, g.N())); err != nil {
		log.Fatalf("clusterhead set invalid: %v", err)
	}
	fmt.Printf("stabilized after %d beeping rounds\n", rounds)
	fmt.Printf("%d clusterheads elected (%.1f%% of sensors); every sensor is a head or hears one\n",
		heads, 100*float64(heads)/float64(sensors))
	fmt.Printf("protocol cost: %d random bits total, 1 bit of state per sensor\n", net.RandomBits())
}

func collect(pred func(int) bool, n int) []int {
	var out []int
	for u := 0; u < n; u++ {
		if pred(u) {
			out = append(out, u)
		}
	}
	return out
}

// Quickstart: compute a maximal independent set on a random graph with the
// 2-state self-stabilizing process, verify it, and print what it cost.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ssmis"
)

func main() {
	// An Erdős–Rényi graph on 2000 vertices with average degree ~10.
	g := ssmis.GnpAvgDegree(2000, 10, 7)
	fmt.Printf("graph: %d vertices, %d edges, max degree %d\n", g.N(), g.M(), g.MaxDegree())

	// The 2-state process: every vertex holds ONE bit of state and uses ONE
	// random bit per active round. Initial states are arbitrary — here, the
	// adversarial all-black initialization.
	p := ssmis.NewTwoState(g, ssmis.WithSeed(42), ssmis.WithInit(ssmis.InitAllBlack))
	res := ssmis.Run(p, 0)
	if !res.Stabilized {
		log.Fatal("process did not stabilize (round cap hit)")
	}

	set := ssmis.BlackSet(p)
	if err := ssmis.VerifyMIS(g, set); err != nil {
		log.Fatalf("result is not an MIS: %v", err)
	}
	fmt.Printf("stabilized in %d rounds from the all-black state\n", res.Rounds)
	fmt.Printf("MIS size: %d vertices (%.1f%% of the graph)\n",
		len(set), 100*float64(len(set))/float64(g.N()))
	fmt.Printf("total randomness: %d bits (%.3f bits per vertex per round)\n",
		res.RandomBits, float64(res.RandomBits)/float64(g.N())/float64(res.Rounds))

	// The same process, same seed, re-run — runs are pure functions of
	// (graph, seed, init), so this reproduces exactly.
	again := ssmis.Run(ssmis.NewTwoState(g, ssmis.WithSeed(42), ssmis.WithInit(ssmis.InitAllBlack)), 0)
	fmt.Printf("reproducibility: second run stabilized in %d rounds (same: %v)\n",
		again.Rounds, again.Rounds == res.Rounds)
}

// Churn: a long-lived network whose topology keeps changing. The process
// never restarts — links come and go, vertex states persist, and
// self-stabilization continuously repairs the MIS. Midway the execution is
// checkpointed to JSON and restored, continuing bit-for-bit: long-running
// deployments can survive process restarts with no protocol support.
//
// Run with: go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"ssmis"
)

func main() {
	g := ssmis.GnpAvgDegree(800, 10, 3)
	fmt.Printf("initial network: %d vertices, %d edges\n", g.N(), g.M())

	p := ssmis.NewTwoState(g, ssmis.WithSeed(17))
	res := ssmis.Run(p, 0)
	if !res.Stabilized {
		log.Fatal("initial stabilization failed")
	}
	fmt.Printf("stabilized in %d rounds; MIS size %d\n\n", res.Rounds, len(ssmis.BlackSet(p)))

	// Epoch loop: every epoch, a batch of links flips; the process keeps
	// its states and absorbs the change.
	const epochs = 8
	totalRecovery := 0
	for e := 1; e <= epochs; e++ {
		var toggles [][2]int
		g, toggles = ssmis.Churn(g, 12, uint64(100+e))
		p.Rebind(g)
		before := p.Round()
		res = ssmis.Run(p, 0)
		if !res.Stabilized {
			log.Fatalf("epoch %d: did not re-stabilize", e)
		}
		if err := ssmis.VerifyMIS(g, ssmis.BlackSet(p)); err != nil {
			log.Fatalf("epoch %d: %v", e, err)
		}
		rec := res.Rounds - before
		totalRecovery += rec
		fmt.Printf("epoch %d: %d links flipped (e.g. %v), re-stabilized in %d rounds, MIS size %d\n",
			e, len(toggles), toggles[0], rec, len(ssmis.BlackSet(p)))

		if e == epochs/2 {
			// Mid-life checkpoint: serialize, drop the process, restore.
			cp, err := p.Checkpoint()
			if err != nil {
				log.Fatal(err)
			}
			blob, err := cp.Encode()
			if err != nil {
				log.Fatal(err)
			}
			decoded, err := ssmis.DecodeCheckpoint(blob)
			if err != nil {
				log.Fatal(err)
			}
			p, err = ssmis.RestoreTwoState(g, decoded)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  ↻ checkpointed (%d bytes of JSON) and restored at round %d\n",
				len(blob), p.Round())
		}
	}
	fmt.Printf("\n%d epochs of churn absorbed; mean recovery %.1f rounds (fresh start costs ~%d)\n",
		epochs, float64(totalRecovery)/epochs, res.Rounds-totalRecovery)
}

// Faultinjection: the self-stabilization demo. A network stabilizes to an
// MIS, an adversary then corrupts a block of vertex states (a "rebooted
// rack" all coming up black), and the process heals without any reset,
// coordination, or even awareness that a fault occurred — the states ARE
// the protocol.
//
// Run with: go run ./examples/faultinjection
package main

import (
	"fmt"
	"log"

	"ssmis"
)

func main() {
	g := ssmis.GnpAvgDegree(1500, 12, 5)
	fmt.Printf("network: %d vertices, %d edges\n", g.N(), g.M())

	p := ssmis.NewTwoState(g, ssmis.WithSeed(31))
	res := ssmis.Run(p, 0)
	if !res.Stabilized {
		log.Fatal("initial stabilization failed")
	}
	originalMIS := ssmis.BlackSet(p)
	fmt.Printf("phase 1: stabilized in %d rounds; MIS size %d\n", res.Rounds, len(originalMIS))

	// Fault: vertices 100..299 all reboot into the black state, and the same
	// range additionally loses its previous colors — a correlated regional
	// corruption that breaks independence *and* maximality around the block.
	corrupt := p.BlackMask()
	for u := 100; u < 300; u++ {
		corrupt[u] = true
	}
	p.CorruptAll(corrupt)
	fmt.Printf("phase 2: corrupted 200 vertices (all black); process now unstable: %v\n",
		!p.Stabilized())

	before := p.Round()
	res = ssmis.Run(p, 0)
	if !res.Stabilized {
		log.Fatal("recovery failed")
	}
	healedMIS := ssmis.BlackSet(p)
	if err := ssmis.VerifyMIS(g, healedMIS); err != nil {
		log.Fatalf("healed configuration invalid: %v", err)
	}
	fmt.Printf("phase 3: healed in %d rounds (vs %d for a cold start); new MIS size %d\n",
		res.Rounds-before, before, len(healedMIS))

	// How much of the old MIS survived? Locality of repair in action.
	oldSet := make(map[int]bool, len(originalMIS))
	for _, u := range originalMIS {
		oldSet[u] = true
	}
	kept := 0
	for _, u := range healedMIS {
		if oldSet[u] {
			kept++
		}
	}
	fmt.Printf("stability of the answer: %d/%d original MIS vertices kept (repair is local)\n",
		kept, len(originalMIS))
}

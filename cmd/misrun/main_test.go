package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"

	"ssmis/internal/graph"
	"ssmis/internal/mis"
)

// TestNegativeWorkersRejected drives the real flag path: the test binary
// re-executes itself with MISRUN_ARGS set, and the child runs run() on
// those arguments. A negative -workers must fail loudly at flag parsing
// (exit 2) instead of being silently coerced to GOMAXPROCS by the pool.
func TestNegativeWorkersRejected(t *testing.T) {
	if args := os.Getenv("MISRUN_ARGS"); args != "" {
		os.Args = append([]string{"misrun"}, strings.Fields(args)...)
		os.Exit(run())
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestNegativeWorkersRejected")
	cmd.Env = append(os.Environ(), "MISRUN_ARGS=-graph clique -n 8 -workers -3")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error for -workers -3, got err=%v output=%q", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("exit code = %d, want 2; output: %q", code, out)
	}
	if !strings.Contains(string(out), "-workers must be >= 0") {
		t.Fatalf("missing diagnostic in output: %q", out)
	}
}

func TestBuildGraphFamilies(t *testing.T) {
	cases := []struct {
		kind string
		n    int
	}{
		{"gnp", 100}, {"clique", 50}, {"path", 30}, {"cycle", 30},
		{"star", 30}, {"tree", 100}, {"grid", 100}, {"cliques", 100},
		{"regular", 100},
	}
	for _, c := range cases {
		g, err := buildGraph(c.kind, "", c.n, 0.05, 4, 1)
		if err != nil {
			t.Errorf("%s: %v", c.kind, err)
			continue
		}
		if g.N() == 0 {
			t.Errorf("%s: empty graph", c.kind)
		}
	}
	if _, err := buildGraph("nope", "", 10, 0.1, 2, 1); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := buildGraph("file", "", 10, 0.1, 2, 1); err == nil {
		t.Error("file family without -in accepted")
	}
	if _, err := buildGraph("file", "/nonexistent/x", 10, 0.1, 2, 1); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildGraphRegularOddProduct(t *testing.T) {
	// n*d odd gets n bumped to keep the configuration model valid.
	g, err := buildGraph("regular", "", 101, 0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N()%2 != 0 && 3%2 != 0 && g.N()*3%2 != 0 {
		t.Fatal("odd n*d not fixed")
	}
}

func TestParseInit(t *testing.T) {
	for _, init := range mis.AllInits() {
		got, err := parseInit(init.String())
		if err != nil || got != init {
			t.Errorf("parseInit(%q) = %v, %v", init.String(), got, err)
		}
	}
	if _, err := parseInit("bogus"); err == nil {
		t.Error("bogus init accepted")
	}
}

func TestIsqrt(t *testing.T) {
	cases := map[int]int{1: 1, 3: 1, 4: 2, 99: 9, 100: 10, 101: 10}
	for n, want := range cases {
		if got := graph.ISqrt(n); got != want {
			t.Errorf("ISqrt(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRunTrialsSmoke(t *testing.T) {
	g, err := buildGraph("clique", "", 64, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rc := runTrials(g, "2state", mis.InitRandom, 1, 5, 100000, 2, 1); rc != 0 {
		t.Fatalf("runTrials returned %d", rc)
	}
	if rc := runTrials(g, "bogus", mis.InitRandom, 1, 5, 1000, 0, 0); rc != 2 {
		t.Fatalf("bogus process returned %d, want 2", rc)
	}
}

func TestRunDaemonSmoke(t *testing.T) {
	g, err := buildGraph("gnp", "", 200, 0.03, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, proc := range []string{"2state", "3state"} {
		if rc := runDaemon(g, proc, "central-random", mis.InitRandom, 1, 0, nil, "", 0); rc != 0 {
			t.Fatalf("%s under central-random returned %d", proc, rc)
		}
	}
	if rc := runDaemon(g, "3color", "central-random", mis.InitRandom, 1, 0, nil, "", 0); rc != 2 {
		t.Fatalf("3color daemon run returned %d, want 2", rc)
	}
	if rc := runDaemon(g, "2state", "bogus", mis.InitRandom, 1, 0, nil, "", 0); rc != 2 {
		t.Fatalf("bogus daemon returned %d, want 2", rc)
	}
}

// Command misrun executes one self-stabilizing MIS process on one graph and
// prints the outcome: rounds to stabilization, random bits consumed, and the
// MIS size, with optional per-round progress.
//
// Usage:
//
//	misrun -graph gnp -n 1000 -p 0.01 -proc 2state -seed 42 -progress
//
// Graphs: gnp, clique, path, cycle, star, tree, grid, cliques, regular, or
// file (-in <edge-list>). Processes: 2state, 3state, 3color. Engines: sim
// (default), node (the goroutine-per-node beeping/stone-age runtime).
// With -trials N, the seeds run on the work-stealing batch pool
// (-workers sizes it, -batch sets the scheduler chunk) sharing one graph
// build and per-worker engine scratch; the summary reports wall time and
// the exact seeds of failed runs.
//
// With -async the process (2state or 3state) runs on the asynchronous
// beeping medium: per-node clocks advanced by a drift model (-drift sets
// the bound ρ, -drift-model selects bounded|eventual-sync|adversarial,
// -gst the eventual-sync stabilization time in base slots). The execution
// is a pure function of the flags — replays are byte-identical, which the
// CI deterministic-replay smoke asserts:
//
//	misrun -graph gnp -n 300 -p 0.02 -proc 2state -seed 7 -async -drift 1.5
//
// Checkpointing (sim engine, single runs and -daemon runs): -checkpoint
// writes a versioned process snapshot (internal/snapshot envelope: format
// version, checksum, atomic write-rename) when the run exits, and every
// -checkpoint-every rounds (daemon steps under -daemon) mid-run; -resume
// restores one and continues the exact execution — same coins, same
// rounds, same daemon selections (stateful daemons' schedule history
// rides in the snapshot). Interrupt a run with -max-rounds, resume it,
// and the final line is byte-identical to the uninterrupted run:
//
//	misrun -graph gnp -n 500 -seed 3 -max-rounds 10 -checkpoint s.ckpt
//	misrun -graph gnp -n 500 -seed 3 -resume s.ckpt
//
// Truncated, corrupted, or version-skewed snapshot files are rejected
// loudly instead of resuming silently wrong.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ssmis/internal/async"
	"ssmis/internal/batch"
	"ssmis/internal/beeping"
	"ssmis/internal/engine"
	"ssmis/internal/experiment"
	"ssmis/internal/graph"
	"ssmis/internal/graphio"
	"ssmis/internal/mis"
	"ssmis/internal/sched"
	"ssmis/internal/snapshot"
	"ssmis/internal/stats"
	"ssmis/internal/stoneage"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

func newBeeping(g *graph.Graph, seed uint64) *beeping.MIS {
	return beeping.NewMIS(g, seed, nil)
}

func newStoneAge3S(g *graph.Graph, seed uint64) *stoneage.ThreeStateMIS {
	return stoneage.NewThreeStateMIS(g, seed, nil)
}

func newStoneAge3C(g *graph.Graph, seed uint64) *stoneage.ThreeColorMIS {
	return stoneage.NewThreeColorMIS(g, seed, nil, nil)
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		graphKind = flag.String("graph", "gnp", "graph family: gnp|clique|path|cycle|star|tree|grid|cliques|regular|file")
		inPath    = flag.String("in", "", "edge-list file to load when -graph file")
		n         = flag.Int("n", 1000, "number of vertices")
		p         = flag.Float64("p", 0.01, "edge probability (gnp) ")
		degree    = flag.Int("d", 8, "degree (regular)")
		procKind  = flag.String("proc", "2state", "process: 2state|3state|3color")
		seed      = flag.Uint64("seed", 1, "master seed")
		initKind  = flag.String("init", "random", "initialization: random|all-white|all-black|checkerboard|near-mis")
		maxRounds = flag.Int("max-rounds", 0, "round cap (0 = default); with -daemon this caps daemon steps, which are single-vertex moves under central daemons")
		progress  = flag.Bool("progress", false, "print per-round aggregates")
		engine    = flag.String("engine", "sim", "execution engine: sim|node")
		asyncMode = flag.Bool("async", false, "run on the asynchronous beeping medium with per-node clocks (2state/3state only)")
		drift     = flag.Float64("drift", 1, "clock-drift bound ρ >= 1 for -async (1 = lockstep)")
		driftName = flag.String("drift-model", "bounded", "drift model for -async: "+strings.Join(async.DriftNames(), "|"))
		gst       = flag.Int("gst", 64, "eventual-sync drift: base slots before clock rates synchronize")
		daemon    = flag.String("daemon", "", "schedule the process under a daemon: "+strings.Join(sched.DaemonNames(), "|")+" (2state/3state only)")
		trials    = flag.Int("trials", 1, "run this many seeds (seed, seed+1, ...) and print summary statistics")
		workers   = flag.Int("workers", 0, "worker pool size for -trials (0 = GOMAXPROCS)")
		chunk     = flag.Int("batch", 0, "seeds per scheduler chunk for -trials (0 = auto)")
		ckptPath  = flag.String("checkpoint", "", "write a resumable process snapshot here at exit (atomic write-rename)")
		ckptEvery = flag.Int("checkpoint-every", 0, "also snapshot every this many rounds (daemon steps with -daemon); 0 = only at exit")
		resumeStr = flag.String("resume", "", "resume the run from this process snapshot (sim engine; graph flags must rebuild the same graph)")
	)
	flag.Parse()

	// The engine validates WithWorkers < 0 loudly; the pool's 0 = GOMAXPROCS
	// convention must not swallow negative typos (-workers -3) silently.
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "misrun: -workers must be >= 0 (0 = GOMAXPROCS), got %d\n", *workers)
		return 2
	}

	g, err := buildGraph(*graphKind, *inPath, *n, *p, *degree, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "misrun:", err)
		return 2
	}
	limit := *maxRounds
	if limit <= 0 {
		limit = 8 * mis.DefaultRoundCap(g.N())
	}

	if (*ckptPath != "" || *resumeStr != "") && (*asyncMode || *engine == "node" || *trials > 1) {
		fmt.Fprintln(os.Stderr, "misrun: -checkpoint/-resume support the sim engine's single-run and -daemon paths only")
		return 2
	}
	var cp *mis.Checkpoint
	if *resumeStr != "" {
		var c mis.Checkpoint
		if err := snapshot.ReadFile(*resumeStr, snapshot.KindProcess, &c); err != nil {
			fmt.Fprintln(os.Stderr, "misrun:", err)
			return 1
		}
		if want := procName(*procKind); want != "" && want != c.Process {
			fmt.Fprintf(os.Stderr, "misrun: snapshot is a %s execution, -proc selects %s\n", c.Process, want)
			return 2
		}
		// A daemon-run snapshot continued with synchronous rounds would be a
		// mixed-semantics execution — the silent-wrong resume this layer
		// exists to rule out.
		if c.DaemonName != "" && *daemon == "" {
			fmt.Fprintf(os.Stderr, "misrun: snapshot is a daemon-scheduled run; resume it with -daemon %s\n", c.DaemonName)
			return 2
		}
		cp = &c
	}

	if *asyncMode {
		if *daemon != "" || *trials > 1 || *progress || *engine == "node" {
			fmt.Fprintln(os.Stderr, "misrun: -async does not combine with -daemon, -trials, -progress or -engine node")
			return 2
		}
		if *initKind != "random" {
			fmt.Fprintln(os.Stderr, "misrun: -async draws its own random initial states (-init random only)")
			return 2
		}
		return runAsync(g, *graphKind, *procKind, *seed, limit, *drift, *driftName, *gst)
	}

	if *engine == "node" {
		if *daemon != "" {
			fmt.Fprintln(os.Stderr, "misrun: -daemon requires the sim engine (the node runtime is synchronous by construction)")
			return 2
		}
		return runNodeEngine(g, *procKind, *seed, limit)
	}

	init, err := parseInit(*initKind)
	if err != nil {
		fmt.Fprintln(os.Stderr, "misrun:", err)
		return 2
	}
	if *daemon != "" {
		if *trials > 1 || *progress {
			fmt.Fprintln(os.Stderr, "misrun: -daemon does not combine with -trials or -progress")
			return 2
		}
		return runDaemon(g, *procKind, *daemon, init, *seed, *maxRounds, cp, *ckptPath, *ckptEvery)
	}
	if *trials > 1 {
		return runTrials(g, *procKind, init, *seed, *trials, limit, *workers, *chunk)
	}
	var proc mis.Process
	if cp != nil {
		if proc, err = restoreProcess(g, cp); err != nil {
			fmt.Fprintln(os.Stderr, "misrun:", err)
			return 1
		}
	} else {
		k, kerr := experiment.ParseKind(*procKind)
		if kerr != nil {
			fmt.Fprintln(os.Stderr, "misrun:", kerr)
			return 2
		}
		proc = experiment.NewProcess(k, g, mis.WithSeed(*seed), mis.WithInit(init))
	}

	fmt.Printf("graph %s: n=%d m=%d maxdeg=%d\n", *graphKind, g.N(), g.M(), g.MaxDegree())
	if cp != nil {
		fmt.Printf("process %s (%d states), resumed from %s at round %d\n",
			proc.Name(), proc.States(), *resumeStr, proc.Round())
	} else {
		fmt.Printf("process %s (%d states), init %s, seed %d\n", proc.Name(), proc.States(), init, *seed)
	}

	for !proc.Stabilized() && proc.Round() < limit {
		if *progress {
			m := mis.Snapshot(proc)
			fmt.Printf("round %4d: black=%d active=%d stable-black=%d unstable=%d gray=%d\n",
				m.Round, m.Black, m.Active, m.StableBlack, m.Unstable, m.Gray)
		}
		proc.Step()
		if *ckptPath != "" && *ckptEvery > 0 && proc.Round()%*ckptEvery == 0 {
			if err := writeSnapshot(*ckptPath, proc, nil); err != nil {
				fmt.Fprintln(os.Stderr, "misrun:", err)
				return 1
			}
		}
	}
	if *ckptPath != "" {
		// Exit snapshot: resuming a capped run continues it; a stabilized
		// run's snapshot restores to the terminal configuration.
		if err := writeSnapshot(*ckptPath, proc, nil); err != nil {
			fmt.Fprintln(os.Stderr, "misrun:", err)
			return 1
		}
	}
	res := mis.Run(proc, limit)
	if !res.Stabilized {
		fmt.Printf("did NOT stabilize within %d rounds\n", limit)
		return 1
	}
	if err := verify.MIS(g, proc.Black); err != nil {
		fmt.Fprintln(os.Stderr, "misrun: INVALID RESULT:", err)
		return 1
	}
	misSize := 0
	for u := 0; u < g.N(); u++ {
		if proc.Black(u) {
			misSize++
		}
	}
	fmt.Printf("stabilized in %d rounds; MIS size %d; %d random bits (%.2f bits/vertex/round)\n",
		res.Rounds, misSize, res.RandomBits,
		float64(res.RandomBits)/float64(g.N())/maxf(1, float64(res.Rounds)))
	return 0
}

// runAsync executes one process on the asynchronous beeping medium and
// reports virtual rounds, virtual time, clock skew, and the observed slot
// lengths against the drift bound. Output is a pure function of the flags.
func runAsync(g *graph.Graph, graphKind, procKind string, seed uint64, limit int, rho float64, driftName string, gst int) int {
	d, err := async.DriftByName(driftName, rho, gst)
	if err != nil {
		fmt.Fprintln(os.Stderr, "misrun:", err)
		return 2
	}
	var (
		rounds int
		ok     bool
		black  func(int) bool
		bits   func() int64
		eng    *async.Engine
		model  string
	)
	k, kerr := experiment.ParseKind(procKind)
	if kerr != nil {
		fmt.Fprintln(os.Stderr, "misrun:", kerr)
		return 2
	}
	switch k {
	case experiment.KindTwoState:
		m := async.NewMIS(g, seed, d, nil)
		rounds, ok = m.Run(limit)
		black, bits, eng, model = m.Black, m.RandomBits, m.Engine(), "beeping-cd"
	case experiment.KindThreeState:
		m := async.NewThreeStateMIS(g, seed, d, nil)
		rounds, ok = m.Run(limit)
		black, bits, eng, model = m.Black, m.RandomBits, m.Engine(), "stone-age(2ch)"
	default:
		fmt.Fprintf(os.Stderr, "misrun: process %q does not run on the async medium (2state|3state)\n", procKind)
		return 2
	}
	fmt.Printf("graph %s: n=%d m=%d maxdeg=%d\n", graphKind, g.N(), g.M(), g.MaxDegree())
	gstNote := ""
	if driftName == "eventual-sync" {
		gstNote = fmt.Sprintf(", GST %d slots", gst)
	}
	fmt.Printf("async %s over %s: drift %s ρ=%.2f%s, base slot %d ticks, seed %d\n",
		procKind, model, d.Name(), d.Rho(), gstNote, int64(async.SlotTicks), seed)
	if !ok {
		fmt.Printf("did NOT stabilize within %d virtual rounds\n", limit)
		return 1
	}
	if err := verify.MIS(g, black); err != nil {
		fmt.Fprintln(os.Stderr, "misrun: INVALID RESULT:", err)
		return 1
	}
	misSize := 0
	for u := 0; u < g.N(); u++ {
		if black(u) {
			misSize++
		}
	}
	minLen, maxLen := eng.ObservedSlotLens()
	fmt.Printf("stabilized in %d virtual rounds (%.2f base slots of virtual time); MIS size %d; %d random bits\n",
		rounds, float64(eng.Now())/float64(async.SlotTicks), misSize, bits())
	fmt.Printf("clocks: max skew %d slots; slot lengths observed [%d, %d] within bound [%d, %d]\n",
		eng.MaxSkew(), minLen, maxLen, int64(async.SlotTicks), async.MaxSlotTicks(d.Rho()))
	return 0
}

// procName maps a -proc flag value to the checkpoint family name ("" for
// unknown values, which the construction paths reject themselves).
func procName(procKind string) string {
	k, err := experiment.ParseKind(procKind)
	if err != nil {
		return ""
	}
	return k.String()
}

// checkpointable is the snapshot surface of the sim-engine processes.
type checkpointable interface {
	Checkpoint() (*mis.Checkpoint, error)
}

// restoreProcess rebuilds the snapshot's process family on g.
func restoreProcess(g *graph.Graph, cp *mis.Checkpoint) (mis.Process, error) {
	switch cp.Process {
	case "2-state":
		return mis.RestoreTwoState(g, cp)
	case "3-state":
		return mis.RestoreThreeState(g, cp)
	case "3-color":
		return mis.RestoreThreeColor(g, cp)
	}
	return nil, fmt.Errorf("snapshot has unknown process family %q", cp.Process)
}

// writeSnapshot atomically writes the process's snapshot; a non-nil daemon
// contributes its name and (for stateful daemons) its schedule history.
func writeSnapshot(path string, p mis.Process, d sched.Daemon) error {
	c, err := p.(checkpointable).Checkpoint()
	if err != nil {
		return err
	}
	if d != nil {
		c.DaemonName = d.Name()
		if st, ok := d.(sched.Stateful); ok {
			if c.DaemonState, err = st.MarshalState(); err != nil {
				return err
			}
		}
	}
	return snapshot.WriteFile(path, snapshot.KindProcess, c)
}

// runDaemon executes one process under a daemon schedule and reports
// steps/moves to stabilization. A non-nil cp resumes a snapshotted daemon
// run — the scheduler stream, the step/move accounting, and a stateful
// daemon's schedule history all continue exactly; ckptPath/ckptEvery
// mirror the single-run snapshot flags with steps in place of rounds.
func runDaemon(g *graph.Graph, procKind, daemonName string, init mis.Init, seed uint64, maxSteps int, cp *mis.Checkpoint, ckptPath string, ckptEvery int) int {
	d, err := sched.DaemonByName(daemonName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "misrun:", err)
		return 2
	}
	var p mis.DaemonRunner
	if cp != nil {
		// Both directions of the mixed-semantics guard: a synchronous-run
		// snapshot must not be continued with daemon steps, and a daemon
		// snapshot must continue under the same daemon.
		if cp.DaemonName == "" {
			fmt.Fprintln(os.Stderr, "misrun: snapshot is a synchronous-round run; resume it without -daemon")
			return 2
		}
		if cp.DaemonName != d.Name() {
			fmt.Fprintf(os.Stderr, "misrun: snapshot was taken under the %s daemon, -daemon selects %s\n",
				cp.DaemonName, d.Name())
			return 2
		}
		proc, err := restoreProcess(g, cp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "misrun:", err)
			return 1
		}
		var ok bool
		if p, ok = proc.(mis.DaemonRunner); !ok {
			fmt.Fprintf(os.Stderr, "misrun: process %s does not support daemon scheduling\n", proc.Name())
			return 2
		}
		if cp.DaemonState != nil {
			st, ok := d.(sched.Stateful)
			if !ok {
				fmt.Fprintf(os.Stderr, "misrun: snapshot carries schedule state but daemon %s is stateless\n", d.Name())
				return 2
			}
			if err := st.UnmarshalState(cp.DaemonState); err != nil {
				fmt.Fprintln(os.Stderr, "misrun:", err)
				return 1
			}
		}
		fmt.Printf("process %s under %s daemon, resumed at step %d on n=%d m=%d\n",
			p.Name(), d.Name(), p.Steps(), g.N(), g.M())
	} else {
		k, kerr := experiment.ParseKind(procKind)
		if kerr != nil {
			fmt.Fprintln(os.Stderr, "misrun:", kerr)
			return 2
		}
		dr, ok := experiment.NewProcess(k, g, mis.WithSeed(seed), mis.WithInit(init)).(mis.DaemonRunner)
		if !ok {
			fmt.Fprintf(os.Stderr, "misrun: process %v does not support daemon scheduling (2state|3state)\n", k)
			return 2
		}
		p = dr
		fmt.Printf("process %s under %s daemon, init %s, seed %d on n=%d m=%d\n",
			p.Name(), d.Name(), init, seed, g.N(), g.M())
	}
	if maxSteps <= 0 {
		maxSteps = mis.DefaultDaemonStepCap(g.N())
	}
	// The cap is absolute (total steps including the resumed prefix), so an
	// interrupted-and-resumed run stops exactly where the uninterrupted one
	// would — the single-run path's round limit behaves the same way.
	for p.Steps() < maxSteps && !p.Stabilized() {
		if !p.DaemonStep(d) {
			break
		}
		if ckptPath != "" && ckptEvery > 0 && p.Steps()%ckptEvery == 0 {
			if err := writeSnapshot(ckptPath, p, d); err != nil {
				fmt.Fprintln(os.Stderr, "misrun:", err)
				return 1
			}
		}
	}
	if ckptPath != "" {
		if err := writeSnapshot(ckptPath, p, d); err != nil {
			fmt.Fprintln(os.Stderr, "misrun:", err)
			return 1
		}
	}
	steps, ok := p.Steps(), p.Stabilized()
	if !ok {
		fmt.Printf("did NOT stabilize within %d daemon steps\n", steps)
		return 1
	}
	if err := verify.MIS(g, p.Black); err != nil {
		fmt.Fprintln(os.Stderr, "misrun: INVALID RESULT:", err)
		return 1
	}
	misSize := 0
	for u := 0; u < g.N(); u++ {
		if p.Black(u) {
			misSize++
		}
	}
	fmt.Printf("stabilized after %d daemon steps (%d moves, %.2f moves/vertex); MIS size %d\n",
		steps, p.Moves(), float64(p.Moves())/float64(g.N()), misSize)
	return 0
}

// runTrials executes many seeded runs on a work-stealing batch pool and
// prints distribution statistics, per-cell wall time, and — when trials
// fail — the exact seeds to replay.
func runTrials(g *graph.Graph, procKind string, init mis.Init, seed uint64, trials, limit, workers, chunk int) int {
	kind, err := experiment.ParseKind(procKind)
	if err != nil {
		fmt.Fprintln(os.Stderr, "misrun:", err)
		return 2
	}
	mkProc := func(rc *engine.RunContext, s uint64) mis.Process {
		return experiment.NewProcess(kind, g,
			mis.WithRunContext(rc), mis.WithSeed(s), mis.WithInit(init))
	}
	seeds := make([]uint64, trials)
	for i := range seeds {
		seeds[i] = seed + uint64(i)
	}
	rounds := stats.NewQuantileStream()
	var failedSeeds []uint64
	pool := batch.NewPool(workers)
	defer pool.Close()
	start := time.Now()
	pool.SubmitOpts([]batch.Shard{{
		Build: func() *graph.Graph { return g },
		Seeds: seeds,
		Run: func(rc *engine.RunContext, g *graph.Graph, _ int, s uint64) batch.Outcome {
			p := mkProc(rc, s)
			res := mis.Run(p, limit)
			if !res.Stabilized || verify.MIS(g, p.Black) != nil {
				return batch.Outcome{Failed: true}
			}
			return batch.Outcome{Rounds: res.Rounds}
		},
	}}, batch.SubmitOptions{ChunkSize: chunk}, func(o batch.Outcome) {
		if o.Failed {
			failedSeeds = append(failedSeeds, o.Seed)
			return
		}
		rounds.Add(float64(o.Rounds))
	}).Wait()
	elapsed := time.Since(start)
	if rounds.N() == 0 {
		fmt.Printf("all %d trials failed to stabilize within %d rounds (seeds %v)\n",
			trials, limit, failedSeeds)
		return 1
	}
	s := rounds.Summary()
	fmt.Printf("%s on n=%d m=%d, %d trials (seeds %d..%d), init %s:\n",
		procKind, g.N(), g.M(), trials, seed, seed+uint64(trials)-1, init)
	fmt.Printf("  rounds: %s (95%% CI ±%.2f)\n", s, s.MeanCI95())
	fmt.Printf("  cell wall time: %v on %d workers (%.1f runs/s)\n",
		elapsed.Round(time.Millisecond), pool.Workers(),
		float64(trials)/elapsed.Seconds())
	if len(failedSeeds) > 0 {
		fmt.Printf("  %d/%d trials hit the round cap (failed seeds: %v)\n",
			len(failedSeeds), trials, failedSeeds)
		return 1
	}
	return 0
}

func buildGraph(kind, inPath string, n int, p float64, d int, seed uint64) (*graph.Graph, error) {
	rng := xrand.New(seed ^ 0x9e3779b97f4a7c15)
	switch kind {
	case "file":
		if inPath == "" {
			return nil, fmt.Errorf("-graph file requires -in <path>")
		}
		f, err := os.Open(inPath)
		if err != nil {
			return nil, fmt.Errorf("open graph file: %w", err)
		}
		defer f.Close()
		return graphio.ReadEdgeList(f)
	case "gnp":
		return graph.Gnp(n, p, rng), nil
	case "clique":
		return graph.Complete(n), nil
	case "path":
		return graph.Path(n), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "star":
		return graph.Star(n), nil
	case "tree":
		return graph.RandomTree(n, rng), nil
	case "grid":
		s := graph.ISqrt(n)
		return graph.Grid(s, s), nil
	case "cliques":
		s := graph.ISqrt(n)
		return graph.DisjointCliques(s, s), nil
	case "regular":
		if n*d%2 != 0 {
			n++
		}
		return graph.RandomRegular(n, d, rng), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", kind)
	}
}

func runNodeEngine(g *graph.Graph, procKind string, seed uint64, limit int) int {
	k, err := experiment.ParseKind(procKind)
	if err != nil {
		fmt.Fprintln(os.Stderr, "misrun:", err)
		return 2
	}
	switch k {
	case experiment.KindTwoState:
		m := newBeeping(g, seed)
		defer m.Close()
		rounds, ok := m.Run(limit)
		return report(g, "beeping-cd", rounds, ok, m.Black)
	case experiment.KindThreeState:
		m := newStoneAge3S(g, seed)
		defer m.Close()
		rounds, ok := m.Run(limit)
		return report(g, "stone-age(2ch)", rounds, ok, m.Black)
	default:
		m := newStoneAge3C(g, seed)
		defer m.Close()
		rounds, ok := m.Run(limit)
		return report(g, "stone-age(12ch)", rounds, ok, m.Black)
	}
}

func report(g *graph.Graph, model string, rounds int, ok bool, black func(int) bool) int {
	if !ok {
		fmt.Printf("node engine (%s): did NOT stabilize in %d rounds\n", model, rounds)
		return 1
	}
	if err := verify.MIS(g, black); err != nil {
		fmt.Fprintln(os.Stderr, "misrun: INVALID RESULT:", err)
		return 1
	}
	fmt.Printf("node engine (%s): stabilized in %d rounds on n=%d\n", model, rounds, g.N())
	return 0
}

func parseInit(s string) (mis.Init, error) {
	for _, init := range mis.AllInits() {
		if init.String() == s {
			return init, nil
		}
	}
	return 0, fmt.Errorf("unknown init %q", s)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Command misviz renders a small MIS-process run as ASCII, one line per
// round and one glyph per vertex ('#' black, '.' white, 'o' gray, 'b'
// black0). On a path or cycle the spatial structure of symmetry breaking is
// directly visible; with -grid the final state is rendered two-dimensionally.
//
// Usage:
//
//	misviz -graph cycle -n 60 -proc 2state -seed 3
//	misviz -graph grid -n 400 -proc 3color -grid
package main

import (
	"flag"
	"fmt"
	"os"

	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/trace"
	"ssmis/internal/xrand"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		graphKind = flag.String("graph", "cycle", "graph family: path|cycle|grid|tree|gnp|clique")
		n         = flag.Int("n", 64, "number of vertices")
		p         = flag.Float64("p", 0.05, "edge probability (gnp)")
		procKind  = flag.String("proc", "2state", "process: 2state|3state|3color")
		seed      = flag.Uint64("seed", 1, "master seed")
		gridOut   = flag.Bool("grid", false, "render the final state as a 2-D grid (grid graphs)")
		maxWidth  = flag.Int("width", 120, "truncate rows to this many glyphs (0 = no limit)")
	)
	flag.Parse()

	var g *graph.Graph
	rng := xrand.New(*seed ^ 0xabcdef)
	side := graph.ISqrt(*n)
	switch *graphKind {
	case "path":
		g = graph.Path(*n)
	case "cycle":
		g = graph.Cycle(*n)
	case "grid":
		g = graph.Grid(side, side)
	case "tree":
		g = graph.RandomTree(*n, rng)
	case "gnp":
		g = graph.Gnp(*n, *p, rng)
	case "clique":
		g = graph.Complete(*n)
	default:
		fmt.Fprintf(os.Stderr, "misviz: unknown graph %q\n", *graphKind)
		return 2
	}

	var proc mis.Process
	switch *procKind {
	case "2state":
		proc = mis.NewTwoState(g, mis.WithSeed(*seed))
	case "3state":
		proc = mis.NewThreeState(g, mis.WithSeed(*seed))
	case "3color":
		proc = mis.NewThreeColor(g, mis.WithSeed(*seed))
	default:
		fmt.Fprintf(os.Stderr, "misviz: unknown process %q\n", *procKind)
		return 2
	}

	tr := trace.Record(proc, 8*mis.DefaultRoundCap(g.N()))
	if *gridOut && *graphKind == "grid" {
		fmt.Printf("%s on %dx%d grid, %d rounds; final state:\n", proc.Name(), side, side, proc.Round())
		fmt.Print(tr.RenderGrid(side, side))
	} else {
		fmt.Print(tr.Render(*maxWidth))
	}
	if !proc.Stabilized() {
		fmt.Println("WARNING: run hit the round cap without stabilizing")
		return 1
	}
	return 0
}

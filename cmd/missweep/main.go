// Command missweep regenerates the paper-reproduction experiment tables.
//
// Usage:
//
//	missweep -run all            # every experiment at full scale
//	missweep -run E1,E7 -scale 0.25
//	missweep -list
//	missweep -run E9 -csv        # machine-readable output
//
// Experiment ids and claims are listed by -list and indexed in DESIGN.md §3;
// the full-scale outputs are recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ssmis/internal/experiment"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runIDs = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		scale  = flag.Float64("scale", 1.0, "cost multiplier (sizes and trials); 0.25 = quick")
		seed   = flag.Uint64("seed", 2023, "master seed")
		list   = flag.Bool("list", false, "list experiments and exit")
		csv    = flag.Bool("csv", false, "emit CSV instead of fixed-width tables")
		outDir = flag.String("out", "", "also write one CSV file per table into this directory")
	)
	flag.Parse()

	if *list || *runIDs == "" {
		fmt.Println("experiments:")
		for _, e := range experiment.Registry() {
			fmt.Printf("  %-4s %s\n       claim: %s\n", e.ID, e.Title, e.Claim)
		}
		if *runIDs == "" && !*list {
			fmt.Println("\nuse -run <ids>|all to execute")
		}
		return 0
	}

	var selected []experiment.Experiment
	if strings.EqualFold(*runIDs, "all") {
		selected = experiment.Registry()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := experiment.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "missweep: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "missweep: create -out dir: %v\n", err)
			return 1
		}
	}
	cfg := experiment.Config{Scale: *scale, Seed: *seed}
	for _, e := range selected {
		start := time.Now()
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
		fmt.Printf("paper claim: %s\n\n", e.Claim)
		for i, tab := range e.Run(cfg) {
			if *csv {
				fmt.Print(tab.CSV())
			} else {
				fmt.Print(tab.Render())
			}
			fmt.Println()
			if *outDir != "" {
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), i)
				path := filepath.Join(*outDir, name)
				if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "missweep: write %s: %v\n", path, err)
					return 1
				}
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

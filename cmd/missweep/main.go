// Command missweep regenerates the paper-reproduction experiment tables.
//
// Usage:
//
//	missweep -run all                  # every experiment at full scale
//	missweep -run E1,E7 -scale 0.25
//	missweep -run all -workers 8       # one shared work-stealing pool, 8 workers
//	missweep -run E6 -batch 4 -times   # 4-seed scheduler chunks + per-cell wall times
//	missweep -list
//	missweep -run E9 -csv              # machine-readable output
//
//	missweep -run all -checkpoint sweep.ckpt                 # checkpoint the whole grid
//	missweep -run all -checkpoint sweep.ckpt -resume         # continue a killed sweep
//	missweep -run all -checkpoint sweep.ckpt -checkpoint-every 5s
//
//	missweep -scenario examples/scenarios/basic.json         # run a declarative scenario
//	missweep -scenario a.json,b.json -run E1 -scale 0.25     # scenarios mix with registry ids
//
// Declarative scenarios (-scenario) are JSON files compiled by
// internal/scenario into the same cell structure the registry experiments
// submit; they share the pool, the checkpoint journal (keyed by scenario
// name) and every output flag. -list prints the scenario vocabulary —
// graph families with their parameters, processes, runtimes, drift models,
// daemons, adversaries and metrics — after the experiment registry.
//
// All selected experiments submit their (graph, seed) jobs to ONE shared
// work-stealing pool (internal/batch) and run concurrently — a straggler
// cell in E7 no longer serializes the sweep, because E8's jobs fill the
// idle workers. Output order and table contents are independent of -workers
// (outcomes aggregate in trial order).
//
// Sweep checkpointing (-checkpoint) serializes the WHOLE grid to one
// versioned snapshot file at a configurable interval (-checkpoint-every,
// default 10s): completed experiments' rendered tables plus the in-order
// outcome journals of every in-flight measurement cell, written atomically
// (stage + rename) under a scheduler quiesce. A sweep killed mid-grid and
// restarted with -resume skips everything the checkpoint recorded — it
// replays journaled outcomes through the scheduler's reorder buffer rather
// than re-running them — and, because every trial is a pure function of
// (graph, seed), produces byte-identical tables to an uninterrupted run at
// any -workers value. -resume validates that the checkpoint matches the
// invocation (same -scale, -seed, and -run selection; intact envelope,
// same format version) and refuses to resume otherwise.
//
// Experiment ids and claims are listed by -list and indexed in DESIGN.md §3;
// the full-scale outputs are recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"ssmis/internal/batch"
	"ssmis/internal/experiment"
	"ssmis/internal/scenario"
	"ssmis/internal/snapshot"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runIDs        = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		scenFiles     = flag.String("scenario", "", "comma-separated scenario JSON files, compiled and run alongside -run")
		scale         = flag.Float64("scale", 1.0, "cost multiplier (sizes and trials); 0.25 = quick")
		seed          = flag.Uint64("seed", 2023, "master seed")
		list          = flag.Bool("list", false, "list experiments and exit")
		csv           = flag.Bool("csv", false, "emit CSV instead of fixed-width tables")
		outDir        = flag.String("out", "", "also write one CSV file per table into this directory")
		workers       = flag.Int("workers", 0, "scheduler pool size (0 = GOMAXPROCS); all experiments share one pool")
		chunk         = flag.Int("batch", 0, "seeds per scheduler chunk (0 = auto); smaller chunks steal more")
		times         = flag.Bool("times", false, "report the slowest per-cell wall times for each experiment")
		scalar        = flag.Bool("scalar", false, "force the scalar engine path (no bit-sliced kernels); tables are identical by construction")
		identityOrder = flag.Bool("identity-order", false, "disable the kernel path's locality relabeling; tables are identical by construction")
		ckpt          = flag.String("checkpoint", "", "checkpoint the whole sweep to this file (atomic write-rename)")
		every         = flag.Duration("checkpoint-every", 10*time.Second, "interval between sweep checkpoints")
		resume        = flag.Bool("resume", false, "resume from the -checkpoint file instead of starting fresh")
	)
	flag.Parse()

	// The engine validates WithWorkers < 0 loudly; the pool's 0 = GOMAXPROCS
	// convention must not swallow negative typos (-workers -3) silently.
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "missweep: -workers must be >= 0 (0 = GOMAXPROCS), got %d\n", *workers)
		return 2
	}

	if *list || (*runIDs == "" && *scenFiles == "") {
		fmt.Println("experiments:")
		for _, e := range experiment.Registry() {
			fmt.Printf("  %-4s %s\n       claim: %s\n", e.ID, e.Title, e.Claim)
		}
		fmt.Println()
		fmt.Print(scenario.Vocabulary())
		if *runIDs == "" && *scenFiles == "" && !*list {
			fmt.Println("\nuse -run <ids>|all or -scenario <files> to execute")
		}
		return 0
	}

	var selected []experiment.Experiment
	if *runIDs != "" {
		if strings.EqualFold(*runIDs, "all") {
			selected = experiment.Registry()
		} else {
			for _, id := range strings.Split(*runIDs, ",") {
				e, ok := experiment.ByID(strings.TrimSpace(id))
				if !ok {
					fmt.Fprintf(os.Stderr, "missweep: unknown experiment %q (use -list)\n", id)
					return 2
				}
				selected = append(selected, e)
			}
		}
	}
	if *scenFiles != "" {
		for _, path := range strings.Split(*scenFiles, ",") {
			s, err := scenario.Load(strings.TrimSpace(path))
			if err != nil {
				fmt.Fprintf(os.Stderr, "missweep: %v\n", err)
				return 2
			}
			e, err := s.Compile()
			if err != nil {
				fmt.Fprintf(os.Stderr, "missweep: %s: %v\n", path, err)
				return 2
			}
			selected = append(selected, e)
		}
	}
	// Scenario names share the experiment-id namespace (checkpoint journal
	// keys, -out filenames); a collision would silently interleave two grids.
	byID := make(map[string]bool, len(selected))
	for _, e := range selected {
		if byID[e.ID] {
			fmt.Fprintf(os.Stderr, "missweep: duplicate experiment id %q in selection (a scenario name collides with another selection)\n", e.ID)
			return 2
		}
		byID[e.ID] = true
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "missweep: create -out dir: %v\n", err)
			return 1
		}
	}

	// One shared work-stealing pool for the whole invocation.
	pool := batch.NewPool(*workers)
	defer pool.Close()

	// Sweep checkpointing: create or load the one-file-per-grid snapshot
	// and save it periodically under a pool quiesce (a consistent cut: no
	// outcome is in flight while the journals serialize).
	var sweep *experiment.SweepCheckpoint
	if *resume && *ckpt == "" {
		fmt.Fprintln(os.Stderr, "missweep: -resume requires -checkpoint <file>")
		return 2
	}
	if *ckpt != "" && *every <= 0 {
		fmt.Fprintln(os.Stderr, "missweep: -checkpoint-every must be a positive duration")
		return 2
	}
	if *ckpt != "" {
		ids := make([]string, len(selected))
		for i, e := range selected {
			ids[i] = e.ID
		}
		if *resume {
			var err error
			sweep, err = experiment.LoadSweepCheckpoint(*ckpt, *scale, *seed, ids)
			if err != nil {
				fmt.Fprintf(os.Stderr, "missweep: %v\n", err)
				return 1
			}
		} else {
			sweep = experiment.NewSweepCheckpoint(*scale, *seed, ids)
		}
		// The quiesce covers only the in-memory cut; the disk I/O (stage,
		// fsync, rename) happens with the pool already running again.
		save := func() {
			pool.Quiesce()
			data, err := sweep.Encode()
			pool.Resume()
			if err == nil {
				err = snapshot.WriteEncoded(*ckpt, data)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "missweep: checkpoint: %v\n", err)
			}
		}
		stop := make(chan struct{})
		ticking := make(chan struct{})
		go func() {
			defer close(ticking)
			t := time.NewTicker(*every)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					save()
				case <-stop:
					return
				}
			}
		}()
		defer func() {
			close(stop)
			<-ticking
			// Final save: the finished sweep's checkpoint holds every table,
			// so a later -resume replays the grid without running a job.
			if err := sweep.Save(*ckpt); err != nil {
				fmt.Fprintf(os.Stderr, "missweep: checkpoint: %v\n", err)
			}
		}()
	}

	type outcome struct {
		tables  []experiment.Table
		cells   *experiment.CellLog
		elapsed time.Duration
	}
	// Experiments run concurrently so their pool jobs interleave, but the
	// number in flight is bounded by the pool size: experiment goroutines
	// also do work outside the pool (building each cell's fixed graphs,
	// rendering tables), and an unbounded launch would hold every
	// experiment's graphs resident at once and oversubscribe the CPU
	// regardless of -workers.
	sem := make(chan struct{}, pool.Workers())
	results := make([]chan outcome, len(selected))
	for i, e := range selected {
		results[i] = make(chan outcome, 1)
		go func(e experiment.Experiment, out chan<- outcome) {
			cells := &experiment.CellLog{}
			// Experiments the checkpoint already completed replay their
			// stored tables without occupying a concurrency slot or
			// submitting a single job.
			if sweep != nil {
				if tables, ok := sweep.Completed(e.ID); ok {
					out <- outcome{tables: tables, cells: cells}
					return
				}
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := experiment.Config{Scale: *scale, Seed: *seed, Pool: pool, Cells: cells, Chunk: *chunk,
				ScalarEngine: *scalar, IdentityOrder: *identityOrder}
			if sweep != nil {
				cfg.Checkpoint = sweep.Experiment(e.ID)
			}
			start := time.Now()
			tables := e.Run(cfg)
			if sweep != nil {
				sweep.MarkDone(e.ID, tables)
			}
			out <- outcome{tables: tables, cells: cells, elapsed: time.Since(start)}
		}(e, results[i])
	}

	sweepStart := time.Now()
	for i, e := range selected {
		res := <-results[i]
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
		fmt.Printf("paper claim: %s\n\n", e.Claim)
		for j, tab := range res.tables {
			if *csv {
				fmt.Print(tab.CSV())
			} else {
				fmt.Print(tab.Render())
			}
			fmt.Println()
			if *outDir != "" {
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), j)
				path := filepath.Join(*outDir, name)
				if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "missweep: write %s: %v\n", path, err)
					return 1
				}
			}
		}
		cells := res.cells.Cells()
		jobs := 0
		for _, c := range cells {
			jobs += c.Jobs
		}
		fmt.Printf("(%s completed in %v; %d cells, %d scheduled jobs)\n",
			e.ID, res.elapsed.Round(time.Millisecond), len(cells), jobs)
		if *times && len(cells) > 0 {
			sort.Slice(cells, func(a, b int) bool { return cells[a].Elapsed > cells[b].Elapsed })
			top := cells
			if len(top) > 3 {
				top = top[:3]
			}
			for _, c := range top {
				fmt.Printf("  cell %-32s %4d jobs  %v\n", c.Label, c.Jobs, c.Elapsed.Round(time.Millisecond))
			}
		}
		fmt.Println()
	}
	fmt.Printf("(sweep total %v on %d workers)\n", time.Since(sweepStart).Round(time.Millisecond), pool.Workers())
	return 0
}

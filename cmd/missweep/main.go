// Command missweep regenerates the paper-reproduction experiment tables.
//
// Usage:
//
//	missweep -run all                  # every experiment at full scale
//	missweep -run E1,E7 -scale 0.25
//	missweep -run all -workers 8       # one shared work-stealing pool, 8 workers
//	missweep -run E6 -batch 4 -times   # 4-seed scheduler chunks + per-cell wall times
//	missweep -list
//	missweep -run E9 -csv              # machine-readable output
//
// All selected experiments submit their (graph, seed) jobs to ONE shared
// work-stealing pool (internal/batch) and run concurrently — a straggler
// cell in E7 no longer serializes the sweep, because E8's jobs fill the
// idle workers. Output order and table contents are independent of -workers
// (outcomes aggregate in trial order).
//
// Experiment ids and claims are listed by -list and indexed in DESIGN.md §3;
// the full-scale outputs are recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"ssmis/internal/batch"
	"ssmis/internal/experiment"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runIDs  = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		scale   = flag.Float64("scale", 1.0, "cost multiplier (sizes and trials); 0.25 = quick")
		seed    = flag.Uint64("seed", 2023, "master seed")
		list    = flag.Bool("list", false, "list experiments and exit")
		csv     = flag.Bool("csv", false, "emit CSV instead of fixed-width tables")
		outDir  = flag.String("out", "", "also write one CSV file per table into this directory")
		workers = flag.Int("workers", 0, "scheduler pool size (0 = GOMAXPROCS); all experiments share one pool")
		chunk   = flag.Int("batch", 0, "seeds per scheduler chunk (0 = auto); smaller chunks steal more")
		times   = flag.Bool("times", false, "report the slowest per-cell wall times for each experiment")
	)
	flag.Parse()

	if *list || *runIDs == "" {
		fmt.Println("experiments:")
		for _, e := range experiment.Registry() {
			fmt.Printf("  %-4s %s\n       claim: %s\n", e.ID, e.Title, e.Claim)
		}
		if *runIDs == "" && !*list {
			fmt.Println("\nuse -run <ids>|all to execute")
		}
		return 0
	}

	var selected []experiment.Experiment
	if strings.EqualFold(*runIDs, "all") {
		selected = experiment.Registry()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := experiment.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "missweep: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "missweep: create -out dir: %v\n", err)
			return 1
		}
	}

	// One shared work-stealing pool for the whole invocation.
	pool := batch.NewPool(*workers)
	defer pool.Close()

	type outcome struct {
		tables  []experiment.Table
		cells   *experiment.CellLog
		elapsed time.Duration
	}
	// Experiments run concurrently so their pool jobs interleave, but the
	// number in flight is bounded by the pool size: experiment goroutines
	// also do work outside the pool (building each cell's fixed graphs,
	// rendering tables), and an unbounded launch would hold every
	// experiment's graphs resident at once and oversubscribe the CPU
	// regardless of -workers.
	sem := make(chan struct{}, pool.Workers())
	results := make([]chan outcome, len(selected))
	for i, e := range selected {
		results[i] = make(chan outcome, 1)
		go func(e experiment.Experiment, out chan<- outcome) {
			sem <- struct{}{}
			defer func() { <-sem }()
			cells := &experiment.CellLog{}
			cfg := experiment.Config{Scale: *scale, Seed: *seed, Pool: pool, Cells: cells, Chunk: *chunk}
			start := time.Now()
			tables := e.Run(cfg)
			out <- outcome{tables: tables, cells: cells, elapsed: time.Since(start)}
		}(e, results[i])
	}

	sweepStart := time.Now()
	for i, e := range selected {
		res := <-results[i]
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
		fmt.Printf("paper claim: %s\n\n", e.Claim)
		for j, tab := range res.tables {
			if *csv {
				fmt.Print(tab.CSV())
			} else {
				fmt.Print(tab.Render())
			}
			fmt.Println()
			if *outDir != "" {
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), j)
				path := filepath.Join(*outDir, name)
				if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "missweep: write %s: %v\n", path, err)
					return 1
				}
			}
		}
		cells := res.cells.Cells()
		jobs := 0
		for _, c := range cells {
			jobs += c.Jobs
		}
		fmt.Printf("(%s completed in %v; %d cells, %d scheduled jobs)\n",
			e.ID, res.elapsed.Round(time.Millisecond), len(cells), jobs)
		if *times && len(cells) > 0 {
			sort.Slice(cells, func(a, b int) bool { return cells[a].Elapsed > cells[b].Elapsed })
			top := cells
			if len(top) > 3 {
				top = top[:3]
			}
			for _, c := range top {
				fmt.Printf("  cell %-32s %4d jobs  %v\n", c.Label, c.Jobs, c.Elapsed.Round(time.Millisecond))
			}
		}
		fmt.Println()
	}
	fmt.Printf("(sweep total %v on %d workers)\n", time.Since(sweepStart).Round(time.Millisecond), pool.Workers())
	return 0
}

package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// runSelf re-executes the test binary with MISSWEEP_ARGS set so the child
// process runs run() on the given command line (the real flag path).
func runSelf(t *testing.T, args string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestWorkersFlagValidation")
	cmd.Env = append(os.Environ(), "MISSWEEP_ARGS="+args)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("re-exec %q: %v; output: %q", args, err, out)
	}
	return ee.ExitCode(), string(out)
}

// TestWorkersFlagValidation checks that a negative -workers is rejected at
// flag parsing with a clear diagnostic (exit 2) — previously the pool
// silently coerced it to GOMAXPROCS — while 0 and positive values still
// work.
func TestWorkersFlagValidation(t *testing.T) {
	if args := os.Getenv("MISSWEEP_ARGS"); args != "" {
		os.Args = append([]string{"missweep"}, strings.Fields(args)...)
		os.Exit(run())
	}
	code, out := runSelf(t, "-list -workers -2")
	if code != 2 {
		t.Fatalf("-workers -2 exit code = %d, want 2; output: %q", code, out)
	}
	if !strings.Contains(out, "-workers must be >= 0") {
		t.Fatalf("missing diagnostic in output: %q", out)
	}
	if code, out = runSelf(t, "-list -workers 2"); code != 0 {
		t.Fatalf("-workers 2 exit code = %d, want 0; output: %q", code, out)
	}
}

// Command misfuzz differentially fuzzes the optimized simulators against
// the naive reference transcriptions of the paper's definitions: random
// graphs, random seeds, full executions compared state-for-state every
// round, plus an MIS validity check at stabilization. Each case also checks
// the asynchronous beeping medium: at drift ρ=1 it must replay the
// simulator coin-for-coin, and at a random ρ in (1, 3] its terminal
// configuration must still be a valid MIS with every slot inside the drift
// bound. Any divergence prints a reproducer (graph seed, process seed,
// round, vertex) and exits nonzero.
//
// Usage:
//
//	misfuzz -iterations 2000        # bounded run (CI-friendly)
//	misfuzz -iterations 0           # run until interrupted
package main

import (
	"flag"
	"fmt"
	"os"

	"ssmis/internal/async"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		iterations = flag.Int("iterations", 2000, "number of fuzz cases (0 = unbounded)")
		seed       = flag.Uint64("seed", 1, "fuzzer master seed")
		maxN       = flag.Int("max-n", 80, "maximum graph order per case")
		verbose    = flag.Bool("v", false, "print each case")
	)
	flag.Parse()

	master := xrand.New(*seed)
	cases := 0
	for it := 0; *iterations == 0 || it < *iterations; it++ {
		r := master.Split(uint64(it))
		caseSeed := r.Uint64()
		n := 2 + r.Intn(*maxN-1)
		p := r.Float64() * 0.5
		g := graph.Gnp(n, p, r)
		if *verbose {
			fmt.Printf("case %d: n=%d p=%.3f seed=%d\n", it, n, p, caseSeed)
		}
		if msg := fuzzTwoState(g, caseSeed); msg != "" {
			return report(it, n, p, caseSeed, "2-state", msg)
		}
		if msg := fuzzThreeState(g, caseSeed); msg != "" {
			return report(it, n, p, caseSeed, "3-state", msg)
		}
		if msg := fuzzThreeColor(g, caseSeed); msg != "" {
			return report(it, n, p, caseSeed, "3-color", msg)
		}
		if msg := fuzzAsync(g, caseSeed); msg != "" {
			return report(it, n, p, caseSeed, "async", msg)
		}
		cases++
	}
	fmt.Printf("misfuzz: %d cases, no divergence\n", cases)
	return 0
}

func report(it, n int, p float64, seed uint64, proc, msg string) int {
	fmt.Fprintf(os.Stderr,
		"misfuzz: DIVERGENCE in %s process\n  reproducer: case=%d n=%d p=%.6f seed=%d\n  %s\n",
		proc, it, n, p, seed, msg)
	return 1
}

func fuzzTwoState(g *graph.Graph, seed uint64) string {
	opt := mis.NewTwoState(g, mis.WithSeed(seed))
	ref := mis.NewRefTwoState(g, seed, opt.BlackMask())
	limit := 4 * mis.DefaultRoundCap(g.N())
	for r := 0; r < limit && !opt.Stabilized(); r++ {
		opt.Step()
		ref.Step()
		for u := 0; u < g.N(); u++ {
			if opt.Black(u) != ref.Black(u) {
				return fmt.Sprintf("round %d vertex %d: opt=%v ref=%v", r+1, u, opt.Black(u), ref.Black(u))
			}
		}
		if opt.Stabilized() != ref.Stabilized() {
			return fmt.Sprintf("round %d: stabilization flags disagree", r+1)
		}
	}
	if !opt.Stabilized() {
		return fmt.Sprintf("no stabilization within %d rounds", limit)
	}
	if err := verify.MIS(g, opt.Black); err != nil {
		return "stabilized to non-MIS: " + err.Error()
	}
	return ""
}

func fuzzThreeState(g *graph.Graph, seed uint64) string {
	opt := mis.NewThreeState(g, mis.WithSeed(seed))
	initial := make([]mis.TriState, g.N())
	for u := range initial {
		initial[u] = opt.State(u)
	}
	ref := mis.NewRefThreeState(g, seed, initial)
	limit := 4 * mis.DefaultRoundCap(g.N())
	for r := 0; r < limit && !opt.Stabilized(); r++ {
		opt.Step()
		ref.Step()
		for u := 0; u < g.N(); u++ {
			if opt.State(u) != ref.State(u) {
				return fmt.Sprintf("round %d vertex %d: opt=%v ref=%v", r+1, u, opt.State(u), ref.State(u))
			}
		}
	}
	if !opt.Stabilized() {
		return fmt.Sprintf("no stabilization within %d rounds", limit)
	}
	if err := verify.MIS(g, opt.Black); err != nil {
		return "stabilized to non-MIS: " + err.Error()
	}
	return ""
}

func fuzzAsync(g *graph.Graph, seed uint64) string {
	limit := 4 * mis.DefaultRoundCap(g.N())

	// ρ=1: the async medium must replay the simulator coin-for-coin.
	sim := mis.NewTwoState(g, mis.WithSeed(seed))
	simRes := mis.Run(sim, limit)
	lock := async.NewMIS(g, seed, async.NewBounded(1), nil)
	rounds, ok := lock.Run(limit)
	if ok != simRes.Stabilized || rounds != simRes.Rounds {
		return fmt.Sprintf("ρ=1 run (%d, %v) diverges from simulator (%d, %v)",
			rounds, ok, simRes.Rounds, simRes.Stabilized)
	}
	for u := 0; u < g.N(); u++ {
		if sim.Black(u) != lock.Black(u) {
			return fmt.Sprintf("ρ=1 vertex %d: sim=%v async=%v", u, sim.Black(u), lock.Black(u))
		}
	}
	if sim.RandomBits() != lock.RandomBits() {
		return fmt.Sprintf("ρ=1 bit accounting: sim=%d async=%d", sim.RandomBits(), lock.RandomBits())
	}

	// Random drift in (1, 3]: terminal configurations stay valid MISes and
	// every slot respects the drift bound (the engine panics otherwise; the
	// observed extremes are re-checked here as a belt-and-braces property).
	r := xrand.New(seed ^ 0xA5A5A5A5A5A5A5A5)
	rho := 1 + r.Float64()*2
	drifted := async.NewThreeStateMIS(g, seed, async.NewBounded(rho), nil)
	if _, ok := drifted.Run(2 * limit); !ok {
		return fmt.Sprintf("ρ=%.4f 3-state did not stabilize within %d rounds", rho, 2*limit)
	}
	if err := verify.MIS(g, drifted.Black); err != nil {
		return fmt.Sprintf("ρ=%.4f terminal config: %v", rho, err)
	}
	min, max := drifted.Engine().ObservedSlotLens()
	if min < async.SlotTicks || max > async.MaxSlotTicks(rho) {
		return fmt.Sprintf("ρ=%.4f observed slot lengths [%d, %d] outside [%d, %d]",
			rho, min, max, int64(async.SlotTicks), async.MaxSlotTicks(rho))
	}
	return ""
}

func fuzzThreeColor(g *graph.Graph, seed uint64) string {
	opt := mis.NewThreeColor(g, mis.WithSeed(seed))
	colors := make([]mis.Color, g.N())
	levels := make([]uint8, g.N())
	for u := 0; u < g.N(); u++ {
		colors[u] = opt.ColorOf(u)
		levels[u] = opt.SwitchLevel(u)
	}
	ref := mis.NewRefThreeColor(g, seed, colors, levels)
	limit := 8 * mis.DefaultRoundCap(g.N())
	for r := 0; r < limit && !opt.Stabilized(); r++ {
		opt.Step()
		ref.Step()
		for u := 0; u < g.N(); u++ {
			if opt.ColorOf(u) != ref.ColorOf(u) {
				return fmt.Sprintf("round %d vertex %d: color opt=%v ref=%v", r+1, u, opt.ColorOf(u), ref.ColorOf(u))
			}
			if opt.SwitchLevel(u) != ref.Level(u) {
				return fmt.Sprintf("round %d vertex %d: level opt=%d ref=%d", r+1, u, opt.SwitchLevel(u), ref.Level(u))
			}
		}
	}
	if !opt.Stabilized() {
		return fmt.Sprintf("no stabilization within %d rounds", limit)
	}
	if err := verify.MIS(g, opt.Black); err != nil {
		return "stabilized to non-MIS: " + err.Error()
	}
	return ""
}

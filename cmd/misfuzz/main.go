// Command misfuzz differentially fuzzes the optimized simulators against
// the naive reference transcriptions of the paper's definitions: random
// graphs, random seeds, full executions compared state-for-state every
// round, plus an MIS validity check at stabilization. Each case also checks
// the asynchronous beeping medium: at drift ρ=1 it must replay the
// simulator coin-for-coin, and at a random ρ in (1, 3] its terminal
// configuration must still be a valid MIS with every slot inside the drift
// bound. Any divergence prints a reproducer (graph seed, process seed,
// round, vertex) and exits nonzero.
//
// Each case also attacks the checkpoint layer (internal/snapshot): a
// mid-run snapshot is encoded, decoded, and restored, and the resumed
// execution must match the uninterrupted one state-for-state to
// stabilization — including a daemon-scheduled resume, whose selection
// stream rides in the snapshot. Random truncations, byte corruptions, and
// a version-skewed header of the encoded bytes must all be REJECTED:
// resuming silently wrong is the checkpoint layer's one forbidden failure
// mode.
//
// Each case also attacks the declarative scenario codec
// (internal/scenario): a randomly built valid scenario must round-trip
// encode→decode with Plan equality and compile, while random mutations of
// the encoded JSON must decode to a typed error (never a panic, never a
// silent acceptance of a damaged axis).
//
// Usage:
//
//	misfuzz -iterations 2000        # bounded run (CI-friendly)
//	misfuzz -iterations 0           # run until interrupted
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"os"

	"ssmis/internal/async"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/sched"
	"ssmis/internal/snapshot"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		iterations = flag.Int("iterations", 2000, "number of fuzz cases (0 = unbounded)")
		seed       = flag.Uint64("seed", 1, "fuzzer master seed")
		maxN       = flag.Int("max-n", 80, "maximum graph order per case")
		verbose    = flag.Bool("v", false, "print each case")
	)
	flag.Parse()

	master := xrand.New(*seed)
	cases := 0
	for it := 0; *iterations == 0 || it < *iterations; it++ {
		r := master.Split(uint64(it))
		caseSeed := r.Uint64()
		n := 2 + r.Intn(*maxN-1)
		p := r.Float64() * 0.5
		g := graph.Gnp(n, p, r)
		if *verbose {
			fmt.Printf("case %d: n=%d p=%.3f seed=%d\n", it, n, p, caseSeed)
		}
		if msg := fuzzTwoState(g, caseSeed); msg != "" {
			return report(it, n, p, caseSeed, "2-state", msg)
		}
		if msg := fuzzKernel(g, caseSeed); msg != "" {
			return report(it, n, p, caseSeed, "kernel", msg)
		}
		if msg := fuzzRelabel(g, caseSeed); msg != "" {
			return report(it, n, p, caseSeed, "relabel", msg)
		}
		if msg := fuzzThreeState(g, caseSeed); msg != "" {
			return report(it, n, p, caseSeed, "3-state", msg)
		}
		if msg := fuzzThreeColor(g, caseSeed); msg != "" {
			return report(it, n, p, caseSeed, "3-color", msg)
		}
		if msg := fuzzAsync(g, caseSeed); msg != "" {
			return report(it, n, p, caseSeed, "async", msg)
		}
		if msg := fuzzSnapshot(g, caseSeed); msg != "" {
			return report(it, n, p, caseSeed, "snapshot", msg)
		}
		if msg := fuzzScenario(caseSeed); msg != "" {
			return report(it, n, p, caseSeed, "scenario", msg)
		}
		cases++
	}
	fmt.Printf("misfuzz: %d cases, no divergence\n", cases)
	return 0
}

func report(it, n int, p float64, seed uint64, proc, msg string) int {
	fmt.Fprintf(os.Stderr,
		"misfuzz: DIVERGENCE in %s process\n  reproducer: case=%d n=%d p=%.6f seed=%d\n  %s\n",
		proc, it, n, p, seed, msg)
	return 1
}

func fuzzTwoState(g *graph.Graph, seed uint64) string {
	opt := mis.NewTwoState(g, mis.WithSeed(seed))
	ref := mis.NewRefTwoState(g, seed, opt.BlackMask())
	limit := 4 * mis.DefaultRoundCap(g.N())
	for r := 0; r < limit && !opt.Stabilized(); r++ {
		opt.Step()
		ref.Step()
		for u := 0; u < g.N(); u++ {
			if opt.Black(u) != ref.Black(u) {
				return fmt.Sprintf("round %d vertex %d: opt=%v ref=%v", r+1, u, opt.Black(u), ref.Black(u))
			}
		}
		if opt.Stabilized() != ref.Stabilized() {
			return fmt.Sprintf("round %d: stabilization flags disagree", r+1)
		}
	}
	if !opt.Stabilized() {
		return fmt.Sprintf("no stabilization within %d rounds", limit)
	}
	if err := verify.MIS(g, opt.Black); err != nil {
		return "stabilized to non-MIS: " + err.Error()
	}
	return ""
}

// fuzzKernel differentially fuzzes the engine's bit-sliced kernel against
// the scalar interface path (the golden reference) for all three rules —
// 2-state, 3-state, and 3-color: same graph, same seed, a random worker
// count in {1, 8}, randomly frontier or full-rescan, compared
// state-for-state (full states: black0 vs black1, colors AND switch
// levels) every round with exact random-bit accounting at stabilization.
func fuzzKernel(g *graph.Graph, seed uint64) string {
	r := xrand.New(seed ^ 0x9e3779b97f4a7c15)
	variants := []struct {
		name    string
		mk      func(opts ...mis.Option) mis.Process
		stateOf func(p mis.Process, u int) int
		// limitMul scales the round cap (the 3-color switch needs slack).
		limitMul int
	}{
		{
			"2-state",
			func(opts ...mis.Option) mis.Process { return mis.NewTwoState(g, opts...) },
			func(p mis.Process, u int) int {
				if p.Black(u) {
					return 1
				}
				return 0
			},
			4,
		},
		{
			"3-state",
			func(opts ...mis.Option) mis.Process { return mis.NewThreeState(g, opts...) },
			func(p mis.Process, u int) int { return int(p.(*mis.ThreeState).State(u)) },
			4,
		},
		{
			"3-color",
			func(opts ...mis.Option) mis.Process { return mis.NewThreeColor(g, opts...) },
			func(p mis.Process, u int) int {
				tc := p.(*mis.ThreeColor)
				return int(tc.ColorOf(u))<<8 | int(tc.SwitchLevel(u))
			},
			8,
		},
	}
	for _, v := range variants {
		workers := []int{1, 8}[r.Intn(2)]
		kernOpts := []mis.Option{mis.WithSeed(seed), mis.WithWorkers(workers)}
		if r.Bit() {
			kernOpts = append(kernOpts, mis.WithFullRescan())
		}
		kern := v.mk(kernOpts...)
		scal := v.mk(mis.WithSeed(seed), mis.WithScalarEngine())
		limit := v.limitMul * mis.DefaultRoundCap(g.N())
		for rd := 0; rd < limit && !scal.Stabilized(); rd++ {
			kern.Step()
			scal.Step()
			for u := 0; u < g.N(); u++ {
				if v.stateOf(kern, u) != v.stateOf(scal, u) {
					return fmt.Sprintf("%s workers=%d round %d vertex %d: kernel=%#x scalar=%#x",
						v.name, workers, rd+1, u, v.stateOf(kern, u), v.stateOf(scal, u))
				}
			}
			if kern.Stabilized() != scal.Stabilized() {
				return fmt.Sprintf("%s workers=%d round %d: stabilization flags disagree", v.name, workers, rd+1)
			}
		}
		if !scal.Stabilized() {
			return fmt.Sprintf("%s: no stabilization within %d rounds", v.name, limit)
		}
		if kern.RandomBits() != scal.RandomBits() {
			return fmt.Sprintf("%s workers=%d bit accounting: kernel=%d scalar=%d",
				v.name, workers, kern.RandomBits(), scal.RandomBits())
		}
		if err := verify.MIS(g, kern.Black); err != nil {
			return v.name + " kernel stabilized to non-MIS: " + err.Error()
		}
	}
	return ""
}

// fuzzRelabel differentially fuzzes the locality relabeling (forced via
// WithDegreeOrder) against the identity ordering for all three rules: same
// graph, same seed, a random worker count in {1, 8}, randomly frontier or
// full-rescan, compared state-for-state in original vertex ids every round
// with exact random-bit accounting at stabilization. Each case also ships a
// mid-run checkpoint ACROSS the ordering boundary — saved under the
// relabeling, resumed without it — and the resumed run must replay the
// identity execution to stabilization.
func fuzzRelabel(g *graph.Graph, seed uint64) string {
	r := xrand.New(seed ^ 0xd1b54a32d192ed03)
	variants := []struct {
		name     string
		mk       func(opts ...mis.Option) mis.Process
		stateOf  func(p mis.Process, u int) int
		limitMul int
	}{
		{
			"2-state",
			func(opts ...mis.Option) mis.Process { return mis.NewTwoState(g, opts...) },
			func(p mis.Process, u int) int {
				if p.Black(u) {
					return 1
				}
				return 0
			},
			4,
		},
		{
			"3-state",
			func(opts ...mis.Option) mis.Process { return mis.NewThreeState(g, opts...) },
			func(p mis.Process, u int) int { return int(p.(*mis.ThreeState).State(u)) },
			4,
		},
		{
			"3-color",
			func(opts ...mis.Option) mis.Process { return mis.NewThreeColor(g, opts...) },
			func(p mis.Process, u int) int {
				tc := p.(*mis.ThreeColor)
				return int(tc.ColorOf(u))<<8 | int(tc.SwitchLevel(u))
			},
			8,
		},
	}
	for _, v := range variants {
		workers := []int{1, 8}[r.Intn(2)]
		relOpts := []mis.Option{mis.WithSeed(seed), mis.WithWorkers(workers), mis.WithDegreeOrder()}
		if r.Bit() {
			relOpts = append(relOpts, mis.WithFullRescan())
		}
		rel := v.mk(relOpts...)
		ident := v.mk(mis.WithSeed(seed), mis.WithIdentityOrder())
		limit := v.limitMul * mis.DefaultRoundCap(g.N())
		for rd := 0; rd < limit && !ident.Stabilized(); rd++ {
			rel.Step()
			ident.Step()
			for u := 0; u < g.N(); u++ {
				if v.stateOf(rel, u) != v.stateOf(ident, u) {
					return fmt.Sprintf("%s workers=%d round %d vertex %d: relabeled=%#x identity=%#x",
						v.name, workers, rd+1, u, v.stateOf(rel, u), v.stateOf(ident, u))
				}
			}
			if rel.Stabilized() != ident.Stabilized() {
				return fmt.Sprintf("%s workers=%d round %d: stabilization flags disagree", v.name, workers, rd+1)
			}
		}
		if !ident.Stabilized() {
			return fmt.Sprintf("%s: no stabilization within %d rounds", v.name, limit)
		}
		if rel.RandomBits() != ident.RandomBits() {
			return fmt.Sprintf("%s workers=%d bit accounting: relabeled=%d identity=%d",
				v.name, workers, rel.RandomBits(), ident.RandomBits())
		}
		if err := verify.MIS(g, rel.Black); err != nil {
			return v.name + " relabeled stabilized to non-MIS: " + err.Error()
		}
	}

	// Checkpoint portability across orderings: pause a relabeled 2-state run,
	// restore the snapshot WITHOUT the relabeling, and replay it against the
	// uninterrupted identity execution.
	full := mis.NewTwoState(g, mis.WithSeed(seed), mis.WithIdentityOrder())
	paused := mis.NewTwoState(g, mis.WithSeed(seed), mis.WithDegreeOrder())
	pauseAt := 1 + r.Intn(6)
	for i := 0; i < pauseAt; i++ {
		full.Step()
		paused.Step()
	}
	cp, err := paused.Checkpoint()
	if err != nil {
		return "cross-ordering checkpoint: " + err.Error()
	}
	blob, err := cp.Encode()
	if err != nil {
		return "cross-ordering encode: " + err.Error()
	}
	dec, err := mis.DecodeCheckpoint(blob)
	if err != nil {
		return "cross-ordering decode: " + err.Error()
	}
	restored, err := mis.RestoreTwoState(g, dec, mis.WithIdentityOrder())
	if err != nil {
		return "cross-ordering restore: " + err.Error()
	}
	limit := 4 * mis.DefaultRoundCap(g.N())
	for i := 0; i < limit && !full.Stabilized(); i++ {
		full.Step()
		restored.Step()
		for u := 0; u < g.N(); u++ {
			if full.Black(u) != restored.Black(u) {
				return fmt.Sprintf("cross-ordering resume diverged at round %d vertex %d", full.Round(), u)
			}
		}
	}
	if !restored.Stabilized() || full.RandomBits() != restored.RandomBits() {
		return fmt.Sprintf("cross-ordering resume accounting: stabilized=%v bits %d vs %d",
			restored.Stabilized(), full.RandomBits(), restored.RandomBits())
	}
	return ""
}

func fuzzThreeState(g *graph.Graph, seed uint64) string {
	opt := mis.NewThreeState(g, mis.WithSeed(seed))
	initial := make([]mis.TriState, g.N())
	for u := range initial {
		initial[u] = opt.State(u)
	}
	ref := mis.NewRefThreeState(g, seed, initial)
	limit := 4 * mis.DefaultRoundCap(g.N())
	for r := 0; r < limit && !opt.Stabilized(); r++ {
		opt.Step()
		ref.Step()
		for u := 0; u < g.N(); u++ {
			if opt.State(u) != ref.State(u) {
				return fmt.Sprintf("round %d vertex %d: opt=%v ref=%v", r+1, u, opt.State(u), ref.State(u))
			}
		}
	}
	if !opt.Stabilized() {
		return fmt.Sprintf("no stabilization within %d rounds", limit)
	}
	if err := verify.MIS(g, opt.Black); err != nil {
		return "stabilized to non-MIS: " + err.Error()
	}
	return ""
}

func fuzzAsync(g *graph.Graph, seed uint64) string {
	limit := 4 * mis.DefaultRoundCap(g.N())

	// ρ=1: the async medium must replay the simulator coin-for-coin.
	sim := mis.NewTwoState(g, mis.WithSeed(seed))
	simRes := mis.Run(sim, limit)
	lock := async.NewMIS(g, seed, async.NewBounded(1), nil)
	rounds, ok := lock.Run(limit)
	if ok != simRes.Stabilized || rounds != simRes.Rounds {
		return fmt.Sprintf("ρ=1 run (%d, %v) diverges from simulator (%d, %v)",
			rounds, ok, simRes.Rounds, simRes.Stabilized)
	}
	for u := 0; u < g.N(); u++ {
		if sim.Black(u) != lock.Black(u) {
			return fmt.Sprintf("ρ=1 vertex %d: sim=%v async=%v", u, sim.Black(u), lock.Black(u))
		}
	}
	if sim.RandomBits() != lock.RandomBits() {
		return fmt.Sprintf("ρ=1 bit accounting: sim=%d async=%d", sim.RandomBits(), lock.RandomBits())
	}

	// Random drift in (1, 3]: terminal configurations stay valid MISes and
	// every slot respects the drift bound (the engine panics otherwise; the
	// observed extremes are re-checked here as a belt-and-braces property).
	r := xrand.New(seed ^ 0xA5A5A5A5A5A5A5A5)
	rho := 1 + r.Float64()*2
	drifted := async.NewThreeStateMIS(g, seed, async.NewBounded(rho), nil)
	if _, ok := drifted.Run(2 * limit); !ok {
		return fmt.Sprintf("ρ=%.4f 3-state did not stabilize within %d rounds", rho, 2*limit)
	}
	if err := verify.MIS(g, drifted.Black); err != nil {
		return fmt.Sprintf("ρ=%.4f terminal config: %v", rho, err)
	}
	min, max := drifted.Engine().ObservedSlotLens()
	if min < async.SlotTicks || max > async.MaxSlotTicks(rho) {
		return fmt.Sprintf("ρ=%.4f observed slot lengths [%d, %d] outside [%d, %d]",
			rho, min, max, int64(async.SlotTicks), async.MaxSlotTicks(rho))
	}
	return ""
}

func fuzzThreeColor(g *graph.Graph, seed uint64) string {
	opt := mis.NewThreeColor(g, mis.WithSeed(seed))
	colors := make([]mis.Color, g.N())
	levels := make([]uint8, g.N())
	for u := 0; u < g.N(); u++ {
		colors[u] = opt.ColorOf(u)
		levels[u] = opt.SwitchLevel(u)
	}
	ref := mis.NewRefThreeColor(g, seed, colors, levels)
	limit := 8 * mis.DefaultRoundCap(g.N())
	for r := 0; r < limit && !opt.Stabilized(); r++ {
		opt.Step()
		ref.Step()
		for u := 0; u < g.N(); u++ {
			if opt.ColorOf(u) != ref.ColorOf(u) {
				return fmt.Sprintf("round %d vertex %d: color opt=%v ref=%v", r+1, u, opt.ColorOf(u), ref.ColorOf(u))
			}
			if opt.SwitchLevel(u) != ref.Level(u) {
				return fmt.Sprintf("round %d vertex %d: level opt=%d ref=%d", r+1, u, opt.SwitchLevel(u), ref.Level(u))
			}
		}
	}
	if !opt.Stabilized() {
		return fmt.Sprintf("no stabilization within %d rounds", limit)
	}
	if err := verify.MIS(g, opt.Black); err != nil {
		return "stabilized to non-MIS: " + err.Error()
	}
	return ""
}

// fuzzSnapshot checkpoints executions mid-run through the full
// encode/decode path, resumes them, and requires the resumed runs to match
// the uninterrupted ones exactly; it then mutates the encoded bytes and
// requires every damaged variant to be rejected.
func fuzzSnapshot(g *graph.Graph, seed uint64) string {
	r := xrand.New(seed ^ 0x5bd1e9955bd1e995)
	limit := 8 * mis.DefaultRoundCap(g.N())

	// Synchronous 3-color resume (the process with the most snapshot
	// surface: colors, switch levels, clock bit accounting).
	full := mis.NewThreeColor(g, mis.WithSeed(seed))
	paused := mis.NewThreeColor(g, mis.WithSeed(seed))
	pauseAt := 1 + r.Intn(8)
	for i := 0; i < pauseAt; i++ {
		full.Step()
		paused.Step()
	}
	cp, err := paused.Checkpoint()
	if err != nil {
		return "checkpoint: " + err.Error()
	}
	blob, err := cp.Encode()
	if err != nil {
		return "encode: " + err.Error()
	}

	// Damage: random truncations and byte flips, plus a version-skewed
	// header with a valid checksum, must all be rejected.
	for k := 0; k < 6; k++ {
		if _, err := mis.DecodeCheckpoint(blob[:r.Intn(len(blob))]); err == nil {
			return "truncated snapshot accepted"
		}
		mut := append([]byte(nil), blob...)
		pos := r.Intn(len(mut))
		mut[pos] ^= byte(1 + r.Intn(255))
		if _, err := mis.DecodeCheckpoint(mut); err == nil {
			return fmt.Sprintf("corrupted snapshot (byte %d) accepted", pos)
		}
	}
	skew := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(skew[8:], snapshot.Version+1+uint32(r.Intn(7)))
	binary.LittleEndian.PutUint32(skew[len(skew)-4:], crc32.ChecksumIEEE(skew[:len(skew)-4]))
	if _, err := mis.DecodeCheckpoint(skew); !errors.Is(err, snapshot.ErrVersion) {
		return fmt.Sprintf("version-skewed snapshot: %v, want ErrVersion", err)
	}

	decoded, err := mis.DecodeCheckpoint(blob)
	if err != nil {
		return "decode: " + err.Error()
	}
	restored, err := mis.RestoreThreeColor(g, decoded)
	if err != nil {
		return "restore: " + err.Error()
	}
	for i := 0; i < limit && !full.Stabilized(); i++ {
		full.Step()
		restored.Step()
		for u := 0; u < g.N(); u++ {
			if full.ColorOf(u) != restored.ColorOf(u) || full.SwitchLevel(u) != restored.SwitchLevel(u) {
				return fmt.Sprintf("resume diverged at round %d vertex %d", full.Round(), u)
			}
		}
	}
	if !restored.Stabilized() || full.RandomBits() != restored.RandomBits() {
		return fmt.Sprintf("resume accounting: stabilized=%v bits %d vs %d",
			restored.Stabilized(), full.RandomBits(), restored.RandomBits())
	}

	// Daemon-scheduled 2-state resume: the scheduler stream rides in the
	// snapshot, so the resumed schedule must equal the uninterrupted one.
	d1, d2 := sched.CentralRandom{}, sched.CentralRandom{}
	dfull := mis.NewTwoState(g, mis.WithSeed(seed))
	dpaused := mis.NewTwoState(g, mis.WithSeed(seed))
	dPauseAt := 1 + r.Intn(3*g.N())
	for i := 0; i < dPauseAt; i++ {
		if !dfull.DaemonStep(d1) {
			break
		}
		dpaused.DaemonStep(d2)
	}
	dcp, err := dpaused.Checkpoint()
	if err != nil {
		return "daemon checkpoint: " + err.Error()
	}
	dblob, err := dcp.Encode()
	if err != nil {
		return "daemon encode: " + err.Error()
	}
	ddec, err := mis.DecodeCheckpoint(dblob)
	if err != nil {
		return "daemon decode: " + err.Error()
	}
	dres, err := mis.RestoreTwoState(g, ddec)
	if err != nil {
		return "daemon restore: " + err.Error()
	}
	stepCap := mis.DefaultDaemonStepCap(g.N())
	for dfull.Steps() < stepCap && !dfull.Stabilized() {
		if !dfull.DaemonStep(d1) {
			break
		}
		dres.DaemonStep(d2)
		for u := 0; u < g.N(); u++ {
			if dfull.Black(u) != dres.Black(u) {
				return fmt.Sprintf("daemon resume diverged at step %d vertex %d", dfull.Steps(), u)
			}
		}
	}
	if dfull.Stabilized() != dres.Stabilized() || dfull.Moves() != dres.Moves() {
		return fmt.Sprintf("daemon resume accounting: stabilized %v/%v moves %d/%d",
			dfull.Stabilized(), dres.Stabilized(), dfull.Moves(), dres.Moves())
	}
	return ""
}

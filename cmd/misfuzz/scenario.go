package main

// Scenario-codec fuzzing: randomly built valid scenarios must round-trip
// through the JSON codec with Plan equality (Encode is a fixed point), and
// random mutations of the encoded bytes — truncations, byte flips, inserted
// JSON punctuation — must come back as one of the codec's typed errors
// (ErrSyntax, ErrVersion, *ValidationError) without ever panicking.
// Accepting damaged input, or dying on it, are the declarative layer's two
// forbidden failure modes.

import (
	"errors"
	"fmt"
	"math"

	"ssmis/internal/experiment"
	"ssmis/internal/scenario"
	"ssmis/internal/sched"
	"ssmis/internal/xrand"
)

func fuzzScenario(seed uint64) (msg string) {
	defer func() {
		if p := recover(); p != nil {
			msg = fmt.Sprintf("scenario codec panicked: %v", p)
		}
	}()
	r := xrand.New(seed ^ 0x517cc1b727220a95)

	s, err := randomScenario(r)
	if err != nil {
		return "generated scenario rejected: " + err.Error()
	}
	wantPlan, err := s.Plan()
	if err != nil {
		return "generated scenario plan: " + err.Error()
	}
	data, err := scenario.Encode(s)
	if err != nil {
		return "encode: " + err.Error()
	}
	back, err := scenario.Decode(data)
	if err != nil {
		return "decode of own encoding: " + err.Error()
	}
	gotPlan, err := back.Plan()
	if err != nil {
		return "round-tripped plan: " + err.Error()
	}
	if len(gotPlan) != len(wantPlan) {
		return fmt.Sprintf("plan length changed across round trip: %d vs %d", len(gotPlan), len(wantPlan))
	}
	for i := range wantPlan {
		if gotPlan[i] != wantPlan[i] {
			return fmt.Sprintf("plan line %d changed across round trip:\n  before: %s\n  after:  %s",
				i, wantPlan[i], gotPlan[i])
		}
	}
	data2, err := scenario.Encode(back)
	if err != nil {
		return "re-encode: " + err.Error()
	}
	if string(data2) != string(data) {
		return "Encode is not a fixed point across Decode"
	}
	if _, err := back.Compile(); err != nil {
		return "round-tripped scenario does not compile: " + err.Error()
	}

	// Damage the bytes: every mutant must decode to a typed error or to a
	// scenario that still encodes and plans (a mutation can land on a value
	// and keep the document valid).
	for k := 0; k < 10; k++ {
		mut := mutateScenarioBytes(r, data)
		ms, err := scenario.Decode(mut)
		if err == nil {
			if _, err := ms.Plan(); err != nil {
				return "mutant decoded but does not plan: " + err.Error()
			}
			continue
		}
		var ve *scenario.ValidationError
		if !errors.Is(err, scenario.ErrSyntax) && !errors.Is(err, scenario.ErrVersion) && !errors.As(err, &ve) {
			return fmt.Sprintf("mutant produced an untyped error: %v", err)
		}
	}
	return ""
}

// randomScenario assembles a valid scenario from random draws over the
// registries — every runtime flavor, unit type, and graph family is
// reachable.
func randomScenario(r *xrand.Rand) (*scenario.Scenario, error) {
	b := scenario.New(fmt.Sprintf("fuzz-%d", r.Intn(1_000_000)))
	if r.Bit() {
		b.Title("fuzzed scenario")
	}
	units := 1 + r.Intn(3)
	for i := 0; i < units; i++ {
		switch r.Intn(3) {
		case 0:
			randomScalingUnit(r, b, i)
		case 1:
			randomDaemonMatrixUnit(r, b, i)
		default:
			randomFaultUnit(r, b, i)
		}
	}
	return b.Build()
}

func randomScalingUnit(r *xrand.Rand, b *scenario.Builder, i int) {
	sb := b.Scaling(fmt.Sprintf("fuzz scaling %d (100%% random)", i)).
		Graph(randomFamily(r)).
		Sizes(8+r.Intn(256), 8+r.Intn(1024)).
		Trials(1 + r.Intn(40))
	if r.Bit() {
		sb.SeedOffset(r.Uint64() % 1000)
	}
	if r.Bit() {
		sb.RoundCap(32 + r.Intn(4096))
	}
	kinds := experiment.KindNames()
	switch r.Intn(4) {
	case 0: // sync: any process, every sync-only extra is available
		sb.Process(kinds[r.Intn(len(kinds))])
		if r.Bit() {
			sb.Tail(fmt.Sprintf("fuzz tail %d", i), 1+r.Intn(8))
		}
		if r.Bit() {
			sb.MaxFit("max grows like ln^%.2f(n)")
		}
		if r.Bit() {
			sb.Metrics("rounds", "local-times")
		}
	case 1:
		sb.Process("2-state").Runtime("beeping")
	case 2:
		sb.Process([]string{"3-state", "3-color"}[r.Intn(2)]).Runtime("stone-age")
	default:
		sb.Process([]string{"2-state", "3-state"}[r.Intn(2)])
		rho := 1 + r.Float64()*3
		switch r.Intn(3) {
		case 0:
			sb.AsyncBounded(rho)
		case 1:
			sb.AsyncEventualSync(rho, r.Intn(64))
		default:
			sb.AsyncAdversarial(rho)
		}
	}
	if r.Bit() {
		sb.ClaimNotes("fuzz note").PolylogFit()
	}
}

func randomDaemonMatrixUnit(r *xrand.Rand, b *scenario.Builder, i int) {
	db := b.DaemonMatrix(fmt.Sprintf("fuzz daemons %d: n={n}, {trials} trials", i)).
		Processes([][]string{{"2-state"}, {"3-state"}, {"2-state", "3-state"}}[r.Intn(3)]...).
		Graph(randomFamily(r)).
		N(16+r.Intn(512), 8).
		Trials(1 + r.Intn(10))
	if r.Bit() {
		names := sched.DaemonNames()
		db.Daemons(names[:1+r.Intn(len(names))]...)
	}
	if r.Bit() {
		db.Sequential(r.Uint64() % 1000)
	}
	if r.Bit() {
		db.SeedOffset(r.Uint64() % 1000)
	}
}

func randomFaultUnit(r *xrand.Rand, b *scenario.Builder, i int) {
	fb := b.Fault(fmt.Sprintf("fuzz faults %d: n={n}, k={k}", i)).
		Processes("2-state").
		Graph(randomFamily(r)).
		N(16+r.Intn(256), 8).
		CorruptFraction(0.01 + r.Float64()*0.99).
		Trials(1 + r.Intn(8))
	if r.Bit() {
		names := experiment.FaultAdversaryNames()
		fb.Adversaries(names[:1+r.Intn(len(names))]...)
	}
	if r.Bit() {
		fb.SeedOffset(r.Uint64() % 1000)
	}
}

// randomFamily draws a graph family and a valid binding for its parameters.
func randomFamily(r *xrand.Rand) (string, scenario.Params) {
	fams := scenario.Families()
	fam := fams[r.Intn(len(fams))]
	var params scenario.Params
	for _, p := range fam.Params {
		if !p.Required && r.Bit() {
			continue // exercise the default
		}
		lo := p.Min
		hi := p.Max
		if hi == 0 {
			hi = lo + 8
		}
		v := lo + r.Float64()*(hi-lo)
		if p.Int {
			v = math.Trunc(v)
			if v < lo {
				v = math.Trunc(lo)
			}
		}
		if params == nil {
			params = scenario.Params{}
		}
		params[p.Name] = v
	}
	return fam.Name, params
}

// mutateScenarioBytes damages an encoded scenario: truncation, byte flips,
// or inserted JSON punctuation.
func mutateScenarioBytes(r *xrand.Rand, data []byte) []byte {
	mut := append([]byte(nil), data...)
	switch r.Intn(3) {
	case 0:
		mut = mut[:r.Intn(len(mut))]
	case 1:
		for i := 0; i < 1+r.Intn(4); i++ {
			pos := r.Intn(len(mut))
			mut[pos] ^= byte(1 + r.Intn(255))
		}
	default:
		punct := []byte(`"{}[]:,0x`)
		pos := r.Intn(len(mut) + 1)
		ins := punct[r.Intn(len(punct))]
		mut = append(mut[:pos:pos], append([]byte{ins}, mut[pos:]...)...)
	}
	return mut
}

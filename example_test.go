package ssmis_test

import (
	"bytes"
	"fmt"

	"ssmis"
)

// The canonical workflow: build a graph, run a process, certify the MIS.
func Example() {
	g := ssmis.Cycle(9)
	p := ssmis.NewTwoState(g, ssmis.WithSeed(3))
	res := ssmis.Run(p, 0)
	set := ssmis.BlackSet(p)
	fmt.Println("stabilized:", res.Stabilized)
	fmt.Println("valid MIS:", ssmis.VerifyMIS(g, set) == nil)
	// Output:
	// stabilized: true
	// valid MIS: true
}

// Self-stabilization: any initial state vector converges — here the fully
// adversarial all-black configuration on a clique, where every vertex
// conflicts with every other.
func ExampleWithInit() {
	g := ssmis.Complete(64)
	p := ssmis.NewTwoState(g, ssmis.WithSeed(1), ssmis.WithInit(ssmis.InitAllBlack))
	ssmis.Run(p, 0)
	fmt.Println("MIS size on a clique:", len(ssmis.BlackSet(p)))
	// Output:
	// MIS size on a clique: 1
}

// Runs are pure functions of (graph, seed, init): identical seeds replay
// identical executions.
func ExampleRun_deterministic() {
	g := ssmis.GnpAvgDegree(500, 8, 11)
	a := ssmis.Run(ssmis.NewTwoState(g, ssmis.WithSeed(5)), 0)
	b := ssmis.Run(ssmis.NewTwoState(g, ssmis.WithSeed(5)), 0)
	fmt.Println("same rounds:", a.Rounds == b.Rounds)
	fmt.Println("same bits:", a.RandomBits == b.RandomBits)
	// Output:
	// same rounds: true
	// same bits: true
}

// Graphs round-trip through the edge-list interchange format.
func ExampleWriteGraphEdgeList() {
	g := ssmis.Path(4)
	var buf bytes.Buffer
	if err := ssmis.WriteGraphEdgeList(&buf, g); err != nil {
		fmt.Println(err)
		return
	}
	back, err := ssmis.ReadGraphEdgeList(&buf)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("vertices:", back.N(), "edges:", back.M())
	// Output:
	// vertices: 4 edges: 3
}

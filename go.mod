module ssmis

go 1.24

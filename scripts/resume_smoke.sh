#!/usr/bin/env bash
# Kill-and-resume smoke for sweep checkpointing: start a checkpointing
# `missweep -run all`, SIGKILL it mid-grid, resume from the checkpoint at
# workers=1 and workers=8, and require the final tables (the -out CSVs,
# which cover sync, daemon, and async cells) to be byte-identical to an
# uninterrupted run's. Exercises the whole stack: periodic atomic snapshot
# writes under pool quiesce, envelope validation on load, journal replay
# through the reorder buffer, and purity of the re-run remainder.
set -euo pipefail

BIN=${1:?usage: resume_smoke.sh <missweep-binary>}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Uninterrupted references at two worker counts (must already agree).
"$BIN" -run all -scale 0.05 -workers 1 -out "$WORK/ref1" > /dev/null
"$BIN" -run all -scale 0.05 -workers 8 -out "$WORK/ref8" > /dev/null
diff -r "$WORK/ref1" "$WORK/ref8"

# Checkpointing run, SIGKILLed mid-grid. Frequent checkpoints + an early
# kill make a mid-grid cut overwhelmingly likely; if the machine is fast
# enough that the sweep finishes first, the resume still validates the
# full-replay path (warned below so the log shows which case ran).
"$BIN" -run all -scale 0.05 -workers 8 \
  -checkpoint "$WORK/sweep.ckpt" -checkpoint-every 300ms \
  -out "$WORK/killed" > /dev/null 2>&1 &
PID=$!
sleep 1.5
if kill -9 "$PID" 2>/dev/null; then
  echo "SIGKILLed checkpointing sweep mid-grid (pid $PID)"
else
  echo "warning: sweep finished before the kill; resume exercises full replay"
fi
wait "$PID" 2>/dev/null || true
test -f "$WORK/sweep.ckpt" || { echo "no checkpoint was written"; exit 1; }

# Resume at both worker counts. Each resume gets its own checkpoint copy
# (resuming extends the file as the sweep completes).
cp "$WORK/sweep.ckpt" "$WORK/sweep8.ckpt"
"$BIN" -run all -scale 0.05 -workers 1 -checkpoint "$WORK/sweep.ckpt" -resume -out "$WORK/res1" > /dev/null
"$BIN" -run all -scale 0.05 -workers 8 -checkpoint "$WORK/sweep8.ckpt" -resume -out "$WORK/res8" > /dev/null
diff -r "$WORK/ref1" "$WORK/res1"
diff -r "$WORK/ref1" "$WORK/res8"

# A corrupted checkpoint must refuse to resume (exit nonzero), not resume
# silently wrong. The resume flags match the checkpoint's identity exactly,
# so only the envelope validation (truncation detection) can reject it.
SZ=$(wc -c < "$WORK/sweep8.ckpt")
head -c $((SZ / 2)) "$WORK/sweep8.ckpt" > "$WORK/torn.ckpt"
if "$BIN" -run all -scale 0.05 -workers 8 -checkpoint "$WORK/torn.ckpt" -resume > /dev/null 2>&1; then
  echo "truncated checkpoint was accepted"; exit 1
fi

echo "resume smoke: byte-identical tables after SIGKILL at workers=1 and 8; damaged checkpoint rejected"

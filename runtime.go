package ssmis

import (
	"ssmis/internal/async"
	"ssmis/internal/beeping"
	"ssmis/internal/stoneage"
)

// BeepingMIS is the 2-state MIS process running as one goroutine per node
// under the beeping model with sender collision detection: black nodes beep,
// white nodes listen, and a node that finds its color inconsistent with what
// it heard re-randomizes. Close it when done to release the node goroutines.
type BeepingMIS = beeping.MIS

// NewBeepingMIS starts the beeping-model protocol on g. initialBlack may be
// nil for a uniformly random initial coloring. The execution is coin-for-
// coin identical to NewTwoState(g, WithSeed(seed)) — the shared frontier
// engine and the message-passing runtime are two engines for one process,
// asserted across graph families by the cross-engine equivalence tests.
func NewBeepingMIS(g *Graph, seed uint64, initialBlack []bool) *BeepingMIS {
	return beeping.NewMIS(g, seed, initialBlack)
}

// StoneAgeThreeState is the 3-state MIS process running under the
// synchronous stone age model (2 beep channels, no collision detection).
type StoneAgeThreeState = stoneage.ThreeStateMIS

// NewStoneAgeThreeState starts the stone-age 3-state protocol on g.
func NewStoneAgeThreeState(g *Graph, seed uint64) *StoneAgeThreeState {
	return stoneage.NewThreeStateMIS(g, seed, nil)
}

// StoneAgeThreeColor is the 18-state 3-color MIS process running under the
// synchronous stone age model (12 beep channels encoding color × switch
// level).
type StoneAgeThreeColor = stoneage.ThreeColorMIS

// NewStoneAgeThreeColor starts the stone-age 3-color protocol on g.
func NewStoneAgeThreeColor(g *Graph, seed uint64) *StoneAgeThreeColor {
	return stoneage.NewThreeColorMIS(g, seed, nil, nil)
}

// Drift is a per-node clock model for the asynchronous beeping medium: it
// decides how long each local slot lasts, within the drift bound
// ρ = (longest slot)/(shortest slot). ρ = 1 collapses the medium to
// lockstep synchrony.
type Drift = async.Drift

// BoundedDrift returns the bounded-drift clock model: every slot length is
// drawn independently and uniformly within the bound rho >= 1.
func BoundedDrift(rho float64) Drift { return async.NewBounded(rho) }

// EventualSyncDrift returns the GST-style eventual-synchrony model: clocks
// drift within rho until gstSlots base slots of virtual time have passed
// and run at the base rate afterwards (rates synchronize, phases stay
// offset).
func EventualSyncDrift(rho float64, gstSlots int) Drift { return async.NewEventualSync(rho, gstSlots) }

// AdversarialDrift returns the deterministic worst case within rho:
// even-indexed nodes always run their fastest slots and odd-indexed nodes
// their slowest, sustaining the maximum rate gap the bound allows.
func AdversarialDrift(rho float64) Drift { return async.NewAdversarial(rho) }

// AsyncMIS is the 2-state MIS process running on the asynchronous beeping
// medium: per-node clocks advanced by a drift model, beeps occupying real
// slot intervals, and interval-overlap hearing. At ρ = 1 an execution is
// coin-for-coin identical to NewBeepingMIS (and so to NewTwoState). No
// Close is needed — the medium is a single-goroutine event simulation.
type AsyncMIS = async.MIS

// NewAsyncMIS starts the 2-state protocol on the asynchronous medium.
// initialBlack may be nil for a uniformly random initial coloring.
func NewAsyncMIS(g *Graph, seed uint64, drift Drift, initialBlack []bool) *AsyncMIS {
	return async.NewMIS(g, seed, drift, initialBlack)
}

// AsyncThreeState is the 3-state MIS process running on the asynchronous
// 2-channel stone age medium. At ρ = 1 an execution is coin-for-coin
// identical to NewStoneAgeThreeState (and so to NewThreeState).
type AsyncThreeState = async.ThreeStateMIS

// NewAsyncThreeState starts the 3-state protocol on the asynchronous
// medium.
func NewAsyncThreeState(g *Graph, seed uint64, drift Drift) *AsyncThreeState {
	return async.NewThreeStateMIS(g, seed, drift, nil)
}

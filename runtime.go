package ssmis

import (
	"ssmis/internal/beeping"
	"ssmis/internal/stoneage"
)

// BeepingMIS is the 2-state MIS process running as one goroutine per node
// under the beeping model with sender collision detection: black nodes beep,
// white nodes listen, and a node that finds its color inconsistent with what
// it heard re-randomizes. Close it when done to release the node goroutines.
type BeepingMIS = beeping.MIS

// NewBeepingMIS starts the beeping-model protocol on g. initialBlack may be
// nil for a uniformly random initial coloring. The execution is coin-for-
// coin identical to NewTwoState(g, WithSeed(seed)) — the shared frontier
// engine and the message-passing runtime are two engines for one process,
// asserted across graph families by the cross-engine equivalence tests.
func NewBeepingMIS(g *Graph, seed uint64, initialBlack []bool) *BeepingMIS {
	return beeping.NewMIS(g, seed, initialBlack)
}

// StoneAgeThreeState is the 3-state MIS process running under the
// synchronous stone age model (2 beep channels, no collision detection).
type StoneAgeThreeState = stoneage.ThreeStateMIS

// NewStoneAgeThreeState starts the stone-age 3-state protocol on g.
func NewStoneAgeThreeState(g *Graph, seed uint64) *StoneAgeThreeState {
	return stoneage.NewThreeStateMIS(g, seed, nil)
}

// StoneAgeThreeColor is the 18-state 3-color MIS process running under the
// synchronous stone age model (12 beep channels encoding color × switch
// level).
type StoneAgeThreeColor = stoneage.ThreeColorMIS

// NewStoneAgeThreeColor starts the stone-age 3-color protocol on g.
func NewStoneAgeThreeColor(g *Graph, seed uint64) *StoneAgeThreeColor {
	return stoneage.NewThreeColorMIS(g, seed, nil, nil)
}

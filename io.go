package ssmis

import (
	"io"

	"ssmis/internal/graphio"
)

// WriteGraphEdgeList writes g in the edge-list text format ("n <count>"
// header, one "u v" pair per line, '#' comments).
func WriteGraphEdgeList(w io.Writer, g *Graph) error {
	return graphio.WriteEdgeList(w, g)
}

// ReadGraphEdgeList parses the edge-list text format.
func ReadGraphEdgeList(r io.Reader) (*Graph, error) {
	return graphio.ReadEdgeList(r)
}

// WriteGraphJSON writes g as {"n":..., "edges":[[u,v],...]}.
func WriteGraphJSON(w io.Writer, g *Graph) error {
	return graphio.WriteJSON(w, g)
}

// ReadGraphJSON parses the JSON graph interchange format.
func ReadGraphJSON(r io.Reader) (*Graph, error) {
	return graphio.ReadJSON(r)
}

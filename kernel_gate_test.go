package ssmis_test

// Kernel speed gate: the bit-sliced 2-state kernel against the scalar
// interface path on the BenchmarkEngineFrontierGnp1M workload. The two paths
// run coin-for-coin identical executions (same seeds, same rounds, same
// terminal MIS), so the wall-clock ratio is a pure execution-path
// comparison — a benchstat-style before/after with the noise of differing
// work removed by construction. CI runs this on the 1-CPU runner and fails
// the build if the kernel is not at least minKernelSpeedup faster; the
// measurement JSON lands in the file named by BENCH_KERNEL_OUT (skipped when
// unset, so ordinary `go test ./...` never pays the n=10^6 runs).
//
// Regenerate with:
//
//	BENCH_KERNEL_OUT=$PWD/BENCH_kernel.json go test -run TestKernelSpeedupGate .

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"ssmis"
)

const minKernelSpeedup = 1.3

func TestKernelSpeedupGate(t *testing.T) {
	outPath := os.Getenv("BENCH_KERNEL_OUT")
	if outPath == "" {
		t.Skip("BENCH_KERNEL_OUT not set")
	}
	g := ssmis.GnpAvgDegree(1000000, 10, 7)
	const seeds = 5
	// Total time over a fixed seed set; both paths replay the exact same
	// executions, so the totals are directly comparable.
	measure := func(opts ...ssmis.Option) (time.Duration, int) {
		var total time.Duration
		rounds := 0
		for seed := uint64(0); seed < seeds; seed++ {
			all := append([]ssmis.Option{ssmis.WithSeed(seed)}, opts...)
			start := time.Now()
			res := ssmis.Run(ssmis.NewTwoState(g, all...), 0)
			total += time.Since(start)
			if !res.Stabilized {
				t.Fatalf("seed %d did not stabilize", seed)
			}
			rounds += res.Rounds
		}
		return total, rounds
	}
	// Warm-up both paths on a smaller instance (page-in, branch predictors).
	warm := ssmis.GnpAvgDegree(100000, 10, 7)
	ssmis.Run(ssmis.NewTwoState(warm, ssmis.WithScalarEngine()), 0)
	ssmis.Run(ssmis.NewTwoState(warm), 0)

	scalarNs, scalarRounds := measure(ssmis.WithScalarEngine())
	kernelNs, kernelRounds := measure()
	if scalarRounds != kernelRounds {
		t.Fatalf("paths diverged: scalar %d rounds, kernel %d rounds", scalarRounds, kernelRounds)
	}
	speedup := float64(scalarNs.Nanoseconds()) / float64(kernelNs.Nanoseconds())

	type row struct {
		Name     string `json:"name"`
		NsPerRun int64  `json:"ns_per_run"`
	}
	report := map[string]any{
		"description": "Bit-sliced 2-state kernel vs the scalar interface path on the BenchmarkEngineFrontierGnp1M workload (G(n=10^6, avg degree 10), full time-to-stabilization including process construction, total over seeds 0-4; both paths replay identical executions). Gate: speedup >= 1.3 or the test fails. Regenerate with: BENCH_KERNEL_OUT=$PWD/BENCH_kernel.json go test -run TestKernelSpeedupGate .",
		"environment": map[string]any{
			"goos":         runtime.GOOS,
			"goarch":       runtime.GOARCH,
			"logical_cpus": runtime.NumCPU(),
			"gomaxprocs":   runtime.GOMAXPROCS(0),
			"go":           runtime.Version(),
		},
		"results": []row{
			{Name: "scalar_frontier_gnp1m", NsPerRun: scalarNs.Nanoseconds() / seeds},
			{Name: "kernel_frontier_gnp1m", NsPerRun: kernelNs.Nanoseconds() / seeds},
		},
		"rounds_total": kernelRounds,
		"speedup":      speedup,
		"gate":         minKernelSpeedup,
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("scalar %v, kernel %v, speedup %.2fx", scalarNs, kernelNs, speedup)
	if speedup < minKernelSpeedup {
		t.Fatalf("kernel speedup %.2fx below the %.1fx gate on this runner", speedup, minKernelSpeedup)
	}
}

package ssmis_test

// Kernel speed gate: the bit-sliced kernels against the scalar interface
// path, one row pair per rule — 2-state and 3-state on the
// BenchmarkEngineFrontierGnp1M workload, 3-color on the n=10^5 instance
// (its phase clock drives ~1200 rounds per run, so n=10^6 costs minutes).
// Each pair runs coin-for-coin identical executions (same seeds, same
// rounds, same terminal MIS), so the wall-clock ratio is a pure
// execution-path comparison — a benchstat-style before/after with the noise
// of differing work removed by construction. Shared-runner noise is purely
// additive (scheduler steal inflates a run, never deflates it), so each
// (path, seed) records the minimum of a few repetitions, with the two
// paths interleaved per seed in alternating order so drift cancels. CI
// runs this on the 1-CPU runner and fails the build if a gated rule is not
// at least its minimum-speedup factor faster: 1.2x for both the 2-state
// XOR-flip fast path and the generic two-lane 3-state path. The 3-color pair is recorded
// ungated — its rounds are dominated by the scalar phase-clock sub-process,
// which both paths share, so the ratio mostly measures the clock. The
// measurement JSON lands in the file named by BENCH_KERNEL_OUT (skipped
// when unset, so ordinary `go test ./...` never pays the n=10^6 runs).
//
// Regenerate with:
//
//	BENCH_KERNEL_OUT=$PWD/BENCH_kernel.json go test -run TestKernelSpeedupGate .

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"ssmis"
	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/xrand"
)

// Both kernel gates sit ~7-15% under the measured min-based speedups
// (2-state ~1.28x, 3-state ~1.35x), so they catch real regressions without
// flaking on residual noise. The 2-state gate was 1.3 when the measurement
// was a plain mean: additive scheduler steal inflates the longer scalar runs
// more, which read as ~1.4x; the min-of-reps methodology removes that
// flattery and reads ~1.28x for the identical binary. The 3-color pair is
// gated only as a never-lose floor at 0.95x: its rounds are dominated by the
// scalar phase-clock sub-process both paths share, so the ratio hovers near
// 1.0x and the floor exists to catch the kernel path actively regressing
// the rule, not to claim a win.
const (
	minKernelSpeedup       = 1.2  // 2-state, the XOR-flip fast path
	minKernelSpeedup3State = 1.2  // 3-state, the generic two-lane path
	minKernelSpeedup3Color = 0.95 // 3-color, never-lose floor (clock-dominated)
)

func TestKernelSpeedupGate(t *testing.T) {
	outPath := os.Getenv("BENCH_KERNEL_OUT")
	if outPath == "" {
		t.Skip("BENCH_KERNEL_OUT not set")
	}
	g1m := ssmis.GnpAvgDegree(1000000, 10, 7)
	g100k := ssmis.GnpAvgDegree(100000, 10, 7)
	const seeds = 5

	rules := []struct {
		name string
		slug string
		g    *ssmis.Graph
		mk   func(g *ssmis.Graph, opts ...ssmis.Option) ssmis.Process
		gate float64 // 0 = record only
		reps int     // min-of-reps per (path, seed); see the noise note below
	}{
		{"2-state", "frontier_gnp1m", g1m,
			func(g *ssmis.Graph, opts ...ssmis.Option) ssmis.Process { return ssmis.NewTwoState(g, opts...) },
			minKernelSpeedup, 3},
		{"3-state", "3state_gnp1m", g1m,
			func(g *ssmis.Graph, opts ...ssmis.Option) ssmis.Process { return ssmis.NewThreeState(g, opts...) },
			minKernelSpeedup3State, 2},
		// The 3-color pair runs at n = 10^5: its round count is driven by the
		// O(log^2 n)-period phase clock (≈1200 rounds at this size), so the
		// n = 10^6 instance costs minutes per run — far past the CI budget —
		// without changing what the ratio measures. Two repetitions: the pair
		// carries only the 0.95x never-lose floor, so a modest min-of-2 is
		// enough noise control for a gate this slack.
		{"3-color", "3color_gnp100k", g100k,
			func(g *ssmis.Graph, opts ...ssmis.Option) ssmis.Process { return ssmis.NewThreeColor(g, opts...) },
			minKernelSpeedup3Color, 2},
	}

	type row struct {
		Name     string `json:"name"`
		NsPerRun int64  `json:"ns_per_run"`
	}
	var rows []row
	speedups := map[string]float64{}
	gates := map[string]float64{}
	roundsTotal := map[string]int{}

	for _, rule := range rules {
		// Total time over a fixed seed set; both paths replay the exact same
		// executions, so the totals are directly comparable. Against the
		// shared runner's noise each (path, seed) takes the minimum of
		// rule.reps repetitions — scheduler steal only ever inflates a run,
		// so the min approaches the true time — with the two paths
		// interleaved in per-seed alternating order so drift hits both
		// totals symmetrically.
		pathOpts := [2][]ssmis.Option{{ssmis.WithScalarEngine()}, {}}
		var totals [2]time.Duration
		var rounds [2]int
		one := func(i int, seed uint64, countRounds bool) time.Duration {
			all := append([]ssmis.Option{ssmis.WithSeed(seed)}, pathOpts[i]...)
			start := time.Now()
			res := ssmis.Run(rule.mk(rule.g, all...), 0)
			d := time.Since(start)
			if !res.Stabilized {
				t.Fatalf("%s seed %d did not stabilize", rule.name, seed)
			}
			if countRounds {
				rounds[i] += res.Rounds
			}
			return d
		}
		// Warm-up both paths on a smaller instance (page-in, branch
		// predictors).
		ssmis.Run(rule.mk(g100k, ssmis.WithScalarEngine()), 0)
		ssmis.Run(rule.mk(g100k), 0)

		for seed := uint64(0); seed < seeds; seed++ {
			mins := [2]time.Duration{1 << 62, 1 << 62}
			for rep := 0; rep < rule.reps; rep++ {
				for _, i := range [2]int{int(seed) % 2, 1 - int(seed)%2} {
					if d := one(i, seed, rep == 0); d < mins[i] {
						mins[i] = d
					}
				}
			}
			totals[0] += mins[0]
			totals[1] += mins[1]
		}
		scalarNs, scalarRounds := totals[0], rounds[0]
		kernelNs, kernelRounds := totals[1], rounds[1]
		if scalarRounds != kernelRounds {
			t.Fatalf("%s paths diverged: scalar %d rounds, kernel %d rounds",
				rule.name, scalarRounds, kernelRounds)
		}
		speedup := float64(scalarNs.Nanoseconds()) / float64(kernelNs.Nanoseconds())
		rows = append(rows,
			row{Name: "scalar_" + rule.slug, NsPerRun: scalarNs.Nanoseconds() / seeds},
			row{Name: "kernel_" + rule.slug, NsPerRun: kernelNs.Nanoseconds() / seeds})
		speedups[rule.name] = speedup
		roundsTotal[rule.name] = kernelRounds
		if rule.gate > 0 {
			gates[rule.name] = rule.gate
		}
		t.Logf("%s: scalar %v, kernel %v, speedup %.2fx", rule.name, scalarNs, kernelNs, speedup)
	}

	// Locality-relabeling row pair: the kernel with and without the
	// degree-bucketed vertex ordering on a SCRAMBLED heavy-tailed Chung-Lu
	// graph at n = 10^6. The repo's generators emit weight-sorted ids —
	// hubs already packed at the front, the layout the relabeling would
	// construct — so the natural instance gives the reorder nothing to win;
	// a fixed random permutation of the ids models the arrival order of
	// real-world graphs, where hub counter words are scattered across the
	// address space. Both executions are graph isomorphisms of each other
	// (identical seeds, rounds, coins), so the ratio isolates cache
	// behavior. Each path measures under a shared run context with a
	// warm-up run excluded, so the ordering is computed once and memoized —
	// exactly the regime the auto policy engages it in (batch workers
	// amortize one ordering across thousands of seeds). Against the shared
	// runner's noise the measurement takes the minimum of 3 repetitions per
	// (path, seed) — scheduler steal only ever inflates a run, so the min
	// approaches the true time — with the two paths interleaved so drift
	// hits both symmetrically. Gated at 1.0x — the steady-state relabeling
	// must never lose — with >= 1.1x the measured win on this workload.
	cl1m := ssmis.ChungLu(1000000, 2.5, 10, 7)
	scrambled := func() *ssmis.Graph {
		rng := xrand.New(1234)
		perm := make([]int32, cl1m.N())
		for i := range perm {
			perm[i] = int32(i)
		}
		for i := len(perm) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		return graph.Relabel(cl1m, perm)
	}()
	{
		const localitySeeds = 5
		const localityReps = 3
		paths := []struct {
			opt    ssmis.Option
			ctx    *engine.RunContext
			total  time.Duration
			rounds int
		}{
			{opt: ssmis.WithIdentityOrder(), ctx: engine.NewRunContext()},
			{opt: ssmis.WithDegreeOrder(), ctx: engine.NewRunContext()},
		}
		one := func(i int, seed uint64) time.Duration {
			p := &paths[i]
			start := time.Now()
			res := ssmis.Run(ssmis.NewTwoState(scrambled,
				ssmis.WithSeed(seed), p.opt, mis.WithRunContext(p.ctx)), 0)
			d := time.Since(start)
			if !res.Stabilized {
				t.Fatalf("chunglu1m seed %d did not stabilize", seed)
			}
			p.rounds += res.Rounds
			return d
		}
		for i := range paths {
			one(i, 99) // warm-up: pages the graph in, memoizes the ordering
		}
		for i := range paths {
			paths[i].rounds = 0
		}
		for seed := uint64(0); seed < localitySeeds; seed++ {
			mins := [2]time.Duration{1 << 62, 1 << 62}
			rounds0 := [2]int{paths[0].rounds, paths[1].rounds}
			for rep := 0; rep < localityReps; rep++ {
				for _, i := range []int{int(seed) % 2, 1 - int(seed)%2} {
					paths[i].rounds = rounds0[i] // reps replay the same rounds
					if d := one(i, seed); d < mins[i] {
						mins[i] = d
					}
				}
			}
			paths[0].total += mins[0]
			paths[1].total += mins[1]
		}
		identNs, identRounds := paths[0].total, paths[0].rounds
		localNs, localRounds := paths[1].total, paths[1].rounds
		if identRounds != localRounds {
			t.Fatalf("orderings diverged: identity %d rounds, locality %d rounds",
				identRounds, localRounds)
		}
		speedup := float64(identNs.Nanoseconds()) / float64(localNs.Nanoseconds())
		rows = append(rows,
			row{Name: "kernel_identity_chunglu1m_scrambled", NsPerRun: identNs.Nanoseconds() / localitySeeds},
			row{Name: "kernel_locality_chunglu1m_scrambled", NsPerRun: localNs.Nanoseconds() / localitySeeds})
		speedups["locality"] = speedup
		gates["locality"] = 1.0
		roundsTotal["locality"] = localRounds
		t.Logf("locality: identity %v, relabeled %v, speedup %.2fx", identNs, localNs, speedup)
	}

	// Counter-plane row pairs: the flat full-width int32 counter arrays
	// against the auto-resolved plane on the same execution — identical
	// seeds, rounds, and coins, so the ratio isolates counter storage.
	// On the scrambled Chung-Lu graph under the degree-bucketed relabeling
	// the hubs are packed first and the plane resolves to the hub/tail
	// split (cache-resident hub rows, byte-wide tail); gated at 1.1x, the
	// tentpole claim of the counter architecture. On G(n=10^6, avg degree
	// 10) — no hubs at all — the plane resolves to plain byte lanes, whose
	// win is the 4x shrink of the commit's scatter traffic; gated at 1.0x
	// (the narrow plane must never lose to flat). Methodology as above:
	// shared run contexts, a warm-up run excluded, min of 3 interleaved
	// repetitions per (path, seed).
	{
		const cSeeds = 5
		const cReps = 3
		pairs := []struct {
			key      string
			g        *ssmis.Graph
			extra    []ssmis.Option // shared by both paths
			slugFlat string
			slugAuto string
			gate     float64
			layout   ssmis.CounterLayout // expected auto resolution
		}{
			{"counters-split", scrambled, []ssmis.Option{ssmis.WithDegreeOrder()},
				"kernel_flat_chunglu1m_scrambled", "kernel_split_chunglu1m_scrambled",
				1.1, ssmis.CounterSplit},
			{"counters-narrow", g1m, nil,
				"kernel_flat_gnp1m", "kernel_narrow_gnp1m",
				1.0, ssmis.CounterNarrow},
		}
		for _, pc := range pairs {
			layouts := [2]ssmis.CounterLayout{ssmis.CounterFlat, ssmis.CounterAuto}
			ctxs := [2]*engine.RunContext{engine.NewRunContext(), engine.NewRunContext()}
			var totals [2]time.Duration
			var rounds [2]int
			one := func(i int, seed uint64, countRounds bool) time.Duration {
				opts := append([]ssmis.Option{ssmis.WithSeed(seed),
					ssmis.WithCounterLayout(layouts[i]), mis.WithRunContext(ctxs[i])}, pc.extra...)
				p := ssmis.NewTwoState(pc.g, opts...)
				if info := p.CounterPlane(); i == 1 && (info.Layout != pc.layout || info.WidthBits != 8) {
					t.Fatalf("%s: auto plane resolved %+v, want %v with byte tail", pc.key, info, pc.layout)
				}
				start := time.Now()
				res := ssmis.Run(p, 0)
				d := time.Since(start)
				if !res.Stabilized {
					t.Fatalf("%s seed %d did not stabilize", pc.key, seed)
				}
				if countRounds {
					rounds[i] += res.Rounds
				}
				return d
			}
			one(0, 99, false) // warm-up: pages the graph in, memoizes the ordering
			one(1, 99, false)
			for seed := uint64(0); seed < cSeeds; seed++ {
				mins := [2]time.Duration{1 << 62, 1 << 62}
				for rep := 0; rep < cReps; rep++ {
					for _, i := range [2]int{int(seed) % 2, 1 - int(seed)%2} {
						if d := one(i, seed, rep == 0); d < mins[i] {
							mins[i] = d
						}
					}
				}
				totals[0] += mins[0]
				totals[1] += mins[1]
			}
			if rounds[0] != rounds[1] {
				t.Fatalf("%s layouts diverged: flat %d rounds, auto %d rounds",
					pc.key, rounds[0], rounds[1])
			}
			speedup := float64(totals[0].Nanoseconds()) / float64(totals[1].Nanoseconds())
			rows = append(rows,
				row{Name: pc.slugFlat, NsPerRun: totals[0].Nanoseconds() / cSeeds},
				row{Name: pc.slugAuto, NsPerRun: totals[1].Nanoseconds() / cSeeds})
			speedups[pc.key] = speedup
			gates[pc.key] = pc.gate
			roundsTotal[pc.key] = rounds[1]
			t.Logf("%s: flat %v, auto %v, speedup %.2fx", pc.key, totals[0], totals[1], speedup)
		}
	}

	report := map[string]any{
		"description": "Bit-sliced kernels vs the scalar interface path (full time-to-stabilization including process construction; both paths replay identical executions), one scalar/kernel row pair per rule. ns_per_run averages over seeds 0-4 the minimum of k interleaved repetitions per (path, seed) — k = 3 (2-state), 2 (3-state), 2 (3-color) — because shared-runner noise is additive and the min approaches the true time. 2-state and 3-state run the BenchmarkEngineFrontierGnp1M workload G(n=10^6, avg degree 10); 3-color runs G(n=10^5, avg degree 10) because its phase clock drives ~1200 rounds per run. Gates: 2-state >= 1.2x, 3-state >= 1.2x, 3-color >= 0.95x (a never-lose floor: the shared scalar phase-clock sub-process dominates its rounds, so the ratio hovers near 1.0x). The locality row pair runs the 2-state kernel on a scrambled Chung-Lu(n=10^6, beta=2.5, avg degree 10) — ids randomly permuted, since the generator emits weight-sorted ids where hubs are already front-packed and the reorder has nothing to win — with and without the degree-bucketed vertex relabeling (identical executions up to isomorphism), each path under a shared run context with a warm-up excluded so the ordering is computed once and memoized (the steady-state regime the auto policy engages it in). Gated at >= 1.0x (must never lose); ~1.1x measured on this runner. The counters-split row pair runs the same scrambled Chung-Lu instance under the relabeling with the counter plane forced flat vs auto-resolved (hub/tail split: dense int32 hub rows, byte-wide tail lanes) — identical executions, the ratio isolates counter storage; gated at >= 1.1x. The counters-narrow pair runs the 2-state kernel on the G(n=10^6, avg degree 10) instance, flat vs auto-resolved byte lanes (no hub prefix); gated at >= 1.0x (narrow must never lose). All pairs: min of interleaved repetitions per (path, seed), shared run contexts, warm-up excluded. Regenerate with: BENCH_KERNEL_OUT=$PWD/BENCH_kernel.json go test -run TestKernelSpeedupGate .",
		"environment": map[string]any{
			"goos":         runtime.GOOS,
			"goarch":       runtime.GOARCH,
			"logical_cpus": runtime.NumCPU(),
			"gomaxprocs":   runtime.GOMAXPROCS(0),
			"go":           runtime.Version(),
		},
		"results":      rows,
		"rounds_total": roundsTotal,
		"speedups":     speedups,
		"gates":        gates,
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, gate := range gates {
		if speedups[name] < gate {
			t.Errorf("%s kernel speedup %.2fx below the %.1fx gate on this runner",
				name, speedups[name], gate)
		}
	}
}

package ssmis_test

// Kernel speed gate: the bit-sliced kernels against the scalar interface
// path, one row pair per rule — 2-state and 3-state on the
// BenchmarkEngineFrontierGnp1M workload, 3-color on the n=10^5 instance
// (its phase clock drives ~1200 rounds per run, so n=10^6 costs minutes).
// Each pair runs coin-for-coin identical executions (same seeds, same
// rounds, same terminal MIS), so the wall-clock ratio is a pure
// execution-path comparison — a benchstat-style before/after with the noise
// of differing work removed by construction. CI runs this on the 1-CPU
// runner and fails the build if a gated rule is not at least its
// minimum-speedup factor faster: 1.3x for the 2-state XOR-flip fast path,
// 1.2x for the generic two-lane 3-state path. The 3-color pair is recorded
// ungated — its rounds are dominated by the scalar phase-clock sub-process,
// which both paths share, so the ratio mostly measures the clock. The
// measurement JSON lands in the file named by BENCH_KERNEL_OUT (skipped
// when unset, so ordinary `go test ./...` never pays the n=10^6 runs).
//
// Regenerate with:
//
//	BENCH_KERNEL_OUT=$PWD/BENCH_kernel.json go test -run TestKernelSpeedupGate .

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"ssmis"
)

const (
	minKernelSpeedup       = 1.3 // 2-state, the XOR-flip fast path
	minKernelSpeedup3State = 1.2 // 3-state, the generic two-lane path
)

func TestKernelSpeedupGate(t *testing.T) {
	outPath := os.Getenv("BENCH_KERNEL_OUT")
	if outPath == "" {
		t.Skip("BENCH_KERNEL_OUT not set")
	}
	g1m := ssmis.GnpAvgDegree(1000000, 10, 7)
	g100k := ssmis.GnpAvgDegree(100000, 10, 7)
	const seeds = 5

	rules := []struct {
		name string
		slug string
		g    *ssmis.Graph
		mk   func(g *ssmis.Graph, opts ...ssmis.Option) ssmis.Process
		gate float64 // 0 = record only
	}{
		{"2-state", "frontier_gnp1m", g1m,
			func(g *ssmis.Graph, opts ...ssmis.Option) ssmis.Process { return ssmis.NewTwoState(g, opts...) },
			minKernelSpeedup},
		{"3-state", "3state_gnp1m", g1m,
			func(g *ssmis.Graph, opts ...ssmis.Option) ssmis.Process { return ssmis.NewThreeState(g, opts...) },
			minKernelSpeedup3State},
		// The 3-color pair runs at n = 10^5: its round count is driven by the
		// O(log^2 n)-period phase clock (≈1200 rounds at this size), so the
		// n = 10^6 instance costs minutes per run — far past the CI budget —
		// without changing what the ratio measures.
		{"3-color", "3color_gnp100k", g100k,
			func(g *ssmis.Graph, opts ...ssmis.Option) ssmis.Process { return ssmis.NewThreeColor(g, opts...) },
			0},
	}

	type row struct {
		Name     string `json:"name"`
		NsPerRun int64  `json:"ns_per_run"`
	}
	var rows []row
	speedups := map[string]float64{}
	gates := map[string]float64{}
	roundsTotal := map[string]int{}

	for _, rule := range rules {
		// Total time over a fixed seed set; both paths replay the exact same
		// executions, so the totals are directly comparable.
		measure := func(opts ...ssmis.Option) (time.Duration, int) {
			var total time.Duration
			rounds := 0
			for seed := uint64(0); seed < seeds; seed++ {
				all := append([]ssmis.Option{ssmis.WithSeed(seed)}, opts...)
				start := time.Now()
				res := ssmis.Run(rule.mk(rule.g, all...), 0)
				total += time.Since(start)
				if !res.Stabilized {
					t.Fatalf("%s seed %d did not stabilize", rule.name, seed)
				}
				rounds += res.Rounds
			}
			return total, rounds
		}
		// Warm-up both paths on a smaller instance (page-in, branch
		// predictors).
		ssmis.Run(rule.mk(g100k, ssmis.WithScalarEngine()), 0)
		ssmis.Run(rule.mk(g100k), 0)

		scalarNs, scalarRounds := measure(ssmis.WithScalarEngine())
		kernelNs, kernelRounds := measure()
		if scalarRounds != kernelRounds {
			t.Fatalf("%s paths diverged: scalar %d rounds, kernel %d rounds",
				rule.name, scalarRounds, kernelRounds)
		}
		speedup := float64(scalarNs.Nanoseconds()) / float64(kernelNs.Nanoseconds())
		rows = append(rows,
			row{Name: "scalar_" + rule.slug, NsPerRun: scalarNs.Nanoseconds() / seeds},
			row{Name: "kernel_" + rule.slug, NsPerRun: kernelNs.Nanoseconds() / seeds})
		speedups[rule.name] = speedup
		roundsTotal[rule.name] = kernelRounds
		if rule.gate > 0 {
			gates[rule.name] = rule.gate
		}
		t.Logf("%s: scalar %v, kernel %v, speedup %.2fx", rule.name, scalarNs, kernelNs, speedup)
	}

	report := map[string]any{
		"description": "Bit-sliced kernels vs the scalar interface path (full time-to-stabilization including process construction, total over seeds 0-4; both paths replay identical executions), one scalar/kernel row pair per rule. 2-state and 3-state run the BenchmarkEngineFrontierGnp1M workload G(n=10^6, avg degree 10); 3-color runs G(n=10^5, avg degree 10) because its phase clock drives ~1200 rounds per run. Gates: 2-state >= 1.3x, 3-state >= 1.2x, 3-color recorded ungated (the shared scalar phase-clock sub-process dominates its rounds). Regenerate with: BENCH_KERNEL_OUT=$PWD/BENCH_kernel.json go test -run TestKernelSpeedupGate .",
		"environment": map[string]any{
			"goos":         runtime.GOOS,
			"goarch":       runtime.GOARCH,
			"logical_cpus": runtime.NumCPU(),
			"gomaxprocs":   runtime.GOMAXPROCS(0),
			"go":           runtime.Version(),
		},
		"results":      rows,
		"rounds_total": roundsTotal,
		"speedups":     speedups,
		"gates":        gates,
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, gate := range gates {
		if speedups[name] < gate {
			t.Errorf("%s kernel speedup %.2fx below the %.1fx gate on this runner",
				name, speedups[name], gate)
		}
	}
}

package ssmis

import (
	"ssmis/internal/batch"
	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/stats"
)

// TrialSummary aggregates a multi-seed measurement (see RunSeeds).
type TrialSummary struct {
	// Trials is the number of runs attempted; Failures counts runs that hit
	// the round cap without stabilizing.
	Trials   int
	Failures int
	// FailedSeeds lists the exact seeds of the failed runs (nil when none),
	// so a sweep failure reproduces with a single targeted re-run.
	FailedSeeds []uint64
	// Rounds statistics over the successful runs.
	MeanRounds   float64
	MedianRounds float64
	MaxRounds    float64
	// CI95 is the 95% confidence half-width of MeanRounds.
	CI95 float64
	// MeanRandomBits is the mean total random bits per successful run.
	MeanRandomBits float64
}

// RunSeeds runs newProcess(seed) to stabilization for every seed and
// aggregates the stabilization times — the library-level version of the
// experiment harness's inner loop, now a thin adapter over the module's
// work-stealing batch scheduler (internal/batch): seeds are chunked across
// per-worker deques, idle workers steal, and outcomes stream in seed order
// into online aggregates, so the summary is bit-identical at any worker
// count. maxRounds <= 0 selects the default cap; workers <= 0 selects
// GOMAXPROCS. The factory must return a fresh process per call (it is
// invoked concurrently).
func RunSeeds(newProcess func(seed uint64) Process, seeds []uint64, maxRounds, workers int) TrialSummary {
	if len(seeds) == 0 {
		return TrialSummary{}
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}
	pool := batch.NewPool(workers)
	defer pool.Close()
	return RunSeedsOn(pool, newProcess, seeds, maxRounds)
}

// RunSeedsOn is RunSeeds against a caller-owned scheduler pool, so many
// seed sweeps can share one pool (cross-sweep work stealing) instead of
// paying a pool per call.
func RunSeedsOn(pool *batch.Pool, newProcess func(seed uint64) Process, seeds []uint64, maxRounds int) TrialSummary {
	shard := batch.Shard{
		Seeds: seeds,
		Run: func(_ *engine.RunContext, _ *graph.Graph, _ int, seed uint64) batch.Outcome {
			// The factory signature cannot thread the worker's run context
			// through; factories that want allocation amortization construct
			// their processes with WithRunContext themselves.
			p := newProcess(seed)
			res := Run(p, maxRounds)
			if !res.Stabilized {
				return batch.Outcome{Failed: true}
			}
			return batch.Outcome{Rounds: res.Rounds, Bits: res.RandomBits}
		},
	}
	sum := TrialSummary{Trials: len(seeds)}
	rounds := stats.NewQuantileStream()
	bits := stats.NewStream()
	pool.Submit([]batch.Shard{shard}, func(o batch.Outcome) {
		if o.Failed {
			sum.Failures++
			sum.FailedSeeds = append(sum.FailedSeeds, o.Seed)
			return
		}
		rounds.Add(float64(o.Rounds))
		bits.Add(float64(o.Bits))
	}).Wait()
	if rounds.N() > 0 {
		sum.MeanRounds = rounds.Mean()
		sum.MedianRounds = rounds.Quantile(0.5)
		sum.MaxRounds = rounds.Max()
		sum.CI95 = rounds.MeanCI95()
		sum.MeanRandomBits = bits.Mean()
	}
	return sum
}

// Seeds returns the slice [base, base+1, ..., base+count-1], the common
// argument to RunSeeds.
func Seeds(base uint64, count int) []uint64 {
	out := make([]uint64, count)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

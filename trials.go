package ssmis

import (
	"runtime"
	"sync"

	"ssmis/internal/stats"
)

// TrialSummary aggregates a multi-seed measurement (see RunSeeds).
type TrialSummary struct {
	// Trials is the number of runs attempted; Failures counts runs that hit
	// the round cap without stabilizing.
	Trials   int
	Failures int
	// Rounds statistics over the successful runs.
	MeanRounds   float64
	MedianRounds float64
	MaxRounds    float64
	// CI95 is the 95% confidence half-width of MeanRounds.
	CI95 float64
	// MeanRandomBits is the mean total random bits per successful run.
	MeanRandomBits float64
}

// RunSeeds runs newProcess(seed) to stabilization for every seed on a
// worker pool and aggregates the stabilization times — the library-level
// version of the experiment harness's inner loop. maxRounds <= 0 selects
// the default cap; workers <= 0 selects GOMAXPROCS. The factory must return
// a fresh process per call (it is invoked concurrently).
func RunSeeds(newProcess func(seed uint64) Process, seeds []uint64, maxRounds, workers int) TrialSummary {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}
	type outcome struct {
		rounds float64
		bits   float64
		failed bool
	}
	outcomes := make([]outcome, len(seeds))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				p := newProcess(seeds[i])
				res := Run(p, maxRounds)
				if !res.Stabilized {
					outcomes[i].failed = true
					continue
				}
				outcomes[i] = outcome{rounds: float64(res.Rounds), bits: float64(res.RandomBits)}
			}
		}()
	}
	for i := range seeds {
		next <- i
	}
	close(next)
	wg.Wait()

	sum := TrialSummary{Trials: len(seeds)}
	var rounds, bits []float64
	for _, o := range outcomes {
		if o.failed {
			sum.Failures++
			continue
		}
		rounds = append(rounds, o.rounds)
		bits = append(bits, o.bits)
	}
	if len(rounds) > 0 {
		s := stats.Summarize(rounds)
		sum.MeanRounds = s.Mean
		sum.MedianRounds = s.Median
		sum.MaxRounds = s.Max
		sum.CI95 = s.MeanCI95()
		sum.MeanRandomBits = stats.Mean(bits)
	}
	return sum
}

// Seeds returns the slice [base, base+1, ..., base+count-1], the common
// argument to RunSeeds.
func Seeds(base uint64, count int) []uint64 {
	out := make([]uint64, count)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

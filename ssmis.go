package ssmis

import (
	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/sched"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

// Graph is a simple undirected graph in compressed sparse row form.
// Construct one with the generator functions below or with NewGraphBuilder.
type Graph = graph.Graph

// GraphBuilder accumulates edges and produces an immutable Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a graph on n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// FromEdges builds a graph on n vertices from an explicit edge list.
func FromEdges(n int, edges [][2]int) *Graph { return graph.FromEdges(n, edges) }

// Complete returns the complete graph K_n.
func Complete(n int) *Graph { return graph.Complete(n) }

// Path returns the path graph on n vertices.
func Path(n int) *Graph { return graph.Path(n) }

// Cycle returns the cycle graph on n >= 3 vertices.
func Cycle(n int) *Graph { return graph.Cycle(n) }

// Star returns the star graph K_{1,n-1}.
func Star(n int) *Graph { return graph.Star(n) }

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *Graph { return graph.Grid(rows, cols) }

// Gnp returns an Erdős–Rényi random graph G(n,p) drawn with the given seed.
func Gnp(n int, p float64, seed uint64) *Graph {
	return graph.Gnp(n, p, xrand.New(seed))
}

// GnpAvgDegree returns G(n, p) with p chosen so the expected average degree
// is d.
func GnpAvgDegree(n int, d float64, seed uint64) *Graph {
	return graph.GnpAvgDegree(n, d, xrand.New(seed))
}

// RandomTree returns a random recursive tree on n vertices.
func RandomTree(n int, seed uint64) *Graph {
	return graph.RandomTree(n, xrand.New(seed))
}

// DisjointCliques returns the disjoint union of count cliques of the given
// size.
func DisjointCliques(count, size int) *Graph { return graph.DisjointCliques(count, size) }

// RandomRegular returns a d-regular random simple graph (n·d must be even).
func RandomRegular(n, d int, seed uint64) *Graph {
	return graph.RandomRegular(n, d, xrand.New(seed))
}

// ChungLu returns a random graph with a power-law expected degree sequence
// (exponent beta, typically in (2,3)) and average degree approximately d —
// the skewed-degree counterpart to Gnp.
func ChungLu(n int, beta, d float64, seed uint64) *Graph {
	return graph.ChungLu(n, beta, d, xrand.New(seed))
}

// Process is a self-stabilizing MIS process: it advances in synchronous
// rounds from arbitrary initial states and, once Stabilized reports true,
// its black vertices form a maximal independent set.
type Process = mis.Process

// Option configures a process constructor.
type Option = mis.Option

// Result summarizes a completed run.
type Result = mis.Result

// Init selects an initial-state adversary.
type Init = mis.Init

// Initialization adversaries (the processes are self-stabilizing, so the
// initial state is an adversarial choice).
const (
	InitRandom       = mis.InitRandom
	InitAllWhite     = mis.InitAllWhite
	InitAllBlack     = mis.InitAllBlack
	InitCheckerboard = mis.InitCheckerboard
	InitNearMIS      = mis.InitNearMIS
)

// WithSeed sets the master seed of a process (default 1).
func WithSeed(seed uint64) Option { return mis.WithSeed(seed) }

// WithInit selects the initialization adversary (default InitRandom).
func WithInit(init Init) Option { return mis.WithInit(init) }

// WithInitialBlack supplies an explicit initial black mask (copied).
func WithInitialBlack(black []bool) Option { return mis.WithInitialBlack(black) }

// WithBlackBias sets the probability an active vertex randomizes to black
// (default 0.5; see the E13 ablation).
func WithBlackBias(p float64) Option { return mis.WithBlackBias(p) }

// WithLocalTimes enables per-vertex stabilization-time recording, exposed
// through each process's StabilizationTimes method (see experiment E14).
func WithLocalTimes() Option { return mis.WithLocalTimes() }

// WithWorkers enables intra-round parallelism with k goroutines for all
// three processes; execution remains bit-identical to the sequential
// engine. Negative k panics.
func WithWorkers(k int) Option { return mis.WithWorkers(k) }

// WithScalarEngine opts a process out of the engine's bit-sliced kernel
// (all three processes auto-select it), forcing the per-vertex interface
// path. The two paths are coin-for-coin bit-identical; this is a
// diagnostic/benchmark knob.
func WithScalarEngine() Option { return mis.WithScalarEngine() }

// WithIdentityOrder opts a process out of the locality relabeling the
// kernel path auto-selects on large graphs, keeping engine storage in
// original vertex ids. Relabeled executions are graph isomorphisms of
// identity-ordered ones — outcomes, coins, and histories are identical —
// so this is a diagnostic/benchmark knob.
func WithIdentityOrder() Option { return mis.WithIdentityOrder() }

// WithDegreeOrder forces the degree-bucketed locality relabeling on
// regardless of graph size or engine path. Primarily for tests and
// benchmarks; the auto policy already selects it where it pays off.
func WithDegreeOrder() Option { return mis.WithDegreeOrder() }

// CounterLayout selects where the engine keeps its per-vertex neighbor
// counters; see the layout constants. Every layout stores exactly the same
// values, so executions are bit-identical across layouts — this is a
// diagnostic/benchmark knob, like WithScalarEngine.
type CounterLayout = engine.CounterLayout

// Counter-plane layouts for WithCounterLayout. The default (CounterAuto)
// resolves from the graph's degree profile: the hub/tail split when hubs are
// packed first and the tail fits a narrow width, narrow lanes when the whole
// graph fits, flat int32 otherwise.
const (
	CounterAuto   = engine.LayoutAuto
	CounterFlat   = engine.LayoutFlat
	CounterNarrow = engine.LayoutNarrow
	CounterSplit  = engine.LayoutSplit
)

// WithCounterLayout forces a counter-plane layout instead of the automatic
// degree-profile resolution. A narrow/split request on a graph whose tail
// degrees exceed 16 bits falls back to full-width cells loudly (the engine
// reports FellBack through its plane info rather than wrapping a counter).
func WithCounterLayout(l CounterLayout) Option { return mis.WithCounterLayout(l) }

// ToggleEdge returns a copy of g with edge {u,v} added if absent, removed
// if present. Combine with a process's Rebind method to model topology
// churn (experiment E15).
func ToggleEdge(g *Graph, u, v int) *Graph { return g.WithEdgeToggled(u, v) }

// Churn returns a copy of g with k random edge toggles plus the toggled
// pairs, drawn deterministically from seed.
func Churn(g *Graph, k int, seed uint64) (*Graph, [][2]int) {
	return g.WithRandomChurn(k, xrand.New(seed))
}

// NewTwoState creates the paper's 2-state MIS process (Definition 4) on g.
func NewTwoState(g *Graph, opts ...Option) *mis.TwoState {
	return mis.NewTwoState(g, opts...)
}

// NewThreeState creates the paper's 3-state MIS process (Definition 5) on g.
func NewThreeState(g *Graph, opts ...Option) *mis.ThreeState {
	return mis.NewThreeState(g, opts...)
}

// NewThreeColor creates the paper's 18-state 3-color MIS process with
// randomized logarithmic switch (Definitions 26 and 28) on g.
func NewThreeColor(g *Graph, opts ...Option) *mis.ThreeColor {
	return mis.NewThreeColor(g, opts...)
}

// Daemon selects which privileged (inconsistent) vertices move in a
// daemon-scheduled step; see NewTwoState/NewThreeState's DaemonRun methods.
type Daemon = sched.Daemon

// DaemonNames lists the selectable daemon schedules: synchronous,
// central-adversarial, central-random, distributed-random, round-robin.
func DaemonNames() []string { return sched.DaemonNames() }

// DaemonByName returns a fresh daemon instance for one of DaemonNames. The
// 2-state process stabilizes with probability 1 under every daemon (the
// transformation of [28, 31] the paper cites); the 3-state process needs a
// fair daemon — its reactive demotion livelocks under central-adversarial.
func DaemonByName(name string) (Daemon, error) { return sched.DaemonByName(name) }

// Run advances p until stabilization or maxRounds rounds (0 selects a
// generous default cap that no healthy run should hit).
func Run(p Process, maxRounds int) Result {
	if maxRounds <= 0 {
		maxRounds = 8 * mis.DefaultRoundCap(p.N())
	}
	return mis.Run(p, maxRounds)
}

// BlackSet returns the current black vertices of p as a sorted slice. After
// stabilization this is a maximal independent set.
func BlackSet(p Process) []int {
	var out []int
	for u := 0; u < p.N(); u++ {
		if p.Black(u) {
			out = append(out, u)
		}
	}
	return out
}

// Checkpoint is a serialized process execution state; restoring it resumes
// the exact execution (same coins, same rounds). See the Restore functions.
type Checkpoint = mis.Checkpoint

// DecodeCheckpoint parses an encoded checkpoint produced by a process's
// Checkpoint method (the versioned internal/snapshot envelope); truncated,
// corrupted, or version-skewed data is rejected with an error.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	return mis.DecodeCheckpoint(data)
}

// RestoreTwoState resumes a checkpointed 2-state process on g.
func RestoreTwoState(g *Graph, c *Checkpoint, opts ...Option) (*mis.TwoState, error) {
	return mis.RestoreTwoState(g, c, opts...)
}

// RestoreThreeState resumes a checkpointed 3-state process on g.
func RestoreThreeState(g *Graph, c *Checkpoint, opts ...Option) (*mis.ThreeState, error) {
	return mis.RestoreThreeState(g, c, opts...)
}

// RestoreThreeColor resumes a checkpointed 3-color process on g.
func RestoreThreeColor(g *Graph, c *Checkpoint, opts ...Option) (*mis.ThreeColor, error) {
	return mis.RestoreThreeColor(g, c, opts...)
}

// VerifyMIS checks that the given vertex set is a maximal independent set of
// g; it returns nil on success and a descriptive error identifying the first
// violation otherwise.
func VerifyMIS(g *Graph, set []int) error {
	in := make(map[int]bool, len(set))
	for _, u := range set {
		in[u] = true
	}
	return verify.MIS(g, func(u int) bool { return in[u] })
}

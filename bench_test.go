// Module-level benchmarks: one benchmark per reproduction experiment
// (E1–E17, see DESIGN.md §3) plus micro-benchmarks of the simulator's
// per-round cost. Each experiment benchmark executes the harness at reduced
// scale and prints its tables once, so `go test -bench=. -benchmem`
// regenerates the full set of paper-reproduction rows; full-scale tables
// come from `go run ./cmd/missweep -run all` and are recorded in
// EXPERIMENTS.md.
package ssmis_test

import (
	"fmt"
	"sync"
	"testing"

	"ssmis"
	"ssmis/internal/baseline"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/xrand"
)

// benchScale keeps the full `go test -bench=.` sweep around laptop-minutes.
const benchScale = 0.1

var printOnce sync.Map

// runExperiment executes experiment `id` b.N times, printing its tables on
// the first execution only.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := ssmis.ExperimentByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := ssmis.ExperimentConfig{Scale: benchScale, Seed: 2023}
	for i := 0; i < b.N; i++ {
		tables := e.Run(cfg)
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			fmt.Printf("\n### %s — %s (benchmark scale %.2f)\n", e.ID, e.Title, benchScale)
			for _, t := range tables {
				fmt.Print(t.Render())
			}
		}
	}
}

func BenchmarkE01CliqueTwoState(b *testing.B)    { runExperiment(b, "E1") }
func BenchmarkE02DisjointCliques(b *testing.B)   { runExperiment(b, "E2") }
func BenchmarkE03CliqueThreeState(b *testing.B)  { runExperiment(b, "E3") }
func BenchmarkE04Trees(b *testing.B)             { runExperiment(b, "E4") }
func BenchmarkE05MaxDegree(b *testing.B)         { runExperiment(b, "E5") }
func BenchmarkE06GnpTwoState(b *testing.B)       { runExperiment(b, "E6") }
func BenchmarkE07GnpThreeColor(b *testing.B)     { runExperiment(b, "E7") }
func BenchmarkE08LogSwitch(b *testing.B)         { runExperiment(b, "E8") }
func BenchmarkE09GoodGraph(b *testing.B)         { runExperiment(b, "E9") }
func BenchmarkE10Baselines(b *testing.B)         { runExperiment(b, "E10") }
func BenchmarkE11SelfStabilization(b *testing.B) { runExperiment(b, "E11") }
func BenchmarkE12Runtimes(b *testing.B)          { runExperiment(b, "E12") }
func BenchmarkE13Ablations(b *testing.B)         { runExperiment(b, "E13") }
func BenchmarkE14LocalTimes(b *testing.B)        { runExperiment(b, "E14") }
func BenchmarkE15TopologyChurn(b *testing.B)     { runExperiment(b, "E15") }
func BenchmarkE16MISQuality(b *testing.B)        { runExperiment(b, "E16") }
func BenchmarkE17RestartScheme(b *testing.B)     { runExperiment(b, "E17") }
func BenchmarkE18DaemonSchedules(b *testing.B)   { runExperiment(b, "E18") }

// --- simulator micro-benchmarks ---

func benchFullRun(b *testing.B, mk func(seed uint64) ssmis.Result) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer() // exclude graph construction in the caller
	rounds := 0
	for i := 0; i < b.N; i++ {
		res := mk(uint64(i))
		if !res.Stabilized {
			b.Fatal("run did not stabilize")
		}
		rounds += res.Rounds
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/run")
}

func BenchmarkRunTwoStateGnp10k(b *testing.B) {
	g := ssmis.GnpAvgDegree(10000, 10, 1)
	benchFullRun(b, func(seed uint64) ssmis.Result {
		return ssmis.Run(ssmis.NewTwoState(g, ssmis.WithSeed(seed)), 0)
	})
}

func BenchmarkRunTwoStateClique4k(b *testing.B) {
	g := ssmis.Complete(4096)
	benchFullRun(b, func(seed uint64) ssmis.Result {
		return ssmis.Run(ssmis.NewTwoState(g, ssmis.WithSeed(seed)), 0)
	})
}

func BenchmarkRunThreeStateGnp10k(b *testing.B) {
	g := ssmis.GnpAvgDegree(10000, 10, 2)
	benchFullRun(b, func(seed uint64) ssmis.Result {
		return ssmis.Run(ssmis.NewThreeState(g, ssmis.WithSeed(seed)), 0)
	})
}

func BenchmarkRunThreeColorGnp5k(b *testing.B) {
	g := ssmis.GnpAvgDegree(5000, 20, 3)
	benchFullRun(b, func(seed uint64) ssmis.Result {
		return ssmis.Run(ssmis.NewThreeColor(g, ssmis.WithSeed(seed)), 0)
	})
}

func BenchmarkStepTwoStateGnp100k(b *testing.B) {
	// Per-round cost on a large sparse graph, measured mid-run (states kept
	// away from stabilization by reinitializing when it gets close).
	g := graph.GnpAvgDegree(100000, 10, xrand.New(4))
	p := mis.NewTwoState(g, mis.WithSeed(9), mis.WithInit(mis.InitAllWhite))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Stabilized() {
			b.StopTimer()
			p = mis.NewTwoState(g, mis.WithSeed(uint64(i)), mis.WithInit(mis.InitAllWhite))
			b.StartTimer()
		}
		p.Step()
	}
}

// --- shared-engine benchmarks: frontier vs full-rescan, sequential vs
// workers, scalar vs bit-sliced kernel (see BENCH_engine.json for recorded
// results). The Frontier/Rescan/Workers rows pin the scalar interface path
// (WithScalarEngine) so their history stays comparable across PRs; the
// Kernel rows measure the same workloads on the bit-sliced path the 2-state
// process now selects by default. ---

// benchEngine measures full time-to-stabilization of the 2-state process on
// a fixed graph under the given extra options.
func benchEngine(b *testing.B, g *ssmis.Graph, opts ...ssmis.Option) {
	b.Helper()
	benchEngineProc(b, g, func(g *ssmis.Graph, opts ...ssmis.Option) ssmis.Process {
		return ssmis.NewTwoState(g, opts...)
	}, opts...)
}

// benchEngineProc is benchEngine generalized over the process constructor,
// for the 3-state and 3-color kernel rows.
func benchEngineProc(b *testing.B, g *ssmis.Graph,
	mk func(g *ssmis.Graph, opts ...ssmis.Option) ssmis.Process, opts ...ssmis.Option) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	rounds := 0
	for i := 0; i < b.N; i++ {
		all := append([]ssmis.Option{ssmis.WithSeed(uint64(i))}, opts...)
		res := ssmis.Run(mk(g, all...), 0)
		if !res.Stabilized {
			b.Fatal("run did not stabilize")
		}
		rounds += res.Rounds
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/run")
}

func BenchmarkEngineFrontierGnp100k(b *testing.B) {
	benchEngine(b, ssmis.GnpAvgDegree(100000, 10, 7), ssmis.WithScalarEngine())
}

func BenchmarkEngineRescanGnp100k(b *testing.B) {
	// The pre-engine cost model: every vertex re-derived every round.
	benchEngine(b, ssmis.GnpAvgDegree(100000, 10, 7), ssmis.WithScalarEngine(), mis.WithFullRescan())
}

func BenchmarkEngineFrontierChungLu100k(b *testing.B) {
	benchEngine(b, ssmis.ChungLu(100000, 2.5, 10, 7), ssmis.WithScalarEngine())
}

func BenchmarkEngineRescanChungLu100k(b *testing.B) {
	benchEngine(b, ssmis.ChungLu(100000, 2.5, 10, 7), ssmis.WithScalarEngine(), mis.WithFullRescan())
}

func BenchmarkEngineFrontierGnp1M(b *testing.B) {
	benchEngine(b, ssmis.GnpAvgDegree(1000000, 10, 7), ssmis.WithScalarEngine())
}

func BenchmarkEngineWorkersGnp1M(b *testing.B) {
	benchEngine(b, ssmis.GnpAvgDegree(1000000, 10, 7), ssmis.WithScalarEngine(), ssmis.WithWorkers(8))
}

func BenchmarkEngineFrontierClique4k(b *testing.B) {
	// Refresh-heavy: on a complete graph every changing round sets dirtyAll
	// and the membership refresh rescans all n vertices.
	benchEngine(b, ssmis.Complete(4096), ssmis.WithScalarEngine())
}

func BenchmarkEngineWorkersClique4k(b *testing.B) {
	// Same workload through the partitioned two-phase refresh at workers=8.
	benchEngine(b, ssmis.Complete(4096), ssmis.WithScalarEngine(), ssmis.WithWorkers(8))
}

func BenchmarkEngineFrontierChungLu1M(b *testing.B) {
	benchEngine(b, ssmis.ChungLu(1000000, 2.5, 10, 7), ssmis.WithScalarEngine())
}

func BenchmarkEngineWorkersChungLu1M(b *testing.B) {
	benchEngine(b, ssmis.ChungLu(1000000, 2.5, 10, 7), ssmis.WithScalarEngine(), ssmis.WithWorkers(8))
}

func BenchmarkEngineKernelGnp1M(b *testing.B) {
	// The bit-sliced kernel on the n=10^6 frontier workload; compare with
	// BenchmarkEngineFrontierGnp1M (the scalar row) — the runs are
	// coin-for-coin identical, only the execution path differs.
	benchEngine(b, ssmis.GnpAvgDegree(1000000, 10, 7))
}

func BenchmarkEngineKernelChungLu1M(b *testing.B) {
	benchEngine(b, ssmis.ChungLu(1000000, 2.5, 10, 7))
}

func BenchmarkEngineKernelClique4k(b *testing.B) {
	// The complete-graph fast path on lanes: hasBlackNbr re-derived from the
	// class total in O(n/64) words per full rescan.
	benchEngine(b, ssmis.Complete(4096))
}

// --- counter-plane benchmarks: the flat full-width int32 counter arrays
// against the width-adaptive/hub-split plane on the same kernel executions
// (coin-for-coin identical; only counter storage differs). The gated record
// lives in BENCH_kernel.json (counters-split and counters-narrow row
// pairs). ---

func BenchmarkCountersFlatGnp1M(b *testing.B) {
	benchEngine(b, ssmis.GnpAvgDegree(1000000, 10, 7),
		ssmis.WithCounterLayout(ssmis.CounterFlat))
}

func BenchmarkCountersNarrowGnp1M(b *testing.B) {
	// Auto resolves the same geometry on this degree profile (max degree
	// fits a byte, no hub prefix): narrow lanes, 4x less scatter traffic.
	benchEngine(b, ssmis.GnpAvgDegree(1000000, 10, 7),
		ssmis.WithCounterLayout(ssmis.CounterNarrow))
}

func BenchmarkCountersFlatChungLu1M(b *testing.B) {
	// Heavy-tailed degrees under the locality relabeling: hubs packed first,
	// flat int32 counters — the baseline for the split row below.
	benchEngine(b, ssmis.ChungLu(1000000, 2.5, 10, 7),
		ssmis.WithDegreeOrder(), ssmis.WithCounterLayout(ssmis.CounterFlat))
}

func BenchmarkCountersSplitChungLu1M(b *testing.B) {
	// The hub/tail split: dense int32 hub rows stay cache-resident, the
	// tail lives in byte lanes.
	benchEngine(b, ssmis.ChungLu(1000000, 2.5, 10, 7),
		ssmis.WithDegreeOrder(), ssmis.WithCounterLayout(ssmis.CounterSplit))
}

func BenchmarkCountersSplitWorkersChungLu1M(b *testing.B) {
	// The delta-buffered parallel commit: hub updates accumulate in
	// per-worker dense delta arrays merged sequentially after the join (no
	// atomics on the contended hub rows); tail updates CAS the byte lanes.
	benchEngine(b, ssmis.ChungLu(1000000, 2.5, 10, 7),
		ssmis.WithDegreeOrder(), ssmis.WithCounterLayout(ssmis.CounterSplit), ssmis.WithWorkers(8))
}

func mk3State(g *ssmis.Graph, opts ...ssmis.Option) ssmis.Process {
	return ssmis.NewThreeState(g, opts...)
}

func mk3Color(g *ssmis.Graph, opts ...ssmis.Option) ssmis.Process {
	return ssmis.NewThreeColor(g, opts...)
}

func BenchmarkEngineScalar3StateGnp1M(b *testing.B) {
	// The 3-state scalar baseline for the two-lane kernel row below; the
	// pair replays identical executions.
	benchEngineProc(b, ssmis.GnpAvgDegree(1000000, 10, 7), mk3State, ssmis.WithScalarEngine())
}

func BenchmarkEngineKernel3StateGnp1M(b *testing.B) {
	// The generic two-lane kernel path (no XOR-flip fast path): black0/black1
	// in the lo/hi lanes, forced demotion folded into the hasBNbr lane.
	benchEngineProc(b, ssmis.GnpAvgDegree(1000000, 10, 7), mk3State)
}

func BenchmarkEngineScalar3ColorGnp100k(b *testing.B) {
	// 3-color runs at n=10^5: the O(log^2 n)-period phase clock drives
	// ~1200 rounds per run at this size, so the 1M instance costs minutes.
	benchEngineProc(b, ssmis.GnpAvgDegree(100000, 10, 7), mk3Color, ssmis.WithScalarEngine())
}

func BenchmarkEngineKernel3ColorGnp100k(b *testing.B) {
	// The gate-lane kernel path: the phase-clock switch re-exported after
	// every mid-round, gray→white gated per-vertex. The scalar clock
	// sub-process runs on both paths, so the kernel's edge is diluted
	// relative to the 2-/3-state rows.
	benchEngineProc(b, ssmis.GnpAvgDegree(100000, 10, 7), mk3Color)
}

func BenchmarkBeepingRuntime1k(b *testing.B) {
	// Goroutine-per-node engine cost: full stabilization on 1000 nodes.
	g := ssmis.GnpAvgDegree(1000, 8, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := ssmis.NewBeepingMIS(g, uint64(i), nil)
		if _, ok := m.Run(1 << 20); !ok {
			b.Fatal("did not stabilize")
		}
		m.Close()
	}
}

func BenchmarkLubyGnp10k(b *testing.B) {
	g := ssmis.GnpAvgDegree(10000, 10, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if baseline.Luby(g, uint64(i)).Rounds == 0 {
			b.Fatal("luby returned no rounds")
		}
	}
}

// Package graphio reads and writes graphs in two interchange formats, so
// experiments can run on external graphs and generated workloads can be
// exported for other tools:
//
//   - Edge-list text: "n <vertices>" header, then one "u v" pair per line;
//     '#' comments and blank lines are ignored. The de-facto standard of
//     SNAP/DIMACS-style datasets.
//
//   - JSON: {"n": 5, "edges": [[0,1], ...]} for structured pipelines.
package graphio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ssmis/internal/graph"
)

// WriteEdgeList writes g in edge-list text format.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# ssmis edge list: %d vertices, %d edges\nn %d\n", g.N(), g.M(), g.N()); err != nil {
		return fmt.Errorf("graphio: write header: %w", err)
	}
	var writeErr error
	g.Edges(func(u, v int) {
		if writeErr != nil {
			return
		}
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			writeErr = err
		}
	})
	if writeErr != nil {
		return fmt.Errorf("graphio: write edge: %w", writeErr)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graphio: flush: %w", err)
	}
	return nil
}

// ReadEdgeList parses the edge-list text format. The "n <count>" header is
// required before the first edge; vertices outside [0, n) are an error.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var b *graph.Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "n" {
			if b != nil {
				return nil, fmt.Errorf("graphio: line %d: duplicate header", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graphio: line %d: malformed header %q", lineNo, line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graphio: line %d: bad vertex count %q", lineNo, fields[1])
			}
			b = graph.NewBuilder(n)
			continue
		}
		if b == nil {
			return nil, fmt.Errorf("graphio: line %d: edge before 'n <count>' header", lineNo)
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graphio: line %d: malformed edge %q", lineNo, line)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graphio: line %d: non-integer endpoints %q", lineNo, line)
		}
		if u == v {
			return nil, fmt.Errorf("graphio: line %d: self-loop at %d", lineNo, u)
		}
		if u < 0 || v < 0 || u >= b.N() || v >= b.N() {
			return nil, fmt.Errorf("graphio: line %d: edge {%d,%d} out of range [0,%d)", lineNo, u, v, b.N())
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: scan: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("graphio: no 'n <count>' header found")
	}
	return b.Build(), nil
}

// jsonGraph is the JSON interchange shape.
type jsonGraph struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// WriteJSON writes g as {"n":..., "edges":[[u,v],...]}.
func WriteJSON(w io.Writer, g *graph.Graph) error {
	jg := jsonGraph{N: g.N(), Edges: make([][2]int, 0, g.M())}
	g.Edges(func(u, v int) {
		jg.Edges = append(jg.Edges, [2]int{u, v})
	})
	enc := json.NewEncoder(w)
	if err := enc.Encode(jg); err != nil {
		return fmt.Errorf("graphio: encode json: %w", err)
	}
	return nil
}

// ReadJSON parses the JSON interchange format.
func ReadJSON(r io.Reader) (*graph.Graph, error) {
	var jg jsonGraph
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jg); err != nil {
		return nil, fmt.Errorf("graphio: decode json: %w", err)
	}
	if jg.N < 0 {
		return nil, fmt.Errorf("graphio: negative vertex count %d", jg.N)
	}
	b := graph.NewBuilder(jg.N)
	for i, e := range jg.Edges {
		u, v := e[0], e[1]
		if u == v {
			return nil, fmt.Errorf("graphio: edge %d: self-loop at %d", i, u)
		}
		if u < 0 || v < 0 || u >= jg.N || v >= jg.N {
			return nil, fmt.Errorf("graphio: edge %d: {%d,%d} out of range [0,%d)", i, u, v, jg.N)
		}
		b.AddEdge(u, v)
	}
	return b.Build(), nil
}

package graphio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

func sameGraph(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	same := true
	a.Edges(func(u, v int) {
		if !b.HasEdge(u, v) {
			same = false
		}
	})
	return same
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := graph.Gnp(100, 0.05, xrand.New(1))
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, got) {
		t.Fatal("edge-list round trip changed the graph")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := graph.Gnp(80, 0.08, xrand.New(2))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, got) {
		t.Fatal("JSON round trip changed the graph")
	}
}

func TestReadEdgeListCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\nn 4\n0 1\n# another\n2 3\n\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"no header":        "0 1\n",
		"missing header":   "",
		"double header":    "n 3\nn 3\n",
		"bad count":        "n x\n",
		"malformed header": "n 3 4\n",
		"self-loop":        "n 3\n1 1\n",
		"out of range":     "n 3\n0 3\n",
		"negative":         "n 3\n-1 0\n",
		"non-integer":      "n 3\na b\n",
		"triple edge":      "n 3\n0 1 2\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":      "{",
		"negative n":   `{"n": -1, "edges": []}`,
		"self-loop":    `{"n": 3, "edges": [[1,1]]}`,
		"out of range": `{"n": 3, "edges": [[0,5]]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestEmptyGraphRoundTrips(t *testing.T) {
	g := graph.Empty(5)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 5 || got.M() != 0 {
		t.Fatal("empty graph round trip failed")
	}
	buf.Reset()
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	got2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got2.N() != 5 || got2.M() != 0 {
		t.Fatal("empty JSON round trip failed")
	}
}

// Property: both formats round-trip arbitrary random graphs.
func TestRoundTripProperty(t *testing.T) {
	master := xrand.New(3)
	f := func(seed uint64) bool {
		r := master.Split(seed)
		n := 1 + r.Intn(60)
		g := graph.Gnp(n, r.Float64()*0.4, r)
		var b1, b2 bytes.Buffer
		if WriteEdgeList(&b1, g) != nil || WriteJSON(&b2, g) != nil {
			return false
		}
		g1, err1 := ReadEdgeList(&b1)
		g2, err2 := ReadJSON(&b2)
		return err1 == nil && err2 == nil && sameGraph(g, g1) && sameGraph(g, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Package sched implements the sequential self-stabilizing MIS algorithm of
// Shukla et al. and Hedetniemi et al. ([28, 20] in the paper) together with
// the daemon (scheduler) models it is analyzed under. The paper presents the
// 2-state MIS process as the randomized synchronous parallelization of this
// algorithm, so the package exists to reproduce the surrounding claims:
//
//   - under a central daemon the deterministic rule stabilizes after every
//     vertex moves at most twice (≤ 2n moves);
//   - under the synchronous daemon the deterministic rule can livelock
//     (two adjacent white vertices flip to black and back forever) — the
//     reason the parallel process must randomize;
//   - randomizing the moves restores stabilization with probability 1 under
//     any daemon ([28], [31]), and under the synchronous daemon the result
//     is exactly the paper's 2-state process.
package sched

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

// Daemon selects which inconsistent ("privileged") vertices move in a step.
type Daemon interface {
	// Name identifies the daemon for reports.
	Name() string
	// Select returns the subset of privileged that moves this step.
	// privileged is sorted and non-empty; the returned slice must be a
	// non-empty subset of it.
	Select(privileged []int, rng *xrand.Rand) []int
}

// CentralAdversarial moves one vertex per step, always the lowest-index
// privileged vertex (a fixed adversarial choice).
type CentralAdversarial struct{}

// Name implements Daemon.
func (CentralAdversarial) Name() string { return "central-adversarial" }

// Select implements Daemon.
func (CentralAdversarial) Select(privileged []int, _ *xrand.Rand) []int {
	return privileged[:1]
}

// CentralRandom moves one uniformly random privileged vertex per step.
type CentralRandom struct{}

// Name implements Daemon.
func (CentralRandom) Name() string { return "central-random" }

// Select implements Daemon.
func (CentralRandom) Select(privileged []int, rng *xrand.Rand) []int {
	i := rng.Intn(len(privileged))
	return privileged[i : i+1]
}

// Synchronous moves every privileged vertex simultaneously — the daemon
// under which the deterministic rule livelocks and the randomized rule is
// the paper's 2-state MIS process.
type Synchronous struct{}

// Name implements Daemon.
func (Synchronous) Name() string { return "synchronous" }

// Select implements Daemon.
func (Synchronous) Select(privileged []int, _ *xrand.Rand) []int {
	return privileged
}

// RoundRobin is a central daemon that cycles through vertex ids, each step
// moving the first privileged vertex at or after the cursor — a fair
// (non-adversarial, non-random) schedule.
type RoundRobin struct {
	cursor int
}

// Name implements Daemon.
func (*RoundRobin) Name() string { return "round-robin" }

// Select implements Daemon.
func (d *RoundRobin) Select(privileged []int, _ *xrand.Rand) []int {
	for _, u := range privileged {
		if u >= d.cursor {
			d.cursor = u + 1
			return []int{u}
		}
	}
	// Wrap around.
	d.cursor = privileged[0] + 1
	return privileged[:1]
}

// DistributedRandom moves each privileged vertex independently with
// probability half (a random distributed daemon).
type DistributedRandom struct{}

// Name implements Daemon.
func (DistributedRandom) Name() string { return "distributed-random" }

// Select implements Daemon.
func (DistributedRandom) Select(privileged []int, rng *xrand.Rand) []int {
	out := privileged[:0:0]
	for _, u := range privileged {
		if rng.Bit() {
			out = append(out, u)
		}
	}
	if len(out) == 0 {
		out = append(out, privileged[rng.Intn(len(privileged))])
	}
	return out
}

// KFair is a central daemon that is adversarial within a fairness window:
// each step it moves the lowest-index privileged vertex — the
// CentralAdversarial choice — unless some vertex has stayed privileged,
// unselected, for at least k consecutive steps, in which case the
// longest-starved such vertex (ties to the lowest index) moves instead.
// Since the longest-starved vertex is always served first, no continuously
// privileged vertex starves forever, and when a single vertex is starved it
// is served within k steps of becoming privileged.
//
// k is the classical knob between the adversarial central daemon (k = ∞)
// and a fully fair one (k = 1 serves the longest-privileged vertex every
// step). The 3-state process's livelock under CentralAdversarial —
// experiment E18, pinned by the daemon tests in internal/mis — exists only
// at k = ∞: every finite window lets the starved demotion fire.
type KFair struct {
	k    int
	step int
	seen []int // last step at which u was privileged
	run  []int // consecutive privileged steps since u last moved
}

// NewKFair returns a k-fair central daemon; k < 1 panics.
func NewKFair(k int) *KFair {
	if k < 1 {
		panic(fmt.Sprintf("sched: k-fair window %d < 1", k))
	}
	return &KFair{k: k}
}

// Name implements Daemon.
func (d *KFair) Name() string { return fmt.Sprintf("k-fair:%d", d.k) }

// Select implements Daemon.
func (d *KFair) Select(privileged []int, _ *xrand.Rand) []int {
	d.step++
	if top := privileged[len(privileged)-1]; top >= len(d.seen) {
		seen := make([]int, top+1)
		run := make([]int, top+1)
		copy(seen, d.seen)
		copy(run, d.run)
		d.seen, d.run = seen, run
	}
	pick, best := privileged[0], 0
	for _, u := range privileged {
		if d.seen[u] == d.step-1 {
			d.run[u]++
		} else {
			d.run[u] = 1
		}
		d.seen[u] = d.step
		if d.run[u] >= d.k && d.run[u] > best {
			best, pick = d.run[u], u
		}
	}
	d.run[pick] = 0
	return []int{pick}
}

// Stateful is implemented by daemons whose selection depends on schedule
// history (the round-robin cursor, k-fair's starvation counters).
// Checkpointing callers persist this state next to the selection stream so
// a resumed schedule continues exactly where it stopped; stateless daemons
// need only the stream.
type Stateful interface {
	Daemon
	// MarshalState serializes the daemon's schedule-history state.
	MarshalState() ([]byte, error)
	// UnmarshalState restores state produced by MarshalState on a daemon of
	// the same name.
	UnmarshalState(data []byte) error
}

var (
	_ Stateful = (*RoundRobin)(nil)
	_ Stateful = (*KFair)(nil)
)

// roundRobinState is the round-robin daemon's serialized form.
type roundRobinState struct {
	Cursor int `json:"cursor"`
}

// MarshalState implements Stateful.
func (d *RoundRobin) MarshalState() ([]byte, error) {
	return json.Marshal(roundRobinState{Cursor: d.cursor})
}

// UnmarshalState implements Stateful.
func (d *RoundRobin) UnmarshalState(data []byte) error {
	var st roundRobinState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("sched: round-robin state: %w", err)
	}
	d.cursor = st.Cursor
	return nil
}

// kFairState is the k-fair daemon's serialized form. K is stored for
// validation: restoring into a daemon with a different window would
// silently change the fairness boundary.
type kFairState struct {
	K    int   `json:"k"`
	Step int   `json:"step"`
	Seen []int `json:"seen,omitempty"`
	Run  []int `json:"run,omitempty"`
}

// MarshalState implements Stateful.
func (d *KFair) MarshalState() ([]byte, error) {
	return json.Marshal(kFairState{K: d.k, Step: d.step, Seen: d.seen, Run: d.run})
}

// UnmarshalState implements Stateful.
func (d *KFair) UnmarshalState(data []byte) error {
	var st kFairState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("sched: k-fair state: %w", err)
	}
	if st.K != d.k {
		return fmt.Errorf("sched: k-fair state has window %d, daemon has %d", st.K, d.k)
	}
	if len(st.Seen) != len(st.Run) {
		return fmt.Errorf("sched: k-fair state tracks %d seen vs %d run entries", len(st.Seen), len(st.Run))
	}
	d.step = st.Step
	d.seen = st.Seen
	d.run = st.Run
	return nil
}

// DaemonNames lists the selectable daemon models in presentation order.
func DaemonNames() []string {
	return []string{
		"synchronous", "central-adversarial", "central-random",
		"distributed-random", "round-robin", "k-fair:4",
	}
}

// defaultKFairWindow is the window the bare "k-fair" name selects.
const defaultKFairWindow = 4

// DaemonByName returns a fresh daemon instance for the given name (stateful
// daemons like round-robin and k-fair must not be shared across runs).
// "k-fair" takes an optional window suffix: "k-fair:8" is the 8-fair
// central daemon, bare "k-fair" defaults to k = 4.
func DaemonByName(name string) (Daemon, error) {
	if name == "k-fair" {
		return NewKFair(defaultKFairWindow), nil
	}
	if rest, ok := strings.CutPrefix(name, "k-fair:"); ok {
		k, err := strconv.Atoi(rest)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("sched: bad k-fair window %q (want a positive integer)", rest)
		}
		return NewKFair(k), nil
	}
	switch name {
	case "synchronous":
		return Synchronous{}, nil
	case "central-adversarial":
		return CentralAdversarial{}, nil
	case "central-random":
		return CentralRandom{}, nil
	case "distributed-random":
		return DistributedRandom{}, nil
	case "round-robin":
		return &RoundRobin{}, nil
	default:
		return nil, fmt.Errorf("sched: unknown daemon %q", name)
	}
}

// Sequential is the two-state self-stabilizing MIS algorithm under a daemon.
// A vertex is privileged when its state is inconsistent — black with a black
// neighbor, or white with no black neighbor. A selected privileged vertex
// moves: deterministically to the consistent state (black→white,
// white→black), or, when randomized, to a uniformly random state.
type Sequential struct {
	g          *graph.Graph
	daemon     Daemon
	randomized bool
	black      []bool
	nbrBlack   []int32
	rng        *xrand.Rand
	moves      int
	steps      int
}

// Option configures a Sequential run.
type Option func(*Sequential)

// Randomized makes selected vertices move to a uniformly random state
// instead of the deterministic repair — the transformation of [28, 31].
func Randomized() Option {
	return func(s *Sequential) { s.randomized = true }
}

// WithInitialBlack sets the (adversarial) initial configuration; the slice
// is copied. Default: uniformly random.
func WithInitialBlack(black []bool) Option {
	return func(s *Sequential) { s.black = append([]bool(nil), black...) }
}

// NewSequential creates a sequential algorithm instance under the given
// daemon with master seed seed.
func NewSequential(g *graph.Graph, daemon Daemon, seed uint64, opts ...Option) *Sequential {
	s := &Sequential{
		g:        g,
		daemon:   daemon,
		nbrBlack: make([]int32, g.N()),
		rng:      xrand.New(seed),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.black == nil {
		s.black = make([]bool, g.N())
		for u := range s.black {
			s.black[u] = s.rng.Bit()
		}
	} else if len(s.black) != g.N() {
		panic(fmt.Sprintf("sched: initial mask length %d != n %d", len(s.black), g.N()))
	}
	s.recount()
	return s
}

func (s *Sequential) recount() {
	for u := range s.nbrBlack {
		s.nbrBlack[u] = 0
	}
	for u, b := range s.black {
		if b {
			for _, v := range s.g.Neighbors(u) {
				s.nbrBlack[v]++
			}
		}
	}
}

// privileged returns the sorted list of inconsistent vertices.
func (s *Sequential) privileged() []int {
	var out []int
	for u, b := range s.black {
		if b == (s.nbrBlack[u] > 0) {
			out = append(out, u)
		}
	}
	return out
}

// Privileged returns the current number of inconsistent vertices.
func (s *Sequential) Privileged() int { return len(s.privileged()) }

// Stabilized reports whether no vertex is privileged (the black set is then
// an MIS).
func (s *Sequential) Stabilized() bool { return len(s.privileged()) == 0 }

// Black reports the color of u.
func (s *Sequential) Black(u int) bool { return s.black[u] }

// Moves returns the total number of vertex moves executed.
func (s *Sequential) Moves() int { return s.moves }

// Steps returns the number of daemon steps executed.
func (s *Sequential) Steps() int { return s.steps }

// Step lets the daemon select and move privileged vertices once. It returns
// false when no vertex is privileged (stabilized).
func (s *Sequential) Step() bool {
	priv := s.privileged()
	if len(priv) == 0 {
		return false
	}
	selected := s.daemon.Select(priv, s.rng)
	// All selected vertices read the current configuration, then move
	// simultaneously (matters only for non-central daemons).
	flips := make([]int, 0, len(selected))
	for _, u := range selected {
		var wantBlack bool
		if s.randomized {
			wantBlack = s.rng.Bit()
		} else {
			wantBlack = !s.black[u] // deterministic repair: flip
		}
		s.moves++
		if wantBlack != s.black[u] {
			flips = append(flips, u)
		}
	}
	for _, u := range flips {
		nowBlack := !s.black[u]
		s.black[u] = nowBlack
		delta := int32(1)
		if !nowBlack {
			delta = -1
		}
		for _, v := range s.g.Neighbors(u) {
			s.nbrBlack[v] += delta
		}
	}
	s.steps++
	return true
}

// Run executes daemon steps until stabilization or maxSteps; it reports the
// steps taken and whether the algorithm stabilized.
func (s *Sequential) Run(maxSteps int) (steps int, stabilized bool) {
	for s.steps < maxSteps {
		if !s.Step() {
			return s.steps, true
		}
	}
	return s.steps, s.Stabilized()
}

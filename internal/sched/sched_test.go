package sched

import (
	"testing"

	"ssmis/internal/graph"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

func TestCentralDaemonStabilizesInTwoMovesPerVertex(t *testing.T) {
	// The classic result for the sequential deterministic algorithm: under a
	// central daemon it stabilizes after at most 2n moves, regardless of
	// scheduling order.
	rng := xrand.New(1)
	for trial := 0; trial < 30; trial++ {
		g := graph.Gnp(60, 0.1, rng.Split(uint64(trial)))
		for _, d := range []Daemon{CentralAdversarial{}, CentralRandom{}, &RoundRobin{}} {
			s := NewSequential(g, d, uint64(trial))
			steps, ok := s.Run(10 * g.N())
			if !ok {
				t.Fatalf("trial %d %s: not stabilized after %d steps", trial, d.Name(), steps)
			}
			if s.Moves() > 2*g.N() {
				t.Fatalf("trial %d %s: %d moves > 2n = %d", trial, d.Name(), s.Moves(), 2*g.N())
			}
			if err := verify.MIS(g, s.Black); err != nil {
				t.Fatalf("trial %d %s: %v", trial, d.Name(), err)
			}
		}
	}
}

func TestSynchronousDeterministicLivelocks(t *testing.T) {
	// Two adjacent white vertices (with no other neighbors) flip to black
	// together, then back to white together, forever: the deterministic
	// rule is not self-stabilizing under the synchronous daemon. This is
	// the paper's motivation for randomizing the parallel process.
	g := graph.Path(2)
	s := NewSequential(g, Synchronous{}, 1, WithInitialBlack([]bool{false, false}))
	steps, ok := s.Run(1000)
	if ok {
		t.Fatalf("deterministic synchronous run stabilized after %d steps; expected livelock", steps)
	}
	if s.Steps() != 1000 {
		t.Fatal("livelock run ended early")
	}
}

func TestSynchronousRandomizedStabilizes(t *testing.T) {
	// Randomized moves break the livelock: this is exactly the 2-state MIS
	// process and must stabilize with probability 1.
	g := graph.Path(2)
	s := NewSequential(g, Synchronous{}, 2, Randomized(), WithInitialBlack([]bool{false, false}))
	_, ok := s.Run(10000)
	if !ok {
		t.Fatal("randomized synchronous run did not stabilize")
	}
	if err := verify.MIS(g, s.Black); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedStabilizesUnderAllDaemons(t *testing.T) {
	rng := xrand.New(3)
	daemons := []Daemon{CentralAdversarial{}, CentralRandom{}, Synchronous{}, DistributedRandom{}}
	for trial := 0; trial < 10; trial++ {
		g := graph.Gnp(50, 0.1, rng.Split(uint64(trial)))
		for _, d := range daemons {
			s := NewSequential(g, d, uint64(trial), Randomized())
			if _, ok := s.Run(200 * g.N()); !ok {
				t.Fatalf("trial %d %s: randomized run did not stabilize", trial, d.Name())
			}
			if err := verify.MIS(g, s.Black); err != nil {
				t.Fatalf("trial %d %s: %v", trial, d.Name(), err)
			}
		}
	}
}

func TestDeterministicDistributedRandomStabilizes(t *testing.T) {
	// With a *random* distributed daemon even the deterministic rule
	// stabilizes with probability 1 (singleton selections break symmetry).
	g := graph.Cycle(9)
	s := NewSequential(g, DistributedRandom{}, 4)
	if _, ok := s.Run(100000); !ok {
		t.Fatal("deterministic rule under random distributed daemon did not stabilize")
	}
	if err := verify.MIS(g, s.Black); err != nil {
		t.Fatal(err)
	}
}

func TestPrivilegedCountsAndAccessors(t *testing.T) {
	g := graph.Path(3)
	// all black: 0 and 1 and 2... vertex 1 black with black nbrs, 0 and 2
	// black with black nbr -> all privileged.
	s := NewSequential(g, CentralAdversarial{}, 5, WithInitialBlack([]bool{true, true, true}))
	if s.Privileged() != 3 {
		t.Fatalf("Privileged = %d, want 3", s.Privileged())
	}
	if s.Stabilized() {
		t.Fatal("all-black path reported stabilized")
	}
	if !s.Black(0) {
		t.Fatal("Black accessor wrong")
	}
	s.Step()
	if s.Steps() != 1 || s.Moves() != 1 {
		t.Fatalf("Steps=%d Moves=%d after one central step", s.Steps(), s.Moves())
	}
}

func TestStepOnStabilizedReturnsFalse(t *testing.T) {
	g := graph.Path(2)
	s := NewSequential(g, CentralAdversarial{}, 6, WithInitialBlack([]bool{true, false}))
	if !s.Stabilized() {
		t.Fatal("MIS configuration not stabilized")
	}
	if s.Step() {
		t.Fatal("Step on stabilized instance reported a move")
	}
}

func TestInitialMaskValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong mask length")
		}
	}()
	NewSequential(graph.Path(3), Synchronous{}, 1, WithInitialBlack([]bool{true}))
}

func TestDaemonNames(t *testing.T) {
	for _, d := range []Daemon{CentralAdversarial{}, CentralRandom{}, Synchronous{}, DistributedRandom{}, &RoundRobin{}} {
		if d.Name() == "" {
			t.Fatal("empty daemon name")
		}
	}
}

func TestRoundRobinCyclesFairly(t *testing.T) {
	// On an all-black clique every vertex is privileged; round robin must
	// visit them in cyclic id order.
	g := graph.Complete(5)
	s := NewSequential(g, &RoundRobin{}, 1,
		WithInitialBlack([]bool{true, true, true, true, true}))
	var visited []int
	for i := 0; i < 4 && !s.Stabilized(); i++ {
		before := make([]bool, 5)
		for u := 0; u < 5; u++ {
			before[u] = s.Black(u)
		}
		s.Step()
		for u := 0; u < 5; u++ {
			if s.Black(u) != before[u] {
				visited = append(visited, u)
			}
		}
	}
	for i := 1; i < len(visited); i++ {
		if visited[i] <= visited[i-1] {
			t.Fatalf("round robin out of order: %v", visited)
		}
	}
}

package sched

import (
	"testing"

	"ssmis/internal/graph"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

func TestCentralDaemonStabilizesInTwoMovesPerVertex(t *testing.T) {
	// The classic result for the sequential deterministic algorithm: under a
	// central daemon it stabilizes after at most 2n moves, regardless of
	// scheduling order.
	rng := xrand.New(1)
	for trial := 0; trial < 30; trial++ {
		g := graph.Gnp(60, 0.1, rng.Split(uint64(trial)))
		for _, d := range []Daemon{CentralAdversarial{}, CentralRandom{}, &RoundRobin{}} {
			s := NewSequential(g, d, uint64(trial))
			steps, ok := s.Run(10 * g.N())
			if !ok {
				t.Fatalf("trial %d %s: not stabilized after %d steps", trial, d.Name(), steps)
			}
			if s.Moves() > 2*g.N() {
				t.Fatalf("trial %d %s: %d moves > 2n = %d", trial, d.Name(), s.Moves(), 2*g.N())
			}
			if err := verify.MIS(g, s.Black); err != nil {
				t.Fatalf("trial %d %s: %v", trial, d.Name(), err)
			}
		}
	}
}

func TestSynchronousDeterministicLivelocks(t *testing.T) {
	// Two adjacent white vertices (with no other neighbors) flip to black
	// together, then back to white together, forever: the deterministic
	// rule is not self-stabilizing under the synchronous daemon. This is
	// the paper's motivation for randomizing the parallel process.
	g := graph.Path(2)
	s := NewSequential(g, Synchronous{}, 1, WithInitialBlack([]bool{false, false}))
	steps, ok := s.Run(1000)
	if ok {
		t.Fatalf("deterministic synchronous run stabilized after %d steps; expected livelock", steps)
	}
	if s.Steps() != 1000 {
		t.Fatal("livelock run ended early")
	}
}

func TestSynchronousRandomizedStabilizes(t *testing.T) {
	// Randomized moves break the livelock: this is exactly the 2-state MIS
	// process and must stabilize with probability 1.
	g := graph.Path(2)
	s := NewSequential(g, Synchronous{}, 2, Randomized(), WithInitialBlack([]bool{false, false}))
	_, ok := s.Run(10000)
	if !ok {
		t.Fatal("randomized synchronous run did not stabilize")
	}
	if err := verify.MIS(g, s.Black); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedStabilizesUnderAllDaemons(t *testing.T) {
	rng := xrand.New(3)
	daemons := []Daemon{CentralAdversarial{}, CentralRandom{}, Synchronous{}, DistributedRandom{}}
	for trial := 0; trial < 10; trial++ {
		g := graph.Gnp(50, 0.1, rng.Split(uint64(trial)))
		for _, d := range daemons {
			s := NewSequential(g, d, uint64(trial), Randomized())
			if _, ok := s.Run(200 * g.N()); !ok {
				t.Fatalf("trial %d %s: randomized run did not stabilize", trial, d.Name())
			}
			if err := verify.MIS(g, s.Black); err != nil {
				t.Fatalf("trial %d %s: %v", trial, d.Name(), err)
			}
		}
	}
}

func TestDeterministicDistributedRandomStabilizes(t *testing.T) {
	// With a *random* distributed daemon even the deterministic rule
	// stabilizes with probability 1 (singleton selections break symmetry).
	g := graph.Cycle(9)
	s := NewSequential(g, DistributedRandom{}, 4)
	if _, ok := s.Run(100000); !ok {
		t.Fatal("deterministic rule under random distributed daemon did not stabilize")
	}
	if err := verify.MIS(g, s.Black); err != nil {
		t.Fatal(err)
	}
}

func TestPrivilegedCountsAndAccessors(t *testing.T) {
	g := graph.Path(3)
	// all black: 0 and 1 and 2... vertex 1 black with black nbrs, 0 and 2
	// black with black nbr -> all privileged.
	s := NewSequential(g, CentralAdversarial{}, 5, WithInitialBlack([]bool{true, true, true}))
	if s.Privileged() != 3 {
		t.Fatalf("Privileged = %d, want 3", s.Privileged())
	}
	if s.Stabilized() {
		t.Fatal("all-black path reported stabilized")
	}
	if !s.Black(0) {
		t.Fatal("Black accessor wrong")
	}
	s.Step()
	if s.Steps() != 1 || s.Moves() != 1 {
		t.Fatalf("Steps=%d Moves=%d after one central step", s.Steps(), s.Moves())
	}
}

func TestStepOnStabilizedReturnsFalse(t *testing.T) {
	g := graph.Path(2)
	s := NewSequential(g, CentralAdversarial{}, 6, WithInitialBlack([]bool{true, false}))
	if !s.Stabilized() {
		t.Fatal("MIS configuration not stabilized")
	}
	if s.Step() {
		t.Fatal("Step on stabilized instance reported a move")
	}
}

func TestInitialMaskValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong mask length")
		}
	}()
	NewSequential(graph.Path(3), Synchronous{}, 1, WithInitialBlack([]bool{true}))
}

func TestDaemonNames(t *testing.T) {
	for _, d := range []Daemon{CentralAdversarial{}, CentralRandom{}, Synchronous{}, DistributedRandom{}, &RoundRobin{}} {
		if d.Name() == "" {
			t.Fatal("empty daemon name")
		}
	}
}

// KFair behaves adversarially (lowest privileged index) while nobody is
// starved, and must serve a continuously privileged vertex once its window
// expires — driven here on raw privileged lists, independent of any rule.
func TestKFairServesStarvedVertex(t *testing.T) {
	d := NewKFair(3)
	priv := []int{2, 7}
	// Steps 1 and 2: nobody has been starved for 3 steps yet, so the
	// adversarial choice (vertex 2) moves and vertex 7's starvation grows.
	for step := 1; step <= 2; step++ {
		if got := d.Select(priv, nil); got[0] != 2 {
			t.Fatalf("step %d: selected %d, want adversarial 2", step, got[0])
		}
	}
	// Step 3: vertex 7 has been privileged, unselected, for 3 consecutive
	// steps — the fairness window forces it to move.
	if got := d.Select(priv, nil); got[0] != 7 {
		t.Fatalf("step 3: selected %d, want starved 7", got[0])
	}
	// Its starvation counter reset, so the daemon is adversarial again.
	if got := d.Select(priv, nil); got[0] != 2 {
		t.Fatalf("step 4: selected %d, want adversarial 2", got[0])
	}
}

// A vertex that stops being privileged loses its accumulated starvation:
// the window counts CONSECUTIVE privileged steps.
func TestKFairStarvationResetsWhenUnprivileged(t *testing.T) {
	d := NewKFair(2)
	if got := d.Select([]int{0, 5}, nil); got[0] != 0 {
		t.Fatalf("step 1: selected %d, want 0", got[0])
	}
	// Vertex 5 drops out for a step, then returns: its run restarts at 1.
	if got := d.Select([]int{0}, nil); got[0] != 0 {
		t.Fatalf("step 2: selected %d, want 0", got[0])
	}
	if got := d.Select([]int{0, 5}, nil); got[0] != 0 {
		t.Fatalf("step 3: selected %d, want 0 (5's run restarted)", got[0])
	}
	if got := d.Select([]int{0, 5}, nil); got[0] != 5 {
		t.Fatalf("step 4: selected %d, want starved 5", got[0])
	}
}

// Among several starved vertices the longest-starved moves first, ties to
// the lowest index.
func TestKFairLongestStarvedFirst(t *testing.T) {
	d := NewKFair(1)
	// k=1: every privileged vertex is immediately starved; the daemon serves
	// the longest-privileged one each step, ties to the lowest index.
	if got := d.Select([]int{3, 8}, nil); got[0] != 3 {
		t.Fatalf("step 1: selected %d, want 3 (tie to lowest)", got[0])
	}
	// Vertex 8 has run 2, vertex 3 restarted at 1 after moving.
	if got := d.Select([]int{3, 8}, nil); got[0] != 8 {
		t.Fatalf("step 2: selected %d, want 8 (longest starved)", got[0])
	}
}

func TestKFairByName(t *testing.T) {
	d, err := DaemonByName("k-fair")
	if err != nil || d.Name() != "k-fair:4" {
		t.Fatalf("bare k-fair: %v, %v", d, err)
	}
	d, err = DaemonByName("k-fair:8")
	if err != nil || d.Name() != "k-fair:8" {
		t.Fatalf("k-fair:8: %v, %v", d, err)
	}
	for _, bad := range []string{"k-fair:0", "k-fair:-2", "k-fair:x", "k-fair:"} {
		if _, err := DaemonByName(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
	// Every advertised daemon name must resolve.
	for _, name := range DaemonNames() {
		if _, err := DaemonByName(name); err != nil {
			t.Fatalf("DaemonNames entry %q does not resolve: %v", name, err)
		}
	}
}

func TestKFairValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on k < 1")
		}
	}()
	NewKFair(0)
}

// The randomized sequential rule stabilizes under k-fair daemons too (the
// [28, 31] claim holds for any daemon; k-fair sits between adversarial and
// fully fair).
func TestRandomizedStabilizesUnderKFair(t *testing.T) {
	g := graph.Gnp(40, 0.15, xrand.New(5))
	for _, k := range []int{1, 4, 16} {
		s := NewSequential(g, NewKFair(k), 11, Randomized())
		if _, ok := s.Run(100 * g.N()); !ok {
			t.Fatalf("randomized rule did not stabilize under %d-fair", k)
		}
	}
}

func TestRoundRobinCyclesFairly(t *testing.T) {
	// On an all-black clique every vertex is privileged; round robin must
	// visit them in cyclic id order.
	g := graph.Complete(5)
	s := NewSequential(g, &RoundRobin{}, 1,
		WithInitialBlack([]bool{true, true, true, true, true}))
	var visited []int
	for i := 0; i < 4 && !s.Stabilized(); i++ {
		before := make([]bool, 5)
		for u := 0; u < 5; u++ {
			before[u] = s.Black(u)
		}
		s.Step()
		for u := 0; u < 5; u++ {
			if s.Black(u) != before[u] {
				visited = append(visited, u)
			}
		}
	}
	for i := 1; i < len(visited); i++ {
		if visited[i] <= visited[i-1] {
			t.Fatalf("round robin out of order: %v", visited)
		}
	}
}

// A stateful daemon restored from MarshalState must continue the schedule
// exactly: running a sequence, snapshotting mid-way, and resuming into a
// fresh instance selects the same vertices as the uninterrupted daemon.
func TestStatefulDaemonStateRoundTrip(t *testing.T) {
	g := graph.Gnp(60, 0.1, xrand.New(3))
	for _, name := range []string{"round-robin", "k-fair:3"} {
		full, _ := DaemonByName(name)
		half, _ := DaemonByName(name)
		a := NewSequential(g, full, 7, Randomized())
		b := NewSequential(g, half, 7, Randomized())
		for i := 0; i < 40; i++ {
			a.Step()
			b.Step()
		}
		blob, err := half.(Stateful).MarshalState()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		resumed, _ := DaemonByName(name)
		if err := resumed.(Stateful).UnmarshalState(blob); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Swap the restored daemon under b's continuation.
		b.daemon = resumed
		for i := 0; i < 200; i++ {
			am, bm := a.Step(), b.Step()
			if am != bm {
				t.Fatalf("%s: step %d: progress flags diverged", name, i)
			}
			for u := 0; u < g.N(); u++ {
				if a.Black(u) != b.Black(u) {
					t.Fatalf("%s: step %d vertex %d diverged", name, i, u)
				}
			}
			if !am {
				break
			}
		}
		if a.Moves() != b.Moves() || a.Steps() != b.Steps() {
			t.Fatalf("%s: accounting diverged (%d/%d moves, %d/%d steps)",
				name, a.Moves(), b.Moves(), a.Steps(), b.Steps())
		}
	}
	// Window mismatch is rejected.
	k4, _ := DaemonByName("k-fair:4")
	blob, _ := k4.(Stateful).MarshalState()
	k8, _ := DaemonByName("k-fair:8")
	if err := k8.(Stateful).UnmarshalState(blob); err == nil {
		t.Fatal("k-fair window mismatch accepted")
	}
}

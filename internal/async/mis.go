package async

import (
	"ssmis/internal/beeping"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/stoneage"
	"ssmis/internal/verify"
)

// MIS runs the paper's 2-state MIS protocol — the exact per-node programs of
// internal/beeping — over the asynchronous beeping-with-collision-detection
// medium. At ρ = 1 the execution is coin-for-coin the synchronous
// beeping.MIS execution; no Close is needed (the medium spawns no
// goroutines).
type MIS struct {
	g      *graph.Graph
	engine *Engine
	ps     *beeping.ProgramSet
}

// NewMIS creates the protocol instance under the given drift model.
// initialBlack may be nil for a uniformly random initial coloring (drawn
// exactly as the simulator's InitRandom does).
func NewMIS(g *graph.Graph, seed uint64, drift Drift, initialBlack []bool) *MIS {
	ps := beeping.NewPrograms(g.N(), seed, initialBlack)
	return &MIS{
		g:      g,
		engine: NewEngine(g, ps.Model(), ps.Programs(), drift, seed),
		ps:     ps,
	}
}

// Engine returns the underlying asynchronous medium, for instrumentation
// (skew, virtual time, observed slot lengths).
func (m *MIS) Engine() *Engine { return m.engine }

// Rounds returns the completed virtual rounds (the slowest node's slots).
func (m *MIS) Rounds() int { return m.engine.Rounds() }

// Black reports vertex u's current color.
func (m *MIS) Black(u int) bool { return m.ps.Black(u) }

// RandomBits returns the total random bits drawn across all nodes.
func (m *MIS) RandomBits() int64 { return m.ps.RandomBits() }

// Stabilized reports whether the black set is an MIS (observer-side check,
// as in the synchronous runtimes).
func (m *MIS) Stabilized() bool {
	return verify.Unstable(m.g, m.Black).Empty()
}

// Run advances until stabilization or maxRounds virtual rounds and reports
// the first round of the stable configuration and whether the protocol
// stabilized. Under drift (ρ > 1) stabilization is CONFIRMED: the stable
// configuration must persist, black projection unchanged, for a full
// influence horizon, because a stale beep interval can reactivate a covered
// vertex right after a naive snapshot check (see Engine.RunConfirmed). At
// ρ = 1 this is exactly the synchronous runtime's Run.
func (m *MIS) Run(maxRounds int) (rounds int, stabilized bool) {
	return m.engine.RunConfirmed(maxRounds, m.Stabilized, m.Black)
}

// ThreeStateMIS runs the paper's 3-state MIS protocol — the exact per-node
// programs of internal/stoneage — over the asynchronous 2-channel stone age
// medium. At ρ = 1 the execution is coin-for-coin the synchronous
// stoneage.ThreeStateMIS execution.
type ThreeStateMIS struct {
	g      *graph.Graph
	engine *Engine
	ps     *stoneage.ThreeStateProgramSet
}

// NewThreeStateMIS creates the protocol instance under the given drift
// model. initial may be nil for uniformly random states (drawn exactly as
// the simulator's InitRandom does).
func NewThreeStateMIS(g *graph.Graph, seed uint64, drift Drift, initial []mis.TriState) *ThreeStateMIS {
	ps := stoneage.NewThreeStatePrograms(g.N(), seed, initial)
	return &ThreeStateMIS{
		g:      g,
		engine: NewEngine(g, ps.Model(), ps.Programs(), drift, seed),
		ps:     ps,
	}
}

// Engine returns the underlying asynchronous medium.
func (m *ThreeStateMIS) Engine() *Engine { return m.engine }

// Rounds returns the completed virtual rounds.
func (m *ThreeStateMIS) Rounds() int { return m.engine.Rounds() }

// Black reports vertex u's color projection.
func (m *ThreeStateMIS) Black(u int) bool { return m.ps.Black(u) }

// State returns vertex u's full state.
func (m *ThreeStateMIS) State(u int) mis.TriState { return m.ps.State(u) }

// RandomBits returns the total random bits drawn across all nodes.
func (m *ThreeStateMIS) RandomBits() int64 { return m.ps.RandomBits() }

// Stabilized reports whether N+(I) covers the graph (observer-side check).
func (m *ThreeStateMIS) Stabilized() bool {
	return verify.Unstable(m.g, m.Black).Empty()
}

// Run advances until stabilization or maxRounds virtual rounds, with the
// same drift-confirmed semantics as MIS.Run: under ρ > 1 the stable
// configuration must persist for a full influence horizon before the run
// reports it (first-observed round returned); at ρ = 1 this is exactly the
// synchronous runtime's Run.
func (m *ThreeStateMIS) Run(maxRounds int) (rounds int, stabilized bool) {
	return m.engine.RunConfirmed(maxRounds, m.Stabilized, m.Black)
}

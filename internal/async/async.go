// Package async is the message-level asynchronous beeping medium: each node
// owns a logical clock advanced by a drift model (Drift), executes its
// protocol in local slots whose real-time lengths vary within the drift
// bound ρ, beeps occupy the emitting node's whole slot interval, and a node
// hears a beep on a channel iff some neighbor's beep interval on that
// channel overlaps the node's own listening slot.
//
// The medium runs the SAME per-node programs as the synchronous
// goroutine-per-node runtime (noderun.Program, built by
// beeping.NewPrograms / stoneage.NewThreeStatePrograms): a node still sees
// only Emit and Deliver, so the locality discipline of the paper's
// weak-communication claim is preserved — what changes is purely when slots
// happen and which beep intervals overlap.
//
// Semantics of one local slot of node u:
//
//  1. at slot start, u's program Emits a channel mask; the beeps occupy the
//     whole slot interval [start, end);
//  2. at slot end, u hears channel c iff some neighbor's beep interval on c
//     overlaps [start, end) (intervals are half-open, so back-to-back slots
//     do not overlap), the model's masking applies (a no-CD radio cannot
//     hear a channel while it beeps on it), and the program's Deliver runs;
//  3. the next slot begins immediately, with a length chosen by the drift
//     model from the node's dedicated clock stream.
//
// At ρ = 1 every slot has the base length, slot k of every node is the
// interval [k·SlotTicks, (k+1)·SlotTicks), two slots overlap iff they have
// the same index, and the medium collapses to the synchronous noderun
// execution coin-for-coin — pinned by the cross-runtime equivalence matrix
// in equivalence_test.go.
//
// The implementation is a single-goroutine discrete-event simulation over
// integer ticks (no floats, no map iteration, no goroutine scheduling), so
// an execution is a pure function of (graph, seed, drift model): replays
// are byte-identical, which the deterministic-replay CI smoke asserts
// end-to-end through misrun.
package async

import (
	"fmt"
	"math"
	"math/bits"

	"ssmis/internal/graph"
	"ssmis/internal/noderun"
	"ssmis/internal/xrand"
)

// slotRec is one completed slot of a node: its interval and the beep mask
// it carried (captured at emit time, so later state changes cannot corrupt
// what was on the air).
type slotRec struct {
	start, end int64
	mask       uint32
}

// event is a pending slot end in the event queue.
type event struct {
	t  int64
	id int32
}

// eventLess orders events by time, ties by node id — the deterministic
// total order the whole simulation advances in.
func eventLess(a, b event) bool {
	return a.t < b.t || (a.t == b.t && a.id < b.id)
}

// Engine drives node programs over a graph under a communication model and
// a drift model. Unlike noderun.Engine it spawns no goroutines — there is
// nothing to Close.
type Engine struct {
	g     *graph.Graph
	model noderun.Model
	progs []noderun.Program
	drift Drift

	minLen, maxLen int64 // legal slot-length bounds for the drift ρ

	clocks []*xrand.Rand // per-node clock streams (disjoint from coin streams)
	slot   []int         // current slot index per node
	start  []int64       // current slot start tick
	end    []int64       // current slot end tick
	emit   []uint32      // current slot beep mask

	hist [][]slotRec // completed slots per node, pruned past the horizon

	pq []event // binary min-heap under eventLess

	now       int64 // latest processed event time
	completed int64 // total completed slots
	rounds    int   // completed virtual rounds (slowest node's slots)
	doneAt    []int // doneAt[k] = nodes that have completed slot k
	topSlot   int   // highest current slot index over all nodes

	maxSkew        int   // max observed slot-index spread between nodes
	obsMin, obsMax int64 // observed slot-length extremes
}

// NewEngine creates an asynchronous medium for the given programs.
// progs[u] is vertex u's program; len(progs) must equal g.N(). Node u's
// clock stream is Split(n+3+u) of the master seed — above the protocol's
// per-vertex coin streams (u < n), the init stream (n+1) and the scheduler
// stream (n+2) — so clock noise and protocol coins never interleave.
func NewEngine(g *graph.Graph, model noderun.Model, progs []noderun.Program, drift Drift, seed uint64) *Engine {
	n := g.N()
	if len(progs) != n {
		panic(fmt.Sprintf("async: %d programs for %d vertices", len(progs), n))
	}
	if model.Channels < 1 || model.Channels > 32 {
		panic(fmt.Sprintf("async: channels %d out of [1,32]", model.Channels))
	}
	if drift == nil {
		panic("async: nil drift model")
	}
	e := &Engine{
		g:      g,
		model:  model,
		progs:  progs,
		drift:  drift,
		minLen: SlotTicks,
		maxLen: MaxSlotTicks(checkRho(drift.Rho())),
		clocks: make([]*xrand.Rand, n),
		slot:   make([]int, n),
		start:  make([]int64, n),
		end:    make([]int64, n),
		emit:   make([]uint32, n),
		hist:   make([][]slotRec, n),
		pq:     make([]event, 0, n),
		obsMin: math.MaxInt64,
	}
	master := xrand.New(seed)
	for u := 0; u < n; u++ {
		e.clocks[u] = master.Split(uint64(n) + 3 + uint64(u))
	}
	for u := 0; u < n; u++ {
		e.beginSlot(u, 0, 0)
	}
	return e
}

// beginSlot starts node u's slot k at the given tick: draws the slot
// length, validates it against the drift bound, and puts the program's emit
// decision on the air for the whole interval.
func (e *Engine) beginSlot(u, k int, start int64) {
	l := e.drift.SlotLen(u, k, start, e.clocks[u])
	if l < e.minLen || l > e.maxLen {
		panic(fmt.Sprintf("async: drift %s produced slot length %d outside [%d, %d] (ρ=%g)",
			e.drift.Name(), l, e.minLen, e.maxLen, e.drift.Rho()))
	}
	if l < e.obsMin {
		e.obsMin = l
	}
	if l > e.obsMax {
		e.obsMax = l
	}
	m := e.progs[u].Emit()
	chanMask := uint32(1)<<uint(e.model.Channels) - 1
	if m&^chanMask != 0 {
		panic(fmt.Sprintf("async: node %d beeped outside the %d-channel alphabet (%s model)",
			u, e.model.Channels, e.model.Name))
	}
	if e.model.MaxBeepsPerNode > 0 && bits.OnesCount32(m) > e.model.MaxBeepsPerNode {
		panic(fmt.Sprintf("async: node %d beeped on %d channels, max %d (%s model)",
			u, bits.OnesCount32(m), e.model.MaxBeepsPerNode, e.model.Name))
	}
	e.slot[u] = k
	e.start[u] = start
	e.end[u] = start + l
	e.emit[u] = m
	e.pushEvent(event{t: e.end[u], id: int32(u)})
}

// hear computes the feedback mask for node u's current slot: the OR of
// every neighbor beep interval overlapping [start, end). A neighbor's
// current (still open) slot overlaps iff it started before end — its end
// lies at or beyond the event being processed; completed slots are scanned
// newest-first until they fall entirely before the listening interval.
func (e *Engine) hear(u int) uint32 {
	s, end := e.start[u], e.end[u]
	var h uint32
	for _, v32 := range e.g.Neighbors(u) {
		v := int(v32)
		if e.start[v] < end {
			h |= e.emit[v]
		}
		recs := e.hist[v]
		for i := len(recs) - 1; i >= 0; i-- {
			if recs[i].end <= s {
				break
			}
			if recs[i].start < end {
				h |= recs[i].mask
			}
		}
	}
	return h
}

// processNext delivers the earliest pending slot end and starts that node's
// next slot. It returns true when the completion finished a whole virtual
// round — every node has now completed the round's slot.
func (e *Engine) processNext() bool {
	ev := e.popEvent()
	e.now = ev.t
	u := int(ev.id)
	h := e.hear(u)
	if !e.model.SenderCollisionDetection {
		// A beeping radio cannot listen on the channel it transmits on.
		h &^= e.emit[u]
	}
	e.progs[u].Deliver(h)
	k := e.slot[u]
	e.hist[u] = append(e.hist[u], slotRec{start: e.start[u], end: e.end[u], mask: e.emit[u]})
	e.completed++
	for len(e.doneAt) <= k {
		e.doneAt = append(e.doneAt, 0)
	}
	e.doneAt[k]++
	e.beginSlot(u, k+1, e.end[u])
	if e.completed%int64(e.g.N()) == 0 {
		e.prune()
	}
	boundary := false
	if e.rounds < len(e.doneAt) && e.doneAt[e.rounds] == e.g.N() {
		e.rounds++
		boundary = true
	}
	// Exact skew tracking: the slowest node's current slot index is always
	// e.rounds (it is the one holding the round boundary back), so the
	// spread is topSlot - rounds — evaluated only once the current instant
	// has fully settled (no further events at time now), because nodes
	// whose slots end at exactly this tick are mid-advance and a half-open
	// interval touching the tick is not an overlap (at ρ=1 every round is
	// one big tie and the settled spread is 0).
	if k+1 > e.topSlot {
		e.topSlot = k + 1
	}
	if len(e.pq) > 0 && e.pq[0].t > e.now {
		if sk := e.topSlot - e.rounds; sk > e.maxSkew {
			e.maxSkew = sk
		}
	}
	return boundary
}

// prune drops history that can no longer overlap any live listening slot.
// Every node's current slot ends at or after now and is at most maxLen
// long, so it started at or after now-maxLen; future slots start later
// still. Records ending at or before that horizon are dead.
func (e *Engine) prune() {
	horizon := e.now - e.maxLen
	for u := range e.hist {
		recs := e.hist[u]
		i := 0
		for i < len(recs) && recs[i].end <= horizon {
			i++
		}
		if i > 0 {
			e.hist[u] = append(recs[:0], recs[i:]...)
		}
	}
}

// RunUntil advances the medium until stop returns true — checked at virtual
// round boundaries, when every node has completed the round's slot — or
// maxRounds rounds elapse. It returns the completed rounds and whether stop
// fired, mirroring noderun.Engine.RunUntil so the two engines report
// stabilization on the same scale.
func (e *Engine) RunUntil(maxRounds int, stop func() bool) (rounds int, stopped bool) {
	if e.g.N() == 0 || stop() {
		return e.rounds, stop()
	}
	for e.rounds < maxRounds {
		if e.processNext() && stop() {
			return e.rounds, true
		}
	}
	return e.rounds, stop()
}

// influenceHorizonRounds bounds, in virtual rounds, how long any beep
// interval already on the air can keep overlapping listening slots: an
// interval emitted before time T ends by T+maxLen and can influence
// deliveries only up to T+2·maxLen, and consecutive round boundaries are at
// least SlotTicks apart, so ceil(2ρ) rounds (+1 for margin) flush it. At
// ρ=1 slots align exactly — slot k only ever overlaps slot k — so observed
// stability is absorbing just as in the synchronous engine and the horizon
// is zero.
func (e *Engine) influenceHorizonRounds() int {
	if e.drift.Rho() == 1 {
		return 0
	}
	return int(2*math.Ceil(e.drift.Rho())) + 1
}

// RunConfirmed advances the medium until stable() holds AND persists: under
// drift (ρ > 1) an observer-stable configuration is not automatically
// absorbing — a stale beep interval emitted by a since-changed state can
// still overlap a covered vertex's listening slot and reactivate it — so
// stabilization is reported only once the stable configuration's black
// projection has survived, unchanged at every round boundary, for a full
// influence horizon (influenceHorizonRounds). The returned round count is
// the round at which the confirmed configuration was FIRST observed, which
// at ρ = 1 (horizon zero) makes RunConfirmed behave exactly like RunUntil —
// the pinned synchronous-equivalence semantics.
//
// A run that reaches maxRounds without a candidate falls back to the
// snapshot semantics of RunUntil (rounds, stable()); confirmation is
// allowed to overrun the cap by at most one horizon.
func (e *Engine) RunConfirmed(maxRounds int, stable func() bool, black func(int) bool) (rounds int, stabilized bool) {
	n := e.g.N()
	if n == 0 {
		return e.rounds, stable()
	}
	flush := e.influenceHorizonRounds()
	snap := make([]bool, n)
	candidate := -1
	note := func() {
		candidate = e.rounds
		for u := 0; u < n; u++ {
			snap[u] = black(u)
		}
	}
	boundary := func() (confirmed bool) {
		if !stable() {
			candidate = -1
			return false
		}
		if candidate < 0 {
			note()
			return flush == 0
		}
		for u := 0; u < n; u++ {
			if snap[u] != black(u) {
				// The projection moved while under observation: restart the
				// horizon from the configuration now on the air.
				note()
				return false
			}
		}
		return e.rounds >= candidate+flush
	}
	if boundary() {
		return candidate, true
	}
	for {
		if !e.processNext() {
			continue
		}
		if boundary() {
			return candidate, true
		}
		if candidate < 0 && e.rounds >= maxRounds {
			return e.rounds, false
		}
		if e.rounds >= maxRounds+flush {
			return e.rounds, stable()
		}
	}
}

// StepRound advances the medium until the next virtual round completes —
// every node has finished one more slot. Between StepRound calls at ρ = 1
// the configuration equals the synchronous engine's after the same number
// of Steps, which is how the cross-runtime equivalence matrix compares the
// two engines round-for-round.
func (e *Engine) StepRound() {
	if e.g.N() == 0 {
		return
	}
	for !e.processNext() {
	}
}

// Rounds returns the number of completed virtual rounds: the slot count of
// the slowest node, the asynchronous analogue of the synchronous round
// counter.
func (e *Engine) Rounds() int { return e.rounds }

// Now returns the latest processed event time in ticks.
func (e *Engine) Now() int64 { return e.now }

// Slot returns node u's current local slot index.
func (e *Engine) Slot(u int) int { return e.slot[u] }

// MaxSkew returns the maximum observed slot-index spread between the
// fastest and the slowest node clock, tracked exactly at every event — 0 in
// a lockstep (ρ=1) execution, growing with virtual time under sustained
// drift.
func (e *Engine) MaxSkew() int { return e.maxSkew }

// ObservedSlotLens returns the extreme slot lengths the drift model has
// produced so far; both are 0 before any slot began. Property tests assert
// they lie within [SlotTicks, MaxSlotTicks(ρ)] — the engine itself panics
// if a drift model ever leaves that window.
func (e *Engine) ObservedSlotLens() (min, max int64) {
	if e.obsMax == 0 {
		return 0, 0
	}
	return e.obsMin, e.obsMax
}

// Model returns the communication model the medium enforces.
func (e *Engine) Model() noderun.Model { return e.model }

// Drift returns the drift model advancing the clocks.
func (e *Engine) Drift() Drift { return e.drift }

// Program returns vertex u's program, for observer-side inspection.
func (e *Engine) Program(u int) noderun.Program { return e.progs[u] }

// pushEvent inserts ev into the min-heap.
func (e *Engine) pushEvent(ev event) {
	e.pq = append(e.pq, ev)
	i := len(e.pq) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(e.pq[i], e.pq[parent]) {
			break
		}
		e.pq[i], e.pq[parent] = e.pq[parent], e.pq[i]
		i = parent
	}
}

// popEvent removes and returns the earliest event.
func (e *Engine) popEvent() event {
	top := e.pq[0]
	last := len(e.pq) - 1
	e.pq[0] = e.pq[last]
	e.pq = e.pq[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && eventLess(e.pq[l], e.pq[smallest]) {
			smallest = l
		}
		if r < last && eventLess(e.pq[r], e.pq[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		e.pq[i], e.pq[smallest] = e.pq[smallest], e.pq[i]
		i = smallest
	}
	return top
}

package async_test

// Property/fuzz layer for every runtime: any terminal configuration any
// engine reaches must be a valid MIS (verify.MIS), and asynchronous
// executions must never see a slot length outside the drift bound ρ. The
// corpus seeds keep `go test` running these as cheap property checks; `go
// test -fuzz` explores further.

import (
	"testing"

	"ssmis/internal/async"
	"ssmis/internal/beeping"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/stoneage"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

// fuzzGraph derives a small random graph from fuzz-controlled raw values.
func fuzzGraph(seed uint64, nRaw, pRaw uint16) *graph.Graph {
	n := 2 + int(nRaw%47)
	p := float64(pRaw%500) / 1000
	return graph.Gnp(n, p, xrand.New(seed^0x5DEECE66D))
}

// fuzzRho maps a raw value onto the drift range [1, 3].
func fuzzRho(rhoRaw uint16) float64 {
	return 1 + float64(rhoRaw%2001)/1000
}

// checkDriftBound asserts the engine only observed slot lengths the bound
// permits (the engine additionally panics if a drift model ever leaves it).
func checkDriftBound(t *testing.T, e *async.Engine, rho float64) {
	t.Helper()
	min, max := e.ObservedSlotLens()
	if min < async.SlotTicks || max > async.MaxSlotTicks(rho) {
		t.Fatalf("observed slot lengths [%d, %d] outside drift bound [%d, %d] (ρ=%g)",
			min, max, int64(async.SlotTicks), async.MaxSlotTicks(rho), rho)
	}
}

func FuzzAsyncTwoStateMIS(f *testing.F) {
	f.Add(uint64(1), uint16(40), uint16(80), uint16(500))
	f.Add(uint64(99), uint16(12), uint16(400), uint16(0))
	f.Add(uint64(7), uint16(30), uint16(150), uint16(2000))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, pRaw, rhoRaw uint16) {
		g := fuzzGraph(seed, nRaw, pRaw)
		rho := fuzzRho(rhoRaw)
		m := async.NewMIS(g, seed, async.NewBounded(rho), nil)
		limit := 8 * mis.DefaultRoundCap(g.N())
		if _, ok := m.Run(limit); !ok {
			t.Fatalf("2-state did not stabilize within %d rounds (n=%d ρ=%g seed=%d)", limit, g.N(), rho, seed)
		}
		if err := verify.MIS(g, m.Black); err != nil {
			t.Fatalf("2-state terminal configuration invalid (n=%d ρ=%g seed=%d): %v", g.N(), rho, seed, err)
		}
		checkDriftBound(t, m.Engine(), rho)
	})
}

func FuzzAsyncThreeStateMIS(f *testing.F) {
	f.Add(uint64(2), uint16(40), uint16(80), uint16(700))
	f.Add(uint64(55), uint16(20), uint16(300), uint16(1500))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, pRaw, rhoRaw uint16) {
		g := fuzzGraph(seed, nRaw, pRaw)
		rho := fuzzRho(rhoRaw)
		m := async.NewThreeStateMIS(g, seed, async.NewBounded(rho), nil)
		limit := 8 * mis.DefaultRoundCap(g.N())
		if _, ok := m.Run(limit); !ok {
			t.Fatalf("3-state did not stabilize within %d rounds (n=%d ρ=%g seed=%d)", limit, g.N(), rho, seed)
		}
		if err := verify.MIS(g, m.Black); err != nil {
			t.Fatalf("3-state terminal configuration invalid (n=%d ρ=%g seed=%d): %v", g.N(), rho, seed, err)
		}
		checkDriftBound(t, m.Engine(), rho)
	})
}

// Every runtime — simulator, synchronous node runtimes, async at an
// arbitrary ρ — must terminate in a valid MIS on the same fuzzed instance.
func FuzzRuntimeTerminalMIS(f *testing.F) {
	f.Add(uint64(3), uint16(24), uint16(120), uint16(900))
	f.Add(uint64(41), uint16(33), uint16(60), uint16(300))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, pRaw, rhoRaw uint16) {
		g := fuzzGraph(seed, nRaw, pRaw)
		limit := 8 * mis.DefaultRoundCap(g.N())

		check := func(name string, rounds int, ok bool, black func(int) bool) {
			t.Helper()
			if !ok {
				t.Fatalf("%s did not stabilize within %d rounds (n=%d seed=%d)", name, limit, g.N(), seed)
			}
			_ = rounds
			if err := verify.MIS(g, black); err != nil {
				t.Fatalf("%s terminal configuration invalid (n=%d seed=%d): %v", name, g.N(), seed, err)
			}
		}

		for _, kind := range []struct {
			name string
			mk   func() mis.Process
		}{
			{"sim-2state", func() mis.Process { return mis.NewTwoState(g, mis.WithSeed(seed)) }},
			{"sim-3state", func() mis.Process { return mis.NewThreeState(g, mis.WithSeed(seed)) }},
			{"sim-3color", func() mis.Process { return mis.NewThreeColor(g, mis.WithSeed(seed)) }},
		} {
			p := kind.mk()
			res := mis.Run(p, limit)
			check(kind.name, res.Rounds, res.Stabilized, p.Black)
		}

		bee := beeping.NewMIS(g, seed, nil)
		r, ok := bee.Run(limit)
		check("beeping", r, ok, bee.Black)
		bee.Close()

		sa := stoneage.NewThreeStateMIS(g, seed, nil)
		r, ok = sa.Run(limit)
		check("stone-age", r, ok, sa.Black)
		sa.Close()

		rho := fuzzRho(rhoRaw)
		am := async.NewMIS(g, seed, async.NewAdversarial(rho), nil)
		r, ok = am.Run(limit)
		check("async-adversarial", r, ok, am.Black)
		checkDriftBound(t, am.Engine(), rho)
	})
}

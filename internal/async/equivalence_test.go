package async_test

// Cross-runtime equivalence matrix: for each process, the array simulator
// (internal/mis), the synchronous goroutine-per-node runtime
// (internal/noderun over the shared program sets), and the asynchronous
// medium at ρ = 1 must produce IDENTICAL executions round-for-round — same
// per-vertex states every round, same stabilization round, same random-bit
// totals — across 20 seeds × 4 graph families. Any divergence is a
// model-translation bug in one of the engines, not noise.

import (
	"fmt"
	"testing"

	"ssmis/internal/async"
	"ssmis/internal/beeping"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/noderun"
	"ssmis/internal/stoneage"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

const matrixSeeds = 20

// matrixFamilies are the graph families of the sweep; random families
// resample per seed, deterministic families are fixed.
func matrixFamilies(seed uint64) []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.Gnp(48, 0.08, xrand.New(seed))},
		{"chunglu", graph.ChungLu(48, 2.5, 5, xrand.New(seed+1))},
		{"grid", graph.Grid(7, 7)},
		{"cliques", graph.DisjointCliques(6, 6)},
	}
}

func TestCrossRuntimeEquivalenceMatrix(t *testing.T) {
	type runtimes struct {
		step  func() // advance every engine one round
		same  func() error
		bits  func() (sim, sync, async int64)
		simOK func() bool
	}
	cases := []struct {
		process string
		build   func(g *graph.Graph, seed uint64) runtimes
	}{
		{"2-state", func(g *graph.Graph, seed uint64) runtimes {
			sim := mis.NewTwoState(g, mis.WithSeed(seed))
			ps := beeping.NewPrograms(g.N(), seed, nil)
			sync := noderun.NewEngine(g, ps.Model(), ps.Programs())
			t.Cleanup(sync.Close)
			am := async.NewMIS(g, seed, async.NewBounded(1), nil)
			return runtimes{
				step: func() { sim.Step(); sync.Step(); am.Engine().StepRound() },
				same: func() error {
					for u := 0; u < g.N(); u++ {
						if sim.Black(u) != ps.Black(u) || sim.Black(u) != am.Black(u) {
							return fmt.Errorf("vertex %d: sim=%v sync=%v async=%v",
								u, sim.Black(u), ps.Black(u), am.Black(u))
						}
					}
					return nil
				},
				bits:  func() (int64, int64, int64) { return sim.RandomBits(), ps.RandomBits(), am.RandomBits() },
				simOK: sim.Stabilized,
			}
		}},
		{"3-state", func(g *graph.Graph, seed uint64) runtimes {
			sim := mis.NewThreeState(g, mis.WithSeed(seed))
			ps := stoneage.NewThreeStatePrograms(g.N(), seed, nil)
			sync := noderun.NewEngine(g, ps.Model(), ps.Programs())
			t.Cleanup(sync.Close)
			am := async.NewThreeStateMIS(g, seed, async.NewBounded(1), nil)
			return runtimes{
				step: func() { sim.Step(); sync.Step(); am.Engine().StepRound() },
				same: func() error {
					for u := 0; u < g.N(); u++ {
						if sim.State(u) != ps.State(u) || sim.State(u) != am.State(u) {
							return fmt.Errorf("vertex %d: sim=%v sync=%v async=%v",
								u, sim.State(u), ps.State(u), am.State(u))
						}
					}
					return nil
				},
				bits:  func() (int64, int64, int64) { return sim.RandomBits(), ps.RandomBits(), am.RandomBits() },
				simOK: sim.Stabilized,
			}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.process, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= matrixSeeds; seed++ {
				for _, fam := range matrixFamilies(seed) {
					rt := tc.build(fam.g, seed)
					rounds := 0
					for ; rounds < 5000 && !rt.simOK(); rounds++ {
						rt.step()
						if err := rt.same(); err != nil {
							t.Fatalf("%s seed %d round %d: %v", fam.name, seed, rounds+1, err)
						}
					}
					if !rt.simOK() {
						t.Fatalf("%s seed %d: simulator did not stabilize in %d rounds", fam.name, seed, rounds)
					}
					simBits, syncBits, asyncBits := rt.bits()
					if simBits != syncBits || simBits != asyncBits {
						t.Fatalf("%s seed %d: bit accounting diverges: sim=%d sync=%d async=%d",
							fam.name, seed, simBits, syncBits, asyncBits)
					}
				}
			}
		})
	}
}

// The stabilization ROUND must also agree between the synchronous runtime's
// Run loop and the async medium's Run loop at ρ = 1 (both check the
// observer between rounds), including the bit totals the run accumulated.
func TestRunLoopEquivalenceAtRhoOne(t *testing.T) {
	for seed := uint64(1); seed <= matrixSeeds; seed++ {
		for _, fam := range matrixFamilies(seed) {
			bee := beeping.NewMIS(fam.g, seed, nil)
			am := async.NewMIS(fam.g, seed, async.NewBounded(1), nil)
			br, bok := bee.Run(5000)
			ar, aok := am.Run(5000)
			if br != ar || bok != aok {
				t.Fatalf("%s seed %d: sync run (%d, %v) vs async run (%d, %v)",
					fam.name, seed, br, bok, ar, aok)
			}
			if bok {
				if err := verify.MIS(fam.g, am.Black); err != nil {
					t.Fatalf("%s seed %d: %v", fam.name, seed, err)
				}
			}
			bee.Close()
		}
	}
}

package async_test

import (
	"testing"

	"ssmis/internal/async"
	"ssmis/internal/beeping"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/noderun"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

// At ρ = 1 every clock runs at the base rate and the asynchronous medium
// must collapse to the synchronous noderun execution coin-for-coin: same
// stabilization round, same colors, same random-bit accounting.
func TestRhoOneCollapsesToSynchronous(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := graph.Gnp(48, 0.08, xrand.New(seed))
		bee := beeping.NewMIS(g, seed, nil)
		a := async.NewMIS(g, seed, async.NewBounded(1), nil)
		beeRounds, beeOK := bee.Run(5000)
		aRounds, aOK := a.Run(5000)
		if beeOK != aOK || beeRounds != aRounds {
			t.Fatalf("seed %d: sync (%d, %v) vs async ρ=1 (%d, %v)", seed, beeRounds, beeOK, aRounds, aOK)
		}
		for u := 0; u < g.N(); u++ {
			if bee.Black(u) != a.Black(u) {
				t.Fatalf("seed %d: colors diverge at %d", seed, u)
			}
		}
		if bee.RandomBits() != a.RandomBits() {
			t.Fatalf("seed %d: bits %d vs %d", seed, bee.RandomBits(), a.RandomBits())
		}
		if sk := a.Engine().MaxSkew(); sk != 0 {
			t.Fatalf("seed %d: lockstep execution reported skew %d", seed, sk)
		}
		bee.Close()
	}
}

// Drifting executions must still stabilize to valid MISes — the paper's
// weak-communication claim under asynchrony — and the engine must observe
// only slot lengths within the drift bound.
func TestDriftedRunsStabilizeToMIS(t *testing.T) {
	for _, rho := range []float64{1.5, 2, 3} {
		for seed := uint64(1); seed <= 3; seed++ {
			g := graph.Gnp(48, 0.08, xrand.New(seed+10))
			limit := 8 * mis.DefaultRoundCap(g.N())

			a2 := async.NewMIS(g, seed, async.NewBounded(rho), nil)
			if _, ok := a2.Run(limit); !ok {
				t.Fatalf("ρ=%g seed %d: 2-state did not stabilize in %d rounds", rho, seed, limit)
			}
			if err := verify.MIS(g, a2.Black); err != nil {
				t.Fatalf("ρ=%g seed %d: 2-state terminal config: %v", rho, seed, err)
			}

			a3 := async.NewThreeStateMIS(g, seed, async.NewBounded(rho), nil)
			if _, ok := a3.Run(limit); !ok {
				t.Fatalf("ρ=%g seed %d: 3-state did not stabilize in %d rounds", rho, seed, limit)
			}
			if err := verify.MIS(g, a3.Black); err != nil {
				t.Fatalf("ρ=%g seed %d: 3-state terminal config: %v", rho, seed, err)
			}

			for _, e := range []*async.Engine{a2.Engine(), a3.Engine()} {
				min, max := e.ObservedSlotLens()
				if min < async.SlotTicks || max > async.MaxSlotTicks(rho) {
					t.Fatalf("ρ=%g seed %d: observed slot lengths [%d, %d] outside [%d, %d]",
						rho, seed, min, max, int64(async.SlotTicks), async.MaxSlotTicks(rho))
				}
			}
		}
	}
}

// Under drift, observer stability is not automatically absorbing: a stale
// beep interval can reactivate a covered vertex right after a naive
// snapshot check. Run therefore confirms stability over a full influence
// horizon — so a configuration it reports as stable must survive further
// execution: stepping well past the horizon may not break the MIS.
func TestDriftedStabilizationIsConfirmed(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		g := graph.Gnp(48, 0.08, xrand.New(seed+40))
		for _, mk := range []func() (func(int) int, func() bool, func(int) bool, *async.Engine){
			func() (func(int) int, func() bool, func(int) bool, *async.Engine) {
				m := async.NewMIS(g, seed, async.NewBounded(2.5), nil)
				return func(max int) int { r, _ := m.Run(max); return r }, m.Stabilized, m.Black, m.Engine()
			},
			func() (func(int) int, func() bool, func(int) bool, *async.Engine) {
				m := async.NewThreeStateMIS(g, seed, async.NewAdversarial(2), nil)
				return func(max int) int { r, _ := m.Run(max); return r }, m.Stabilized, m.Black, m.Engine()
			},
		} {
			run, stabilized, black, eng := mk()
			limit := 8 * mis.DefaultRoundCap(g.N())
			run(limit)
			if !stabilized() {
				t.Fatalf("seed %d: drifted run did not stabilize", seed)
			}
			before := make([]bool, g.N())
			for u := range before {
				before[u] = black(u)
			}
			for r := 0; r < 24; r++ {
				eng.StepRound()
			}
			if !stabilized() {
				t.Fatalf("seed %d: confirmed-stable configuration regressed after %d extra rounds", seed, 24)
			}
			for u := range before {
				if black(u) != before[u] {
					t.Fatalf("seed %d: confirmed-stable projection changed at vertex %d", seed, u)
				}
			}
		}
	}
}

// An execution is a pure function of (graph, seed, drift): a replay must
// agree on every observable, including the clock-side instruments.
func TestDeterministicReplay(t *testing.T) {
	g := graph.Gnp(64, 0.06, xrand.New(9))
	run := func() (*async.MIS, int, bool) {
		m := async.NewMIS(g, 7, async.NewBounded(1.5), nil)
		r, ok := m.Run(5000)
		return m, r, ok
	}
	a, ra, oka := run()
	b, rb, okb := run()
	if ra != rb || oka != okb {
		t.Fatalf("replay diverged: (%d, %v) vs (%d, %v)", ra, oka, rb, okb)
	}
	for u := 0; u < g.N(); u++ {
		if a.Black(u) != b.Black(u) {
			t.Fatalf("replay colors diverge at %d", u)
		}
	}
	if a.RandomBits() != b.RandomBits() {
		t.Fatalf("replay bits diverge: %d vs %d", a.RandomBits(), b.RandomBits())
	}
	ea, eb := a.Engine(), b.Engine()
	amin, amax := ea.ObservedSlotLens()
	bmin, bmax := eb.ObservedSlotLens()
	if ea.Now() != eb.Now() || ea.MaxSkew() != eb.MaxSkew() || amin != bmin || amax != bmax {
		t.Fatalf("replay instruments diverge: now %d/%d skew %d/%d lens [%d,%d]/[%d,%d]",
			ea.Now(), eb.Now(), ea.MaxSkew(), eb.MaxSkew(), amin, amax, bmin, bmax)
	}
}

// The adversarial drift sustains the maximal rate gap: on any graph with an
// even-odd edge the slot-index skew must grow with virtual time, and the
// observed slot lengths must pin both extremes of the bound.
func TestAdversarialDriftSkew(t *testing.T) {
	g := graph.Path(16)
	a := async.NewMIS(g, 3, async.NewAdversarial(2), nil)
	e := a.Engine()
	for r := 0; r < 20; r++ {
		e.StepRound()
	}
	if sk := e.MaxSkew(); sk < 10 {
		t.Fatalf("adversarial ρ=2 skew after 20 rounds = %d, want >= 10", sk)
	}
	min, max := e.ObservedSlotLens()
	if min != async.SlotTicks || max != async.MaxSlotTicks(2) {
		t.Fatalf("observed slot lengths [%d, %d], want [%d, %d]",
			min, max, int64(async.SlotTicks), async.MaxSlotTicks(2))
	}
}

// Eventual synchrony with GST = 0 is lockstep from the start regardless of
// ρ: it must equal the synchronous execution exactly.
func TestEventualSyncGSTZeroIsSynchronous(t *testing.T) {
	g := graph.Gnp(40, 0.1, xrand.New(4))
	bee := beeping.NewMIS(g, 11, nil)
	defer bee.Close()
	a := async.NewMIS(g, 11, async.NewEventualSync(3, 0), nil)
	br, bok := bee.Run(5000)
	ar, aok := a.Run(5000)
	if br != ar || bok != aok {
		t.Fatalf("GST=0 run (%d, %v) differs from sync (%d, %v)", ar, aok, br, bok)
	}
	for u := 0; u < g.N(); u++ {
		if bee.Black(u) != a.Black(u) {
			t.Fatalf("GST=0 colors diverge at %d", u)
		}
	}
}

// A drift model leaving its own bound is a model bug: the engine must
// refuse to run it.
type brokenDrift struct{}

func (brokenDrift) Name() string { return "broken" }
func (brokenDrift) Rho() float64 { return 1.5 }
func (brokenDrift) SlotLen(_, _ int, _ int64, _ *xrand.Rand) int64 {
	return 2 * async.MaxSlotTicks(1.5)
}

func TestDriftBoundEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bound slot length accepted")
		}
	}()
	ps := beeping.NewPrograms(4, 1, nil)
	async.NewEngine(graph.Path(4), ps.Model(), ps.Programs(), brokenDrift{}, 1)
}

func TestConstructorValidation(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("NewBounded(0.5)", func() { async.NewBounded(0.5) })
	expectPanic("NewAdversarial(NaN-ish)", func() { async.NewAdversarial(0) })
	expectPanic("NewEventualSync(-1 gst)", func() { async.NewEventualSync(2, -1) })
	expectPanic("program count mismatch", func() {
		ps := beeping.NewPrograms(3, 1, nil)
		async.NewEngine(graph.Path(4), ps.Model(), ps.Programs(), async.NewBounded(1), 1)
	})
	expectPanic("nil drift", func() {
		ps := beeping.NewPrograms(4, 1, nil)
		async.NewEngine(graph.Path(4), ps.Model(), ps.Programs(), nil, 1)
	})
	expectPanic("bad channel count", func() {
		ps := beeping.NewPrograms(4, 1, nil)
		async.NewEngine(graph.Path(4), noderun.Model{Name: "bad", Channels: 0}, ps.Programs(), async.NewBounded(1), 1)
	})
}

func TestDriftByName(t *testing.T) {
	for _, name := range async.DriftNames() {
		d, err := async.DriftByName(name, 1.5, 8)
		if err != nil || d.Name() != name || d.Rho() != 1.5 {
			t.Fatalf("DriftByName(%q) = %v, %v", name, d, err)
		}
	}
	if _, err := async.DriftByName("nope", 1.5, 0); err == nil {
		t.Fatal("unknown drift name accepted")
	}
	if _, err := async.DriftByName("bounded", 0.5, 0); err == nil {
		t.Fatal("ρ < 1 accepted")
	}
	if _, err := async.DriftByName("bounded", 1e15, 0); err == nil {
		t.Fatal("ρ past MaxRho accepted (would overflow the slot bound)")
	}
	if _, err := async.DriftByName("eventual-sync", 1.5, -3); err == nil {
		t.Fatal("negative GST accepted")
	}
}

package async

import (
	"fmt"
	"math"

	"ssmis/internal/xrand"
)

// SlotTicks is the base (fastest legal) slot length in clock ticks. Every
// drift model must produce slot lengths in [SlotTicks, MaxSlotTicks(ρ)];
// the engine enforces the bound and panics on violations, the way noderun
// panics on alphabet violations — a drift implementation outside its own
// bound is a model bug, not a runtime condition.
const SlotTicks = 1 << 16

// MaxRho is the largest accepted drift bound. Beyond it ρ·SlotTicks would
// approach int64 overflow territory, and no experiment needs clocks a
// million times apart — reject loudly instead of panicking on a nonsense
// slot bound.
const MaxRho = 1 << 20

// MaxSlotTicks returns the longest slot length the drift bound ρ permits.
func MaxSlotTicks(rho float64) int64 {
	return int64(math.Round(checkRho(rho) * float64(SlotTicks)))
}

// Drift is a per-node clock model: it decides how long each local slot
// lasts, within the bound ρ = (longest slot)/(shortest slot).
type Drift interface {
	// Name identifies the model for reports and flags.
	Name() string
	// Rho returns the drift bound ρ >= 1; ρ = 1 forces every slot to the
	// base length, collapsing the medium to lockstep synchrony.
	Rho() float64
	// SlotLen returns the tick length of node u's slot k starting at tick
	// start, drawing any randomness from clock — the node's dedicated clock
	// stream, disjoint from the protocol's coin streams, so clock noise
	// never perturbs the protocol's coins.
	SlotLen(u, k int, start int64, clock *xrand.Rand) int64
}

// checkRho validates a drift bound; NaN, values below 1 and values above
// MaxRho fail.
func checkRho(rho float64) float64 {
	if !(rho >= 1 && rho <= MaxRho) {
		panic(fmt.Sprintf("async: drift bound ρ = %v outside [1, %d]", rho, int64(MaxRho)))
	}
	return rho
}

// Bounded is the bounded-drift model: every slot length is drawn
// independently and uniformly from [SlotTicks, MaxSlotTicks(ρ)].
type Bounded struct {
	rho float64
}

// NewBounded returns the bounded-drift model with bound rho; rho < 1 (or
// NaN) panics.
func NewBounded(rho float64) Bounded { return Bounded{rho: checkRho(rho)} }

// Name implements Drift.
func (Bounded) Name() string { return "bounded" }

// Rho implements Drift.
func (d Bounded) Rho() float64 { return d.rho }

// SlotLen implements Drift.
func (d Bounded) SlotLen(_, _ int, _ int64, clock *xrand.Rand) int64 {
	span := MaxSlotTicks(d.rho) - SlotTicks
	return SlotTicks + int64(clock.Uint64n(uint64(span)+1))
}

// EventualSync is the GST-style eventual-synchrony model: slots starting
// before the global stabilization time (gst base slots) have arbitrary
// lengths within the bound, and slots starting at or after it run at
// exactly the base rate — clock RATES synchronize after GST, but phases
// stay offset, which is precisely what eventual synchrony promises.
type EventualSync struct {
	rho float64
	gst int
}

// NewEventualSync returns the eventual-synchrony model: drift within rho
// until gstSlots base-slot ticks of virtual time have passed, lockstep
// rates afterwards. gstSlots < 0 panics.
func NewEventualSync(rho float64, gstSlots int) EventualSync {
	if gstSlots < 0 {
		panic(fmt.Sprintf("async: GST %d base slots is negative", gstSlots))
	}
	return EventualSync{rho: checkRho(rho), gst: gstSlots}
}

// Name implements Drift.
func (EventualSync) Name() string { return "eventual-sync" }

// Rho implements Drift.
func (d EventualSync) Rho() float64 { return d.rho }

// GST returns the stabilization time in base slots.
func (d EventualSync) GST() int { return d.gst }

// SlotLen implements Drift.
func (d EventualSync) SlotLen(_, _ int, start int64, clock *xrand.Rand) int64 {
	if start >= int64(d.gst)*SlotTicks {
		return SlotTicks
	}
	span := MaxSlotTicks(d.rho) - SlotTicks
	return SlotTicks + int64(clock.Uint64n(uint64(span)+1))
}

// Adversarial is the deterministic worst case within ρ: even-indexed nodes
// always run their fastest slots and odd-indexed nodes always their
// slowest, so adjacent clocks sustain the maximum rate gap the bound allows
// for the whole execution (a randomly drifting clock only strays this far
// transiently).
type Adversarial struct {
	rho float64
}

// NewAdversarial returns the adversarial-within-ρ model; rho < 1 panics.
func NewAdversarial(rho float64) Adversarial { return Adversarial{rho: checkRho(rho)} }

// Name implements Drift.
func (Adversarial) Name() string { return "adversarial" }

// Rho implements Drift.
func (d Adversarial) Rho() float64 { return d.rho }

// SlotLen implements Drift.
func (d Adversarial) SlotLen(u, _ int, _ int64, _ *xrand.Rand) int64 {
	if u%2 == 0 {
		return SlotTicks
	}
	return MaxSlotTicks(d.rho)
}

// DriftNames lists the selectable drift models in presentation order.
func DriftNames() []string {
	return []string{"bounded", "eventual-sync", "adversarial"}
}

// DriftByName returns a drift model by name. gstSlots applies only to
// eventual-sync.
func DriftByName(name string, rho float64, gstSlots int) (Drift, error) {
	if !(rho >= 1 && rho <= MaxRho) {
		return nil, fmt.Errorf("async: drift bound ρ = %v outside [1, %d]", rho, int64(MaxRho))
	}
	switch name {
	case "bounded":
		return NewBounded(rho), nil
	case "eventual-sync":
		if gstSlots < 0 {
			return nil, fmt.Errorf("async: GST %d base slots is negative", gstSlots)
		}
		return NewEventualSync(rho, gstSlots), nil
	case "adversarial":
		return NewAdversarial(rho), nil
	default:
		return nil, fmt.Errorf("async: unknown drift model %q", name)
	}
}

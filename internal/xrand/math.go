package xrand

import "math"

// logFloat is a thin wrapper over math.Log, isolated so the package's single
// dependency on package math is visible in one place.
func logFloat(x float64) float64 { return math.Log(x) }

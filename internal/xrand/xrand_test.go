package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs in 100 draws", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after Reseed, output %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestSplitIndependentOfParentPosition(t *testing.T) {
	a := New(99)
	b := New(99)
	// Advance b; Split must not depend on how many values were drawn.
	for i := 0; i < 57; i++ {
		b.Uint64()
	}
	ca := a.Split(12)
	cb := b.Split(12)
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatal("Split depends on parent stream position")
		}
	}
}

func TestSplitStreamsDiffer(t *testing.T) {
	r := New(5)
	c0 := r.Split(0)
	c1 := r.Split(1)
	collisions := 0
	for i := 0; i < 200; i++ {
		if c0.Uint64() == c1.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("split streams 0 and 1 collided %d/200 times", collisions)
	}
}

func TestSplitDiffersAcrossSeeds(t *testing.T) {
	c1 := New(1).Split(3)
	c2 := New(2).Split(3)
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("children of different masters coincide")
	}
}

func TestBitIsFair(t *testing.T) {
	r := New(2024)
	const n = 200000
	ones := 0
	for i := 0; i < n; i++ {
		if r.Bit() {
			ones++
		}
	}
	mean := float64(ones) / n
	// 6 sigma for a fair coin: 0.5 ± 6*0.5/sqrt(n) ≈ ±0.0067.
	if math.Abs(mean-0.5) > 0.0067 {
		t.Fatalf("Bit() frequency %.4f deviates from 0.5", mean)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	cfg := &quick.Config{MaxCount: 2000}
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniformSmall(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("value %d drawn %d times, want ≈ %.0f", v, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(8)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBernoulliEdgeCases(t *testing.T) {
	r := New(4)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(6)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	mean := float64(hits) / n
	if math.Abs(mean-p) > 6*math.Sqrt(p*(1-p)/n) {
		t.Fatalf("Bernoulli(%.1f) frequency %.4f", p, mean)
	}
}

func TestBernoulliPow2(t *testing.T) {
	r := New(13)
	// k = 0 is always true.
	for i := 0; i < 10; i++ {
		if !r.BernoulliPow2(0) {
			t.Fatal("BernoulliPow2(0) returned false")
		}
	}
	// k = 3: probability 1/8.
	const n = 160000
	hits := 0
	for i := 0; i < n; i++ {
		if r.BernoulliPow2(3) {
			hits++
		}
	}
	p := 1.0 / 8
	mean := float64(hits) / n
	if math.Abs(mean-p) > 6*math.Sqrt(p*(1-p)/n) {
		t.Fatalf("BernoulliPow2(3) frequency %.5f, want ≈ %.5f", mean, p)
	}
	// Very large k: astronomically unlikely; must return false and not hang.
	for i := 0; i < 4; i++ {
		if r.BernoulliPow2(130) {
			t.Fatal("BernoulliPow2(130) returned true")
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(17)
	const p, n = 0.2, 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / n
	want := (1 - p) / p // 4.0
	if math.Abs(mean-want) > 0.15 {
		t.Fatalf("Geometric(%.1f) mean %.3f, want ≈ %.3f", p, mean, want)
	}
}

func TestGeometricOne(t *testing.T) {
	r := New(18)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
	}
}

func TestGeometricTinyPClamped(t *testing.T) {
	r := New(19)
	for i := 0; i < 50; i++ {
		g := r.Geometric(1e-300)
		if g < 0 {
			t.Fatalf("Geometric(1e-300) = %d overflowed negative", g)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	New(1).Geometric(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	for _, n := range []int{0, 1, 2, 5, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(22)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("Perm first element %d frequency %d, want ≈ %.0f", v, c, want)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(30)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1.0) > 0.03 {
		t.Fatalf("ExpFloat64 mean %.4f, want ≈ 1", mean)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := New(42)
	for i := 0; i < 100; i++ {
		r.Uint64() // advance mid-stream
	}
	blob, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := New(0)
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if r.Uint64() != restored.Uint64() {
			t.Fatalf("restored stream diverged at %d", i)
		}
	}
	// Split must also be preserved (it derives from the stored seed).
	a, b := r.Split(7), restored.Split(7)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("restored Split diverged")
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	r := New(1)
	if err := r.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("short blob accepted")
	}
	if err := r.UnmarshalBinary(make([]byte, 40)); err == nil {
		t.Fatal("all-zero state accepted")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkBit(b *testing.B) {
	r := New(1)
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = r.Bit()
	}
	_ = sink
}

func BenchmarkSplit(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Split(uint64(i))
	}
}

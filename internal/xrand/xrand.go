// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator used throughout the ssmis module.
//
// The processes in the paper flip an independent fair coin φ_t(u) for every
// vertex u in every round t. To make whole experiments reproducible from a
// single seed — and to make the array-based simulator and the goroutine
// runtime draw *exactly* the same coins — we need per-vertex generator
// streams derived deterministically from a master seed. The standard library
// generator is neither splittable nor guaranteed stable across Go releases,
// so we implement xoshiro256++ seeded via splitmix64, following the reference
// algorithms of Blackman and Vigna.
package xrand

import "math/bits"

// Rand is a xoshiro256++ pseudo-random number generator. It is NOT safe for
// concurrent use; use Split to derive independent streams for concurrent
// consumers.
type Rand struct {
	s [4]uint64
	// seed is the value this generator was created from; Split derives child
	// streams from it so that splitting is independent of how far the parent
	// stream has advanced.
	seed uint64
}

// splitmix64 advances the given state and returns the next output. It is used
// both for seeding xoshiro state and for deriving split streams, as
// recommended by the xoshiro authors.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically seeded from seed. Distinct seeds
// yield (with overwhelming probability) uncorrelated streams.
func New(seed uint64) *Rand {
	var r Rand
	r.Reseed(seed)
	return &r
}

// Reseed resets the generator to the state derived from seed, as if freshly
// created by New(seed).
func (r *Rand) Reseed(seed uint64) {
	r.seed = seed
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not be seeded with the all-zero state. splitmix64 maps at
	// most one seed to each output, so four consecutive zero outputs cannot
	// happen, but guard anyway to keep the invariant locally obvious.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Split returns a new generator whose stream is a deterministic function of
// the parent's seed material and the given index, independent of how many
// values the parent has produced. It does not advance the parent. Use it to
// derive per-vertex streams: stream i of a master generator is always the
// same for the same master seed.
func (r *Rand) Split(index uint64) *Rand {
	child := new(Rand)
	r.SplitInto(child, index)
	return child
}

// SplitInto reseeds dst to the exact stream Split(index) would return,
// without allocating. Batch workers use it to re-derive per-vertex streams
// into a reusable backing array, so a run costs zero generator allocations.
func (r *Rand) SplitInto(dst *Rand, index uint64) {
	sm := r.seed ^ bits.RotateLeft64(0xd1b54a32d192ed03*(index+1), 17)
	dst.Reseed(splitmix64(&sm))
}

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Bit returns a single fair random bit. This is the coin φ_t(u) of the paper:
// each call costs the process exactly one random bit.
func (r *Rand) Bit() bool {
	return r.Uint64()>>63 == 1
}

// Bool is an alias for Bit, provided for call-site readability.
func (r *Rand) Bool() bool { return r.Bit() }

// Uint64n returns a uniformly random integer in [0, n). It panics if n == 0.
// It uses Lemire's multiply-shift rejection method.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// BernoulliPow2 returns true with probability 2^-k, consuming k random bits
// in expectation O(1) words. The randomized logarithmic switch uses ζ = 2^-7,
// and the paper counts random bits per round, so we provide the exact
// dyadic coin rather than a float comparison.
func (r *Rand) BernoulliPow2(k uint) bool {
	for k > 64 {
		if r.Uint64() != 0 {
			return false
		}
		k -= 64
	}
	if k == 0 {
		return true
	}
	return r.Uint64()>>(64-k) == 0
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials, i.e. a sample from Geometric(p) with support {0,1,...}.
// It panics if p <= 0 or p > 1. For small p this is used by the G(n,p)
// generator to skip non-edges in O(#edges) total time.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	// Inverse-CDF sampling: floor(log(U) / log(1-p)) with U in (0,1].
	u := 1.0 - r.Float64() // (0, 1]
	f := logFloat(u) / logFloat(1.0-p)
	// For minuscule p, 1-p rounds to 1 and the division degenerates (±Inf
	// or NaN), and even finite skip distances can exceed the int range.
	// Clamp to a huge positive skip — callers compare against an index
	// bound, so "effectively never" is the correct semantics.
	const maxSkip = 1 << 62
	if !(f >= 0 && f < maxSkip) { // catches NaN, ±Inf and overflow
		return maxSkip
	}
	return int(f)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (r *Rand) ExpFloat64() float64 {
	return -logFloat(1.0 - r.Float64())
}

package xrand

import (
	"encoding/binary"
	"fmt"
)

// marshaledSize is the serialized size of a Rand: four state words plus the
// seed, little-endian.
const marshaledSize = 5 * 8

// MarshalBinary implements encoding.BinaryMarshaler: the generator's full
// state (including the seed material Split derives children from), so a
// restored generator continues the stream exactly and splits identically.
func (r *Rand) MarshalBinary() ([]byte, error) {
	buf := make([]byte, marshaledSize)
	for i, w := range r.s {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
	binary.LittleEndian.PutUint64(buf[4*8:], r.seed)
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (r *Rand) UnmarshalBinary(data []byte) error {
	if len(data) != marshaledSize {
		return fmt.Errorf("xrand: unmarshal %d bytes, want %d", len(data), marshaledSize)
	}
	for i := range r.s {
		r.s[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	r.seed = binary.LittleEndian.Uint64(data[4*8:])
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		return fmt.Errorf("xrand: unmarshal all-zero state")
	}
	return nil
}

package scenario

// The fluent builder: Go callers assemble a scenario without writing JSON.
// Methods chain and never fail mid-stream — construction problems accumulate
// and Build() reports every one at once alongside the full cross-axis
// validation, so a caller fixes a whole mis-declared scenario in one round
// trip instead of whack-a-mole. (The accumulate-then-Build shape follows the
// workflow-graph builders this layer's design borrows from.)

import "fmt"

// Builder assembles a Scenario fluently.
type Builder struct {
	s    Scenario
	errs []string
}

// New starts a scenario with the given name (the compiled experiment's ID).
func New(name string) *Builder {
	return &Builder{s: Scenario{Name: name}}
}

// Title sets the compiled experiment's title line.
func (b *Builder) Title(t string) *Builder { b.s.Title = t; return b }

// Claim sets the compiled experiment's claim line.
func (b *Builder) Claim(c string) *Builder { b.s.Claim = c; return b }

// Errors returns the construction errors accumulated so far (Build adds the
// validation issues on top).
func (b *Builder) Errors() []string { return append([]string(nil), b.errs...) }

// Build assembles the scenario and validates it, returning every
// construction and validation issue in one *ValidationError.
func (b *Builder) Build() (*Scenario, error) {
	issues := append([]string(nil), b.errs...)
	if err := b.s.Validate(); err != nil {
		issues = append(issues, err.(*ValidationError).Issues...)
	}
	if len(issues) > 0 {
		return nil, &ValidationError{Issues: issues}
	}
	s := b.s
	return &s, nil
}

// Params is the parameter-binding literal for Graph calls.
type Params map[string]float64

// Scaling appends a scaling unit and returns its sub-builder.
func (b *Builder) Scaling(title string) *ScalingBuilder {
	u := &ScalingUnit{Type: "scaling", Title: title}
	b.s.Units = append(b.s.Units, Unit{Scaling: u})
	return &ScalingBuilder{b: b, u: u}
}

// ScalingBuilder configures one scaling unit.
type ScalingBuilder struct {
	b *Builder
	u *ScalingUnit
}

// Process selects the process kind ("2-state", "3-state", "3-color").
func (sb *ScalingBuilder) Process(kind string) *ScalingBuilder {
	sb.u.Process = kind
	return sb
}

// Graph selects the graph family and binds its parameters (nil for none).
func (sb *ScalingBuilder) Graph(family string, params Params) *ScalingBuilder {
	sb.u.Graph = GraphSpec{Family: family, Params: params}
	return sb
}

// Sizes sets the size ladder.
func (sb *ScalingBuilder) Sizes(sizes ...int) *ScalingBuilder {
	sb.u.Sizes = sizes
	return sb
}

// Trials sets the scale-1 trial count.
func (sb *ScalingBuilder) Trials(t int) *ScalingBuilder { sb.u.Trials = t; return sb }

// RoundCap bounds each run (0 = the runtime's default).
func (sb *ScalingBuilder) RoundCap(c int) *ScalingBuilder { sb.u.RoundCap = c; return sb }

// SeedOffset shifts the cell master seeds.
func (sb *ScalingBuilder) SeedOffset(o uint64) *ScalingBuilder { sb.u.SeedOffset = o; return sb }

// Runtime selects a driftless medium: "sync", "beeping" or "stone-age".
// Async needs a drift model — use AsyncBounded/AsyncEventualSync/
// AsyncAdversarial, which this method rejects by name to keep the
// constraint loud at construction time.
func (sb *ScalingBuilder) Runtime(kind string) *ScalingBuilder {
	if kind == "async" {
		sb.b.errs = append(sb.b.errs,
			fmt.Sprintf("scaling %q: Runtime(\"async\") needs a drift model; use AsyncBounded, AsyncEventualSync or AsyncAdversarial", sb.u.Title))
		return sb
	}
	sb.u.Runtime = &RuntimeSpec{Kind: kind}
	return sb
}

// AsyncBounded selects the async runtime under the bounded-drift model.
func (sb *ScalingBuilder) AsyncBounded(rho float64) *ScalingBuilder {
	sb.u.Runtime = &RuntimeSpec{Kind: "async", Drift: &DriftSpec{Model: "bounded", Rho: rho}}
	return sb
}

// AsyncEventualSync selects the async runtime under the eventual-sync model.
func (sb *ScalingBuilder) AsyncEventualSync(rho float64, gstSlots int) *ScalingBuilder {
	sb.u.Runtime = &RuntimeSpec{Kind: "async", Drift: &DriftSpec{Model: "eventual-sync", Rho: rho, GST: gstSlots}}
	return sb
}

// AsyncAdversarial selects the async runtime under the adversarial model.
func (sb *ScalingBuilder) AsyncAdversarial(rho float64) *ScalingBuilder {
	sb.u.Runtime = &RuntimeSpec{Kind: "async", Drift: &DriftSpec{Model: "adversarial", Rho: rho}}
	return sb
}

// Metrics selects the reported metrics (must include "rounds").
func (sb *ScalingBuilder) Metrics(names ...string) *ScalingBuilder {
	sb.u.Metrics = names
	return sb
}

// ClaimNotes appends verbatim table notes.
func (sb *ScalingBuilder) ClaimNotes(notes ...string) *ScalingBuilder {
	sb.u.ClaimNotes = append(sb.u.ClaimNotes, notes...)
	return sb
}

// PolylogFit appends the T ≈ c·ln^k n fit note over the per-size means.
func (sb *ScalingBuilder) PolylogFit() *ScalingBuilder {
	sb.u.PolylogNote = true
	return sb
}

// MaxFit appends the per-size-maxima fit note (one %.2f-style verb).
func (sb *ScalingBuilder) MaxFit(noteFormat string) *ScalingBuilder {
	sb.u.MaxFitNote = noteFormat
	return sb
}

// Tail adds the geometric-tail table over the largest ladder size.
func (sb *ScalingBuilder) Tail(title string, kMax int) *ScalingBuilder {
	sb.u.Tail = &TailSpec{Title: title, KMax: kMax}
	return sb
}

// Scenario returns to the parent builder (chaining sugar; the sub-builder
// mutates the parent in place either way).
func (sb *ScalingBuilder) Scenario() *Builder { return sb.b }

// DaemonMatrix appends a daemon-matrix unit and returns its sub-builder.
// The title may use the {n} and {trials} placeholders.
func (b *Builder) DaemonMatrix(title string) *DaemonMatrixBuilder {
	u := &DaemonMatrixUnit{Type: "daemon-matrix", Title: title}
	b.s.Units = append(b.s.Units, Unit{DaemonMatrix: u})
	return &DaemonMatrixBuilder{b: b, u: u}
}

// DaemonMatrixBuilder configures one daemon-matrix unit.
type DaemonMatrixBuilder struct {
	b *Builder
	u *DaemonMatrixUnit
}

// Processes selects the parallel randomized processes to schedule.
func (db *DaemonMatrixBuilder) Processes(kinds ...string) *DaemonMatrixBuilder {
	db.u.Processes = kinds
	return db
}

// Graph selects the graph family and binds its parameters.
func (db *DaemonMatrixBuilder) Graph(family string, params Params) *DaemonMatrixBuilder {
	db.u.Graph = GraphSpec{Family: family, Params: params}
	return db
}

// N sets the scale-dependent problem size.
func (db *DaemonMatrixBuilder) N(base, min int) *DaemonMatrixBuilder {
	db.u.N = SizeSpec{Base: base, Min: min}
	return db
}

// Trials sets the scale-1 per-row trial count.
func (db *DaemonMatrixBuilder) Trials(t int) *DaemonMatrixBuilder { db.u.Trials = t; return db }

// Daemons restricts the daemon schedules (default: every registered daemon).
func (db *DaemonMatrixBuilder) Daemons(names ...string) *DaemonMatrixBuilder {
	db.u.Daemons = names
	return db
}

// SeedOffset shifts the parallel rows' master seed.
func (db *DaemonMatrixBuilder) SeedOffset(o uint64) *DaemonMatrixBuilder {
	db.u.SeedOffset = o
	return db
}

// Sequential adds the sequential [28, 20]/[28, 31] baseline rows with their
// own seed offset.
func (db *DaemonMatrixBuilder) Sequential(seqSeedOffset uint64) *DaemonMatrixBuilder {
	db.u.Sequential = true
	db.u.SeqSeedOffset = seqSeedOffset
	return db
}

// Notes appends verbatim table notes.
func (db *DaemonMatrixBuilder) Notes(notes ...string) *DaemonMatrixBuilder {
	db.u.Notes = append(db.u.Notes, notes...)
	return db
}

// Scenario returns to the parent builder.
func (db *DaemonMatrixBuilder) Scenario() *Builder { return db.b }

// Fault appends a fault unit and returns its sub-builder. The title may use
// the {n} and {k} placeholders.
func (b *Builder) Fault(title string) *FaultBuilder {
	u := &FaultUnit{Type: "fault", Title: title}
	b.s.Units = append(b.s.Units, Unit{Fault: u})
	return &FaultBuilder{b: b, u: u}
}

// FaultBuilder configures one fault unit.
type FaultBuilder struct {
	b *Builder
	u *FaultUnit
}

// Processes selects the processes to attack.
func (fb *FaultBuilder) Processes(kinds ...string) *FaultBuilder {
	fb.u.Processes = kinds
	return fb
}

// Graph selects the graph family and binds its parameters.
func (fb *FaultBuilder) Graph(family string, params Params) *FaultBuilder {
	fb.u.Graph = GraphSpec{Family: family, Params: params}
	return fb
}

// N sets the scale-dependent problem size.
func (fb *FaultBuilder) N(base, min int) *FaultBuilder {
	fb.u.N = SizeSpec{Base: base, Min: min}
	return fb
}

// CorruptFraction sizes the attack: k = max(1, fraction·n).
func (fb *FaultBuilder) CorruptFraction(f float64) *FaultBuilder {
	fb.u.CorruptFraction = f
	return fb
}

// Trials sets the scale-1 per-row trial count.
func (fb *FaultBuilder) Trials(t int) *FaultBuilder { fb.u.Trials = t; return fb }

// Adversaries restricts the corruption adversaries (default: all).
func (fb *FaultBuilder) Adversaries(names ...string) *FaultBuilder {
	fb.u.Adversaries = names
	return fb
}

// SeedOffset shifts the cell master seeds.
func (fb *FaultBuilder) SeedOffset(o uint64) *FaultBuilder { fb.u.SeedOffset = o; return fb }

// Notes appends verbatim table notes.
func (fb *FaultBuilder) Notes(notes ...string) *FaultBuilder {
	fb.u.Notes = append(fb.u.Notes, notes...)
	return fb
}

// Scenario returns to the parent builder.
func (fb *FaultBuilder) Scenario() *Builder { return fb.b }

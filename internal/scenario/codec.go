package scenario

// The versioned JSON codec, mirroring internal/snapshot's loud-rejection
// style: a scenario file carries an explicit format version, unknown fields
// and unknown unit types are REJECTED (not skipped), trailing data is
// rejected, and every decode ends in Validate — a file that decodes is a
// file that compiles. Silently accepting a typo'd axis name and running the
// wrong measurement is this layer's one forbidden failure mode.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
)

// Version is the scenario file format version. Decode accepts exactly this
// version: there is no migration path, matching the snapshot codec — a
// scenario is cheap to rewrite against a new vocabulary, and a silent
// best-effort read could run the wrong cells.
const Version = 1

var (
	// ErrVersion marks a scenario file from a different format version (or
	// one missing the version field entirely).
	ErrVersion = errors.New("scenario: format version mismatch")
	// ErrSyntax marks malformed scenario JSON: bad syntax, unknown fields,
	// unknown unit types, wrong value types, or trailing data.
	ErrSyntax = errors.New("scenario: malformed document")
)

// fileDoc is the top-level wire shape; units stay raw for the two-pass
// tagged-union decode.
type fileDoc struct {
	Version int               `json:"scenario"`
	Name    string            `json:"name"`
	Title   string            `json:"title,omitempty"`
	Claim   string            `json:"claim,omitempty"`
	Units   []json.RawMessage `json:"units"`
}

// Decode parses and validates a scenario document. Errors are typed:
// ErrVersion for version skew, ErrSyntax for structural damage, and
// *ValidationError for a well-formed document naming invalid axes.
func Decode(data []byte) (*Scenario, error) {
	var doc fileDoc
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSyntax, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after the scenario object", ErrSyntax)
	}
	if doc.Version != Version {
		return nil, fmt.Errorf("%w: file says %d, this build reads %d", ErrVersion, doc.Version, Version)
	}
	s := &Scenario{Name: doc.Name, Title: doc.Title, Claim: doc.Claim}
	for i, raw := range doc.Units {
		u, err := decodeUnit(raw)
		if err != nil {
			return nil, fmt.Errorf("unit %d: %w", i, err)
		}
		s.Units = append(s.Units, u)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// decodeUnit resolves the "type" tag, then strict-decodes the whole object
// against that unit type's shape — so a daemon-matrix field on a scaling
// unit is an unknown-field error, not silently dropped.
func decodeUnit(raw json.RawMessage) (Unit, error) {
	var head struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(raw, &head); err != nil {
		return Unit{}, fmt.Errorf("%w: %v", ErrSyntax, err)
	}
	strict := func(v any) error {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(v); err != nil {
			return fmt.Errorf("%w: %s unit: %v", ErrSyntax, head.Type, err)
		}
		return nil
	}
	switch head.Type {
	case "scaling":
		u := &ScalingUnit{}
		if err := strict(u); err != nil {
			return Unit{}, err
		}
		return Unit{Scaling: u}, nil
	case "daemon-matrix":
		u := &DaemonMatrixUnit{}
		if err := strict(u); err != nil {
			return Unit{}, err
		}
		return Unit{DaemonMatrix: u}, nil
	case "fault":
		u := &FaultUnit{}
		if err := strict(u); err != nil {
			return Unit{}, err
		}
		return Unit{Fault: u}, nil
	default:
		return Unit{}, fmt.Errorf("%w: unknown unit type %q (valid: %s)",
			ErrSyntax, head.Type, strings.Join(UnitTypeNames(), ", "))
	}
}

// Encode validates and serializes the scenario as indented canonical JSON
// (map keys sorted by encoding/json); Decode(Encode(s)) plans identically
// to s.
func Encode(s *Scenario) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	doc := fileDoc{Version: Version, Name: s.Name, Title: s.Title, Claim: s.Claim}
	for i, u := range s.Units {
		raw, err := encodeUnit(u)
		if err != nil {
			return nil, fmt.Errorf("scenario: encode unit %d: %w", i, err)
		}
		doc.Units = append(doc.Units, raw)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode: %w", err)
	}
	return append(data, '\n'), nil
}

// encodeUnit serializes the populated member with its type tag pinned.
func encodeUnit(u Unit) (json.RawMessage, error) {
	switch {
	case u.Scaling != nil:
		v := *u.Scaling
		v.Type = "scaling"
		return json.MarshalIndent(v, "    ", "  ")
	case u.DaemonMatrix != nil:
		v := *u.DaemonMatrix
		v.Type = "daemon-matrix"
		return json.MarshalIndent(v, "    ", "  ")
	case u.Fault != nil:
		v := *u.Fault
		v.Type = "fault"
		return json.MarshalIndent(v, "    ", "  ")
	default:
		return nil, errors.New("empty unit")
	}
}

// Load reads and decodes one scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

package scenario

import (
	"errors"
	"strings"
	"testing"

	"ssmis/internal/async"
	"ssmis/internal/batch"
	"ssmis/internal/experiment"
)

// validScenario is a minimal well-formed scenario used as the mutation base.
func validScenario() *Scenario {
	return mustBuild(New("smoke").
		Scaling("smoke: 2-state on cycles").
		Process("2-state").
		Graph("cycle", nil).
		Sizes(64, 128).
		Trials(6).
		Scenario())
}

func wantIssue(t *testing.T, err error, substr string) {
	t.Helper()
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("want *ValidationError containing %q, got %v", substr, err)
	}
	for _, is := range ve.Issues {
		if strings.Contains(is, substr) {
			return
		}
	}
	t.Errorf("no issue contains %q; issues:\n  %s", substr, strings.Join(ve.Issues, "\n  "))
}

func TestValidateCrossAxis(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(s *Scenario)
		want   string
	}{
		{"empty name", func(s *Scenario) { s.Name = "" }, "name"},
		{"bad name chars", func(s *Scenario) { s.Name = "has space" }, "name"},
		{"no units", func(s *Scenario) { s.Units = nil }, "at least one unit"},
		{"unknown family", func(s *Scenario) { s.Units[0].Scaling.Graph.Family = "petersen" }, "unknown graph family"},
		{"unknown param", func(s *Scenario) { s.Units[0].Scaling.Graph.Params = Params{"q": 1} }, "unknown parameter"},
		{"missing required param", func(s *Scenario) { s.Units[0].Scaling.Graph.Family = "gnp" }, `parameter "p" is required`},
		{"unknown process", func(s *Scenario) { s.Units[0].Scaling.Process = "4-state" }, "process"},
		{"no sizes", func(s *Scenario) { s.Units[0].Scaling.Sizes = nil }, "size"},
		{"bad size", func(s *Scenario) { s.Units[0].Scaling.Sizes = []int{0} }, "size"},
		{"no trials", func(s *Scenario) { s.Units[0].Scaling.Trials = 0 }, "trials"},
		{"negative round cap", func(s *Scenario) { s.Units[0].Scaling.RoundCap = -1 }, "round-cap"},
		{"unknown runtime", func(s *Scenario) { s.Units[0].Scaling.Runtime = &RuntimeSpec{Kind: "quantum"} }, "unknown runtime"},
		{"beeping 3-state", func(s *Scenario) {
			s.Units[0].Scaling.Process = "3-state"
			s.Units[0].Scaling.Runtime = &RuntimeSpec{Kind: "beeping"}
		}, "beeping"},
		{"stone-age 2-state", func(s *Scenario) {
			s.Units[0].Scaling.Runtime = &RuntimeSpec{Kind: "stone-age"}
		}, "stone-age"},
		{"async without drift", func(s *Scenario) {
			s.Units[0].Scaling.Runtime = &RuntimeSpec{Kind: "async"}
		}, "drift"},
		{"drift without async", func(s *Scenario) {
			s.Units[0].Scaling.Runtime = &RuntimeSpec{Kind: "beeping", Drift: &DriftSpec{Model: "bounded", Rho: 2}}
		}, "async"},
		{"unknown drift model", func(s *Scenario) {
			s.Units[0].Scaling.Runtime = &RuntimeSpec{Kind: "async", Drift: &DriftSpec{Model: "chaotic", Rho: 2}}
		}, "drift model"},
		{"rho below 1", func(s *Scenario) {
			s.Units[0].Scaling.Runtime = &RuntimeSpec{Kind: "async", Drift: &DriftSpec{Model: "bounded", Rho: 0.5}}
		}, "rho"},
		{"rho above max", func(s *Scenario) {
			s.Units[0].Scaling.Runtime = &RuntimeSpec{Kind: "async", Drift: &DriftSpec{Model: "bounded", Rho: float64(async.MaxRho) * 2}}
		}, "rho"},
		{"gst on bounded", func(s *Scenario) {
			s.Units[0].Scaling.Runtime = &RuntimeSpec{Kind: "async", Drift: &DriftSpec{Model: "bounded", Rho: 2, GST: 8}}
		}, "gst"},
		{"tail off sync", func(s *Scenario) {
			s.Units[0].Scaling.Runtime = &RuntimeSpec{Kind: "beeping"}
			s.Units[0].Scaling.Tail = &TailSpec{Title: "t", KMax: 4}
		}, "tail"},
		{"unknown metric", func(s *Scenario) { s.Units[0].Scaling.Metrics = []string{"rounds", "latency"} }, "metric"},
		{"metrics without rounds", func(s *Scenario) { s.Units[0].Scaling.Metrics = []string{"local-times"} }, "rounds"},
		{"local-times off sync", func(s *Scenario) {
			s.Units[0].Scaling.Runtime = &RuntimeSpec{Kind: "beeping"}
			s.Units[0].Scaling.Metrics = []string{"rounds", "local-times"}
		}, "local-times"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validScenario()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("mutation accepted")
			}
			wantIssue(t, err, tc.want)
		})
	}
}

func TestValidateMatrixUnits(t *testing.T) {
	dm := func(mutate func(u *DaemonMatrixUnit)) error {
		b := New("m")
		db := b.DaemonMatrix("m: n={n}, {trials} trials").
			Processes("2-state").
			Graph("gnp-avg", Params{"avgdeg": 8}).
			N(256, 64).
			Trials(5)
		mutate(db.u)
		_, err := b.Build()
		return err
	}
	if err := dm(func(u *DaemonMatrixUnit) {}); err != nil {
		t.Fatalf("valid daemon matrix rejected: %v", err)
	}
	wantIssue(t, dm(func(u *DaemonMatrixUnit) { u.Processes = []string{"3-color"} }), "3-color")
	wantIssue(t, dm(func(u *DaemonMatrixUnit) { u.Daemons = []string{"lazy"} }), "daemon")
	wantIssue(t, dm(func(u *DaemonMatrixUnit) { u.N = SizeSpec{Base: 0, Min: 0} }), "n")

	fu := func(mutate func(u *FaultUnit)) error {
		b := New("f")
		fb := b.Fault("f: n={n}, k={k}").
			Processes("2-state", "3-state").
			Graph("gnp-avg", Params{"avgdeg": 8}).
			N(256, 64).
			CorruptFraction(0.1).
			Trials(5)
		mutate(fb.u)
		_, err := b.Build()
		return err
	}
	if err := fu(func(u *FaultUnit) {}); err != nil {
		t.Fatalf("valid fault unit rejected: %v", err)
	}
	wantIssue(t, fu(func(u *FaultUnit) { u.CorruptFraction = 0 }), "corrupt-fraction")
	wantIssue(t, fu(func(u *FaultUnit) { u.CorruptFraction = 1.5 }), "corrupt-fraction")
	wantIssue(t, fu(func(u *FaultUnit) { u.Adversaries = []string{"gremlin"} }), "adversar")
}

// Every construction error and every validation issue surfaces in the one
// Build error — the error-accumulating contract.
func TestBuilderAccumulatesErrors(t *testing.T) {
	b := New("bad name!")
	b.Scaling("broken").
		Process("5-state").
		Graph("petersen", nil).
		Runtime("async") // construction-time rejection
	_, err := b.Build()
	if err == nil {
		t.Fatal("broken scenario built")
	}
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("want *ValidationError, got %T", err)
	}
	for _, want := range []string{"AsyncBounded", "name", "process", "graph family"} {
		wantIssue(t, err, want)
	}
	if errs := b.Errors(); len(errs) != 1 || !strings.Contains(errs[0], "AsyncBounded") {
		t.Errorf("Errors() = %v, want the one construction error", errs)
	}
}

func TestCodecRejections(t *testing.T) {
	valid, err := Encode(validScenario())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(valid); err != nil {
		t.Fatalf("round trip: %v", err)
	}

	check := func(name, doc string, wantErr error) {
		t.Helper()
		_, err := Decode([]byte(doc))
		if !errors.Is(err, wantErr) {
			t.Errorf("%s: got %v, want %v", name, err, wantErr)
		}
	}
	check("bad syntax", `{`, ErrSyntax)
	check("unknown top-level field", `{"scenario":1,"name":"x","flavor":"spicy","units":[]}`, ErrSyntax)
	check("trailing data", string(valid)+`{}`, ErrSyntax)
	check("missing version", `{"name":"x","units":[]}`, ErrVersion)
	check("future version", `{"scenario":99,"name":"x","units":[]}`, ErrVersion)
	check("unknown unit type", `{"scenario":1,"name":"x","units":[{"type":"bake-off"}]}`, ErrSyntax)
	check("cross-type field", `{"scenario":1,"name":"x","units":[{"type":"scaling","title":"t","process":"2-state","graph":{"family":"cycle"},"sizes":[64],"trials":5,"daemons":["synchronous"]}]}`, ErrSyntax)
	check("wrong value type", `{"scenario":1,"name":"x","units":[{"type":"scaling","title":"t","process":"2-state","graph":{"family":"cycle"},"sizes":"big","trials":5}]}`, ErrSyntax)

	// Well-formed JSON naming a bad axis is a validation error, not syntax.
	var ve *ValidationError
	_, err = Decode([]byte(`{"scenario":1,"name":"x","units":[{"type":"scaling","title":"t","process":"2-state","graph":{"family":"petersen"},"sizes":[64],"trials":5}]}`))
	if !errors.As(err, &ve) {
		t.Errorf("bad axis: got %v, want *ValidationError", err)
	}
}

// Encode→Decode→Plan equality across all three unit types and the async
// runtime — the fuzzer's round-trip property, pinned deterministically.
func TestRoundTripPlanEquality(t *testing.T) {
	b := New("kitchen-sink").Title("everything at once").Claim("round trip")
	b.Scaling("sync scaling with tail").
		Process("2-state").Graph("gnp", Params{"p": 0.02}).
		Sizes(128, 256).Trials(8).SeedOffset(7).
		Metrics("rounds", "local-times").
		ClaimNotes("note one", "note two").PolylogFit().
		MaxFit("max ln^%.2f(n)").
		Tail("tail table", 4)
	b.Scaling("async scaling").
		Process("3-state").Graph("random-regular", Params{"degree": 4}).
		Sizes(128).Trials(6).
		AsyncEventualSync(4, 16)
	b.DaemonMatrix("daemons n={n} trials={trials}").
		Processes("2-state", "3-state").Graph("gnp-avg", Params{"avgdeg": 8}).
		N(256, 64).Trials(5).Daemons("synchronous", "k-fair:4").Sequential(81)
	b.Fault("faults n={n} k={k}").
		Processes("2-state").Graph("complete", nil).
		N(128, 32).CorruptFraction(0.25).Trials(4).
		Adversaries("flip-random", "target-mis").SeedOffset(3)
	s, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	wantPlan, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	gotPlan, err := back.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(gotPlan, "\n") != strings.Join(wantPlan, "\n") {
		t.Errorf("plan changed across encode/decode\nbefore: %v\nafter:  %v", wantPlan, gotPlan)
	}
	// Canonical form is a fixed point.
	data2, err := Encode(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data2) != string(data) {
		t.Errorf("Encode(Decode(Encode(s))) != Encode(s)")
	}
}

func TestTitleFormat(t *testing.T) {
	cases := []struct {
		title string
		want  string
	}{
		{"n={n}, {trials} trials", "n=%[1]d, %[2]d trials"},
		{"{trials} trials at n={n}", "%[2]d trials at n=%[1]d"},
		{"100% plain", "100%% plain"},
		{"no placeholders", "no placeholders"},
	}
	for _, tc := range cases {
		if got := titleFormat(tc.title, "n", "trials"); got != tc.want {
			t.Errorf("titleFormat(%q) = %q, want %q", tc.title, got, tc.want)
		}
	}
}

// A compiled non-sync unit must actually run: smoke the beeping runtime
// through the shared pool path at tiny scale.
func TestCompiledRuntimeScalingRuns(t *testing.T) {
	s := mustBuild(New("beep-smoke").
		Scaling("beeping 2-state on cycles").
		Process("2-state").
		Graph("cycle", nil).
		Sizes(48, 96).
		Trials(4).
		Runtime("beeping").
		Scenario())
	exp, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	pool := batch.NewPool(2)
	defer pool.Close()
	tables := exp.Run(experiment.Config{Scale: 0.05, Seed: 2023, Pool: pool})
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	out := tables[0].Render()
	if !strings.Contains(out, "beeping 2-state on cycles") {
		t.Errorf("missing title in:\n%s", out)
	}
}

func TestVocabularyMentionsEveryAxis(t *testing.T) {
	v := Vocabulary()
	for _, want := range []string{
		"scaling", "daemon-matrix", "fault",
		"complete", "gnp-avg", "watts-strogatz",
		"2-state", "3-color",
		"sync", "beeping", "stone-age", "async",
		"bounded", "eventual-sync", "adversarial",
		"synchronous", "k-fair",
		"flip-random", "target-mis",
		"rounds", "local-times",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("vocabulary missing %q", want)
		}
	}
}

package scenario

// The builder re-expressions of E1, E4 and E18 — the three hand-coded
// experiments the scenario layer must reproduce byte for byte (the golden
// tests here and the CI scenario-vs-experiment sweep smoke both pin the
// equality, at worker counts 1 and 8). The checked-in JSON files under
// examples/scenarios/ are the Encode of these builders, pinned by a test so
// they cannot drift from the Go declarations.

import "fmt"

// mustBuild finalizes a static reproduction builder; these are compile-time
// constants in spirit, so an invalid one is a bug, not an input error.
func mustBuild(b *Builder) *Scenario {
	s, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("scenario: static reproduction invalid: %v", err))
	}
	return s
}

// ReproE1 re-expresses experiment E1 (2-state on K_n, with the geometric
// tail table) as a scenario.
func ReproE1() *Scenario {
	b := New("E1").
		Title("2-state MIS on complete graphs K_n").
		Claim("Theorem 8: O(log n) expected, Θ(log² n) w.h.p.; P[T ≥ k·log n] = 2^{-Θ(k)}")
	b.Scaling("E1a: stabilization time of 2-state on K_n").
		Process("2-state").
		Graph("complete", nil).
		Sizes(256, 512, 1024, 2048, 4096, 8192).
		Trials(200).
		ClaimNotes("claim shape: mean/ln n ≈ constant; max/ln² n bounded").
		PolylogFit().
		MaxFit("max-over-trials grows like ln^%.2f(n) (claim: up to 2 for the w.h.p. bound)").
		Tail("E1b: geometric tail P[T ≥ k·log2 n] on the largest clique", 6)
	return mustBuild(b)
}

// ReproE4 re-expresses experiment E4 (2-state on the bounded-arboricity
// families) as a scenario: one scaling unit per family, in E4's order.
func ReproE4() *Scenario {
	b := New("E4").
		Title("2-state MIS on bounded-arboricity graphs").
		Claim("Theorem 11: O(log n) w.h.p. on graphs of bounded arboricity (trees, grids, bounded-degeneracy graphs)")
	families := []struct {
		title  string
		family string
		params Params
	}{
		{"random-tree", "random-tree", nil},
		{"prufer-tree", "prufer-tree", nil},
		{"path", "path", nil},
		{"grid", "grid", nil},
		{"degen-3", "degeneracy", Params{"k": 3}},
		{"caterpillar", "caterpillar", Params{"legs": 8}},
	}
	for _, f := range families {
		b.Scaling("E4: 2-state on "+f.title).
			Process("2-state").
			Graph(f.family, f.params).
			Sizes(1024, 4096, 16384, 65536).
			Trials(60).
			ClaimNotes("claim shape: mean/ln n ≈ constant").
			PolylogFit()
	}
	return mustBuild(b)
}

// ReproE18 re-expresses experiment E18 (the daemon-schedule matrix with the
// sequential baseline) as a scenario.
func ReproE18() *Scenario {
	b := New("E18").
		Title("Randomized processes under daemon schedules").
		Claim("§1/Appendix A (after [28, 31]): randomizing the sequential MIS rule's moves restores stabilization with probability 1 under any daemon; under the synchronous daemon the randomized rule is the 2-state process. Contrast: the 3-state rule's reactive demotion livelocks under the adversarial central daemon")
	b.DaemonMatrix("E18: daemon-scheduled stabilization, G(n, avg8), n={n}, {trials} trials").
		Processes("2-state", "3-state").
		Graph("gnp-avg", Params{"avgdeg": 8}).
		N(512, 128).
		Trials(20).
		SeedOffset(18).
		Sequential(81).
		Notes(
			"2-state stabilizes under every daemon incl. adversarial (the [28,31] claim); ~1 move/vertex under central daemons",
			"3-state livelocks under central-adversarial: its black0→white demotion is reactive and the starved neighbor never fires",
			"the livelock exists only at k=∞: the k-fair:4 row (adversarial within a 4-step fairness window) restores 3-state stabilization — boundary pinned by internal/mis's daemon fairness tests",
			"seq-det rows: the sequential deterministic rule stabilizes in ≤ 2 moves/vertex under central daemons ([28, 20]) but livelocks under the synchronous daemon — the reason the parallel process randomizes; seq-rand restores stabilization under every daemon, side-by-side with its parallelization (the 2-state rows)",
		)
	return mustBuild(b)
}

package scenario

// Every checked-in example scenario must decode, validate and compile; the
// basic one also runs end to end at tiny scale through the shared pool path.

import (
	"path/filepath"
	"strings"
	"testing"

	"ssmis/internal/batch"
	"ssmis/internal/experiment"
)

func TestExampleScenarioFilesCompile(t *testing.T) {
	paths, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 5 {
		t.Fatalf("found only %d example scenarios, want the checked-in set", len(paths))
	}
	for _, path := range paths {
		s, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if _, err := s.Compile(); err != nil {
			t.Errorf("%s: compile: %v", path, err)
		}
		if _, err := s.Plan(); err != nil {
			t.Errorf("%s: plan: %v", path, err)
		}
	}
}

func TestBasicExampleRuns(t *testing.T) {
	s, err := Load("../../examples/scenarios/basic.json")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	pool := batch.NewPool(4)
	defer pool.Close()
	tables := exp.Run(experiment.Config{Scale: 0.05, Seed: 2023, Pool: pool})
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want scaling + tail", len(tables))
	}
	if out := tables[0].Render(); !strings.Contains(out, "2-state on G(n, avg4)") {
		t.Errorf("scaling table missing title:\n%s", out)
	}
	if out := tables[1].Render(); !strings.Contains(out, "geometric tail") {
		t.Errorf("tail table missing title:\n%s", out)
	}
}

// Package scenario is the declarative layer over the experiment harness: a
// scenario names its axes — graph family, process kind, runtime, daemon
// schedule, fault adversary, metrics — out of closed registries, validates
// every cross-axis constraint loudly, and compiles to the same spec-driven
// runners (internal/experiment's ScalingSpec, DaemonMatrixSpec,
// FaultMatrixSpec, ...) the hand-coded E1–E19 run on. A compiled scenario
// is an experiment.Experiment: it submits its cells to the shared batch
// pool, journals into sweep checkpoints, logs cell timings, and renders the
// same tables — a scenario reproducing E1's, E4's or E18's spec renders
// byte-identical output, pinned by the golden tests in this package and the
// CI scenario-vs-experiment sweep smoke.
//
// Scenarios arrive three ways: the fluent Builder (Go callers), the
// versioned JSON codec (missweep -scenario file.json), or literal struct
// values. All three funnel through Validate, which rejects invalid
// documents with a ValidationError listing EVERY issue — unknown names
// always include the valid vocabulary, and impossible axis combinations
// (drift without the async runtime, a daemon schedule for the 3-color
// process, a beeping run of a stone-age rule) name the constraint they
// break.
package scenario

import (
	"fmt"
	"regexp"
	"strings"

	"ssmis/internal/async"
	"ssmis/internal/experiment"
	"ssmis/internal/sched"
)

// Scenario is one declarative document: a named list of units compiled into
// one experiment.Experiment (the units' tables concatenate in order).
type Scenario struct {
	// Name identifies the compiled experiment (its ID: table headers,
	// checkpoint journals, -out CSV filenames). Restricted to
	// [A-Za-z0-9._-] so the derived filenames stay sane.
	Name string `json:"name"`
	// Title is the experiment's one-line description; defaults to the name.
	Title string `json:"title,omitempty"`
	// Claim is the experiment's claim line; defaults to a stock phrase.
	Claim string `json:"claim,omitempty"`
	// Units are the measurement units, each rendering one or more tables.
	Units []Unit `json:"units"`
}

// Unit is a tagged union of the unit types; exactly one member is non-nil.
type Unit struct {
	Scaling      *ScalingUnit
	DaemonMatrix *DaemonMatrixUnit
	Fault        *FaultUnit
}

// UnitTypeNames lists the unit type tags.
func UnitTypeNames() []string { return []string{"scaling", "daemon-matrix", "fault"} }

// typeName returns the tag of the populated member ("" when empty).
func (u Unit) typeName() string {
	switch {
	case u.Scaling != nil:
		return "scaling"
	case u.DaemonMatrix != nil:
		return "daemon-matrix"
	case u.Fault != nil:
		return "fault"
	default:
		return ""
	}
}

// GraphSpec names a registered graph family with its parameter bindings.
type GraphSpec struct {
	Family string             `json:"family"`
	Params map[string]float64 `json:"params,omitempty"`
}

// RuntimeSpec names the execution medium of a scaling unit. Kind "sync"
// (the default when the runtime is omitted) is the array simulator;
// "beeping" and "stone-age" are the goroutine-per-node media; "async" is
// the drifting-clock medium and requires a Drift model.
type RuntimeSpec struct {
	Kind  string     `json:"kind"`
	Drift *DriftSpec `json:"drift,omitempty"`
}

// DriftSpec names a clock-drift model for the async runtime.
type DriftSpec struct {
	// Model is "bounded", "eventual-sync" or "adversarial".
	Model string `json:"model"`
	// Rho is the drift bound, in [1, async.MaxRho].
	Rho float64 `json:"rho"`
	// GST is the global stabilization time in slots; eventual-sync only.
	GST int `json:"gst,omitempty"`
}

// SizeSpec is the scale-dependent problem size of fixed-n units:
// n = Base·min(2·scale, 1), clamped below at Min.
type SizeSpec struct {
	Base int `json:"base"`
	Min  int `json:"min,omitempty"`
}

// TailSpec requests a geometric-tail table over the largest ladder size.
type TailSpec struct {
	Title string `json:"title"`
	KMax  int    `json:"kmax"`
}

// ScalingUnit declares one stabilization-time scaling table: a process
// swept over a size ladder of one graph family on one runtime.
type ScalingUnit struct {
	Type    string    `json:"type"`
	Title   string    `json:"title"`
	Process string    `json:"process"`
	Graph   GraphSpec `json:"graph"`
	Sizes   []int     `json:"sizes"`
	Trials  int       `json:"trials"`
	// RoundCap bounds each run; 0 uses the runtime's default cap.
	RoundCap int `json:"round-cap,omitempty"`
	// SeedOffset shifts the cell master seeds (cfg.Seed + SeedOffset + n).
	SeedOffset uint64 `json:"seed-offset,omitempty"`
	// Runtime selects the medium; nil means sync.
	Runtime *RuntimeSpec `json:"runtime,omitempty"`
	// Metrics selects the reported metrics; empty means ["rounds"]. The
	// list must include "rounds"; "local-times" (sync runtime only) adds
	// the per-vertex coverage-stamp table.
	Metrics     []string `json:"metrics,omitempty"`
	ClaimNotes  []string `json:"claim-notes,omitempty"`
	PolylogNote bool     `json:"polylog-note,omitempty"`
	// MaxFitNote formats the fitted ln-exponent of per-size maxima (one
	// %.2f-style verb); sync runtime only.
	MaxFitNote string `json:"max-fit-note,omitempty"`
	// Tail adds the geometric-tail table; sync runtime only.
	Tail *TailSpec `json:"tail,omitempty"`
}

// DaemonMatrixUnit declares one daemon-schedule matrix: randomized parallel
// processes (and optionally the sequential [28, 20] baseline) under a set
// of daemon schedules. Daemon scheduling is defined on the synchronous
// shared-memory model only — the unit has no runtime axis by construction.
type DaemonMatrixUnit struct {
	Type string `json:"type"`
	// Title may use the placeholders {n} and {trials}.
	Title     string    `json:"title"`
	Processes []string  `json:"processes"`
	Graph     GraphSpec `json:"graph"`
	N         SizeSpec  `json:"n"`
	Trials    int       `json:"trials"`
	// Daemons lists sched.DaemonByName names; empty selects every
	// registered daemon.
	Daemons []string `json:"daemons,omitempty"`
	// Sequential adds the sequential deterministic/randomized baseline rows.
	Sequential    bool     `json:"sequential,omitempty"`
	SeedOffset    uint64   `json:"seed-offset,omitempty"`
	SeqSeedOffset uint64   `json:"seq-seed-offset,omitempty"`
	Notes         []string `json:"notes,omitempty"`
}

// FaultUnit declares one corruption/recovery matrix: stabilized processes
// attacked by state-corruption adversaries, measuring re-stabilization.
// Fault injection mutates simulator state directly, so the unit runs on the
// synchronous simulator only.
type FaultUnit struct {
	Type string `json:"type"`
	// Title may use the placeholders {n} and {k}.
	Title     string    `json:"title"`
	Processes []string  `json:"processes"`
	Graph     GraphSpec `json:"graph"`
	N         SizeSpec  `json:"n"`
	// CorruptFraction sizes the attack: k = max(1, fraction·n); in (0, 1].
	CorruptFraction float64 `json:"corrupt-fraction"`
	Trials          int     `json:"trials"`
	// Adversaries lists fault adversary names; empty selects all.
	Adversaries []string `json:"adversaries,omitempty"`
	SeedOffset  uint64   `json:"seed-offset,omitempty"`
	Notes       []string `json:"notes,omitempty"`
}

// ValidationError reports every constraint a scenario breaks, one issue per
// line. Callers that want the list programmatically use Issues.
type ValidationError struct {
	Issues []string
}

func (e *ValidationError) Error() string {
	if len(e.Issues) == 1 {
		return "scenario: " + e.Issues[0]
	}
	return fmt.Sprintf("scenario: %d issues:\n  - %s", len(e.Issues), strings.Join(e.Issues, "\n  - "))
}

var nameRE = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// Validate checks the whole document and returns a *ValidationError listing
// every issue, or nil. Compile and Encode both validate first, so an
// invalid scenario cannot reach the pool or the wire.
func (s *Scenario) Validate() error {
	var issues []string
	addf := func(format string, args ...any) {
		issues = append(issues, fmt.Sprintf(format, args...))
	}
	if s.Name == "" {
		addf("name is required")
	} else if !nameRE.MatchString(s.Name) {
		addf("name %q: must match %s (it names checkpoint journals and CSV files)", s.Name, nameRE)
	}
	if len(s.Units) == 0 {
		addf("at least one unit is required")
	}
	for i, u := range s.Units {
		prefix := fmt.Sprintf("unit %d", i)
		switch {
		case u.Scaling != nil:
			validateScaling(u.Scaling, prefix+" (scaling)", addf)
		case u.DaemonMatrix != nil:
			validateDaemonMatrix(u.DaemonMatrix, prefix+" (daemon-matrix)", addf)
		case u.Fault != nil:
			validateFault(u.Fault, prefix+" (fault)", addf)
		default:
			addf("%s: empty unit (valid types: %s)", prefix, strings.Join(UnitTypeNames(), ", "))
		}
	}
	if len(issues) > 0 {
		return &ValidationError{Issues: issues}
	}
	return nil
}

// validateGraph resolves the family and checks the parameter bindings.
func validateGraph(g GraphSpec, prefix string, addf func(string, ...any)) {
	fam, ok := FamilyByName(g.Family)
	if !ok {
		addf("%s: unknown graph family %q (valid: %s)", prefix, g.Family, strings.Join(FamilyNames(), ", "))
		return
	}
	if _, _, err := fam.Bind(g.Params); err != nil {
		addf("%s: %v", prefix, err)
	}
}

func validateScaling(u *ScalingUnit, prefix string, addf func(string, ...any)) {
	if u.Title == "" {
		addf("%s: title is required", prefix)
	}
	kind, kindErr := experiment.ParseKind(u.Process)
	if kindErr != nil {
		addf("%s: %v", prefix, kindErr)
	}
	validateGraph(u.Graph, prefix, addf)
	if len(u.Sizes) == 0 {
		addf("%s: sizes is required (the size ladder)", prefix)
	}
	for _, n := range u.Sizes {
		if n < 1 {
			addf("%s: size %d: sizes must be >= 1", prefix, n)
		}
	}
	if u.Trials < 1 {
		addf("%s: trials must be >= 1, got %d", prefix, u.Trials)
	}
	if u.RoundCap < 0 {
		addf("%s: round-cap must be >= 0, got %d", prefix, u.RoundCap)
	}

	// The runtime axis and its cross-axis constraints.
	rtName := "sync"
	if u.Runtime != nil {
		rtName = u.Runtime.Kind
	}
	rt, rtOK := RuntimeByName(rtName)
	if !rtOK {
		addf("%s: unknown runtime %q (valid: %s)", prefix, rtName, strings.Join(RuntimeNames(), ", "))
	}
	if rtOK && kindErr == nil && !experiment.RuntimeSupports(rt, kind) {
		addf("%s: the %s runtime cannot execute the %v process (%s)",
			prefix, rtName, kind, runtimeSupportNote(rt))
	}
	if u.Runtime != nil {
		validateDrift(u.Runtime, prefix, addf)
	}
	sync := rtOK && rt == experiment.RuntimeSync
	if u.Tail != nil {
		if u.Tail.Title == "" {
			addf("%s: tail.title is required", prefix)
		}
		if u.Tail.KMax < 1 {
			addf("%s: tail.kmax must be >= 1, got %d", prefix, u.Tail.KMax)
		}
		if !sync {
			addf("%s: tail tables need the sync runtime (round samples come from the simulator sweep), not %q", prefix, rtName)
		}
	}
	if u.MaxFitNote != "" && !sync {
		addf("%s: max-fit-note needs the sync runtime, not %q", prefix, rtName)
	}

	// Metrics.
	if len(u.Metrics) > 0 {
		seen := map[string]bool{}
		hasRounds := false
		for _, m := range u.Metrics {
			if seen[m] {
				addf("%s: duplicate metric %q", prefix, m)
				continue
			}
			seen[m] = true
			switch m {
			case "rounds":
				hasRounds = true
			case "local-times":
				if !sync {
					addf("%s: metric local-times needs the sync runtime (coverage stamps are the simulator's), not %q", prefix, rtName)
				}
			default:
				addf("%s: unknown metric %q for scaling units (valid: rounds, local-times)", prefix, m)
			}
		}
		if !hasRounds {
			addf(`%s: metrics must include "rounds" (the scaling table itself)`, prefix)
		}
	}
}

// validateDrift checks the drift model block against the runtime kind.
func validateDrift(rt *RuntimeSpec, prefix string, addf func(string, ...any)) {
	if rt.Kind != "async" {
		if rt.Drift != nil {
			addf("%s: drift models require the async runtime, not %q", prefix, rt.Kind)
		}
		return
	}
	d := rt.Drift
	if d == nil {
		addf("%s: the async runtime requires a drift model (valid: %s)", prefix, strings.Join(DriftModelNames(), ", "))
		return
	}
	known := false
	for _, m := range DriftModelNames() {
		if d.Model == m {
			known = true
		}
	}
	if !known {
		addf("%s: unknown drift model %q (valid: %s)", prefix, d.Model, strings.Join(DriftModelNames(), ", "))
	}
	if !(d.Rho >= 1 && d.Rho <= async.MaxRho) {
		addf("%s: drift rho %v outside [1, %d]", prefix, d.Rho, int64(async.MaxRho))
	}
	if d.Model == "eventual-sync" {
		if d.GST < 0 {
			addf("%s: eventual-sync gst must be >= 0, got %d", prefix, d.GST)
		}
	} else if d.GST != 0 {
		addf("%s: gst applies to the eventual-sync model only, not %q", prefix, d.Model)
	}
}

func validateSize(n SizeSpec, prefix string, addf func(string, ...any)) {
	if n.Base < 1 {
		addf("%s: n.base must be >= 1, got %d", prefix, n.Base)
	}
	if n.Min < 0 {
		addf("%s: n.min must be >= 0, got %d", prefix, n.Min)
	}
}

func validateDaemonMatrix(u *DaemonMatrixUnit, prefix string, addf func(string, ...any)) {
	if u.Title == "" {
		addf("%s: title is required", prefix)
	}
	if len(u.Processes) == 0 {
		addf("%s: processes is required", prefix)
	}
	for _, p := range u.Processes {
		kind, err := experiment.ParseKind(p)
		if err != nil {
			addf("%s: %v", prefix, err)
			continue
		}
		if kind == experiment.KindThreeColor {
			addf("%s: the 3-color process is not daemon-schedulable (only 2-state and 3-state implement the daemon interface)", prefix)
		}
	}
	validateGraph(u.Graph, prefix, addf)
	validateSize(u.N, prefix, addf)
	if u.Trials < 1 {
		addf("%s: trials must be >= 1, got %d", prefix, u.Trials)
	}
	for _, d := range u.Daemons {
		if _, err := sched.DaemonByName(d); err != nil {
			addf("%s: %v (valid: %s)", prefix, err, strings.Join(sched.DaemonNames(), ", "))
		}
	}
}

func validateFault(u *FaultUnit, prefix string, addf func(string, ...any)) {
	if u.Title == "" {
		addf("%s: title is required", prefix)
	}
	if len(u.Processes) == 0 {
		addf("%s: processes is required", prefix)
	}
	for _, p := range u.Processes {
		if _, err := experiment.ParseKind(p); err != nil {
			addf("%s: %v", prefix, err)
		}
	}
	validateGraph(u.Graph, prefix, addf)
	validateSize(u.N, prefix, addf)
	if !(u.CorruptFraction > 0 && u.CorruptFraction <= 1) {
		addf("%s: corrupt-fraction must be in (0, 1], got %v", prefix, u.CorruptFraction)
	}
	if u.Trials < 1 {
		addf("%s: trials must be >= 1, got %d", prefix, u.Trials)
	}
	for _, a := range u.Adversaries {
		if _, err := experiment.FaultAdversaryByName(a); err != nil {
			addf("%s: %v", prefix, err)
		}
	}
}

// runtimeSupportNote explains a runtime's process constraint.
func runtimeSupportNote(rt experiment.Runtime) string {
	switch rt {
	case experiment.RuntimeBeeping:
		return "the beeping medium carries only the 2-state rule's single channel"
	case experiment.RuntimeStoneAge:
		return "the stone-age medium runs the 3-state and 3-color rules"
	case experiment.RuntimeAsync:
		return "the async medium implements the 2-state and 3-state program sets"
	default:
		return "sync runs every process"
	}
}

package scenario

// The closed vocabularies a scenario names its axes from. Every registry
// entry resolves to the exact constructor the hand-coded experiments call,
// so a scenario naming an experiment's axes reproduces its cells: the
// registries are the naming layer, not a parallel implementation.

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ssmis/internal/experiment"
	"ssmis/internal/graph"
	"ssmis/internal/sched"
	"ssmis/internal/xrand"
)

// Param declares one graph-family parameter.
type Param struct {
	Name string
	Desc string
	// Required parameters must be bound; optional ones fall back to Default.
	Required bool
	Default  float64
	// Int requires a whole-number value.
	Int bool
	// Min/Max bound the accepted values; Max 0 means unbounded above.
	Min, Max float64
}

// Family is a registered graph family: a named, parameterized, seedable
// constructor.
type Family struct {
	Name string
	Desc string
	// Det marks deterministic families (the build ignores its seed); their
	// cells submit as fixed shards.
	Det    bool
	Params []Param
	build  func(n int, p map[string]float64, seed uint64) *graph.Graph
}

// Families lists the registered graph families in presentation order.
func Families() []Family {
	return []Family{
		{Name: "complete", Desc: "complete graph K_n", Det: true,
			build: func(n int, _ map[string]float64, _ uint64) *graph.Graph { return graph.Complete(n) }},
		{Name: "path", Desc: "path P_n", Det: true,
			build: func(n int, _ map[string]float64, _ uint64) *graph.Graph { return graph.Path(n) }},
		{Name: "cycle", Desc: "cycle C_n", Det: true,
			build: func(n int, _ map[string]float64, _ uint64) *graph.Graph { return graph.Cycle(n) }},
		{Name: "star", Desc: "star K_{1,n-1}", Det: true,
			build: func(n int, _ map[string]float64, _ uint64) *graph.Graph { return graph.Star(n) }},
		{Name: "grid", Desc: "⌊√n⌋×⌊√n⌋ grid", Det: true,
			build: func(n int, _ map[string]float64, _ uint64) *graph.Graph {
				s := int(math.Sqrt(float64(n)))
				return graph.Grid(s, s)
			}},
		{Name: "torus", Desc: "⌊√n⌋×⌊√n⌋ torus", Det: true,
			build: func(n int, _ map[string]float64, _ uint64) *graph.Graph {
				s := int(math.Sqrt(float64(n)))
				return graph.Torus(s, s)
			}},
		{Name: "caterpillar", Desc: "caterpillar tree: spine of ⌊n/(legs+1)⌋ segments", Det: true,
			Params: []Param{{Name: "legs", Desc: "legs per spine vertex", Default: 8, Int: true, Min: 1}},
			build: func(n int, p map[string]float64, _ uint64) *graph.Graph {
				legs := int(p["legs"])
				return graph.Caterpillar(n/(legs+1), legs)
			}},
		{Name: "disjoint-cliques", Desc: "⌊√n⌋ disjoint cliques of size ⌊√n⌋", Det: true,
			build: func(n int, _ map[string]float64, _ uint64) *graph.Graph {
				s := graph.ISqrt(n)
				return graph.DisjointCliques(s, s)
			}},
		{Name: "random-tree", Desc: "random recursive tree",
			build: func(n int, _ map[string]float64, seed uint64) *graph.Graph {
				return graph.RandomTree(n, xrand.New(seed))
			}},
		{Name: "prufer-tree", Desc: "uniform labeled tree (Prüfer sequence)",
			build: func(n int, _ map[string]float64, seed uint64) *graph.Graph {
				return graph.UniformLabeledTree(n, xrand.New(seed))
			}},
		{Name: "gnp", Desc: "Erdős–Rényi G(n,p)",
			Params: []Param{{Name: "p", Desc: "edge probability", Required: true, Max: 1}},
			build: func(n int, p map[string]float64, seed uint64) *graph.Graph {
				return graph.Gnp(n, p["p"], xrand.New(seed))
			}},
		{Name: "gnp-avg", Desc: "G(n,p) at a fixed average degree",
			Params: []Param{{Name: "avgdeg", Desc: "average degree", Required: true}},
			build: func(n int, p map[string]float64, seed uint64) *graph.Graph {
				return graph.GnpAvgDegree(n, p["avgdeg"], xrand.New(seed))
			}},
		{Name: "chung-lu", Desc: "Chung–Lu power-law graph",
			Params: []Param{
				{Name: "beta", Desc: "power-law exponent", Default: 2.3, Min: 2},
				{Name: "avgdeg", Desc: "average degree", Required: true},
			},
			build: func(n int, p map[string]float64, seed uint64) *graph.Graph {
				return graph.ChungLu(n, p["beta"], p["avgdeg"], xrand.New(seed))
			}},
		{Name: "random-regular", Desc: "random d-regular graph (n·degree must be even)",
			Params: []Param{{Name: "degree", Desc: "vertex degree", Required: true, Int: true, Min: 1}},
			build: func(n int, p map[string]float64, seed uint64) *graph.Graph {
				return graph.RandomRegular(n, int(p["degree"]), xrand.New(seed))
			}},
		{Name: "degeneracy", Desc: "random graph of bounded degeneracy",
			Params: []Param{{Name: "k", Desc: "degeneracy bound", Required: true, Int: true, Min: 1}},
			build: func(n int, p map[string]float64, seed uint64) *graph.Graph {
				return graph.BoundedDegeneracyRandom(n, int(p["k"]), xrand.New(seed))
			}},
		{Name: "watts-strogatz", Desc: "Watts–Strogatz small world",
			Params: []Param{
				{Name: "k", Desc: "ring neighbors (even)", Default: 4, Int: true, Min: 2},
				{Name: "beta", Desc: "rewiring probability", Default: 0.1, Max: 1},
			},
			build: func(n int, p map[string]float64, seed uint64) *graph.Graph {
				return graph.WattsStrogatz(n, int(p["k"]), p["beta"], xrand.New(seed))
			}},
	}
}

// FamilyNames lists the registered family names.
func FamilyNames() []string {
	fams := Families()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	return names
}

// FamilyByName resolves a registered family.
func FamilyByName(name string) (Family, bool) {
	for _, f := range Families() {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// Bind validates the parameter bindings against the family's declarations
// — unknown names, missing required parameters, fractional values for
// integer parameters, and out-of-range values all error — and returns the
// bound experiment.GraphFamily plus the fully resolved parameter map
// (defaults filled in), which Plan renders.
func (f Family) Bind(params map[string]float64) (experiment.GraphFamily, map[string]float64, error) {
	resolved := make(map[string]float64, len(f.Params))
	var issues []string
	for name := range params {
		if _, ok := f.param(name); !ok {
			issues = append(issues, fmt.Sprintf("unknown parameter %q (valid: %s)", name, f.paramNames()))
		}
	}
	for _, p := range f.Params {
		v, bound := params[p.Name]
		if !bound {
			if p.Required {
				issues = append(issues, fmt.Sprintf("parameter %q is required (%s)", p.Name, p.Desc))
				continue
			}
			v = p.Default
		}
		if p.Int && v != math.Trunc(v) {
			issues = append(issues, fmt.Sprintf("parameter %q must be a whole number, got %v", p.Name, v))
		}
		if v < p.Min {
			issues = append(issues, fmt.Sprintf("parameter %q must be >= %v, got %v", p.Name, p.Min, v))
		}
		if p.Max != 0 && v > p.Max {
			issues = append(issues, fmt.Sprintf("parameter %q must be <= %v, got %v", p.Name, p.Max, v))
		}
		resolved[p.Name] = v
	}
	if len(issues) > 0 {
		return experiment.GraphFamily{}, nil, fmt.Errorf("graph family %q: %s", f.Name, strings.Join(issues, "; "))
	}
	build := f.build
	return experiment.GraphFamily{
		Name: f.Name,
		Det:  f.Det,
		Build: func(n int, seed uint64) *graph.Graph {
			return build(n, resolved, seed)
		},
	}, resolved, nil
}

func (f Family) param(name string) (Param, bool) {
	for _, p := range f.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

func (f Family) paramNames() string {
	if len(f.Params) == 0 {
		return "none"
	}
	names := make([]string, len(f.Params))
	for i, p := range f.Params {
		names[i] = p.Name
	}
	return strings.Join(names, ", ")
}

// RuntimeNames lists the execution media.
func RuntimeNames() []string { return []string{"sync", "beeping", "stone-age", "async"} }

// RuntimeByName resolves a runtime name.
func RuntimeByName(name string) (experiment.Runtime, bool) {
	switch name {
	case "sync":
		return experiment.RuntimeSync, true
	case "beeping":
		return experiment.RuntimeBeeping, true
	case "stone-age":
		return experiment.RuntimeStoneAge, true
	case "async":
		return experiment.RuntimeAsync, true
	default:
		return 0, false
	}
}

// DriftModelNames lists the async clock-drift models.
func DriftModelNames() []string { return []string{"bounded", "eventual-sync", "adversarial"} }

// Metric describes one registered metric name.
type Metric struct {
	Name string
	Desc string
}

// Metrics lists the registered metrics and which unit reports them.
func Metrics() []Metric {
	return []Metric{
		{Name: "rounds", Desc: "scaling units: stabilization rounds over the size ladder (the standard scaling table; always on)"},
		{Name: "local-times", Desc: "scaling units, sync runtime: per-vertex coverage-stamp quantiles vs the global round count"},
		{Name: "moves-per-vertex", Desc: "daemon-matrix units: moves per vertex and steps under each daemon (always on)"},
		{Name: "recovery-rounds", Desc: "fault units: rounds to re-stabilize after each corruption adversary (always on)"},
	}
}

// Vocabulary renders every registry for missweep -list: the unit types and
// each axis with its valid names.
func Vocabulary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario units: %s\n", strings.Join(UnitTypeNames(), ", "))
	b.WriteString("graph families:\n")
	for _, f := range Families() {
		det := ""
		if f.Det {
			det = " [deterministic]"
		}
		fmt.Fprintf(&b, "  %-17s %s%s\n", f.Name, f.Desc, det)
		for _, p := range f.Params {
			req := fmt.Sprintf("default %v", p.Default)
			if p.Required {
				req = "required"
			}
			fmt.Fprintf(&b, "  %-17s   param %s: %s (%s)\n", "", p.Name, p.Desc, req)
		}
	}
	fmt.Fprintf(&b, "processes: %s\n", strings.Join(experiment.KindNames(), ", "))
	fmt.Fprintf(&b, "runtimes: %s (async needs a drift model: %s)\n",
		strings.Join(RuntimeNames(), ", "), strings.Join(DriftModelNames(), ", "))
	fmt.Fprintf(&b, "daemons: %s\n", strings.Join(sched.DaemonNames(), ", "))
	fmt.Fprintf(&b, "fault adversaries: %s\n", strings.Join(experiment.FaultAdversaryNames(), ", "))
	b.WriteString("metrics:\n")
	for _, m := range Metrics() {
		fmt.Fprintf(&b, "  %-17s %s\n", m.Name, m.Desc)
	}
	return b.String()
}

// paramString renders a resolved parameter map deterministically for Plan
// lines and labels: "{}" or "{k=v, k=v}" in key order.
func paramString(params map[string]float64) string {
	if len(params) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%v", k, params[k])
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

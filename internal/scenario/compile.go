package scenario

// Compilation: a validated scenario becomes an experiment.Experiment whose
// Run submits the exact cell structure the hand-coded experiments submit —
// ScalingSpec/RunScalingSweep for sync scaling units, RuntimeScalingSpec
// for the alternative media, DaemonMatrixSpec and FaultMatrixSpec for the
// matrices. Checkpointing, cell timing, -scalar/-identity-order invariance
// and -workers independence all come for free from that shared path.

import (
	"fmt"
	"strings"

	"ssmis/internal/async"
	"ssmis/internal/experiment"
)

// Compile validates the scenario and binds it to a runnable experiment.
// The experiment's ID is the scenario name, so -out CSV filenames and
// checkpoint journal keys look exactly like a registry experiment's.
func (s *Scenario) Compile() (experiment.Experiment, error) {
	if err := s.Validate(); err != nil {
		return experiment.Experiment{}, err
	}
	runners := make([]func(cfg experiment.Config) []experiment.Table, len(s.Units))
	for i, u := range s.Units {
		runners[i] = compileUnit(s.Name, u)
	}
	title := s.Title
	if title == "" {
		title = "scenario " + s.Name
	}
	claim := s.Claim
	if claim == "" {
		claim = fmt.Sprintf("declarative scenario (%d units)", len(s.Units))
	}
	return experiment.Experiment{
		ID:    s.Name,
		Title: title,
		Claim: claim,
		Run: func(cfg experiment.Config) []experiment.Table {
			var tables []experiment.Table
			for _, run := range runners {
				tables = append(tables, run(cfg)...)
			}
			return tables
		},
	}, nil
}

// compileUnit binds one validated unit to its runner.
func compileUnit(name string, u Unit) func(cfg experiment.Config) []experiment.Table {
	switch {
	case u.Scaling != nil:
		return compileScaling(name, u.Scaling)
	case u.DaemonMatrix != nil:
		spec := daemonMatrixSpec(name, u.DaemonMatrix)
		return func(cfg experiment.Config) []experiment.Table {
			return []experiment.Table{experiment.RunDaemonMatrix(cfg, spec)}
		}
	default:
		spec := faultMatrixSpec(name, u.Fault)
		return func(cfg experiment.Config) []experiment.Table {
			return []experiment.Table{experiment.RunFaultMatrix(cfg, spec)}
		}
	}
}

// mustBind resolves a validated graph spec; Validate already rejected every
// bind error, so a failure here is a harness bug.
func mustBind(g GraphSpec) (experiment.GraphFamily, map[string]float64) {
	f, ok := FamilyByName(g.Family)
	if !ok {
		panic(fmt.Sprintf("scenario: compile of unvalidated family %q", g.Family))
	}
	fam, resolved, err := f.Bind(g.Params)
	if err != nil {
		panic(fmt.Sprintf("scenario: compile of unvalidated params: %v", err))
	}
	return fam, resolved
}

func mustKind(name string) experiment.Kind {
	k, err := experiment.ParseKind(name)
	if err != nil {
		panic(fmt.Sprintf("scenario: compile of unvalidated process: %v", err))
	}
	return k
}

func compileScaling(name string, u *ScalingUnit) func(cfg experiment.Config) []experiment.Table {
	kind := mustKind(u.Process)
	fam, _ := mustBind(u.Graph)
	rt := experiment.RuntimeSync
	if u.Runtime != nil {
		rt, _ = RuntimeByName(u.Runtime.Kind)
	}
	localTimes := false
	for _, m := range u.Metrics {
		if m == "local-times" {
			localTimes = true
		}
	}
	var runRounds func(cfg experiment.Config) []experiment.Table
	if rt == experiment.RuntimeSync {
		spec := experiment.ScalingSpec{
			Title:       u.Title,
			Kind:        kind,
			Family:      fam,
			Sizes:       u.Sizes,
			TrialsBase:  u.Trials,
			RoundCap:    u.RoundCap,
			SeedOffset:  u.SeedOffset,
			ClaimNotes:  u.ClaimNotes,
			PolylogNote: u.PolylogNote,
			MaxFitNote:  u.MaxFitNote,
		}
		if u.Tail != nil {
			spec.Tail = &experiment.TailSpec{Title: u.Tail.Title, KMax: u.Tail.KMax}
		}
		runRounds = func(cfg experiment.Config) []experiment.Table {
			return experiment.RunScalingSweep(cfg, spec)
		}
	} else {
		spec := experiment.RuntimeScalingSpec{
			Title:       u.Title,
			Runtime:     rt,
			Drift:       driftModel(u.Runtime.Drift),
			Kind:        kind,
			Family:      fam,
			Sizes:       u.Sizes,
			TrialsBase:  u.Trials,
			RoundCap:    u.RoundCap,
			SeedOffset:  u.SeedOffset,
			ClaimNotes:  u.ClaimNotes,
			PolylogNote: u.PolylogNote,
		}
		runRounds = func(cfg experiment.Config) []experiment.Table {
			return []experiment.Table{experiment.RunRuntimeScaling(cfg, spec)}
		}
	}
	if !localTimes {
		return runRounds
	}
	ltSpec := experiment.LocalTimesSpec{
		Title:      u.Title + " — per-vertex stabilization times",
		Label:      name,
		Kind:       kind,
		Family:     fam,
		Sizes:      u.Sizes,
		TrialsBase: u.Trials,
		SeedOffset: u.SeedOffset,
	}
	return func(cfg experiment.Config) []experiment.Table {
		tables := runRounds(cfg)
		return append(tables, experiment.RunLocalTimes(cfg, ltSpec))
	}
}

// driftModel constructs the validated drift model (async runtime only).
func driftModel(d *DriftSpec) async.Drift {
	if d == nil {
		return nil
	}
	switch d.Model {
	case "bounded":
		return async.NewBounded(d.Rho)
	case "eventual-sync":
		return async.NewEventualSync(d.Rho, d.GST)
	case "adversarial":
		return async.NewAdversarial(d.Rho)
	default:
		panic(fmt.Sprintf("scenario: compile of unvalidated drift model %q", d.Model))
	}
}

func daemonMatrixSpec(name string, u *DaemonMatrixUnit) experiment.DaemonMatrixSpec {
	fam, _ := mustBind(u.Graph)
	kinds := make([]experiment.Kind, len(u.Processes))
	for i, p := range u.Processes {
		kinds[i] = mustKind(p)
	}
	return experiment.DaemonMatrixSpec{
		TitleFormat:    titleFormat(u.Title, "n", "trials"),
		Label:          name,
		Family:         fam,
		N:              experiment.ScaledSize{Base: u.N.Base, Min: u.N.Min},
		TrialsBase:     u.Trials,
		Kinds:          kinds,
		KindSeedOffset: u.SeedOffset,
		Sequential:     u.Sequential,
		SeqSeedOffset:  u.SeqSeedOffset,
		Daemons:        u.Daemons,
		Notes:          u.Notes,
	}
}

func faultMatrixSpec(name string, u *FaultUnit) experiment.FaultMatrixSpec {
	fam, _ := mustBind(u.Graph)
	kinds := make([]experiment.Kind, len(u.Processes))
	for i, p := range u.Processes {
		kinds[i] = mustKind(p)
	}
	return experiment.FaultMatrixSpec{
		TitleFormat:     titleFormat(u.Title, "n", "k"),
		Label:           name,
		Kinds:           kinds,
		Family:          fam,
		N:               experiment.ScaledSize{Base: u.N.Base, Min: u.N.Min},
		CorruptFraction: u.CorruptFraction,
		TrialsBase:      u.Trials,
		Adversaries:     u.Adversaries,
		SeedOffset:      u.SeedOffset,
		Notes:           u.Notes,
	}
}

// titleFormat converts a {placeholder} title into the fmt string the matrix
// runners expect. Indexed verbs keep the substitution order-independent:
// the i-th placeholder always receives the runner's i-th argument, wherever
// (and however often) it appears in the title; literal percent signs are
// escaped first.
func titleFormat(title string, placeholders ...string) string {
	s := strings.ReplaceAll(title, "%", "%%")
	for i, ph := range placeholders {
		s = strings.ReplaceAll(s, "{"+ph+"}", fmt.Sprintf("%%[%d]d", i+1))
	}
	return s
}

// Plan renders one deterministic line per unit describing the compiled cell
// structure — resolved graph parameters (defaults filled in), runtimes,
// daemon and adversary selections. The fuzzer pins encode→decode→Plan
// equality with it, and missweep prints it nowhere: it is a semantic
// fingerprint, not a display format.
func (s *Scenario) Plan() ([]string, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	lines := make([]string, len(s.Units))
	for i, u := range s.Units {
		switch {
		case u.Scaling != nil:
			lines[i] = planScaling(u.Scaling)
		case u.DaemonMatrix != nil:
			lines[i] = planDaemonMatrix(u.DaemonMatrix)
		default:
			lines[i] = planFault(u.Fault)
		}
	}
	return lines, nil
}

func planGraph(g GraphSpec) string {
	_, resolved := mustBind(g)
	return g.Family + paramString(resolved)
}

func planScaling(u *ScalingUnit) string {
	rt := "sync"
	if u.Runtime != nil {
		rt = u.Runtime.Kind
		if d := u.Runtime.Drift; d != nil {
			rt += fmt.Sprintf("/%s(rho=%v,gst=%d)", d.Model, d.Rho, d.GST)
		}
	}
	metrics := u.Metrics
	if len(metrics) == 0 {
		metrics = []string{"rounds"}
	}
	tail := ""
	if u.Tail != nil {
		tail = fmt.Sprintf(" tail(kmax=%d)", u.Tail.KMax)
	}
	return fmt.Sprintf("scaling %q process=%s graph=%s sizes=%v trials=%d round-cap=%d seed-offset=%d runtime=%s metrics=%s%s",
		u.Title, u.Process, planGraph(u.Graph), u.Sizes, u.Trials, u.RoundCap, u.SeedOffset, rt,
		strings.Join(metrics, "+"), tail)
}

func planDaemonMatrix(u *DaemonMatrixUnit) string {
	daemons := "all"
	if len(u.Daemons) > 0 {
		daemons = strings.Join(u.Daemons, "+")
	}
	return fmt.Sprintf("daemon-matrix %q processes=%s graph=%s n=%d/%d trials=%d daemons=%s sequential=%v seed-offset=%d seq-seed-offset=%d",
		u.Title, strings.Join(u.Processes, "+"), planGraph(u.Graph), u.N.Base, u.N.Min, u.Trials,
		daemons, u.Sequential, u.SeedOffset, u.SeqSeedOffset)
}

func planFault(u *FaultUnit) string {
	advs := "all"
	if len(u.Adversaries) > 0 {
		advs = strings.Join(u.Adversaries, "+")
	}
	return fmt.Sprintf("fault %q processes=%s graph=%s n=%d/%d corrupt-fraction=%v trials=%d adversaries=%s seed-offset=%d",
		u.Title, strings.Join(u.Processes, "+"), planGraph(u.Graph), u.N.Base, u.N.Min,
		u.CorruptFraction, u.Trials, advs, u.SeedOffset)
}

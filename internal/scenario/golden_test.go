package scenario

// The tentpole invariant: a scenario re-expressing a hand-coded experiment
// produces byte-identical tables. E1 (scaling + tail), E4 (six families) and
// E18 (daemon matrix + sequential baseline) are rebuilt on the Builder and
// diffed against experiment.ByID output at workers 1 and 8 — the same
// invariance the hand-coded suite already guarantees, now extended across
// the declarative layer.

import (
	"flag"
	"os"
	"strings"
	"testing"

	"ssmis/internal/batch"
	"ssmis/internal/experiment"
)

var update = flag.Bool("update", false, "regenerate examples/scenarios/*.json from the Go reproductions")

func renderAll(tables []experiment.Table) string {
	var sb strings.Builder
	for _, t := range tables {
		sb.WriteString(t.Render())
		sb.WriteString("\n")
	}
	return sb.String()
}

func TestGoldenReproductions(t *testing.T) {
	repros := []struct {
		id    string
		build func() *Scenario
	}{
		{"E1", ReproE1},
		{"E4", ReproE4},
		{"E18", ReproE18},
	}
	for _, workers := range []int{1, 8} {
		pool := batch.NewPool(workers)
		cfg := experiment.Config{Scale: 0.05, Seed: 2023, Pool: pool}
		for _, r := range repros {
			hand, ok := experiment.ByID(r.id)
			if !ok {
				t.Fatalf("experiment %s not registered", r.id)
			}
			exp, err := r.build().Compile()
			if err != nil {
				t.Fatalf("%s: compile: %v", r.id, err)
			}
			if exp.ID != r.id {
				t.Errorf("%s: compiled ID = %q", r.id, exp.ID)
			}
			want := renderAll(hand.Run(cfg))
			got := renderAll(exp.Run(cfg))
			if got != want {
				t.Errorf("%s at %d workers: scenario tables differ from hand-coded\n--- hand-coded ---\n%s\n--- scenario ---\n%s",
					r.id, workers, want, got)
			}
		}
		pool.Close()
	}
}

// The checked-in example files are the Encode of the Go reproductions; this
// pins them so the JSON and the builders cannot drift apart, and closes the
// loop file → Decode → Plan ≡ builder → Plan.
func TestExampleFilesMatchReproductions(t *testing.T) {
	files := []struct {
		path  string
		build func() *Scenario
	}{
		{"../../examples/scenarios/e1.json", ReproE1},
		{"../../examples/scenarios/e4.json", ReproE4},
		{"../../examples/scenarios/e18.json", ReproE18},
	}
	for _, f := range files {
		want, err := Encode(f.build())
		if err != nil {
			t.Fatalf("%s: encode: %v", f.path, err)
		}
		if *update {
			if err := os.WriteFile(f.path, want, 0o644); err != nil {
				t.Fatalf("%s: update: %v", f.path, err)
			}
		}
		loaded, err := Load(f.path)
		if err != nil {
			t.Fatalf("%s: %v", f.path, err)
		}
		got, err := Encode(loaded)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", f.path, err)
		}
		if string(got) != string(want) {
			t.Errorf("%s drifted from its builder reproduction; regenerate with `go test ./internal/scenario -run TestExampleFiles -update`",
				f.path)
		}
		wantPlan, err := f.build().Plan()
		if err != nil {
			t.Fatalf("%s: plan: %v", f.path, err)
		}
		gotPlan, err := loaded.Plan()
		if err != nil {
			t.Fatalf("%s: loaded plan: %v", f.path, err)
		}
		if strings.Join(gotPlan, "\n") != strings.Join(wantPlan, "\n") {
			t.Errorf("%s: plan mismatch\nfile:    %v\nbuilder: %v", f.path, gotPlan, wantPlan)
		}
	}
}

package mis

import (
	"fmt"

	"ssmis/internal/graph"
	"ssmis/internal/phaseclock"
	"ssmis/internal/xrand"
)

// Color is a vertex color of the 3-color MIS process.
type Color uint8

// The three colors of Definition 28. Gray vertices are treated as non-black
// by their neighbors; a gray vertex turns white only when its logarithmic
// switch reads "on", which throttles how often a vertex can re-enter the
// white→black competition — the mechanism that makes the dense G(n,p) regime
// tractable.
const (
	ColorWhite Color = iota + 1
	ColorBlack
	ColorGray
)

func (c Color) String() string {
	switch c {
	case ColorWhite:
		return "white"
	case ColorBlack:
		return "black"
	case ColorGray:
		return "gray"
	default:
		return fmt.Sprintf("Color(%d)", uint8(c))
	}
}

// ThreeColor is the paper's 3-color MIS process (Definition 28): the 2-state
// update rule with two changes — an active black vertex randomizes between
// black and gray (not white), and a gray vertex becomes white only when its
// (a, 3)-logarithmic switch (Definition 26, a = 512, ζ = 2^-7) is on. The
// switch runs in parallel as a sub-process; total state space is
// 3 × 6 = 18 states per vertex.
//
// Per round, a vertex draws its color coin first (if active) and its switch
// coin second (if at the top level); the goroutine runtime replays the same
// order, keeping engines coin-for-coin equal.
type ThreeColor struct {
	g        *graph.Graph
	color    []Color
	next     []Color
	nbrBlack []int32
	clock    *phaseclock.Clock
	rngs     []*xrand.Rand
	opts     options
	round    int
	bits     int64

	activeCnt  int
	stabilized bool
	mark       []int32
	markStamp  int32
	lt         *localTimes
}

var _ Process = (*ThreeColor)(nil)

// NewThreeColor creates a 3-color process on g. InitRandom draws colors
// uniformly from {white, black, gray} and switch levels uniformly from
// [0, 5]; mask-based initializers map black→black, white→white with uniform
// random switch levels (the switch state is part of the adversarial state).
func NewThreeColor(g *graph.Graph, opts ...Option) *ThreeColor {
	o := buildOptions(opts)
	master := xrand.New(o.seed)
	n := g.N()
	p := &ThreeColor{
		g:        g,
		color:    make([]Color, n),
		next:     make([]Color, n),
		nbrBlack: make([]int32, n),
		// D=3, on iff level ≤ 2; ζ = 2^-switchZetaLog2 (paper: 2^-7).
		clock: phaseclock.New(g, phaseclock.WithZetaLog2(o.switchZetaLog2)),
		rngs:  splitVertexStreams(n, master),
		opts:  o,
		mark:  make([]int32, n),
	}
	irng := initStream(n, master)
	if o.initialBlack == nil && o.init == InitRandom {
		for u := range p.color {
			p.color[u] = Color(1 + irng.Intn(3))
		}
	} else {
		mask := initialBlackMask(g, o, irng)
		for u, b := range mask {
			if b {
				p.color[u] = ColorBlack
			} else {
				p.color[u] = ColorWhite
			}
		}
	}
	p.clock.RandomizeLevels(irng)
	for i := range p.mark {
		p.mark[i] = -1
	}
	if o.trackLocal {
		p.lt = newLocalTimes(n)
	}
	p.recount()
	p.recordLocal()
	return p
}

// inI reports "black with no black neighbor" (membership in I_t).
func (p *ThreeColor) inI(u int) bool {
	return p.color[u] == ColorBlack && p.nbrBlack[u] == 0
}

func (p *ThreeColor) recordLocal() {
	if p.lt != nil {
		p.lt.record(p.g, p.round, p.inI)
	}
}

// StabilizationTimes returns the per-vertex stabilization rounds recorded
// so far (-1 = not yet stable); nil unless WithLocalTimes was set.
func (p *ThreeColor) StabilizationTimes() []int {
	if p.lt == nil {
		return nil
	}
	return p.lt.times()
}

func (p *ThreeColor) recount() {
	for u := range p.nbrBlack {
		p.nbrBlack[u] = 0
	}
	for u, c := range p.color {
		if c != ColorBlack {
			continue
		}
		for _, v := range p.g.Neighbors(u) {
			p.nbrBlack[v]++
		}
	}
	p.activeCnt = p.countActive()
	p.stabilized = p.coverageComplete()
}

// active mirrors the 2-state predicate: black with a black neighbor, or
// white with no black neighbor. Gray vertices are never active — their only
// transition is the switch-gated gray→white.
func (p *ThreeColor) active(u int) bool {
	switch p.color[u] {
	case ColorBlack:
		return p.nbrBlack[u] > 0
	case ColorWhite:
		return p.nbrBlack[u] == 0
	default:
		return false
	}
}

func (p *ThreeColor) countActive() int {
	c := 0
	for u := range p.color {
		if p.active(u) {
			c++
		}
	}
	return c
}

// coverageComplete reports N+(I_t) = V for I_t = stable black vertices;
// monotone as in the other processes (neighbors of a stable black vertex can
// only be white or gray, and neither ever turns black).
func (p *ThreeColor) coverageComplete() bool {
	p.markStamp++
	stamp := p.markStamp
	covered := 0
	for u, c := range p.color {
		if c != ColorBlack || p.nbrBlack[u] != 0 {
			continue
		}
		if p.mark[u] != stamp {
			p.mark[u] = stamp
			covered++
		}
		for _, v := range p.g.Neighbors(u) {
			if p.mark[v] != stamp {
				p.mark[v] = stamp
				covered++
			}
		}
	}
	return covered == p.g.N()
}

// Name implements Process.
func (p *ThreeColor) Name() string { return "3-color" }

// N implements Process.
func (p *ThreeColor) N() int { return p.g.N() }

// Round implements Process.
func (p *ThreeColor) Round() int { return p.round }

// States implements Process: 3 colors × 6 switch levels.
func (p *ThreeColor) States() int { return 3 * p.clock.States() }

// RandomBits implements Process; includes the switch's coins.
func (p *ThreeColor) RandomBits() int64 { return p.bits + p.clock.RandomBits() }

// ActiveCount implements Process.
func (p *ThreeColor) ActiveCount() int { return p.activeCnt }

// Black implements Process.
func (p *ThreeColor) Black(u int) bool { return p.color[u] == ColorBlack }

// ColorOf returns the current color of u.
func (p *ThreeColor) ColorOf(u int) Color { return p.color[u] }

// SwitchLevel returns u's current switch level (0..5).
func (p *ThreeColor) SwitchLevel(u int) uint8 { return p.clock.Level(u) }

// SwitchOn returns u's current switch value.
func (p *ThreeColor) SwitchOn(u int) bool { return p.clock.On(u) }

// GrayCount returns |Γ_t|.
func (p *ThreeColor) GrayCount() int {
	c := 0
	for _, col := range p.color {
		if col == ColorGray {
			c++
		}
	}
	return c
}

// Stabilized implements Process.
func (p *ThreeColor) Stabilized() bool { return p.stabilized }

// Graph returns the underlying graph.
func (p *ThreeColor) Graph() *graph.Graph { return p.g }

// Step implements Process: one synchronous round of Definition 28. The color
// update reads the switch values σ_{t-1} from the end of the previous round;
// the switch then advances in parallel.
func (p *ThreeColor) Step() {
	for u, c := range p.color {
		switch {
		case c == ColorBlack && p.nbrBlack[u] > 0:
			black, cost := p.opts.coin(p.rngs[u])
			if black {
				p.next[u] = ColorBlack
			} else {
				p.next[u] = ColorGray
			}
			p.bits += cost
		case c == ColorWhite && p.nbrBlack[u] == 0:
			black, cost := p.opts.coin(p.rngs[u])
			if black {
				p.next[u] = ColorBlack
			} else {
				p.next[u] = ColorWhite
			}
			p.bits += cost
		case c == ColorGray && p.clock.On(u):
			p.next[u] = ColorWhite
		default:
			p.next[u] = c
		}
	}
	// Advance the switch using the same per-vertex streams, after the color
	// coins (fixed per-round draw order).
	p.clock.Step(func(u int) *xrand.Rand { return p.rngs[u] })
	// Commit colors and update black-neighbor counters.
	for u := range p.color {
		prev, cur := p.color[u], p.next[u]
		if prev == cur {
			continue
		}
		db := b2i(cur == ColorBlack) - b2i(prev == ColorBlack)
		if db != 0 {
			for _, v := range p.g.Neighbors(u) {
				p.nbrBlack[v] += int32(db)
			}
		}
		p.color[u] = cur
	}
	p.round++
	p.activeCnt = p.countActive()
	if !p.stabilized {
		p.stabilized = p.coverageComplete()
	}
	p.recordLocal()
}

// Rebind switches the process (and its switch sub-process) to a new graph
// on the same vertex set, keeping all vertex states (topology churn).
// It panics on order mismatch.
func (p *ThreeColor) Rebind(g *graph.Graph) {
	if g.N() != p.g.N() {
		panic(fmt.Sprintf("mis: Rebind to order %d != %d", g.N(), p.g.N()))
	}
	p.g = g
	p.clock.Rebind(g)
	p.stabilized = false
	p.recount()
	if p.lt != nil {
		p.lt.reset()
		p.recordLocal()
	}
}

// Corrupt overwrites the color and switch level of u mid-run.
func (p *ThreeColor) Corrupt(u int, c Color, level uint8) {
	p.color[u] = c
	p.clock.SetLevel(u, level)
	p.stabilized = false
	p.recount()
	if p.lt != nil {
		p.lt.reset()
		p.recordLocal()
	}
}

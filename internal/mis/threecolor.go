package mis

import (
	"fmt"

	"ssmis/internal/engine"
	"ssmis/internal/engine/kernel"
	"ssmis/internal/graph"
	"ssmis/internal/phaseclock"
	"ssmis/internal/xrand"
)

// Color is a vertex color of the 3-color MIS process.
type Color uint8

// The three colors of Definition 28. Gray vertices are treated as non-black
// by their neighbors; a gray vertex turns white only when its logarithmic
// switch reads "on", which throttles how often a vertex can re-enter the
// white→black competition — the mechanism that makes the dense G(n,p) regime
// tractable.
const (
	ColorWhite Color = iota + 1
	ColorBlack
	ColorGray
)

func (c Color) String() string {
	switch c {
	case ColorWhite:
		return "white"
	case ColorBlack:
		return "black"
	case ColorGray:
		return "gray"
	default:
		return fmt.Sprintf("Color(%d)", uint8(c))
	}
}

// threeColorRule is Definition 28 as an engine rule: the 2-state update rule
// with two changes — an active black vertex randomizes between black and
// gray (not white), and a gray vertex becomes white only when its
// (a, 3)-logarithmic switch (Definition 26, a = 512, ζ = 2^-7) is on. The
// switch runs as the rule's mid-round sub-process on the same per-vertex
// streams: a vertex draws its color coin first (if active) and its switch
// coin second (if at the top level), the order the goroutine runtime
// replays.
//
// Every gray vertex stays on the worklist — whether it drains is decided by
// the switch value at evaluation time, which changes round to round outside
// the engine's counter model.
type threeColorRule struct {
	clock *phaseclock.Clock
	rngs  []*xrand.Rand
}

func (*threeColorRule) NumStates() int { return 3 }

func (*threeColorRule) Class(s uint8) uint8 {
	if Color(s) == ColorBlack {
		return engine.ClassA
	}
	return 0
}

func (*threeColorRule) Black(s uint8) bool { return Color(s) == ColorBlack }

// Active mirrors the 2-state predicate: black with a black neighbor, or
// white with no black neighbor. Gray vertices are never active — their only
// transition is the switch-gated gray→white.
func (*threeColorRule) Active(_ int, s uint8, a, _ int32) bool {
	switch Color(s) {
	case ColorBlack:
		return a > 0
	case ColorWhite:
		return a == 0
	default:
		return false
	}
}

func (r *threeColorRule) Touched(u int, s uint8, a, b int32) bool {
	return Color(s) == ColorGray || r.Active(u, s, a, b)
}

func (r *threeColorRule) Evaluate(u int, s uint8, _, _ int32, d *engine.Draw) uint8 {
	switch Color(s) {
	case ColorBlack: // active: has a black neighbor
		if d.Coin(u) {
			return uint8(ColorBlack)
		}
		return uint8(ColorGray)
	case ColorWhite: // active: no black neighbor
		if d.Coin(u) {
			return uint8(ColorBlack)
		}
		return uint8(ColorWhite)
	default: // gray, gated by the switch value σ_{t-1}
		if r.clock.On(u) {
			return uint8(ColorWhite)
		}
		return uint8(ColorGray)
	}
}

// MidRound advances the switch one synchronous round on the shared
// per-vertex streams, after the color coins and before the commit.
func (r *threeColorRule) MidRound() {
	r.clock.Step(func(u int) *xrand.Rand { return r.rngs[u] })
}

// threeColorProg is Definition 28 as a compiled lane program: the 2-state
// tables plus a gray code (10) that is always touched, never active, and
// whose forced transition is gated — gray→white when the vertex's switch
// bit is on, gray→gray otherwise. The engine re-exports the gate lane after
// every MidRound (ExportGate below), so evaluation reads σ_{t-1} exactly as
// the scalar Evaluate does.
var threeColorProg = kernel.MustCompile(kernel.Spec{
	StateOf: [4]uint8{uint8(ColorWhite), uint8(ColorBlack), uint8(ColorGray), 0},
	UseGate: true,
	Active: kernel.TruthTable(func(code int, a, _ bool) bool {
		switch code {
		case 1: // black
			return a
		case 0: // white
			return !a
		default: // gray (code 3 unused)
			return false
		}
	}),
	Touched: kernel.TruthTable(func(code int, a, _ bool) bool {
		switch code {
		case 1:
			return a
		case 0:
			return !a
		case 2: // gray: whether it drains is the switch's call, not the counters'
			return true
		default:
			return false
		}
	}),
	CoinHi:    [4]uint8{1, 1, 0, 0}, // active white/black → black on coin 1
	CoinLo:    [4]uint8{0, 2, 0, 0}, // white stays white, black retreats to gray
	ForcedOn:  [4]uint8{0, 0, 0, 0}, // gray with switch on → white
	ForcedOff: [4]uint8{0, 0, 2, 0}, // gray with switch off stays gray
})

// LaneProgram marks the rule for the engine's bit-sliced kernel; the
// mid-round switch participates through ExportGate.
func (*threeColorRule) LaneProgram() *kernel.Program { return threeColorProg }

// ExportGate packs the per-vertex switch values into the kernel's gate lane
// (engine.KernelGate), called by the engine after every MidRound and at
// Rebuild.
func (r *threeColorRule) ExportGate(dst []uint64) { r.clock.ExportOn(dst) }

// ThreeColor is the paper's 3-color MIS process (Definition 28) with the
// randomized logarithmic switch sub-process; total state space is 3 × 6 = 18
// states per vertex. It is a thin rule over the shared frontier engine.
type ThreeColor struct {
	core *engine.Core
	rule *threeColorRule
	opts options
	// g is the caller's graph in original vertex ids; ord the locality
	// relabeling the engine and switch run under (nil = identity, order.go).
	g   *graph.Graph
	ord *graph.Ordering
}

var _ Process = (*ThreeColor)(nil)

// NewThreeColor creates a 3-color process on g. InitRandom draws colors
// uniformly from {white, black, gray} and switch levels uniformly from
// [0, 5]; mask-based initializers map black→black, white→white with uniform
// random switch levels (the switch state is part of the adversarial state).
func NewThreeColor(g *graph.Graph, opts ...Option) *ThreeColor {
	o := buildOptions(opts)
	master := xrand.New(o.seed)
	n := g.N()
	ord := orderingFor(g, o)
	eg := engineGraph(g, ord)
	state := stateBuf(n, o.ctx)
	irng := initStream(n, master)
	// Initialization coins (colors, then switch levels below) are drawn in
	// original vertex order; only the storage slot is relabeled.
	if o.initialBlack == nil && o.init == InitRandom {
		for u := 0; u < n; u++ {
			state[ord.NewID(u)] = uint8(1 + irng.Intn(3))
		}
	} else {
		for u, b := range initialBlackMask(g, o, irng) {
			s := uint8(ColorWhite)
			if b {
				s = uint8(ColorBlack)
			}
			state[ord.NewID(u)] = s
		}
	}
	// D=3, on iff level ≤ 2; ζ = 2^-switchZetaLog2 (paper: 2^-7). A run
	// context leases the clock's level arrays too, so a context-backed
	// 3-color run makes no per-run O(n) allocation at all. The clock lives
	// in the engine's (possibly relabeled) vertex space.
	var clock *phaseclock.Clock
	if o.ctx != nil {
		levels, next := o.ctx.ClockBufs(n)
		clock = phaseclock.New(eg, phaseclock.WithZetaLog2(o.switchZetaLog2),
			phaseclock.WithBuffers(levels, next))
	} else {
		clock = phaseclock.New(eg, phaseclock.WithZetaLog2(o.switchZetaLog2))
	}
	rule := &threeColorRule{
		clock: clock,
		rngs:  splitVertexStreams(n, master, o.ctx, ord),
	}
	rule.clock.RandomizeLevelsPerm(irng, ordPerm(ord))
	return &ThreeColor{
		core: engine.New(eg, rule, state, rule.rngs, o.engine(false, ord)),
		rule: rule,
		opts: o,
		g:    g,
		ord:  ord,
	}
}

// StabilizationTimes returns the per-vertex stabilization rounds recorded
// so far (-1 = not yet stable); nil unless WithLocalTimes was set.
func (p *ThreeColor) StabilizationTimes() []int {
	return stabilizationTimes(p.core, p.opts)
}

// Name implements Process.
func (p *ThreeColor) Name() string { return "3-color" }

// N implements Process.
func (p *ThreeColor) N() int { return p.core.Graph().N() }

// Round implements Process.
func (p *ThreeColor) Round() int { return p.core.Round() }

// States implements Process: 3 colors × 6 switch levels.
func (p *ThreeColor) States() int { return 3 * p.rule.clock.States() }

// RandomBits implements Process; includes the switch's coins.
func (p *ThreeColor) RandomBits() int64 { return p.core.Bits() + p.rule.clock.RandomBits() }

// ActiveCount implements Process.
func (p *ThreeColor) ActiveCount() int { return p.core.ActiveCount() }

// Black implements Process.
func (p *ThreeColor) Black(u int) bool { return Color(p.core.State(p.ord.NewID(u))) == ColorBlack }

// ColorOf returns the current color of u.
func (p *ThreeColor) ColorOf(u int) Color { return Color(p.core.State(p.ord.NewID(u))) }

// SwitchLevel returns u's current switch level (0..5).
func (p *ThreeColor) SwitchLevel(u int) uint8 { return p.rule.clock.Level(p.ord.NewID(u)) }

// SwitchOn returns u's current switch value.
func (p *ThreeColor) SwitchOn(u int) bool { return p.rule.clock.On(p.ord.NewID(u)) }

// GrayCount returns |Γ_t|.
func (p *ThreeColor) GrayCount() int { return p.core.StateCount(uint8(ColorGray)) }

// Stabilized implements Process.
func (p *ThreeColor) Stabilized() bool { return p.core.Stabilized() }

// Graph returns the underlying graph (the caller's, in original vertex ids).
func (p *ThreeColor) Graph() *graph.Graph { return p.g }

// Step implements Process: one synchronous round of Definition 28. The color
// update reads the switch values σ_{t-1} from the end of the previous round;
// the switch then advances in parallel.
func (p *ThreeColor) Step() { p.core.Step() }

// Rebind switches the process (and its switch sub-process) to a new graph
// on the same vertex set, keeping all vertex states (topology churn); a
// held relabeling is carried over to the new graph. It panics on order
// mismatch.
func (p *ThreeColor) Rebind(g *graph.Graph) {
	p.g = g
	if p.ord != nil {
		p.ord = p.ord.Rebind(g)
		p.rule.clock.Rebind(p.ord.G)
		p.core.RebindOrdered(p.ord)
		return
	}
	p.rule.clock.Rebind(g)
	p.core.Rebind(g)
}

// Corrupt overwrites the color and switch level of u mid-run.
func (p *ThreeColor) Corrupt(u int, c Color, level uint8) {
	i := p.ord.NewID(u)
	p.core.States()[i] = uint8(c)
	p.rule.clock.SetLevel(i, level)
	p.core.Rebuild()
}

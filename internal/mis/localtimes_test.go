package mis

import (
	"testing"

	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

func TestLocalTimesRecorded(t *testing.T) {
	g := graph.Gnp(120, 0.06, xrand.New(81))
	p := NewTwoState(g, WithSeed(3), WithLocalTimes())
	res := Run(p, 10000)
	if !res.Stabilized {
		t.Fatal("did not stabilize")
	}
	times := p.StabilizationTimes()
	if len(times) != g.N() {
		t.Fatalf("times length %d", len(times))
	}
	maxT := 0
	for u, ti := range times {
		if ti < 0 {
			t.Fatalf("vertex %d has no stabilization time after global stabilization", u)
		}
		if ti > res.Rounds {
			t.Fatalf("vertex %d time %d exceeds global %d", u, ti, res.Rounds)
		}
		if ti > maxT {
			maxT = ti
		}
	}
	// The global stabilization round is the maximum local one.
	if maxT != res.Rounds {
		t.Fatalf("max local time %d != global rounds %d", maxT, res.Rounds)
	}
}

func TestLocalTimesNilWhenDisabled(t *testing.T) {
	p := NewTwoState(graph.Path(5), WithSeed(1))
	if p.StabilizationTimes() != nil {
		t.Fatal("times returned without WithLocalTimes")
	}
}

func TestLocalTimesMonotoneUnderSteps(t *testing.T) {
	g := graph.Gnp(80, 0.08, xrand.New(82))
	p := NewTwoState(g, WithSeed(5), WithLocalTimes())
	prev := p.StabilizationTimes()
	for i := 0; i < 200 && !p.Stabilized(); i++ {
		p.Step()
		cur := p.StabilizationTimes()
		for u := range cur {
			if prev[u] >= 0 && cur[u] != prev[u] {
				t.Fatalf("vertex %d stabilization time changed %d -> %d", u, prev[u], cur[u])
			}
		}
		prev = cur
	}
}

func TestLocalTimesAllProcesses(t *testing.T) {
	g := graph.Gnp(60, 0.1, xrand.New(83))
	type timed interface {
		StabilizationTimes() []int
	}
	procs := []Process{
		NewTwoState(g, WithSeed(7), WithLocalTimes()),
		NewThreeState(g, WithSeed(7), WithLocalTimes()),
		NewThreeColor(g, WithSeed(7), WithLocalTimes()),
	}
	for _, p := range procs {
		Run(p, 20000)
		if !p.Stabilized() {
			t.Fatalf("%s did not stabilize", p.Name())
		}
		times := p.(timed).StabilizationTimes()
		for u, ti := range times {
			if ti < 0 {
				t.Fatalf("%s: vertex %d unrecorded", p.Name(), u)
			}
		}
	}
}

func TestLocalTimesResetOnCorruption(t *testing.T) {
	g := graph.Path(6)
	p := NewTwoState(g, WithSeed(9), WithLocalTimes())
	Run(p, 1000)
	p.Corrupt(2, !p.Black(2))
	times := p.StabilizationTimes()
	// After a reset, only currently-covered vertices carry times, and those
	// carry the current round, not historic rounds.
	for u, ti := range times {
		if ti >= 0 && ti != p.Round() {
			t.Fatalf("vertex %d kept stale time %d after corruption (round %d)", u, ti, p.Round())
		}
	}
	Run(p, 1000)
	if !p.Stabilized() {
		t.Fatal("no recovery")
	}
}

// Local vs global: on a long path, the mean local stabilization time should
// be well below the global maximum — stabilization is locally fast and the
// global bound is a straggler phenomenon.
func TestLocalTimesMeanBelowGlobal(t *testing.T) {
	g := graph.Path(2000)
	p := NewTwoState(g, WithSeed(11), WithLocalTimes())
	res := Run(p, 100000)
	if !res.Stabilized {
		t.Fatal("did not stabilize")
	}
	sum := 0
	for _, ti := range p.StabilizationTimes() {
		sum += ti
	}
	mean := float64(sum) / float64(g.N())
	if mean >= float64(res.Rounds)*0.8 {
		t.Fatalf("mean local time %.1f not well below global %d", mean, res.Rounds)
	}
}

package mis

import (
	"testing"

	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

// counterPlaneOf exposes the engine's resolved counter-plane geometry for a
// process (the zero Info on the complete-graph fast path).
func counterPlaneOf(p Process) engine.CounterPlaneInfo {
	switch q := p.(type) {
	case *TwoState:
		return q.core.CounterPlane()
	case *ThreeState:
		return q.core.CounterPlane()
	case *ThreeColor:
		return q.core.CounterPlane()
	default:
		return engine.CounterPlaneInfo{}
	}
}

// The auto layout policy, observed through the public geometry: a star packs
// one hub and a unit-degree tail (split, byte lanes); a bounded-degree
// caterpillar has no hub prefix (narrow); weight-sorted power-law ids pack a
// whole lane word of hubs first (split, populated prefix); the complete
// graph runs its fast path with no plane at all.
func TestCounterLayoutAuto(t *testing.T) {
	cases := []struct {
		name      string
		g         *graph.Graph
		layout    engine.CounterLayout
		widthBits int
		minHub    int
	}{
		{"star", graph.Star(700), engine.LayoutSplit, 8, 1},
		{"caterpillar", graph.Caterpillar(120, 5), engine.LayoutNarrow, 8, 0},
		{"powerlaw", graph.ChungLu(8000, 2.0, 10, xrand.New(42)), engine.LayoutSplit, 8, 64},
	}
	for _, c := range cases {
		info := counterPlaneOf(NewTwoState(c.g, WithSeed(1)))
		if !info.Active || info.FellBack {
			t.Fatalf("%s: plane inactive or fell back: %+v", c.name, info)
		}
		if info.Layout != c.layout || info.WidthBits != c.widthBits || info.HubLen < c.minHub {
			t.Fatalf("%s: resolved %+v, want layout=%v width=%d hub>=%d",
				c.name, info, c.layout, c.widthBits, c.minHub)
		}
	}
	if info := counterPlaneOf(NewTwoState(graph.Complete(256), WithSeed(1))); info.Active {
		t.Fatalf("complete graph configured a counter plane: %+v", info)
	}
}

// The loud fallback: forcing narrow lanes on a star whose center degree
// exceeds 16 bits cannot honor a sub-32-bit width, so the plane must fall
// back to int32 and say so — and the fallback execution must still replay
// the flat layout bit for bit. A forced split on the same graph needs no
// fallback: the center lands in the hub prefix and the tail is unit-degree.
func TestCounterLayoutOverflowFallback(t *testing.T) {
	g := graph.Star(70000) // center degree 69999 > 0xFFFF
	cap := 4 * DefaultRoundCap(g.N())

	flat := NewTwoState(g, WithSeed(9), WithCounterLayout(engine.LayoutFlat))
	if info := counterPlaneOf(flat); !info.Active || info.WidthBits != 32 || info.FellBack {
		t.Fatalf("flat plane: %+v", info)
	}
	flatRes := Run(flat, cap)
	if !flatRes.Stabilized {
		t.Fatal("flat run did not stabilize")
	}

	narrow := NewTwoState(g, WithSeed(9), WithCounterLayout(engine.LayoutNarrow))
	info := counterPlaneOf(narrow)
	if !info.Active || !info.FellBack || info.WidthBits != 32 || info.HubLen != 0 {
		t.Fatalf("forced narrow on star(70000) resolved %+v, want a loud int32 fallback", info)
	}
	if res := Run(narrow, cap); res != flatRes {
		t.Fatalf("fallback run %+v, flat %+v", res, flatRes)
	}
	for u := 0; u < g.N(); u++ {
		if narrow.Black(u) != flat.Black(u) {
			t.Fatalf("color of %d diverged between fallback and flat", u)
		}
	}

	split := NewTwoState(g, WithSeed(9), WithCounterLayout(engine.LayoutSplit), WithWorkers(8))
	if info := counterPlaneOf(split); !info.Active || info.FellBack || info.WidthBits != 8 || info.HubLen != 1 {
		t.Fatalf("forced split on star(70000) resolved %+v, want hub=1 byte tail", info)
	}
	if res := Run(split, cap); res != flatRes {
		t.Fatalf("split workers=8 run %+v, flat %+v", res, flatRes)
	}
}

// A run context leased across graphs whose planes resolve to different
// layouts (split -> narrow -> flat fallback -> split) must reconfigure the
// plane without leaking cells between runs: each context-backed run must
// equal its context-free execution exactly. CheckIntegrity-style layout
// invariants are enforced inside the engine; here the observable contract
// is checked end to end.
func TestCounterLayoutRunContextReuse(t *testing.T) {
	ctx := engine.NewRunContext()
	graphs := []*graph.Graph{
		graph.ChungLu(8000, 2.0, 10, xrand.New(42)), // split, byte tail
		graph.Caterpillar(200, 3),                   // narrow, byte lanes
		graph.Star(70000),                           // narrow request would fall back; auto picks split
		graph.Gnp(500, 0.05, xrand.New(8)),          // narrow
	}
	for i, g := range graphs {
		for _, workers := range []int{1, 8} {
			seed := uint64(20 + i)
			cap := 4 * DefaultRoundCap(g.N())
			ref := Run(NewThreeState(g, WithSeed(seed), WithWorkers(workers)), cap)
			got := Run(NewThreeState(g, WithSeed(seed), WithWorkers(workers), WithRunContext(ctx)), cap)
			if got != ref {
				t.Fatalf("graph %d workers=%d: context-backed %+v vs fresh %+v", i, workers, got, ref)
			}
		}
	}
}

// Forced layouts must keep checkpoint/restore exact: a run checkpointed
// mid-flight under the split plane and restored under flat (and vice versa)
// continues the identical execution — the plane is storage, not state.
func TestCounterLayoutCheckpointCrossLayout(t *testing.T) {
	g := graph.ChungLu(3000, 2.0, 8, xrand.New(7))
	cap := 4 * DefaultRoundCap(g.N())
	for _, pair := range [][2]engine.CounterLayout{
		{engine.LayoutSplit, engine.LayoutFlat},
		{engine.LayoutFlat, engine.LayoutNarrow},
	} {
		ref := NewTwoState(g, WithSeed(33), WithCounterLayout(pair[0]))
		for i := 0; i < 3 && !ref.Stabilized(); i++ {
			ref.Step()
		}
		ck, err := ref.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		refRes := Run(ref, cap)
		restored, err := RestoreTwoState(g, ck, WithCounterLayout(pair[1]))
		if err != nil {
			t.Fatal(err)
		}
		if res := Run(restored, cap); res != refRes {
			t.Fatalf("%v->%v: restored %+v, reference %+v", pair[0], pair[1], res, refRes)
		}
		for u := 0; u < g.N(); u++ {
			if restored.Black(u) != ref.Black(u) {
				t.Fatalf("%v->%v: color of %d diverged", pair[0], pair[1], u)
			}
		}
	}
}

package mis

// Golden seed-lineage tests: the engine-based simulators must reproduce the
// exact executions of the pre-engine (seed) simulators. The expected values
// below — rounds to stabilization, total random bits, black-set size and an
// FNV-1a hash of the black mask — were captured from the seed implementations
// for a matrix of (graph, process, seed, init, option-variant) cases. Any
// divergence means the refactor changed coins or transition semantics.

import (
	"hash/fnv"
	"testing"

	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

func goldenGraph(name string) *graph.Graph {
	switch name {
	case "gnp80":
		return graph.Gnp(80, 0.08, xrand.New(5))
	case "chunglu90":
		return graph.ChungLu(90, 2.5, 6, xrand.New(6))
	case "grid8x8":
		return graph.Grid(8, 8)
	case "cliques5x6":
		return graph.DisjointCliques(5, 6)
	case "clique32":
		return graph.Complete(32)
	case "path17":
		return graph.Path(17)
	case "star33":
		return graph.Star(33)
	default:
		panic(name)
	}
}

func goldenProcess(kind string, g *graph.Graph, opts ...Option) Process {
	switch kind {
	case "2state":
		return NewTwoState(g, opts...)
	case "3state":
		return NewThreeState(g, opts...)
	case "3color":
		return NewThreeColor(g, opts...)
	default:
		panic(kind)
	}
}

func goldenBlackHash(p Process) uint64 {
	h := fnv.New64a()
	for u := 0; u < p.N(); u++ {
		b := byte(0)
		if p.Black(u) {
			b = 1
		}
		h.Write([]byte{b})
	}
	return h.Sum64()
}

type goldenCase struct {
	graph   string
	kind    string
	seed    uint64
	init    Init
	variant string
	rounds  int
	bits    int64
	blacks  int
	hash    uint64
}

var goldenCases = []goldenCase{
	{"gnp80", "2state", 1, Init(1), "", 9, 111, 28, 0x2c3449d6f5698909},
	{"gnp80", "2state", 1, Init(3), "", 5, 146, 24, 0x3e134be4e13aaffd},
	{"gnp80", "2state", 7, Init(1), "", 7, 102, 25, 0x1d6016f26945db42},
	{"gnp80", "2state", 7, Init(3), "", 7, 146, 25, 0x9524d25e440e46b8},
	{"gnp80", "3state", 1, Init(1), "", 4, 108, 27, 0xb4653c7c5452a3f6},
	{"gnp80", "3state", 1, Init(3), "", 6, 214, 24, 0x3e134be4e13aaffd},
	{"gnp80", "3state", 7, Init(1), "", 7, 176, 25, 0x9803b70800f556ae},
	{"gnp80", "3state", 7, Init(3), "", 7, 240, 25, 0x9524d25e440e46b8},
	{"gnp80", "3color", 1, Init(1), "", 382, 21127, 27, 0x6f93175a651f4452},
	{"gnp80", "3color", 1, Init(3), "", 784, 93514, 24, 0xef176c743866a841},
	{"gnp80", "3color", 7, Init(1), "", 439, 17450, 26, 0xec85b53a3bb0b637},
	{"gnp80", "3color", 7, Init(3), "", 545, 18961, 26, 0xfd0b44b575ea8ef9},
	{"chunglu90", "2state", 1, Init(1), "", 12, 161, 39, 0x504483a3a124a068},
	{"chunglu90", "2state", 1, Init(3), "", 13, 260, 41, 0x554cb9b4a0d2be46},
	{"chunglu90", "2state", 7, Init(1), "", 8, 127, 40, 0xa04d12dcf908298b},
	{"chunglu90", "2state", 7, Init(3), "", 10, 205, 43, 0x71598cdb5f26d57e},
	{"chunglu90", "3state", 1, Init(1), "", 4, 135, 37, 0xbbe44ab3eaa73c72},
	{"chunglu90", "3state", 1, Init(3), "", 9, 429, 42, 0xcf090a9851d195ff},
	{"chunglu90", "3state", 7, Init(1), "", 5, 194, 38, 0xfc63b5bc7e68185d},
	{"chunglu90", "3state", 7, Init(3), "", 6, 298, 40, 0x55f0436f58de3e75},
	{"chunglu90", "3color", 1, Init(1), "", 562, 34220, 41, 0x45e473f5ab019eb0},
	{"chunglu90", "3color", 1, Init(3), "", 703, 44876, 41, 0x854738186369d9ec},
	{"chunglu90", "3color", 7, Init(1), "", 559, 30553, 41, 0xfbdfb9fb270d2c2c},
	{"chunglu90", "3color", 7, Init(3), "", 356, 22478, 41, 0x9dc45f0d59fdc5fc},
	{"grid8x8", "2state", 1, Init(1), "", 5, 68, 24, 0xda88b28e6567d311},
	{"grid8x8", "2state", 1, Init(3), "", 8, 138, 23, 0x78b8be56b475b1c2},
	{"grid8x8", "2state", 7, Init(1), "", 6, 96, 23, 0xcd9d7e0807cd244e},
	{"grid8x8", "2state", 7, Init(3), "", 8, 125, 24, 0xee43acff0ed67baf},
	{"grid8x8", "3state", 1, Init(1), "", 3, 78, 28, 0x637684eb5b38962f},
	{"grid8x8", "3state", 1, Init(3), "", 8, 234, 23, 0x3d68bf0953266052},
	{"grid8x8", "3state", 7, Init(1), "", 5, 118, 24, 0xa3fc1bf4b59cce1},
	{"grid8x8", "3state", 7, Init(3), "", 7, 216, 24, 0xebcb3777eae1ed2f},
	{"grid8x8", "3color", 1, Init(1), "", 369, 18599, 28, 0xd2ddec239ba824f1},
	{"grid8x8", "3color", 1, Init(3), "", 240, 19233, 23, 0xb4b1941312e40f48},
	{"grid8x8", "3color", 7, Init(1), "", 546, 36931, 27, 0x688b466524400d3a},
	{"grid8x8", "3color", 7, Init(3), "", 561, 43206, 25, 0x4107cf44d8d2d3ee},
	{"cliques5x6", "2state", 1, Init(1), "", 4, 30, 5, 0x5095d07e2c13d06c},
	{"cliques5x6", "2state", 1, Init(3), "", 4, 55, 5, 0x1b1959afec2defb4},
	{"cliques5x6", "2state", 7, Init(1), "", 6, 75, 5, 0x24fc5d57d367e784},
	{"cliques5x6", "2state", 7, Init(3), "", 7, 70, 5, 0xf314372b162f0abc},
	{"cliques5x6", "3state", 1, Init(1), "", 6, 43, 5, 0x8e792d6951f2f2d2},
	{"cliques5x6", "3state", 1, Init(3), "", 4, 56, 5, 0x1b1959afec2defb4},
	{"cliques5x6", "3state", 7, Init(1), "", 6, 50, 5, 0xf9623cb78be05802},
	{"cliques5x6", "3state", 7, Init(3), "", 6, 65, 5, 0x342e4dacf5c1290c},
	{"cliques5x6", "3color", 1, Init(1), "", 2, 154, 5, 0x33c96b96d65896ec},
	{"cliques5x6", "3color", 1, Init(3), "", 146, 10780, 5, 0x3e7af71314afd94c},
	{"cliques5x6", "3color", 7, Init(1), "", 2, 138, 5, 0x67f9996377d4cd1c},
	{"cliques5x6", "3color", 7, Init(3), "", 173, 8796, 5, 0x9a638d934439dd0e},
	{"clique32", "2state", 1, Init(1), "", 14, 173, 1, 0xffd32d4dd03b8b42},
	{"clique32", "2state", 1, Init(3), "", 10, 141, 1, 0xffd32d4dd03b8b42},
	{"clique32", "2state", 7, Init(1), "", 3, 25, 1, 0x159d2407c35dc00c},
	{"clique32", "2state", 7, Init(3), "", 10, 113, 1, 0xea9cd64b1dd4796a},
	{"clique32", "3state", 1, Init(1), "", 4, 21, 1, 0xb108fa874dcee4c},
	{"clique32", "3state", 1, Init(3), "", 8, 64, 1, 0x6c87646ff7553914},
	{"clique32", "3state", 7, Init(1), "", 4, 20, 1, 0x159d2407c35dc00c},
	{"clique32", "3state", 7, Init(3), "", 7, 58, 1, 0x2febac455f992f6c},
	{"clique32", "3color", 1, Init(1), "", 3, 214, 1, 0x6c87646ff7553914},
	{"clique32", "3color", 1, Init(3), "", 249, 7934, 1, 0x2a55549625537cd4},
	{"clique32", "3color", 7, Init(1), "", 10, 904, 1, 0xea9cd64b1dd4796a},
	{"clique32", "3color", 7, Init(3), "", 566, 10390, 1, 0xea9cd64b1dd4796a},
	{"path17", "2state", 1, Init(1), "", 7, 26, 8, 0xf95c03c19b72461f},
	{"path17", "2state", 1, Init(3), "", 7, 43, 8, 0xf95c03c19b72461f},
	{"path17", "2state", 7, Init(1), "", 5, 15, 8, 0xdf74a1d3f6656d5f},
	{"path17", "2state", 7, Init(3), "", 5, 24, 8, 0x53c12ad6d09bce0f},
	{"path17", "3state", 1, Init(1), "", 5, 45, 8, 0x900c95bd3c77567},
	{"path17", "3state", 1, Init(3), "", 8, 78, 8, 0xf95c03c19b72461f},
	{"path17", "3state", 7, Init(1), "", 7, 54, 8, 0x620e37b94a2769af},
	{"path17", "3state", 7, Init(3), "", 3, 34, 8, 0x53c12ad6d09bce0f},
	{"path17", "3color", 1, Init(1), "", 9, 478, 8, 0xc76060df588b4d9d},
	{"path17", "3color", 1, Init(3), "", 176, 7032, 8, 0xd8c178949e2cef6f},
	{"path17", "3color", 7, Init(1), "", 3, 134, 7, 0xf1150b5df7345f4c},
	{"path17", "3color", 7, Init(3), "", 24, 1075, 8, 0x53c12ad6d09bce0f},
	{"star33", "2state", 1, Init(1), "", 9, 65, 32, 0xf85529476a84237f},
	{"star33", "2state", 1, Init(3), "", 9, 65, 32, 0xf85529476a84237f},
	{"star33", "2state", 7, Init(1), "", 6, 69, 32, 0xf85529476a84237f},
	{"star33", "2state", 7, Init(3), "", 5, 69, 32, 0xf85529476a84237f},
	{"star33", "3state", 1, Init(1), "", 2, 59, 32, 0xf85529476a84237f},
	{"star33", "3state", 1, Init(3), "", 2, 65, 32, 0xf85529476a84237f},
	{"star33", "3state", 7, Init(1), "", 3, 49, 32, 0xf85529476a84237f},
	{"star33", "3state", 7, Init(3), "", 2, 65, 32, 0xf85529476a84237f},
	{"star33", "3color", 1, Init(1), "", 386, 11787, 32, 0xf85529476a84237f},
	{"star33", "3color", 1, Init(3), "", 243, 6803, 32, 0xf85529476a84237f},
	{"star33", "3color", 7, Init(1), "", 319, 7518, 32, 0xf85529476a84237f},
	{"star33", "3color", 7, Init(3), "", 232, 7864, 32, 0xf85529476a84237f},
	{"gnp80", "2state", 3, Init(1), "bias", 15, 10176, 28, 0x2436ea59d88c2c81},
	{"gnp80", "3color", 3, Init(1), "bias", 304, 26055, 22, 0x85edf10681308b05},
	{"gnp80", "3color", 3, Init(1), "zeta5", 101, 3265, 27, 0xbe43883ff2d31326},
	{"clique32", "2state", 3, Init(2), "bias", 10, 6784, 1, 0x159d2407c35dc00c},
}

func goldenOptions(c goldenCase) []Option {
	opts := []Option{WithSeed(c.seed), WithInit(c.init)}
	switch c.variant {
	case "":
	case "bias":
		p := 0.25
		if c.graph == "clique32" {
			p = 0.75
		}
		opts = append(opts, WithBlackBias(p))
	case "zeta5":
		opts = append(opts, WithSwitchZetaLog2(5))
	default:
		panic(c.variant)
	}
	return opts
}

func TestGoldenSeedLineage(t *testing.T) {
	for _, c := range goldenCases {
		g := goldenGraph(c.graph)
		p := goldenProcess(c.kind, g, goldenOptions(c)...)
		res := Run(p, 4*DefaultRoundCap(g.N()))
		if !res.Stabilized {
			t.Errorf("%s/%s seed %d init %v %s: did not stabilize", c.graph, c.kind, c.seed, c.init, c.variant)
			continue
		}
		blacks := 0
		for u := 0; u < p.N(); u++ {
			if p.Black(u) {
				blacks++
			}
		}
		if res.Rounds != c.rounds || res.RandomBits != c.bits || blacks != c.blacks || goldenBlackHash(p) != c.hash {
			t.Errorf("%s/%s seed %d init %v %s: got (rounds=%d bits=%d blacks=%d hash=%#x), want (%d %d %d %#x)",
				c.graph, c.kind, c.seed, c.init, c.variant,
				res.Rounds, res.RandomBits, blacks, goldenBlackHash(p),
				c.rounds, c.bits, c.blacks, c.hash)
		}
	}
}

// TestGoldenParallelMatches replays every golden case with WithWorkers(4):
// the parallel path must reproduce the same execution bit for bit.
func TestGoldenParallelMatches(t *testing.T) {
	for _, c := range goldenCases {
		if c.variant != "" {
			continue
		}
		g := goldenGraph(c.graph)
		p := goldenProcess(c.kind, g, append(goldenOptions(c), WithWorkers(4))...)
		res := Run(p, 4*DefaultRoundCap(g.N()))
		if !res.Stabilized || res.Rounds != c.rounds || res.RandomBits != c.bits || goldenBlackHash(p) != c.hash {
			t.Errorf("%s/%s seed %d init %v workers=4: got (stab=%v rounds=%d bits=%d hash=%#x), want (%d %d %#x)",
				c.graph, c.kind, c.seed, c.init, res.Stabilized, res.Rounds, res.RandomBits, goldenBlackHash(p),
				c.rounds, c.bits, c.hash)
		}
	}
}

// Golden per-vertex stabilization-time checksums, captured from the seed
// simulators with WithLocalTimes on gnp80, seed 11.
func TestGoldenLocalTimes(t *testing.T) {
	want := map[string]int{
		"2state": 201,
		"3state": 176,
		"3color": 2028,
	}
	for kind, wantSum := range want {
		g := goldenGraph("gnp80")
		p := goldenProcess(kind, g, WithSeed(11), WithLocalTimes())
		Run(p, 4*DefaultRoundCap(g.N()))
		sum := 0
		for _, r := range p.(interface{ StabilizationTimes() []int }).StabilizationTimes() {
			sum += r
		}
		if sum != wantSum {
			t.Errorf("%s local times checksum = %d, want %d", kind, sum, wantSum)
		}
	}
}

package mis

// Option validation: configuration errors must fail loudly at option
// construction, and every option must act on every process (WithWorkers was
// historically a 2-state-only silent no-op).

import (
	"math"
	"testing"

	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", name)
		}
	}()
	fn()
}

func TestOptionValidationPanics(t *testing.T) {
	mustPanic(t, "bias 0", func() { WithBlackBias(0) })
	mustPanic(t, "bias 1", func() { WithBlackBias(1) })
	mustPanic(t, "bias negative", func() { WithBlackBias(-0.2) })
	mustPanic(t, "bias above 1", func() { WithBlackBias(1.5) })
	mustPanic(t, "bias NaN", func() { WithBlackBias(math.NaN()) })
	mustPanic(t, "negative workers", func() { WithWorkers(-1) })
	mustPanic(t, "zeta 0", func() { WithSwitchZetaLog2(0) })
	mustPanic(t, "zeta 65", func() { WithSwitchZetaLog2(65) })
}

func TestOptionBoundaryValuesAccepted(t *testing.T) {
	g := graph.Path(4)
	// Workers 0 and 1 select the sequential engine; extreme-but-legal biases
	// and zeta values construct fine.
	for _, opt := range [][]Option{
		{WithWorkers(0)}, {WithWorkers(1)},
		{WithBlackBias(0.001)}, {WithBlackBias(0.999)},
		{WithSwitchZetaLog2(1)}, {WithSwitchZetaLog2(64)},
	} {
		Run(NewTwoState(g, opt...), 1000)
		Run(NewThreeColor(g, opt...), 1000)
	}
}

// WithWorkers must act on all three processes and stay bit-identical to the
// sequential engine for each.
func TestWorkersActOnAllProcesses(t *testing.T) {
	g := graph.Gnp(400, 0.01, xrand.New(55))
	type mk func(opts ...Option) Process
	cases := map[string]mk{
		"2-state": func(opts ...Option) Process { return NewTwoState(g, opts...) },
		"3-state": func(opts ...Option) Process { return NewThreeState(g, opts...) },
		"3-color": func(opts ...Option) Process { return NewThreeColor(g, opts...) },
	}
	for name, newProc := range cases {
		seq := newProc(WithSeed(6))
		par := newProc(WithSeed(6), WithWorkers(6))
		for i := 0; i < 3000 && !seq.Stabilized(); i++ {
			seq.Step()
			par.Step()
			for u := 0; u < g.N(); u++ {
				if seq.Black(u) != par.Black(u) {
					t.Fatalf("%s round %d: workers diverged at %d", name, seq.Round(), u)
				}
			}
		}
		if !par.Stabilized() || seq.RandomBits() != par.RandomBits() || seq.Round() != par.Round() {
			t.Fatalf("%s: parallel accounting diverged (stab=%v bits %d/%d rounds %d/%d)",
				name, par.Stabilized(), seq.RandomBits(), par.RandomBits(), seq.Round(), par.Round())
		}
	}
}

// WithBlackBias must act on all three processes (historically the 3-state
// process silently ignored it).
func TestBlackBiasActsOnAllProcesses(t *testing.T) {
	g := graph.Gnp(300, 0.02, xrand.New(56))
	for name, newProc := range map[string]func(opts ...Option) Process{
		"2-state": func(opts ...Option) Process { return NewTwoState(g, opts...) },
		"3-state": func(opts ...Option) Process { return NewThreeState(g, opts...) },
		"3-color": func(opts ...Option) Process { return NewThreeColor(g, opts...) },
	} {
		fair := newProc(WithSeed(8))
		biased := newProc(WithSeed(8), WithBlackBias(0.9))
		Run(fair, 20000)
		Run(biased, 20000)
		// A biased coin costs 64 bits per draw instead of 1; if the bias were
		// ignored the totals would match the fair run's accounting model.
		if biased.RandomBits() <= fair.RandomBits() {
			t.Fatalf("%s: bias seems ignored (bits %d vs fair %d)",
				name, biased.RandomBits(), fair.RandomBits())
		}
	}
}

func TestFullRescanMatchesFrontier(t *testing.T) {
	g := graph.Gnp(250, 0.03, xrand.New(57))
	for name, newProc := range map[string]func(opts ...Option) Process{
		"2-state": func(opts ...Option) Process { return NewTwoState(g, opts...) },
		"3-state": func(opts ...Option) Process { return NewThreeState(g, opts...) },
		"3-color": func(opts ...Option) Process { return NewThreeColor(g, opts...) },
	} {
		frontier := newProc(WithSeed(4))
		rescan := newProc(WithSeed(4), WithFullRescan())
		rf, rr := Run(frontier, 20000), Run(rescan, 20000)
		if rf != rr {
			t.Fatalf("%s: full-rescan result %+v != frontier %+v", name, rr, rf)
		}
	}
}

package mis

import (
	"ssmis/internal/graph"
)

// RoundMetrics is a per-round snapshot of the aggregate quantities the
// paper's analysis tracks: |B_t| (black), |A_t| (active), |I_t| (stable
// black), |V_t| (unstable = V \ N+(I_t)), and |Γ_t| (gray; zero except for
// the 3-color process).
type RoundMetrics struct {
	Round       int
	Black       int
	Active      int
	StableBlack int
	Unstable    int
	Gray        int
}

// grayCounter is implemented by processes with a gray color.
type grayCounter interface {
	GrayCount() int
}

// graphHolder is implemented by all simulator processes.
type graphHolder interface {
	Graph() *graph.Graph
}

// Snapshot computes the round metrics of a process. It costs O(n + m) and is
// intended for traced runs, not hot loops.
func Snapshot(p Process) RoundMetrics {
	m := RoundMetrics{Round: p.Round(), Active: p.ActiveCount()}
	g := p.(graphHolder).Graph()
	n := g.N()
	black := make([]bool, n)
	for u := 0; u < n; u++ {
		if p.Black(u) {
			black[u] = true
			m.Black++
		}
	}
	if gc, ok := p.(grayCounter); ok {
		m.Gray = gc.GrayCount()
	}
	// Stable black and N+(I) coverage.
	covered := make([]bool, n)
	for u := 0; u < n; u++ {
		if !black[u] {
			continue
		}
		stable := true
		for _, v := range g.Neighbors(u) {
			if black[v] {
				stable = false
				break
			}
		}
		if stable {
			m.StableBlack++
			covered[u] = true
			for _, v := range g.Neighbors(u) {
				covered[v] = true
			}
		}
	}
	for u := 0; u < n; u++ {
		if !covered[u] {
			m.Unstable++
		}
	}
	return m
}

// RunTraced advances p to stabilization or maxRounds, capturing a snapshot
// every `every` rounds (and always the first and last). every <= 0 captures
// every round.
func RunTraced(p Process, maxRounds, every int) (Result, []RoundMetrics) {
	if every <= 0 {
		every = 1
	}
	var hist []RoundMetrics
	hist = append(hist, Snapshot(p))
	for !p.Stabilized() && p.Round() < maxRounds {
		p.Step()
		if p.Round()%every == 0 || p.Stabilized() {
			hist = append(hist, Snapshot(p))
		}
	}
	res := Result{Rounds: p.Round(), Stabilized: p.Stabilized(), RandomBits: p.RandomBits()}
	return res, hist
}

package mis

import (
	"fmt"
	"testing"

	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/sched"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

// The kernel-vs-scalar lockstep matrix for the multi-lane rules: the
// 3-state and 3-color processes auto-select the bit-sliced kernel, and
// every configuration — workers {1, 2, 8} × frontier/full-rescan ×
// sparse/dense/complete — must replay the scalar interface path
// coin-for-coin, round by round: colors, full states (black0 vs black1,
// switch levels), active counts, bit accounting, and the final coveredAt
// stamps. The 2-state rows of this matrix live in refresh_test.go.
func TestKernelLockstepMatrix(t *testing.T) {
	type mk func(g *graph.Graph, opts ...Option) Process
	procs := []struct {
		name string
		mk   mk
		// stateOf exposes the full per-vertex state (beyond the Black
		// projection) for the round-by-round comparison.
		stateOf func(p Process, u int) int
	}{
		{
			"3-state",
			func(g *graph.Graph, opts ...Option) Process { return NewThreeState(g, opts...) },
			func(p Process, u int) int { return int(p.(*ThreeState).State(u)) },
		},
		{
			"3-color",
			func(g *graph.Graph, opts ...Option) Process { return NewThreeColor(g, opts...) },
			func(p Process, u int) int {
				tc := p.(*ThreeColor)
				return int(tc.ColorOf(u))<<8 | int(tc.SwitchLevel(u))
			},
		},
	}
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp-sparse", graph.Gnp(400, 0.01, xrand.New(1))},
		{"gnp-dense", graph.Gnp(200, 0.2, xrand.New(2))},
		{"complete", graph.Complete(257)}, // odd order: partial tail word
		// Weight-sorted power-law ids: a populated hub prefix, so the
		// counter-layout axis below exercises the hub/tail split for real.
		{"powerlaw", graph.ChungLu(1500, 2.0, 8, xrand.New(6))},
	}
	// The relabel axis runs the kernel over the degree-bucketed locality
	// ordering; the layout axis forces each counter-plane geometry (flat,
	// narrow lanes, hub/tail split). Either way the run must replay the
	// identity-ordered, auto-layout scalar reference coin for coin.
	axes := []struct {
		relabel bool
		layout  engine.CounterLayout
	}{
		{false, engine.LayoutAuto},
		{true, engine.LayoutAuto},
		{false, engine.LayoutFlat},
		{false, engine.LayoutNarrow},
		{false, engine.LayoutSplit},
	}
	for _, pr := range procs {
		for _, gc := range graphs {
			cap := 4 * DefaultRoundCap(gc.g.N())
			scal := pr.mk(gc.g, WithSeed(99), WithLocalTimes(), WithScalarEngine())
			if kernelEngaged(scal) {
				t.Fatalf("%s/%s: scalar process engaged the kernel", pr.name, gc.name)
			}
			scalRes := Run(scal, cap)
			if !scalRes.Stabilized {
				t.Fatalf("%s/%s: scalar run did not stabilize", pr.name, gc.name)
			}
			if err := verify.MIS(gc.g, scal.Black); err != nil {
				t.Fatalf("%s/%s: %v", pr.name, gc.name, err)
			}
			for _, workers := range []int{1, 2, 8} {
				for _, rescan := range []bool{false, true} {
					for _, ax := range axes {
						name := fmt.Sprintf("%s/%s/workers=%d rescan=%v relabel=%v layout=%v",
							pr.name, gc.name, workers, rescan, ax.relabel, ax.layout)
						opts := []Option{WithSeed(99), WithLocalTimes(), WithWorkers(workers),
							WithCounterLayout(ax.layout)}
						if rescan {
							opts = append(opts, WithFullRescan())
						}
						if ax.relabel {
							opts = append(opts, WithDegreeOrder())
						}
						kern := pr.mk(gc.g, opts...)
						if !kernelEngaged(kern) {
							t.Fatalf("%s: kernel did not engage", name)
						}
						// Round-by-round, against a fresh scalar twin, so a
						// divergence is pinned to the exact round it appears.
						twin := pr.mk(gc.g, WithSeed(99), WithLocalTimes(), WithScalarEngine())
						for !kern.Stabilized() && kern.Round() < cap {
							kern.Step()
							twin.Step()
							if kern.ActiveCount() != twin.ActiveCount() || kern.RandomBits() != twin.RandomBits() {
								t.Fatalf("%s: round %d active/bits diverged (%d,%d) vs (%d,%d)",
									name, kern.Round(), kern.ActiveCount(), kern.RandomBits(),
									twin.ActiveCount(), twin.RandomBits())
							}
							for u := 0; u < gc.g.N(); u++ {
								if pr.stateOf(kern, u) != pr.stateOf(twin, u) {
									t.Fatalf("%s: state of %d diverged at round %d", name, u, kern.Round())
								}
							}
						}
						if res := (Result{kern.Round(), kern.Stabilized(), kern.RandomBits()}); res != scalRes {
							t.Fatalf("%s: summary %+v, scalar %+v", name, res, scalRes)
						}
						type timed interface{ StabilizationTimes() []int }
						kt := kern.(timed).StabilizationTimes()
						for u, st := range scal.(timed).StabilizationTimes() {
							if kt[u] != st {
								t.Fatalf("%s: coveredAt stamp of %d is %d, scalar %d", name, u, kt[u], st)
							}
						}
					}
				}
			}
		}
	}
}

// kernelEngaged reports whether the process's engine core runs the
// bit-sliced kernel.
func kernelEngaged(p Process) bool {
	switch q := p.(type) {
	case *TwoState:
		return q.core.Kernel()
	case *ThreeState:
		return q.core.Kernel()
	case *ThreeColor:
		return q.core.Kernel()
	default:
		return false
	}
}

// Daemon scheduling on a kernel-backed 3-state process routes every commit
// and refresh through the lanes; under each fair daemon it must replay the
// scalar engine's execution move for move.
func TestKernelDaemonLockstep(t *testing.T) {
	g := graph.Gnp(150, 0.05, xrand.New(3))
	daemons := []sched.Daemon{sched.Synchronous{}, sched.CentralRandom{}, sched.DistributedRandom{}}
	for _, d := range daemons {
		kern := NewThreeState(g, WithSeed(5))
		scal := NewThreeState(g, WithSeed(5), WithScalarEngine())
		if !kernelEngaged(kern) || kernelEngaged(scal) {
			t.Fatalf("%s: kernel engagement wrong", d.Name())
		}
		cap := DefaultDaemonStepCap(g.N())
		for i := 0; i < cap && !kern.Stabilized(); i++ {
			kern.DaemonStep(d)
			scal.DaemonStep(d)
			if kern.Moves() != scal.Moves() || kern.RandomBits() != scal.RandomBits() {
				t.Fatalf("%s: step %d moves/bits diverged", d.Name(), i)
			}
		}
		if !kern.Stabilized() || !scal.Stabilized() {
			t.Fatalf("%s: did not stabilize", d.Name())
		}
		for u := 0; u < g.N(); u++ {
			if kern.State(u) != scal.State(u) {
				t.Fatalf("%s: state of %d diverged", d.Name(), u)
			}
		}
		if err := verify.MIS(g, kern.Black); err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
	}
}

// Mid-run corruption followed by Rebuild must re-derive the lanes (states,
// both neighbor counters, and the 3-color gate) identically on the kernel
// and scalar paths.
func TestKernelRebuildLockstep(t *testing.T) {
	g := graph.Gnp(180, 0.06, xrand.New(4))
	mut := xrand.New(7)

	kern3s := NewThreeState(g, WithSeed(11))
	scal3s := NewThreeState(g, WithSeed(11), WithScalarEngine())
	kern3c := NewThreeColor(g, WithSeed(11))
	scal3c := NewThreeColor(g, WithSeed(11), WithScalarEngine())
	if !kernelEngaged(kern3s) || !kernelEngaged(kern3c) {
		t.Fatal("kernel did not engage")
	}
	for i := 0; i < 6; i++ {
		kern3s.Step()
		scal3s.Step()
		kern3c.Step()
		scal3c.Step()
	}
	for i := 0; i < 12; i++ {
		u := mut.Intn(g.N())
		ts := TriState(1 + mut.Intn(3))
		kern3s.Corrupt(u, ts)
		scal3s.Corrupt(u, ts)
		c := Color(1 + mut.Intn(3))
		lvl := uint8(mut.Intn(6))
		kern3c.Corrupt(u, c, lvl)
		scal3c.Corrupt(u, c, lvl)
	}
	cap := 4 * DefaultRoundCap(g.N())
	r1, r2 := Run(kern3s, cap), Run(scal3s, cap)
	if r1 != r2 {
		t.Fatalf("3-state post-corruption: kernel %+v vs scalar %+v", r1, r2)
	}
	r3, r4 := Run(kern3c, cap), Run(scal3c, cap)
	if r3 != r4 {
		t.Fatalf("3-color post-corruption: kernel %+v vs scalar %+v", r3, r4)
	}
	for u := 0; u < g.N(); u++ {
		if kern3s.State(u) != scal3s.State(u) {
			t.Fatalf("3-state: state of %d diverged after rebuild", u)
		}
		if kern3c.ColorOf(u) != scal3c.ColorOf(u) || kern3c.SwitchLevel(u) != scal3c.SwitchLevel(u) {
			t.Fatalf("3-color: state of %d diverged after rebuild", u)
		}
	}
}

// A run context leased across rule switches (2-state → 3-state → 3-color →
// back) must reconfigure the lanes without leaking bits between rules: each
// context-backed run must equal its context-free (and hence its scalar)
// execution exactly. The sizes shrink and grow so stale words beyond the
// new tail would be caught.
func TestKernelRunContextRuleSwitch(t *testing.T) {
	ctx := engine.NewRunContext()
	sizes := []int{300, 100, 257, 64, 130}
	mks := []func(g *graph.Graph, opts ...Option) Process{
		func(g *graph.Graph, opts ...Option) Process { return NewTwoState(g, opts...) },
		func(g *graph.Graph, opts ...Option) Process { return NewThreeState(g, opts...) },
		func(g *graph.Graph, opts ...Option) Process { return NewThreeColor(g, opts...) },
	}
	for i, n := range sizes {
		for j, mk := range mks {
			g := graph.Gnp(n, 0.05, xrand.New(uint64(10+i)))
			seed := uint64(3*i + j)
			cap := 4 * DefaultRoundCap(n)
			ref := Run(mk(g, WithSeed(seed)), cap)
			got := Run(mk(g, WithSeed(seed), WithRunContext(ctx)), cap)
			if got != ref {
				t.Fatalf("size %d proc %d: context-backed %+v vs fresh %+v", n, j, got, ref)
			}
		}
	}
}

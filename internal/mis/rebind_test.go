package mis

import (
	"testing"

	"ssmis/internal/graph"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

func TestRebindReconvergesAllProcesses(t *testing.T) {
	rng := xrand.New(91)
	g := graph.Gnp(120, 0.06, rng)
	type rebinder interface {
		Process
		Rebind(*graph.Graph)
	}
	procs := []rebinder{
		NewTwoState(g, WithSeed(3)),
		NewThreeState(g, WithSeed(3)),
		NewThreeColor(g, WithSeed(3)),
	}
	for _, p := range procs {
		Run(p, 8*DefaultRoundCap(g.N()))
		if !p.Stabilized() {
			t.Fatalf("%s: no initial stabilization", p.Name())
		}
		g2, _ := g.WithRandomChurn(20, rng)
		p.Rebind(g2)
		Run(p, 8*DefaultRoundCap(g.N()))
		if !p.Stabilized() {
			t.Fatalf("%s: no re-stabilization after churn", p.Name())
		}
		if err := verify.MIS(g2, p.Black); err != nil {
			t.Fatalf("%s: post-churn result invalid on NEW graph: %v", p.Name(), err)
		}
	}
}

func TestRebindOrderMismatchPanics(t *testing.T) {
	p := NewTwoState(graph.Path(4))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	p.Rebind(graph.Path(5))
}

func TestRebindKeepsStates(t *testing.T) {
	g := graph.Path(4)
	p := NewTwoState(g, WithInitialBlack([]bool{true, false, true, false}))
	// Adding edge {0,2} makes the two blacks adjacent: states kept, process
	// now unstable.
	g2 := g.WithEdgeToggled(0, 2)
	p.Rebind(g2)
	if !p.Black(0) || !p.Black(2) {
		t.Fatal("Rebind changed vertex states")
	}
	if p.Stabilized() {
		t.Fatal("conflicting MIS on new topology reported stable")
	}
	Run(p, 10000)
	if err := verify.MIS(g2, p.Black); err != nil {
		t.Fatal(err)
	}
}

func TestRebindEdgeRemovalBreaksMaximality(t *testing.T) {
	// MIS {1} on the star K_{1,3}; removing the edge {0,1}... use a path:
	// 0-1-2 with MIS {1}. Removing {1,2} leaves vertex 2 undominated.
	g := graph.Path(3)
	p := NewTwoState(g, WithInitialBlack([]bool{false, true, false}))
	if !p.Stabilized() {
		t.Fatal("precondition: {1} is an MIS of the path")
	}
	g2 := g.WithEdgeToggled(1, 2)
	p.Rebind(g2)
	if p.Stabilized() {
		t.Fatal("undominated vertex after edge removal reported stable")
	}
	Run(p, 10000)
	if !p.Black(2) {
		t.Fatal("isolated-side vertex did not join the MIS")
	}
}

func TestRebindCliqueFastPathToggles(t *testing.T) {
	// Rebinding from a clique to a non-clique must switch off the
	// complete-graph fast path (and counters must stay exact).
	g := graph.Complete(10)
	p := NewTwoState(g, WithSeed(5))
	Run(p, 10000)
	g2 := g.WithEdgeToggled(0, 1)
	p.Rebind(g2)
	if p.core.Complete() {
		t.Fatal("fast path still enabled after losing an edge")
	}
	p.checkCounters(t)
	Run(p, 10000)
	if err := verify.MIS(g2, p.Black); err != nil {
		t.Fatal(err)
	}
}

package mis

import (
	"testing"
	"testing/quick"

	"ssmis/internal/graph"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

func TestThreeColorStabilizesOnFamilies(t *testing.T) {
	rng := xrand.New(31)
	families := map[string]*graph.Graph{
		"single":     graph.Empty(1),
		"edgeless":   graph.Empty(15),
		"path":       graph.Path(50),
		"cycle":      graph.Cycle(33),
		"star":       graph.Star(30),
		"clique":     graph.Complete(64),
		"tree":       graph.RandomTree(200, rng),
		"gnp-sparse": graph.Gnp(300, 0.01, rng),
		"gnp-dense":  graph.Gnp(120, 0.3, rng),
		"gnp-cross":  graph.Gnp(200, 0.18, rng), // p ≈ n^{-1/4} regime scaled down
		"cliques":    graph.DisjointCliques(6, 6),
	}
	for name, g := range families {
		p := NewThreeColor(g, WithSeed(5))
		Run(p, DefaultRoundCap(g.N()))
		if !p.Stabilized() {
			t.Errorf("%s: not stabilized after %d rounds", name, p.Round())
			continue
		}
		requireMIS(t, g, p)
	}
}

func TestThreeColorAllInitsConverge(t *testing.T) {
	g := graph.Gnp(150, 0.05, xrand.New(32))
	for _, init := range AllInits() {
		p := NewThreeColor(g, WithSeed(6), WithInit(init))
		Run(p, DefaultRoundCap(g.N()))
		if !p.Stabilized() {
			t.Errorf("init %v: not stabilized", init)
			continue
		}
		requireMIS(t, g, p)
	}
}

func TestThreeColorEighteenStates(t *testing.T) {
	p := NewThreeColor(graph.Path(3))
	if p.States() != 18 {
		t.Fatalf("States = %d, want 18 (Theorem 3)", p.States())
	}
	if p.Name() != "3-color" {
		t.Fatal("name wrong")
	}
}

func TestThreeColorGrayNeverDirectlyBlack(t *testing.T) {
	// A gray vertex may only become white (switch on) or stay gray; track a
	// run and asserts no gray→black transition ever happens.
	g := graph.Gnp(60, 0.15, xrand.New(33))
	p := NewThreeColor(g, WithSeed(7))
	prev := make([]Color, g.N())
	for u := range prev {
		prev[u] = p.ColorOf(u)
	}
	for r := 0; r < 500 && !p.Stabilized(); r++ {
		p.Step()
		for u := 0; u < g.N(); u++ {
			cur := p.ColorOf(u)
			if prev[u] == ColorGray && cur == ColorBlack {
				t.Fatalf("round %d: vertex %d went gray→black", p.Round(), u)
			}
			prev[u] = cur
		}
	}
}

func TestThreeColorActiveBlackGoesBlackOrGray(t *testing.T) {
	// Deterministic check of the modified rule: an active black vertex never
	// becomes white in one step.
	g := graph.Path(2)
	p := NewThreeColor(g, WithSeed(8))
	p.Corrupt(0, ColorBlack, p.SwitchLevel(0))
	p.Corrupt(1, ColorBlack, p.SwitchLevel(1))
	p.Step()
	for u := 0; u < 2; u++ {
		if p.ColorOf(u) == ColorWhite {
			t.Fatalf("active black vertex %d became white directly", u)
		}
	}
}

func TestThreeColorGrayDrainsViaSwitch(t *testing.T) {
	// A gray vertex whose switch is on becomes white next round.
	g := graph.Path(2)
	p := NewThreeColor(g, WithSeed(9))
	p.Corrupt(0, ColorGray, 1) // level 1 <= 2 -> on
	p.Corrupt(1, ColorWhite, 5)
	p.Step()
	if p.ColorOf(0) != ColorWhite {
		t.Fatalf("gray with switch on became %v, want white", p.ColorOf(0))
	}
}

func TestThreeColorGrayHoldsWhileOff(t *testing.T) {
	g := graph.Path(2)
	p := NewThreeColor(g, WithSeed(10))
	p.Corrupt(0, ColorGray, 5)  // switch off
	p.Corrupt(1, ColorBlack, 5) // freezes nothing for 0; gray ignores neighbors
	p.Step()
	// Level 5 stays off with probability 1-ζ = 127/128; if by luck the coin
	// fired, the level went to 4 (still off). Either way σ was off at the
	// time of the color update, so the vertex must still be gray.
	if p.ColorOf(0) != ColorGray {
		t.Fatalf("gray with switch off became %v", p.ColorOf(0))
	}
}

func TestThreeColorDeterminism(t *testing.T) {
	g := graph.Gnp(90, 0.06, xrand.New(34))
	a := NewThreeColor(g, WithSeed(77))
	b := NewThreeColor(g, WithSeed(77))
	ra, rb := Run(a, 20000), Run(b, 20000)
	if ra != rb {
		t.Fatalf("nondeterministic: %+v vs %+v", ra, rb)
	}
}

func TestThreeColorCorruptionRecovery(t *testing.T) {
	g := graph.Gnp(100, 0.07, xrand.New(35))
	p := NewThreeColor(g, WithSeed(11))
	Run(p, 20000)
	requireMIS(t, g, p)
	for u := 0; u < 15; u++ {
		p.Corrupt(u, ColorGray, 5)
	}
	Run(p, 20000)
	requireMIS(t, g, p)
}

func TestThreeColorGrayCount(t *testing.T) {
	g := graph.Path(3)
	p := NewThreeColor(g, WithSeed(12))
	p.Corrupt(0, ColorGray, p.SwitchLevel(0))
	p.Corrupt(1, ColorGray, p.SwitchLevel(1))
	p.Corrupt(2, ColorWhite, p.SwitchLevel(2))
	if p.GrayCount() != 2 {
		t.Fatalf("GrayCount = %d, want 2", p.GrayCount())
	}
}

func TestColorString(t *testing.T) {
	if ColorWhite.String() != "white" || ColorBlack.String() != "black" ||
		ColorGray.String() != "gray" || Color(9).String() == "" {
		t.Fatal("Color.String wrong")
	}
}

func TestThreeColorSwitchAccessors(t *testing.T) {
	p := NewThreeColor(graph.Path(3), WithSeed(13))
	for u := 0; u < 3; u++ {
		lvl := p.SwitchLevel(u)
		if lvl > 5 {
			t.Fatalf("switch level %d out of range", lvl)
		}
		if got, want := p.SwitchOn(u), lvl <= 2; got != want {
			t.Fatal("SwitchOn inconsistent with SwitchLevel")
		}
	}
}

// Property: 3-color stabilization always yields an MIS, across densities
// including dense graphs.
func TestThreeColorMISProperty(t *testing.T) {
	master := xrand.New(36)
	f := func(seed uint64) bool {
		r := master.Split(seed)
		n := 2 + r.Intn(70)
		g := graph.Gnp(n, r.Float64()*0.6, r)
		p := NewThreeColor(g, WithSeed(seed))
		Run(p, 4*DefaultRoundCap(n))
		return p.Stabilized() && verify.MIS(g, p.Black) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package mis

// Checkpointing: a running process can be serialized to a JSON-friendly
// snapshot and restored later to continue the exact same execution —
// states, derived counters, round/bit accounting, and every per-vertex
// random stream (so the coins after restore equal the coins an
// uninterrupted run would have drawn). Long sweeps can thus survive
// restarts, and executions can be shipped between machines for debugging.
//
// The graph itself is not embedded (graphs can be large and are
// reconstructible from their own seeds or interchange files); Restore
// functions take the graph and verify its order.

import (
	"encoding/json"
	"fmt"

	"ssmis/internal/graph"
	"ssmis/internal/phaseclock"
	"ssmis/internal/xrand"
)

// newRestoredClock rebuilds the 3-color switch from checkpointed levels.
func newRestoredClock(g *graph.Graph, c *Checkpoint) *phaseclock.Clock {
	cl := phaseclock.New(g, phaseclock.WithZetaLog2(c.ZetaLog2))
	for u, l := range c.Levels {
		cl.SetLevel(u, l)
	}
	cl.SetRandomBits(c.ClockBits)
	return cl
}

// Checkpoint is a serialized process execution state.
type Checkpoint struct {
	// Process identifies the family: "2-state", "3-state", "3-color".
	Process string `json:"process"`
	// N is the graph order the snapshot was taken on.
	N     int   `json:"n"`
	Round int   `json:"round"`
	Bits  int64 `json:"bits"`
	// States holds the per-vertex state: for 2-state 0=white/1=black; for
	// 3-state the TriState values; for 3-color the Color values.
	States []uint8 `json:"states"`
	// Levels holds the 3-color switch levels (empty otherwise).
	Levels []uint8 `json:"levels,omitempty"`
	// ClockBits is the 3-color switch's separate bit accounting.
	ClockBits int64 `json:"clockBits,omitempty"`
	// Rngs holds each vertex's marshaled random stream.
	Rngs [][]byte `json:"rngs"`
	// BlackBias and ZetaLog2 reproduce the options that shape randomness.
	BlackBias float64 `json:"blackBias"`
	ZetaLog2  uint    `json:"zetaLog2,omitempty"`
}

// Encode renders the checkpoint as JSON.
func (c *Checkpoint) Encode() ([]byte, error) {
	return json.Marshal(c)
}

// DecodeCheckpoint parses a JSON checkpoint.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("mis: decode checkpoint: %w", err)
	}
	return &c, nil
}

func marshalRngs(rngs []*xrand.Rand) ([][]byte, error) {
	out := make([][]byte, len(rngs))
	for i, r := range rngs {
		b, err := r.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("mis: marshal rng %d: %w", i, err)
		}
		out[i] = b
	}
	return out, nil
}

func unmarshalRngs(blobs [][]byte, n int) ([]*xrand.Rand, error) {
	if len(blobs) != n {
		return nil, fmt.Errorf("mis: checkpoint has %d rng states, want %d", len(blobs), n)
	}
	out := make([]*xrand.Rand, n)
	for i, b := range blobs {
		r := xrand.New(0)
		if err := r.UnmarshalBinary(b); err != nil {
			return nil, fmt.Errorf("mis: rng %d: %w", i, err)
		}
		out[i] = r
	}
	return out, nil
}

// Checkpoint snapshots the 2-state process.
func (p *TwoState) Checkpoint() (*Checkpoint, error) {
	states := make([]uint8, len(p.black))
	for u, b := range p.black {
		if b {
			states[u] = 1
		}
	}
	rngs, err := marshalRngs(p.rngs)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		Process:   "2-state",
		N:         p.g.N(),
		Round:     p.round,
		Bits:      p.bits,
		States:    states,
		Rngs:      rngs,
		BlackBias: p.opts.blackBias,
	}, nil
}

// RestoreTwoState reconstructs a 2-state process from a checkpoint on g.
// Extra options (e.g. WithWorkers, WithLocalTimes) may be supplied; options
// affecting randomness are taken from the checkpoint.
func RestoreTwoState(g *graph.Graph, c *Checkpoint, opts ...Option) (*TwoState, error) {
	if c.Process != "2-state" {
		return nil, fmt.Errorf("mis: checkpoint is %q, want 2-state", c.Process)
	}
	if c.N != g.N() || len(c.States) != g.N() {
		return nil, fmt.Errorf("mis: checkpoint order %d vs graph %d", c.N, g.N())
	}
	rngs, err := unmarshalRngs(c.Rngs, g.N())
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	o.blackBias = c.BlackBias
	n := g.N()
	p := &TwoState{
		g:        g,
		complete: n >= 2 && g.M() == n*(n-1)/2,
		black:    make([]bool, n),
		nbrBlack: make([]int32, n),
		rngs:     rngs,
		opts:     o,
		round:    c.Round,
		bits:     c.Bits,
	}
	for u, s := range c.States {
		p.black[u] = s == 1
	}
	if o.trackLocal {
		p.lt = newLocalTimes(n)
	}
	p.recount()
	p.recordLocal()
	return p, nil
}

// Checkpoint snapshots the 3-state process.
func (p *ThreeState) Checkpoint() (*Checkpoint, error) {
	states := make([]uint8, len(p.state))
	for u, s := range p.state {
		states[u] = uint8(s)
	}
	rngs, err := marshalRngs(p.rngs)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		Process: "3-state",
		N:       p.g.N(),
		Round:   p.round,
		Bits:    p.bits,
		States:  states,
		Rngs:    rngs,
	}, nil
}

// RestoreThreeState reconstructs a 3-state process from a checkpoint on g.
func RestoreThreeState(g *graph.Graph, c *Checkpoint, opts ...Option) (*ThreeState, error) {
	if c.Process != "3-state" {
		return nil, fmt.Errorf("mis: checkpoint is %q, want 3-state", c.Process)
	}
	if c.N != g.N() || len(c.States) != g.N() {
		return nil, fmt.Errorf("mis: checkpoint order %d vs graph %d", c.N, g.N())
	}
	rngs, err := unmarshalRngs(c.Rngs, g.N())
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	n := g.N()
	p := &ThreeState{
		g:        g,
		state:    make([]TriState, n),
		next:     make([]TriState, n),
		nbrB1:    make([]int32, n),
		nbrBlack: make([]int32, n),
		rngs:     rngs,
		round:    c.Round,
		bits:     c.Bits,
		mark:     make([]int32, n),
	}
	for u, s := range c.States {
		st := TriState(s)
		switch st {
		case TriWhite, TriBlack0, TriBlack1:
			p.state[u] = st
		default:
			return nil, fmt.Errorf("mis: invalid 3-state value %d at vertex %d", s, u)
		}
	}
	for i := range p.mark {
		p.mark[i] = -1
	}
	if o.trackLocal {
		p.lt = newLocalTimes(n)
	}
	p.recount()
	p.recordLocal()
	return p, nil
}

// Checkpoint snapshots the 3-color process, including its switch.
func (p *ThreeColor) Checkpoint() (*Checkpoint, error) {
	n := p.g.N()
	states := make([]uint8, n)
	levels := make([]uint8, n)
	for u := 0; u < n; u++ {
		states[u] = uint8(p.color[u])
		levels[u] = p.clock.Level(u)
	}
	rngs, err := marshalRngs(p.rngs)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		Process:   "3-color",
		N:         n,
		Round:     p.round,
		Bits:      p.bits,
		States:    states,
		Levels:    levels,
		ClockBits: p.clock.RandomBits(),
		Rngs:      rngs,
		BlackBias: p.opts.blackBias,
		ZetaLog2:  p.opts.switchZetaLog2,
	}, nil
}

// RestoreThreeColor reconstructs a 3-color process from a checkpoint on g.
func RestoreThreeColor(g *graph.Graph, c *Checkpoint, opts ...Option) (*ThreeColor, error) {
	if c.Process != "3-color" {
		return nil, fmt.Errorf("mis: checkpoint is %q, want 3-color", c.Process)
	}
	n := g.N()
	if c.N != n || len(c.States) != n || len(c.Levels) != n {
		return nil, fmt.Errorf("mis: checkpoint order %d vs graph %d", c.N, n)
	}
	rngs, err := unmarshalRngs(c.Rngs, n)
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	o.blackBias = c.BlackBias
	o.switchZetaLog2 = c.ZetaLog2
	p := &ThreeColor{
		g:        g,
		color:    make([]Color, n),
		next:     make([]Color, n),
		nbrBlack: make([]int32, n),
		clock:    newRestoredClock(g, c),
		rngs:     rngs,
		opts:     o,
		round:    c.Round,
		bits:     c.Bits,
		mark:     make([]int32, n),
	}
	for u, s := range c.States {
		col := Color(s)
		switch col {
		case ColorWhite, ColorBlack, ColorGray:
			p.color[u] = col
		default:
			return nil, fmt.Errorf("mis: invalid color value %d at vertex %d", s, u)
		}
	}
	for i := range p.mark {
		p.mark[i] = -1
	}
	if o.trackLocal {
		p.lt = newLocalTimes(n)
	}
	p.recount()
	p.recordLocal()
	return p, nil
}

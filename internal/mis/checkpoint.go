package mis

// Checkpointing: a running process can be serialized to a JSON-friendly
// snapshot and restored later to continue the exact same execution —
// states, derived counters, round/bit accounting, and every per-vertex
// random stream (so the coins after restore equal the coins an
// uninterrupted run would have drawn). Long sweeps can thus survive
// restarts, and executions can be shipped between machines for debugging.
//
// The graph itself is not embedded (graphs can be large and are
// reconstructible from their own seeds or interchange files); Restore
// functions take the graph and verify its order. The on-disk format
// predates the shared engine and is kept unchanged: 2-state states are
// stored as 0 = white / 1 = black.

import (
	"encoding/json"
	"fmt"

	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/phaseclock"
	"ssmis/internal/xrand"
)

// newRestoredClock rebuilds the 3-color switch from checkpointed levels.
func newRestoredClock(g *graph.Graph, c *Checkpoint) *phaseclock.Clock {
	cl := phaseclock.New(g, phaseclock.WithZetaLog2(c.ZetaLog2))
	for u, l := range c.Levels {
		cl.SetLevel(u, l)
	}
	cl.SetRandomBits(c.ClockBits)
	return cl
}

// Checkpoint is a serialized process execution state.
type Checkpoint struct {
	// Process identifies the family: "2-state", "3-state", "3-color".
	Process string `json:"process"`
	// N is the graph order the snapshot was taken on.
	N     int   `json:"n"`
	Round int   `json:"round"`
	Bits  int64 `json:"bits"`
	// States holds the per-vertex state: for 2-state 0=white/1=black; for
	// 3-state the TriState values; for 3-color the Color values.
	States []uint8 `json:"states"`
	// Levels holds the 3-color switch levels (empty otherwise).
	Levels []uint8 `json:"levels,omitempty"`
	// ClockBits is the 3-color switch's separate bit accounting.
	ClockBits int64 `json:"clockBits,omitempty"`
	// Rngs holds each vertex's marshaled random stream.
	Rngs [][]byte `json:"rngs"`
	// BlackBias and ZetaLog2 reproduce the options that shape randomness.
	BlackBias float64 `json:"blackBias"`
	ZetaLog2  uint    `json:"zetaLog2,omitempty"`
	// SchedRng is the daemon scheduler's selection stream, present once the
	// process has taken a daemon step; restoring it resumes a
	// daemon-scheduled execution coin-for-coin (the schedule after restore
	// equals the schedule an uninterrupted run would have drawn). Steps and
	// Moves carry the matching daemon accounting.
	SchedRng []byte `json:"schedRng,omitempty"`
	Steps    int    `json:"steps,omitempty"`
	Moves    int    `json:"moves,omitempty"`
}

// Encode renders the checkpoint as JSON.
func (c *Checkpoint) Encode() ([]byte, error) {
	return json.Marshal(c)
}

// DecodeCheckpoint parses a JSON checkpoint.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("mis: decode checkpoint: %w", err)
	}
	return &c, nil
}

func marshalRngs(rngs []*xrand.Rand) ([][]byte, error) {
	out := make([][]byte, len(rngs))
	for i, r := range rngs {
		b, err := r.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("mis: marshal rng %d: %w", i, err)
		}
		out[i] = b
	}
	return out, nil
}

func unmarshalRngs(blobs [][]byte, n int) ([]*xrand.Rand, error) {
	if len(blobs) != n {
		return nil, fmt.Errorf("mis: checkpoint has %d rng states, want %d", len(blobs), n)
	}
	out := make([]*xrand.Rand, n)
	for i, b := range blobs {
		r := xrand.New(0)
		if err := r.UnmarshalBinary(b); err != nil {
			return nil, fmt.Errorf("mis: rng %d: %w", i, err)
		}
		out[i] = r
	}
	return out, nil
}

// checkpointBias validates the checkpoint's coin bias. A zero value (legacy
// checkpoints predating per-process bias support) means the default fair
// coin; anything else outside (0,1) is a malformed checkpoint and reported
// as an error rather than the engine's construction panic.
func checkpointBias(c *Checkpoint) (float64, error) {
	if c.BlackBias == 0 {
		return 0.5, nil
	}
	// Negated conjunction so NaN fails too.
	if !(c.BlackBias > 0 && c.BlackBias < 1) {
		return 0, fmt.Errorf("mis: checkpoint coin bias %v outside (0,1)", c.BlackBias)
	}
	return c.BlackBias, nil
}

// restoreCore assembles an engine over restored state; SetAccounting
// replays the checkpointed round/bit accounting into the coverage stamps.
func restoreCore(g *graph.Graph, rule engine.Rule, state []uint8, rngs []*xrand.Rand, o options, noop bool, c *Checkpoint) *engine.Core {
	core := engine.New(g, rule, state, rngs, o.engine(noop))
	core.SetAccounting(c.Round, c.Bits)
	return core
}

// marshalSched serializes the daemon selection stream; nil when the process
// never took a daemon step (the stream is derived lazily).
func marshalSched(rng *xrand.Rand) ([]byte, error) {
	if rng == nil {
		return nil, nil
	}
	b, err := rng.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("mis: marshal scheduler rng: %w", err)
	}
	return b, nil
}

// restoreSched replays the checkpointed daemon accounting into core and
// rebuilds the selection stream (nil when the checkpoint carries none, in
// which case a later daemon step derives a fresh stream as usual).
func restoreSched(core *engine.Core, c *Checkpoint) (*xrand.Rand, error) {
	core.SetDaemonAccounting(c.Steps, c.Moves)
	if c.SchedRng == nil {
		return nil, nil
	}
	r := xrand.New(0)
	if err := r.UnmarshalBinary(c.SchedRng); err != nil {
		return nil, fmt.Errorf("mis: scheduler rng: %w", err)
	}
	return r, nil
}

// Checkpoint snapshots the 2-state process.
func (p *TwoState) Checkpoint() (*Checkpoint, error) {
	engineStates := p.core.States()
	states := make([]uint8, len(engineStates))
	for u, s := range engineStates {
		if s == twoBlack {
			states[u] = 1
		}
	}
	rngs, err := marshalRngs(p.core.Rngs())
	if err != nil {
		return nil, err
	}
	sched, err := marshalSched(p.schedRng)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		Process:   "2-state",
		N:         p.N(),
		Round:     p.Round(),
		Bits:      p.core.Bits(),
		States:    states,
		Rngs:      rngs,
		BlackBias: p.opts.blackBias,
		SchedRng:  sched,
		Steps:     p.core.Steps(),
		Moves:     p.core.Moves(),
	}, nil
}

// RestoreTwoState reconstructs a 2-state process from a checkpoint on g.
// Extra options (e.g. WithWorkers, WithLocalTimes) may be supplied; options
// affecting randomness are taken from the checkpoint.
func RestoreTwoState(g *graph.Graph, c *Checkpoint, opts ...Option) (*TwoState, error) {
	if c.Process != "2-state" {
		return nil, fmt.Errorf("mis: checkpoint is %q, want 2-state", c.Process)
	}
	if c.N != g.N() || len(c.States) != g.N() {
		return nil, fmt.Errorf("mis: checkpoint order %d vs graph %d", c.N, g.N())
	}
	rngs, err := unmarshalRngs(c.Rngs, g.N())
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	if o.blackBias, err = checkpointBias(c); err != nil {
		return nil, err
	}
	state := make([]uint8, g.N())
	for u, s := range c.States {
		state[u] = twoWhite
		if s == 1 {
			state[u] = twoBlack
		}
	}
	core := restoreCore(g, twoStateRule{}, state, rngs, o, true, c)
	schedRng, err := restoreSched(core, c)
	if err != nil {
		return nil, err
	}
	return &TwoState{core: core, opts: o, schedRng: schedRng}, nil
}

// Checkpoint snapshots the 3-state process.
func (p *ThreeState) Checkpoint() (*Checkpoint, error) {
	rngs, err := marshalRngs(p.core.Rngs())
	if err != nil {
		return nil, err
	}
	sched, err := marshalSched(p.schedRng)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		Process:   "3-state",
		N:         p.N(),
		Round:     p.Round(),
		Bits:      p.core.Bits(),
		States:    append([]uint8(nil), p.core.States()...),
		Rngs:      rngs,
		BlackBias: p.opts.blackBias,
		SchedRng:  sched,
		Steps:     p.core.Steps(),
		Moves:     p.core.Moves(),
	}, nil
}

// RestoreThreeState reconstructs a 3-state process from a checkpoint on g.
func RestoreThreeState(g *graph.Graph, c *Checkpoint, opts ...Option) (*ThreeState, error) {
	if c.Process != "3-state" {
		return nil, fmt.Errorf("mis: checkpoint is %q, want 3-state", c.Process)
	}
	if c.N != g.N() || len(c.States) != g.N() {
		return nil, fmt.Errorf("mis: checkpoint order %d vs graph %d", c.N, g.N())
	}
	rngs, err := unmarshalRngs(c.Rngs, g.N())
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	if o.blackBias, err = checkpointBias(c); err != nil {
		return nil, err
	}
	state := make([]uint8, g.N())
	for u, s := range c.States {
		switch TriState(s) {
		case TriWhite, TriBlack0, TriBlack1:
			state[u] = s
		default:
			return nil, fmt.Errorf("mis: invalid 3-state value %d at vertex %d", s, u)
		}
	}
	core := restoreCore(g, threeStateRule{}, state, rngs, o, false, c)
	schedRng, err := restoreSched(core, c)
	if err != nil {
		return nil, err
	}
	return &ThreeState{core: core, opts: o, schedRng: schedRng}, nil
}

// Checkpoint snapshots the 3-color process, including its switch.
func (p *ThreeColor) Checkpoint() (*Checkpoint, error) {
	n := p.N()
	levels := make([]uint8, n)
	for u := 0; u < n; u++ {
		levels[u] = p.rule.clock.Level(u)
	}
	rngs, err := marshalRngs(p.core.Rngs())
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		Process:   "3-color",
		N:         n,
		Round:     p.Round(),
		Bits:      p.core.Bits(),
		States:    append([]uint8(nil), p.core.States()...),
		Levels:    levels,
		ClockBits: p.rule.clock.RandomBits(),
		Rngs:      rngs,
		BlackBias: p.opts.blackBias,
		ZetaLog2:  p.opts.switchZetaLog2,
	}, nil
}

// RestoreThreeColor reconstructs a 3-color process from a checkpoint on g.
func RestoreThreeColor(g *graph.Graph, c *Checkpoint, opts ...Option) (*ThreeColor, error) {
	if c.Process != "3-color" {
		return nil, fmt.Errorf("mis: checkpoint is %q, want 3-color", c.Process)
	}
	n := g.N()
	if c.N != n || len(c.States) != n || len(c.Levels) != n {
		return nil, fmt.Errorf("mis: checkpoint order %d vs graph %d", c.N, n)
	}
	rngs, err := unmarshalRngs(c.Rngs, n)
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	if o.blackBias, err = checkpointBias(c); err != nil {
		return nil, err
	}
	o.switchZetaLog2 = c.ZetaLog2
	if o.switchZetaLog2 == 0 || o.switchZetaLog2 > 64 {
		return nil, fmt.Errorf("mis: checkpoint switch parameter k = %d outside [1, 64]", c.ZetaLog2)
	}
	state := make([]uint8, n)
	for u, s := range c.States {
		switch Color(s) {
		case ColorWhite, ColorBlack, ColorGray:
			state[u] = s
		default:
			return nil, fmt.Errorf("mis: invalid color value %d at vertex %d", s, u)
		}
	}
	rule := &threeColorRule{clock: newRestoredClock(g, c), rngs: rngs}
	return &ThreeColor{
		core: restoreCore(g, rule, state, rngs, o, false, c),
		rule: rule,
		opts: o,
	}, nil
}

package mis

// Checkpointing: a running process can be serialized to a versioned
// snapshot (internal/snapshot) and restored later to continue the exact
// same execution — states, derived counters, round/bit accounting, the
// per-vertex first-cover stamps (local times), and every per-vertex random
// stream (so the coins after restore equal the coins an uninterrupted run
// would have drawn). Long sweeps can thus survive restarts, and executions
// can be shipped between machines for debugging.
//
// The wire format is the snapshot envelope (magic, format version,
// checksum): truncated, corrupted, or version-skewed checkpoints are
// rejected loudly instead of resuming silently wrong. The graph itself is
// not embedded (graphs can be large and are reconstructible from their own
// seeds or interchange files); Restore functions take the graph and verify
// its order. 2-state states are stored as 0 = white / 1 = black.

import (
	"fmt"

	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/phaseclock"
	"ssmis/internal/snapshot"
	"ssmis/internal/xrand"
)

// Checkpoint is a serialized process execution state — the process payload
// of the module-wide snapshot layer. Encode wraps it in the versioned
// envelope; DecodeCheckpoint validates and unwraps.
type Checkpoint = snapshot.Process

// newRestoredClock rebuilds the 3-color switch from checkpointed levels
// (stored in original vertex ids) on the engine's — possibly relabeled —
// graph.
func newRestoredClock(eg *graph.Graph, c *Checkpoint, ord *graph.Ordering) *phaseclock.Clock {
	cl := phaseclock.New(eg, phaseclock.WithZetaLog2(c.ZetaLog2))
	for u, l := range c.Levels {
		cl.SetLevel(ord.NewID(u), l)
	}
	cl.SetRandomBits(c.ClockBits)
	return cl
}

// DecodeCheckpoint parses an encoded checkpoint, rejecting damaged or
// version-skewed data.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	c, err := snapshot.DecodeProcess(data)
	if err != nil {
		return nil, fmt.Errorf("mis: decode checkpoint: %w", err)
	}
	return c, nil
}

// checkpointBias validates the checkpoint's coin bias. A zero value (legacy
// checkpoints predating per-process bias support) means the default fair
// coin; anything else outside (0,1) is a malformed checkpoint and reported
// as an error rather than the engine's construction panic.
func checkpointBias(c *Checkpoint) (float64, error) {
	if c.BlackBias == 0 {
		return 0.5, nil
	}
	// Negated conjunction so NaN fails too.
	if !(c.BlackBias > 0 && c.BlackBias < 1) {
		return 0, fmt.Errorf("mis: checkpoint coin bias %v outside (0,1)", c.BlackBias)
	}
	return c.BlackBias, nil
}

// capture snapshots the engine-owned execution state plus the shared
// process options into a checkpoint shell; callers fill the
// process-specific fields (name, state encoding, switch state).
func capture(core *engine.Core, schedRng *xrand.Rand, o options) (*Checkpoint, error) {
	c := &Checkpoint{BlackBias: o.blackBias, Seed: o.seed}
	if err := c.CaptureEngine(core, schedRng); err != nil {
		return nil, fmt.Errorf("mis: %w", err)
	}
	return c, nil
}

// restoreOptions rebuilds the option set for a restore: caller-supplied
// options first (workers, local times, ...), then the checkpointed values
// that shape randomness — the coin bias and the master seed, so auxiliary
// streams derived lazily after the restore (a first daemon step's
// selection stream) equal the streams the uninterrupted run would derive.
func restoreOptions(c *Checkpoint, opts []Option) (options, error) {
	o := buildOptions(opts)
	var err error
	if o.blackBias, err = checkpointBias(c); err != nil {
		return o, err
	}
	o.seed = c.Seed
	return o, nil
}

// restoreCore assembles an engine over restored state (already permuted
// into ord's space by the caller) and replays the checkpointed accounting
// (round/bits, daemon steps/moves, coverage stamps) into it; the returned
// stream resumes daemon scheduling coin-for-coin (nil when the checkpoint
// carries none). Checkpoints are keyed by original ids, so a run saved
// under one ordering restores under any other.
func restoreCore(g *graph.Graph, ord *graph.Ordering, rule engine.Rule, state []uint8, rngs []*xrand.Rand, o options, noop bool, c *Checkpoint) (*engine.Core, *xrand.Rand, error) {
	core := engine.New(engineGraph(g, ord), rule, state, rngs, o.engine(noop, ord))
	schedRng, err := c.RestoreEngine(core)
	if err != nil {
		return nil, nil, fmt.Errorf("mis: %w", err)
	}
	return core, schedRng, nil
}

// Checkpoint snapshots the 2-state process.
func (p *TwoState) Checkpoint() (*Checkpoint, error) {
	c, err := capture(p.core, p.schedRng, p.opts)
	if err != nil {
		return nil, err
	}
	engineStates := p.core.States()
	states := make([]uint8, len(engineStates))
	for i, s := range engineStates {
		if s == twoBlack {
			states[p.ord.OldID(i)] = 1
		}
	}
	c.Process = "2-state"
	c.States = states
	return c, nil
}

// RestoreTwoState reconstructs a 2-state process from a checkpoint on g.
// Extra options (e.g. WithWorkers, WithLocalTimes) may be supplied; options
// affecting randomness are taken from the checkpoint.
func RestoreTwoState(g *graph.Graph, c *Checkpoint, opts ...Option) (*TwoState, error) {
	if c.Process != "2-state" {
		return nil, fmt.Errorf("mis: checkpoint is %q, want 2-state", c.Process)
	}
	if c.N != g.N() || len(c.States) != g.N() {
		return nil, fmt.Errorf("mis: checkpoint order %d vs graph %d", c.N, g.N())
	}
	rngs, err := snapshot.UnmarshalRngs(c.Rngs, g.N())
	if err != nil {
		return nil, fmt.Errorf("mis: %w", err)
	}
	o, err := restoreOptions(c, opts)
	if err != nil {
		return nil, err
	}
	ord := orderingFor(g, o)
	state := make([]uint8, g.N())
	for u, s := range c.States {
		ns := twoWhite
		if s == 1 {
			ns = twoBlack
		}
		state[ord.NewID(u)] = ns
	}
	core, schedRng, err := restoreCore(g, ord, twoStateRule{}, state, permuteRngs(ord, rngs), o, true, c)
	if err != nil {
		return nil, err
	}
	return &TwoState{core: core, opts: o, g: g, ord: ord, schedRng: schedRng}, nil
}

// Checkpoint snapshots the 3-state process.
func (p *ThreeState) Checkpoint() (*Checkpoint, error) {
	c, err := capture(p.core, p.schedRng, p.opts)
	if err != nil {
		return nil, err
	}
	c.Process = "3-state"
	c.States = unpermuteU8(p.ord, p.core.States())
	return c, nil
}

// RestoreThreeState reconstructs a 3-state process from a checkpoint on g.
func RestoreThreeState(g *graph.Graph, c *Checkpoint, opts ...Option) (*ThreeState, error) {
	if c.Process != "3-state" {
		return nil, fmt.Errorf("mis: checkpoint is %q, want 3-state", c.Process)
	}
	if c.N != g.N() || len(c.States) != g.N() {
		return nil, fmt.Errorf("mis: checkpoint order %d vs graph %d", c.N, g.N())
	}
	rngs, err := snapshot.UnmarshalRngs(c.Rngs, g.N())
	if err != nil {
		return nil, fmt.Errorf("mis: %w", err)
	}
	o, err := restoreOptions(c, opts)
	if err != nil {
		return nil, err
	}
	ord := orderingFor(g, o)
	state := make([]uint8, g.N())
	for u, s := range c.States {
		switch TriState(s) {
		case TriWhite, TriBlack0, TriBlack1:
			state[ord.NewID(u)] = s
		default:
			return nil, fmt.Errorf("mis: invalid 3-state value %d at vertex %d", s, u)
		}
	}
	core, schedRng, err := restoreCore(g, ord, threeStateRule{}, state, permuteRngs(ord, rngs), o, false, c)
	if err != nil {
		return nil, err
	}
	return &ThreeState{core: core, opts: o, g: g, ord: ord, schedRng: schedRng}, nil
}

// Checkpoint snapshots the 3-color process, including its switch.
func (p *ThreeColor) Checkpoint() (*Checkpoint, error) {
	c, err := capture(p.core, nil, p.opts)
	if err != nil {
		return nil, err
	}
	n := p.N()
	levels := make([]uint8, n)
	for i := 0; i < n; i++ {
		levels[p.ord.OldID(i)] = p.rule.clock.Level(i)
	}
	c.Process = "3-color"
	c.States = unpermuteU8(p.ord, p.core.States())
	c.Levels = levels
	c.ClockBits = p.rule.clock.RandomBits()
	c.ZetaLog2 = p.opts.switchZetaLog2
	return c, nil
}

// RestoreThreeColor reconstructs a 3-color process from a checkpoint on g.
func RestoreThreeColor(g *graph.Graph, c *Checkpoint, opts ...Option) (*ThreeColor, error) {
	if c.Process != "3-color" {
		return nil, fmt.Errorf("mis: checkpoint is %q, want 3-color", c.Process)
	}
	n := g.N()
	if c.N != n || len(c.States) != n || len(c.Levels) != n {
		return nil, fmt.Errorf("mis: checkpoint order %d vs graph %d", c.N, n)
	}
	rngs, err := snapshot.UnmarshalRngs(c.Rngs, n)
	if err != nil {
		return nil, fmt.Errorf("mis: %w", err)
	}
	o, err := restoreOptions(c, opts)
	if err != nil {
		return nil, err
	}
	o.switchZetaLog2 = c.ZetaLog2
	if o.switchZetaLog2 == 0 || o.switchZetaLog2 > 64 {
		return nil, fmt.Errorf("mis: checkpoint switch parameter k = %d outside [1, 64]", c.ZetaLog2)
	}
	ord := orderingFor(g, o)
	state := make([]uint8, n)
	for u, s := range c.States {
		switch Color(s) {
		case ColorWhite, ColorBlack, ColorGray:
			state[ord.NewID(u)] = s
		default:
			return nil, fmt.Errorf("mis: invalid color value %d at vertex %d", s, u)
		}
	}
	engineRngs := permuteRngs(ord, rngs)
	rule := &threeColorRule{clock: newRestoredClock(engineGraph(g, ord), c, ord), rngs: engineRngs}
	core, _, err := restoreCore(g, ord, rule, state, engineRngs, o, false, c)
	if err != nil {
		return nil, err
	}
	return &ThreeColor{core: core, rule: rule, opts: o, g: g, ord: ord}, nil
}

package mis

import (
	"testing"

	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

func TestSnapshotCountsAddUp(t *testing.T) {
	g := graph.Gnp(80, 0.08, xrand.New(41))
	p := NewTwoState(g, WithSeed(1))
	for i := 0; i < 10; i++ {
		m := Snapshot(p)
		if m.Round != p.Round() {
			t.Fatal("round mismatch")
		}
		if m.Black < 0 || m.Black > g.N() {
			t.Fatal("black count out of range")
		}
		if m.Active != p.ActiveCount() {
			t.Fatalf("active mismatch: %d vs %d", m.Active, p.ActiveCount())
		}
		if m.StableBlack > m.Black {
			t.Fatal("stable black exceeds black")
		}
		if m.Gray != 0 {
			t.Fatal("2-state process reported gray vertices")
		}
		p.Step()
	}
}

func TestSnapshotUnstableZeroAtStabilization(t *testing.T) {
	g := graph.Gnp(60, 0.1, xrand.New(42))
	p := NewTwoState(g, WithSeed(2))
	Run(p, 10000)
	m := Snapshot(p)
	if m.Unstable != 0 || m.Active != 0 {
		t.Fatalf("stabilized snapshot: unstable=%d active=%d", m.Unstable, m.Active)
	}
}

func TestSnapshotGrayForThreeColor(t *testing.T) {
	g := graph.Path(4)
	p := NewThreeColor(g, WithSeed(3))
	p.Corrupt(0, ColorGray, p.SwitchLevel(0))
	p.Corrupt(1, ColorGray, p.SwitchLevel(1))
	p.Corrupt(2, ColorWhite, p.SwitchLevel(2))
	p.Corrupt(3, ColorBlack, p.SwitchLevel(3))
	m := Snapshot(p)
	if m.Gray != 2 || m.Black != 1 {
		t.Fatalf("snapshot gray=%d black=%d, want 2, 1", m.Gray, m.Black)
	}
}

func TestRunTraced(t *testing.T) {
	g := graph.Complete(32)
	p := NewTwoState(g, WithSeed(4), WithInit(InitAllWhite))
	res, hist := RunTraced(p, 10000, 1)
	if !res.Stabilized {
		t.Fatal("not stabilized")
	}
	if len(hist) < 2 {
		t.Fatalf("history too short: %d", len(hist))
	}
	if hist[0].Round != 0 {
		t.Fatal("first snapshot not round 0")
	}
	last := hist[len(hist)-1]
	if last.Round != res.Rounds || last.Unstable != 0 {
		t.Fatalf("last snapshot: %+v vs result %+v", last, res)
	}
	// Unstable counts are non-increasing for the 2-state process in a traced
	// run? Not guaranteed round-by-round in general, but the first is n and
	// the last is 0.
	if hist[0].Unstable != g.N() {
		t.Fatalf("all-white K_n should start fully unstable, got %d", hist[0].Unstable)
	}
}

func TestRunTracedEveryK(t *testing.T) {
	g := graph.Complete(16)
	p := NewTwoState(g, WithSeed(5))
	_, hist := RunTraced(p, 10000, 5)
	for i := 1; i < len(hist)-1; i++ {
		if hist[i].Round%5 != 0 {
			t.Fatalf("snapshot at round %d not a multiple of 5", hist[i].Round)
		}
	}
}

func TestDefaultRoundCap(t *testing.T) {
	if DefaultRoundCap(0) != 64 || DefaultRoundCap(1) != 64 {
		t.Fatal("tiny caps wrong")
	}
	if DefaultRoundCap(1<<10) <= 0 || DefaultRoundCap(1<<20) <= DefaultRoundCap(1<<10) {
		t.Fatal("cap not growing")
	}
}

func TestInitString(t *testing.T) {
	for _, init := range AllInits() {
		if init.String() == "" {
			t.Fatal("empty init name")
		}
	}
	if Init(99).String() != "Init(99)" {
		t.Fatal("unknown init string wrong")
	}
}

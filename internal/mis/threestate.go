package mis

import (
	"fmt"

	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

// TriState is a vertex state of the 3-state MIS process.
type TriState uint8

// The three states of Definition 5. Black1 and Black0 both present as
// "black" to neighbors; the extra bit removes the need for collision
// detection: a black0 vertex that hears a black1 neighbor knows it lost the
// symmetry-breaking round and becomes white.
const (
	TriWhite TriState = iota + 1
	TriBlack0
	TriBlack1
)

func (s TriState) String() string {
	switch s {
	case TriWhite:
		return "white"
	case TriBlack0:
		return "black0"
	case TriBlack1:
		return "black1"
	default:
		return fmt.Sprintf("TriState(%d)", uint8(s))
	}
}

// Black reports whether the state presents as black.
func (s TriState) Black() bool { return s == TriBlack0 || s == TriBlack1 }

// ThreeState is the paper's 3-state MIS process (Definition 5):
//
//	if c(u) = black1, or (c(u) = black0 and no neighbor is black1), or
//	   (c(u) = white and all neighbors are white):
//	     c'(u) = uniformly random in {black1, black0}
//	else if c(u) = black0:   c'(u) = white    // it has a black1 neighbor
//	else:                    c'(u) = c(u)     // white with a black neighbor
//
// A vertex with no neighbors vacuously satisfies "all neighbors are white".
// Stable black vertices alternate between black1 and black0 forever, so
// stabilization is detected through the monotone core I_t (black vertices
// with no black neighbors) covering the graph, not through state quiescence.
type ThreeState struct {
	g        *graph.Graph
	state    []TriState
	next     []TriState
	nbrB1    []int32 // black1 neighbors
	nbrBlack []int32 // black neighbors (black1 + black0)
	rngs     []*xrand.Rand
	round    int
	bits     int64

	activeCnt  int
	stabilized bool
	mark       []int32 // stamp buffer for the N+(I_t) coverage check
	markStamp  int32
	lt         *localTimes
}

var _ Process = (*ThreeState)(nil)

// NewThreeState creates a 3-state process on g. With WithInitialBlack or the
// mask-based initializers, black vertices start in black1; InitRandom draws
// uniformly from all three states.
func NewThreeState(g *graph.Graph, opts ...Option) *ThreeState {
	o := buildOptions(opts)
	master := xrand.New(o.seed)
	n := g.N()
	p := &ThreeState{
		g:        g,
		state:    make([]TriState, n),
		next:     make([]TriState, n),
		nbrB1:    make([]int32, n),
		nbrBlack: make([]int32, n),
		rngs:     splitVertexStreams(n, master),
		mark:     make([]int32, n),
	}
	irng := initStream(n, master)
	if o.initialBlack == nil && o.init == InitRandom {
		for u := range p.state {
			p.state[u] = TriState(1 + irng.Intn(3))
		}
	} else {
		mask := initialBlackMask(g, o, irng)
		for u, b := range mask {
			if b {
				p.state[u] = TriBlack1
			} else {
				p.state[u] = TriWhite
			}
		}
	}
	for i := range p.mark {
		p.mark[i] = -1
	}
	if o.trackLocal {
		p.lt = newLocalTimes(n)
	}
	p.recount()
	p.recordLocal()
	return p
}

// inI reports "black with no black neighbor" (membership in I_t).
func (p *ThreeState) inI(u int) bool {
	return p.state[u].Black() && p.nbrBlack[u] == 0
}

func (p *ThreeState) recordLocal() {
	if p.lt != nil {
		p.lt.record(p.g, p.round, p.inI)
	}
}

// StabilizationTimes returns the per-vertex stabilization rounds recorded
// so far (-1 = not yet stable); nil unless WithLocalTimes was set.
func (p *ThreeState) StabilizationTimes() []int {
	if p.lt == nil {
		return nil
	}
	return p.lt.times()
}

// recount rebuilds derived counters and the stabilization flag from state.
func (p *ThreeState) recount() {
	for u := range p.nbrB1 {
		p.nbrB1[u] = 0
		p.nbrBlack[u] = 0
	}
	for u, s := range p.state {
		if !s.Black() {
			continue
		}
		for _, v := range p.g.Neighbors(u) {
			p.nbrBlack[v]++
			if s == TriBlack1 {
				p.nbrB1[v]++
			}
		}
	}
	p.activeCnt = p.countActive()
	p.stabilized = p.coverageComplete()
}

// active reports whether u randomizes this round per Definition 5.
func (p *ThreeState) active(u int) bool {
	switch p.state[u] {
	case TriBlack1:
		return true
	case TriBlack0:
		return p.nbrB1[u] == 0
	default: // white
		return p.nbrBlack[u] == 0
	}
}

func (p *ThreeState) countActive() int {
	c := 0
	for u := range p.state {
		if p.active(u) {
			c++
		}
	}
	return c
}

// coverageComplete reports whether N+(I_t) = V, where I_t is the set of
// black vertices with no black neighbor. I_t is monotone non-decreasing
// under the update rule, so this condition is permanent once reached and the
// black set then equals I_t, an MIS.
func (p *ThreeState) coverageComplete() bool {
	p.markStamp++
	stamp := p.markStamp
	covered := 0
	n := p.g.N()
	for u, s := range p.state {
		if !s.Black() || p.nbrBlack[u] != 0 {
			continue
		}
		if p.mark[u] != stamp {
			p.mark[u] = stamp
			covered++
		}
		for _, v := range p.g.Neighbors(u) {
			if p.mark[v] != stamp {
				p.mark[v] = stamp
				covered++
			}
		}
	}
	return covered == n
}

// Name implements Process.
func (p *ThreeState) Name() string { return "3-state" }

// N implements Process.
func (p *ThreeState) N() int { return p.g.N() }

// Round implements Process.
func (p *ThreeState) Round() int { return p.round }

// States implements Process.
func (p *ThreeState) States() int { return 3 }

// RandomBits implements Process.
func (p *ThreeState) RandomBits() int64 { return p.bits }

// ActiveCount implements Process.
func (p *ThreeState) ActiveCount() int { return p.activeCnt }

// Black implements Process.
func (p *ThreeState) Black(u int) bool { return p.state[u].Black() }

// State returns the full state of u.
func (p *ThreeState) State(u int) TriState { return p.state[u] }

// Stabilized implements Process.
func (p *ThreeState) Stabilized() bool { return p.stabilized }

// Graph returns the underlying graph.
func (p *ThreeState) Graph() *graph.Graph { return p.g }

// Step implements Process: one synchronous round of Definition 5.
func (p *ThreeState) Step() {
	for u, s := range p.state {
		switch {
		case p.active(u):
			if p.rngs[u].Bit() {
				p.next[u] = TriBlack1
			} else {
				p.next[u] = TriBlack0
			}
			p.bits++
		case s == TriBlack0:
			p.next[u] = TriWhite
		default:
			p.next[u] = s
		}
	}
	// Commit and update neighbor counters for changed vertices.
	for u := range p.state {
		prev, cur := p.state[u], p.next[u]
		if prev == cur {
			continue
		}
		db1 := b2i(cur == TriBlack1) - b2i(prev == TriBlack1)
		db := b2i(cur.Black()) - b2i(prev.Black())
		if db1 != 0 || db != 0 {
			for _, v := range p.g.Neighbors(u) {
				p.nbrB1[v] += int32(db1)
				p.nbrBlack[v] += int32(db)
			}
		}
		p.state[u] = cur
	}
	p.round++
	p.activeCnt = p.countActive()
	if !p.stabilized {
		p.stabilized = p.coverageComplete()
	}
	p.recordLocal()
}

// Rebind switches the process to a new graph on the same vertex set,
// keeping all vertex states (topology churn). It panics on order mismatch.
func (p *ThreeState) Rebind(g *graph.Graph) {
	if g.N() != p.g.N() {
		panic(fmt.Sprintf("mis: Rebind to order %d != %d", g.N(), p.g.N()))
	}
	p.g = g
	p.stabilized = false
	p.recount()
	if p.lt != nil {
		p.lt.reset()
		p.recordLocal()
	}
}

// Corrupt overwrites the state of u mid-run and rebuilds counters.
func (p *ThreeState) Corrupt(u int, s TriState) {
	p.state[u] = s
	p.stabilized = false
	p.recount()
	if p.lt != nil {
		p.lt.reset()
		p.recordLocal()
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

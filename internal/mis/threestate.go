package mis

import (
	"fmt"

	"ssmis/internal/engine"
	"ssmis/internal/engine/kernel"
	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

// TriState is a vertex state of the 3-state MIS process.
type TriState uint8

// The three states of Definition 5. Black1 and Black0 both present as
// "black" to neighbors; the extra bit removes the need for collision
// detection: a black0 vertex that hears a black1 neighbor knows it lost the
// symmetry-breaking round and becomes white.
const (
	TriWhite TriState = iota + 1
	TriBlack0
	TriBlack1
)

func (s TriState) String() string {
	switch s {
	case TriWhite:
		return "white"
	case TriBlack0:
		return "black0"
	case TriBlack1:
		return "black1"
	default:
		return fmt.Sprintf("TriState(%d)", uint8(s))
	}
}

// Black reports whether the state presents as black.
func (s TriState) Black() bool { return s == TriBlack0 || s == TriBlack1 }

// threeStateRule is Definition 5 as an engine rule. Counter A counts black
// neighbors, counter B counts black1 neighbors:
//
//	if c(u) = black1, or (c(u) = black0 and no neighbor is black1), or
//	   (c(u) = white and all neighbors are white):
//	     c'(u) = uniformly random in {black1, black0}
//	else if c(u) = black0:   c'(u) = white    // it has a black1 neighbor
//	else:                    c'(u) = c(u)     // white with a black neighbor
//
// The worklist therefore holds every black vertex plus the active whites.
type threeStateRule struct{}

func (threeStateRule) NumStates() int { return 3 }

func (threeStateRule) Class(s uint8) uint8 {
	switch TriState(s) {
	case TriBlack0:
		return engine.ClassA
	case TriBlack1:
		return engine.ClassA | engine.ClassB
	default:
		return 0
	}
}

func (threeStateRule) Black(s uint8) bool { return TriState(s).Black() }

func (threeStateRule) Active(_ int, s uint8, a, b int32) bool {
	switch TriState(s) {
	case TriBlack1:
		return true
	case TriBlack0:
		return b == 0
	default: // white
		return a == 0
	}
}

func (threeStateRule) Touched(_ int, s uint8, a, _ int32) bool {
	return TriState(s).Black() || a == 0
}

func (r threeStateRule) Evaluate(u int, s uint8, a, b int32, d *engine.Draw) uint8 {
	if r.Active(u, s, a, b) {
		if d.Coin(u) {
			return uint8(TriBlack1)
		}
		return uint8(TriBlack0)
	}
	// Touched but not active: black0 with a black1 neighbor demotes.
	return uint8(TriWhite)
}

// threeStateProg is Definition 5 as a compiled lane program. The encoding
// follows the kernel contract — lo is the black projection, so black0 is
// code 1 and black1 (the only ClassB state) is code 3 — and the hasBNbr
// lane carries "has a black1 neighbor", maintained incrementally from
// counter B's zero crossings (the black1→black0 demotion is its db = −1
// step). An active vertex's coin picks black1/black0; a black0 vertex that
// hears a black1 neighbor is touched-but-not-active and demotes to white
// with no coin, exactly as the scalar Evaluate above.
var threeStateProg = kernel.MustCompile(kernel.Spec{
	StateOf: [4]uint8{uint8(TriWhite), uint8(TriBlack0), 0, uint8(TriBlack1)},
	UseB:    true,
	Active: kernel.TruthTable(func(code int, a, b bool) bool {
		switch code {
		case 3: // black1
			return true
		case 1: // black0
			return !b
		default: // white (code 2 unused; mirroring white minimizes best)
			return !a
		}
	}),
	Touched: kernel.TruthTable(func(code int, a, _ bool) bool {
		return code&1 == 1 || !a
	}),
	CoinHi:    [4]uint8{3, 3, 3, 3},
	CoinLo:    [4]uint8{1, 1, 1, 1},
	ForcedOn:  [4]uint8{0, 0, 0, 0},
	ForcedOff: [4]uint8{0, 0, 0, 0},
})

// LaneProgram marks the rule for the engine's bit-sliced kernel.
func (threeStateRule) LaneProgram() *kernel.Program { return threeStateProg }

// ThreeState is the paper's 3-state MIS process (Definition 5), a thin rule
// over the shared frontier engine. Stable black vertices alternate between
// black1 and black0 forever, so stabilization is detected through the
// monotone core I_t (black vertices with no black neighbors) covering the
// graph, not through state quiescence.
type ThreeState struct {
	core *engine.Core
	opts options
	// g is the caller's graph in original vertex ids; ord the locality
	// relabeling the engine runs under (nil = identity, order.go).
	g   *graph.Graph
	ord *graph.Ordering
	// schedRng drives daemon selection (daemon.go), created on first use.
	schedRng *xrand.Rand
}

var _ Process = (*ThreeState)(nil)

// NewThreeState creates a 3-state process on g. With WithInitialBlack or the
// mask-based initializers, black vertices start in black1; InitRandom draws
// uniformly from all three states.
func NewThreeState(g *graph.Graph, opts ...Option) *ThreeState {
	o := buildOptions(opts)
	master := xrand.New(o.seed)
	n := g.N()
	ord := orderingFor(g, o)
	state := stateBuf(n, o.ctx)
	irng := initStream(n, master)
	// Initialization coins are drawn in original vertex order (part of the
	// pinned execution); only the storage slot is relabeled.
	if o.initialBlack == nil && o.init == InitRandom {
		for u := 0; u < n; u++ {
			state[ord.NewID(u)] = uint8(1 + irng.Intn(3))
		}
	} else {
		for u, b := range initialBlackMask(g, o, irng) {
			s := uint8(TriWhite)
			if b {
				s = uint8(TriBlack1)
			}
			state[ord.NewID(u)] = s
		}
	}
	return &ThreeState{
		core: engine.New(engineGraph(g, ord), threeStateRule{}, state,
			splitVertexStreams(n, master, o.ctx, ord), o.engine(false, ord)),
		opts: o,
		g:    g,
		ord:  ord,
	}
}

// StabilizationTimes returns the per-vertex stabilization rounds recorded
// so far (-1 = not yet stable); nil unless WithLocalTimes was set.
func (p *ThreeState) StabilizationTimes() []int {
	return stabilizationTimes(p.core, p.opts)
}

// Name implements Process.
func (p *ThreeState) Name() string { return "3-state" }

// N implements Process.
func (p *ThreeState) N() int { return p.core.Graph().N() }

// Round implements Process.
func (p *ThreeState) Round() int { return p.core.Round() }

// States implements Process.
func (p *ThreeState) States() int { return 3 }

// RandomBits implements Process.
func (p *ThreeState) RandomBits() int64 { return p.core.Bits() }

// ActiveCount implements Process.
func (p *ThreeState) ActiveCount() int { return p.core.ActiveCount() }

// Black implements Process.
func (p *ThreeState) Black(u int) bool { return TriState(p.core.State(p.ord.NewID(u))).Black() }

// State returns the full state of u.
func (p *ThreeState) State(u int) TriState { return TriState(p.core.State(p.ord.NewID(u))) }

// Stabilized implements Process.
func (p *ThreeState) Stabilized() bool { return p.core.Stabilized() }

// Graph returns the underlying graph (the caller's, in original vertex ids).
func (p *ThreeState) Graph() *graph.Graph { return p.g }

// Step implements Process: one synchronous round of Definition 5.
func (p *ThreeState) Step() { p.core.Step() }

// Rebind switches the process to a new graph on the same vertex set,
// keeping all vertex states (topology churn); a held relabeling is carried
// over to the new graph. It panics on order mismatch.
func (p *ThreeState) Rebind(g *graph.Graph) {
	p.g = g
	if p.ord != nil {
		p.ord = p.ord.Rebind(g)
		p.core.RebindOrdered(p.ord)
		return
	}
	p.core.Rebind(g)
}

// Corrupt overwrites the state of u mid-run and rebuilds the derived
// structures.
func (p *ThreeState) Corrupt(u int, s TriState) {
	p.core.States()[p.ord.NewID(u)] = uint8(s)
	p.core.Rebuild()
}

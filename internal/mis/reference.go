package mis

// Reference implementations: direct, unoptimized transcriptions of
// Definitions 4, 5 and 28 with no incremental counters, no fast paths and
// no early exits. They exist solely as differential-testing oracles for the
// optimized simulators — each Step recomputes everything from the state
// vector in O(n·Δ). They consume randomness through the same per-vertex
// streams, so a reference run and an optimized run with equal (graph, seed,
// initial states) must agree exactly, state for state, round for round.

import (
	"ssmis/internal/graph"
	"ssmis/internal/phaseclock"
	"ssmis/internal/xrand"
)

// RefTwoState is the oracle for TwoState.
type RefTwoState struct {
	g     *graph.Graph
	black []bool
	rngs  []*xrand.Rand
	round int
}

// NewRefTwoState creates the oracle with the given initial colors (copied).
func NewRefTwoState(g *graph.Graph, seed uint64, initial []bool) *RefTwoState {
	master := xrand.New(seed)
	return &RefTwoState{
		g:     g,
		black: append([]bool(nil), initial...),
		rngs:  splitVertexStreams(g.N(), master, nil, nil),
	}
}

// Black reports the color of u.
func (p *RefTwoState) Black(u int) bool { return p.black[u] }

// Round returns completed rounds.
func (p *RefTwoState) Round() int { return p.round }

func (p *RefTwoState) hasBlackNeighbor(u int, colors []bool) bool {
	for _, v := range p.g.Neighbors(u) {
		if colors[v] {
			return true
		}
	}
	return false
}

// Step is the verbatim Definition 4 rule.
func (p *RefTwoState) Step() {
	next := make([]bool, len(p.black))
	for u := range p.black {
		blackNbr := p.hasBlackNeighbor(u, p.black)
		active := (p.black[u] && blackNbr) || (!p.black[u] && !blackNbr)
		if active {
			next[u] = p.rngs[u].Bit()
		} else {
			next[u] = p.black[u]
		}
	}
	p.black = next
	p.round++
}

// Stabilized recomputes the activity predicate from scratch.
func (p *RefTwoState) Stabilized() bool {
	for u := range p.black {
		blackNbr := p.hasBlackNeighbor(u, p.black)
		if (p.black[u] && blackNbr) || (!p.black[u] && !blackNbr) {
			return false
		}
	}
	return true
}

// RefThreeState is the oracle for ThreeState.
type RefThreeState struct {
	g     *graph.Graph
	state []TriState
	rngs  []*xrand.Rand
	round int
}

// NewRefThreeState creates the oracle with the given initial states (copied).
func NewRefThreeState(g *graph.Graph, seed uint64, initial []TriState) *RefThreeState {
	master := xrand.New(seed)
	return &RefThreeState{
		g:     g,
		state: append([]TriState(nil), initial...),
		rngs:  splitVertexStreams(g.N(), master, nil, nil),
	}
}

// State returns u's current state.
func (p *RefThreeState) State(u int) TriState { return p.state[u] }

// Round returns completed rounds.
func (p *RefThreeState) Round() int { return p.round }

// Step is the verbatim Definition 5 rule.
func (p *RefThreeState) Step() {
	next := make([]TriState, len(p.state))
	for u := range p.state {
		var hasBlack1, hasBlack bool
		for _, v := range p.g.Neighbors(u) {
			if p.state[v] == TriBlack1 {
				hasBlack1 = true
			}
			if p.state[v].Black() {
				hasBlack = true
			}
		}
		switch {
		case p.state[u] == TriBlack1,
			p.state[u] == TriBlack0 && !hasBlack1,
			p.state[u] == TriWhite && !hasBlack:
			if p.rngs[u].Bit() {
				next[u] = TriBlack1
			} else {
				next[u] = TriBlack0
			}
		case p.state[u] == TriBlack0:
			next[u] = TriWhite
		default:
			next[u] = p.state[u]
		}
	}
	p.state = next
	p.round++
}

// RefThreeColor is the oracle for ThreeColor, including its own verbatim
// copy of the Definition 26 switch rule.
type RefThreeColor struct {
	g     *graph.Graph
	color []Color
	level []uint8
	rngs  []*xrand.Rand
	round int
	zetaK uint
}

// NewRefThreeColor creates the oracle with the given initial colors and
// switch levels (copied); ζ = 2^-7 as in Definition 28.
func NewRefThreeColor(g *graph.Graph, seed uint64, colors []Color, levels []uint8) *RefThreeColor {
	master := xrand.New(seed)
	return &RefThreeColor{
		g:     g,
		color: append([]Color(nil), colors...),
		level: append([]uint8(nil), levels...),
		rngs:  splitVertexStreams(g.N(), master, nil, nil),
		zetaK: phaseclock.DefaultZetaLog2,
	}
}

// ColorOf returns u's color.
func (p *RefThreeColor) ColorOf(u int) Color { return p.color[u] }

// Level returns u's switch level.
func (p *RefThreeColor) Level(u int) uint8 { return p.level[u] }

// Round returns completed rounds.
func (p *RefThreeColor) Round() int { return p.round }

// Step is the verbatim Definition 28 color rule (reading σ_{t-1} off the
// current levels) followed by the Definition 26 switch rule, with the color
// coin drawn before the switch coin on each vertex's stream.
func (p *RefThreeColor) Step() {
	n := p.g.N()
	nextColor := make([]Color, n)
	nextLevel := make([]uint8, n)
	for u := 0; u < n; u++ {
		hasBlack := false
		for _, v := range p.g.Neighbors(u) {
			if p.color[v] == ColorBlack {
				hasBlack = true
				break
			}
		}
		on := p.level[u] <= 2
		switch {
		case p.color[u] == ColorBlack && hasBlack:
			if p.rngs[u].Bit() {
				nextColor[u] = ColorBlack
			} else {
				nextColor[u] = ColorGray
			}
		case p.color[u] == ColorWhite && !hasBlack:
			if p.rngs[u].Bit() {
				nextColor[u] = ColorBlack
			} else {
				nextColor[u] = ColorWhite
			}
		case p.color[u] == ColorGray && on:
			nextColor[u] = ColorWhite
		default:
			nextColor[u] = p.color[u]
		}

		stayTop := false
		if p.level[u] == 5 {
			leave := p.rngs[u].BernoulliPow2(p.zetaK)
			stayTop = !leave
		}
		switch {
		case stayTop || p.level[u] == 0:
			nextLevel[u] = 5
		default:
			maxL := p.level[u]
			for _, v := range p.g.Neighbors(u) {
				if p.level[v] > maxL {
					maxL = p.level[v]
				}
			}
			nextLevel[u] = maxL - 1
		}
	}
	p.color = nextColor
	p.level = nextLevel
	p.round++
}

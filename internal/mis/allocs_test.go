package mis

import (
	"testing"

	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

// A context-backed 3-color run must be bit-identical to a fresh-allocation
// run — including the switch sub-process, whose level arrays now lease
// from the context too.
func TestThreeColorRunContextBitIdentical(t *testing.T) {
	ctx := engine.NewRunContext()
	// Interleave sizes so stale clock buffers from a larger previous run
	// cannot leak into a smaller one.
	graphs := []*graph.Graph{
		graph.Gnp(300, 0.02, xrand.New(1)),
		graph.Gnp(60, 0.2, xrand.New(2)),
		graph.Gnp(300, 0.02, xrand.New(1)),
	}
	for trial, g := range graphs {
		seed := uint64(50 + trial)
		fresh := NewThreeColor(g, WithSeed(seed))
		leased := NewThreeColor(g, WithRunContext(ctx), WithSeed(seed))
		cap := 4 * DefaultRoundCap(g.N())
		fr := Run(fresh, cap)
		lr := Run(leased, cap)
		if fr != lr {
			t.Fatalf("trial %d: fresh %+v vs leased %+v", trial, fr, lr)
		}
		for u := 0; u < g.N(); u++ {
			if fresh.ColorOf(u) != leased.ColorOf(u) || fresh.SwitchLevel(u) != leased.SwitchLevel(u) {
				t.Fatalf("trial %d: vertex %d diverged (color %v/%v, level %d/%d)", trial, u,
					fresh.ColorOf(u), leased.ColorOf(u), fresh.SwitchLevel(u), leased.SwitchLevel(u))
			}
		}
	}
}

// The pool-backed 3-color clock closes the last per-run O(n) allocation of
// the 18-state process: with a warm run context, a full construct-and-run
// cycle must stay O(1) allocations (ROADMAP "pool-backed 3-color clock").
func TestThreeColorRunContextAmortizesAllocations(t *testing.T) {
	g := graph.Gnp(1024, 0.008, xrand.New(9))
	ctx := engine.NewRunContext()
	runOnce := func(seed uint64) {
		p := NewThreeColor(g, WithRunContext(ctx), WithSeed(seed))
		if res := Run(p, 4*DefaultRoundCap(g.N())); !res.Stabilized {
			t.Fatal("did not stabilize")
		}
	}
	runOnce(1) // warm the context to steady-state capacity
	avg := testing.AllocsPerRun(10, func() { runOnce(2) })
	// A fresh run pays O(n) allocations (vertex streams, state, bitsets,
	// clock level arrays); a context-backed run must not scale with n.
	if avg > 24 {
		t.Fatalf("context-backed 3-color run averaged %.1f allocations, want O(1)", avg)
	}
}

package mis

import (
	"testing"
	"testing/quick"

	"ssmis/internal/graph"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

func requireMIS(t *testing.T, g *graph.Graph, p Process) {
	t.Helper()
	if !p.Stabilized() {
		t.Fatalf("%s did not stabilize within cap on %v", p.Name(), g)
	}
	if err := verify.MIS(g, p.Black); err != nil {
		t.Fatalf("%s stabilized to a non-MIS: %v", p.Name(), err)
	}
}

func TestTwoStateStabilizesOnFamilies(t *testing.T) {
	rng := xrand.New(1)
	families := map[string]*graph.Graph{
		"single":     graph.Empty(1),
		"edgeless":   graph.Empty(20),
		"edge":       graph.Path(2),
		"path":       graph.Path(50),
		"cycle":      graph.Cycle(51),
		"star":       graph.Star(40),
		"clique":     graph.Complete(64),
		"tree":       graph.RandomTree(200, rng),
		"grid":       graph.Grid(10, 10),
		"gnp-sparse": graph.Gnp(300, 0.01, rng),
		"gnp-dense":  graph.Gnp(120, 0.3, rng),
		"bipartite":  graph.CompleteBipartite(10, 15),
		"cliques":    graph.DisjointCliques(8, 8),
	}
	for name, g := range families {
		p := NewTwoState(g, WithSeed(42))
		Run(p, DefaultRoundCap(g.N()))
		if !p.Stabilized() {
			t.Errorf("%s: not stabilized after %d rounds", name, p.Round())
			continue
		}
		requireMIS(t, g, p)
	}
}

func TestTwoStateAllInitsConverge(t *testing.T) {
	rng := xrand.New(2)
	g := graph.Gnp(150, 0.05, rng)
	for _, init := range AllInits() {
		p := NewTwoState(g, WithSeed(7), WithInit(init))
		Run(p, DefaultRoundCap(g.N()))
		if !p.Stabilized() {
			t.Errorf("init %v: not stabilized", init)
			continue
		}
		requireMIS(t, g, p)
	}
}

func TestTwoStateEmptyGraphStabilizedImmediately(t *testing.T) {
	p := NewTwoState(graph.Empty(0))
	if !p.Stabilized() {
		t.Fatal("empty graph not immediately stabilized")
	}
	p.Step() // must be a no-op
	if p.Round() != 0 {
		t.Fatal("Step advanced a stabilized process")
	}
}

func TestTwoStateIsolatedVerticesTurnBlack(t *testing.T) {
	g := graph.Empty(10)
	p := NewTwoState(g, WithSeed(3), WithInit(InitAllWhite))
	Run(p, 1000)
	for u := 0; u < g.N(); u++ {
		if !p.Black(u) {
			t.Fatalf("isolated vertex %d not black at stabilization", u)
		}
	}
}

func TestTwoStateDeterminism(t *testing.T) {
	g := graph.Gnp(100, 0.05, xrand.New(4))
	a := NewTwoState(g, WithSeed(99))
	b := NewTwoState(g, WithSeed(99))
	ra := Run(a, 10000)
	rb := Run(b, 10000)
	if ra != rb {
		t.Fatalf("same seed, different results: %+v vs %+v", ra, rb)
	}
	for u := 0; u < g.N(); u++ {
		if a.Black(u) != b.Black(u) {
			t.Fatalf("final colors diverge at %d", u)
		}
	}
}

func TestTwoStateSeedsDiffer(t *testing.T) {
	g := graph.Complete(64)
	sawDifferent := false
	base := Run(NewTwoState(g, WithSeed(1)), 10000).Rounds
	for s := uint64(2); s < 12; s++ {
		if Run(NewTwoState(g, WithSeed(s)), 10000).Rounds != base {
			sawDifferent = true
			break
		}
	}
	if !sawDifferent {
		t.Fatal("ten different seeds all stabilized in the same round")
	}
}

func TestTwoStateStablePersists(t *testing.T) {
	// Once stabilized, stepping must not change anything.
	g := graph.Gnp(80, 0.08, xrand.New(5))
	p := NewTwoState(g, WithSeed(6))
	Run(p, 10000)
	final := p.BlackMask()
	round := p.Round()
	for i := 0; i < 50; i++ {
		p.Step()
	}
	if p.Round() != round {
		t.Fatal("Step advanced after stabilization")
	}
	for u, b := range p.BlackMask() {
		if b != final[u] {
			t.Fatal("colors changed after stabilization")
		}
	}
}

// I_t (stable black vertices) is monotone non-decreasing for the 2-state
// process: once black with no black neighbors, a vertex keeps that status.
func TestTwoStateStableBlackMonotone(t *testing.T) {
	g := graph.Gnp(120, 0.06, xrand.New(7))
	p := NewTwoState(g, WithSeed(8))
	prev := verify.StableBlack(g, p.Black)
	for r := 0; r < 400 && !p.Stabilized(); r++ {
		p.Step()
		cur := verify.StableBlack(g, p.Black)
		ok := true
		prev.ForEach(func(u int) {
			if !cur.Contains(u) {
				ok = false
			}
		})
		if !ok {
			t.Fatalf("round %d: I_t lost a vertex", p.Round())
		}
		prev = cur
	}
}

// The 2-state activity predicate: Stabilized ⇔ ActiveCount()==0 ⇔ MIS.
func TestTwoStateActiveCountConsistency(t *testing.T) {
	g := graph.Cycle(31)
	p := NewTwoState(g, WithSeed(9))
	for !p.Stabilized() {
		manual := 0
		for u := 0; u < g.N(); u++ {
			blackNbr := false
			for _, v := range g.Neighbors(u) {
				if p.Black(int(v)) {
					blackNbr = true
					break
				}
			}
			if p.Black(u) == blackNbr {
				manual++
			}
		}
		if manual != p.ActiveCount() {
			t.Fatalf("round %d: ActiveCount %d, manual %d", p.Round(), p.ActiveCount(), manual)
		}
		p.Step()
		if p.Round() > 10000 {
			t.Fatal("did not stabilize")
		}
	}
}

func TestTwoStateWithInitialBlack(t *testing.T) {
	g := graph.Path(4)
	// Start exactly at an MIS: {0, 2} — hold on, 2-3 edge: 3 white has black
	// neighbor 2 ✓; this is already stable.
	mask := []bool{true, false, true, false}
	p := NewTwoState(g, WithInitialBlack(mask))
	if !p.Stabilized() {
		t.Fatal("exact MIS initialization not recognized as stabilized")
	}
	if p.Round() != 0 {
		t.Fatal("rounds nonzero")
	}
	// Mask is copied.
	mask[0] = false
	if !p.Black(0) {
		t.Fatal("initial mask not copied")
	}
}

func TestTwoStateWithInitialBlackWrongLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTwoState(graph.Path(3), WithInitialBlack([]bool{true}))
}

func TestTwoStateCompleteFastPathMatchesGeneric(t *testing.T) {
	g := graph.Complete(40)
	fast := NewTwoState(g, WithSeed(10))
	slow := NewTwoState(g, WithSeed(10))
	if !fast.core.Complete() {
		t.Fatal("complete graph not detected")
	}
	// Disable the fast path and rebuild counters.
	slow.core.DisableCompleteFastPath()
	for !fast.Stabilized() || !slow.Stabilized() {
		fast.Step()
		slow.Step()
		for u := 0; u < g.N(); u++ {
			if fast.Black(u) != slow.Black(u) {
				t.Fatalf("round %d: fast/slow diverged at %d", fast.Round(), u)
			}
		}
		if fast.Round() > 10000 {
			t.Fatal("no stabilization")
		}
	}
	if fast.Round() != slow.Round() {
		t.Fatal("fast and slow stabilized at different rounds")
	}
}

func TestTwoStateCorruptionRecovery(t *testing.T) {
	g := graph.Gnp(100, 0.07, xrand.New(11))
	p := NewTwoState(g, WithSeed(12))
	Run(p, 10000)
	requireMIS(t, g, p)
	// Flip 20 vertices adversarially.
	corrupt := p.BlackMask()
	for u := 0; u < 20; u++ {
		corrupt[u] = !corrupt[u]
	}
	p.CorruptAll(corrupt)
	Run(p, 10000)
	requireMIS(t, g, p)
	// Single-vertex corruption via Corrupt.
	p.Corrupt(0, !p.Black(0))
	Run(p, 10000)
	requireMIS(t, g, p)
}

func TestTwoStateRandomBitsAccounting(t *testing.T) {
	g := graph.Complete(32)
	p := NewTwoState(g, WithSeed(13), WithInit(InitAllWhite))
	// Round 1: all 32 vertices active (all white, no black neighbors), so
	// exactly 32 bits are consumed.
	p.Step()
	if p.RandomBits() != 32 {
		t.Fatalf("bits after first round = %d, want 32", p.RandomBits())
	}
	Run(p, 10000)
	// One bit per active vertex per round; total bits <= n * rounds.
	if p.RandomBits() > int64(32*p.Round()) {
		t.Fatalf("bits %d exceed n·rounds %d", p.RandomBits(), 32*p.Round())
	}
}

func TestTwoStateCountsExposed(t *testing.T) {
	g := graph.Path(3)
	p := NewTwoState(g, WithInitialBlack([]bool{true, true, true}))
	if p.BlackCount() != 3 {
		t.Fatal("BlackCount wrong")
	}
	if p.StableBlackCount() != 0 {
		t.Fatal("StableBlackCount wrong for all-black path")
	}
	if p.States() != 2 || p.Name() != "2-state" || p.N() != 3 {
		t.Fatal("metadata wrong")
	}
}

// Property: on random graphs with random seeds, the stabilized 2-state
// process always yields an MIS.
func TestTwoStateMISProperty(t *testing.T) {
	master := xrand.New(14)
	f := func(seed uint64) bool {
		r := master.Split(seed)
		n := 2 + r.Intn(80)
		g := graph.Gnp(n, r.Float64()*0.3, r)
		p := NewTwoState(g, WithSeed(seed))
		Run(p, DefaultRoundCap(n))
		return p.Stabilized() && verify.MIS(g, p.Black) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 8 sanity: on K_n, the mean stabilization time grows like log n —
// measured loosely: T(K_256) averaged over trials stays below 12·log2(256).
func TestTwoStateCliqueMeanRounds(t *testing.T) {
	const n, trials = 256, 30
	sum := 0
	for s := uint64(0); s < trials; s++ {
		res := Run(NewTwoState(graph.Complete(n), WithSeed(s)), 100000)
		if !res.Stabilized {
			t.Fatal("clique run did not stabilize")
		}
		sum += res.Rounds
	}
	mean := float64(sum) / trials
	if mean > 12*8 { // 12·log2(256)
		t.Fatalf("K_%d mean stabilization %.1f rounds, suspiciously high", n, mean)
	}
}

package mis

import (
	"testing"

	"ssmis/internal/graph"
	"ssmis/internal/sched"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

// The 3-state process's livelock under the adversarial central daemon (E18)
// has a two-vertex provable core: K2 with both vertices in black0. Both
// vertices are privileged forever (each is black with a black neighbor and
// never in the stable core), the adversarial daemon always selects vertex 0,
// and vertex 1 — the one whose demotion or re-randomization would break the
// conflict — never fires. No coin sequence escapes: the configuration stays
// all-black and never stabilizes.
func newBlackBlackPair(t *testing.T, seed uint64) *ThreeState {
	t.Helper()
	p := NewThreeState(graph.Complete(2), WithSeed(seed))
	p.Corrupt(0, TriBlack0)
	p.Corrupt(1, TriBlack0)
	return p
}

// The fairness boundary of the E18 livelock: it exists ONLY at k = ∞
// (central-adversarial). Every finite k-fairness window lets the starved
// vertex fire within ~k steps, dissolving the livelock, with stabilization
// cost growing linearly in the window size.
func TestThreeStateLivelockFairnessBoundary(t *testing.T) {
	const cap = 4096

	// k = ∞: the provable livelock — the step cap is hit, with the full
	// per-step move budget burned on vertex 0.
	p := newBlackBlackPair(t, 3)
	if steps, ok := p.DaemonRun(sched.CentralAdversarial{}, cap); ok {
		t.Fatalf("central-adversarial stabilized the provable livelock instance in %d steps", steps)
	}
	if p.Moves() != cap {
		t.Fatalf("livelock moved %d times in %d steps, want one starved move per step", p.Moves(), cap)
	}

	// Finite k: the livelock disappears for EVERY window, and the step cost
	// stays O(k) — the starved demotion fires within a window of the first
	// black1/black0 conflict.
	for _, k := range []int{1, 2, 4, 16, 64, 256} {
		p := newBlackBlackPair(t, 3)
		steps, ok := p.DaemonRun(sched.NewKFair(k), cap)
		if !ok {
			t.Fatalf("%d-fair hit the %d-step cap: the livelock survived a finite window", k, cap)
		}
		if err := verify.MIS(p.Graph(), p.Black); err != nil {
			t.Fatalf("%d-fair terminal configuration: %v", k, err)
		}
		if steps > 20*(k+10) {
			t.Fatalf("%d-fair took %d steps, want O(k)", k, steps)
		}
	}
}

// The same boundary on the E18 workload shape: on G(n, avg8) the 3-state
// process livelocks under central-adversarial but stabilizes under k-fair
// windows, while the 2-state process — whose demotion is not reactive —
// stabilizes under both.
func TestDaemonFairnessBoundaryOnGnp(t *testing.T) {
	g := graph.GnpAvgDegree(96, 8, xrand.New(2023))
	cap := 200 * g.N()

	three := NewThreeState(g, WithSeed(7))
	if steps, ok := three.DaemonRun(sched.CentralAdversarial{}, cap); ok {
		t.Fatalf("3-state stabilized under central-adversarial in %d steps (expected livelock)", steps)
	}

	for _, k := range []int{1, 4, 16} {
		p := NewThreeState(g, WithSeed(7))
		if _, ok := p.DaemonRun(sched.NewKFair(k), cap); !ok {
			t.Fatalf("3-state hit the step cap under %d-fair", k)
		}
		if err := verify.MIS(g, p.Black); err != nil {
			t.Fatalf("3-state under %d-fair: %v", k, err)
		}
	}

	for _, dname := range []string{"central-adversarial", "k-fair:4"} {
		d, err := sched.DaemonByName(dname)
		if err != nil {
			t.Fatal(err)
		}
		p := NewTwoState(g, WithSeed(7))
		if _, ok := p.DaemonRun(d, cap); !ok {
			t.Fatalf("2-state hit the step cap under %s", dname)
		}
		if err := verify.MIS(g, p.Black); err != nil {
			t.Fatalf("2-state under %s: %v", dname, err)
		}
	}
}

package mis

// Differential tests: the optimized simulators must agree with the naive
// reference transcriptions of the paper's definitions on every state of
// every round, across random graphs, seeds and adversarial initializations.

import (
	"testing"
	"testing/quick"

	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

func TestTwoStateMatchesReference(t *testing.T) {
	master := xrand.New(71)
	f := func(seed uint64) bool {
		r := master.Split(seed)
		n := 2 + r.Intn(60)
		g := graph.Gnp(n, r.Float64()*0.4, r)
		opt := NewTwoState(g, WithSeed(seed))
		ref := NewRefTwoState(g, seed, opt.BlackMask())
		for i := 0; i < 200 && !opt.Stabilized(); i++ {
			opt.Step()
			ref.Step()
			for u := 0; u < n; u++ {
				if opt.Black(u) != ref.Black(u) {
					return false
				}
			}
			if opt.Stabilized() != ref.Stabilized() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoStateCompleteFastPathMatchesReference(t *testing.T) {
	// The clique fast path (global black count instead of per-vertex
	// counters) against the oracle.
	g := graph.Complete(48)
	for seed := uint64(0); seed < 10; seed++ {
		opt := NewTwoState(g, WithSeed(seed))
		ref := NewRefTwoState(g, seed, opt.BlackMask())
		for i := 0; i < 500 && !opt.Stabilized(); i++ {
			opt.Step()
			ref.Step()
			for u := 0; u < g.N(); u++ {
				if opt.Black(u) != ref.Black(u) {
					t.Fatalf("seed %d round %d: fast path diverged at %d", seed, i+1, u)
				}
			}
		}
		if !opt.Stabilized() || !ref.Stabilized() {
			t.Fatalf("seed %d: stabilization mismatch", seed)
		}
	}
}

func TestThreeStateMatchesReference(t *testing.T) {
	master := xrand.New(72)
	f := func(seed uint64) bool {
		r := master.Split(seed)
		n := 2 + r.Intn(50)
		g := graph.Gnp(n, r.Float64()*0.4, r)
		opt := NewThreeState(g, WithSeed(seed))
		initial := make([]TriState, n)
		for u := 0; u < n; u++ {
			initial[u] = opt.State(u)
		}
		ref := NewRefThreeState(g, seed, initial)
		for i := 0; i < 200; i++ {
			opt.Step()
			ref.Step()
			for u := 0; u < n; u++ {
				if opt.State(u) != ref.State(u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestThreeColorMatchesReference(t *testing.T) {
	master := xrand.New(73)
	f := func(seed uint64) bool {
		r := master.Split(seed)
		n := 2 + r.Intn(40)
		g := graph.Gnp(n, r.Float64()*0.5, r)
		opt := NewThreeColor(g, WithSeed(seed))
		colors := make([]Color, n)
		levels := make([]uint8, n)
		for u := 0; u < n; u++ {
			colors[u] = opt.ColorOf(u)
			levels[u] = opt.SwitchLevel(u)
		}
		ref := NewRefThreeColor(g, seed, colors, levels)
		for i := 0; i < 300; i++ {
			opt.Step()
			ref.Step()
			for u := 0; u < n; u++ {
				if opt.ColorOf(u) != ref.ColorOf(u) || opt.SwitchLevel(u) != ref.Level(u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestThreeColorCliqueFastPathMatchesReference(t *testing.T) {
	// The phase clock takes a global-max fast path on complete graphs; the
	// oracle never does. They must still agree.
	g := graph.Complete(24)
	for seed := uint64(0); seed < 5; seed++ {
		opt := NewThreeColor(g, WithSeed(seed))
		colors := make([]Color, g.N())
		levels := make([]uint8, g.N())
		for u := 0; u < g.N(); u++ {
			colors[u] = opt.ColorOf(u)
			levels[u] = opt.SwitchLevel(u)
		}
		ref := NewRefThreeColor(g, seed, colors, levels)
		for i := 0; i < 400; i++ {
			opt.Step()
			ref.Step()
			for u := 0; u < g.N(); u++ {
				if opt.ColorOf(u) != ref.ColorOf(u) || opt.SwitchLevel(u) != ref.Level(u) {
					t.Fatalf("seed %d round %d: clique fast path diverged at %d", seed, i+1, u)
				}
			}
		}
	}
}

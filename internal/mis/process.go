// Package mis implements the paper's three self-stabilizing MIS processes —
// the 2-state process (Definition 4), the 3-state process (Definition 5) and
// the 3-color process with logarithmic switch (Definition 28) — on top of a
// fast array-based synchronous simulator.
//
// All processes share the same contract: states are arbitrary initially
// (self-stabilization), all vertices update in parallel rounds, and the
// process has stabilized once every vertex is stable in the paper's sense,
// at which point the black vertices form a maximal independent set. The
// per-vertex random coins are drawn from per-vertex streams split off a
// master seed, so a run is a pure function of (graph, seed, initializer) —
// and the goroutine-based runtimes in internal/beeping and internal/stoneage
// draw the same coins in the same order, making the two engines
// coin-for-coin equivalent.
package mis

import (
	"fmt"

	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

// Process is the common interface of the three MIS processes.
type Process interface {
	// Name identifies the process family, e.g. "2-state".
	Name() string
	// N returns the number of vertices.
	N() int
	// Round returns the number of completed rounds.
	Round() int
	// Step advances one synchronous round.
	Step()
	// Stabilized reports whether every vertex is stable; once true it stays
	// true and the black set is an MIS.
	Stabilized() bool
	// Black reports the color projection of vertex u (black1/black0 both
	// count as black in the 3-state process).
	Black(u int) bool
	// ActiveCount returns the number of active vertices at the end of the
	// last completed round.
	ActiveCount() int
	// RandomBits returns the total number of random bits consumed.
	RandomBits() int64
	// States returns the size of the per-vertex state space (2, 3, or 18).
	States() int
}

// Init selects an initial-state distribution. The processes are
// self-stabilizing, so "initial state" is an adversarial choice; these are
// the structured adversaries used throughout the experiments.
type Init int

// Initialization adversaries.
const (
	// InitRandom draws every vertex state (including switch levels for the
	// 3-color process) independently and uniformly from the full state
	// space.
	InitRandom Init = iota + 1
	// InitAllWhite starts with every vertex white: every vertex active.
	InitAllWhite
	// InitAllBlack starts with every vertex black: on any graph with edges,
	// a maximally conflicted configuration.
	InitAllBlack
	// InitCheckerboard colors vertices black/white by index parity, a
	// correlated adversarial pattern.
	InitCheckerboard
	// InitNearMIS computes a greedy MIS, then corrupts it by flipping a
	// handful of vertices — "almost legal" configurations that test local
	// repair rather than global construction.
	InitNearMIS
)

func (i Init) String() string {
	switch i {
	case InitRandom:
		return "random"
	case InitAllWhite:
		return "all-white"
	case InitAllBlack:
		return "all-black"
	case InitCheckerboard:
		return "checkerboard"
	case InitNearMIS:
		return "near-MIS"
	default:
		return fmt.Sprintf("Init(%d)", int(i))
	}
}

// AllInits lists every initialization adversary, for sweep experiments.
func AllInits() []Init {
	return []Init{InitRandom, InitAllWhite, InitAllBlack, InitCheckerboard, InitNearMIS}
}

// options carries the configuration shared by the process constructors.
type options struct {
	seed uint64
	init Init
	// explicit initial blackness; overrides init when non-nil (2-state and
	// color projection of the others).
	initialBlack []bool
	// blackBias is the probability an active vertex randomizes to black
	// (default 0.5 — the paper's uniform coin). Footnote 1 of the paper
	// notes the white→black transition could even have probability 1; this
	// knob implements the E13 ablation over that choice.
	blackBias float64
	// switchZetaLog2 sets the 3-color logarithmic switch's ζ = 2^-k
	// (default 7, the paper's value); ignored by the other processes.
	switchZetaLog2 uint
	// trackLocal enables per-vertex stabilization-time recording (the
	// "local complexity" of the execution); the engine tracks first-cover
	// stamps either way, so the option only gates exposure.
	trackLocal bool
	// workers > 1 enables intra-round parallelism (all processes).
	workers int
	// fullRescan disables the engine's frontier worklist refresh — the
	// pre-engine cost model, kept for differential tests and benchmarks.
	fullRescan bool
	// ctx, when non-nil, leases all per-run scratch (engine structures,
	// state vector, vertex streams) from a per-worker run context.
	ctx *engine.RunContext
	// scalar opts out of the engine's bit-sliced kernel (all three
	// processes auto-select it otherwise).
	scalar bool
	// order selects the locality-relabeling policy (order.go): auto behind
	// the kernel path, identity opt-out, or forced degree-bucketed.
	order orderMode
	// counterLayout selects the engine's neighbor-counter plane layout
	// (default auto; forced values for differential tests and benchmarks).
	counterLayout engine.CounterLayout
}

// engine translates the option set into engine options; noopWhenIdle selects
// the 2-state quiescence semantics for Step, ord the locality relabeling the
// constructor resolved (nil = identity).
func (o options) engine(noopWhenIdle bool, ord *graph.Ordering) engine.Options {
	return engine.Options{
		Bias:          o.blackBias,
		Workers:       o.workers,
		NoopWhenIdle:  noopWhenIdle,
		FullRescan:    o.fullRescan,
		Ctx:           o.ctx,
		Scalar:        o.scalar,
		CounterLayout: o.counterLayout,
		Order:         ord,
	}
}

// Option configures a process constructor.
type Option func(*options)

// WithSeed sets the master seed (default 1).
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed = seed }
}

// WithInit selects the initialization adversary (default InitRandom).
func WithInit(init Init) Option {
	return func(o *options) { o.init = init }
}

// WithInitialBlack supplies an explicit initial black mask. The slice is
// copied. For the 3-state process black vertices start in black1; for the
// 3-color process non-black vertices start white and switch levels start
// uniform.
func WithInitialBlack(black []bool) Option {
	return func(o *options) {
		o.initialBlack = append([]bool(nil), black...)
	}
}

// WithBlackBias sets the probability that an active vertex randomizes to
// black (default 0.5). Values outside (0, 1) panic. Non-default biases
// consume one 64-bit draw per coin instead of one bit.
func WithBlackBias(p float64) Option {
	// Written as a negated conjunction so NaN fails too.
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("mis: black bias %v outside (0,1)", p))
	}
	return func(o *options) { o.blackBias = p }
}

// WithSwitchZetaLog2 sets the 3-color process's switch parameter ζ = 2^-k
// (default k = 7, the paper's value). Values outside [1, 64] panic. Other
// processes ignore it.
func WithSwitchZetaLog2(k uint) Option {
	if k < 1 || k > 64 {
		panic(fmt.Sprintf("mis: switch parameter k = %d outside [1, 64]", k))
	}
	return func(o *options) { o.switchZetaLog2 = k }
}

// WithFullRescan disables the engine's frontier worklist and re-derives
// every vertex's membership from scratch each round — the pre-engine cost
// model. Diagnostic/benchmark knob: results are identical, rounds are
// strictly slower.
func WithFullRescan() Option {
	return func(o *options) { o.fullRescan = true }
}

// WithScalarEngine forces the per-vertex interface path instead of the
// engine's bit-sliced kernel, which all three processes otherwise
// auto-select. The two paths are coin-for-coin bit-identical — the scalar
// engine is the golden reference the kernels are differentially pinned
// against — so this is a diagnostic/benchmark knob, never a semantic one.
func WithScalarEngine() Option {
	return func(o *options) { o.scalar = true }
}

// WithCounterLayout forces the engine's neighbor-counter plane layout
// (engine.LayoutFlat/LayoutNarrow/LayoutSplit) instead of the auto
// resolution from the degree profile. Every layout replays the same
// execution coin-for-coin — the plane changes only where counters live,
// never what a read returns — so like WithScalarEngine this is a
// diagnostic/benchmark knob, never a semantic one. The determinism and
// lockstep matrices pin all layouts against each other.
func WithCounterLayout(l engine.CounterLayout) Option {
	return func(o *options) { o.counterLayout = l }
}

// CounterPlane reports the engine's resolved counter-plane geometry — the
// observable half of the loud-fallback contract (FellBack is set when a
// forced narrow/split layout could not honor a sub-32-bit width). The zero
// Info on the complete-graph fast path, which keeps no per-vertex counters.
func (p *TwoState) CounterPlane() engine.CounterPlaneInfo { return p.core.CounterPlane() }

// CounterPlane reports the engine's resolved counter-plane geometry; see
// (*TwoState).CounterPlane.
func (p *ThreeState) CounterPlane() engine.CounterPlaneInfo { return p.core.CounterPlane() }

// CounterPlane reports the engine's resolved counter-plane geometry; see
// (*TwoState).CounterPlane.
func (p *ThreeColor) CounterPlane() engine.CounterPlaneInfo { return p.core.CounterPlane() }

// WithRunContext builds the process on leased per-worker scratch: every
// engine structure, the state vector, and the per-vertex random streams come
// from ctx instead of fresh allocations, so a batch worker amortizes its
// allocations across thousands of runs. Execution is bit-identical to a
// context-free process. The context owns the memory: constructing another
// process (or engine) on the same context invalidates this one, so a
// context-backed process must be run to completion and summarized before
// the worker moves on — the internal/batch worker lifecycle.
func WithRunContext(ctx *engine.RunContext) Option {
	return func(o *options) { o.ctx = ctx }
}

// WithLocalTimes enables per-vertex stabilization-time recording: the round
// at which each vertex first became stable (entered N+(I_t)) is retained
// and exposed through the process's StabilizationTimes method. The paper's
// global bounds are driven by straggler vertices; this instrument separates
// the typical (local) from the worst (global) stabilization behaviour.
func WithLocalTimes() Option {
	return func(o *options) { o.trackLocal = true }
}

func buildOptions(opts []Option) options {
	o := options{seed: 1, init: InitRandom, blackBias: 0.5, switchZetaLog2: 7}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// initialBlackMask materializes the initialization adversary as a black mask
// over g's vertices, consuming randomness from rng.
func initialBlackMask(g *graph.Graph, o options, rng *xrand.Rand) []bool {
	n := g.N()
	if o.initialBlack != nil {
		if len(o.initialBlack) != n {
			panic(fmt.Sprintf("mis: initial mask length %d != n %d", len(o.initialBlack), n))
		}
		return append([]bool(nil), o.initialBlack...)
	}
	var black []bool
	if o.ctx != nil {
		black = o.ctx.BoolBuf(n)
	} else {
		black = make([]bool, n)
	}
	switch o.init {
	case InitRandom:
		for u := range black {
			black[u] = rng.Bit()
		}
	case InitAllWhite:
		// zero value
	case InitAllBlack:
		for u := range black {
			black[u] = true
		}
	case InitCheckerboard:
		for u := range black {
			black[u] = u%2 == 0
		}
	case InitNearMIS:
		// Greedy MIS, then flip ~max(1, n/50) random vertices.
		blocked := make([]bool, n)
		for u := 0; u < n; u++ {
			if !blocked[u] {
				black[u] = true
				for _, v := range g.Neighbors(u) {
					blocked[v] = true
				}
			}
		}
		flips := n / 50
		if flips < 1 {
			flips = 1
		}
		for i := 0; i < flips; i++ {
			u := rng.Intn(n)
			black[u] = !black[u]
		}
	default:
		panic(fmt.Sprintf("mis: unknown init %v", o.init))
	}
	return black
}

// splitVertexStreams derives the per-vertex random streams from the master
// seed. The stream of original vertex u is always master.Split(u) — stream
// identity is keyed by original ids — and under a locality relabeling (ord
// non-nil) it is seeded into slot ord.NewID(u), where the relabeled engine
// indexes it. A run context, when present, supplies the generator array
// allocation-free.
func splitVertexStreams(n int, master *xrand.Rand, ctx *engine.RunContext, ord *graph.Ordering) []*xrand.Rand {
	if ctx != nil {
		return ctx.VertexStreamsPerm(n, master, ord)
	}
	// One contiguous backing array instead of n individual allocations: at
	// n=10^6 the per-vertex Splits used to be the bulk of construction's
	// allocator traffic (the generators stay identical — SplitInto seeds
	// each slot exactly as Split would).
	backing := make([]xrand.Rand, n)
	rngs := make([]*xrand.Rand, n)
	for u := 0; u < n; u++ {
		i := ord.NewID(u)
		master.SplitInto(&backing[i], uint64(u))
		rngs[i] = &backing[i]
	}
	return rngs
}

// stateBuf returns the n-length state vector for a constructor: leased from
// the run context when present, freshly allocated otherwise.
func stateBuf(n int, ctx *engine.RunContext) []uint8 {
	if ctx != nil {
		return ctx.Uint8Buf(n)
	}
	return make([]uint8, n)
}

// initStreamIndex is the master stream index used for initialization coins,
// kept distinct from all per-vertex streams.
func initStream(n int, master *xrand.Rand) *xrand.Rand {
	return master.Split(uint64(n) + 1)
}

// Result summarizes a completed (or round-capped) run.
type Result struct {
	// Rounds is the number of rounds executed until stabilization (or the
	// cap).
	Rounds int
	// Stabilized reports whether the process stabilized within the cap.
	Stabilized bool
	// RandomBits is the total random bits consumed by the process.
	RandomBits int64
}

// Run advances p until it stabilizes or maxRounds rounds have elapsed.
func Run(p Process, maxRounds int) Result {
	for !p.Stabilized() && p.Round() < maxRounds {
		p.Step()
	}
	return Result{Rounds: p.Round(), Stabilized: p.Stabilized(), RandomBits: p.RandomBits()}
}

// DefaultRoundCap returns a generous cap for experiments: well above every
// polylog bound proven in the paper at laptop scales, so hitting it signals
// a real anomaly rather than bad luck. It is 200·log₂²(n), floored for tiny
// graphs.
func DefaultRoundCap(n int) int {
	if n < 2 {
		return 64
	}
	log2 := 0
	for m := n; m > 0; m >>= 1 {
		log2++
	}
	limit := 200 * log2 * log2
	if limit < 2000 {
		limit = 2000
	}
	return limit
}

package mis

import (
	"fmt"

	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

// TwoState is the paper's 2-state MIS process (Definition 4). Each vertex is
// black or white; in every round, each active vertex — black with a black
// neighbor, or white with no black neighbor — resets to a uniformly random
// color. The process has stabilized exactly when no vertex is active, at
// which point the black set is an MIS.
//
// The simulator maintains the number of black neighbors of every vertex
// incrementally: a round costs O(n + Σ_{flipped u} deg(u)). Complete graphs
// take a fast path using the global black count, making K_n rounds O(n).
type TwoState struct {
	g         *graph.Graph
	complete  bool
	black     []bool
	nbrBlack  []int32 // number of black neighbors (unused on the fast path)
	blackCnt  int
	rngs      []*xrand.Rand
	opts      options
	round     int
	bits      int64
	activeCnt int
	// scratch buffers reused across rounds
	actives []int32
	flips   []int32
	// lt records per-vertex stabilization rounds when WithLocalTimes is set.
	lt *localTimes
}

var _ Process = (*TwoState)(nil)

// NewTwoState creates a 2-state process on g. See Option for configuration;
// by default the initial states are uniformly random with master seed 1.
func NewTwoState(g *graph.Graph, opts ...Option) *TwoState {
	o := buildOptions(opts)
	master := xrand.New(o.seed)
	n := g.N()
	p := &TwoState{
		g:        g,
		complete: n >= 2 && g.M() == n*(n-1)/2,
		black:    initialBlackMask(g, o, initStream(n, master)),
		nbrBlack: make([]int32, n),
		rngs:     splitVertexStreams(n, master),
		opts:     o,
	}
	if o.trackLocal {
		p.lt = newLocalTimes(n)
	}
	p.recount()
	p.recordLocal()
	return p
}

// inI reports "black with no black neighbor" (membership in I_t).
func (p *TwoState) inI(u int) bool {
	return p.black[u] && p.blackNeighbors(u) == 0
}

func (p *TwoState) recordLocal() {
	if p.lt != nil {
		p.lt.record(p.g, p.round, p.inI)
	}
}

// StabilizationTimes returns the per-vertex stabilization rounds recorded
// so far (-1 = not yet stable); nil unless WithLocalTimes was set.
func (p *TwoState) StabilizationTimes() []int {
	if p.lt == nil {
		return nil
	}
	return p.lt.times()
}

// recount rebuilds the derived counters from the black mask; used after
// construction and after external corruption.
func (p *TwoState) recount() {
	p.blackCnt = 0
	for u := range p.nbrBlack {
		p.nbrBlack[u] = 0
	}
	for u, b := range p.black {
		if !b {
			continue
		}
		p.blackCnt++
		if !p.complete {
			for _, v := range p.g.Neighbors(u) {
				p.nbrBlack[v]++
			}
		}
	}
	p.activeCnt = p.countActive()
}

func (p *TwoState) blackNeighbors(u int) int32 {
	if p.complete {
		c := int32(p.blackCnt)
		if p.black[u] {
			c--
		}
		return c
	}
	return p.nbrBlack[u]
}

// active reports the paper's activity predicate for u under current state.
func (p *TwoState) active(u int) bool {
	if p.black[u] {
		return p.blackNeighbors(u) > 0
	}
	return p.blackNeighbors(u) == 0
}

func (p *TwoState) countActive() int {
	c := 0
	for u := range p.black {
		if p.active(u) {
			c++
		}
	}
	return c
}

// Name implements Process.
func (p *TwoState) Name() string { return "2-state" }

// N implements Process.
func (p *TwoState) N() int { return p.g.N() }

// Round implements Process.
func (p *TwoState) Round() int { return p.round }

// States implements Process.
func (p *TwoState) States() int { return 2 }

// RandomBits implements Process.
func (p *TwoState) RandomBits() int64 { return p.bits }

// ActiveCount implements Process.
func (p *TwoState) ActiveCount() int { return p.activeCnt }

// Black implements Process.
func (p *TwoState) Black(u int) bool { return p.black[u] }

// Stabilized implements Process. For the 2-state process, "no active vertex"
// is equivalent to "every vertex stable" (the black set is then an MIS).
func (p *TwoState) Stabilized() bool { return p.activeCnt == 0 }

// Graph returns the underlying graph.
func (p *TwoState) Graph() *graph.Graph { return p.g }

// Step implements Process: one synchronous round of Definition 4.
func (p *TwoState) Step() {
	if p.opts.workers > 1 {
		p.stepParallel()
		return
	}
	if p.activeCnt == 0 {
		return
	}
	p.actives = p.actives[:0]
	for u := range p.black {
		if p.active(u) {
			p.actives = append(p.actives, int32(u))
		}
	}
	// Draw all coins against the pre-round state, then commit flips.
	p.flips = p.flips[:0]
	for _, u := range p.actives {
		coinBlack, cost := p.opts.coin(p.rngs[u])
		p.bits += cost
		if coinBlack != p.black[u] {
			p.flips = append(p.flips, u)
		}
	}
	for _, u := range p.flips {
		nowBlack := !p.black[u]
		p.black[u] = nowBlack
		delta := int32(1)
		if !nowBlack {
			delta = -1
		}
		p.blackCnt += int(delta)
		if !p.complete {
			for _, v := range p.g.Neighbors(int(u)) {
				p.nbrBlack[v] += delta
			}
		}
	}
	p.round++
	p.activeCnt = p.countActive()
	p.recordLocal()
}

// Corrupt overwrites the color of vertex u mid-run (fault injection) and
// rebuilds the derived counters. The per-vertex random streams are not
// touched, so a corrupted run remains deterministic.
func (p *TwoState) Corrupt(u int, black bool) {
	p.black[u] = black
	p.recount()
	if p.lt != nil {
		p.lt.reset()
		p.recordLocal()
	}
}

// CorruptAll applies an arbitrary new color vector (fault injection).
func (p *TwoState) CorruptAll(black []bool) {
	if len(black) != len(p.black) {
		panic("mis: CorruptAll mask length mismatch")
	}
	copy(p.black, black)
	p.recount()
	if p.lt != nil {
		p.lt.reset()
		p.recordLocal()
	}
}

// Rebind switches the process to a new graph on the same vertex set,
// keeping all vertex states — the topology-churn scenario: links changed,
// nodes kept their one bit of state, and self-stabilization must absorb the
// difference. It panics if the new graph has a different order.
func (p *TwoState) Rebind(g *graph.Graph) {
	if g.N() != p.g.N() {
		panic(fmt.Sprintf("mis: Rebind to order %d != %d", g.N(), p.g.N()))
	}
	p.g = g
	n := g.N()
	p.complete = n >= 2 && g.M() == n*(n-1)/2
	p.recount()
	if p.lt != nil {
		p.lt.reset()
		p.recordLocal()
	}
}

// BlackMask returns a copy of the current color vector.
func (p *TwoState) BlackMask() []bool {
	return append([]bool(nil), p.black...)
}

// StableBlackCount returns |I_t|: black vertices with no black neighbor.
func (p *TwoState) StableBlackCount() int {
	c := 0
	for u, b := range p.black {
		if b && p.blackNeighbors(u) == 0 {
			c++
		}
	}
	return c
}

// BlackCount returns |B_t|.
func (p *TwoState) BlackCount() int { return p.blackCnt }

package mis

import (
	"ssmis/internal/engine"
	"ssmis/internal/engine/kernel"
	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

// Engine state values of the 2-state process.
const (
	twoWhite uint8 = 1
	twoBlack uint8 = 2
)

// twoStateRule is Definition 4 as an engine rule: a vertex is active — and
// privileged under a daemon — when black with a black neighbor or white with
// no black neighbor, and an active vertex resets to a random color.
type twoStateRule struct{}

func (twoStateRule) NumStates() int { return 2 }

func (twoStateRule) Class(s uint8) uint8 {
	if s == twoBlack {
		return engine.ClassA
	}
	return 0
}

func (twoStateRule) Black(s uint8) bool { return s == twoBlack }

func (twoStateRule) Active(_ int, s uint8, a, _ int32) bool {
	if s == twoBlack {
		return a > 0
	}
	return a == 0
}

func (r twoStateRule) Touched(u int, s uint8, a, b int32) bool {
	return r.Active(u, s, a, b)
}

func (twoStateRule) Evaluate(u int, _ uint8, _, _ int32, d *engine.Draw) uint8 {
	if d.Coin(u) {
		return twoBlack
	}
	return twoWhite
}

// twoStateProg is Definition 4 as a compiled lane program: codes {white,
// black}, activity ¬(black ⊕ hasBlackNbr), and the coin as the next state —
// the canonical shape the kernel's XOR-flip fast path recognizes. Compiled
// once; shared by every engine.
var twoStateProg = kernel.MustCompile(kernel.Spec{
	StateOf: [4]uint8{twoWhite, twoBlack, 0, 0},
	Active: kernel.TruthTable(func(code int, a, _ bool) bool {
		return (code&1 == 1) == a
	}),
	Touched: kernel.TruthTable(func(code int, a, _ bool) bool {
		return (code&1 == 1) == a
	}),
	CoinHi: [4]uint8{1, 1, 0, 0},
	CoinLo: [4]uint8{0, 0, 0, 0},
})

// LaneProgram marks the rule for the engine's bit-sliced kernel: the engine
// evaluates 64 vertices per word unless WithScalarEngine opts out.
func (twoStateRule) LaneProgram() *kernel.Program { return twoStateProg }

// TwoState is the paper's 2-state MIS process (Definition 4). Each vertex is
// black or white; in every round, each active vertex — black with a black
// neighbor, or white with no black neighbor — resets to a uniformly random
// color. The process has stabilized exactly when no vertex is active, at
// which point the black vertices form an MIS.
//
// The process is a thin rule over the shared frontier engine: a round costs
// O(|active| + Σ_{flipped u} deg(u)), and complete graphs take a fast path
// using the global black count.
type TwoState struct {
	core *engine.Core
	opts options
	// g is the caller's graph in original vertex ids; ord the locality
	// relabeling the engine runs under (nil = identity, order.go).
	g   *graph.Graph
	ord *graph.Ordering
	// schedRng drives daemon selection (daemon.go), created on first use.
	schedRng *xrand.Rand
}

var _ Process = (*TwoState)(nil)

// NewTwoState creates a 2-state process on g. See Option for configuration;
// by default the initial states are uniformly random with master seed 1.
func NewTwoState(g *graph.Graph, opts ...Option) *TwoState {
	o := buildOptions(opts)
	master := xrand.New(o.seed)
	n := g.N()
	ord := orderingFor(g, o)
	state := stateBuf(n, o.ctx)
	// The mask is drawn over the original graph in original vertex order
	// (initialization coins are part of the pinned execution); only the
	// storage slot is relabeled.
	for u, b := range initialBlackMask(g, o, initStream(n, master)) {
		s := twoWhite
		if b {
			s = twoBlack
		}
		state[ord.NewID(u)] = s
	}
	return &TwoState{
		core: engine.New(engineGraph(g, ord), twoStateRule{}, state,
			splitVertexStreams(n, master, o.ctx, ord), o.engine(true, ord)),
		opts: o,
		g:    g,
		ord:  ord,
	}
}

// StabilizationTimes returns the per-vertex stabilization rounds recorded
// so far (-1 = not yet stable); nil unless WithLocalTimes was set.
func (p *TwoState) StabilizationTimes() []int {
	return stabilizationTimes(p.core, p.opts)
}

// Name implements Process.
func (p *TwoState) Name() string { return "2-state" }

// N implements Process.
func (p *TwoState) N() int { return p.core.Graph().N() }

// Round implements Process.
func (p *TwoState) Round() int { return p.core.Round() }

// States implements Process.
func (p *TwoState) States() int { return 2 }

// RandomBits implements Process.
func (p *TwoState) RandomBits() int64 { return p.core.Bits() }

// ActiveCount implements Process.
func (p *TwoState) ActiveCount() int { return p.core.ActiveCount() }

// Black implements Process.
func (p *TwoState) Black(u int) bool { return p.core.State(p.ord.NewID(u)) == twoBlack }

// Stabilized implements Process. For the 2-state process, "no active vertex"
// is equivalent to "every vertex covered by the stable core" (the black set
// is then an MIS).
func (p *TwoState) Stabilized() bool { return p.core.Stabilized() }

// Graph returns the underlying graph (the caller's, in original vertex ids,
// whatever ordering the engine runs under).
func (p *TwoState) Graph() *graph.Graph { return p.g }

// Step implements Process: one synchronous round of Definition 4. A step on
// a quiescent process is a no-op (the round counter does not advance).
func (p *TwoState) Step() { p.core.Step() }

// Corrupt overwrites the color of vertex u mid-run (fault injection) and
// rebuilds the derived structures. The per-vertex random streams are not
// touched, so a corrupted run remains deterministic.
func (p *TwoState) Corrupt(u int, black bool) {
	s := twoWhite
	if black {
		s = twoBlack
	}
	p.core.States()[p.ord.NewID(u)] = s
	p.core.Rebuild()
}

// CorruptAll applies an arbitrary new color vector (fault injection).
func (p *TwoState) CorruptAll(black []bool) {
	state := p.core.States()
	if len(black) != len(state) {
		panic("mis: CorruptAll mask length mismatch")
	}
	for u, b := range black {
		s := twoWhite
		if b {
			s = twoBlack
		}
		state[p.ord.NewID(u)] = s
	}
	p.core.Rebuild()
}

// Rebind switches the process to a new graph on the same vertex set, keeping
// all vertex states — the topology-churn scenario: links changed, nodes kept
// their one bit of state, and self-stabilization must absorb the difference.
// The held relabeling (if any) is carried over to the new graph. It panics
// if the new graph has a different order.
func (p *TwoState) Rebind(g *graph.Graph) {
	p.g = g
	if p.ord != nil {
		p.ord = p.ord.Rebind(g)
		p.core.RebindOrdered(p.ord)
		return
	}
	p.core.Rebind(g)
}

// BlackMask returns a copy of the current color vector, indexed by original
// vertex ids.
func (p *TwoState) BlackMask() []bool {
	state := p.core.States()
	out := make([]bool, len(state))
	for i, s := range state {
		out[p.ord.OldID(i)] = s == twoBlack
	}
	return out
}

// StableBlackCount returns |I_t|: black vertices with no black neighbor.
func (p *TwoState) StableBlackCount() int { return p.core.StableCoreCount() }

// BlackCount returns |B_t|.
func (p *TwoState) BlackCount() int { return p.core.ClassACount() }

// stabilizationTimes converts the engine's first-cover stamps to the
// StabilizationTimes contract (nil unless WithLocalTimes was requested),
// mapping from the engine's internal order back to original vertex ids.
func stabilizationTimes(core *engine.Core, o options) []int {
	if !o.trackLocal {
		return nil
	}
	stamps := core.CoveredAt()
	ord := core.Order()
	out := make([]int, len(stamps))
	for i, r := range stamps {
		out[ord.OldID(i)] = int(r)
	}
	return out
}

package mis

// Daemon-scheduled execution of the randomized processes. The paper
// presents the 2-state process as the randomized synchronous
// parallelization of the sequential self-stabilizing MIS rule of [28, 20],
// whose correctness is analyzed under daemon (scheduler) models; this file
// runs the paper's processes under those daemons directly. A daemon step
// exposes the privileged vertices — those whose transition can fire — to an
// internal/sched.Daemon, which selects the subset that moves.
//
// Selection randomness comes from a dedicated scheduler stream (master
// stream index n+2, next to the initialization stream), while moves keep
// drawing from the per-vertex streams. Under sched.Synchronous the 2-state
// execution is therefore coin-for-coin identical to the synchronous Step
// loop. The 3-color process's switch sub-process is inherently synchronous,
// so daemon scheduling is exposed for the 2- and 3-state processes only.
//
// Stabilization guarantees differ by process. The randomized 2-state rule
// stabilizes with probability 1 under ANY daemon, including the adversarial
// central one — the [28, 31] transformation the paper cites. The 3-state
// rule does not: its black0→white demotion is reactive (it fires only when
// a neighbor is black1), so an unfair daemon can select one vertex of a
// black–black conflict forever while starving the one that would demote —
// two adjacent black0 vertices livelock under sched.CentralAdversarial.
// Daemons that are fair in probability (central-random,
// distributed-random) or deterministically fair (round-robin, synchronous)
// stabilize it almost surely. Experiment E18 measures both effects.

import (
	"ssmis/internal/engine"
	"ssmis/internal/sched"
	"ssmis/internal/xrand"
)

// DaemonRunner is the daemon-schedulable process surface, implemented by
// TwoState and ThreeState.
type DaemonRunner interface {
	Process
	DaemonStep(d sched.Daemon) bool
	DaemonRun(d sched.Daemon, maxSteps int) (steps int, stabilized bool)
	Moves() int
	Steps() int
}

var (
	_ DaemonRunner = (*TwoState)(nil)
	_ DaemonRunner = (*ThreeState)(nil)
)

// Daemon-scheduled executions are resumable through Checkpoint/Restore: the
// checkpoint carries the scheduler stream's exact state (plus the step/move
// accounting), so a restored process continues the schedule coin-for-coin —
// the daemon selections after restore equal the selections an uninterrupted
// run would have drawn. Checkpoints taken before a process's first daemon
// step carry no stream; restoring one derives the stream lazily as usual.

// daemonStream derives the scheduler's selection stream from the master
// seed. Split streams are pure functions of (seed, index), so the stream is
// independent of how many coins the process has already drawn.
func daemonStream(n int, seed uint64) *xrand.Rand {
	return xrand.New(seed).Split(uint64(n) + 2)
}

// DefaultDaemonStepCap returns a generous step cap for daemon-scheduled
// runs: central daemons move one vertex per step, so caps must scale with
// n·polylog(n) rather than polylog(n).
func DefaultDaemonStepCap(n int) int {
	return 64 * DefaultRoundCap(n) * max(n/64, 1)
}

// daemonStep is the shared wrapper plumbing: it lazily derives the
// scheduler stream on first use (so purely synchronous runs never pay for
// it) and delegates to the engine.
func daemonStep(core *engine.Core, rng **xrand.Rand, seed uint64, d sched.Daemon) bool {
	if *rng == nil {
		*rng = daemonStream(core.Graph().N(), seed)
	}
	return core.DaemonStep(d, *rng)
}

// daemonRun mirrors daemonStep for full runs; maxSteps <= 0 selects
// DefaultDaemonStepCap.
func daemonRun(core *engine.Core, rng **xrand.Rand, seed uint64, d sched.Daemon, maxSteps int) (int, bool) {
	if maxSteps <= 0 {
		maxSteps = DefaultDaemonStepCap(core.Graph().N())
	}
	if *rng == nil {
		*rng = daemonStream(core.Graph().N(), seed)
	}
	return core.DaemonRun(d, *rng, maxSteps)
}

// DaemonStep lets d select among the privileged (active) vertices and moves
// the selected ones once; it returns false when no vertex is privileged
// (the process has stabilized). Mixing DaemonStep and Step on one process
// is legal — both advance the same execution state.
func (p *TwoState) DaemonStep(d sched.Daemon) bool {
	return daemonStep(p.core, &p.schedRng, p.opts.seed, d)
}

// DaemonRun executes up to maxSteps further daemon steps (0 selects
// DefaultDaemonStepCap) until stabilization; it reports the total steps
// taken and whether the process stabilized to an MIS.
func (p *TwoState) DaemonRun(d sched.Daemon, maxSteps int) (steps int, stabilized bool) {
	return daemonRun(p.core, &p.schedRng, p.opts.seed, d, maxSteps)
}

// Moves returns the total number of vertex moves under daemon scheduling.
func (p *TwoState) Moves() int { return p.core.Moves() }

// Steps returns the number of daemon steps executed.
func (p *TwoState) Steps() int { return p.core.Steps() }

// DaemonStep lets d select among the privileged vertices — the active ones
// plus black0 vertices due for demotion, excluding the stable core — and
// moves the selected ones once; it returns false when no vertex is
// privileged. See the package comment for the fairness caveat: the 3-state
// rule can livelock under sched.CentralAdversarial.
func (p *ThreeState) DaemonStep(d sched.Daemon) bool {
	return daemonStep(p.core, &p.schedRng, p.opts.seed, d)
}

// DaemonRun executes up to maxSteps further daemon steps (0 selects
// DefaultDaemonStepCap) until stabilization; it reports the total steps
// taken and whether the process stabilized to an MIS.
func (p *ThreeState) DaemonRun(d sched.Daemon, maxSteps int) (steps int, stabilized bool) {
	return daemonRun(p.core, &p.schedRng, p.opts.seed, d, maxSteps)
}

// Moves returns the total number of vertex moves under daemon scheduling.
func (p *ThreeState) Moves() int { return p.core.Moves() }

// Steps returns the number of daemon steps executed.
func (p *ThreeState) Steps() int { return p.core.Steps() }

package mis

import (
	"fmt"
	"testing"

	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/sched"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

// relabelEngaged reports whether the process runs its engine over a
// non-identity locality relabeling.
func relabelEngaged(p Process) bool {
	switch q := p.(type) {
	case *TwoState:
		return q.ord != nil
	case *ThreeState:
		return q.ord != nil
	case *ThreeColor:
		return q.ord != nil
	default:
		return false
	}
}

type relabelProc struct {
	name string
	mk   func(g *graph.Graph, opts ...Option) Process
	// stateOf exposes the full per-vertex state (in ORIGINAL vertex ids —
	// the only id space the public accessors speak).
	stateOf func(p Process, u int) int
}

func relabelProcs() []relabelProc {
	return []relabelProc{
		{
			"2-state",
			func(g *graph.Graph, opts ...Option) Process { return NewTwoState(g, opts...) },
			func(p Process, u int) int {
				if p.(*TwoState).Black(u) {
					return 1
				}
				return 0
			},
		},
		{
			"3-state",
			func(g *graph.Graph, opts ...Option) Process { return NewThreeState(g, opts...) },
			func(p Process, u int) int { return int(p.(*ThreeState).State(u)) },
		},
		{
			"3-color",
			func(g *graph.Graph, opts ...Option) Process {
				return NewThreeColor(g, opts...)
			},
			func(p Process, u int) int {
				tc := p.(*ThreeColor)
				return int(tc.ColorOf(u))<<8 | int(tc.SwitchLevel(u))
			},
		},
	}
}

// The relabeled execution is a graph isomorphism of the identity-ordered
// one, and every public surface is keyed by original ids — so a relabeled
// process and an identity process on the same seed must agree EXACTLY,
// round by round: summaries, per-vertex states/colors/levels, random-bit
// accounting, and the coveredAt stamps. 3 rules × frontier/full-rescan ×
// workers {1, 8}, forced via WithDegreeOrder on graphs small enough that
// the auto policy would stay identity.
func TestRelabelEquivalenceMatrix(t *testing.T) {
	// graph.Star itself keeps the identity order (hub already at id 0), so
	// the star here puts its hub at the HIGHEST id to force a real move.
	starB := graph.NewBuilder(500)
	for u := 0; u < 499; u++ {
		starB.AddEdge(u, 499)
	}
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"chunglu", graph.ChungLu(600, 2.5, 8, xrand.New(21))},
		{"star", starB.Build()},
		{"gnp", graph.Gnp(300, 0.03, xrand.New(22))},
	}
	type timed interface{ StabilizationTimes() []int }
	for _, pr := range relabelProcs() {
		for _, gc := range graphs {
			cap := 4 * DefaultRoundCap(gc.g.N())
			ident := pr.mk(gc.g, WithSeed(42), WithLocalTimes(), WithIdentityOrder())
			if relabelEngaged(ident) {
				t.Fatalf("%s/%s: identity process engaged relabeling", pr.name, gc.name)
			}
			identRes := Run(ident, cap)
			if !identRes.Stabilized {
				t.Fatalf("%s/%s: identity run did not stabilize", pr.name, gc.name)
			}
			if err := verify.MIS(gc.g, ident.Black); err != nil {
				t.Fatalf("%s/%s: %v", pr.name, gc.name, err)
			}
			identTimes := ident.(timed).StabilizationTimes()
			for _, workers := range []int{1, 8} {
				for _, rescan := range []bool{false, true} {
					name := fmt.Sprintf("%s/%s/workers=%d rescan=%v", pr.name, gc.name, workers, rescan)
					opts := []Option{WithSeed(42), WithLocalTimes(), WithWorkers(workers), WithDegreeOrder()}
					if rescan {
						opts = append(opts, WithFullRescan())
					}
					rel := pr.mk(gc.g, opts...)
					if !relabelEngaged(rel) {
						t.Fatalf("%s: relabeling did not engage", name)
					}
					// Round-by-round against a fresh identity twin so a
					// divergence is pinned to the round it appears.
					twin := pr.mk(gc.g, WithSeed(42), WithLocalTimes(), WithIdentityOrder())
					for !rel.Stabilized() && rel.Round() < cap {
						rel.Step()
						twin.Step()
						if rel.ActiveCount() != twin.ActiveCount() || rel.RandomBits() != twin.RandomBits() {
							t.Fatalf("%s: round %d active/bits diverged (%d,%d) vs (%d,%d)",
								name, rel.Round(), rel.ActiveCount(), rel.RandomBits(),
								twin.ActiveCount(), twin.RandomBits())
						}
						for u := 0; u < gc.g.N(); u++ {
							if pr.stateOf(rel, u) != pr.stateOf(twin, u) {
								t.Fatalf("%s: state of %d diverged at round %d", name, u, rel.Round())
							}
						}
					}
					if res := (Result{rel.Round(), rel.Stabilized(), rel.RandomBits()}); res != identRes {
						t.Fatalf("%s: summary %+v, identity %+v", name, res, identRes)
					}
					rt := rel.(timed).StabilizationTimes()
					for u, st := range identTimes {
						if rt[u] != st {
							t.Fatalf("%s: coveredAt stamp of %d is %d, identity %d", name, u, rt[u], st)
						}
					}
				}
			}
			// Relabeling composes with the scalar path too (WithDegreeOrder
			// overrides the auto policy's kernel-only gate).
			scal := pr.mk(gc.g, WithSeed(42), WithScalarEngine(), WithDegreeOrder())
			if kernelEngaged(scal) || !relabelEngaged(scal) {
				t.Fatalf("%s/%s: scalar+relabel engagement wrong", pr.name, gc.name)
			}
			if res := Run(scal, cap); res != identRes {
				t.Fatalf("%s/%s scalar+relabel: summary %+v, identity %+v", pr.name, gc.name, res, identRes)
			}
		}
	}
}

// recordingDaemon wraps a daemon and journals every privileged set and
// selection it sees. Daemon selections happen in ORIGINAL vertex ids
// regardless of the engine's internal order, so the histories of a
// relabeled and an identity execution must be identical element-for-element.
type recordingDaemon struct {
	inner   sched.Daemon
	history [][]int
	priv    [][]int
}

func (d *recordingDaemon) Name() string { return d.inner.Name() }

func (d *recordingDaemon) Select(privileged []int, rng *xrand.Rand) []int {
	d.priv = append(d.priv, append([]int(nil), privileged...))
	sel := d.inner.Select(privileged, rng)
	d.history = append(d.history, append([]int(nil), sel...))
	return sel
}

func TestRelabelDaemonHistoryEquivalence(t *testing.T) {
	// Fair daemons only: the 3-state rule can livelock under
	// central-adversarial (see daemon.go), which would hit the step cap.
	// Daemons can be stateful (round-robin's cursor), so each side gets its
	// own instance.
	g := graph.ChungLu(150, 2.5, 6, xrand.New(9))
	daemons := []func() sched.Daemon{
		func() sched.Daemon { return sched.Synchronous{} },
		func() sched.Daemon { return sched.CentralRandom{} },
		func() sched.Daemon { return &sched.RoundRobin{} },
	}
	type stepper interface {
		Process
		DaemonStep(sched.Daemon) bool
		Moves() int
		State(int) TriState
	}
	for _, mkd := range daemons {
		rd := &recordingDaemon{inner: mkd()}
		id := &recordingDaemon{inner: mkd()}
		rel := NewThreeState(g, WithSeed(13), WithDegreeOrder())
		ident := NewThreeState(g, WithSeed(13), WithIdentityOrder())
		if !relabelEngaged(rel) {
			t.Fatal("relabeling did not engage")
		}
		cap := DefaultDaemonStepCap(g.N())
		var rp, ip stepper = rel, ident
		for i := 0; i < cap && !rp.Stabilized(); i++ {
			rp.DaemonStep(rd)
			ip.DaemonStep(id)
			if rp.Moves() != ip.Moves() || rp.RandomBits() != ip.RandomBits() {
				t.Fatalf("%s: step %d moves/bits diverged", rd.Name(), i)
			}
		}
		if !rp.Stabilized() || !ip.Stabilized() {
			t.Fatalf("%s: did not stabilize", rd.Name())
		}
		if len(rd.history) != len(id.history) {
			t.Fatalf("%s: history length %d vs %d", rd.Name(), len(rd.history), len(id.history))
		}
		for i := range rd.history {
			if fmt.Sprint(rd.priv[i]) != fmt.Sprint(id.priv[i]) {
				t.Fatalf("%s: privileged set at step %d: %v vs %v", rd.Name(), i, rd.priv[i], id.priv[i])
			}
			if fmt.Sprint(rd.history[i]) != fmt.Sprint(id.history[i]) {
				t.Fatalf("%s: selection at step %d: %v vs %v", rd.Name(), i, rd.history[i], id.history[i])
			}
		}
		for u := 0; u < g.N(); u++ {
			if rp.State(u) != ip.State(u) {
				t.Fatalf("%s: state of %d diverged", rd.Name(), u)
			}
		}
	}
}

// Fault injection must address original ids under relabeling: corrupting
// the same vertices in both executions keeps them in lockstep through the
// recovery.
func TestRelabelCorruptionEquivalence(t *testing.T) {
	g := graph.ChungLu(400, 2.5, 8, xrand.New(31))
	mut := xrand.New(4)
	rel := NewThreeState(g, WithSeed(8), WithDegreeOrder())
	ident := NewThreeState(g, WithSeed(8), WithIdentityOrder())
	for i := 0; i < 5; i++ {
		rel.Step()
		ident.Step()
	}
	for i := 0; i < 20; i++ {
		u := mut.Intn(g.N())
		s := TriState(1 + mut.Intn(3))
		rel.Corrupt(u, s)
		ident.Corrupt(u, s)
	}
	cap := 4 * DefaultRoundCap(g.N())
	r1, r2 := Run(rel, cap), Run(ident, cap)
	if r1 != r2 {
		t.Fatalf("post-corruption: relabeled %+v vs identity %+v", r1, r2)
	}
	for u := 0; u < g.N(); u++ {
		if rel.State(u) != ident.State(u) {
			t.Fatalf("state of %d diverged after recovery", u)
		}
	}
}

// Checkpoints serialize in original vertex ids, so they are portable across
// orderings: a run saved under the relabeling must resume identically
// without it, and vice versa — against an uninterrupted identity run as the
// golden reference.
func TestRelabelCheckpointCrossOrdering(t *testing.T) {
	g := graph.ChungLu(350, 2.5, 7, xrand.New(12))
	cap := 4 * DefaultRoundCap(g.N())
	type ckpt interface {
		Process
		Checkpoint() (*Checkpoint, error)
	}
	cases := []struct {
		name    string
		mk      func(opts ...Option) ckpt
		restore func(c *Checkpoint, opts ...Option) (Process, error)
		stateOf func(p Process, u int) int
	}{
		{
			"2-state",
			func(opts ...Option) ckpt { return NewTwoState(g, opts...) },
			func(c *Checkpoint, opts ...Option) (Process, error) { return RestoreTwoState(g, c, opts...) },
			func(p Process, u int) int {
				if p.(*TwoState).Black(u) {
					return 1
				}
				return 0
			},
		},
		{
			"3-state",
			func(opts ...Option) ckpt { return NewThreeState(g, opts...) },
			func(c *Checkpoint, opts ...Option) (Process, error) { return RestoreThreeState(g, c, opts...) },
			func(p Process, u int) int { return int(p.(*ThreeState).State(u)) },
		},
		{
			"3-color",
			func(opts ...Option) ckpt { return NewThreeColor(g, opts...) },
			func(c *Checkpoint, opts ...Option) (Process, error) { return RestoreThreeColor(g, c, opts...) },
			func(p Process, u int) int {
				tc := p.(*ThreeColor)
				return int(tc.ColorOf(u))<<8 | int(tc.SwitchLevel(u))
			},
		},
	}
	dirs := []struct {
		name          string
		save, restore Option
	}{
		{"relabel-to-identity", WithDegreeOrder(), WithIdentityOrder()},
		{"identity-to-relabel", WithIdentityOrder(), WithDegreeOrder()},
	}
	for _, c := range cases {
		// Uninterrupted identity-order run: the golden execution.
		golden := c.mk(WithSeed(3), WithIdentityOrder())
		goldenRes := Run(golden, cap)
		if !goldenRes.Stabilized {
			t.Fatalf("%s: golden run did not stabilize", c.name)
		}
		for _, dir := range dirs {
			name := c.name + "/" + dir.name
			p := c.mk(WithSeed(3), dir.save)
			for i := 0; i < 4; i++ {
				p.Step()
			}
			snap, err := p.Checkpoint()
			if err != nil {
				t.Fatalf("%s: checkpoint: %v", name, err)
			}
			data, err := snap.Encode()
			if err != nil {
				t.Fatalf("%s: encode: %v", name, err)
			}
			dec, err := DecodeCheckpoint(data)
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			q, err := c.restore(dec, dir.restore)
			if err != nil {
				t.Fatalf("%s: restore: %v", name, err)
			}
			if res := Run(q, cap); res != goldenRes {
				t.Fatalf("%s: resumed summary %+v, golden %+v", name, res, goldenRes)
			}
			for u := 0; u < g.N(); u++ {
				if c.stateOf(q, u) != c.stateOf(golden, u) {
					t.Fatalf("%s: state of %d diverged after resume", name, u)
				}
			}
		}
	}
}

// Rebind must carry the SAME permutation onto the churned topology: after a
// toggle, a relabeled and an identity process stay in lockstep through the
// re-stabilization.
func TestRelabelRebindEquivalence(t *testing.T) {
	g := graph.ChungLu(400, 2.5, 8, xrand.New(14))
	cap := 4 * DefaultRoundCap(g.N())
	rel := NewThreeState(g, WithSeed(6), WithDegreeOrder())
	ident := NewThreeState(g, WithSeed(6), WithIdentityOrder())
	if r1, r2 := Run(rel, cap), Run(ident, cap); r1 != r2 {
		t.Fatalf("pre-churn: %+v vs %+v", r1, r2)
	}
	g2 := g.WithEdgeToggled(1, 2)
	rel.Rebind(g2)
	ident.Rebind(g2)
	if !relabelEngaged(rel) {
		t.Fatal("relabeling lost across Rebind")
	}
	if r1, r2 := Run(rel, cap), Run(ident, cap); r1 != r2 {
		t.Fatalf("post-churn: %+v vs %+v", r1, r2)
	}
	for u := 0; u < g.N(); u++ {
		if rel.State(u) != ident.State(u) {
			t.Fatalf("state of %d diverged after rebind", u)
		}
	}
	if err := verify.MIS(g2, rel.Black); err != nil {
		t.Fatal(err)
	}
}

// The auto policy: relabeling engages only behind the kernel path and only
// at relabelAutoThreshold vertices and beyond; WithIdentityOrder opts out.
// randPermI32 returns a deterministic pseudo-random permutation of [0, n).
func randPermI32(n int, rng *xrand.Rand) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

func TestRelabelAutoPolicy(t *testing.T) {
	ctx := engine.NewRunContext()
	small := graph.Gnp(200, 0.05, xrand.New(2))
	if relabelEngaged(NewTwoState(small, WithSeed(1), WithRunContext(ctx))) {
		t.Fatal("auto relabeling engaged below the size threshold")
	}
	// The generators emit weight-sorted ids (hubs already front-packed), so
	// auto only has something to win on a scrambled id space — the arrival
	// order of real-world graphs.
	sorted := graph.ChungLu(relabelAutoThreshold, 2.5, 6, xrand.New(2))
	if sorted.MaxDegree() < graph.HubDegreeMin {
		t.Fatalf("test premise broken: no hubs (max degree %d)", sorted.MaxDegree())
	}
	big := graph.Relabel(sorted, randPermI32(sorted.N(), xrand.New(77)))
	if !relabelEngaged(NewTwoState(big, WithSeed(1), WithRunContext(ctx))) {
		t.Fatal("auto relabeling did not engage on the scrambled graph at the threshold")
	}
	if relabelEngaged(NewTwoState(sorted, WithSeed(1), WithRunContext(engine.NewRunContext()))) {
		t.Fatal("auto relabeling engaged on an already degree-sorted graph")
	}
	// Without a run context the ordering cannot be memoized, so one-shot
	// constructions would pay the full reorder per run: auto stays off.
	if relabelEngaged(NewTwoState(big, WithSeed(1))) {
		t.Fatal("auto relabeling engaged without a run context to memoize the ordering")
	}
	if relabelEngaged(NewTwoState(big, WithSeed(1), WithRunContext(ctx), WithScalarEngine())) {
		t.Fatal("auto relabeling engaged on the scalar path")
	}
	// Flat-degree family at threshold size: no hubs to pack, auto stays
	// identity (the pure BFS reorder measures as a slight loss there).
	flat := graph.Gnp(relabelAutoThreshold, 8.0/float64(relabelAutoThreshold), xrand.New(3))
	if flat.MaxDegree() >= graph.HubDegreeMin {
		t.Fatalf("test premise broken: Gnp draw has a hub (max degree %d)", flat.MaxDegree())
	}
	if relabelEngaged(NewTwoState(flat, WithSeed(1), WithRunContext(engine.NewRunContext()))) {
		t.Fatal("auto relabeling engaged on a hubless graph")
	}
	if relabelEngaged(NewTwoState(big, WithSeed(1), WithRunContext(ctx), WithIdentityOrder())) {
		t.Fatal("WithIdentityOrder did not opt out")
	}
	// And the auto-relabeled execution equals the identity one there too.
	cap := 4 * DefaultRoundCap(big.N())
	auto := NewTwoState(big, WithSeed(1), WithRunContext(ctx))
	ident := NewTwoState(big, WithSeed(1), WithIdentityOrder())
	if r1, r2 := Run(auto, cap), Run(ident, cap); r1 != r2 {
		t.Fatalf("auto %+v vs identity %+v", r1, r2)
	}
}

package mis

import (
	"fmt"
	"testing"

	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

// Determinism matrix for the engine's partitioned two-phase refresh: every
// process × forced uneven frontiers (star: one hub word saturates, leaf
// words go quiet; caterpillar: churn concentrates on the spine; complete:
// dirtyAll forces the O(n) full rescan every changing round) × workers ∈
// {1, 2, 8}. Summaries, per-vertex colors, and the coveredAt stamps behind
// the local-times instrument must be byte-identical to the sequential run.
func TestRefreshDeterminismMatrix(t *testing.T) {
	type proc struct {
		name string
		mk   func(g *graph.Graph, opts ...Option) Process
	}
	procs := []proc{
		{"2-state", func(g *graph.Graph, opts ...Option) Process { return NewTwoState(g, opts...) }},
		{"3-state", func(g *graph.Graph, opts ...Option) Process { return NewThreeState(g, opts...) }},
		{"3-color", func(g *graph.Graph, opts ...Option) Process { return NewThreeColor(g, opts...) }},
	}
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"star", graph.Star(700)},
		{"caterpillar", graph.Caterpillar(120, 5)},
		{"complete", graph.Complete(256)},
		// Weight-sorted power-law ids pack >= 64 hubs first, so the counter
		// plane resolves to the hub/tail split with a whole pure-hub lane
		// word — the geometry the parallel refresh skips after a delta merge.
		{"powerlaw", graph.ChungLu(8000, 2.0, 10, xrand.New(42))},
	}
	type timed interface{ StabilizationTimes() []int }
	for _, pr := range procs {
		for _, gc := range graphs {
			cap := 4 * DefaultRoundCap(gc.g.N())
			base := pr.mk(gc.g, WithSeed(77), WithLocalTimes())
			baseRes := Run(base, cap)
			if !baseRes.Stabilized {
				t.Fatalf("%s/%s: sequential run did not stabilize", pr.name, gc.name)
			}
			if err := verify.MIS(gc.g, base.Black); err != nil {
				t.Fatalf("%s/%s: %v", pr.name, gc.name, err)
			}
			baseTimes := base.(timed).StabilizationTimes()
			for _, workers := range []int{2, 8} {
				name := fmt.Sprintf("%s/%s/workers=%d", pr.name, gc.name, workers)
				p := pr.mk(gc.g, WithSeed(77), WithLocalTimes(), WithWorkers(workers))
				if res := Run(p, cap); res != baseRes {
					t.Fatalf("%s: summary %+v, sequential %+v", name, res, baseRes)
				}
				for u := 0; u < gc.g.N(); u++ {
					if p.Black(u) != base.Black(u) {
						t.Fatalf("%s: color of %d diverged", name, u)
					}
				}
				pts := p.(timed).StabilizationTimes()
				for u, bt := range baseTimes {
					if pts[u] != bt {
						t.Fatalf("%s: coveredAt stamp of %d is %d, sequential %d", name, u, pts[u], bt)
					}
				}
			}
			// The full-rescan path parallelizes over [0, n) the same way;
			// it must agree with everything above too.
			p := pr.mk(gc.g, WithSeed(77), WithLocalTimes(), WithWorkers(8), WithFullRescan())
			if res := Run(p, cap); res != baseRes {
				t.Fatalf("%s/%s full-rescan workers=8: summary %+v, sequential %+v",
					pr.name, gc.name, res, baseRes)
			}
		}
	}

	// Kernel-vs-scalar and relabel axes. All three processes above execute
	// on the bit-sliced kernel (auto-selected); here the scalar interface
	// path in original vertex order is forced as the golden reference and
	// every kernel configuration — workers {1, 2, 8}, frontier and
	// full-rescan, with and without the degree-bucketed locality
	// relabeling — must reproduce it byte for byte: summaries, colors, and
	// the coveredAt stamps.
	for _, pr := range procs {
		for _, gc := range graphs {
			cap := 4 * DefaultRoundCap(gc.g.N())
			scal := pr.mk(gc.g, WithSeed(77), WithLocalTimes(), WithScalarEngine(), WithIdentityOrder())
			scalRes := Run(scal, cap)
			if !scalRes.Stabilized {
				t.Fatalf("%s/%s: scalar run did not stabilize", pr.name, gc.name)
			}
			scalTimes := scal.(timed).StabilizationTimes()
			for _, workers := range []int{1, 2, 8} {
				for _, rescan := range []bool{false, true} {
					for _, relabel := range []bool{false, true} {
						name := fmt.Sprintf("%s/%s/kernel workers=%d rescan=%v relabel=%v",
							pr.name, gc.name, workers, rescan, relabel)
						opts := []Option{WithSeed(77), WithLocalTimes(), WithWorkers(workers)}
						if rescan {
							opts = append(opts, WithFullRescan())
						}
						if relabel {
							opts = append(opts, WithDegreeOrder())
						} else {
							opts = append(opts, WithIdentityOrder())
						}
						p := pr.mk(gc.g, opts...)
						if !kernelEngaged(p) {
							t.Fatalf("%s: kernel did not engage", name)
						}
						if res := Run(p, cap); res != scalRes {
							t.Fatalf("%s: summary %+v, scalar %+v", name, res, scalRes)
						}
						for u := 0; u < gc.g.N(); u++ {
							if p.Black(u) != scal.Black(u) {
								t.Fatalf("%s: color of %d diverged", name, u)
							}
						}
						for u, st := range scalTimes {
							if pt := p.(timed).StabilizationTimes()[u]; pt != st {
								t.Fatalf("%s: coveredAt stamp of %d is %d, scalar %d", name, u, pt, st)
							}
						}
					}
				}
			}
			// Counter-layout axis: every forced plane layout — flat, narrow,
			// width-adaptive lanes, hub/tail split — at workers {1, 2, 8} on
			// the frontier and full-rescan refresh paths must reproduce the
			// same scalar golden byte for byte: summaries, colors, coveredAt
			// stamps. The plane changes where counters are stored, never what
			// a read returns.
			for _, layout := range []engine.CounterLayout{engine.LayoutFlat, engine.LayoutNarrow, engine.LayoutSplit} {
				for _, workers := range []int{1, 2, 8} {
					for _, rescan := range []bool{false, true} {
						name := fmt.Sprintf("%s/%s/kernel layout=%v workers=%d rescan=%v",
							pr.name, gc.name, layout, workers, rescan)
						opts := []Option{WithSeed(77), WithLocalTimes(), WithWorkers(workers),
							WithIdentityOrder(), WithCounterLayout(layout)}
						if rescan {
							opts = append(opts, WithFullRescan())
						}
						p := pr.mk(gc.g, opts...)
						if info := counterPlaneOf(p); info.Active && info.Layout != layout {
							t.Fatalf("%s: plane resolved to %v", name, info.Layout)
						}
						if res := Run(p, cap); res != scalRes {
							t.Fatalf("%s: summary %+v, scalar %+v", name, res, scalRes)
						}
						for u := 0; u < gc.g.N(); u++ {
							if p.Black(u) != scal.Black(u) {
								t.Fatalf("%s: color of %d diverged", name, u)
							}
						}
						for u, st := range scalTimes {
							if pt := p.(timed).StabilizationTimes()[u]; pt != st {
								t.Fatalf("%s: coveredAt stamp of %d is %d, scalar %d", name, u, pt, st)
							}
						}
					}
				}
			}
		}
	}
}

// The refresh-heavy worst case: on a complete graph every changing round
// sets dirtyAll and the refresh rescans all n vertices — exactly the O(n)
// phase the partitioned refresh parallelizes. workers=8 must reproduce the
// sequential execution on all three processes; CI runs this test under
// -race by name.
func TestParallelRefreshCompleteGraphWorkers8(t *testing.T) {
	g := graph.Complete(400)
	mks := []func(g *graph.Graph, opts ...Option) Process{
		func(g *graph.Graph, opts ...Option) Process { return NewTwoState(g, opts...) },
		func(g *graph.Graph, opts ...Option) Process { return NewThreeState(g, opts...) },
		func(g *graph.Graph, opts ...Option) Process { return NewThreeColor(g, opts...) },
	}
	for i, mk := range mks {
		for seed := uint64(0); seed < 3; seed++ {
			cap := 4 * DefaultRoundCap(g.N())
			seq := Run(mk(g, WithSeed(seed)), cap)
			par := Run(mk(g, WithSeed(seed), WithWorkers(8)), cap)
			if seq != par {
				t.Fatalf("proc %d seed %d: parallel %+v vs sequential %+v", i, seed, par, seq)
			}
			if !seq.Stabilized {
				t.Fatalf("proc %d seed %d: did not stabilize", i, seed)
			}
		}
	}
}

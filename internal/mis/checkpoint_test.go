package mis

import (
	"math"
	"strings"
	"testing"

	"ssmis/internal/batch"
	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/sched"
	"ssmis/internal/xrand"
)

// The checkpoint contract: pausing at any round and restoring must continue
// the EXACT execution an uninterrupted run produces — same colors every
// subsequent round, same stabilization round, same bit counts.
func TestCheckpointRoundTripTwoState(t *testing.T) {
	g := graph.Gnp(100, 0.05, xrand.New(111))
	full := NewTwoState(g, WithSeed(7))
	paused := NewTwoState(g, WithSeed(7))
	const pauseAt = 5
	for i := 0; i < pauseAt; i++ {
		full.Step()
		paused.Step()
	}
	cp, err := paused.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreTwoState(g, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Round() != pauseAt {
		t.Fatalf("restored round %d, want %d", restored.Round(), pauseAt)
	}
	for i := 0; i < 5000 && !full.Stabilized(); i++ {
		full.Step()
		restored.Step()
		for u := 0; u < g.N(); u++ {
			if full.Black(u) != restored.Black(u) {
				t.Fatalf("round %d: restored run diverged at %d", full.Round(), u)
			}
		}
	}
	if !restored.Stabilized() || full.Round() != restored.Round() {
		t.Fatal("restored run stabilized differently")
	}
	if full.RandomBits() != restored.RandomBits() {
		t.Fatalf("bit accounting differs: %d vs %d", full.RandomBits(), restored.RandomBits())
	}
}

func TestCheckpointRoundTripThreeState(t *testing.T) {
	g := graph.Gnp(80, 0.08, xrand.New(112))
	full := NewThreeState(g, WithSeed(9))
	paused := NewThreeState(g, WithSeed(9))
	for i := 0; i < 4; i++ {
		full.Step()
		paused.Step()
	}
	cp, err := paused.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreThreeState(g, cp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		full.Step()
		restored.Step()
		for u := 0; u < g.N(); u++ {
			if full.State(u) != restored.State(u) {
				t.Fatalf("round %d: diverged at %d", full.Round(), u)
			}
		}
	}
}

func TestCheckpointRoundTripThreeColor(t *testing.T) {
	g := graph.Gnp(60, 0.15, xrand.New(113))
	full := NewThreeColor(g, WithSeed(11), WithSwitchZetaLog2(5))
	paused := NewThreeColor(g, WithSeed(11), WithSwitchZetaLog2(5))
	for i := 0; i < 7; i++ {
		full.Step()
		paused.Step()
	}
	cp, err := paused.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreThreeColor(g, decoded)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		full.Step()
		restored.Step()
		for u := 0; u < g.N(); u++ {
			if full.ColorOf(u) != restored.ColorOf(u) {
				t.Fatalf("round %d: colors diverged at %d", full.Round(), u)
			}
			if full.SwitchLevel(u) != restored.SwitchLevel(u) {
				t.Fatalf("round %d: levels diverged at %d", full.Round(), u)
			}
		}
	}
	if full.RandomBits() != restored.RandomBits() {
		t.Fatalf("bits differ: %d vs %d", full.RandomBits(), restored.RandomBits())
	}
}

func TestCheckpointValidation(t *testing.T) {
	g := graph.Path(5)
	p := NewTwoState(g, WithSeed(1))
	cp, _ := p.Checkpoint()

	if _, err := RestoreTwoState(graph.Path(6), cp); err == nil {
		t.Fatal("order mismatch accepted")
	}
	if _, err := RestoreThreeState(g, cp); err == nil {
		t.Fatal("wrong process kind accepted")
	}
	if _, err := DecodeCheckpoint([]byte("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	bad := *cp
	bad.Rngs = bad.Rngs[:2]
	if _, err := RestoreTwoState(g, &bad); err == nil {
		t.Fatal("truncated rng list accepted")
	}
	p3 := NewThreeState(g, WithSeed(1))
	cp3, _ := p3.Checkpoint()
	cp3.States[0] = 99
	if _, err := RestoreThreeState(g, cp3); err == nil {
		t.Fatal("invalid state value accepted")
	}
}

func TestCheckpointRestoredOptionsPreserved(t *testing.T) {
	// Black bias travels with the checkpoint (it shapes the coin stream).
	g := graph.Complete(24)
	full := NewTwoState(g, WithSeed(3), WithBlackBias(0.3))
	paused := NewTwoState(g, WithSeed(3), WithBlackBias(0.3))
	full.Step()
	paused.Step()
	cp, _ := paused.Checkpoint()
	restored, err := RestoreTwoState(g, cp)
	if err != nil {
		t.Fatal(err)
	}
	rFull := Run(full, 100000)
	rRest := Run(restored, 100000)
	if rFull != rRest {
		t.Fatalf("biased runs diverged after restore: %+v vs %+v", rFull, rRest)
	}
}

// A biased 3-state run must survive a checkpoint round-trip: the bias shapes
// every coin, so dropping it silently diverges the restored execution.
func TestCheckpointThreeStatePreservesBias(t *testing.T) {
	g := graph.Gnp(80, 0.08, xrand.New(41))
	full := NewThreeState(g, WithSeed(5), WithBlackBias(0.9))
	paused := NewThreeState(g, WithSeed(5), WithBlackBias(0.9))
	for i := 0; i < 4; i++ {
		full.Step()
		paused.Step()
	}
	cp, err := paused.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreThreeState(g, cp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		full.Step()
		restored.Step()
		for u := 0; u < g.N(); u++ {
			if full.State(u) != restored.State(u) {
				t.Fatalf("round %d: restored biased run diverged at %d", full.Round(), u)
			}
		}
	}
	if full.RandomBits() != restored.RandomBits() {
		t.Fatalf("bit accounting diverged: %d vs %d", full.RandomBits(), restored.RandomBits())
	}
}

// Malformed checkpoints must fail with errors, not construction panics, and
// a legacy zero bias means the default fair coin.
func TestCheckpointBiasValidation(t *testing.T) {
	g := graph.Path(4)
	p := NewTwoState(g, WithSeed(1))
	cp, err := p.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cp.BlackBias = 0 // legacy checkpoints predate the field
	q, err := RestoreTwoState(g, cp)
	if err != nil {
		t.Fatalf("legacy zero bias rejected: %v", err)
	}
	Run(q, 1000)
	for _, bad := range []float64{-0.5, 1, 1.5} {
		cp.BlackBias = bad
		if _, err := RestoreTwoState(g, cp); err == nil {
			t.Fatalf("bias %v accepted", bad)
		}
	}
}

func TestCheckpointBiasRejectsNaN(t *testing.T) {
	g := graph.Path(4)
	p := NewTwoState(g, WithSeed(1))
	cp, err := p.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cp.BlackBias = math.NaN()
	if _, err := RestoreTwoState(g, cp); err == nil {
		t.Fatal("NaN bias accepted")
	}
}

// A checkpoint taken mid-daemon-run must resume the SCHEDULE coin-for-coin:
// the restored process's subsequent daemon selections (and therefore steps,
// moves, and final states) equal the uninterrupted run's.
func TestCheckpointDaemonResume(t *testing.T) {
	for _, procKind := range []string{"2state", "3state"} {
		for _, dname := range []string{"central-random", "distributed-random"} {
			g := graph.Gnp(60, 0.08, xrand.New(313))
			mk := func() DaemonRunner {
				if procKind == "2state" {
					return NewTwoState(g, WithSeed(5))
				}
				return NewThreeState(g, WithSeed(5))
			}
			newDaemon := func() sched.Daemon {
				d, err := sched.DaemonByName(dname)
				if err != nil {
					t.Fatal(err)
				}
				return d
			}
			full, paused := mk(), mk()
			fullD, pausedD := newDaemon(), newDaemon()
			const pauseAt = 5
			for i := 0; i < pauseAt; i++ {
				full.DaemonStep(fullD)
				paused.DaemonStep(pausedD)
			}
			if paused.Stabilized() {
				t.Fatalf("%s/%s: stabilized before the pause; deepen the test graph", procKind, dname)
			}
			cp, err := paused.(interface{ Checkpoint() (*Checkpoint, error) }).Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if cp.SchedRng == nil || cp.Steps != pauseAt {
				t.Fatalf("%s/%s: checkpoint sched stream missing (steps=%d)", procKind, dname, cp.Steps)
			}
			blob, err := cp.Encode()
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := DecodeCheckpoint(blob)
			if err != nil {
				t.Fatal(err)
			}
			var restored DaemonRunner
			if procKind == "2state" {
				restored, err = RestoreTwoState(g, decoded)
			} else {
				restored, err = RestoreThreeState(g, decoded)
			}
			if err != nil {
				t.Fatal(err)
			}
			if restored.Steps() != pauseAt {
				t.Fatalf("%s/%s: restored steps %d", procKind, dname, restored.Steps())
			}
			// The daemon object itself is stateless across steps for the
			// random daemons used here; the selection stream carries the
			// schedule. Continue both runs in lockstep.
			restoredD := newDaemon()
			cap := DefaultDaemonStepCap(g.N())
			fullSteps, fullOK := full.DaemonRun(fullD, cap)
			restSteps, restOK := restored.DaemonRun(restoredD, cap)
			if fullOK != restOK || fullSteps != restSteps {
				t.Fatalf("%s/%s: resumed run took %d steps (ok=%v), uninterrupted %d (ok=%v)",
					procKind, dname, restSteps, restOK, fullSteps, fullOK)
			}
			if full.Moves() != restored.Moves() || full.RandomBits() != restored.RandomBits() {
				t.Fatalf("%s/%s: accounting diverged: moves %d vs %d, bits %d vs %d",
					procKind, dname, full.Moves(), restored.Moves(),
					full.RandomBits(), restored.RandomBits())
			}
			for u := 0; u < g.N(); u++ {
				if full.Black(u) != restored.Black(u) {
					t.Fatalf("%s/%s: final states diverged at %d", procKind, dname, u)
				}
			}
		}
	}
}

// A batch sweep whose every run is checkpointed mid-flight, serialized,
// restored and finished on the work-stealing pool must reproduce the
// uninterrupted sweep exactly — per-seed rounds, bit totals and final
// colors, for all three processes — and identically at workers=1 and
// workers=8 under maximal steal pressure (chunk=1). This is the
// batch-sweep face of the checkpoint contract: resume composes with the
// scheduler, not just with a single synchronous run.
func TestCheckpointBatchSweepResume(t *testing.T) {
	g := graph.Gnp(80, 0.06, xrand.New(77))
	limit := 8 * DefaultRoundCap(g.N())

	type outcome struct {
		rounds int
		bits   int64
		black  string
	}
	finish := func(p Process) outcome {
		res := Run(p, limit)
		if !res.Stabilized {
			return outcome{rounds: -1}
		}
		var b strings.Builder
		for u := 0; u < g.N(); u++ {
			if p.Black(u) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return outcome{rounds: res.Rounds, bits: res.RandomBits, black: b.String()}
	}

	kinds := []struct {
		name    string
		mk      func(seed uint64) Process
		restore func(cp *Checkpoint) (Process, error)
	}{
		{"2state",
			func(seed uint64) Process { return NewTwoState(g, WithSeed(seed)) },
			func(cp *Checkpoint) (Process, error) { return RestoreTwoState(g, cp) }},
		{"3state",
			func(seed uint64) Process { return NewThreeState(g, WithSeed(seed)) },
			func(cp *Checkpoint) (Process, error) { return RestoreThreeState(g, cp) }},
		{"3color",
			func(seed uint64) Process { return NewThreeColor(g, WithSeed(seed)) },
			func(cp *Checkpoint) (Process, error) { return RestoreThreeColor(g, cp) }},
	}

	seeds := make([]uint64, 10)
	for i := range seeds {
		seeds[i] = uint64(100 + i)
	}
	for _, kind := range kinds {
		want := make([]outcome, len(seeds))
		for i, s := range seeds {
			want[i] = finish(kind.mk(s))
			if want[i].rounds < 0 {
				t.Fatalf("%s seed %d: uninterrupted run hit the cap", kind.name, s)
			}
		}
		for _, workers := range []int{1, 8} {
			pool := batch.NewPool(workers)
			got := make([]outcome, 0, len(seeds))
			pool.SubmitOpts([]batch.Shard{{
				Seeds: seeds,
				Run: func(_ *engine.RunContext, _ *graph.Graph, _ int, seed uint64) batch.Outcome {
					p := kind.mk(seed)
					const pauseAt = 3
					for i := 0; i < pauseAt; i++ {
						p.Step()
					}
					cp, err := p.(interface{ Checkpoint() (*Checkpoint, error) }).Checkpoint()
					if err != nil {
						return batch.Outcome{Failed: true}
					}
					blob, err := cp.Encode()
					if err != nil {
						return batch.Outcome{Failed: true}
					}
					decoded, err := DecodeCheckpoint(blob)
					if err != nil {
						return batch.Outcome{Failed: true}
					}
					restored, err := kind.restore(decoded)
					if err != nil {
						return batch.Outcome{Failed: true}
					}
					return batch.Outcome{Extra: finish(restored)}
				},
			}}, batch.SubmitOptions{ChunkSize: 1}, func(o batch.Outcome) {
				if o.Failed {
					got = append(got, outcome{rounds: -2})
					return
				}
				got = append(got, o.Extra.(outcome))
			}).Wait()
			pool.Close()
			for i := range seeds {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d seed %d: resumed outcome %+v != uninterrupted %+v",
						kind.name, workers, seeds[i], got[i], want[i])
				}
			}
		}
	}
}

// Legacy checkpoints (no schedRng) restore with a nil stream: a subsequent
// daemon run derives a fresh stream instead of failing.
func TestCheckpointWithoutSchedStream(t *testing.T) {
	g := graph.Gnp(40, 0.1, xrand.New(99))
	p := NewTwoState(g, WithSeed(3))
	p.Step()
	cp, err := p.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp.SchedRng != nil {
		t.Fatal("synchronous-only run serialized a scheduler stream")
	}
	restored, err := RestoreTwoState(g, cp)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sched.DaemonByName("central-random")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := restored.DaemonRun(d, 0); !ok {
		t.Fatal("restored run did not stabilize under daemon")
	}
}

// A checkpoint taken BEFORE the first daemon step carries no scheduler
// stream; the stream is derived lazily after restore — from the
// checkpointed master seed, so the resumed schedule equals the schedule
// the uninterrupted run would have drawn.
func TestCheckpointSeedPreservedForLazyStreams(t *testing.T) {
	g := graph.Gnp(80, 0.05, xrand.New(21))
	full := NewTwoState(g, WithSeed(42))
	paused := NewTwoState(g, WithSeed(42))
	for i := 0; i < 3; i++ { // synchronous prefix only: no daemon stream yet
		full.Step()
		paused.Step()
	}
	cp, err := paused.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp.SchedRng != nil {
		t.Fatal("checkpoint before the first daemon step carries a stream")
	}
	restored, err := RestoreTwoState(g, cp)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := sched.CentralRandom{}, sched.CentralRandom{}
	for steps := 0; steps < 100000 && !full.Stabilized(); steps++ {
		if !full.DaemonStep(d1) {
			break
		}
		restored.DaemonStep(d2)
		for u := 0; u < g.N(); u++ {
			if full.Black(u) != restored.Black(u) {
				t.Fatalf("step %d: lazily derived schedule diverged at vertex %d", full.Steps(), u)
			}
		}
	}
	if full.Moves() != restored.Moves() || full.Steps() != restored.Steps() {
		t.Fatalf("accounting diverged: moves %d/%d steps %d/%d",
			full.Moves(), restored.Moves(), full.Steps(), restored.Steps())
	}
}

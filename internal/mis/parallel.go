package mis

// Intra-round parallelism. The shared engine parallelizes the coin-drawing
// and commit phases of a synchronous round across worker goroutines for all
// three processes. Because every vertex draws coins from its own stream, the
// execution is bit-identical to the sequential engine regardless of
// goroutine scheduling — asserted by differential tests.
//
// The parallel path pays goroutine-coordination overhead per round, so it
// only wins on large graphs (≳10^5 vertices at typical densities); it is
// opt-in via WithWorkers.

import "fmt"

// WithWorkers enables parallel round execution with k worker goroutines for
// all three processes; k <= 1 keeps the sequential engine. Negative k panics.
func WithWorkers(k int) Option {
	if k < 0 {
		panic(fmt.Sprintf("mis: negative worker count %d", k))
	}
	return func(o *options) { o.workers = k }
}

package mis

// Intra-round parallelism. The shared engine parallelizes every phase of a
// synchronous round across worker goroutines for all three processes: the
// coin-drawing evaluation, the commit, and the membership refresh that
// follows it (a two-phase partitioned scan — vertex-local re-derive over
// word-aligned partitions, then ordered coverage stamping of the few new
// stable-core entrants). Because every vertex draws coins from its own
// stream and the refresh is a pure per-vertex function of the committed
// state, the execution is bit-identical to the sequential engine regardless
// of goroutine scheduling — asserted by differential tests and the
// TestRefreshDeterminismMatrix worker matrix.
//
// The parallel path pays goroutine-coordination overhead per round, so it
// only wins on large graphs (≳10^5 vertices at typical densities); it is
// opt-in via WithWorkers.

import "fmt"

// WithWorkers enables parallel round execution with k worker goroutines for
// all three processes; k <= 1 keeps the sequential engine. Negative k panics.
func WithWorkers(k int) Option {
	if k < 0 {
		panic(fmt.Sprintf("mis: negative worker count %d", k))
	}
	return func(o *options) { o.workers = k }
}

package mis

// Intra-round parallelism for the 2-state simulator. A synchronous round is
// embarrassingly parallel across vertices except for the black-neighbor
// counter updates, which are made safe with atomic adds. Because every
// vertex draws coins from its own stream, the execution is bit-identical to
// the sequential engine regardless of goroutine scheduling — asserted by
// differential tests.
//
// The parallel path pays goroutine-coordination overhead per round, so it
// only wins on large graphs (≳10^5 vertices at typical densities); it is
// opt-in via WithWorkers.

import (
	"sync"
	"sync/atomic"
)

// WithWorkers enables parallel round execution with k worker goroutines for
// processes that support it (currently the 2-state simulator); k <= 1 keeps
// the sequential engine.
func WithWorkers(k int) Option {
	return func(o *options) { o.workers = k }
}

// stepParallel executes one 2-state round with p.opts.workers goroutines.
// Semantics are identical to the sequential Step.
func (p *TwoState) stepParallel() {
	if p.activeCnt == 0 {
		return
	}
	workers := p.opts.workers
	n := p.g.N()
	chunk := (n + workers - 1) / workers

	// Phase 1: evaluate the activity predicate against the frozen pre-round
	// state and draw coins; collect flips per worker.
	flipsPer := make([][]int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var flips []int32
			var bits int64
			for u := lo; u < hi; u++ {
				if !p.active(u) {
					continue
				}
				coinBlack, cost := p.opts.coin(p.rngs[u])
				bits += cost
				if coinBlack != p.black[u] {
					flips = append(flips, int32(u))
				}
			}
			flipsPer[w] = flips
			atomic.AddInt64(&p.bits, bits)
		}(w, lo, hi)
	}
	wg.Wait()

	// Phase 2: commit flips; neighbor counters via atomic adds.
	var blackDelta int64
	for w := 0; w < workers; w++ {
		flips := flipsPer[w]
		if len(flips) == 0 {
			continue
		}
		wg.Add(1)
		go func(flips []int32) {
			defer wg.Done()
			var delta int64
			for _, u := range flips {
				nowBlack := !p.black[u]
				p.black[u] = nowBlack
				d := int32(1)
				if !nowBlack {
					d = -1
				}
				delta += int64(d)
				if !p.complete {
					for _, v := range p.g.Neighbors(int(u)) {
						atomic.AddInt32(&p.nbrBlack[v], d)
					}
				}
			}
			atomic.AddInt64(&blackDelta, delta)
		}(flips)
	}
	wg.Wait()
	p.blackCnt += int(blackDelta)

	// Phase 3: recount actives in parallel.
	p.round++
	counts := make([]int, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			c := 0
			for u := lo; u < hi; u++ {
				if p.active(u) {
					c++
				}
			}
			counts[w] = c
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	p.activeCnt = total
	p.recordLocal()
}

package mis

// Internal-invariant property tests: the incremental counters that make the
// simulator fast (black-neighbor counts, active counts, stabilization
// flags) must always agree with a from-scratch recomputation, including
// after mid-run corruption — the classic class of bugs in incremental
// simulators.

import (
	"testing"
	"testing/quick"

	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

func (p *TwoState) checkCounters(t *testing.T) {
	t.Helper()
	if err := p.core.CheckIntegrity(); err != nil {
		t.Fatalf("2-state: %v", err)
	}
	blackCnt := 0
	for u := 0; u < p.N(); u++ {
		if p.Black(u) {
			blackCnt++
		}
	}
	if blackCnt != p.BlackCount() {
		t.Fatalf("round %d: BlackCount = %d, recomputed %d", p.Round(), p.BlackCount(), blackCnt)
	}
}

func TestTwoStateCounterIntegrityUnderRunAndCorruption(t *testing.T) {
	master := xrand.New(61)
	for trial := 0; trial < 15; trial++ {
		r := master.Split(uint64(trial))
		g := graph.Gnp(60, 0.1, r)
		p := NewTwoState(g, WithSeed(uint64(trial)))
		p.checkCounters(t)
		for i := 0; i < 60; i++ {
			if r.Intn(10) == 0 {
				p.Corrupt(r.Intn(g.N()), r.Bit())
			} else {
				p.Step()
			}
			p.checkCounters(t)
		}
	}
}

func (p *ThreeState) checkCounters(t *testing.T) {
	t.Helper()
	if err := p.core.CheckIntegrity(); err != nil {
		t.Fatalf("3-state: %v", err)
	}
}

func TestThreeStateCounterIntegrityUnderRunAndCorruption(t *testing.T) {
	master := xrand.New(62)
	for trial := 0; trial < 15; trial++ {
		r := master.Split(uint64(trial))
		g := graph.Gnp(60, 0.1, r)
		p := NewThreeState(g, WithSeed(uint64(trial)))
		p.checkCounters(t)
		for i := 0; i < 60; i++ {
			if r.Intn(10) == 0 {
				p.Corrupt(r.Intn(g.N()), TriState(1+r.Intn(3)))
			} else {
				p.Step()
			}
			p.checkCounters(t)
		}
	}
}

func (p *ThreeColor) checkCounters(t *testing.T) {
	t.Helper()
	if err := p.core.CheckIntegrity(); err != nil {
		t.Fatalf("3-color: %v", err)
	}
	grays := 0
	for u := 0; u < p.N(); u++ {
		if p.ColorOf(u) == ColorGray {
			grays++
		}
	}
	if grays != p.GrayCount() {
		t.Fatalf("round %d: GrayCount = %d, recomputed %d", p.Round(), p.GrayCount(), grays)
	}
}

func TestThreeColorCounterIntegrityUnderRunAndCorruption(t *testing.T) {
	master := xrand.New(63)
	for trial := 0; trial < 15; trial++ {
		r := master.Split(uint64(trial))
		g := graph.Gnp(60, 0.1, r)
		p := NewThreeColor(g, WithSeed(uint64(trial)))
		p.checkCounters(t)
		for i := 0; i < 60; i++ {
			if r.Intn(10) == 0 {
				p.Corrupt(r.Intn(g.N()), Color(1+r.Intn(3)), uint8(r.Intn(6)))
			} else {
				p.Step()
			}
			p.checkCounters(t)
		}
	}
}

// Once Stabilized() reports true it must never revert (without corruption):
// property over random graphs and seeds, for all three processes.
func TestStabilizationMonotoneProperty(t *testing.T) {
	master := xrand.New(64)
	f := func(seed uint64) bool {
		r := master.Split(seed)
		n := 2 + r.Intn(50)
		g := graph.Gnp(n, r.Float64()*0.3, r)
		for _, p := range []Process{
			NewTwoState(g, WithSeed(seed)),
			NewThreeState(g, WithSeed(seed)),
			NewThreeColor(g, WithSeed(seed)),
		} {
			Run(p, 4*DefaultRoundCap(n))
			if !p.Stabilized() {
				return false
			}
			for i := 0; i < 20; i++ {
				p.Step()
				if !p.Stabilized() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The black set of a stabilized 3-color process contains no gray vertices'
// conflicts: grays may persist indefinitely only if they are dominated by a
// stable black neighbor.
func TestThreeColorStabilizedGraysAreDominated(t *testing.T) {
	g := graph.Gnp(80, 0.1, xrand.New(65))
	p := NewThreeColor(g, WithSeed(9))
	Run(p, 20000)
	if !p.Stabilized() {
		t.Fatal("did not stabilize")
	}
	for u := 0; u < g.N(); u++ {
		if p.ColorOf(u) != ColorGray {
			continue
		}
		dominated := false
		for _, v := range g.Neighbors(u) {
			if p.ColorOf(int(v)) == ColorBlack {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("stabilized gray vertex %d has no black neighbor", u)
		}
	}
}

package mis

// Statistical verification of the paper's basic probabilistic lemmas for
// the 2-state process. These are Monte-Carlo estimates compared against the
// proven lower bounds with generous slack: the proofs' bounds are not tight,
// so the empirical frequencies must sit ABOVE them.

import (
	"math"
	"testing"

	"ssmis/internal/graph"
	"ssmis/internal/stats"
	"ssmis/internal/xrand"
)

// Lemma 6: if u is active with k >= 1 active neighbors at the end of round
// t, then P[u is stable black by round t + ceil(log2(k+1))] >= 1/(2ek).
// We realize the premise exactly with an all-white star K_{1,k}: every
// vertex is active, the center has k active neighbors.
func TestLemmaSixStableBlackProbability(t *testing.T) {
	for _, k := range []int{1, 3, 7, 15} {
		g := graph.Star(k + 1) // center 0 with k leaves
		horizon := int(math.Ceil(math.Log2(float64(k + 1))))
		if horizon < 1 {
			horizon = 1
		}
		const trials = 4000
		hits := 0
		for s := uint64(0); s < trials; s++ {
			p := NewTwoState(g, WithSeed(s), WithInit(InitAllWhite))
			for r := 0; r < horizon; r++ {
				p.Step()
			}
			// Stable black = black with no black neighbors.
			if p.Black(0) {
				anyBlackLeaf := false
				for u := 1; u <= k; u++ {
					if p.Black(u) {
						anyBlackLeaf = true
						break
					}
				}
				if !anyBlackLeaf {
					hits++
				}
			}
		}
		got := float64(hits) / trials
		bound := 1 / (2 * math.E * float64(k))
		// Allow 20% relative slack for Monte-Carlo noise; the true
		// probability is well above the bound, so this is conservative.
		if got < 0.8*bound {
			t.Errorf("k=%d: P[stable black within %d rounds] = %.4f < 0.8·bound %.4f",
				k, horizon, got, bound)
		}
	}
}

// Lemma 7 (multi-vertex version): with ℓ active vertices u_1..u_ℓ each
// having k active neighbors, P[some u_i stable black by t+log(max k_i + 1)]
// >= (1/5)·min(1, ℓ/(2k)). Realized with ℓ disjoint all-white stars.
func TestLemmaSevenSomeVertexStabilizes(t *testing.T) {
	const k, ell = 7, 4
	// ell disjoint stars K_{1,k}; centers are ell active vertices with k
	// active neighbors each.
	b := graph.NewBuilder(ell * (k + 1))
	centers := make([]int, ell)
	for i := 0; i < ell; i++ {
		base := i * (k + 1)
		centers[i] = base
		for leaf := 1; leaf <= k; leaf++ {
			b.AddEdge(base, base+leaf)
		}
	}
	g := b.Build()
	horizon := int(math.Ceil(math.Log2(float64(k + 1))))
	const trials = 3000
	hits := 0
	for s := uint64(0); s < trials; s++ {
		p := NewTwoState(g, WithSeed(s), WithInit(InitAllWhite))
		for r := 0; r < horizon; r++ {
			p.Step()
		}
		for _, c := range centers {
			if p.Black(c) {
				stable := true
				for _, v := range g.Neighbors(c) {
					if p.Black(int(v)) {
						stable = false
						break
					}
				}
				if stable {
					hits++
					break
				}
			}
		}
	}
	got := float64(hits) / trials
	bound := 0.2 * math.Min(1, float64(ell)/(2*float64(k)))
	if got < 0.8*bound {
		t.Errorf("P[some center stable black] = %.4f < 0.8·bound %.4f", got, bound)
	}
}

// Theorem 8's tail: on K_n, P[T >= k·log2 n] decays geometrically in k. The
// fitted log2-tail slope must be clearly negative and roughly constant —
// the paper proves 2^{-Θ(k)}.
func TestTheoremEightGeometricTail(t *testing.T) {
	const n, trials = 512, 400
	g := graph.Complete(n)
	sample := make([]float64, 0, trials)
	for s := uint64(0); s < trials; s++ {
		res := Run(NewTwoState(g, WithSeed(s)), 1<<20)
		if !res.Stabilized {
			t.Fatal("clique run did not stabilize")
		}
		sample = append(sample, float64(res.Rounds))
	}
	slope, points := stats.GeometricTailSlope(sample, math.Log2(n), 8)
	if points < 2 {
		t.Skipf("tail too thin for a fit (%d points)", points)
	}
	if slope > -0.5 || slope < -6 {
		t.Errorf("tail slope %.2f outside the plausible Θ(1) band [-6, -0.5] (%d points)", slope, points)
	}
}

// The paper's stabilization criterion: for the 2-state process,
// A_t = ∅ ⟺ the black set is an MIS. Verified across random executions
// stopped at random times.
func TestActiveEmptyIffMIS(t *testing.T) {
	g := graph.Gnp(100, 0.05, xrand.New(51))
	for s := uint64(0); s < 30; s++ {
		p := NewTwoState(g, WithSeed(s))
		steps := int(s % 17)
		for i := 0; i < steps && !p.Stabilized(); i++ {
			p.Step()
		}
		isMIS := checkMIS(g, p)
		if (p.ActiveCount() == 0) != isMIS {
			t.Fatalf("seed %d: active=%d but isMIS=%v", s, p.ActiveCount(), isMIS)
		}
	}
}

func checkMIS(g *graph.Graph, p Process) bool {
	for u := 0; u < g.N(); u++ {
		anyBlackNbr := false
		for _, v := range g.Neighbors(u) {
			if p.Black(int(v)) {
				anyBlackNbr = true
				break
			}
		}
		if p.Black(u) && anyBlackNbr {
			return false
		}
		if !p.Black(u) && !anyBlackNbr {
			return false
		}
	}
	return true
}

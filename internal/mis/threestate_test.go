package mis

import (
	"testing"
	"testing/quick"

	"ssmis/internal/graph"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

func TestThreeStateStabilizesOnFamilies(t *testing.T) {
	rng := xrand.New(21)
	families := map[string]*graph.Graph{
		"single":     graph.Empty(1),
		"edgeless":   graph.Empty(15),
		"path":       graph.Path(50),
		"cycle":      graph.Cycle(33),
		"star":       graph.Star(30),
		"clique":     graph.Complete(64),
		"tree":       graph.RandomTree(200, rng),
		"gnp-sparse": graph.Gnp(300, 0.01, rng),
		"gnp-dense":  graph.Gnp(120, 0.3, rng),
		"cliques":    graph.DisjointCliques(6, 6),
	}
	for name, g := range families {
		p := NewThreeState(g, WithSeed(5))
		Run(p, DefaultRoundCap(g.N()))
		if !p.Stabilized() {
			t.Errorf("%s: not stabilized after %d rounds", name, p.Round())
			continue
		}
		requireMIS(t, g, p)
	}
}

func TestThreeStateAllInitsConverge(t *testing.T) {
	g := graph.Gnp(150, 0.05, xrand.New(22))
	for _, init := range AllInits() {
		p := NewThreeState(g, WithSeed(6), WithInit(init))
		Run(p, DefaultRoundCap(g.N()))
		if !p.Stabilized() {
			t.Errorf("init %v: not stabilized", init)
			continue
		}
		requireMIS(t, g, p)
	}
}

// After stabilization the black SET is fixed but stable black vertices keep
// alternating between black1 and black0 — the paper notes this explicitly.
func TestThreeStateStableBlackAlternates(t *testing.T) {
	g := graph.Star(10)
	p := NewThreeState(g, WithSeed(7))
	Run(p, 10000)
	requireMIS(t, g, p)
	blackSet := make([]bool, g.N())
	var stable []int
	for u := 0; u < g.N(); u++ {
		blackSet[u] = p.Black(u)
		if p.Black(u) {
			stable = append(stable, u)
		}
	}
	seenBoth := make(map[int]map[TriState]bool)
	for _, u := range stable {
		seenBoth[u] = map[TriState]bool{}
	}
	for i := 0; i < 200; i++ {
		p.Step()
		for u := 0; u < g.N(); u++ {
			if p.Black(u) != blackSet[u] {
				t.Fatalf("black set changed after stabilization at vertex %d", u)
			}
		}
		for _, u := range stable {
			seenBoth[u][p.State(u)] = true
		}
	}
	for _, u := range stable {
		if !seenBoth[u][TriBlack1] || !seenBoth[u][TriBlack0] {
			t.Fatalf("stable black vertex %d did not alternate: %v", u, seenBoth[u])
		}
	}
}

func TestThreeStateIsolatedVertexStabilizesBlack(t *testing.T) {
	// An isolated white vertex has NC = ∅; the rule must treat this as "all
	// neighbors white" so it eventually turns (and stays) black.
	p := NewThreeState(graph.Empty(3), WithSeed(8), WithInit(InitAllWhite))
	Run(p, 1000)
	if !p.Stabilized() {
		t.Fatal("isolated vertices did not stabilize")
	}
	for u := 0; u < 3; u++ {
		if !p.Black(u) {
			t.Fatalf("isolated vertex %d not black", u)
		}
	}
}

func TestThreeStateBlack0WithBlack1NeighborTurnsWhite(t *testing.T) {
	// Deterministic transition: black0 with a black1 neighbor must become
	// white in one round.
	g := graph.Path(2)
	p := NewThreeState(g, WithSeed(9))
	p.Corrupt(0, TriBlack1)
	p.Corrupt(1, TriBlack0)
	p.Step()
	if p.State(1) != TriWhite {
		t.Fatalf("black0 with black1 neighbor became %v, want white", p.State(1))
	}
	// And vertex 0 (black1) must have randomized to black1 or black0.
	if !p.State(0).Black() {
		t.Fatalf("black1 vertex became %v", p.State(0))
	}
}

func TestThreeStateWhiteWithBlackNeighborFrozen(t *testing.T) {
	g := graph.Path(2)
	p := NewThreeState(g, WithSeed(10))
	p.Corrupt(0, TriBlack0)
	p.Corrupt(1, TriWhite)
	// 0 is black0 with no black1 neighbor -> randomizes (stays black);
	// 1 is white with a black neighbor -> frozen white.
	for i := 0; i < 50; i++ {
		p.Step()
		if p.State(1) != TriWhite {
			t.Fatalf("round %d: white vertex with black neighbor became %v", i, p.State(1))
		}
		if !p.State(0).Black() {
			t.Fatalf("round %d: stable black vertex became %v", i, p.State(0))
		}
	}
	if !p.Stabilized() {
		t.Fatal("configuration should be stabilized")
	}
}

func TestThreeStateDeterminism(t *testing.T) {
	g := graph.Gnp(90, 0.06, xrand.New(23))
	a := NewThreeState(g, WithSeed(77))
	b := NewThreeState(g, WithSeed(77))
	ra, rb := Run(a, 10000), Run(b, 10000)
	if ra != rb {
		t.Fatalf("nondeterministic: %+v vs %+v", ra, rb)
	}
}

func TestThreeStateCorruptionRecovery(t *testing.T) {
	g := graph.Gnp(100, 0.07, xrand.New(24))
	p := NewThreeState(g, WithSeed(11))
	Run(p, 10000)
	requireMIS(t, g, p)
	for u := 0; u < 15; u++ {
		p.Corrupt(u, TriBlack1)
	}
	Run(p, 10000)
	requireMIS(t, g, p)
}

func TestThreeStateMetadata(t *testing.T) {
	p := NewThreeState(graph.Path(3))
	if p.States() != 3 || p.Name() != "3-state" || p.N() != 3 {
		t.Fatal("metadata wrong")
	}
}

func TestTriStateString(t *testing.T) {
	if TriWhite.String() != "white" || TriBlack0.String() != "black0" ||
		TriBlack1.String() != "black1" || TriState(9).String() == "" {
		t.Fatal("TriState.String wrong")
	}
	if TriWhite.Black() || !TriBlack0.Black() || !TriBlack1.Black() {
		t.Fatal("TriState.Black wrong")
	}
}

// Property: 3-state stabilization always yields an MIS.
func TestThreeStateMISProperty(t *testing.T) {
	master := xrand.New(25)
	f := func(seed uint64) bool {
		r := master.Split(seed)
		n := 2 + r.Intn(80)
		g := graph.Gnp(n, r.Float64()*0.3, r)
		p := NewThreeState(g, WithSeed(seed))
		Run(p, DefaultRoundCap(n))
		return p.Stabilized() && verify.MIS(g, p.Black) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Remark 10: on K_n the 3-state process is O(log n) w.h.p. — in particular
// its worst observed time over trials should be well below the 2-state
// process's Θ(log² n) tail behaviour. Loose smoke check of the mean.
func TestThreeStateCliqueFast(t *testing.T) {
	const n, trials = 256, 30
	sum := 0
	for s := uint64(0); s < trials; s++ {
		res := Run(NewThreeState(graph.Complete(n), WithSeed(s)), 100000)
		if !res.Stabilized {
			t.Fatal("did not stabilize")
		}
		sum += res.Rounds
	}
	if mean := float64(sum) / trials; mean > 10*8 {
		t.Fatalf("3-state K_%d mean %.1f rounds, too high", n, mean)
	}
}

package mis

import (
	"testing"

	"ssmis/internal/graph"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

// The parallel engine must be bit-identical to the sequential one: same
// colors every round, same stabilization round, same bit count.
func TestParallelStepMatchesSequential(t *testing.T) {
	master := xrand.New(101)
	for trial := 0; trial < 10; trial++ {
		r := master.Split(uint64(trial))
		n := 50 + r.Intn(300)
		g := graph.Gnp(n, 4/float64(n)+r.Float64()*0.05, r)
		seed := uint64(trial)
		seq := NewTwoState(g, WithSeed(seed))
		par := NewTwoState(g, WithSeed(seed), WithWorkers(8))
		for i := 0; i < 5000 && !seq.Stabilized(); i++ {
			seq.Step()
			par.Step()
			if seq.Round() != par.Round() {
				t.Fatalf("trial %d: rounds diverged", trial)
			}
			for u := 0; u < n; u++ {
				if seq.Black(u) != par.Black(u) {
					t.Fatalf("trial %d round %d: colors diverge at %d", trial, seq.Round(), u)
				}
			}
		}
		if !seq.Stabilized() || !par.Stabilized() {
			t.Fatalf("trial %d: stabilization mismatch (seq=%v par=%v)",
				trial, seq.Stabilized(), par.Stabilized())
		}
		if seq.RandomBits() != par.RandomBits() {
			t.Fatalf("trial %d: bit counts differ: %d vs %d", trial, seq.RandomBits(), par.RandomBits())
		}
	}
}

func TestParallelCliqueFastPath(t *testing.T) {
	g := graph.Complete(200)
	seq := NewTwoState(g, WithSeed(5))
	par := NewTwoState(g, WithSeed(5), WithWorkers(6))
	rs := Run(seq, 100000)
	rp := Run(par, 100000)
	if rs != rp {
		t.Fatalf("clique results differ: %+v vs %+v", rs, rp)
	}
}

func TestParallelProducesMIS(t *testing.T) {
	g := graph.Gnp(2000, 0.005, xrand.New(102))
	p := NewTwoState(g, WithSeed(9), WithWorkers(12))
	res := Run(p, 100000)
	if !res.Stabilized {
		t.Fatal("parallel run did not stabilize")
	}
	if err := verify.MIS(g, p.Black); err != nil {
		t.Fatal(err)
	}
}

func TestParallelWithLocalTimes(t *testing.T) {
	g := graph.Gnp(500, 0.01, xrand.New(103))
	seq := NewTwoState(g, WithSeed(4), WithLocalTimes())
	par := NewTwoState(g, WithSeed(4), WithLocalTimes(), WithWorkers(4))
	Run(seq, 100000)
	Run(par, 100000)
	st, pt := seq.StabilizationTimes(), par.StabilizationTimes()
	for u := range st {
		if st[u] != pt[u] {
			t.Fatalf("local times differ at %d: %d vs %d", u, st[u], pt[u])
		}
	}
}

func TestParallelCounterIntegrity(t *testing.T) {
	g := graph.Gnp(300, 0.02, xrand.New(104))
	p := NewTwoState(g, WithSeed(6), WithWorkers(7))
	for i := 0; i < 100 && !p.Stabilized(); i++ {
		p.Step()
		p.checkCounters(t)
	}
}

func BenchmarkParallelStepGnp100k(b *testing.B) {
	g := graph.GnpAvgDegree(100000, 10, xrand.New(105))
	p := NewTwoState(g, mkSeed(0), WithInit(InitAllWhite), WithWorkers(16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Stabilized() {
			b.StopTimer()
			p = NewTwoState(g, mkSeed(uint64(i)), WithInit(InitAllWhite), WithWorkers(16))
			b.StartTimer()
		}
		p.Step()
	}
}

func mkSeed(s uint64) Option { return WithSeed(s) }

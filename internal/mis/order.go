package mis

// Locality relabeling: the process constructors can run the engine over a
// degree-bucketed reordering of the graph (graph.DegreeBucketOrder) so the
// kernel's hottest loop — the commit phase's neighbor-counter writes —
// touches hub counters packed into a few contiguous cache lines. The
// relabeling is invisible from outside the package: stream identity is keyed
// by ORIGINAL vertex ids (the stream of vertex u is always master.Split(u)),
// every initialization coin is drawn in original vertex order, and every
// exposed surface — Black/State/ColorOf, masks, stabilization times, fault
// injection, checkpoints, daemon selections — maps ids at the boundary.
// Because each vertex draws from its own stream, the relabeled execution is
// a pure graph isomorphism of the identity-ordered one: coin-for-coin
// bit-identical after id mapping. The determinism matrices, lockstep tests,
// and misfuzz relabel target pin exactly that.

import (
	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

// relabelAutoThreshold is the graph order at which the kernel path engages
// the locality relabeling by default. Below it the working set fits in cache
// and the reorder only costs construction time.
const relabelAutoThreshold = 1 << 15

// orderMode selects the locality-relabeling policy of a constructor.
type orderMode uint8

const (
	// orderAuto engages the degree-bucketed relabeling behind the kernel
	// path on graphs of at least relabelAutoThreshold vertices whose hubs
	// are scattered through the id space (autoRelabelWorthwhile) — but only
	// when a run context is attached to memoize the ordering. Computing the
	// reorder (degree sort + BFS + CSR rebuild) costs about as much as a
	// full run at n = 10^6, so it only pays when amortized across the many
	// runs of a sweep; one-shot constructions without a context stay in
	// original order.
	orderAuto orderMode = iota
	// orderIdentity opts out (mirrors the scalar opt-out): the engine runs
	// in original vertex order.
	orderIdentity
	// orderDegree forces the relabeling regardless of size or engine path;
	// differential tests use it to pin relabeled-vs-identity equivalence on
	// small graphs.
	orderDegree
)

// WithIdentityOrder opts out of the locality relabeling the kernel path
// otherwise auto-selects on large graphs, running the engine in original
// vertex order. Like WithScalarEngine this is a diagnostic/benchmark knob,
// never a semantic one: the two orderings replay coin-for-coin identical
// executions.
func WithIdentityOrder() Option {
	return func(o *options) { o.order = orderIdentity }
}

// WithDegreeOrder forces the degree-bucketed locality relabeling regardless
// of graph size or engine path (the auto policy only engages it behind the
// kernel path at scale). Differential tests use it to pin relabeled
// executions against identity ones on small graphs.
func WithDegreeOrder() Option {
	return func(o *options) { o.order = orderDegree }
}

// orderingFor resolves the constructor's locality ordering: nil for the
// identity. The ordering is a pure function of the graph, so batch workers
// memoize it on their run context (thousands of seeds share one graph).
func orderingFor(g *graph.Graph, o options) *graph.Ordering {
	switch o.order {
	case orderIdentity:
		return nil
	case orderDegree:
		// forced
	default:
		if o.scalar || o.ctx == nil || g.N() < relabelAutoThreshold {
			return nil
		}
	}
	if o.ctx != nil {
		if ord, ok := o.ctx.CachedOrdering(g); ok {
			return ord
		}
	}
	if o.order != orderDegree && !autoRelabelWorthwhile(g) {
		if o.ctx != nil {
			o.ctx.StoreOrdering(g, nil)
		}
		return nil
	}
	ord := graph.DegreeBucketOrder(g)
	if o.ctx != nil {
		o.ctx.StoreOrdering(g, ord)
	}
	return ord
}

// autoRelabelWorthwhile reports whether the auto policy should relabel g.
// Two measured non-wins are excluded: graphs with no hubs at all (the
// reorder degenerates to a pure BFS pass, a slight loss on flat-degree
// families whose CSR is already local in natural order), and graphs whose
// hubs already sit packed at the front of the id space — the repo's own
// heavy-tailed generators emit weight-sorted ids, so their natural layout
// IS the packed one and a reorder only costs. The front-packed test allows
// a 4x dilution window (realized degrees fluctuate around the hub cutoff)
// plus constant slack for tiny hub counts.
func autoRelabelWorthwhile(g *graph.Graph) bool {
	hubs, maxHubID := 0, -1
	for u, n := 0, g.N(); u < n; u++ {
		if g.Degree(u) >= graph.HubDegreeMin {
			hubs++
			maxHubID = u
		}
	}
	return hubs > 0 && maxHubID >= 4*hubs+64
}

// engineGraph returns the graph the engine should run on: the relabeled CSR
// under ord, or g itself for the identity.
func engineGraph(g *graph.Graph, ord *graph.Ordering) *graph.Graph {
	if ord == nil {
		return g
	}
	return ord.G
}

// ordPerm returns the old→new permutation, or nil for the identity.
func ordPerm(ord *graph.Ordering) []int32 {
	if ord == nil {
		return nil
	}
	return ord.Perm
}

// permuteRngs places original-id-indexed streams into their relabeled slots
// (checkpoint restore: the snapshot stores streams keyed by original ids).
func permuteRngs(ord *graph.Ordering, rngs []*xrand.Rand) []*xrand.Rand {
	if ord == nil {
		return rngs
	}
	out := make([]*xrand.Rand, len(rngs))
	for u, r := range rngs {
		out[ord.NewID(u)] = r
	}
	return out
}

// unpermuteU8 copies an engine-internal (relabeled-order) byte vector into
// original vertex order — the form checkpoints serialize.
func unpermuteU8(ord *graph.Ordering, src []uint8) []uint8 {
	out := make([]uint8, len(src))
	if ord == nil {
		copy(out, src)
		return out
	}
	for i, s := range src {
		out[ord.OldID(i)] = s
	}
	return out
}

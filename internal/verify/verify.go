// Package verify provides validity checkers for the configurations the MIS
// processes produce: independence, maximality (domination), and the paper's
// stability notions. Every experiment run and most tests end with one of
// these checks, so they are written to return rich errors identifying the
// first violated constraint.
package verify

import (
	"fmt"

	"ssmis/internal/bitset"
	"ssmis/internal/graph"
)

// Independent reports whether no two vertices of the set (given as a mask
// over g's vertices) are adjacent, returning the first offending edge
// otherwise.
func Independent(g *graph.Graph, inSet func(u int) bool) error {
	for u := 0; u < g.N(); u++ {
		if !inSet(u) {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if int(v) > u && inSet(int(v)) {
				return fmt.Errorf("verify: independence violated by edge {%d,%d}", u, v)
			}
		}
	}
	return nil
}

// Maximal reports whether every vertex outside the set has a neighbor inside
// it (the set is dominating), returning the first uncovered vertex otherwise.
// Together with Independent this certifies an MIS.
func Maximal(g *graph.Graph, inSet func(u int) bool) error {
	for u := 0; u < g.N(); u++ {
		if inSet(u) {
			continue
		}
		covered := false
		for _, v := range g.Neighbors(u) {
			if inSet(int(v)) {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("verify: maximality violated at vertex %d (no neighbor in set)", u)
		}
	}
	return nil
}

// MIS reports whether the set is a maximal independent set of g.
func MIS(g *graph.Graph, inSet func(u int) bool) error {
	if err := Independent(g, inSet); err != nil {
		return err
	}
	return Maximal(g, inSet)
}

// MISSet is MIS for a bitset-represented vertex set.
func MISSet(g *graph.Graph, s *bitset.Set) error {
	if s.Len() != g.N() {
		return fmt.Errorf("verify: set capacity %d != graph order %d", s.Len(), g.N())
	}
	return MIS(g, s.Contains)
}

// MISBools is MIS for a []bool-represented vertex set.
func MISBools(g *graph.Graph, s []bool) error {
	if len(s) != g.N() {
		return fmt.Errorf("verify: mask length %d != graph order %d", len(s), g.N())
	}
	return MIS(g, func(u int) bool { return s[u] })
}

// StableBlack returns the set I of vertices that are black with no black
// neighbor — the paper's monotone core of stable vertices (I_t).
func StableBlack(g *graph.Graph, black func(u int) bool) *bitset.Set {
	out := bitset.New(g.N())
	for u := 0; u < g.N(); u++ {
		if !black(u) {
			continue
		}
		hasBlackNbr := false
		for _, v := range g.Neighbors(u) {
			if black(int(v)) {
				hasBlackNbr = true
				break
			}
		}
		if !hasBlackNbr {
			out.Add(u)
		}
	}
	return out
}

// Unstable returns V_t = V \ N+(I_t): the vertices that are neither stable
// black nor adjacent to a stable black vertex.
func Unstable(g *graph.Graph, black func(u int) bool) *bitset.Set {
	stable := StableBlack(g, black)
	out := bitset.New(g.N())
	out.Fill()
	stable.ForEach(func(u int) {
		out.Remove(u)
		for _, v := range g.Neighbors(u) {
			out.Remove(int(v))
		}
	})
	return out
}

// CheckGreedyMISCompatible verifies that a set claimed to be the greedy MIS
// over a given vertex order really is: processing vertices in order, a
// vertex is in the set iff none of its earlier neighbors is.
func CheckGreedyMISCompatible(g *graph.Graph, order []int, inSet func(u int) bool) error {
	if len(order) != g.N() {
		return fmt.Errorf("verify: order length %d != n %d", len(order), g.N())
	}
	pos := make([]int, g.N())
	for i, u := range order {
		pos[u] = i
	}
	for _, u := range order {
		expect := true
		for _, v := range g.Neighbors(u) {
			if pos[v] < pos[u] && inSet(int(v)) {
				expect = false
				break
			}
		}
		if expect != inSet(u) {
			return fmt.Errorf("verify: vertex %d greedy-inconsistent (want in-set=%v)", u, expect)
		}
	}
	return nil
}

package verify

import (
	"testing"

	"ssmis/internal/bitset"
	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

func mask(vals ...int) func(int) bool {
	m := map[int]bool{}
	for _, v := range vals {
		m[v] = true
	}
	return func(u int) bool { return m[u] }
}

func TestIndependent(t *testing.T) {
	g := graph.Path(5) // 0-1-2-3-4
	if err := Independent(g, mask(0, 2, 4)); err != nil {
		t.Fatalf("alternating set on path flagged: %v", err)
	}
	if err := Independent(g, mask(1, 2)); err == nil {
		t.Fatal("adjacent pair not flagged")
	}
	if err := Independent(g, mask()); err != nil {
		t.Fatal("empty set flagged")
	}
}

func TestMaximal(t *testing.T) {
	g := graph.Path(5)
	if err := Maximal(g, mask(0, 2, 4)); err != nil {
		t.Fatalf("maximal set flagged: %v", err)
	}
	if err := Maximal(g, mask(0)); err == nil {
		t.Fatal("non-dominating set not flagged")
	}
	// {1,3} is dominating on the path 0-1-2-3-4.
	if err := Maximal(g, mask(1, 3)); err != nil {
		t.Fatalf("dominating set flagged: %v", err)
	}
}

func TestMIS(t *testing.T) {
	g := graph.Cycle(6)
	if err := MIS(g, mask(0, 2, 4)); err != nil {
		t.Fatalf("valid MIS flagged: %v", err)
	}
	if err := MIS(g, mask(0, 3)); err != nil {
		t.Fatalf("valid 2-element MIS on C6 flagged: %v", err)
	}
	if err := MIS(g, mask(0, 1)); err == nil {
		t.Fatal("dependent set accepted")
	}
	if err := MIS(g, mask(0)); err == nil {
		t.Fatal("non-maximal set accepted")
	}
}

func TestMISSetAndBools(t *testing.T) {
	g := graph.Complete(4)
	s := bitset.New(4)
	s.Add(2)
	if err := MISSet(g, s); err != nil {
		t.Fatalf("singleton in clique flagged: %v", err)
	}
	if err := MISSet(g, bitset.New(5)); err == nil {
		t.Fatal("capacity mismatch accepted")
	}
	if err := MISBools(g, []bool{false, true, false, false}); err != nil {
		t.Fatalf("bools MIS flagged: %v", err)
	}
	if err := MISBools(g, []bool{true}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestStableBlackAndUnstable(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	// black = {0, 1}: both have black neighbors -> no stable black.
	sb := StableBlack(g, mask(0, 1))
	if !sb.Empty() {
		t.Fatalf("StableBlack = %v, want empty", sb)
	}
	un := Unstable(g, mask(0, 1))
	if un.Count() != 4 {
		t.Fatalf("all vertices should be unstable, got %v", un)
	}
	// black = {0, 3}: both stable; N+({0,3}) = {0,1,2,3}.
	sb2 := StableBlack(g, mask(0, 3))
	if sb2.Count() != 2 || !sb2.Contains(0) || !sb2.Contains(3) {
		t.Fatalf("StableBlack = %v", sb2)
	}
	if un2 := Unstable(g, mask(0, 3)); !un2.Empty() {
		t.Fatalf("Unstable = %v, want empty", un2)
	}
	// black = {0}: vertex 3 not dominated -> unstable = {2,3}? N+(I)={0,1}.
	un3 := Unstable(g, mask(0))
	if un3.Count() != 2 || !un3.Contains(2) || !un3.Contains(3) {
		t.Fatalf("Unstable = %v, want {2 3}", un3)
	}
}

func TestUnstableEmptyIffMIS(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 50; trial++ {
		g := graph.Gnp(60, 0.1, rng.Split(uint64(trial)))
		// Build a greedy MIS.
		inMIS := make([]bool, g.N())
		blocked := make([]bool, g.N())
		for u := 0; u < g.N(); u++ {
			if !blocked[u] {
				inMIS[u] = true
				for _, v := range g.Neighbors(u) {
					blocked[v] = true
				}
			}
		}
		black := func(u int) bool { return inMIS[u] }
		if err := MIS(g, black); err != nil {
			t.Fatalf("greedy MIS invalid: %v", err)
		}
		if un := Unstable(g, black); !un.Empty() {
			t.Fatalf("MIS configuration has unstable vertices: %v", un)
		}
	}
}

func TestCheckGreedyMISCompatible(t *testing.T) {
	g := graph.Path(4)
	order := []int{0, 1, 2, 3}
	// Greedy over 0,1,2,3 gives {0, 2}... 3 has earlier neighbor 2 in set -> out.
	if err := CheckGreedyMISCompatible(g, order, mask(0, 2)); err != nil {
		t.Fatalf("greedy set flagged: %v", err)
	}
	if err := CheckGreedyMISCompatible(g, order, mask(1, 3)); err == nil {
		t.Fatal("non-greedy set accepted")
	}
	if err := CheckGreedyMISCompatible(g, []int{0}, mask(0)); err == nil {
		t.Fatal("short order accepted")
	}
}

// Package trace records process executions and renders them as ASCII, for
// the examples, the misviz tool, and debugging. A trace stores the color
// projection of every vertex at every recorded round; the renderer prints
// one row per round with one glyph per vertex, which makes symmetry breaking
// visible at a glance on paths, cycles and small random graphs.
package trace

import (
	"fmt"
	"strings"

	"ssmis/internal/mis"
)

// colorReader is the optional richer projection for 3-color processes.
type colorReader interface {
	ColorOf(u int) mis.Color
}

// triReader is the optional richer projection for 3-state processes.
type triReader interface {
	State(u int) mis.TriState
}

// Glyphs used by the renderer.
const (
	GlyphBlack  = '#'
	GlyphWhite  = '.'
	GlyphGray   = 'o'
	GlyphBlack0 = 'b'
)

// Frame is the recorded state of one round.
type Frame struct {
	Round  int
	Glyphs []rune
	Active int
}

// Trace is a recorded execution.
type Trace struct {
	Name   string
	Frames []Frame
}

// Capture snapshots the current state of p as a frame.
func Capture(p mis.Process) Frame {
	n := p.N()
	f := Frame{Round: p.Round(), Glyphs: make([]rune, n), Active: p.ActiveCount()}
	for u := 0; u < n; u++ {
		f.Glyphs[u] = glyphFor(p, u)
	}
	return f
}

func glyphFor(p mis.Process, u int) rune {
	if cr, ok := p.(colorReader); ok {
		switch cr.ColorOf(u) {
		case mis.ColorBlack:
			return GlyphBlack
		case mis.ColorGray:
			return GlyphGray
		default:
			return GlyphWhite
		}
	}
	if tr, ok := p.(triReader); ok {
		switch tr.State(u) {
		case mis.TriBlack1:
			return GlyphBlack
		case mis.TriBlack0:
			return GlyphBlack0
		default:
			return GlyphWhite
		}
	}
	if p.Black(u) {
		return GlyphBlack
	}
	return GlyphWhite
}

// Record runs p to stabilization (or maxRounds), capturing every round.
func Record(p mis.Process, maxRounds int) *Trace {
	t := &Trace{Name: p.Name()}
	t.Frames = append(t.Frames, Capture(p))
	for !p.Stabilized() && p.Round() < maxRounds {
		p.Step()
		t.Frames = append(t.Frames, Capture(p))
	}
	return t
}

// Render prints the trace as one line per round. Wide graphs are truncated
// at maxWidth glyphs (0 = no truncation).
func (t *Trace) Render(maxWidth int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s process, %d rounds (legend: %c black, %c white, %c gray, %c black0)\n",
		t.Name, len(t.Frames)-1, GlyphBlack, GlyphWhite, GlyphGray, GlyphBlack0)
	for _, f := range t.Frames {
		glyphs := f.Glyphs
		truncated := ""
		if maxWidth > 0 && len(glyphs) > maxWidth {
			glyphs = glyphs[:maxWidth]
			truncated = "…"
		}
		fmt.Fprintf(&b, "r%-4d %s%s  active=%d\n", f.Round, string(glyphs), truncated, f.Active)
	}
	return b.String()
}

// RenderGrid renders the final frame as a rows×cols grid (for grid graphs).
func (t *Trace) RenderGrid(rows, cols int) string {
	if len(t.Frames) == 0 {
		return ""
	}
	last := t.Frames[len(t.Frames)-1]
	if rows*cols != len(last.Glyphs) {
		return fmt.Sprintf("trace: %d glyphs do not form a %dx%d grid", len(last.Glyphs), rows, cols)
	}
	var b strings.Builder
	for r := 0; r < rows; r++ {
		b.WriteString(string(last.Glyphs[r*cols : (r+1)*cols]))
		b.WriteByte('\n')
	}
	return b.String()
}

package trace

import (
	"strings"
	"testing"

	"ssmis/internal/graph"
	"ssmis/internal/mis"
)

func TestRecordAndRender(t *testing.T) {
	g := graph.Path(12)
	p := mis.NewTwoState(g, mis.WithSeed(1))
	tr := Record(p, 10000)
	if len(tr.Frames) < 1 {
		t.Fatal("no frames")
	}
	last := tr.Frames[len(tr.Frames)-1]
	if last.Active != 0 {
		t.Fatal("last frame not stabilized")
	}
	out := tr.Render(0)
	if !strings.Contains(out, "2-state") || !strings.Contains(out, "r0") {
		t.Fatalf("render malformed:\n%s", out)
	}
	// Every frame line must contain exactly n glyphs of the legend set.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for _, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			t.Fatalf("bad frame line %q", line)
		}
		glyphs := fields[1]
		if len([]rune(glyphs)) != g.N() {
			t.Fatalf("frame line has %d glyphs, want %d: %q", len(glyphs), g.N(), line)
		}
	}
}

func TestRenderTruncation(t *testing.T) {
	g := graph.Path(50)
	p := mis.NewTwoState(g, mis.WithSeed(2))
	tr := Record(p, 10000)
	out := tr.Render(10)
	if !strings.Contains(out, "…") {
		t.Fatal("wide trace not truncated")
	}
}

func TestGlyphsForThreeState(t *testing.T) {
	g := graph.Empty(2)
	p := mis.NewThreeState(g, mis.WithSeed(3))
	f := Capture(p)
	for _, glyph := range f.Glyphs {
		switch glyph {
		case GlyphBlack, GlyphBlack0, GlyphWhite:
		default:
			t.Fatalf("unexpected 3-state glyph %c", glyph)
		}
	}
}

func TestGlyphsForThreeColor(t *testing.T) {
	g := graph.Empty(3)
	p := mis.NewThreeColor(g, mis.WithSeed(4))
	f := Capture(p)
	for _, glyph := range f.Glyphs {
		switch glyph {
		case GlyphBlack, GlyphGray, GlyphWhite:
		default:
			t.Fatalf("unexpected 3-color glyph %c", glyph)
		}
	}
}

func TestRenderGrid(t *testing.T) {
	g := graph.Grid(3, 4)
	p := mis.NewTwoState(g, mis.WithSeed(5))
	tr := Record(p, 10000)
	out := tr.RenderGrid(3, 4)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("grid render has %d rows, want 3:\n%s", len(lines), out)
	}
	for _, line := range lines {
		if len([]rune(line)) != 4 {
			t.Fatalf("grid row %q has wrong width", line)
		}
	}
	if bad := tr.RenderGrid(5, 5); !strings.Contains(bad, "do not form") {
		t.Fatal("mismatched grid dimensions not reported")
	}
}

package snapshot

// Process-execution snapshots: the payload behind internal/mis's
// Checkpoint/Restore API, carrying everything the shared engine owns for
// one run — state vector, per-vertex RNG streams, round/bit accounting,
// coverage stamps (the local-times instrument), the daemon scheduler
// stream, and the 3-color switch state. The graph itself is not embedded
// (graphs are large and reconstructible from their own seeds or
// interchange files); restore takes the graph and verifies its order.

import (
	"fmt"

	"ssmis/internal/engine"
	"ssmis/internal/xrand"
)

// Process is a serialized process execution state.
type Process struct {
	// Process identifies the family: "2-state", "3-state", "3-color".
	Process string `json:"process"`
	// N is the graph order the snapshot was taken on.
	N     int   `json:"n"`
	Round int   `json:"round"`
	Bits  int64 `json:"bits"`
	// States holds the per-vertex state: for 2-state 0=white/1=black; for
	// 3-state the TriState values; for 3-color the Color values.
	States []uint8 `json:"states"`
	// Levels holds the 3-color switch levels (empty otherwise).
	Levels []uint8 `json:"levels,omitempty"`
	// ClockBits is the 3-color switch's separate bit accounting.
	ClockBits int64 `json:"clockBits,omitempty"`
	// Rngs holds each vertex's marshaled random stream.
	Rngs [][]byte `json:"rngs"`
	// BlackBias and ZetaLog2 reproduce the options that shape randomness.
	BlackBias float64 `json:"blackBias"`
	ZetaLog2  uint    `json:"zetaLog2,omitempty"`
	// Seed is the master seed the execution was created with. Auxiliary
	// streams derived lazily AFTER a restore (the daemon selection stream
	// of a process that had not yet taken a daemon step) split from it, so
	// they equal the streams the uninterrupted run would have derived.
	// Always serialized: seed 0 is a legal master seed, so there is no
	// "absent" sentinel.
	Seed uint64 `json:"seed"`
	// SchedRng is the daemon scheduler's selection stream, present once the
	// process has taken a daemon step; restoring it resumes a
	// daemon-scheduled execution coin-for-coin (the schedule after restore
	// equals the schedule an uninterrupted run would have drawn). Steps and
	// Moves carry the matching daemon accounting.
	SchedRng []byte `json:"schedRng,omitempty"`
	Steps    int    `json:"steps,omitempty"`
	Moves    int    `json:"moves,omitempty"`
	// CoveredAt carries the engine's per-vertex first-cover stamps (-1 =
	// not yet covered) — the local stabilization times — so a resumed run's
	// local-times instrument matches an uninterrupted one exactly.
	CoveredAt []int32 `json:"coveredAt,omitempty"`
	// DaemonName and DaemonState preserve a stateful daemon's
	// schedule-history (sched.Stateful: the round-robin cursor, k-fair's
	// starvation counters). The process does not own the daemon, so these
	// are filled by the checkpointing caller (cmd/misrun's -checkpoint);
	// stateless daemons leave them empty.
	DaemonName  string `json:"daemonName,omitempty"`
	DaemonState []byte `json:"daemonState,omitempty"`
}

// Encode renders the snapshot in the versioned envelope.
func (p *Process) Encode() ([]byte, error) { return Encode(KindProcess, p) }

// DecodeProcess parses an encoded process snapshot, rejecting damaged or
// version-skewed data.
func DecodeProcess(data []byte) (*Process, error) {
	var p Process
	if err := Decode(data, KindProcess, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// CaptureEngine fills the engine-owned fields of the snapshot from a live
// core: round/bit accounting, daemon step/move accounting, coverage stamps,
// the per-vertex streams, and (when non-nil) the daemon selection stream.
// The caller fills the process-specific fields (name, state encoding,
// switch levels, options). Snapshots are keyed by ORIGINAL vertex ids: when
// the core runs under a locality relabeling (engine.Options.Order), the
// coverage stamps and stream array are permuted back before serialization,
// so a checkpoint saved under any ordering restores under any other.
func (p *Process) CaptureEngine(core *engine.Core, schedRng *xrand.Rand) error {
	p.N = core.Graph().N()
	p.Round = core.Round()
	p.Bits = core.Bits()
	p.Steps = core.Steps()
	p.Moves = core.Moves()
	ord := core.Order()
	if ord == nil {
		p.CoveredAt = append([]int32(nil), core.CoveredAt()...)
	} else {
		stamps := core.CoveredAt()
		p.CoveredAt = make([]int32, len(stamps))
		for i, r := range stamps {
			p.CoveredAt[ord.OldID(i)] = r
		}
	}
	streams := core.Rngs()
	if ord != nil {
		orig := make([]*xrand.Rand, len(streams))
		for i, r := range streams {
			orig[ord.OldID(i)] = r
		}
		streams = orig
	}
	rngs, err := MarshalRngs(streams)
	if err != nil {
		return err
	}
	p.Rngs = rngs
	if schedRng != nil {
		b, err := schedRng.MarshalBinary()
		if err != nil {
			return fmt.Errorf("snapshot: marshal scheduler rng: %w", err)
		}
		p.SchedRng = b
	}
	return nil
}

// RestoreEngine replays the engine-owned accounting into a freshly
// constructed core (round/bits, daemon steps/moves, coverage stamps) and
// rebuilds the daemon selection stream. The returned stream is nil when the
// snapshot carries none, in which case a later daemon step derives a fresh
// stream as usual.
func (p *Process) RestoreEngine(core *engine.Core) (*xrand.Rand, error) {
	core.SetAccounting(p.Round, p.Bits)
	core.SetDaemonAccounting(p.Steps, p.Moves)
	if p.CoveredAt != nil {
		stamps := p.CoveredAt
		// Stamps are stored in original ids; a core running under a locality
		// relabeling needs them in its internal order.
		if ord := core.Order(); ord != nil {
			stamps = make([]int32, len(p.CoveredAt))
			for u, r := range p.CoveredAt {
				stamps[ord.NewID(u)] = r
			}
		}
		if err := core.SetCoverageStamps(stamps); err != nil {
			return nil, err
		}
	}
	if p.SchedRng == nil {
		return nil, nil
	}
	r := xrand.New(0)
	if err := r.UnmarshalBinary(p.SchedRng); err != nil {
		return nil, fmt.Errorf("snapshot: scheduler rng: %w", err)
	}
	return r, nil
}

// MarshalRngs serializes a per-vertex stream array.
func MarshalRngs(rngs []*xrand.Rand) ([][]byte, error) {
	out := make([][]byte, len(rngs))
	for i, r := range rngs {
		b, err := r.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("snapshot: marshal rng %d: %w", i, err)
		}
		out[i] = b
	}
	return out, nil
}

// UnmarshalRngs rebuilds a per-vertex stream array of the expected length.
func UnmarshalRngs(blobs [][]byte, n int) ([]*xrand.Rand, error) {
	if len(blobs) != n {
		return nil, fmt.Errorf("snapshot: %d rng states, want %d", len(blobs), n)
	}
	out := make([]*xrand.Rand, n)
	for i, b := range blobs {
		r := xrand.New(0)
		if err := r.UnmarshalBinary(b); err != nil {
			return nil, fmt.Errorf("snapshot: rng %d: %w", i, err)
		}
		out[i] = r
	}
	return out, nil
}

// Package snapshot is the module's one versioned checkpoint layer: every
// durable execution state — a single process run, a daemon-scheduled run,
// a whole missweep grid — is serialized through the same self-describing
// envelope, so every consumer (the mis Restore functions, the batch-sweep
// resume path in internal/experiment, the -checkpoint/-resume flags of
// cmd/misrun and cmd/missweep) shares one format, one version gate, and one
// corruption check.
//
// Envelope layout (little-endian):
//
//	magic   [8]byte  "SSMISNAP"
//	version uint32   format version (Version)
//	kindLen uint32   length of the kind string
//	kind    []byte   payload kind ("process", "sweep", ...)
//	paylen  uint64   length of the JSON payload
//	payload []byte   JSON encoding of the payload value
//	crc     uint32   CRC-32 (IEEE) over every preceding byte
//
// Decode rejects — loudly, with a typed error — anything that is not an
// intact snapshot of the expected kind and version: foreign files
// (ErrMagic), version skew (ErrVersion), truncation (ErrTruncated), bit rot
// (ErrCorrupt), and kind confusion (ErrKind). Resuming from a damaged
// checkpoint silently producing wrong numbers is the failure mode this
// layer exists to rule out; cmd/misfuzz fuzzes the rejection paths.
//
// Files written through WriteFile are atomic: the bytes land in a temporary
// file in the target directory and are renamed over the destination, so a
// reader (or a process killed mid-write) never observes a torn snapshot.
package snapshot

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Version is the snapshot format version. Decode accepts exactly this
// version: the format carries full execution state (RNG streams, coverage
// stamps), so silently reinterpreting another version's bytes could resume
// a subtly different execution.
const Version = 1

// Payload kinds.
const (
	// KindProcess is a single process execution (internal/mis checkpoints).
	KindProcess = "process"
	// KindSweep is a whole-sweep checkpoint (internal/experiment).
	KindSweep = "sweep"
)

const magic = "SSMISNAP"

// maxKindLen bounds the kind string so corrupt headers cannot drive huge
// allocations before the CRC check.
const maxKindLen = 128

// Typed decode failures, wrapped with context; test with errors.Is.
var (
	// ErrMagic marks data that is not a snapshot envelope at all.
	ErrMagic = errors.New("snapshot: not a snapshot (bad magic)")
	// ErrVersion marks a snapshot from a different format version.
	ErrVersion = errors.New("snapshot: format version mismatch")
	// ErrTruncated marks a snapshot cut short (partial write, partial copy).
	ErrTruncated = errors.New("snapshot: truncated")
	// ErrCorrupt marks a checksum failure or trailing garbage.
	ErrCorrupt = errors.New("snapshot: corrupt")
	// ErrKind marks an intact snapshot of the wrong payload kind.
	ErrKind = errors.New("snapshot: wrong payload kind")
)

// Encode wraps payload (JSON-encoded) in the versioned envelope.
func Encode(kind string, payload any) ([]byte, error) {
	if len(kind) == 0 || len(kind) > maxKindLen {
		return nil, fmt.Errorf("snapshot: kind %q length outside [1, %d]", kind, maxKindLen)
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("snapshot: marshal %s payload: %w", kind, err)
	}
	buf := make([]byte, 0, len(magic)+16+len(kind)+len(body)+4)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(kind)))
	buf = append(buf, kind...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(body)))
	buf = append(buf, body...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// Decode validates the envelope and unmarshals the payload into out. The
// expected kind must match the envelope's; see the package comment for the
// rejection contract.
func Decode(data []byte, kind string, out any) error {
	gotKind, body, err := open(data)
	if err != nil {
		return err
	}
	if gotKind != kind {
		return fmt.Errorf("%w: have %q, want %q", ErrKind, gotKind, kind)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("%w: %s payload: %v", ErrCorrupt, kind, err)
	}
	return nil
}

// Kind reports the payload kind of an encoded snapshot after full envelope
// validation (version, length, checksum) — the CLIs use it to route a file
// to the right decoder and to reject damage before trusting the kind.
func Kind(data []byte) (string, error) {
	kind, _, err := open(data)
	return kind, err
}

// open validates the envelope and returns (kind, payload bytes).
func open(data []byte) (string, []byte, error) {
	header := len(magic) + 8 // magic + version + kindLen
	if len(data) < header {
		return "", nil, fmt.Errorf("%w: %d bytes, shorter than the header", ErrTruncated, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return "", nil, ErrMagic
	}
	version := binary.LittleEndian.Uint32(data[len(magic):])
	if version != Version {
		return "", nil, fmt.Errorf("%w: snapshot is version %d, this build reads version %d",
			ErrVersion, version, Version)
	}
	kindLen := int(binary.LittleEndian.Uint32(data[len(magic)+4:]))
	if kindLen == 0 || kindLen > maxKindLen {
		return "", nil, fmt.Errorf("%w: kind length %d outside [1, %d]", ErrCorrupt, kindLen, maxKindLen)
	}
	if len(data) < header+kindLen+8 {
		return "", nil, fmt.Errorf("%w: header promises a %d-byte kind", ErrTruncated, kindLen)
	}
	kind := string(data[header : header+kindLen])
	payLen := binary.LittleEndian.Uint64(data[header+kindLen:])
	want := header + kindLen + 8 + int(payLen) + 4
	if uint64(want) < payLen || len(data) < want {
		return "", nil, fmt.Errorf("%w: header promises a %d-byte payload, file has %d bytes",
			ErrTruncated, payLen, len(data))
	}
	if len(data) > want {
		return "", nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-want)
	}
	sum := crc32.ChecksumIEEE(data[:want-4])
	if got := binary.LittleEndian.Uint32(data[want-4:]); got != sum {
		return "", nil, fmt.Errorf("%w: checksum %08x, computed %08x", ErrCorrupt, got, sum)
	}
	return kind, data[header+kindLen+8 : want-4], nil
}

// WriteFile atomically writes an encoded snapshot: the envelope is staged
// in a temporary file next to path and renamed into place, so a concurrent
// reader or an interrupted writer never leaves a torn checkpoint behind.
func WriteFile(path, kind string, payload any) error {
	data, err := Encode(kind, payload)
	if err != nil {
		return err
	}
	return WriteEncoded(path, data)
}

// WriteEncoded is WriteFile for an already-encoded envelope — callers that
// must encode under a lock (or a scheduler quiesce) but want the disk I/O
// outside it split the two steps.
func WriteEncoded(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: stage %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: stage %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: stage %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapshot: publish %s: %w", path, err)
	}
	return nil
}

// ReadFile reads and decodes a snapshot file of the expected kind.
func ReadFile(path, kind string, out any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("snapshot: read %s: %w", path, err)
	}
	if err := Decode(data, kind, out); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

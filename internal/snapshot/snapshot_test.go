package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssmis/internal/xrand"
)

type testPayload struct {
	Name  string  `json:"name"`
	Data  []byte  `json:"data,omitempty"`
	Count int     `json:"count"`
	X     float64 `json:"x"`
}

func randomPayload(r *xrand.Rand) testPayload {
	data := make([]byte, r.Intn(512))
	for i := range data {
		data[i] = byte(r.Intn(256))
	}
	return testPayload{
		Name:  strings.Repeat("x", 1+r.Intn(40)),
		Data:  data,
		Count: r.Intn(1 << 20),
		X:     r.Float64(),
	}
}

// Property: Decode(Encode(p)) == p for arbitrary payloads and kinds.
func TestEnvelopeRoundTrip(t *testing.T) {
	r := xrand.New(1)
	for i := 0; i < 200; i++ {
		kind := []string{KindProcess, KindSweep, "custom-kind"}[r.Intn(3)]
		in := randomPayload(r)
		blob, err := Encode(kind, &in)
		if err != nil {
			t.Fatal(err)
		}
		if k, err := Kind(blob); err != nil || k != kind {
			t.Fatalf("Kind = %q, %v; want %q", k, err, kind)
		}
		var out testPayload
		if err := Decode(blob, kind, &out); err != nil {
			t.Fatal(err)
		}
		if out.Name != in.Name || out.Count != in.Count || out.X != in.X || !bytes.Equal(out.Data, in.Data) {
			t.Fatalf("case %d: payload did not round-trip", i)
		}
	}
}

// Property: EVERY strict prefix of a valid snapshot is rejected — a partial
// write or partial copy can never resume silently wrong.
func TestEnvelopeRejectsEveryTruncation(t *testing.T) {
	blob, err := Encode(KindProcess, randomPayload(xrand.New(2)))
	if err != nil {
		t.Fatal(err)
	}
	var out testPayload
	for cut := 0; cut < len(blob); cut++ {
		if err := Decode(blob[:cut], KindProcess, &out); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", cut, len(blob))
		}
	}
}

// Property: EVERY single-byte corruption of a valid snapshot is rejected
// (the CRC covers the whole envelope; the CRC field itself then
// mismatches).
func TestEnvelopeRejectsEveryByteFlip(t *testing.T) {
	blob, err := Encode(KindProcess, randomPayload(xrand.New(3)))
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(4)
	var out testPayload
	for pos := 0; pos < len(blob); pos++ {
		mut := append([]byte(nil), blob...)
		mut[pos] ^= byte(1 + r.Intn(255))
		if err := Decode(mut, KindProcess, &out); err == nil {
			t.Fatalf("flip at byte %d accepted", pos)
		}
	}
}

func TestEnvelopeTypedErrors(t *testing.T) {
	blob, err := Encode(KindProcess, randomPayload(xrand.New(5)))
	if err != nil {
		t.Fatal(err)
	}
	var out testPayload

	// Foreign data: the old bare-JSON checkpoint format, and arbitrary junk.
	if err := Decode([]byte(`{"process":"2-state"}`+strings.Repeat(" ", 64)), KindProcess, &out); !errors.Is(err, ErrMagic) {
		t.Fatalf("bare JSON: %v, want ErrMagic", err)
	}
	// Version skew: bump the version field and re-seal the checksum so only
	// the version gate can reject it.
	skew := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(skew[len(magic):], Version+1)
	reseal(skew)
	if err := Decode(skew, KindProcess, &out); !errors.Is(err, ErrVersion) {
		t.Fatalf("version skew: %v, want ErrVersion", err)
	}
	// Kind confusion.
	if err := Decode(blob, KindSweep, &out); !errors.Is(err, ErrKind) {
		t.Fatalf("kind mismatch: %v, want ErrKind", err)
	}
	// Trailing garbage.
	if err := Decode(append(append([]byte(nil), blob...), 0xFF), KindProcess, &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: %v, want ErrCorrupt", err)
	}
	// Payload flip -> checksum.
	mut := append([]byte(nil), blob...)
	mut[len(blob)/2] ^= 0x20
	if err := Decode(mut, KindProcess, &out); !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
		t.Fatalf("payload flip: %v, want ErrCorrupt/ErrTruncated", err)
	}
	// Truncation.
	if err := Decode(blob[:10], KindProcess, &out); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncation: %v, want ErrTruncated", err)
	}
}

// reseal recomputes the trailing CRC after a deliberate header edit.
func reseal(blob []byte) {
	sum := crc32.ChecksumIEEE(blob[:len(blob)-4])
	binary.LittleEndian.PutUint32(blob[len(blob)-4:], sum)
}

func TestWriteFileAtomicAndReadBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ckpt")
	in := randomPayload(xrand.New(6))
	if err := WriteFile(path, KindSweep, &in); err != nil {
		t.Fatal(err)
	}
	var out testPayload
	if err := ReadFile(path, KindSweep, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || !bytes.Equal(out.Data, in.Data) {
		t.Fatal("file round-trip mismatch")
	}
	// Overwrite must replace, not append, and leave no staging files behind.
	in2 := randomPayload(xrand.New(7))
	if err := WriteFile(path, KindSweep, &in2); err != nil {
		t.Fatal(err)
	}
	if err := ReadFile(path, KindSweep, &out); err != nil || out.Name != in2.Name {
		t.Fatalf("overwrite: %v (name %q vs %q)", err, out.Name, in2.Name)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after two writes (staging leak?)", len(entries))
	}
	if err := ReadFile(filepath.Join(dir, "missing.ckpt"), KindSweep, &out); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRngsRoundTrip(t *testing.T) {
	master := xrand.New(8)
	rngs := make([]*xrand.Rand, 16)
	for i := range rngs {
		rngs[i] = master.Split(uint64(i))
		for k := 0; k < i; k++ {
			rngs[i].Uint64() // desynchronize the streams
		}
	}
	blobs, err := MarshalRngs(rngs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRngs(blobs, len(rngs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range rngs {
		for k := 0; k < 8; k++ {
			if a, b := rngs[i].Uint64(), back[i].Uint64(); a != b {
				t.Fatalf("stream %d draw %d: %d != %d", i, k, a, b)
			}
		}
	}
	if _, err := UnmarshalRngs(blobs, len(blobs)+1); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

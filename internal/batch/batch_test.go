package batch

import (
	"sync"
	"sync/atomic"
	"testing"

	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/stats"
	"ssmis/internal/xrand"
)

// misShards builds a realistic mixed workload: two fixed-graph shards (one
// sparse G(n,p), one clique) plus one shard whose runner builds a per-seed
// graph — the three shapes the experiment harness submits.
func misShards(seedsPerShard int) []Shard {
	seeds := func(base uint64) []uint64 {
		out := make([]uint64, seedsPerShard)
		for i := range out {
			out[i] = base + uint64(i)
		}
		return out
	}
	run := func(rc *engine.RunContext, g *graph.Graph, _ int, seed uint64) Outcome {
		if g == nil {
			g = graph.GnpAvgDegree(120, 6, xrand.New(seed))
		}
		p := mis.NewTwoState(g, mis.WithRunContext(rc), mis.WithSeed(seed))
		res := mis.Run(p, mis.DefaultRoundCap(g.N()))
		if !res.Stabilized {
			return Outcome{Failed: true}
		}
		return Outcome{Rounds: res.Rounds, Bits: res.RandomBits}
	}
	return []Shard{
		{Build: func() *graph.Graph { return graph.Gnp(200, 0.03, xrand.New(1)) }, Seeds: seeds(100), Run: run},
		{Build: func() *graph.Graph { return graph.Complete(64) }, Seeds: seeds(500), Run: run},
		{Seeds: seeds(900), Run: run}, // per-seed graphs
	}
}

// collect runs the workload on a fresh pool and returns the in-order
// outcome log plus a streamed summary.
func collect(t *testing.T, workers int, opt SubmitOptions, seedsPerShard int) ([]Outcome, stats.Summary, uint64) {
	t.Helper()
	p := NewPool(workers)
	defer p.Close()
	var log []Outcome
	rounds := stats.NewQuantileStream()
	b := p.SubmitOpts(misShards(seedsPerShard), opt, func(o Outcome) {
		log = append(log, o)
		if !o.Failed && !o.Broken {
			rounds.Add(float64(o.Rounds))
		}
	})
	b.Wait()
	if rounds.N() == 0 {
		t.Fatal("no successful runs")
	}
	return log, rounds.Summary(), p.Steals()
}

// The same job set must produce bit-identical outcome sequences and
// summaries at workers=1, workers=8, and under forced steals (every chunk
// pinned to worker 0 with chunk size 1, so 7 workers only ever steal).
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	const seeds = 12
	ref, refSum, _ := collect(t, 1, SubmitOptions{}, seeds)
	w8, w8Sum, _ := collect(t, 8, SubmitOptions{}, seeds)
	stolen, stSum, steals := collect(t, 8, SubmitOptions{ChunkSize: 1, PinFirst: true}, seeds)
	if steals == 0 {
		t.Fatal("forced-steal schedule recorded no steals")
	}
	for name, got := range map[string][]Outcome{"workers=8": w8, "forced-steals": stolen} {
		if len(got) != len(ref) {
			t.Fatalf("%s: %d outcomes, want %d", name, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s: outcome %d = %+v, want %+v", name, i, got[i], ref[i])
			}
		}
	}
	if refSum != w8Sum || refSum != stSum {
		t.Fatalf("summaries differ:\n w1=%+v\n w8=%+v\n steal=%+v", refSum, w8Sum, stSum)
	}
}

// Outcomes must arrive at the sink in job order with Index/Seed stamped.
func TestInOrderDelivery(t *testing.T) {
	ref, _, _ := collect(t, 4, SubmitOptions{ChunkSize: 1}, 9)
	for i, o := range ref {
		if o.Index != i {
			t.Fatalf("outcome %d has Index %d", i, o.Index)
		}
	}
	// Shard boundaries: seeds restate their shard's seed list.
	if ref[0].Seed != 100 || ref[9].Seed != 500 || ref[18].Seed != 900 {
		t.Fatalf("seed stamping wrong: %d %d %d", ref[0].Seed, ref[9].Seed, ref[18].Seed)
	}
}

// A shard's graph is built exactly once no matter how many workers run its
// seeds, and every runner sees the same pointer.
func TestShardGraphBuiltOnce(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var builds int64
	var mu sync.Mutex
	seen := map[*graph.Graph]bool{}
	g0 := graph.Complete(32)
	sh := Shard{
		Build: func() *graph.Graph { atomic.AddInt64(&builds, 1); return g0 },
		Seeds: make([]uint64, 64),
		Run: func(_ *engine.RunContext, g *graph.Graph, i int, _ uint64) Outcome {
			mu.Lock()
			seen[g] = true
			mu.Unlock()
			return Outcome{Rounds: i}
		},
	}
	p.SubmitOpts([]Shard{sh}, SubmitOptions{ChunkSize: 1}, nil).Wait()
	if builds != 1 {
		t.Fatalf("Build called %d times", builds)
	}
	if len(seen) != 1 || !seen[g0] {
		t.Fatalf("runners saw %d graphs", len(seen))
	}
}

// Concurrent batches from many goroutines (the missweep cross-experiment
// pattern) must each complete with their own in-order streams.
func TestConcurrentBatches(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	for b := 0; b < 6; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			want := 0
			sh := Shard{
				Seeds: make([]uint64, 40),
				Run: func(_ *engine.RunContext, _ *graph.Graph, i int, _ uint64) Outcome {
					return Outcome{Rounds: b*1000 + i}
				},
			}
			p.SubmitOpts([]Shard{sh}, SubmitOptions{ChunkSize: 3}, func(o Outcome) {
				if o.Rounds != b*1000+want {
					t.Errorf("batch %d: outcome %d out of order", b, o.Rounds)
				}
				want++
			}).Wait()
			if want != 40 {
				t.Errorf("batch %d delivered %d outcomes", b, want)
			}
		}(b)
	}
	wg.Wait()
}

func TestEmptyBatchAndClose(t *testing.T) {
	p := NewPool(2)
	p.Submit(nil, nil).Wait() // must not hang
	p.Submit([]Shard{{Seeds: nil}}, nil).Wait()
	if p.Workers() != 2 {
		t.Fatal("worker count wrong")
	}
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Submit after Close did not panic")
		}
	}()
	p.Submit(nil, nil)
}

// A batch resumed from a recorded outcome prefix must feed its sink the
// exact sequence an uninterrupted batch feeds it — replayed jobs are never
// re-run, live jobs start where the journal ends — at any worker count and
// for any cut point, including mid-shard and whole-batch prefixes.
func TestReplayPrefixMatchesUninterrupted(t *testing.T) {
	const seeds = 4 // 12 jobs across the three shards
	ref, refSum, _ := collect(t, 1, SubmitOptions{}, seeds)
	for _, cut := range []int{0, 1, 5, 7, len(ref) - 1, len(ref)} {
		for _, workers := range []int{1, 8} {
			p := NewPool(workers)
			var scheduled int64
			shards := misShards(seeds)
			for i := range shards {
				inner := shards[i].Run
				shards[i].Run = func(rc *engine.RunContext, g *graph.Graph, j int, seed uint64) Outcome {
					atomic.AddInt64(&scheduled, 1)
					return inner(rc, g, j, seed)
				}
			}
			var log []Outcome
			rounds := stats.NewQuantileStream()
			p.SubmitOpts(shards, SubmitOptions{Replay: ref[:cut]}, func(o Outcome) {
				log = append(log, o)
				if !o.Failed && !o.Broken {
					rounds.Add(float64(o.Rounds))
				}
			}).Wait()
			p.Close()
			if got := int(atomic.LoadInt64(&scheduled)); got != len(ref)-cut {
				t.Fatalf("cut %d workers %d: ran %d jobs, want %d", cut, workers, got, len(ref)-cut)
			}
			if len(log) != len(ref) {
				t.Fatalf("cut %d workers %d: %d outcomes, want %d", cut, workers, len(log), len(ref))
			}
			for i := range ref {
				if log[i] != ref[i] {
					t.Fatalf("cut %d workers %d: outcome %d = %+v, want %+v", cut, workers, i, log[i], ref[i])
				}
			}
			if rounds.Summary() != refSum {
				t.Fatalf("cut %d workers %d: summary diverged", cut, workers)
			}
		}
	}
}

// Record must observe every delivery in order — replayed and live alike —
// so a journal written by Record is itself a valid Replay prefix.
func TestRecordJournalsEveryDelivery(t *testing.T) {
	const seeds = 3
	ref, _, _ := collect(t, 2, SubmitOptions{}, seeds)
	cut := len(ref) / 2
	p := NewPool(4)
	defer p.Close()
	var journal []Outcome
	p.SubmitOpts(misShards(seeds), SubmitOptions{
		Replay: ref[:cut],
		Record: func(o Outcome) { journal = append(journal, o) },
	}, nil).Wait()
	if len(journal) != len(ref) {
		t.Fatalf("journal has %d entries, want %d", len(journal), len(ref))
	}
	for i := range ref {
		if journal[i] != ref[i] {
			t.Fatalf("journal entry %d = %+v, want %+v", i, journal[i], ref[i])
		}
	}
}

// Replay prefixes longer than the batch are a caller bug and must panic.
// A negative worker count is a caller bug (the engine's WithWorkers panics
// on it too); it must not be silently coerced to GOMAXPROCS.
func TestNegativeWorkersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(-1) did not panic")
		}
	}()
	NewPool(-1)
}

func TestReplayPrefixTooLongPanics(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("oversized replay prefix did not panic")
		}
	}()
	p.SubmitOpts([]Shard{{Seeds: make([]uint64, 1), Run: func(*engine.RunContext, *graph.Graph, int, uint64) Outcome {
		return Outcome{}
	}}}, SubmitOptions{Replay: make([]Outcome, 2)}, nil)
}

// Quiesce must return only once no chunk is executing, freeze all delivery
// until Resume, and leave queued work intact: the batch then completes with
// the full in-order outcome sequence.
func TestQuiesceFreezesDelivery(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var delivered int64
	release := make(chan struct{})
	started := make(chan struct{}, 256)
	sh := Shard{
		Seeds: make([]uint64, 64),
		Run: func(_ *engine.RunContext, _ *graph.Graph, i int, _ uint64) Outcome {
			started <- struct{}{}
			if i == 0 {
				<-release // hold the first chunk in flight while we quiesce
			}
			return Outcome{Rounds: i}
		},
	}
	b := p.SubmitOpts([]Shard{sh}, SubmitOptions{ChunkSize: 1}, func(o Outcome) {
		atomic.AddInt64(&delivered, 1)
	})
	<-started // job 0 is in flight
	done := make(chan struct{})
	go func() { p.Quiesce(); close(done) }()
	select {
	case <-done:
		t.Fatal("Quiesce returned while a job was still in flight")
	default:
	}
	close(release)
	<-done
	frozen := atomic.LoadInt64(&delivered)
	// No deliveries while quiesced (the consistent cut the checkpointer
	// serializes under).
	for i := 0; i < 50; i++ {
		if got := atomic.LoadInt64(&delivered); got != frozen {
			t.Fatalf("delivery advanced from %d to %d during quiesce", frozen, got)
		}
	}
	p.Resume()
	b.Wait()
	if got := atomic.LoadInt64(&delivered); got != 64 {
		t.Fatalf("delivered %d outcomes after resume, want 64", got)
	}
}

// Quiesce on an idle pool is a no-op, and repeated Quiesce/Resume cycles
// across batches keep the pool fully functional.
func TestQuiesceIdleAndRepeated(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.Quiesce()
	p.Quiesce() // idempotent
	p.Resume()
	for round := 0; round < 3; round++ {
		count := 0
		sh := Shard{Seeds: make([]uint64, 16), Run: func(_ *engine.RunContext, _ *graph.Graph, i int, _ uint64) Outcome {
			return Outcome{Rounds: i}
		}}
		b := p.SubmitOpts([]Shard{sh}, SubmitOptions{ChunkSize: 4}, func(Outcome) { count++ })
		b.Wait()
		if count != 16 {
			t.Fatalf("round %d delivered %d", round, count)
		}
		p.Quiesce()
		p.Resume()
	}
}

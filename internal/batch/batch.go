// Package batch is the work-stealing execution substrate for every
// multi-run workload in the module: the public RunSeeds API, the E1–E18
// experiment cells, and the sweep commands all submit their (graph, seed)
// jobs to one shared Pool instead of spinning up ad-hoc per-cell worker
// pools.
//
// Scheduling model. A Pool owns a fixed set of workers, each with its own
// deque of chunks and its own engine.RunContext (reusable bitsets, counters,
// frontier scratch, and per-vertex generator arrays — so a worker amortizes
// its allocations across thousands of runs). Submitted work arrives as
// Shards: a shard is one graph plus the list of seeds to run on it. The
// shard's graph is built lazily, exactly once, by whichever worker first
// claims one of its chunks, and is shared read-only by every other worker
// running that shard's seeds. Shards are cut into chunks and dealt
// round-robin onto the worker deques; a worker pops oldest-first from its
// own deque and, when empty, steals the newest chunk of another's — so a few
// huge cells (large graphs, many seeds) spread across the pool while small
// cells stay local.
//
// Determinism. Every run is a pure function of (graph, seed): which worker
// executes it, and in what order, cannot change its outcome. What COULD
// change under rescheduling is floating-point aggregation order, so the
// Pool delivers outcomes to each batch's sink strictly in job order
// (shard submission order, then seed order) through a small reorder buffer.
// A streaming aggregate fed by the sink is therefore bit-identical at any
// worker count, under any steal pattern — asserted by the package tests.
package batch

import (
	"fmt"
	"runtime"
	"sync"

	"ssmis/internal/engine"
	"ssmis/internal/graph"
)

// Outcome is one completed run. Runners fill the measurement fields; the
// pool overwrites Index and Seed before delivery.
type Outcome struct {
	// Index is the job's position in its batch (shard submission order, then
	// seed order); sinks observe indices 0, 1, 2, ... in order.
	Index int
	// Seed is the seed the run was given.
	Seed uint64
	// Rounds and Bits are the standard stabilization measurements.
	Rounds int
	Bits   int64
	// Failed marks a run that hit its round cap; Broken marks a stabilized
	// run whose black set failed MIS verification.
	Failed bool
	Broken bool
	// Extra carries workload-specific payloads (local times, churn
	// recoveries, ...) for cells that measure more than rounds and bits.
	Extra any
}

// Runner executes the i-th seed of a shard. g is the shard's shared
// read-only graph (nil when the shard has no Build — such runners construct
// their own per-seed graph). rc is the executing worker's reusable engine
// scratch; pass it to the process constructor via mis.WithRunContext.
type Runner func(rc *engine.RunContext, g *graph.Graph, i int, seed uint64) Outcome

// Shard is a group of runs sharing one graph: the unit of submission.
type Shard struct {
	// Build constructs the shard's graph; it is called at most once, by the
	// first worker to claim a chunk, and the result is shared read-only
	// across all the shard's seeds. May be nil when Run builds per-seed
	// graphs itself.
	Build func() *graph.Graph
	// Seeds lists the runs; one job per seed.
	Seeds []uint64
	// Run executes one seed.
	Run Runner
}

// SubmitOptions tunes how a batch is scheduled.
type SubmitOptions struct {
	// ChunkSize caps how many consecutive seeds of one shard a worker claims
	// at a time. <= 0 picks a size giving each worker about two chunks per
	// shard. 1 maximizes steal opportunities (every job individually
	// stealable).
	ChunkSize int
	// PinFirst queues every chunk on worker 0's deque, so all other workers
	// can make progress only by stealing — the forced-steal schedule the
	// determinism tests exercise.
	PinFirst bool
	// Replay is a recorded prefix of the batch's outcomes (job indices
	// 0..len-1, in order), the resume half of sweep checkpointing: the
	// replayed outcomes are delivered to the sink synchronously at submit
	// time — before any live outcome — and their jobs are never scheduled.
	// Scheduling starts at job index len(Replay). Every run is a pure
	// function of (graph, seed), so a sink fed a recorded prefix plus live
	// remainder aggregates exactly what an uninterrupted batch would have
	// fed it. Submit panics when the prefix is longer than the batch.
	Replay []Outcome
	// Record, when non-nil, observes every delivery in order (replayed and
	// live), after the sink, under the batch lock — the journal half of
	// sweep checkpointing. Like the sink it must be fast and may not block.
	Record func(Outcome)
}

// chunk is a contiguous seed range [lo, hi) of one shard.
type chunk struct {
	shard  *shardState
	lo, hi int
}

// shardState is a submitted shard plus its lazily-built graph.
type shardState struct {
	Shard
	b    *Batch
	base int // global index of Seeds[0] within the batch
	once sync.Once
	g    *graph.Graph
}

func (st *shardState) graph() *graph.Graph {
	st.once.Do(func() {
		if st.Build != nil {
			st.g = st.Build()
		}
	})
	return st.g
}

// worker is one pool worker: a deque of chunks and the run context its jobs
// lease engine scratch from.
type worker struct {
	id int
	rc *engine.RunContext

	mu   sync.Mutex
	dq   []chunk
	head int // dq[head:] is live; [0,head) already stolen
}

func (w *worker) push(c chunk) {
	w.mu.Lock()
	w.dq = append(w.dq, c)
	w.mu.Unlock()
}

// pop takes from the front (oldest queued) — the owner's end. Owners
// consume their chunks in submission (job-index) order, which keeps each
// batch's reorder buffer near-empty: the cursor's next outcome is almost
// always the next one an owner produces. (Classic work-stealing pops LIFO
// for recursive-spawn locality; batch chunks are pre-cut and independent,
// so delivery order is the dominant concern.)
func (w *worker) pop() (chunk, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.head >= len(w.dq) {
		return chunk{}, false
	}
	c := w.dq[w.head]
	w.head++
	if w.head == len(w.dq) {
		w.dq, w.head = w.dq[:0], 0
	}
	return c, true
}

// steal takes from the back (newest) — the thief's end, so a thief grabs
// the chunk its victim would touch last.
func (w *worker) steal() (chunk, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.head >= len(w.dq) {
		return chunk{}, false
	}
	c := w.dq[len(w.dq)-1]
	w.dq = w.dq[:len(w.dq)-1]
	if w.head == len(w.dq) {
		w.dq, w.head = w.dq[:0], 0
	}
	return c, true
}

// Pool is a work-stealing worker pool executing batch runs. Create one with
// NewPool, submit with Submit/SubmitOpts, and Close it when done. All
// methods are safe for concurrent use.
type Pool struct {
	workers []*worker

	mu      sync.Mutex
	cond    *sync.Cond
	gen     uint64 // bumped on every Submit, so sleeping workers re-scan
	next    int    // round-robin placement cursor
	closed  bool
	paused  bool // Quiesce: workers park instead of starting chunks
	running int  // workers currently executing a chunk
	wg      sync.WaitGroup

	steals uint64 // successful steals (scheduler introspection / tests)
}

// NewPool starts a pool with the given number of workers (0 selects
// GOMAXPROCS). A negative count panics, matching the engine's loud
// WithWorkers validation — it used to be silently coerced to GOMAXPROCS,
// which let CLI typos like `-workers -3` pass unnoticed.
func NewPool(workers int) *Pool {
	if workers < 0 {
		panic(fmt.Sprintf("batch: negative worker count %d", workers))
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		p.workers = append(p.workers, &worker{id: i, rc: engine.NewRunContext()})
	}
	p.wg.Add(workers)
	for _, w := range p.workers {
		go p.workerLoop(w)
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return len(p.workers) }

// Steals returns the number of successful steals so far.
func (p *Pool) Steals() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.steals
}

// Close drains every queued chunk, stops the workers, and waits for them to
// exit. Submitting after Close panics; batches submitted before Close
// complete normally. Closing a quiesced pool resumes execution (the drain
// guarantee wins over the pause).
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Quiesce pauses the pool at a run boundary: no worker starts another
// chunk, and Quiesce returns once every in-flight chunk has finished —
// from then until Resume, no outcome is delivered and every batch's
// journal is frozen, which is the consistent cut the sweep checkpointer
// serializes. Queued chunks stay queued (workers that claimed one park
// holding it untouched). Quiesce on an idle or already-quiesced pool
// returns immediately; Submit during a pause only queues work.
func (p *Pool) Quiesce() {
	p.mu.Lock()
	p.paused = true
	for p.running > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// Resume reawakens a quiesced pool.
func (p *Pool) Resume() {
	p.mu.Lock()
	p.paused = false
	p.cond.Broadcast()
	p.mu.Unlock()
}

// admit marks the calling worker as running one chunk, parking first while
// the pool is quiesced (the claimed chunk waits, untouched, for Resume).
func (p *Pool) admit() {
	p.mu.Lock()
	for p.paused && !p.closed {
		p.cond.Wait()
	}
	p.running++
	p.mu.Unlock()
}

// release is admit's counterpart after the chunk completes; it wakes a
// Quiesce waiting for the pool to fall idle.
func (p *Pool) release() {
	p.mu.Lock()
	p.running--
	if p.running == 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// Submit enqueues shards as one batch with default scheduling. Each
// outcome is delivered exactly once, in job order, to sink (which must be
// fast and may not block — it runs on worker goroutines under the batch
// lock). sink may be nil. The returned Batch's Wait blocks until every job
// has been delivered.
func (p *Pool) Submit(shards []Shard, sink func(Outcome)) *Batch {
	return p.SubmitOpts(shards, SubmitOptions{}, sink)
}

// SubmitOpts is Submit with explicit scheduling options.
func (p *Pool) SubmitOpts(shards []Shard, opt SubmitOptions, sink func(Outcome)) *Batch {
	total := 0
	for _, sh := range shards {
		total += len(sh.Seeds)
	}
	skip := len(opt.Replay)
	if skip > total {
		panic(fmt.Sprintf("batch: replay prefix of %d outcomes for a batch of %d jobs", skip, total))
	}
	b := &Batch{sink: sink, record: opt.Record, total: total, pending: make(map[int]Outcome), done: make(chan struct{})}
	// Replay the recorded prefix before publishing the batch: the sink sees
	// indices 0..skip-1 from the journal, then live outcomes from skip on.
	for i, o := range opt.Replay {
		o.Index = i
		b.emit(o)
	}
	if total == skip {
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			panic("batch: Submit on a closed pool")
		}
		b.completed = true
		close(b.done)
		return b
	}
	var chunks []chunk
	base := 0
	for _, sh := range shards {
		if len(sh.Seeds) == 0 {
			continue
		}
		st := &shardState{Shard: sh, b: b, base: base}
		base += len(sh.Seeds)
		// Seeds whose outcomes were replayed are not scheduled again; the
		// auto chunk size spreads the LIVE remainder across the pool, so a
		// mostly-journaled resumed shard doesn't serialize its tail.
		start := 0
		if skip > st.base {
			start = skip - st.base
			if start > len(st.Seeds) {
				start = len(st.Seeds)
			}
		}
		cs := opt.ChunkSize
		if cs <= 0 {
			cs = (len(sh.Seeds) - start + 2*len(p.workers) - 1) / (2 * len(p.workers))
			if cs < 1 {
				cs = 1
			}
		}
		for lo := start; lo < len(st.Seeds); lo += cs {
			hi := lo + cs
			if hi > len(st.Seeds) {
				hi = len(st.Seeds)
			}
			chunks = append(chunks, chunk{shard: st, lo: lo, hi: hi})
		}
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("batch: Submit on a closed pool")
	}
	for _, c := range chunks {
		w := p.workers[0]
		if !opt.PinFirst {
			w = p.workers[p.next%len(p.workers)]
			p.next++
		}
		w.push(c)
	}
	p.gen++
	p.cond.Broadcast()
	p.mu.Unlock()
	return b
}

// workerLoop runs chunks until the pool is closed and no work remains.
func (p *Pool) workerLoop(w *worker) {
	defer p.wg.Done()
	for {
		c, ok := p.take(w)
		if !ok {
			return
		}
		g := c.shard.graph()
		for i := c.lo; i < c.hi; i++ {
			o := c.shard.Run(w.rc, g, i, c.shard.Seeds[i])
			o.Index = c.shard.base + i
			o.Seed = c.shard.Seeds[i]
			c.shard.b.deliver(o)
		}
		p.release()
	}
}

// take returns the next chunk for w — own deque first, then a steal sweep
// over the other workers, then sleep until a Submit bumps the generation —
// and admits it past the quiesce gate (the returned chunk is counted in
// running). It returns false only when the pool is closed and a full sweep
// found nothing — every chunk queued before Close is guaranteed to run,
// because a non-empty deque keeps its owner awake.
func (p *Pool) take(w *worker) (chunk, bool) {
	for {
		p.mu.Lock()
		for p.paused && !p.closed {
			p.cond.Wait()
		}
		gen, closed := p.gen, p.closed
		p.mu.Unlock()
		if c, ok := w.pop(); ok {
			p.admit()
			return c, true
		}
		for off := 1; off < len(p.workers); off++ {
			v := p.workers[(w.id+off)%len(p.workers)]
			if c, ok := v.steal(); ok {
				p.mu.Lock()
				p.steals++
				p.mu.Unlock()
				p.admit()
				return c, true
			}
		}
		if closed {
			return chunk{}, false
		}
		p.mu.Lock()
		for p.gen == gen && !p.closed && !p.paused {
			p.cond.Wait()
		}
		p.mu.Unlock()
	}
}

// Batch tracks one Submit call: a reorder buffer feeding the sink in job
// order, and a completion signal.
type Batch struct {
	mu        sync.Mutex
	sink      func(Outcome)
	record    func(Outcome) // checkpoint journal; observes every emit
	pending   map[int]Outcome
	cursor    int
	total     int
	completed bool
	done      chan struct{}
}

// deliver hands o to the sink if it is the next job in order, buffering it
// otherwise; it closes done after the last in-order delivery.
func (b *Batch) deliver(o Outcome) {
	b.mu.Lock()
	if o.Index != b.cursor {
		b.pending[o.Index] = o
		b.mu.Unlock()
		return
	}
	b.emit(o)
	for {
		next, ok := b.pending[b.cursor]
		if !ok {
			break
		}
		delete(b.pending, b.cursor)
		b.emit(next)
	}
	finished := b.cursor == b.total && !b.completed
	if finished {
		b.completed = true
	}
	b.mu.Unlock()
	if finished {
		close(b.done)
	}
}

func (b *Batch) emit(o Outcome) {
	if b.sink != nil {
		b.sink(o)
	}
	if b.record != nil {
		b.record(o)
	}
	b.cursor++
}

// Wait blocks until every job of the batch has been delivered to the sink.
func (b *Batch) Wait() { <-b.done }

package batch

// Batch-scheduler throughput: the work-stealing pool (shared across cells,
// per-worker run contexts, streaming aggregation) against a faithful
// reconstruction of the pre-batch execution model (one ad-hoc worker pool
// per cell, fresh engine allocations per run, slice-based aggregation — the
// shape RunSeeds and the experiment harness's runTrials had before this
// package existed). The workload is the mixed sweep the acceptance
// criterion names: many small-graph cells plus a few large ones.
//
// Run with:
//
//	go test -bench 'BenchmarkSweep' -benchtime 3x ./internal/batch
//
// TestRecordBatchBench re-measures both paths directly and writes the
// comparison to the file named by BENCH_BATCH_OUT (CI records it as
// BENCH_batch.json at the repository root).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/stats"
	"ssmis/internal/xrand"
)

// sweepCell is one cell of the mixed benchmark sweep.
type sweepCell struct {
	name  string
	build func() *graph.Graph // fixed graph, shared across the cell's seeds
	gen   func(seed uint64) *graph.Graph
	// oldRebuilds marks cells whose graph the pre-batch harness rebuilt on
	// every trial: deterministic families (path, grid, caterpillar) were
	// expressed as gen(seed) closures that ignore the seed, so the old
	// per-cell pools paid the build per run. The batch model's shard Build
	// runs once. Seed-dependent families (gen != nil) build per trial in
	// both models.
	oldRebuilds bool
	trials      int
}

// mixedSweep is the acceptance workload: many small-graph cells (the bulk
// of every experiment grid — tiny cliques and sparse G(n,p) instances run
// for hundreds of seeds) plus a few large cells. Small cells are where the
// scheduler's design pays: per-worker run contexts amortize the O(n)
// per-run allocations that dominate sub-millisecond runs, and chunked
// deques replace the old model's per-job unbuffered-channel handoff.
func mixedSweep() []sweepCell {
	var cells []sweepCell
	// Bounded-arboricity ladder cells (the E4 families): deterministic
	// builds the old harness repeated per trial.
	for i := 0; i < 8; i++ {
		i := i
		cells = append(cells, sweepCell{
			name:        fmt.Sprintf("caterpillar-%d", i),
			build:       func() *graph.Graph { return graph.Caterpillar(96+8*i, 8) },
			oldRebuilds: true,
			trials:      150,
		})
		cells = append(cells, sweepCell{
			name:        fmt.Sprintf("grid-%d", i),
			build:       func() *graph.Graph { return graph.Grid(28+2*i, 28+2*i) },
			oldRebuilds: true,
			trials:      120,
		})
	}
	for i := 0; i < 6; i++ {
		i := i
		cells = append(cells, sweepCell{
			name:        fmt.Sprintf("path-%d", i),
			build:       func() *graph.Graph { return graph.Path(1024 + 256*i) },
			oldRebuilds: true,
			trials:      100,
		})
	}
	// Clique tail-sampling cells (the E1 shape): prebuilt in both models.
	for i := 0; i < 10; i++ {
		i := i
		cells = append(cells, sweepCell{
			name:   fmt.Sprintf("small-clique-%d", i),
			build:  func() *graph.Graph { return graph.Complete(48 + 4*i) },
			trials: 400,
		})
	}
	// A few large cells.
	for i := 0; i < 2; i++ {
		i := i
		cells = append(cells, sweepCell{
			name:   fmt.Sprintf("large-gnp-%d", i),
			build:  func() *graph.Graph { return graph.GnpAvgDegree(20000, 10, xrand.New(uint64(500+i))) },
			trials: 3,
		})
	}
	return cells
}

type cellResult struct {
	mean     float64
	failures int
}

// runSweepOld executes the sweep the pre-batch way: one ad-hoc worker pool
// per cell, fresh per-run allocations, slice aggregation. This is a
// faithful transcription of the removed runTrials/RunSeeds inner loop.
func runSweepOld(cells []sweepCell, workers int) []cellResult {
	out := make([]cellResult, len(cells))
	for ci, cell := range cells {
		var fixed *graph.Graph
		gen := cell.gen
		if cell.build != nil {
			if cell.oldRebuilds {
				// The old harness expressed this deterministic family as a
				// seed-ignoring gen closure, so it rebuilt per trial.
				gen = func(uint64) *graph.Graph { return cell.build() }
			} else {
				fixed = cell.build()
			}
		}
		type outcome struct {
			rounds float64
			failed bool
		}
		outcomes := make([]outcome, cell.trials)
		w := workers
		if w > cell.trials {
			w = cell.trials
		}
		var wg sync.WaitGroup
		next := make(chan int)
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range next {
					seed := uint64(t + 1)
					g := fixed
					if g == nil {
						g = gen(seed)
					}
					p := mis.NewTwoState(g, mis.WithSeed(seed))
					res := mis.Run(p, mis.DefaultRoundCap(g.N()))
					if !res.Stabilized {
						outcomes[t].failed = true
						continue
					}
					outcomes[t] = outcome{rounds: float64(res.Rounds)}
				}
			}()
		}
		for t := 0; t < cell.trials; t++ {
			next <- t
		}
		close(next)
		wg.Wait()
		var rounds []float64
		failures := 0
		for _, o := range outcomes {
			if o.failed {
				failures++
				continue
			}
			rounds = append(rounds, o.rounds)
		}
		out[ci] = cellResult{mean: stats.Mean(rounds), failures: failures}
	}
	return out
}

// runSweepBatch executes the same sweep on one shared work-stealing pool:
// every cell is a shard, graphs build once per shard, workers reuse their
// run contexts, and the aggregates stream.
func runSweepBatch(cells []sweepCell, workers int) []cellResult {
	pool := NewPool(workers)
	defer pool.Close()
	out := make([]cellResult, len(cells))
	streams := make([]*stats.Stream, len(cells))
	var shards []Shard
	for ci, cell := range cells {
		seeds := make([]uint64, cell.trials)
		for t := range seeds {
			seeds[t] = uint64(t + 1)
		}
		gen := cell.gen
		streams[ci] = stats.NewStream()
		shards = append(shards, Shard{
			Build: cell.build,
			Seeds: seeds,
			Run: func(rc *engine.RunContext, g *graph.Graph, _ int, seed uint64) Outcome {
				if g == nil {
					g = gen(seed)
				}
				p := mis.NewTwoState(g, mis.WithRunContext(rc), mis.WithSeed(seed))
				res := mis.Run(p, mis.DefaultRoundCap(g.N()))
				if !res.Stabilized {
					return Outcome{Failed: true}
				}
				return Outcome{Rounds: res.Rounds}
			},
		})
	}
	// One batch per cell (as the experiment harness submits), all sharing
	// the pool.
	batches := make([]*Batch, len(shards))
	for ci := range shards {
		ci := ci
		batches[ci] = pool.Submit(shards[ci:ci+1], func(o Outcome) {
			if o.Failed {
				out[ci].failures++
				return
			}
			streams[ci].Add(float64(o.Rounds))
		})
	}
	for ci, b := range batches {
		b.Wait()
		out[ci].mean = streams[ci].Mean()
	}
	return out
}

func benchWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 4 {
		w = 4 // acceptance point: workers >= 4 even on small containers
	}
	return w
}

func BenchmarkSweepOldPerCellPool(b *testing.B) {
	cells := mixedSweep()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSweepOld(cells, benchWorkers())
	}
}

func BenchmarkSweepBatchPool(b *testing.B) {
	cells := mixedSweep()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSweepBatch(cells, benchWorkers())
	}
}

// The two execution models must agree cell for cell (same seeds, same
// runs): the scheduler changes throughput, never results.
func TestSweepModelsAgree(t *testing.T) {
	cells := mixedSweep()[:6]
	old := runSweepOld(cells, 3)
	batch := runSweepBatch(cells, 7)
	for ci := range cells {
		// Means agree to rounding (Welford vs naive summation order);
		// failure counts agree exactly.
		if old[ci].failures != batch[ci].failures ||
			abs(old[ci].mean-batch[ci].mean) > 1e-9*(1+abs(old[ci].mean)) {
			t.Fatalf("cell %s: old %+v vs batch %+v", cells[ci].name, old[ci], batch[ci])
		}
	}
}

// wideShard is a refresh-heavy cell for the intra-round-workers benchmarks:
// complete graphs keep dirtyAll set on every changing round, so each run is
// dominated by the engine's O(n) membership rescans — the phase the
// partitioned two-phase refresh parallelizes.
func wideShard(n, trials, workers int) Shard {
	seeds := make([]uint64, trials)
	for t := range seeds {
		seeds[t] = uint64(t + 1)
	}
	return Shard{
		Build: func() *graph.Graph { return graph.Complete(n) },
		Seeds: seeds,
		Run: func(rc *engine.RunContext, g *graph.Graph, _ int, seed uint64) Outcome {
			opts := []mis.Option{mis.WithRunContext(rc), mis.WithSeed(seed)}
			if workers > 1 {
				opts = append(opts, mis.WithWorkers(workers))
			}
			p := mis.NewTwoState(g, opts...)
			res := mis.Run(p, mis.DefaultRoundCap(g.N()))
			if !res.Stabilized {
				return Outcome{Failed: true}
			}
			return Outcome{Rounds: res.Rounds}
		},
	}
}

// runWide executes one wide cell on a pool and returns the in-order rounds.
func runWide(poolWorkers, n, trials, runWorkers int) []int {
	pool := NewPool(poolWorkers)
	defer pool.Close()
	var rounds []int
	b := pool.Submit([]Shard{wideShard(n, trials, runWorkers)}, func(o Outcome) {
		if o.Failed {
			rounds = append(rounds, -1)
			return
		}
		rounds = append(rounds, o.Rounds)
	})
	b.Wait()
	return rounds
}

// Intra-round workers compose with the pool: a batch whose runs enable
// mis.WithWorkers — engine goroutines inside a pool worker's job, exercising
// the partitioned commit and two-phase refresh — must deliver outcomes
// identical to the same batch run with sequential engines, at any pool
// width. The parallel round changes throughput, never results.
func TestBatchIntraRoundWorkersAgree(t *testing.T) {
	base := runWide(1, 160, 40, 1)
	for _, cfg := range []struct{ pool, run int }{{1, 4}, {4, 2}, {4, 8}} {
		got := runWide(cfg.pool, 160, 40, cfg.run)
		if len(got) != len(base) {
			t.Fatalf("pool=%d runWorkers=%d: %d outcomes, want %d", cfg.pool, cfg.run, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("pool=%d runWorkers=%d: outcome %d is %d rounds, sequential engine got %d",
					cfg.pool, cfg.run, i, got[i], base[i])
			}
		}
	}
}

// Refresh-heavy wide cells through the pool with sequential engines: the
// baseline for BenchmarkSweepWideIntraRoundWorkers. On multi-core hardware
// the workers variant should win once n is large; on a 1-CPU container both
// measure the same work plus coordination overhead.
func BenchmarkSweepWideSequentialRuns(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runWide(benchWorkers(), 512, 24, 1)
	}
}

func BenchmarkSweepWideIntraRoundWorkers(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runWide(benchWorkers(), 512, 24, 4)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestRecordBatchBench measures both sweep implementations and writes the
// comparison JSON to $BENCH_BATCH_OUT (skipped when unset). CI points it at
// BENCH_batch.json.
func TestRecordBatchBench(t *testing.T) {
	outPath := os.Getenv("BENCH_BATCH_OUT")
	if outPath == "" {
		t.Skip("BENCH_BATCH_OUT not set")
	}
	cells := mixedSweep()
	workers := benchWorkers()
	jobs := 0
	for _, c := range cells {
		jobs += c.trials
	}
	const reps = 3
	measure := func(run func([]sweepCell, int) []cellResult) time.Duration {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < reps; r++ {
			start := time.Now()
			run(cells, workers)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	// Interleave a warm-up of each, then best-of-reps.
	runSweepOld(cells[:4], workers)
	runSweepBatch(cells[:4], workers)
	oldBest := measure(runSweepOld)
	batchBest := measure(runSweepBatch)

	// The regression gate CI enforces (speedup >= gate) is recorded next to
	// the measurement so the workflow never hard-codes a core-count
	// assumption: on a single-CPU runner the win comes from context
	// amortization and shared builds alone and shared-runner noise is
	// proportionally larger (gate 0.9); with real parallelism cross-cell
	// stealing must additionally never lose to per-cell pools (gate 1.0).
	gate := 0.9
	if runtime.GOMAXPROCS(0) > 1 {
		gate = 1.0
	}

	type row struct {
		Name       string  `json:"name"`
		NsPerSweep int64   `json:"ns_per_sweep"`
		RunsPerSec float64 `json:"runs_per_sec"`
	}
	report := map[string]any{
		"description": "Work-stealing batch scheduler vs the pre-batch per-cell worker pools on the acceptance workload: a mixed sweep of 32 small cells (8 caterpillar, 8 grid, 6 path — the E4 deterministic families the old harness rebuilt per trial — plus 10 prebuilt cliques n=48..84) and 2 large cells (G(n=20000, avg10)), 2-state process, best of 3 sweeps. 'old_per_cell_pool' reconstructs the removed RunSeeds/runTrials model (pool per cell, per-trial builds of deterministic graphs, fresh allocations per run, slice aggregation); 'batch_pool' is internal/batch (one shared pool, per-worker run contexts, once-per-shard graph builds, streaming aggregation). On a 1-CPU container the speedup comes from context amortization and shared builds alone; multi-core adds cross-cell stealing. The 'gate' field is the core-count-aware regression threshold CI enforces (0.9 at GOMAXPROCS=1 to absorb shared-runner noise, 1.0 with real parallelism). Regenerate with: BENCH_BATCH_OUT=$PWD/BENCH_batch.json go test -run TestRecordBatchBench ./internal/batch",
		"environment": map[string]any{
			"goos":         runtime.GOOS,
			"goarch":       runtime.GOARCH,
			"logical_cpus": runtime.NumCPU(),
			"gomaxprocs":   runtime.GOMAXPROCS(0),
			"go":           runtime.Version(),
			"workers":      workers,
			"jobs":         jobs,
		},
		"results": []row{
			{Name: "old_per_cell_pool", NsPerSweep: oldBest.Nanoseconds(),
				RunsPerSec: float64(jobs) / oldBest.Seconds()},
			{Name: "batch_pool", NsPerSweep: batchBest.Nanoseconds(),
				RunsPerSec: float64(jobs) / batchBest.Seconds()},
		},
		"speedup": float64(oldBest.Nanoseconds()) / float64(batchBest.Nanoseconds()),
		"gate":    gate,
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("old %v, batch %v, speedup %.2fx", oldBest, batchBest,
		float64(oldBest.Nanoseconds())/float64(batchBest.Nanoseconds()))
}

package experiment

import (
	"path/filepath"
	"strings"
	"testing"

	"ssmis/internal/batch"
)

// renderAll renders an experiment's tables to one string (the byte-level
// identity the resume contract promises).
func renderAll(tables []Table) string {
	var b strings.Builder
	for _, t := range tables {
		b.WriteString(t.Render())
		b.WriteString(t.CSV())
	}
	return b.String()
}

// runExperiment executes one experiment on a fresh pool.
func runExperiment(t *testing.T, id string, workers int, ck *ExperimentCheckpoint) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	pool := batch.NewPool(workers)
	defer pool.Close()
	cfg := Config{Scale: 0.05, Seed: 2023, Pool: pool, Checkpoint: ck}
	return renderAll(e.Run(cfg))
}

// A sweep resumed from a mid-cell checkpoint must render byte-identical
// tables to an uninterrupted run, at any worker count. The interrupted
// state is simulated by journaling a full run, then truncating every cell
// journal to a prefix (as a kill between checkpoints would leave it) and
// round-tripping the state through the on-disk snapshot envelope.
func TestSweepCheckpointResumeByteIdentical(t *testing.T) {
	const id = "E1"
	ids := []string{id}
	ref := runExperiment(t, id, 1, nil)

	// Journal a complete run of the experiment.
	sweep := NewSweepCheckpoint(0.05, 2023, ids)
	if got := runExperiment(t, id, 4, sweep.Experiment(id)); got != ref {
		t.Fatal("journaling changed the tables")
	}

	// Truncate every cell journal to a strict prefix — the state a SIGKILL
	// between periodic saves leaves behind — and persist/reload it.
	sweep.mu.Lock()
	cut := 0
	for _, j := range sweep.state.Cells {
		keep := len(j.Outcomes) / 2
		cut += len(j.Outcomes) - keep
		j.Outcomes = j.Outcomes[:keep]
	}
	ncells := len(sweep.state.Cells)
	sweep.mu.Unlock()
	if ncells == 0 || cut == 0 {
		t.Fatalf("experiment journaled %d cells, truncated %d outcomes — bad fixture", ncells, cut)
	}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if err := sweep.Save(path); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		loaded, err := LoadSweepCheckpoint(path, 0.05, 2023, ids)
		if err != nil {
			t.Fatal(err)
		}
		if got := runExperiment(t, id, workers, loaded.Experiment(id)); got != ref {
			t.Fatalf("resumed tables at workers=%d differ from uninterrupted run", workers)
		}
	}
}

// A completed experiment's tables replay from the checkpoint verbatim.
func TestSweepCheckpointMarkDone(t *testing.T) {
	ids := []string{"E1", "E2"}
	sweep := NewSweepCheckpoint(1, 7, ids)
	tables := []Table{{Title: "done", Columns: []string{"a"}, Rows: [][]string{{"1"}}}}
	sweep.MarkDone("E1", tables)
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if err := sweep.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSweepCheckpoint(path, 1, 7, ids)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := loaded.Completed("E1")
	if !ok {
		t.Fatal("E1 not recorded as done")
	}
	if renderAll(got) != renderAll(tables) {
		t.Fatal("stored tables differ")
	}
	if _, ok := loaded.Completed("E2"); ok {
		t.Fatal("E2 wrongly recorded as done")
	}
}

// Resume must refuse checkpoints from a different invocation: other scale,
// other seed, or another experiment selection.
func TestSweepCheckpointIdentityValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if err := NewSweepCheckpoint(0.25, 11, []string{"E1", "E2"}).Save(path); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		scale float64
		seed  uint64
		ids   []string
	}{
		{0.5, 11, []string{"E1", "E2"}},
		{0.25, 12, []string{"E1", "E2"}},
		{0.25, 11, []string{"E1"}},
		{0.25, 11, []string{"E1", "E3"}},
	}
	for i, c := range cases {
		if _, err := LoadSweepCheckpoint(path, c.scale, c.seed, c.ids); err == nil {
			t.Errorf("case %d: mismatched checkpoint accepted", i)
		}
	}
	if _, err := LoadSweepCheckpoint(path, 0.25, 11, []string{"E1", "E2"}); err != nil {
		t.Fatalf("matching identity rejected: %v", err)
	}
}

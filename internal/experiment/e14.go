package experiment

// Experiment E14: local vs global stabilization time. The paper's bounds
// (and its related-work discussion of Ghaffari's local-complexity analysis
// [16]) distinguish how long a TYPICAL vertex takes to stabilize from how
// long the LAST one does; the global polylog bounds are driven by straggler
// vertices. This experiment measures the per-vertex stabilization-time
// distribution the instrumented simulator records.

import (
	"fmt"
	"math"

	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/stats"
	"ssmis/internal/xrand"
)

func e14LocalTimes() Experiment {
	return Experiment{
		ID:    "E14",
		Title: "Local vs global stabilization time",
		Claim: "Implicit in §1.2/[16]: progress is local — most vertices stabilize in O(1) rounds and the global polylog bound is a straggler phenomenon (the analysis measures progress by the expected number of newly stable vertices)",
		Run: func(cfg Config) []Table {
			cfg = cfg.normalized()
			trials := cfg.trials(30)
			sizes := cfg.sizes([]int{1024, 4096, 16384})
			families := []struct {
				name string
				gen  func(n int, seed uint64) *graph.Graph
			}{
				{"gnp-avg12", func(n int, seed uint64) *graph.Graph {
					return graph.GnpAvgDegree(n, 12, xrand.New(seed))
				}},
				{"tree", func(n int, seed uint64) *graph.Graph {
					return graph.RandomTree(n, xrand.New(seed))
				}},
				{"powerlaw-2.3", func(n int, seed uint64) *graph.Graph {
					return graph.ChungLu(n, 2.3, 12, xrand.New(seed))
				}},
			}
			var tables []Table
			for _, fam := range families {
				t := Table{
					Title: "E14: per-vertex stabilization times, 2-state on " + fam.name,
					Columns: []string{"n", "mean local", "median local", "p99 local",
						"global (max)", "mean/global"},
				}
				for _, n := range sizes {
					n := n
					// One pool job per trial; local times stream into exact
					// counting quantiles instead of a trials×n slice.
					locals := stats.NewQuantileStream()
					globals := stats.NewStream()
					type localTimes struct {
						times  []int
						rounds int
						ok     bool
					}
					RunJobs(cfg, fmt.Sprintf("E14 %s n=%d", fam.name, n), trials, cfg.Seed+uint64(n),
						func(rc *engine.RunContext, _ int, seed uint64) any {
							g := fam.gen(n, seed)
							p := mis.NewTwoState(g, mis.WithRunContext(rc), mis.WithSeed(seed), mis.WithLocalTimes())
							res := mis.Run(p, 4*mis.DefaultRoundCap(n))
							if !res.Stabilized {
								return localTimes{}
							}
							return localTimes{times: p.StabilizationTimes(), rounds: res.Rounds, ok: true}
						},
						func(_ int, payload any) {
							lt := payload.(localTimes)
							if !lt.ok {
								return
							}
							for _, ti := range lt.times {
								locals.Add(float64(ti))
							}
							globals.Add(float64(lt.rounds))
						})
					if locals.N() == 0 {
						t.AddRow(n, "-", "-", "-", "-", "-")
						continue
					}
					sl := locals.Summary()
					t.AddRow(n, sl.Mean, sl.Median, sl.P99, globals.Mean(), sl.Mean/globals.Mean())
				}
				t.Notes = append(t.Notes,
					"claim shape: mean and median local times are O(1)-ish and grow far slower than the global max; mean/global shrinks with n")
				tables = append(tables, t)
			}

			// The straggler profile: fraction of vertices not yet stable
			// after r rounds, one representative run.
			n := sizes[len(sizes)-1]
			g := graph.GnpAvgDegree(n, 12, xrand.New(cfg.Seed+77))
			p := mis.NewTwoState(g, mis.WithSeed(cfg.Seed+78), mis.WithLocalTimes())
			res := mis.Run(p, 4*mis.DefaultRoundCap(n))
			prof := Table{
				Title:   fmt.Sprintf("E14b: survival profile on G(%d, avg 12) — fraction unstable after r rounds", n),
				Columns: []string{"r", "fraction unstable"},
			}
			if res.Stabilized {
				times := p.StabilizationTimes()
				for r := 0; r <= res.Rounds; r += int(math.Max(1, float64(res.Rounds)/12)) {
					cnt := 0
					for _, ti := range times {
						if ti > r {
							cnt++
						}
					}
					prof.AddRow(r, float64(cnt)/float64(n))
				}
				prof.Notes = append(prof.Notes,
					"claim shape: geometric decay — the per-round survival factor matches the constant-progress lemmas (Lemmas 21-23 prove E[|V_t+log n|] ≤ (1-ε/polylog)|V_t|)")
			}
			return append(tables, prof)
		},
	}
}

package experiment

// Experiments E1–E5: the "simple bounds" of the paper's Section 3 — complete
// graphs (Theorem 8), disjoint cliques (Remark 9), the 3-state process on
// cliques (Remark 10), bounded arboricity (Theorem 11), and the maximum-
// degree bound (Theorem 12).

import (
	"fmt"
	"math"

	"ssmis/internal/graph"
	"ssmis/internal/stats"
	"ssmis/internal/xrand"
)

// e01Spec is E1's declaration on the shared scaling-sweep shape; the golden
// tests in internal/scenario pin the scenario re-expression against it.
func e01Spec() ScalingSpec {
	return ScalingSpec{
		Title: "E1a: stabilization time of 2-state on K_n",
		Kind:  KindTwoState,
		Family: GraphFamily{
			Name:  "complete",
			Build: func(n int, _ uint64) *graph.Graph { return graph.Complete(n) },
			Det:   true,
		},
		Sizes:       []int{256, 512, 1024, 2048, 4096, 8192},
		TrialsBase:  200,
		ClaimNotes:  []string{"claim shape: mean/ln n ≈ constant; max/ln² n bounded"},
		PolylogNote: true,
		MaxFitNote:  "max-over-trials grows like ln^%.2f(n) (claim: up to 2 for the w.h.p. bound)",
		Tail: &TailSpec{
			Title: "E1b: geometric tail P[T ≥ k·log2 n] on the largest clique",
			KMax:  6,
		},
	}
}

func e01CliqueTwoState() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "2-state MIS on complete graphs K_n",
		Claim: "Theorem 8: O(log n) expected, Θ(log² n) w.h.p.; P[T ≥ k·log n] = 2^{-Θ(k)}",
		Run: func(cfg Config) []Table {
			return RunScalingSweep(cfg, e01Spec())
		},
	}
}

func e02DisjointCliques() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "2-state MIS on √n disjoint cliques K_{√n}",
		Claim: "Remark 9: Θ(log² n) expected and w.h.p.",
		Run: func(cfg Config) []Table {
			cfg = cfg.normalized()
			roots := cfg.sizes([]int{16, 24, 32, 48, 64, 96})
			trials := cfg.trials(100)
			t := Table{Title: "E2: 2-state on disjoint cliques (n = s² vertices, s cliques of size s)", Columns: ScalingColumns()}
			var ns []int
			var means []float64
			for _, s := range roots {
				n := s * s
				g := graph.DisjointCliques(s, s)
				m := RunTrials(cfg, KindTwoState, FixedGraph(g), trials, 0, cfg.Seed+uint64(n))
				ScalingRow(&t, n, m)
				if m.Count() > 0 {
					ns = append(ns, n)
					means = append(means, m.Summary().Mean)
				}
			}
			t.Notes = append(t.Notes,
				"claim shape: MEAN/ln² n ≈ constant (the slowest of √n cliques dominates)",
				PolylogNote(ns, means))
			return []Table{t}
		},
	}
}

func e03CliqueThreeState() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "3-state vs 2-state MIS on complete graphs",
		Claim: "Remark 10: the 3-state process is O(log n) on K_n both in expectation AND w.h.p. (2-state needs Θ(log² n) w.h.p.)",
		Run: func(cfg Config) []Table {
			cfg = cfg.normalized()
			sizes := cfg.sizes([]int{256, 512, 1024, 2048, 4096, 8192})
			trials := cfg.trials(200)
			t := Table{
				Title: "E3: K_n head-to-head (same trial budget)",
				Columns: []string{"n", "2st mean", "2st max", "3st mean", "3st max",
					"2st max/ln² n", "3st max/ln n"},
			}
			var ns []int
			var max2, max3 []float64
			for _, n := range sizes {
				g := graph.Complete(n)
				m2 := RunTrials(cfg, KindTwoState, FixedGraph(g), trials, 0, cfg.Seed+uint64(n))
				m3 := RunTrials(cfg, KindThreeState, FixedGraph(g), trials, 0, cfg.Seed+uint64(n)+1)
				if m2.Count() == 0 || m3.Count() == 0 {
					continue
				}
				s2, s3 := m2.Summary(), m3.Summary()
				ln := math.Log(float64(n))
				t.AddRow(n, s2.Mean, s2.Max, s3.Mean, s3.Max, s2.Max/(ln*ln), s3.Max/ln)
				ns = append(ns, n)
				max2 = append(max2, s2.Max)
				max3 = append(max3, s3.Max)
			}
			if len(ns) >= 2 {
				fn := make([]float64, len(ns))
				for i, n := range ns {
					fn[i] = float64(n)
				}
				_, k2, _ := stats.PolylogFit(fn, max2)
				_, k3, _ := stats.PolylogFit(fn, max3)
				t.Notes = append(t.Notes, fmt.Sprintf(
					"claim shape: 2-state max tail needs an extra log factor over 3-state; fitted max exponents: 2-state ln^%.2f, 3-state ln^%.2f",
					k2, k3))
			}
			return []Table{t}
		},
	}
}

func e04BoundedArboricity() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "2-state MIS on bounded-arboricity graphs",
		Claim: "Theorem 11: O(log n) w.h.p. on graphs of bounded arboricity (trees, grids, bounded-degeneracy graphs)",
		Run: func(cfg Config) []Table {
			var tables []Table
			for _, spec := range e04Specs() {
				tables = append(tables, RunScalingSweep(cfg, spec)...)
			}
			return tables
		},
	}
}

// e04Families lists E4's bounded-arboricity graph families. Deterministic
// families ignore their seed: their cells submit as fixed shards, so the
// batch scheduler builds the graph once instead of once per trial.
func e04Families() []GraphFamily {
	return []GraphFamily{
		{Name: "random-tree", Build: func(n int, seed uint64) *graph.Graph {
			return graph.RandomTree(n, xrand.New(seed))
		}},
		{Name: "prufer-tree", Build: func(n int, seed uint64) *graph.Graph {
			return graph.UniformLabeledTree(n, xrand.New(seed))
		}},
		{Name: "path", Build: func(n int, _ uint64) *graph.Graph { return graph.Path(n) }, Det: true},
		{Name: "grid", Build: func(n int, _ uint64) *graph.Graph {
			s := int(math.Sqrt(float64(n)))
			return graph.Grid(s, s)
		}, Det: true},
		{Name: "degen-3", Build: func(n int, seed uint64) *graph.Graph {
			return graph.BoundedDegeneracyRandom(n, 3, xrand.New(seed))
		}},
		{Name: "caterpillar", Build: func(n int, _ uint64) *graph.Graph {
			return graph.Caterpillar(n/9, 8)
		}, Det: true},
	}
}

// e04Specs is E4's declaration — one scaling sweep per family — shared with
// the scenario golden tests.
func e04Specs() []ScalingSpec {
	var specs []ScalingSpec
	for _, fam := range e04Families() {
		specs = append(specs, ScalingSpec{
			Title:       "E4: 2-state on " + fam.Name,
			Kind:        KindTwoState,
			Family:      fam,
			Sizes:       []int{1024, 4096, 16384, 65536},
			TrialsBase:  60,
			ClaimNotes:  []string{"claim shape: mean/ln n ≈ constant"},
			PolylogNote: true,
		})
	}
	return specs
}

func e05MaxDegree() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "2-state MIS vs maximum degree Δ",
		Claim: "Theorem 12: at most O(Δ·log n) w.h.p. on any graph of maximum degree Δ",
		Run: func(cfg Config) []Table {
			cfg = cfg.normalized()
			const n = 2048
			degrees := cfg.sizes([]int{4, 8, 16, 32, 64, 128})
			trials := cfg.trials(60)
			t := Table{
				Title:   fmt.Sprintf("E5: d-regular random graphs, n = %d", n),
				Columns: []string{"Δ", "mean", "±95%", "max", "max/(Δ·ln n)", "status"},
			}
			ln := math.Log(n)
			worstRatio := 0.0
			for _, d := range degrees {
				gen := func(seed uint64) *graph.Graph {
					return graph.RandomRegular(n, d, xrand.New(seed))
				}
				m := RunTrials(cfg, KindTwoState, PerSeed(gen), trials, 0, cfg.Seed+uint64(d))
				if m.Count() == 0 {
					t.AddRow(d, "-", "-", "-", "-", fmt.Sprintf("%d/%d FAILED", m.failures, m.trials))
					continue
				}
				s := m.Summary()
				ratio := s.Max / (float64(d) * ln)
				if ratio > worstRatio {
					worstRatio = ratio
				}
				status := "ok"
				if m.failures > 0 {
					status = fmt.Sprintf("%d capped", m.failures)
				}
				t.AddRow(d, s.Mean, s.MeanCI95(), s.Max, ratio, status)
			}
			t.Notes = append(t.Notes,
				fmt.Sprintf("claim shape: max/(Δ·ln n) bounded by a constant across Δ; worst observed %.3f (bound holds when ≤ O(1))", worstRatio),
				"the bound is an upper bound; on regular random graphs stabilization is typically far faster than Δ·ln n")
			return []Table{t}
		},
	}
}

package experiment

import (
	"reflect"
	"strings"
	"testing"

	"ssmis/internal/batch"
)

func TestRegistryCompleteAndOrdered(t *testing.T) {
	exps := Registry()
	if len(exps) != 19 {
		t.Fatalf("registry has %d experiments, want 19", len(exps))
	}
	for i, e := range exps {
		wantID := "E" + itoa(i+1)
		if e.ID != wantID {
			t.Fatalf("experiment %d has ID %s, want %s", i, e.ID, wantID)
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("%s is missing metadata", e.ID)
		}
	}
}

func itoa(v int) string {
	if v >= 10 {
		return string(rune('0'+v/10)) + string(rune('0'+v%10))
	}
	return string(rune('0' + v))
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E7"); !ok {
		t.Fatal("E7 not found")
	}
	if _, ok := ByID("e12"); !ok {
		t.Fatal("lookup not case-insensitive")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("unknown ID found")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := Table{Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("x,y", 10000.0)
	tab.Notes = append(tab.Notes, "a note")
	out := tab.Render()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "note: a note") {
		t.Fatalf("render malformed:\n%s", out)
	}
	csv := tab.CSV()
	if !strings.Contains(csv, "a,bb\n") || !strings.Contains(csv, `"x,y"`) {
		t.Fatalf("csv malformed:\n%s", csv)
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{}.normalized()
	if c.Scale != 1 || c.Seed == 0 {
		t.Fatalf("zero config normalized to %+v", c)
	}
	c = Config{Scale: 100, Seed: 5}.normalized()
	if c.Scale != 4 {
		t.Fatal("scale not clamped")
	}
	if got := (Config{Scale: 1}).trials(10); got != 10 {
		t.Fatalf("trials at scale 1 = %d", got)
	}
	if got := (Config{Scale: 0.05}).trials(10); got != 3 {
		t.Fatalf("trials floor = %d, want 3", got)
	}
	sizes := Config{Scale: 0.25}.sizes([]int{1, 2, 3, 4})
	if len(sizes) != 2 {
		t.Fatalf("scaled sizes = %v", sizes)
	}
}

func TestKindString(t *testing.T) {
	if KindTwoState.String() != "2-state" || KindThreeColor.String() != "3-color" ||
		Kind(9).String() == "" {
		t.Fatal("Kind.String wrong")
	}
}

// Smoke-run every experiment at the minimum scale: each must produce at
// least one table with at least one row and no experiment may panic. This is
// the integration test of the whole harness; the full-scale numbers live in
// EXPERIMENTS.md.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke suite skipped in -short mode")
	}
	cfg := Config{Scale: 0.05, Seed: 7}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables := e.Run(cfg)
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tab := range tables {
				if tab.Title == "" || len(tab.Columns) == 0 {
					t.Fatalf("%s produced a malformed table", e.ID)
				}
				if len(tab.Rows) == 0 {
					t.Fatalf("%s table %q has no rows", e.ID, tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Fatalf("%s table %q row width %d != %d columns",
							e.ID, tab.Title, len(row), len(tab.Columns))
					}
				}
				_ = tab.Render()
				_ = tab.CSV()
			}
		})
	}
}

// The tables an experiment produces must be bit-identical whatever the
// shared pool's worker count: outcomes are delivered in trial order, so the
// streamed aggregates see the same sequence. Three representatives cover
// the three submission shapes (fixed-graph shard, per-seed shard, custom
// per-trial jobs).
func TestExperimentsDeterministicAcrossPools(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism sweep skipped in -short mode")
	}
	for _, id := range []string{"E2", "E9", "E15", "E19"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		run := func(workers int) []Table {
			pool := batch.NewPool(workers)
			defer pool.Close()
			return e.Run(Config{Scale: 0.05, Seed: 7, Pool: pool})
		}
		one := run(1)
		eight := run(8)
		if !reflect.DeepEqual(one, eight) {
			t.Fatalf("%s: tables differ between workers=1 and workers=8:\n%+v\nvs\n%+v", id, one, eight)
		}
	}
}

func TestCellLogRecords(t *testing.T) {
	e, ok := ByID("E2")
	if !ok {
		t.Fatal("E2 missing")
	}
	log := &CellLog{}
	e.Run(Config{Scale: 0.05, Seed: 7, Cells: log})
	cells := log.Cells()
	if len(cells) == 0 {
		t.Fatal("no cells recorded")
	}
	for _, c := range cells {
		if c.Label == "" || c.Jobs <= 0 || c.Elapsed < 0 {
			t.Fatalf("malformed cell %+v", c)
		}
	}
}

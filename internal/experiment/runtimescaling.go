package experiment

// The runtime-scaling sweep shape: a stabilization-time scaling table like
// RunScalingSweep, but executed on one of the alternative runtimes — the
// goroutine-per-node beeping or stone-age medium (internal/noderun program
// sets) or the asynchronous drifting-clock medium (internal/async). Scenario
// "scaling" units with a non-sync runtime compile to this runner; the
// hand-coded experiments keep their own bespoke runtime tables (E12, E19),
// which measure equivalence rather than scaling.

import (
	"fmt"

	"ssmis/internal/async"
	"ssmis/internal/batch"
	"ssmis/internal/beeping"
	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/stoneage"
	"ssmis/internal/verify"
)

// Runtime names a process execution medium.
type Runtime int

// Execution media.
const (
	// RuntimeSync is the array simulator (internal/mis on the shared
	// engine) — the default measurement path.
	RuntimeSync Runtime = iota
	// RuntimeBeeping is the goroutine-per-node beeping medium (2-state
	// only: the 3-state and 3-color rules need the stone-age channels).
	RuntimeBeeping
	// RuntimeStoneAge is the goroutine-per-node stone-age medium (3-state
	// and 3-color).
	RuntimeStoneAge
	// RuntimeAsync is the drifting-clock asynchronous medium (2-state and
	// 3-state); requires a Drift model.
	RuntimeAsync
)

func (r Runtime) String() string {
	switch r {
	case RuntimeSync:
		return "sync"
	case RuntimeBeeping:
		return "beeping"
	case RuntimeStoneAge:
		return "stone-age"
	case RuntimeAsync:
		return "async"
	default:
		return fmt.Sprintf("Runtime(%d)", int(r))
	}
}

// RuntimeSupports reports whether the runtime can execute the process kind:
// the beeping medium carries only the 2-state rule's single beep channel,
// the stone-age medium only the multi-channel 3-state/3-color rules, and
// the asynchronous medium implements the 2-state and 3-state program sets.
func RuntimeSupports(r Runtime, k Kind) bool {
	switch r {
	case RuntimeSync:
		return true
	case RuntimeBeeping:
		return k == KindTwoState
	case RuntimeStoneAge:
		return k == KindThreeState || k == KindThreeColor
	case RuntimeAsync:
		return k == KindTwoState || k == KindThreeState
	default:
		return false
	}
}

// RuntimeScalingSpec declares one scaling table on an alternative runtime.
// The table shape (columns, seed derivation, probe-at-seed-1 sizing, note
// order) matches ScalingSpec so sync and non-sync units render uniformly.
type RuntimeScalingSpec struct {
	// Title is the rendered table title.
	Title string
	// Runtime selects the medium (must not be RuntimeSync — sync units are
	// ScalingSpec's job and keep the Measurement fast path).
	Runtime Runtime
	// Drift is the clock-drift model; required for RuntimeAsync, ignored
	// otherwise.
	Drift async.Drift
	// Kind selects the process family; must satisfy RuntimeSupports.
	Kind Kind
	// Family generates the graphs.
	Family GraphFamily
	// Sizes is the full size ladder; Config.Scale may drop the tail.
	Sizes []int
	// TrialsBase is the trial count at scale 1.
	TrialsBase int
	// RoundCap bounds each run; <= 0 uses the medium's default (the
	// simulator round cap, with 8x slack under async drift).
	RoundCap int
	// SeedOffset shifts the cell master seeds exactly as ScalingSpec does.
	SeedOffset uint64
	// ClaimNotes are appended to the table verbatim, before the fit note.
	ClaimNotes []string
	// PolylogNote appends the T ≈ c·ln^k n fit note over the per-size means.
	PolylogNote bool
}

// RunRuntimeScaling executes the spec against the configuration's shared
// pool and renders its table. Goroutine-per-node and async runs cannot lease
// the engine's per-worker contexts, so each trial owns its medium; the pool
// still spreads trials across workers.
func RunRuntimeScaling(cfg Config, spec RuntimeScalingSpec) Table {
	cfg = cfg.normalized()
	sizes := cfg.sizes(spec.Sizes)
	trials := cfg.trials(spec.TrialsBase)
	t := Table{Title: spec.Title, Columns: ScalingColumns()}
	var ns []int
	var means []float64
	type runtimeOutcome struct {
		rounds int
		failed bool
		broken bool
	}
	for _, n := range sizes {
		probe := spec.Family.Build(n, 1)
		actualN := probe.N()
		m := NewMeasurement(trials)
		RunJobs(cfg, fmt.Sprintf("%s n=%d", spec.Title, n), trials, cfg.Seed+spec.SeedOffset+uint64(n),
			func(_ *engine.RunContext, _ int, seed uint64) any {
				g := probe
				if !spec.Family.Det {
					g = spec.Family.Build(n, seed)
				}
				rounds, ok, black := runOnRuntime(spec, g, seed)
				switch {
				case !ok:
					return runtimeOutcome{failed: true}
				case verify.MIS(g, black) != nil:
					return runtimeOutcome{broken: true}
				}
				return runtimeOutcome{rounds: rounds}
			},
			func(_ int, payload any) {
				o := payload.(runtimeOutcome)
				m.Add(batch.Outcome{Failed: o.failed, Broken: o.broken, Rounds: o.rounds})
			})
		ScalingRow(&t, actualN, m)
		if m.Count() > 0 {
			ns = append(ns, actualN)
			means = append(means, m.Summary().Mean)
		}
	}
	t.Notes = append(t.Notes, spec.ClaimNotes...)
	if spec.PolylogNote {
		t.Notes = append(t.Notes, PolylogNote(ns, means))
	}
	return t
}

// runOnRuntime executes one trial on the spec's medium and returns the
// stabilization round count, success, and the terminal color projection.
func runOnRuntime(spec RuntimeScalingSpec, g *graph.Graph, seed uint64) (int, bool, func(int) bool) {
	limit := spec.RoundCap
	switch spec.Runtime {
	case RuntimeBeeping:
		if limit <= 0 {
			limit = 4 * mis.DefaultRoundCap(g.N())
		}
		m := beeping.NewMIS(g, seed, nil)
		defer m.Close()
		r, ok := m.Run(limit)
		return r, ok, m.Black
	case RuntimeStoneAge:
		if limit <= 0 {
			limit = 4 * mis.DefaultRoundCap(g.N())
		}
		if spec.Kind == KindThreeColor {
			m := stoneage.NewThreeColorMIS(g, seed, nil, nil)
			defer m.Close()
			r, ok := m.Run(limit)
			return r, ok, m.Black
		}
		m := stoneage.NewThreeStateMIS(g, seed, nil)
		defer m.Close()
		r, ok := m.Run(limit)
		return r, ok, m.Black
	case RuntimeAsync:
		if limit <= 0 {
			limit = 8 * mis.DefaultRoundCap(g.N())
		}
		if spec.Kind == KindThreeState {
			m := async.NewThreeStateMIS(g, seed, spec.Drift, nil)
			r, ok := m.Run(limit)
			return r, ok, m.Black
		}
		m := async.NewMIS(g, seed, spec.Drift, nil)
		r, ok := m.Run(limit)
		return r, ok, m.Black
	default:
		panic(fmt.Sprintf("experiment: RunRuntimeScaling on runtime %v", spec.Runtime))
	}
}

package experiment

// The fault-matrix sweep shape: a stabilized process is attacked by each
// state-corruption adversary (internal/fault) and the rounds to re-stabilize
// are measured, one row per (process, adversary) pair. This is the core of
// E11b extracted as a declarative spec so scenario "fault" units run the
// same corruption/recovery cells the hand-coded experiment does.

import (
	"fmt"
	"strings"

	"ssmis/internal/engine"
	"ssmis/internal/fault"
	"ssmis/internal/mis"
	"ssmis/internal/stats"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

// FaultAdversaryNames lists the corruption adversaries by canonical name,
// in presentation order.
func FaultAdversaryNames() []string {
	names := make([]string, 0, len(fault.AllAdversaries()))
	for _, a := range fault.AllAdversaries() {
		names = append(names, a.String())
	}
	return names
}

// FaultAdversaryByName resolves a canonical adversary name.
func FaultAdversaryByName(name string) (fault.Adversary, error) {
	for _, a := range fault.AllAdversaries() {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("experiment: unknown fault adversary %q (valid: %s)",
		name, strings.Join(FaultAdversaryNames(), ", "))
}

// FaultMatrixSpec declares one corruption/recovery matrix table.
type FaultMatrixSpec struct {
	// TitleFormat renders the table title; it receives the resolved vertex
	// count and the corruption size k (two %d-style verbs in that order).
	TitleFormat string
	// Label prefixes the scheduler cell labels.
	Label string
	// Kinds lists the processes to attack.
	Kinds []Kind
	// Family generates the (per-seed) graphs at order N.At(scale).
	Family GraphFamily
	// N is the scale-dependent problem size.
	N ScaledSize
	// CorruptFraction sizes the attack: k = max(1, CorruptFraction·n).
	CorruptFraction float64
	// TrialsBase is the per-row trial count at scale 1.
	TrialsBase int
	// Adversaries lists the corruption adversaries by name; nil selects all.
	Adversaries []string
	// SeedOffset shifts the cell master seeds (cfg.Seed + SeedOffset).
	SeedOffset uint64
	// Notes are appended to the table verbatim.
	Notes []string
}

// RunFaultMatrix executes the spec against the configuration's shared pool
// and renders the matrix table. Each trial stabilizes a fresh run, injects
// the corruption, and measures the rounds until the process re-stabilizes
// to a verified MIS (E11b's cell, with the fresh run's round budget 8x the
// simulator default to absorb adversarial initializations).
func RunFaultMatrix(cfg Config, spec FaultMatrixSpec) Table {
	cfg = cfg.normalized()
	trials := cfg.trials(spec.TrialsBase)
	n := spec.N.At(cfg.Scale)
	k := int(spec.CorruptFraction * float64(n))
	if k < 1 {
		k = 1
	}
	advNames := spec.Adversaries
	if advNames == nil {
		advNames = FaultAdversaryNames()
	}
	t := Table{
		Title:   fmt.Sprintf(spec.TitleFormat, n, k),
		Columns: []string{"process", "adversary", "recovery mean", "recovery max", "recovered"},
	}
	type recOutcome struct {
		rounds float64
		ok     bool
	}
	for _, kind := range spec.Kinds {
		for _, advName := range advNames {
			adv, err := FaultAdversaryByName(advName)
			if err != nil {
				panic(err)
			}
			recRounds := stats.NewStream()
			failed := 0
			RunJobs(cfg, fmt.Sprintf("%s %v/%v", spec.Label, kind, adv), trials, cfg.Seed+spec.SeedOffset,
				func(rc *engine.RunContext, trial int, seed uint64) any {
					g := spec.Family.Build(n, seed)
					p := NewProcess(kind, g, cfg.procOpts(mis.WithRunContext(rc), mis.WithSeed(seed))...)
					if !mis.Run(p, 8*mis.DefaultRoundCap(g.N())).Stabilized {
						return recOutcome{}
					}
					c := fault.Wrap(p)
					attackRng := xrand.New(cfg.Seed + spec.SeedOffset).Split(uint64(9000 + trial))
					res := fault.Attack(c, adv, k, attackRng, 8*mis.DefaultRoundCap(g.N()))
					if !res.Recovered || verify.MIS(g, c.Black) != nil {
						return recOutcome{}
					}
					return recOutcome{rounds: float64(res.RecoveryRounds), ok: true}
				},
				func(_ int, payload any) {
					o := payload.(recOutcome)
					if !o.ok {
						failed++
						return
					}
					recRounds.Add(o.rounds)
				})
			if recRounds.N() == 0 {
				t.AddRow(kind.String(), advName, "-", "-", fmt.Sprintf("0/%d FAILED", trials))
				continue
			}
			t.AddRow(kind.String(), advName, recRounds.Mean(), recRounds.Max(),
				fmt.Sprintf("%d/%d", trials-failed, trials))
		}
	}
	t.Notes = append(t.Notes, spec.Notes...)
	return t
}

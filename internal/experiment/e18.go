package experiment

// Experiment E18: the randomized processes under daemon schedules. The
// paper (§1, Appendix A) presents the 2-state process as the randomized
// synchronous parallelization of the sequential self-stabilizing MIS rule
// of [28, 20], and cites the result that randomizing the moves restores
// stabilization with probability 1 under any daemon. The shared engine's
// daemon mode lets us measure this directly — and exposes a sharp contrast
// the paper does not dwell on: the 3-state rule's demotion is reactive, so
// an unfair (adversarial central) daemon can starve it into a livelock.
//
// The measurement itself is the shared daemon-matrix sweep shape
// (daemonmatrix.go); this file only supplies E18's spec, so a scenario
// file declaring the same spec reproduces this table byte for byte.

import (
	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

// e18Spec is E18's daemon-matrix declaration, shared with the golden tests
// that pin the scenario re-expression against it.
func e18Spec() DaemonMatrixSpec {
	return DaemonMatrixSpec{
		TitleFormat: "E18: daemon-scheduled stabilization, G(n, avg8), n=%d, %d trials",
		Label:       "E18",
		Family: GraphFamily{
			Name: "gnp-avg",
			Build: func(n int, seed uint64) *graph.Graph {
				return graph.GnpAvgDegree(n, 8, xrand.New(seed))
			},
		},
		N:              ScaledSize{Base: 512, Min: 128},
		TrialsBase:     20,
		Kinds:          []Kind{KindTwoState, KindThreeState},
		KindSeedOffset: 18,
		Sequential:     true,
		SeqSeedOffset:  81,
		Notes: []string{
			"2-state stabilizes under every daemon incl. adversarial (the [28,31] claim); ~1 move/vertex under central daemons",
			"3-state livelocks under central-adversarial: its black0→white demotion is reactive and the starved neighbor never fires",
			"the livelock exists only at k=∞: the k-fair:4 row (adversarial within a 4-step fairness window) restores 3-state stabilization — boundary pinned by internal/mis's daemon fairness tests",
			"seq-det rows: the sequential deterministic rule stabilizes in ≤ 2 moves/vertex under central daemons ([28, 20]) but livelocks under the synchronous daemon — the reason the parallel process randomizes; seq-rand restores stabilization under every daemon, side-by-side with its parallelization (the 2-state rows)",
		},
	}
}

func e18DaemonSchedules() Experiment {
	return Experiment{
		ID:    "E18",
		Title: "Randomized processes under daemon schedules",
		Claim: "§1/Appendix A (after [28, 31]): randomizing the sequential MIS rule's moves restores stabilization with probability 1 under any daemon; under the synchronous daemon the randomized rule is the 2-state process. Contrast: the 3-state rule's reactive demotion livelocks under the adversarial central daemon",
		Run: func(cfg Config) []Table {
			return []Table{RunDaemonMatrix(cfg, e18Spec())}
		},
	}
}

package experiment

// Experiment E18: the randomized processes under daemon schedules. The
// paper (§1, Appendix A) presents the 2-state process as the randomized
// synchronous parallelization of the sequential self-stabilizing MIS rule
// of [28, 20], and cites the result that randomizing the moves restores
// stabilization with probability 1 under any daemon. The shared engine's
// daemon mode lets us measure this directly — and exposes a sharp contrast
// the paper does not dwell on: the 3-state rule's demotion is reactive, so
// an unfair (adversarial central) daemon can starve it into a livelock.

import (
	"fmt"
	"math"

	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/sched"
	"ssmis/internal/stats"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

func e18DaemonSchedules() Experiment {
	return Experiment{
		ID:    "E18",
		Title: "Randomized processes under daemon schedules",
		Claim: "§1/Appendix A (after [28, 31]): randomizing the sequential MIS rule's moves restores stabilization with probability 1 under any daemon; under the synchronous daemon the randomized rule is the 2-state process. Contrast: the 3-state rule's reactive demotion livelocks under the adversarial central daemon",
		Run: func(cfg Config) []Table {
			cfg = cfg.normalized()
			trials := cfg.trials(20)
			n := int(512 * math.Min(cfg.Scale*2, 1))
			if n < 128 {
				n = 128
			}
			gen := func(seed uint64) *graph.Graph {
				return graph.GnpAvgDegree(n, 8, xrand.New(seed))
			}
			t := Table{
				Title: fmt.Sprintf("E18: daemon-scheduled stabilization, G(n, avg8), n=%d, %d trials", n, trials),
				Columns: []string{"process", "daemon", "moves/vertex mean", "moves/vertex max",
					"steps mean", "stabilized"},
			}
			type procCase struct {
				kind Kind
				mk   func(g *graph.Graph, seed uint64) mis.DaemonRunner
			}
			cases := []procCase{
				{KindTwoState, func(g *graph.Graph, seed uint64) mis.DaemonRunner {
					return mis.NewTwoState(g, mis.WithSeed(seed))
				}},
				{KindThreeState, func(g *graph.Graph, seed uint64) mis.DaemonRunner {
					return mis.NewThreeState(g, mis.WithSeed(seed))
				}},
			}
			for _, pc := range cases {
				for _, dname := range sched.DaemonNames() {
					movesPerV, steps := stats.NewStream(), stats.NewStream()
					failed := 0
					// The known livelock case would burn the full step cap on
					// every trial; keep one cheap demonstration row instead.
					livelock := pc.kind == KindThreeState && dname == "central-adversarial"
					rowTrials := trials
					if livelock {
						rowTrials = 3
					}
					// One pool job per trial (daemon runs are long chains of
					// tiny steps — exactly the cells that profit from spreading
					// across the pool).
					type daemonOutcome struct {
						movesPerV, steps float64
						ok               bool
					}
					runJobs(cfg, fmt.Sprintf("E18 %v/%s", pc.kind, dname), rowTrials, cfg.Seed+18,
						func(_ *engine.RunContext, _ int, seed uint64) any {
							g := gen(seed)
							d, err := sched.DaemonByName(dname)
							if err != nil {
								panic(err)
							}
							p := pc.mk(g, seed)
							stepCap := mis.DefaultDaemonStepCap(g.N())
							if livelock {
								stepCap = 200 * g.N()
							}
							st, ok := p.DaemonRun(d, stepCap)
							if !ok || verify.MIS(g, p.Black) != nil {
								return daemonOutcome{}
							}
							return daemonOutcome{
								movesPerV: float64(p.Moves()) / float64(g.N()),
								steps:     float64(st),
								ok:        true,
							}
						},
						func(_ int, payload any) {
							o := payload.(daemonOutcome)
							if !o.ok {
								failed++
								return
							}
							movesPerV.Add(o.movesPerV)
							steps.Add(o.steps)
						})
					if movesPerV.N() == 0 {
						status := fmt.Sprintf("0/%d", rowTrials)
						if livelock {
							status += " (livelock)"
						}
						t.AddRow(pc.kind.String(), dname, "-", "-", "-", status)
						continue
					}
					status := fmt.Sprintf("%d/%d", rowTrials-failed, rowTrials)
					t.AddRow(pc.kind.String(), dname, movesPerV.Mean(), movesPerV.Max(), steps.Mean(), status)
				}
			}
			// The sequential baseline the paper parallelizes ([28, 20]),
			// deterministic and randomized, under the same daemon set —
			// side-by-side moves/vertex against the parallel processes
			// (ROADMAP "sequential baseline's full daemon matrix").
			type seqCase struct {
				name       string
				randomized bool
				// livelock marks the known non-stabilizing daemon: the
				// deterministic rule under the synchronous daemon (two
				// adjacent actives flip together forever) — the reason the
				// parallel process must randomize. A cheap demonstration row
				// replaces burning the full step cap every trial.
				livelock map[string]bool
			}
			seqCases := []seqCase{
				{name: "seq-det [28,20]", livelock: map[string]bool{"synchronous": true}},
				{name: "seq-rand [28,31]", randomized: true},
			}
			for _, sc := range seqCases {
				for _, dname := range sched.DaemonNames() {
					movesPerV, steps := stats.NewStream(), stats.NewStream()
					failed := 0
					livelock := sc.livelock[dname]
					rowTrials := trials
					if livelock {
						rowTrials = 3
					}
					type daemonOutcome struct {
						movesPerV, steps float64
						ok               bool
					}
					runJobs(cfg, fmt.Sprintf("E18 %s/%s", sc.name, dname), rowTrials, cfg.Seed+81,
						func(_ *engine.RunContext, _ int, seed uint64) any {
							g := gen(seed)
							d, err := sched.DaemonByName(dname)
							if err != nil {
								panic(err)
							}
							var opts []sched.Option
							if sc.randomized {
								opts = append(opts, sched.Randomized())
							}
							s := sched.NewSequential(g, d, seed, opts...)
							stepCap := mis.DefaultDaemonStepCap(g.N())
							if livelock {
								// A synchronous step is a full round; the
								// round-cap scale suffices to exhibit it.
								stepCap = 4 * mis.DefaultRoundCap(g.N())
							}
							st, ok := s.Run(stepCap)
							if !ok || verify.MIS(g, s.Black) != nil {
								return daemonOutcome{}
							}
							return daemonOutcome{
								movesPerV: float64(s.Moves()) / float64(g.N()),
								steps:     float64(st),
								ok:        true,
							}
						},
						func(_ int, payload any) {
							o := payload.(daemonOutcome)
							if !o.ok {
								failed++
								return
							}
							movesPerV.Add(o.movesPerV)
							steps.Add(o.steps)
						})
					if movesPerV.N() == 0 {
						status := fmt.Sprintf("0/%d", rowTrials)
						if livelock {
							status += " (livelock)"
						}
						t.AddRow(sc.name, dname, "-", "-", "-", status)
						continue
					}
					status := fmt.Sprintf("%d/%d", rowTrials-failed, rowTrials)
					t.AddRow(sc.name, dname, movesPerV.Mean(), movesPerV.Max(), steps.Mean(), status)
				}
			}
			t.Notes = append(t.Notes,
				"2-state stabilizes under every daemon incl. adversarial (the [28,31] claim); ~1 move/vertex under central daemons",
				"3-state livelocks under central-adversarial: its black0→white demotion is reactive and the starved neighbor never fires",
				"the livelock exists only at k=∞: the k-fair:4 row (adversarial within a 4-step fairness window) restores 3-state stabilization — boundary pinned by internal/mis's daemon fairness tests",
				"seq-det rows: the sequential deterministic rule stabilizes in ≤ 2 moves/vertex under central daemons ([28, 20]) but livelocks under the synchronous daemon — the reason the parallel process randomizes; seq-rand restores stabilization under every daemon, side-by-side with its parallelization (the 2-state rows)",
			)
			return []Table{t}
		},
	}
}

package experiment

// Shared sweep shapes: the declarative cores of the hand-coded experiments,
// extracted so compiled scenarios (internal/scenario) and the E-registry
// run the SAME code over the SAME batch-pool path. A scenario that
// reproduces an experiment's spec produces byte-identical tables — the
// golden tests in internal/scenario and the CI scenario-vs-experiment
// sweep smoke pin that equality for E1, E4 and E18.

import (
	"fmt"
	"math"

	"ssmis/internal/graph"
	"ssmis/internal/stats"
)

// GraphFamily is a named, seedable graph constructor: Build(n, seed) draws
// the family's instance of requested order n. Deterministic families ignore
// the seed; their cells submit as fixed shards so the batch scheduler
// builds the graph once instead of once per trial.
type GraphFamily struct {
	// Name identifies the family in reports and scenario files.
	Name string
	// Build constructs the instance for one (order, seed) pair. The
	// realized order may differ from n (e.g. caterpillars round to a whole
	// number of spine segments); sweeps report the realized order.
	Build func(n int, seed uint64) *graph.Graph
	// Det marks deterministic families (Build ignores its seed).
	Det bool
}

// Gen adapts the family at order n to a cell's graph generator: fixed for
// deterministic families (one shared build), per-seed otherwise.
func (f GraphFamily) Gen(n int) GraphGen {
	if f.Det {
		return FixedGraph(f.Build(n, 1))
	}
	return PerSeed(func(seed uint64) *graph.Graph { return f.Build(n, seed) })
}

// ScalingSpec declares one stabilization-time scaling table: a process
// swept over a size ladder of one graph family, with the standard scaling
// columns and claim-check notes. This is the shape of E1, E4 (one spec per
// family) and of scenario "scaling" units.
type ScalingSpec struct {
	// Title is the rendered table title.
	Title string
	// Kind selects the process family.
	Kind Kind
	// Family generates the graphs.
	Family GraphFamily
	// Sizes is the full size ladder; Config.Scale may drop the tail.
	Sizes []int
	// TrialsBase is the trial count at scale 1.
	TrialsBase int
	// RoundCap bounds each run; <= 0 uses mis.DefaultRoundCap.
	RoundCap int
	// SeedOffset shifts the cell master seeds: the cell at ladder size n
	// uses cfg.Seed + SeedOffset + n.
	SeedOffset uint64
	// ClaimNotes are appended to the table verbatim, before the fit notes.
	ClaimNotes []string
	// PolylogNote appends the T ≈ c·ln^k n fit note over the per-size means.
	PolylogNote bool
	// MaxFitNote, when non-empty, is a format string receiving the fitted
	// ln-exponent of the per-size maxima (one %.2f-style verb); the note is
	// emitted only when at least two sizes succeeded.
	MaxFitNote string
	// Tail, when non-nil, adds a geometric-tail table over the largest
	// ladder size's round samples.
	Tail *TailSpec
}

// TailSpec declares a geometric-tail table: the empirical P[T ≥ k·log2 n]
// ladder on one sample set, with the linear-decay slope note (E1b's shape).
type TailSpec struct {
	// Title is the rendered table title.
	Title string
	// KMax is the largest tail multiple reported (rows k = 1..KMax).
	KMax int
}

// RunScalingSweep executes the spec against the configuration's shared pool
// and renders its table (plus the tail table when requested).
func RunScalingSweep(cfg Config, spec ScalingSpec) []Table {
	cfg = cfg.normalized()
	sizes := cfg.sizes(spec.Sizes)
	trials := cfg.trials(spec.TrialsBase)
	t := Table{Title: spec.Title, Columns: ScalingColumns()}
	var ns []int
	var means, maxes []float64
	var tailSample []float64
	for _, n := range sizes {
		probe := spec.Family.Build(n, 1)
		actualN := probe.N()
		gen := PerSeed(func(seed uint64) *graph.Graph { return spec.Family.Build(n, seed) })
		if spec.Family.Det {
			gen = FixedGraph(probe)
		}
		m := RunTrials(cfg, spec.Kind, gen, trials, spec.RoundCap, cfg.Seed+spec.SeedOffset+uint64(n))
		ScalingRow(&t, actualN, m)
		if m.Count() > 0 {
			ns = append(ns, actualN)
			means = append(means, m.Summary().Mean)
			maxes = append(maxes, m.Summary().Max)
			if spec.Tail != nil && n == sizes[len(sizes)-1] {
				tailSample = m.RoundsValues()
			}
		}
	}
	t.Notes = append(t.Notes, spec.ClaimNotes...)
	if spec.PolylogNote {
		t.Notes = append(t.Notes, PolylogNote(ns, means))
	}
	if spec.MaxFitNote != "" && len(ns) >= 2 {
		fn := make([]float64, len(ns))
		for i, n := range ns {
			fn[i] = float64(n)
		}
		_, kMax, _ := stats.PolylogFit(fn, maxes)
		t.Notes = append(t.Notes, fmt.Sprintf(spec.MaxFitNote, kMax))
	}
	tables := []Table{t}
	if spec.Tail != nil {
		tables = append(tables, GeometricTailTable(*spec.Tail, sizes[len(sizes)-1], tailSample))
	}
	return tables
}

// GeometricTailTable renders the empirical tail P[T ≥ k·log2 n] of one
// sample set for k = 1..KMax, with the fitted decay-slope note. n is the
// requested ladder size the sample was drawn at.
func GeometricTailTable(spec TailSpec, n int, sample []float64) Table {
	t := Table{
		Title:   spec.Title,
		Columns: []string{"k", "P[T ≥ k·log2 n]"},
	}
	if len(sample) > 0 {
		scale := math.Log2(float64(n))
		for k := 1; k <= spec.KMax; k++ {
			cnt := 0
			for _, x := range sample {
				if x >= float64(k)*scale {
					cnt++
				}
			}
			t.AddRow(k, float64(cnt)/float64(len(sample)))
		}
		slope, points := stats.GeometricTailSlope(sample, scale, 5)
		t.Notes = append(t.Notes,
			fmt.Sprintf("claim shape: log2 of the tail decays linearly in k; fitted slope %.2f over %d points (Θ(1) expected)",
				slope, points))
	}
	return t
}

// ScaledSize is the harness's standard scale-dependent problem size:
// At(scale) = Base·min(2·scale, 1), clamped below at Min. E10, E18 and E19
// all size their fixed-n workloads this way.
type ScaledSize struct {
	Base int
	Min  int
}

// At resolves the size for one configuration scale.
func (s ScaledSize) At(scale float64) int {
	n := int(float64(s.Base) * math.Min(scale*2, 1))
	if n < s.Min {
		n = s.Min
	}
	return n
}

package experiment

import (
	"fmt"
	"strings"

	"ssmis/internal/graph"
	"ssmis/internal/mis"
)

// Kind selects a process family.
type Kind int

// Process families.
const (
	KindTwoState Kind = iota + 1
	KindThreeState
	KindThreeColor
)

func (k Kind) String() string {
	switch k {
	case KindTwoState:
		return "2-state"
	case KindThreeState:
		return "3-state"
	case KindThreeColor:
		return "3-color"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists the process families in presentation order.
func Kinds() []Kind { return []Kind{KindTwoState, KindThreeState, KindThreeColor} }

// KindNames lists the canonical process-family names (the String forms).
func KindNames() []string {
	names := make([]string, 0, 3)
	for _, k := range Kinds() {
		names = append(names, k.String())
	}
	return names
}

// ParseKind is the inverse of Kind.String. It accepts the canonical
// hyphenated names ("2-state") and, for CLI convenience, the compact
// spellings the misrun -proc flag has always used ("2state"); anything else
// errors with the list of valid names.
func ParseKind(name string) (Kind, error) {
	switch strings.ReplaceAll(strings.TrimSpace(name), "-", "") {
	case "2state":
		return KindTwoState, nil
	case "3state":
		return KindThreeState, nil
	case "3color":
		return KindThreeColor, nil
	}
	return 0, fmt.Errorf("experiment: unknown process kind %q (valid: %s)",
		name, strings.Join(KindNames(), ", "))
}

// NewProcess instantiates a process of the given kind.
func NewProcess(k Kind, g *graph.Graph, opts ...mis.Option) mis.Process {
	switch k {
	case KindTwoState:
		return mis.NewTwoState(g, opts...)
	case KindThreeState:
		return mis.NewThreeState(g, opts...)
	case KindThreeColor:
		return mis.NewThreeColor(g, opts...)
	default:
		panic(fmt.Sprintf("experiment: unknown kind %v", k))
	}
}

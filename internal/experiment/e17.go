package experiment

// Experiment E17: synchronized restarts vs unsynchronized self-repair. The
// paper's related work notes that the restart-based self-stabilizing MIS of
// [12] is "fast only on graphs whose diameter is bounded by a known
// constant D". Our RestartMIS reconstruction (see internal/baseline) makes
// the mechanism measurable: a RandPhase(D=3) clock triggers global restarts
// of a non-self-stabilizing one-bit Luby computation. On diameter-≤2 graphs
// the clock synchronizes and phases are clean; on long paths restart waves
// desynchronize and neighbors restart each other mid-computation. The
// paper's 2-state process needs no synchronization and is oblivious to
// diameter.

import (
	"fmt"

	"ssmis/internal/baseline"
	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/stats"
	"ssmis/internal/xrand"
)

func e17RestartScheme() Experiment {
	return Experiment{
		ID:    "E17",
		Title: "Restart-based self-stabilization needs bounded diameter",
		Claim: "Appendix B on [12]: phase-clock restart schemes stabilize fast only when the graph diameter is bounded by the clock's D; the paper's processes have no such dependence",
		Run: func(cfg Config) []Table {
			cfg = cfg.normalized()
			trials := cfg.trials(20)
			workloads := []struct {
				name string
				gen  func(seed uint64) *graph.Graph
				diam string
			}{
				{"gnp-diam2", func(seed uint64) *graph.Graph {
					return graph.Gnp(128, 0.4, xrand.New(seed))
				}, "≤2"},
				{"grid-16x8", func(uint64) *graph.Graph {
					return graph.Grid(16, 8)
				}, "22"},
				{"path-128", func(uint64) *graph.Graph {
					return graph.Path(128)
				}, "127"},
			}
			t := Table{
				Title: "E17: rounds to a valid MIS — restart scheme (D=3 clock) vs 2-state process",
				Columns: []string{"graph", "diameter", "restart mean", "restart capped",
					"2-state mean", "ratio"},
			}
			const limit = 60000
			for _, w := range workloads {
				restartRounds, twoRounds := stats.NewStream(), stats.NewStream()
				capped := 0
				// One pool job per trial: the restart scheme and the 2-state
				// process race on the same sampled graph.
				type raceOutcome struct {
					restart, two    float64
					restartOK, two2 bool
				}
				RunJobs(cfg, "E17 restart "+w.name, trials, cfg.Seed+71,
					func(rc *engine.RunContext, _ int, seed uint64) any {
						g := w.gen(seed)
						r := baseline.NewRestartMIS(g, 3, 7, seed)
						rounds, ok := r.RunUntilValid(limit)
						p := mis.NewTwoState(g, mis.WithRunContext(rc), mis.WithSeed(seed))
						res := mis.Run(p, limit)
						return raceOutcome{
							restart: float64(rounds), restartOK: ok,
							two: float64(res.Rounds), two2: res.Stabilized,
						}
					},
					func(_ int, payload any) {
						o := payload.(raceOutcome)
						if o.restartOK {
							restartRounds.Add(o.restart)
						} else {
							capped++
						}
						if o.two2 {
							twoRounds.Add(o.two)
						}
					})
				if twoRounds.N() == 0 {
					continue
				}
				if restartRounds.N() == 0 {
					t.AddRow(w.name, w.diam, "-", fmt.Sprintf("%d/%d", capped, trials), twoRounds.Mean(), "-")
					continue
				}
				t.AddRow(w.name, w.diam, restartRounds.Mean(), fmt.Sprintf("%d/%d", capped, trials),
					twoRounds.Mean(), restartRounds.Mean()/twoRounds.Mean())
			}
			t.Notes = append(t.Notes,
				"claim shape: the restart scheme's cost explodes (or caps) as diameter grows past the clock's D, while the 2-state process barely notices",
				"RestartMIS is a didactic reconstruction of the restart mechanism of [12], not that paper's algorithm — see internal/baseline/restartmis.go")
			return []Table{t}
		},
	}
}

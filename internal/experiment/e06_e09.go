package experiment

// Experiments E6–E9: the paper's main technical results on G(n,p) — the
// 2-state process in the sparse and dense regimes (Theorem 2/19), the
// 3-color process across all densities including the hard middle regime
// (Theorem 3/32), the logarithmic switch properties (Lemma 27), and the
// good-graph properties (Lemma 18).

import (
	"fmt"
	"math"

	"ssmis/internal/engine"
	"ssmis/internal/goodgraph"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/phaseclock"
	"ssmis/internal/xrand"
)

// gnpRegime names a density regime p(n).
type gnpRegime struct {
	name string
	p    func(n int) float64
	note string
}

func sparseRegimes() []gnpRegime {
	return []gnpRegime{
		{"p=8/n", func(n int) float64 { return 8 / float64(n) }, "constant average degree"},
		{"p=√(ln n/n)", func(n int) float64 { return math.Sqrt(math.Log(float64(n)) / float64(n)) },
			"Theorem 2 boundary: p ≤ polylog(n)·n^{-1/2}"},
		{"p=ln²n/n", func(n int) float64 { return sq(math.Log(float64(n))) / float64(n) }, "polylog average degree"},
		{"p=0.25", func(int) float64 { return 0.25 }, "dense regime p ≥ 1/polylog(n)"},
	}
}

func hardRegimes() []gnpRegime {
	return []gnpRegime{
		{"p=n^-1/4", func(n int) float64 { return math.Pow(float64(n), -0.25) },
			"between the theorem's regimes: only the 3-color bound (Theorem 3) applies"},
		{"p=n^-1/3", func(n int) float64 { return math.Pow(float64(n), -1.0/3) }, "also uncovered by Theorem 2"},
	}
}

func sq(x float64) float64 { return x * x }

func e06GnpTwoState() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "2-state MIS on G(n,p), covered regimes",
		Claim: "Theorem 2/19: poly(log n) w.h.p. for p ≤ polylog(n)·n^{-1/2} and for p ≥ 1/polylog(n); O(log^5.5 n) concretely",
		Run: func(cfg Config) []Table {
			cfg = cfg.normalized()
			sizes := cfg.sizes([]int{512, 1024, 2048, 4096, 8192})
			trials := cfg.trials(40)
			var tables []Table
			for _, reg := range sparseRegimes() {
				t := Table{Title: "E6: 2-state on G(n, " + reg.name + ")", Columns: ScalingColumns()}
				var ns []int
				var means []float64
				for _, n := range sizes {
					p := reg.p(n)
					gen := func(seed uint64) *graph.Graph { return graph.Gnp(n, p, xrand.New(seed)) }
					m := RunTrials(cfg, KindTwoState, PerSeed(gen), trials, 0, cfg.Seed+uint64(n))
					ScalingRow(&t, n, m)
					if m.Count() > 0 {
						ns = append(ns, n)
						means = append(means, m.Summary().Mean)
					}
				}
				t.Notes = append(t.Notes, reg.note,
					"claim shape: polylog growth (small fitted exponent, near-zero power-law exponent)",
					PolylogNote(ns, means))
				tables = append(tables, t)
			}
			return tables
		},
	}
}

func e07GnpThreeColor() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "3-color MIS on G(n,p), all regimes incl. the hard middle",
		Claim: "Theorem 3/32: the 18-state 3-color process is poly(log n) (O(log^6 n)) w.h.p. for ALL 0 ≤ p ≤ 1",
		Run: func(cfg Config) []Table {
			cfg = cfg.normalized()
			// The 3-color switch cool-down (a·ln n rounds per gray cycle)
			// makes dense 8192-vertex runs cost ~20s each; the ladder stops
			// at 4096 so the full sweep stays in laptop-minutes.
			sizes := cfg.sizes([]int{512, 1024, 2048, 4096})
			trials := cfg.trials(30)
			var tables []Table
			regimes := append(hardRegimes(), sparseRegimes()[1], sparseRegimes()[3])
			for _, reg := range regimes {
				t := Table{
					Title: "E7: 2-state vs 3-color on G(n, " + reg.name + ")",
					Columns: []string{"n", "2st mean", "2st max", "3col mean", "3col max",
						"ratio mean", "status"},
				}
				var ns []int
				var means3 []float64
				for _, n := range sizes {
					p := reg.p(n)
					gen := func(seed uint64) *graph.Graph { return graph.Gnp(n, p, xrand.New(seed)) }
					m2 := RunTrials(cfg, KindTwoState, PerSeed(gen), trials, 0, cfg.Seed+uint64(n))
					m3 := RunTrials(cfg, KindThreeColor, PerSeed(gen), trials, 4*mis.DefaultRoundCap(n), cfg.Seed+uint64(n)+7)
					if m2.Count() == 0 || m3.Count() == 0 {
						t.AddRow(n, "-", "-", "-", "-", "-",
							fmt.Sprintf("capped 2st=%d 3col=%d", m2.failures, m3.failures))
						continue
					}
					s2, s3 := m2.Summary(), m3.Summary()
					status := "ok"
					if m2.failures+m3.failures > 0 {
						status = fmt.Sprintf("capped 2st=%d 3col=%d", m2.failures, m3.failures)
					}
					t.AddRow(n, s2.Mean, s2.Max, s3.Mean, s3.Max, s3.Mean/s2.Mean, status)
					ns = append(ns, n)
					means3 = append(means3, s3.Mean)
				}
				t.Notes = append(t.Notes, reg.note,
					"claim shape: 3-color stays polylog in every regime (Theorem 3); the 2-state column is the conjectured-but-unproven comparison",
					"3-color fit: "+PolylogNote(ns, means3))
				tables = append(tables, t)
			}
			return tables
		},
	}
}

func e08LogSwitch() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "Randomized logarithmic switch properties (S1)-(S3)",
		Claim: "Lemma 27: with ζ=2^-7 (a=512), OFF runs are ≤ a·ln n on any graph (S1); on diameter-≤2 graphs OFF runs are ≥ (a/6)·ln n after sync (S2) and ON runs are ≤ 3 (S3)",
		Run: func(cfg Config) []Table {
			cfg = cfg.normalized()
			const zetaLog2 = phaseclock.DefaultZetaLog2
			const a = phaseclock.SwitchA
			sizes := cfg.sizes([]int{64, 128, 256, 512})
			t := Table{
				Title: "E8: switch run lengths (diameter-2 G(n,0.5); horizon scales with a·ln n)",
				Columns: []string{"n", "a·ln n", "(a/6)·ln n", "max OFF", "min OFF*", "max ON",
					"S1", "S2", "S3"},
			}
			// One pool job per size; in-order delivery keeps the rows sorted.
			sizeSeeds := make([]uint64, len(sizes))
			for i, n := range sizes {
				sizeSeeds[i] = cfg.Seed + uint64(n)
			}
			type switchRow struct {
				n                     int
				lnN                   float64
				maxOff, minOff, maxOn int
				s1, s2, s3            bool
			}
			RunJobsOver(cfg, "E8 switch runs", sizeSeeds,
				func(_ *engine.RunContext, t int, seed uint64) any {
					n := sizes[t]
					rng := xrand.New(seed)
					g := graph.Gnp(n, 0.5, rng)
					diam2 := g.DiameterAtMostTwo()
					s := phaseclock.NewStandalone(g, seed, phaseclock.WithZetaLog2(zetaLog2))
					lnN := math.Log(float64(n))
					burnIn := 32
					for r := 0; r < burnIn; r++ {
						s.Step()
					}
					horizon := int(30 * a * lnN / 6)
					maxOff, minOff, maxOn := switchRunStats(s, 0, horizon)
					return switchRow{
						n: n, lnN: lnN, maxOff: maxOff, minOff: minOff, maxOn: maxOn,
						s1: float64(maxOff) <= a*lnN,
						s2: !diam2 || float64(minOff) >= a/6*lnN,
						s3: !diam2 || maxOn <= 3,
					}
				},
				func(_ int, payload any) {
					r := payload.(switchRow)
					t.AddRow(r.n, a*r.lnN, a/6*r.lnN, r.maxOff, r.minOff, r.maxOn,
						pass(r.s1), pass(r.s2), pass(r.s3))
				})
			t.Notes = append(t.Notes,
				"min OFF* excludes the first (possibly truncated) run; S2/S3 evaluated only when the sampled graph has diameter ≤ 2",
				"claim shape: all three columns marked pass")

			// S1 on a high-diameter graph (the property must hold on ANY graph).
			t2 := Table{
				Title:   "E8b: property (S1) on high-diameter graphs (path)",
				Columns: []string{"n", "a·ln n", "max OFF", "S1"},
			}
			pathSizes := cfg.sizes([]int{64, 256})
			pathSeeds := make([]uint64, len(pathSizes))
			for i, n := range pathSizes {
				pathSeeds[i] = cfg.Seed + uint64(n) + 3
			}
			type pathRow struct {
				n      int
				maxOff int
			}
			RunJobsOver(cfg, "E8b high-diameter S1", pathSeeds,
				func(_ *engine.RunContext, t int, seed uint64) any {
					n := pathSizes[t]
					g := graph.Path(n)
					s := phaseclock.NewStandalone(g, seed, phaseclock.WithZetaLog2(zetaLog2))
					for r := 0; r < 32; r++ {
						s.Step()
					}
					maxOff, _, _ := switchRunStats(s, n/2, int(20*float64(a)*math.Log(float64(n))/6))
					return pathRow{n: n, maxOff: maxOff}
				},
				func(_ int, payload any) {
					r := payload.(pathRow)
					lnN := math.Log(float64(r.n))
					t2.AddRow(r.n, float64(a)*lnN, r.maxOff, pass(float64(r.maxOff) <= float64(a)*lnN))
				})
			return []Table{t, t2}
		},
	}
}

// switchRunStats steps the standalone clock `horizon` rounds and returns the
// maximum OFF-run, minimum interior OFF-run, and maximum ON-run lengths of
// vertex u's switch sequence.
func switchRunStats(s *phaseclock.Standalone, u, horizon int) (maxOff, minOff, maxOn int) {
	minOff = 1 << 30
	cur := s.On(u)
	length := 1
	offRuns := 0
	flush := func(on bool, l int, interior bool) {
		if on {
			if l > maxOn {
				maxOn = l
			}
			return
		}
		offRuns++
		if l > maxOff {
			maxOff = l
		}
		if interior && l < minOff {
			minOff = l
		}
	}
	for r := 0; r < horizon; r++ {
		s.Step()
		v := s.On(u)
		if v == cur {
			length++
			continue
		}
		flush(cur, length, offRuns > 0) // first OFF run may be truncated
		cur = v
		length = 1
	}
	if minOff == 1<<30 {
		minOff = 0
	}
	return maxOff, minOff, maxOn
}

func pass(ok bool) string {
	if ok {
		return "pass"
	}
	return "FAIL"
}

func e09GoodGraph() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "G(n,p) is (n,p)-good w.h.p.",
		Claim: "Lemma 18: a G(n,p) graph satisfies properties (P1)-(P6) of Definition 17 with probability 1-O(n^-2)",
		Run: func(cfg Config) []Table {
			cfg = cfg.normalized()
			sizes := cfg.sizes([]int{200, 400, 800})
			trials := cfg.trials(8)
			t := Table{
				Title:   "E9: good-graph property pass rates over sampled G(n,p)",
				Columns: []string{"n", "p", "P1", "P2", "P3", "P4", "P5", "P6", "all-good"},
			}
			for _, n := range sizes {
				lnN := math.Log(float64(n))
				ps := []float64{0.05, 0.2, 2 * math.Sqrt(lnN/float64(n)), 0.6}
				for _, p := range ps {
					p := p
					var passCount [7]int
					good := 0
					// One pool job per sampled graph.
					TrialSeeds := make([]uint64, trials)
					for trial := range TrialSeeds {
						TrialSeeds[trial] = cfg.Seed + uint64(n)*1000 + uint64(trial)
					}
					type goodRep struct {
						pass [7]bool
						good bool
					}
					RunJobsOver(cfg, fmt.Sprintf("E9 n=%d p=%.3f", n, p), TrialSeeds,
						func(_ *engine.RunContext, _ int, seed uint64) any {
							rng := xrand.New(seed)
							g := graph.Gnp(n, p, rng)
							rep := goodgraph.Checker{Samples: 40}.Check(g, p, rng)
							out := goodRep{good: rep.Good()}
							for k := 1; k <= 6; k++ {
								out.pass[k] = rep.Pass[k]
							}
							return out
						},
						func(_ int, payload any) {
							rep := payload.(goodRep)
							for k := 1; k <= 6; k++ {
								if rep.pass[k] {
									passCount[k]++
								}
							}
							if rep.good {
								good++
							}
						})
					frac := func(k int) string {
						return fmt.Sprintf("%d/%d", passCount[k], trials)
					}
					t.AddRow(n, p, frac(1), frac(2), frac(3), frac(4), frac(5), frac(6),
						fmt.Sprintf("%d/%d", good, trials))
				}
			}
			t.Notes = append(t.Notes,
				"claim shape: pass fractions at or near 1 for all properties (sampled subsets for P1-P4, exact for P5-P6)")
			return []Table{t}
		},
	}
}

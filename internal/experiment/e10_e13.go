package experiment

// Experiments E10–E13: baseline comparison (related-work positioning),
// self-stabilization under adversarial initialization and mid-run
// corruption, simulator/runtime equivalence, and the ablations the design
// discussion motivates.

import (
	"fmt"
	"math"

	"ssmis/internal/baseline"
	"ssmis/internal/beeping"
	"ssmis/internal/engine"
	"ssmis/internal/fault"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/phaseclock"
	"ssmis/internal/sched"
	"ssmis/internal/stats"
	"ssmis/internal/stoneage"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

func e10Baselines() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Constant-state processes vs classical MIS algorithms",
		Claim: "§1, Appendix B: the paper's processes are the only ones that are simultaneously self-stabilizing, constant-state, constant-randomness, and weak-communication; Luby is faster in rounds but pays Θ(log n) bits of state and randomness per round",
		Run: func(cfg Config) []Table {
			cfg = cfg.normalized()
			trials := cfg.trials(30)
			type workload struct {
				name string
				gen  GraphGen
				n    int
			}
			n := int(2048 * math.Min(cfg.Scale*2, 1))
			if n < 256 {
				n = 256
			}
			workloads := []workload{
				{"gnp-avg16", PerSeed(func(seed uint64) *graph.Graph {
					return graph.GnpAvgDegree(n, 16, xrand.New(seed))
				}), n},
				{"tree", PerSeed(func(seed uint64) *graph.Graph {
					return graph.RandomTree(n, xrand.New(seed))
				}), n},
				{"clique", FixedGraph(graph.Complete(n / 4)), n / 4},
			}
			var tables []Table
			for _, w := range workloads {
				t := Table{
					Title: fmt.Sprintf("E10: algorithm comparison on %s (n=%d)", w.name, w.n),
					Columns: []string{"algorithm", "rounds mean", "rounds max", "states/vertex",
						"rnd bits/vertex/round", "self-stab", "communication"},
				}
				for _, kind := range []Kind{KindTwoState, KindThreeState, KindThreeColor} {
					m := RunTrials(cfg, kind, w.gen, trials, 4*mis.DefaultRoundCap(w.n), cfg.Seed)
					if m.Count() == 0 {
						continue
					}
					s := m.Summary()
					bitsPerVR := m.bits.Mean() / s.Mean / float64(w.n)
					states := map[Kind]string{KindTwoState: "2", KindThreeState: "3", KindThreeColor: "18"}[kind]
					comm := map[Kind]string{
						KindTwoState:   "beeping+CD (1 bit)",
						KindThreeState: "stone age (2 ch)",
						KindThreeColor: "stone age (12 ch)",
					}[kind]
					t.AddRow(kind.String(), s.Mean, s.Max, states, bitsPerVR, "yes", comm)
				}
				// Luby and permutation greedy, one pool job per trial.
				lubyRounds, permRounds := stats.NewStream(), stats.NewStream()
				type basePair struct{ luby, perm float64 }
				RunJobs(cfg, "E10 baselines "+w.name, trials, cfg.Seed+99,
					func(_ *engine.RunContext, _ int, seed uint64) any {
						g := w.gen.At(seed)
						return basePair{
							luby: float64(baseline.Luby(g, seed).Rounds),
							perm: float64(baseline.PermutationGreedy(g, seed).Rounds),
						}
					},
					func(_ int, payload any) {
						p := payload.(basePair)
						lubyRounds.Add(p.luby)
						permRounds.Add(p.perm)
					})
				t.AddRow("Luby", lubyRounds.Mean(), lubyRounds.Max(), "Θ(log n)", "64", "no", "Θ(log n)-bit msgs")
				t.AddRow("perm-greedy", permRounds.Mean(), permRounds.Max(), "Θ(log n)", "64 (once)", "no", "Θ(log n)-bit msgs")
				// Sequential under central daemon: steps normalized by n to
				// compare against synchronous rounds.
				seqSeeds := make([]uint64, trials)
				master := xrand.New(cfg.Seed + 99)
				for i := range seqSeeds {
					seqSeeds[i] = master.Split(uint64(1000 + i)).Uint64()
				}
				seqMoves := stats.NewStream()
				RunJobsOver(cfg, "E10 sequential "+w.name, seqSeeds,
					func(_ *engine.RunContext, _ int, seed uint64) any {
						g := w.gen.At(seed)
						s := sched.NewSequential(g, sched.CentralAdversarial{}, seed)
						s.Run(10 * g.N())
						return float64(s.Moves())
					},
					func(_ int, payload any) { seqMoves.Add(payload.(float64)) })
				t.AddRow("sequential (central)", fmt.Sprintf("%.0f moves", seqMoves.Mean()),
					fmt.Sprintf("%.0f moves", seqMoves.Max()), "2", "0", "yes", "central daemon")
				t.Notes = append(t.Notes,
					"claim shape: Luby wins rounds by a constant-ish factor but needs Θ(log n) state/randomness and is not self-stabilizing")
				tables = append(tables, t)
			}
			return tables
		},
	}
}

func e11SelfStabilization() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "Self-stabilization: adversarial initialization and mid-run corruption",
		Claim: "Definitions 4/5/28: from ANY initial state vector the processes converge to an MIS; corruption mid-run is absorbed",
		Run: func(cfg Config) []Table {
			cfg = cfg.normalized()
			trials := cfg.trials(30)
			n := int(1024 * math.Min(cfg.Scale*2, 1))
			if n < 200 {
				n = 200
			}
			gen := func(seed uint64) *graph.Graph {
				return graph.GnpAvgDegree(n, 12, xrand.New(seed))
			}
			initTable := Table{
				Title:   fmt.Sprintf("E11a: rounds to stabilize by initialization adversary (G(n,avg16), n=%d)", n),
				Columns: []string{"process", "init", "mean", "max", "status"},
			}
			for _, kind := range []Kind{KindTwoState, KindThreeState, KindThreeColor} {
				for _, init := range mis.AllInits() {
					m := RunTrials(cfg, kind, PerSeed(gen), trials, 4*mis.DefaultRoundCap(n), cfg.Seed,
						mis.WithInit(init))
					if m.Count() == 0 {
						initTable.AddRow(kind.String(), init.String(), "-", "-", "FAILED")
						continue
					}
					s := m.Summary()
					status := "ok"
					if m.failures > 0 {
						status = fmt.Sprintf("%d capped", m.failures)
					}
					initTable.AddRow(kind.String(), init.String(), s.Mean, s.Max, status)
				}
			}
			initTable.Notes = append(initTable.Notes,
				"claim shape: every row stabilizes; no adversarial initialization escapes polylog behaviour")

			recovery := Table{
				Title:   fmt.Sprintf("E11b: recovery rounds after corrupting k=%d vertices of a stabilized run", n/40),
				Columns: []string{"process", "adversary", "recovery mean", "recovery max", "fresh mean", "status"},
			}
			for _, kind := range []Kind{KindTwoState, KindThreeState, KindThreeColor} {
				fresh := RunTrials(cfg, kind, PerSeed(gen), trials, 4*mis.DefaultRoundCap(n), cfg.Seed)
				freshMean := 0.0
				if fresh.Count() > 0 {
					freshMean = fresh.Summary().Mean
				}
				for _, adv := range fault.AllAdversaries() {
					// One pool job per trial: stabilize, corrupt, re-stabilize.
					type recOutcome struct {
						rounds float64
						ok     bool
					}
					recRounds := stats.NewStream()
					failed := 0
					RunJobs(cfg, fmt.Sprintf("E11b %v/%v", kind, adv), trials, cfg.Seed+5,
						func(rc *engine.RunContext, t int, seed uint64) any {
							g := gen(seed)
							p := NewProcess(kind, g, cfg.procOpts(mis.WithRunContext(rc), mis.WithSeed(seed))...)
							if !mis.Run(p, 8*mis.DefaultRoundCap(n)).Stabilized {
								return recOutcome{}
							}
							c := fault.Wrap(p)
							attackRng := xrand.New(cfg.Seed + 5).Split(uint64(9000 + t))
							res := fault.Attack(c, adv, n/40, attackRng, 8*mis.DefaultRoundCap(n))
							if !res.Recovered || verify.MIS(g, c.Black) != nil {
								return recOutcome{}
							}
							return recOutcome{rounds: float64(res.RecoveryRounds), ok: true}
						},
						func(_ int, payload any) {
							o := payload.(recOutcome)
							if !o.ok {
								failed++
								return
							}
							recRounds.Add(o.rounds)
						})
					if recRounds.N() == 0 {
						recovery.AddRow(kind.String(), adv.String(), "-", "-", freshMean, "FAILED")
						continue
					}
					status := "ok"
					if failed > 0 {
						status = fmt.Sprintf("%d failed", failed)
					}
					recovery.AddRow(kind.String(), adv.String(), recRounds.Mean(), recRounds.Max(), freshMean, status)
				}
			}
			recovery.Notes = append(recovery.Notes,
				"claim shape: every attack is absorbed; local faults recover in fewer rounds than a fresh start")
			return []Table{initTable, recovery}
		},
	}
}

func e12Runtimes() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "Model realizability: goroutine beeping/stone-age runtimes ≡ simulator",
		Claim: "§1/§2: the processes run unchanged as local node programs under beeping (2-state, with collision detection) and stone age (3-state/3-color) communication; our runtimes replay the simulator coin-for-coin",
		Run: func(cfg Config) []Table {
			cfg = cfg.normalized()
			trials := cfg.trials(20)
			n := int(256 * math.Min(cfg.Scale*4, 1))
			if n < 64 {
				n = 64
			}
			t := Table{
				Title:   fmt.Sprintf("E12: simulator vs runtime stabilization rounds (G(n,avg8), n=%d)", n),
				Columns: []string{"process", "engine", "mean rounds", "identical to simulator"},
			}
			type caseRun struct {
				name    string
				simMean float64
				rtMean  float64
				same    int
			}
			cases := []caseRun{{name: "2-state/beeping-cd"}, {name: "3-state/stone-age"}, {name: "3-color/stone-age"}}
			// One pool job per trial; each job replays all three process
			// families on both engines and reports the paired rounds.
			type pair struct{ sim, rt int }
			RunJobs(cfg, "E12 equivalence", trials, cfg.Seed+11,
				func(runCtx *engine.RunContext, _ int, seed uint64) any {
					g := graph.GnpAvgDegree(n, 8, xrand.New(seed))
					limit := 8 * mis.DefaultRoundCap(n)
					var out [3]pair

					sim2 := mis.NewTwoState(g, mis.WithRunContext(runCtx), mis.WithSeed(seed))
					r2 := mis.Run(sim2, limit)
					bee := beeping.NewMIS(g, seed, nil)
					br, _ := bee.Run(limit)
					bee.Close()
					out[0] = pair{sim: r2.Rounds, rt: br}

					sim3 := mis.NewThreeState(g, mis.WithRunContext(runCtx), mis.WithSeed(seed))
					r3 := mis.Run(sim3, limit)
					sa := stoneage.NewThreeStateMIS(g, seed, nil)
					sr, _ := sa.Run(limit)
					sa.Close()
					out[1] = pair{sim: r3.Rounds, rt: sr}

					simC := mis.NewThreeColor(g, mis.WithRunContext(runCtx), mis.WithSeed(seed))
					rcRes := mis.Run(simC, limit)
					sc := stoneage.NewThreeColorMIS(g, seed, nil, nil)
					cr, _ := sc.Run(limit)
					sc.Close()
					out[2] = pair{sim: rcRes.Rounds, rt: cr}
					return out
				},
				func(_ int, payload any) {
					out := payload.([3]pair)
					for k := range cases {
						cases[k].simMean += float64(out[k].sim) / float64(trials)
						cases[k].rtMean += float64(out[k].rt) / float64(trials)
						if out[k].sim == out[k].rt {
							cases[k].same++
						}
					}
				})
			for _, c := range cases {
				t.AddRow(c.name, "simulator", c.simMean, "-")
				t.AddRow(c.name, "goroutine runtime", c.rtMean,
					fmt.Sprintf("%d/%d runs", c.same, trials))
			}
			t.Notes = append(t.Notes,
				"claim shape: 'identical' equals trials/trials — the runtimes are coin-for-coin replays, so any mismatch is a model-translation bug")
			return []Table{t}
		},
	}
}

func e13Ablations() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "Ablations: coin bias, switch ζ, RandPhase D",
		Claim: "Design choices the paper motivates: the uniform coin (footnote 1), ζ=2^-7 / a=512 (Definition 28), and the D=3 phase clock (Definition 26 vs RandPhase)",
		Run: func(cfg Config) []Table {
			cfg = cfg.normalized()
			trials := cfg.trials(20)
			n := int(1024 * math.Min(cfg.Scale*2, 1))
			if n < 200 {
				n = 200
			}

			// (a) Black-bias ablation on the 2-state process.
			biasT := Table{
				Title:   fmt.Sprintf("E13a: 2-state with biased coin, K_%d and G(n,avg12)", n/4),
				Columns: []string{"P[black]", "clique mean", "clique max", "gnp mean", "gnp max"},
			}
			cl := graph.Complete(n / 4)
			genG := func(seed uint64) *graph.Graph {
				return graph.GnpAvgDegree(n, 12, xrand.New(seed))
			}
			for _, bias := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
				mc := RunTrials(cfg, KindTwoState, FixedGraph(cl), trials, 0, cfg.Seed+uint64(bias*100),
					mis.WithBlackBias(bias))
				mg := RunTrials(cfg, KindTwoState, PerSeed(genG), trials, 0, cfg.Seed+uint64(bias*100)+1,
					mis.WithBlackBias(bias))
				row := []interface{}{bias}
				for _, m := range []*Measurement{mc, mg} {
					if m.Count() == 0 {
						row = append(row, "-", "-")
					} else {
						s := m.Summary()
						row = append(row, s.Mean, s.Max)
					}
				}
				biasT.AddRow(row...)
			}
			biasT.Notes = append(biasT.Notes,
				"shape: 1/2 is near-optimal on cliques (symmetric conflict); extreme biases slow stabilization, very high bias catastrophically on dense graphs")

			// (b) Switch ζ ablation on the 3-color process, dense G(n,p).
			zetaT := Table{
				Title:   fmt.Sprintf("E13b: 3-color switch ζ=2^-k on dense G(%d, 0.25)", n/2),
				Columns: []string{"k (ζ=2^-k)", "a=4·2^k", "mean", "max", "status"},
			}
			genDense := func(seed uint64) *graph.Graph {
				return graph.Gnp(n/2, 0.25, xrand.New(seed))
			}
			for _, k := range []uint{3, 5, 7, 9} {
				m := RunTrials(cfg, KindThreeColor, PerSeed(genDense), trials, 8*mis.DefaultRoundCap(n/2),
					cfg.Seed+uint64(k), mis.WithSwitchZetaLog2(k))
				if m.Count() == 0 {
					zetaT.AddRow(k, 4<<k, "-", "-", fmt.Sprintf("%d/%d FAILED", m.failures, m.trials))
					continue
				}
				s := m.Summary()
				status := "ok"
				if m.failures > 0 {
					status = fmt.Sprintf("%d capped", m.failures)
				}
				zetaT.AddRow(k, 4<<k, s.Mean, s.Max, status)
			}
			zetaT.Notes = append(zetaT.Notes,
				"shape: larger a lengthens the gray cool-down (slower but safer throttling); the paper's k=7 trades the two off")

			// (c) RandPhase D ablation: on/off run structure on a diam-2 graph.
			dT := Table{
				Title:   "E13c: RandPhase parameter D (clock alone, diameter-2 G(128,0.5))",
				Columns: []string{"D", "states", "max ON run", "mean OFF run"},
			}
			rng := xrand.New(cfg.Seed + 17)
			gD := graph.Gnp(128, 0.5, rng)
			for _, d := range []int{1, 2, 3, 5, 7} {
				s := phaseclock.NewStandalone(gD, cfg.Seed+uint64(d),
					phaseclock.WithD(d), phaseclock.WithZetaLog2(5))
				for r := 0; r < 64; r++ {
					s.Step()
				}
				horizon := 20000
				maxOff, _, maxOn := switchRunStats(s, 0, horizon)
				// Mean OFF run: re-measure quickly via counting (approx from
				// the max and structure is enough for the shape note; use
				// maxOff as the displayed aggregate).
				dT.AddRow(d, d+3, maxOn, maxOff)
			}
			dT.Notes = append(dT.Notes,
				"shape: ON runs track the on-threshold width (3 levels) regardless of D; OFF runs grow with the level span — D=3 is the smallest clock exposing the (S1)-(S3) interface",
				"column 'mean OFF run' reports the maximum observed OFF run for comparability")
			return []Table{biasT, zetaT, dT}
		},
	}
}

package experiment

// The local-times metric shape: the per-vertex stabilization-time
// distribution the engine's coverage stamps record (WithLocalTimes), swept
// over a size ladder — E14's first table extracted as a declarative spec so
// scenario "scaling" units can request the "local-times" metric alongside
// the plain rounds table.

import (
	"fmt"

	"ssmis/internal/engine"
	"ssmis/internal/mis"
	"ssmis/internal/stats"
)

// LocalTimesSpec declares one per-vertex stabilization-time table: local
// (coverage-stamp) quantiles against the global round count per ladder size.
// Only the synchronous simulator records coverage stamps, so this spec has
// no runtime axis.
type LocalTimesSpec struct {
	// Title is the rendered table title.
	Title string
	// Label prefixes the scheduler cell labels.
	Label string
	// Kind selects the process family.
	Kind Kind
	// Family generates the graphs.
	Family GraphFamily
	// Sizes is the full size ladder; Config.Scale may drop the tail.
	Sizes []int
	// TrialsBase is the trial count at scale 1.
	TrialsBase int
	// SeedOffset shifts the cell master seeds (cfg.Seed + SeedOffset + n).
	SeedOffset uint64
	// Notes are appended to the table verbatim.
	Notes []string
}

// RunLocalTimes executes the spec against the configuration's shared pool
// and renders the local-vs-global table (E14's shape: stream the per-vertex
// stamps into exact counting quantiles instead of a trials×n slice).
func RunLocalTimes(cfg Config, spec LocalTimesSpec) Table {
	cfg = cfg.normalized()
	sizes := cfg.sizes(spec.Sizes)
	trials := cfg.trials(spec.TrialsBase)
	t := Table{
		Title: spec.Title,
		Columns: []string{"n", "mean local", "median local", "p99 local",
			"global (max)", "mean/global"},
	}
	type localTimes struct {
		times  []int
		rounds int
		ok     bool
	}
	for _, n := range sizes {
		probe := spec.Family.Build(n, 1)
		actualN := probe.N()
		locals := stats.NewQuantileStream()
		globals := stats.NewStream()
		RunJobs(cfg, fmt.Sprintf("%s local-times n=%d", spec.Label, n), trials, cfg.Seed+spec.SeedOffset+uint64(n),
			func(rc *engine.RunContext, _ int, seed uint64) any {
				g := probe
				if !spec.Family.Det {
					g = spec.Family.Build(n, seed)
				}
				p := NewProcess(spec.Kind, g,
					cfg.procOpts(mis.WithRunContext(rc), mis.WithSeed(seed), mis.WithLocalTimes())...)
				res := mis.Run(p, 4*mis.DefaultRoundCap(g.N()))
				if !res.Stabilized {
					return localTimes{}
				}
				return localTimes{times: stabilizationTimes(p), rounds: res.Rounds, ok: true}
			},
			func(_ int, payload any) {
				lt := payload.(localTimes)
				if !lt.ok {
					return
				}
				for _, ti := range lt.times {
					locals.Add(float64(ti))
				}
				globals.Add(float64(lt.rounds))
			})
		if locals.N() == 0 {
			t.AddRow(actualN, "-", "-", "-", "-", "-")
			continue
		}
		sl := locals.Summary()
		t.AddRow(actualN, sl.Mean, sl.Median, sl.P99, globals.Mean(), sl.Mean/globals.Mean())
	}
	t.Notes = append(t.Notes, spec.Notes...)
	return t
}

// stabilizationTimes extracts the coverage stamps from any of the three
// process implementations.
func stabilizationTimes(p mis.Process) []int {
	type stamped interface{ StabilizationTimes() []int }
	return p.(stamped).StabilizationTimes()
}

package experiment

// Experiment E19: the processes on the asynchronous beeping medium, swept
// over the clock-drift bound ρ. The paper's headline weak-communication
// claim is stated for lockstep beeping rounds; this experiment relaxes the
// lockstep: each node owns a clock advanced by a drift model, beeps occupy
// real slot intervals, and hearing is interval overlap (internal/async). At
// ρ=1 the medium provably collapses to the synchronous runtime — the
// "≡sync" column replays every trial on the goroutine runtime and counts
// matches, which must be trials/trials — and for ρ>1 the table records how
// stabilization time (in virtual rounds: the slowest clock's slots) and
// clock skew grow with the allowed drift, per graph family.

import (
	"fmt"
	"math"

	"ssmis/internal/async"
	"ssmis/internal/beeping"
	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/stats"
	"ssmis/internal/stoneage"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

func e19AsyncDrift() Experiment {
	return Experiment{
		ID:    "E19",
		Title: "Asynchronous beeping: stabilization vs clock drift ρ",
		Claim: "§1/§2: the processes need only weak communication; the asynchronous medium (per-node clocks within drift bound ρ, interval-overlap hearing) tests that beyond lockstep rounds. At ρ=1 the async execution IS the synchronous one, coin-for-coin",
		Run: func(cfg Config) []Table {
			cfg = cfg.normalized()
			trials := cfg.trials(12)
			n := int(192 * math.Min(cfg.Scale*2, 1))
			if n < 64 {
				n = 64
			}
			side := graph.ISqrt(n)
			families := []struct {
				name string
				gen  GraphGen
			}{
				{"gnp-avg8", PerSeed(func(seed uint64) *graph.Graph {
					return graph.GnpAvgDegree(n, 8, xrand.New(seed))
				})},
				{"tree", PerSeed(func(seed uint64) *graph.Graph {
					return graph.RandomTree(n, xrand.New(seed))
				})},
				{"grid", FixedGraph(graph.Grid(side, side))},
				{"cliques", FixedGraph(graph.DisjointCliques(side, side))},
			}
			rhos := []float64{1, 1.5, 2, 3}
			t := Table{
				Title: fmt.Sprintf("E19: async stabilization vs drift ρ (bounded drift, n=%d, %d trials)", n, trials),
				Columns: []string{"process", "family", "ρ", "rounds mean", "rounds max",
					"skew max", "≡sync", "stabilized"},
			}
			type asyncOutcome struct {
				rounds, skew float64
				ok           bool
				syncSame     bool
			}
			for _, kind := range []Kind{KindTwoState, KindThreeState} {
				for _, fam := range families {
					for _, rho := range rhos {
						rounds, skew := stats.NewStream(), stats.NewStream()
						failed, syncSame := 0, 0
						checkSync := rho == 1
						RunJobs(cfg, fmt.Sprintf("E19 %v/%s ρ=%g", kind, fam.name, rho), trials, cfg.Seed+19,
							func(_ *engine.RunContext, _ int, seed uint64) any {
								g := fam.gen.At(seed)
								limit := 8 * mis.DefaultRoundCap(g.N())
								drift := async.NewBounded(rho)
								var (
									r     int
									ok    bool
									black func(int) bool
									eng   *async.Engine
								)
								if kind == KindTwoState {
									m := async.NewMIS(g, seed, drift, nil)
									r, ok = m.Run(limit)
									black, eng = m.Black, m.Engine()
								} else {
									m := async.NewThreeStateMIS(g, seed, drift, nil)
									r, ok = m.Run(limit)
									black, eng = m.Black, m.Engine()
								}
								if !ok || verify.MIS(g, black) != nil {
									return asyncOutcome{}
								}
								o := asyncOutcome{rounds: float64(r), skew: float64(eng.MaxSkew()), ok: true}
								if checkSync {
									// Replay on the synchronous goroutine runtime:
									// at ρ=1 the async run must match it exactly.
									var sr int
									var sok bool
									if kind == KindTwoState {
										s := beeping.NewMIS(g, seed, nil)
										sr, sok = s.Run(limit)
										o.syncSame = sok == ok && sr == r && sameBlack(g.N(), s.Black, black)
										s.Close()
									} else {
										s := stoneage.NewThreeStateMIS(g, seed, nil)
										sr, sok = s.Run(limit)
										o.syncSame = sok == ok && sr == r && sameBlack(g.N(), s.Black, black)
										s.Close()
									}
								}
								return o
							},
							func(_ int, payload any) {
								o := payload.(asyncOutcome)
								if !o.ok {
									failed++
									return
								}
								rounds.Add(o.rounds)
								skew.Add(o.skew)
								if o.syncSame {
									syncSame++
								}
							})
						syncCol := "-"
						if checkSync {
							syncCol = fmt.Sprintf("%d/%d", syncSame, trials)
						}
						if rounds.N() == 0 {
							t.AddRow(kind.String(), fam.name, rho, "-", "-", "-", syncCol,
								fmt.Sprintf("0/%d FAILED", trials))
							continue
						}
						status := "ok"
						if failed > 0 {
							status = fmt.Sprintf("%d/%d failed", failed, trials)
						}
						t.AddRow(kind.String(), fam.name, rho, rounds.Mean(), rounds.Max(),
							skew.Max(), syncCol, status)
					}
				}
			}
			t.Notes = append(t.Notes,
				"'≡sync' must read trials/trials on every ρ=1 row: the async medium at ρ=1 is the synchronous runtime coin-for-coin (any mismatch is a medium bug)",
				"rounds are virtual rounds — the slowest clock's completed slots — so columns are comparable to synchronous rounds across ρ",
				"skew is the max slot-index spread between the fastest and slowest clock; it grows with virtual time under sustained drift, yet stabilization stays polylog",
			)
			return []Table{t}
		},
	}
}

// sameBlack reports whether two color projections agree on all n vertices.
func sameBlack(n int, a, b func(int) bool) bool {
	for u := 0; u < n; u++ {
		if a(u) != b(u) {
			return false
		}
	}
	return true
}

package experiment

// The daemon-matrix sweep shape: randomized parallel processes and the
// sequential [28, 20] baseline measured under a set of daemon schedules,
// one moves/vertex row per (process, daemon) pair. E18 is this shape with
// the paper's parameters; scenario "daemon-matrix" units compile to the
// same runner, so a scenario reproducing E18's spec renders its table
// byte-identically.

import (
	"fmt"

	"ssmis/internal/engine"
	"ssmis/internal/mis"
	"ssmis/internal/sched"
	"ssmis/internal/stats"
	"ssmis/internal/verify"
)

// DaemonMatrixSpec declares one daemon-schedule matrix table.
type DaemonMatrixSpec struct {
	// TitleFormat renders the table title; it receives the resolved vertex
	// count and the trial count (two %d-style verbs in that order).
	TitleFormat string
	// Label prefixes the scheduler cell labels ("E18" for the registry
	// experiment, the scenario/unit name for compiled scenarios).
	Label string
	// Family generates the (per-seed) graphs at order N.At(scale).
	Family GraphFamily
	// N is the scale-dependent problem size.
	N ScaledSize
	// TrialsBase is the per-row trial count at scale 1.
	TrialsBase int
	// Kinds lists the parallel randomized processes to schedule (2-state
	// and/or 3-state; the 3-color process is not daemon-schedulable).
	Kinds []Kind
	// KindSeedOffset shifts the master seed of the parallel-process rows
	// (cfg.Seed + KindSeedOffset).
	KindSeedOffset uint64
	// Sequential adds the sequential baseline rows: the deterministic
	// [28, 20] rule and its randomized [28, 31] variant under the same
	// daemons.
	Sequential bool
	// SeqSeedOffset shifts the master seed of the sequential rows.
	SeqSeedOffset uint64
	// Daemons lists the daemon schedules (sched.DaemonByName names); nil
	// selects every registered daemon.
	Daemons []string
	// Notes are appended to the table verbatim.
	Notes []string
}

// daemonOutcome is one daemon-scheduled run's payload.
type daemonOutcome struct {
	movesPerV, steps float64
	ok               bool
}

// RunDaemonMatrix executes the spec against the configuration's shared
// pool and renders the matrix table.
//
// Two (process, daemon) pairs are known livelocks and get a cheap
// demonstration row (3 trials, a bounded step cap) instead of burning the
// full cap every trial: the 3-state process under central-adversarial (its
// reactive demotion is starved forever — the boundary pinned by the k-fair
// tests in internal/mis) and the deterministic sequential rule under the
// synchronous daemon (two adjacent actives flip together forever — the
// reason the parallel process randomizes).
func RunDaemonMatrix(cfg Config, spec DaemonMatrixSpec) Table {
	cfg = cfg.normalized()
	trials := cfg.trials(spec.TrialsBase)
	n := spec.N.At(cfg.Scale)
	daemons := spec.Daemons
	if daemons == nil {
		daemons = sched.DaemonNames()
	}
	t := Table{
		Title: fmt.Sprintf(spec.TitleFormat, n, trials),
		Columns: []string{"process", "daemon", "moves/vertex mean", "moves/vertex max",
			"steps mean", "stabilized"},
	}
	for _, kind := range spec.Kinds {
		for _, dname := range daemons {
			movesPerV, steps := stats.NewStream(), stats.NewStream()
			failed := 0
			// The known livelock case would burn the full step cap on
			// every trial; keep one cheap demonstration row instead.
			livelock := kind == KindThreeState && dname == "central-adversarial"
			rowTrials := trials
			if livelock {
				rowTrials = 3
			}
			// One pool job per trial (daemon runs are long chains of
			// tiny steps — exactly the cells that profit from spreading
			// across the pool).
			RunJobs(cfg, fmt.Sprintf("%s %v/%s", spec.Label, kind, dname), rowTrials, cfg.Seed+spec.KindSeedOffset,
				func(_ *engine.RunContext, _ int, seed uint64) any {
					g := spec.Family.Build(n, seed)
					d, err := sched.DaemonByName(dname)
					if err != nil {
						panic(err)
					}
					p := NewProcess(kind, g, mis.WithSeed(seed)).(mis.DaemonRunner)
					stepCap := mis.DefaultDaemonStepCap(g.N())
					if livelock {
						stepCap = 200 * g.N()
					}
					st, ok := p.DaemonRun(d, stepCap)
					if !ok || verify.MIS(g, p.Black) != nil {
						return daemonOutcome{}
					}
					return daemonOutcome{
						movesPerV: float64(p.Moves()) / float64(g.N()),
						steps:     float64(st),
						ok:        true,
					}
				},
				func(_ int, payload any) {
					o := payload.(daemonOutcome)
					if !o.ok {
						failed++
						return
					}
					movesPerV.Add(o.movesPerV)
					steps.Add(o.steps)
				})
			if movesPerV.N() == 0 {
				status := fmt.Sprintf("0/%d", rowTrials)
				if livelock {
					status += " (livelock)"
				}
				t.AddRow(kind.String(), dname, "-", "-", "-", status)
				continue
			}
			status := fmt.Sprintf("%d/%d", rowTrials-failed, rowTrials)
			t.AddRow(kind.String(), dname, movesPerV.Mean(), movesPerV.Max(), steps.Mean(), status)
		}
	}
	if spec.Sequential {
		// The sequential baseline the paper parallelizes ([28, 20]),
		// deterministic and randomized, under the same daemon set —
		// side-by-side moves/vertex against the parallel processes.
		type seqCase struct {
			name       string
			randomized bool
			livelock   map[string]bool
		}
		seqCases := []seqCase{
			{name: "seq-det [28,20]", livelock: map[string]bool{"synchronous": true}},
			{name: "seq-rand [28,31]", randomized: true},
		}
		for _, sc := range seqCases {
			for _, dname := range daemons {
				movesPerV, steps := stats.NewStream(), stats.NewStream()
				failed := 0
				livelock := sc.livelock[dname]
				rowTrials := trials
				if livelock {
					rowTrials = 3
				}
				RunJobs(cfg, fmt.Sprintf("%s %s/%s", spec.Label, sc.name, dname), rowTrials, cfg.Seed+spec.SeqSeedOffset,
					func(_ *engine.RunContext, _ int, seed uint64) any {
						g := spec.Family.Build(n, seed)
						d, err := sched.DaemonByName(dname)
						if err != nil {
							panic(err)
						}
						var opts []sched.Option
						if sc.randomized {
							opts = append(opts, sched.Randomized())
						}
						s := sched.NewSequential(g, d, seed, opts...)
						stepCap := mis.DefaultDaemonStepCap(g.N())
						if livelock {
							// A synchronous step is a full round; the
							// round-cap scale suffices to exhibit it.
							stepCap = 4 * mis.DefaultRoundCap(g.N())
						}
						st, ok := s.Run(stepCap)
						if !ok || verify.MIS(g, s.Black) != nil {
							return daemonOutcome{}
						}
						return daemonOutcome{
							movesPerV: float64(s.Moves()) / float64(g.N()),
							steps:     float64(st),
							ok:        true,
						}
					},
					func(_ int, payload any) {
						o := payload.(daemonOutcome)
						if !o.ok {
							failed++
							return
						}
						movesPerV.Add(o.movesPerV)
						steps.Add(o.steps)
					})
				if movesPerV.N() == 0 {
					status := fmt.Sprintf("0/%d", rowTrials)
					if livelock {
						status += " (livelock)"
					}
					t.AddRow(sc.name, dname, "-", "-", "-", status)
					continue
				}
				status := fmt.Sprintf("%d/%d", rowTrials-failed, rowTrials)
				t.AddRow(sc.name, dname, movesPerV.Mean(), movesPerV.Max(), steps.Mean(), status)
			}
		}
	}
	t.Notes = append(t.Notes, spec.Notes...)
	return t
}

package experiment

// Sweep checkpointing: ONE snapshot file for a whole missweep grid. The
// sweep checkpoint records, per experiment, either the finished rendered
// tables or — for experiments still in flight — the in-order outcome
// journal of every measurement cell delivered so far. Resuming replays the
// journals through the scheduler's reorder buffer (batch.SubmitOptions
// Replay/Record): recorded jobs are never re-run, live jobs start where
// the journal ends, and because every run is a pure function of
// (graph, seed) the resumed sweep's tables are byte-identical to an
// uninterrupted run at any worker count.
//
// Granularity. Stabilization-measurement cells (RunTrials — the bulk of
// the grid's job volume) resume mid-cell at outcome granularity; their
// outcomes are plain (rounds, bits, failed, broken) and serialize
// directly. Cells with workload-specific payloads (RunJobs/RunJobsOver:
// runtime replays, churn chains, daemon schedules, ...) re-run when their
// experiment was interrupted mid-flight — their payloads are arbitrary
// in-memory values, and purity makes re-running them produce identical
// results — while completed experiments never re-run at all.
//
// The on-disk format is the module-wide versioned snapshot envelope
// (internal/snapshot, kind "sweep"): damaged or version-skewed checkpoint
// files are rejected loudly, and writes are atomic (stage + rename), so a
// sweep killed mid-write leaves the previous intact checkpoint behind.

import (
	"fmt"
	"sync"

	"ssmis/internal/batch"
	"ssmis/internal/snapshot"
)

// SweepCheckpoint is the live, concurrency-safe checkpoint state of one
// sweep invocation. Experiments append to it through the per-experiment
// handles Config carries; the driver saves it periodically (under a pool
// quiesce, so the serialized cut is consistent) and marks experiments done
// as their tables render.
type SweepCheckpoint struct {
	mu    sync.Mutex
	state sweepState
}

// sweepState is the serialized sweep payload.
type sweepState struct {
	// Scale, Seed, and Experiments identify the invocation; Load rejects a
	// checkpoint taken under different sweep parameters (resuming it would
	// silently compute different numbers).
	Scale       float64  `json:"scale"`
	Seed        uint64   `json:"seed"`
	Experiments []string `json:"experiments"`
	// Done holds the rendered tables of completed experiments.
	Done map[string][]Table `json:"done,omitempty"`
	// Cells holds the outcome journals of in-flight measurement cells,
	// keyed by experiment id and submission sequence number.
	Cells map[string]*cellJournal `json:"cells,omitempty"`
}

// cellJournal is the delivered-outcome prefix of one measurement cell.
type cellJournal struct {
	// Label echoes the cell's label; resume cross-checks it so a checkpoint
	// from different code or configuration fails loudly instead of feeding
	// the wrong journal to a cell.
	Label string `json:"label"`
	// Total is the cell's job count.
	Total int `json:"total"`
	// Outcomes is the in-order delivered prefix.
	Outcomes []cellOutcome `json:"outcomes"`
}

// cellOutcome is one journaled scheduler outcome (the plain measurement
// fields; Extra-carrying cells are not journaled).
type cellOutcome struct {
	Seed   uint64 `json:"seed"`
	Rounds int    `json:"rounds,omitempty"`
	Bits   int64  `json:"bits,omitempty"`
	Failed bool   `json:"failed,omitempty"`
	Broken bool   `json:"broken,omitempty"`
}

// NewSweepCheckpoint starts empty checkpoint state for a sweep over the
// given experiment ids at the given scale and master seed.
func NewSweepCheckpoint(scale float64, seed uint64, ids []string) *SweepCheckpoint {
	return &SweepCheckpoint{state: sweepState{
		Scale:       scale,
		Seed:        seed,
		Experiments: ids,
		Done:        map[string][]Table{},
		Cells:       map[string]*cellJournal{},
	}}
}

// LoadSweepCheckpoint reads a sweep checkpoint and validates that it
// belongs to this invocation: same scale, same master seed, same
// experiment selection. Any mismatch, damage, or version skew is an error.
func LoadSweepCheckpoint(path string, scale float64, seed uint64, ids []string) (*SweepCheckpoint, error) {
	var st sweepState
	if err := snapshot.ReadFile(path, snapshot.KindSweep, &st); err != nil {
		return nil, err
	}
	if st.Scale != scale || st.Seed != seed {
		return nil, fmt.Errorf("experiment: checkpoint %s was taken at scale=%v seed=%d, this invocation is scale=%v seed=%d",
			path, st.Scale, st.Seed, scale, seed)
	}
	if len(st.Experiments) != len(ids) {
		return nil, fmt.Errorf("experiment: checkpoint %s covers %d experiments, this invocation selects %d",
			path, len(st.Experiments), len(ids))
	}
	for i, id := range ids {
		if st.Experiments[i] != id {
			return nil, fmt.Errorf("experiment: checkpoint %s experiment %d is %s, this invocation selects %s",
				path, i, st.Experiments[i], id)
		}
	}
	if st.Done == nil {
		st.Done = map[string][]Table{}
	}
	if st.Cells == nil {
		st.Cells = map[string]*cellJournal{}
	}
	return &SweepCheckpoint{state: st}, nil
}

// Save atomically writes the checkpoint through the snapshot envelope. It
// may be called at any time; for a cut that is consistent across every
// in-flight cell, quiesce the scheduler pool around the call (or around
// Encode alone, keeping the disk I/O outside the pause).
func (s *SweepCheckpoint) Save(path string) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	return snapshot.WriteEncoded(path, data)
}

// Encode serializes the checkpoint state into the snapshot envelope — the
// cheap, in-memory half of Save, so a caller can hold a pool quiesce only
// for the duration of the cut and write the bytes after resuming.
func (s *SweepCheckpoint) Encode() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return snapshot.Encode(snapshot.KindSweep, &s.state)
}

// Completed returns the stored tables of an experiment that finished
// before the checkpoint was taken.
func (s *SweepCheckpoint) Completed(id string) ([]Table, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.state.Done[id]
	return t, ok
}

// MarkDone records an experiment's rendered tables and drops its cell
// journals (the tables subsume them).
func (s *SweepCheckpoint) MarkDone(id string, tables []Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state.Done[id] = tables
	prefix := id + "#"
	for key := range s.state.Cells {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			delete(s.state.Cells, key)
		}
	}
}

// Experiment returns the handle one experiment's cells journal through;
// the handle is carried to the Run function via Config.Checkpoint.
func (s *SweepCheckpoint) Experiment(id string) *ExperimentCheckpoint {
	return &ExperimentCheckpoint{sweep: s, id: id}
}

// ExperimentCheckpoint scopes the sweep checkpoint to one experiment. Cell
// keys are the experiment id plus a submission sequence number: cells
// submit in deterministic order within an experiment's Run (each cell
// waits before the next submits), so a resumed Run re-derives the same
// keys and picks its journals back up.
type ExperimentCheckpoint struct {
	sweep *SweepCheckpoint
	id    string
	mu    sync.Mutex
	seq   int
}

// cell opens (or resumes) the journal of the experiment's next measurement
// cell and returns the scheduler options half of the contract: the replay
// prefix and the record hook.
func (e *ExperimentCheckpoint) cell(label string, total int) (replay []batch.Outcome, record func(batch.Outcome)) {
	e.mu.Lock()
	key := fmt.Sprintf("%s#%d", e.id, e.seq)
	e.seq++
	e.mu.Unlock()

	s := e.sweep
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.state.Cells[key]
	if j == nil {
		j = &cellJournal{Label: label, Total: total}
		s.state.Cells[key] = j
	} else if j.Label != label || j.Total != total {
		// The journal disagrees with the cell re-deriving it: the checkpoint
		// was taken by different code or configuration. Resuming would feed
		// the wrong outcomes into the wrong aggregates — refuse loudly.
		panic(fmt.Sprintf("experiment: checkpoint cell %s is %q (%d jobs), this run derives %q (%d jobs) — checkpoint from a different build or configuration",
			key, j.Label, j.Total, label, total))
	}
	replay = make([]batch.Outcome, len(j.Outcomes))
	for i, o := range j.Outcomes {
		replay[i] = batch.Outcome{Seed: o.Seed, Rounds: o.Rounds, Bits: o.Bits, Failed: o.Failed, Broken: o.Broken}
	}
	record = func(o batch.Outcome) {
		s.mu.Lock()
		defer s.mu.Unlock()
		// Idempotent under replay: only the first delivery of each index
		// extends the journal.
		if o.Index == len(j.Outcomes) {
			j.Outcomes = append(j.Outcomes, cellOutcome{Seed: o.Seed, Rounds: o.Rounds, Bits: o.Bits, Failed: o.Failed, Broken: o.Broken})
		}
	}
	return replay, record
}

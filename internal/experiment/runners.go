package experiment

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/stats"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

// Kind selects a process family.
type Kind int

// Process families.
const (
	KindTwoState Kind = iota + 1
	KindThreeState
	KindThreeColor
)

func (k Kind) String() string {
	switch k {
	case KindTwoState:
		return "2-state"
	case KindThreeState:
		return "3-state"
	case KindThreeColor:
		return "3-color"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// newProcess instantiates a process of the given kind.
func newProcess(k Kind, g *graph.Graph, opts ...mis.Option) mis.Process {
	switch k {
	case KindTwoState:
		return mis.NewTwoState(g, opts...)
	case KindThreeState:
		return mis.NewThreeState(g, opts...)
	case KindThreeColor:
		return mis.NewThreeColor(g, opts...)
	default:
		panic(fmt.Sprintf("experiment: unknown kind %v", k))
	}
}

// measurement is a stabilization-time sample set plus bookkeeping.
type measurement struct {
	rounds    []float64
	bits      []float64
	failures  int // runs that hit the round cap
	misBroken int // stabilized runs whose black set is not an MIS (must be 0)
	trials    int
}

// summary of the round samples; panics if all trials failed.
func (m *measurement) summary() stats.Summary { return stats.Summarize(m.rounds) }

// runTrials measures the stabilization time of `kind` over `trials` runs on
// graphs produced by gen (called once per trial with a per-trial seed so
// random graph families resample each time). Trials are independent and run
// on a worker pool sized to the machine; results are deterministic
// regardless of scheduling because every trial derives from its own seed.
func runTrials(kind Kind, gen func(seed uint64) *graph.Graph, trials int, roundCap int, masterSeed uint64, opts ...mis.Option) *measurement {
	type outcome struct {
		rounds    float64
		bits      float64
		failed    bool
		misBroken bool
	}
	master := xrand.New(masterSeed)
	outcomes := make([]outcome, trials)
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				trialSeed := master.Split(uint64(t)).Uint64()
				g := gen(trialSeed)
				limit := roundCap
				if limit <= 0 {
					limit = mis.DefaultRoundCap(g.N())
				}
				p := newProcess(kind, g, append([]mis.Option{mis.WithSeed(trialSeed)}, opts...)...)
				res := mis.Run(p, limit)
				switch {
				case !res.Stabilized:
					outcomes[t].failed = true
				case verify.MIS(g, p.Black) != nil:
					outcomes[t].misBroken = true
				default:
					outcomes[t] = outcome{rounds: float64(res.Rounds), bits: float64(res.RandomBits)}
				}
			}
		}()
	}
	for t := 0; t < trials; t++ {
		next <- t
	}
	close(next)
	wg.Wait()

	m := &measurement{trials: trials}
	for _, o := range outcomes {
		switch {
		case o.failed:
			m.failures++
		case o.misBroken:
			m.misBroken++
		default:
			m.rounds = append(m.rounds, o.rounds)
			m.bits = append(m.bits, o.bits)
		}
	}
	return m
}

// fixedGraph adapts a pre-built graph to the gen signature.
func fixedGraph(g *graph.Graph) func(uint64) *graph.Graph {
	return func(uint64) *graph.Graph { return g }
}

// scalingRow formats the standard scaling columns for a measurement at size n.
func scalingRow(t *Table, n int, m *measurement) {
	if len(m.rounds) == 0 {
		t.AddRow(n, "-", "-", "-", "-", "-", "-", fmt.Sprintf("%d/%d FAILED", m.failures, m.trials))
		return
	}
	s := m.summary()
	ln := math.Log(float64(n))
	status := "ok"
	if m.failures > 0 {
		status = fmt.Sprintf("%d/%d capped", m.failures, m.trials)
	}
	if m.misBroken > 0 {
		status = fmt.Sprintf("%d NON-MIS", m.misBroken)
	}
	t.AddRow(n, s.Mean, s.MeanCI95(), s.Median, s.Max, s.Mean/ln, s.Max/(ln*ln), status)
}

// scalingColumns is the header matching scalingRow.
func scalingColumns() []string {
	return []string{"n", "mean", "±95%", "median", "max", "mean/ln n", "max/ln² n", "status"}
}

// polylogNote fits T ≈ c·ln^k n to the per-size means and renders the claim
// check note.
func polylogNote(ns []int, means []float64) string {
	if len(ns) < 2 {
		return "too few sizes for a fit"
	}
	fn := make([]float64, len(ns))
	for i, n := range ns {
		fn[i] = float64(n)
	}
	c, k, r2 := stats.PolylogFit(fn, means)
	_, kPow, _ := stats.PowerFit(fn, means)
	return fmt.Sprintf("polylog fit: T ≈ %.2f·ln^%.2f(n) (R²=%.3f); power-law exponent if forced: n^%.3f",
		c, k, r2, kPow)
}

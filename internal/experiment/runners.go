package experiment

import (
	"fmt"
	"math"
	"time"

	"ssmis/internal/batch"
	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/stats"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

// GraphGen describes how a cell obtains its graphs: one fixed graph — built
// once and shared read-only across every trial by the batch scheduler's
// shard mechanism — or a fresh graph drawn per trial seed.
type GraphGen struct {
	fixed *graph.Graph
	gen   func(seed uint64) *graph.Graph
}

// FixedGraph adapts a pre-built graph: all trials share it.
func FixedGraph(g *graph.Graph) GraphGen { return GraphGen{fixed: g} }

// PerSeed adapts a random graph family: trial t samples gen(seed_t).
func PerSeed(gen func(seed uint64) *graph.Graph) GraphGen { return GraphGen{gen: gen} }

// At materializes the graph for one seed (custom per-trial loops).
func (g GraphGen) At(seed uint64) *graph.Graph {
	if g.fixed != nil {
		return g.fixed
	}
	return g.gen(seed)
}

// Measurement is a stabilization-time sample set plus bookkeeping. The
// samples live in streaming accumulators (Welford mean/CI, counting-map
// quantiles), fed in trial order by the scheduler's in-order delivery, so a
// cell never materializes per-run slices and its numbers are independent of
// the pool's worker count.
type Measurement struct {
	rounds    *stats.Stream // quantile stream over stabilization rounds
	bits      *stats.Stream // plain stream over random-bit totals
	failures  int           // runs that hit the round cap
	misBroken int           // stabilized runs whose black set is not an MIS (must be 0)
	trials    int
}

// NewMeasurement returns an empty measurement expecting the given trial
// count (custom aggregation loops — compiled scenarios on non-simulator
// runtimes — feed it through Add).
func NewMeasurement(trials int) *Measurement {
	return &Measurement{
		rounds: stats.NewQuantileStream(),
		bits:   stats.NewStream(),
		trials: trials,
	}
}

// Count returns the number of successful runs aggregated so far.
func (m *Measurement) Count() int { return m.rounds.N() }

// Summary of the round samples; panics if all trials failed.
func (m *Measurement) Summary() stats.Summary { return m.rounds.Summary() }

// Failures returns the number of runs that hit the round cap.
func (m *Measurement) Failures() int { return m.failures }

// Broken returns the number of stabilized runs whose black set failed MIS
// verification (any nonzero value is a simulator bug).
func (m *Measurement) Broken() int { return m.misBroken }

// Trials returns the trial count the measurement was created with.
func (m *Measurement) Trials() int { return m.trials }

// RoundsValues returns the per-run stabilization-round samples in trial
// order (the tail-analysis input; allocates a copy).
func (m *Measurement) RoundsValues() []float64 { return m.rounds.Values() }

// Add folds one scheduler outcome into the aggregates.
func (m *Measurement) Add(o batch.Outcome) {
	switch {
	case o.Failed:
		m.failures++
	case o.Broken:
		m.misBroken++
	default:
		m.rounds.Add(float64(o.Rounds))
		m.bits.Add(float64(o.Bits))
	}
}

// TrialSeeds derives the harness's standard per-trial seeds: trial t uses
// xrand.New(masterSeed).Split(t).Uint64().
func TrialSeeds(masterSeed uint64, trials int) []uint64 {
	master := xrand.New(masterSeed)
	seeds := make([]uint64, trials)
	for t := range seeds {
		seeds[t] = master.Split(uint64(t)).Uint64()
	}
	return seeds
}

// RunTrials measures the stabilization time of `kind` over `trials` runs on
// graphs produced by gen, submitted as one shard to the configuration's
// shared work-stealing pool. Fixed graphs are built once and shared
// read-only across the shard; per-seed families sample inside the job.
// Results are deterministic regardless of scheduling: every trial derives
// from its own seed and outcomes aggregate in trial order.
func RunTrials(cfg Config, kind Kind, gen GraphGen, trials int, roundCap int, masterSeed uint64, opts ...mis.Option) *Measurement {
	start := time.Now()
	label := fmt.Sprintf("%v trials=%d seed=%d", kind, trials, masterSeed)
	sh := batch.Shard{
		Seeds: TrialSeeds(masterSeed, trials),
		Run: func(rc *engine.RunContext, g *graph.Graph, _ int, seed uint64) batch.Outcome {
			if g == nil {
				g = gen.gen(seed)
			}
			limit := roundCap
			if limit <= 0 {
				limit = mis.DefaultRoundCap(g.N())
			}
			p := NewProcess(kind, g, append([]mis.Option{mis.WithRunContext(rc), mis.WithSeed(seed)}, cfg.procOpts(opts...)...)...)
			res := mis.Run(p, limit)
			switch {
			case !res.Stabilized:
				return batch.Outcome{Failed: true}
			case verify.MIS(g, p.Black) != nil:
				return batch.Outcome{Broken: true}
			}
			return batch.Outcome{Rounds: res.Rounds, Bits: res.RandomBits}
		},
	}
	if gen.fixed != nil {
		g := gen.fixed
		sh.Build = func() *graph.Graph { return g }
	}
	m := NewMeasurement(trials)
	// With a sweep checkpoint attached, the cell's journaled prefix replays
	// through the reorder buffer instead of re-running, and new in-order
	// deliveries extend the journal (checkpoint.go).
	opt := batch.SubmitOptions{ChunkSize: cfg.Chunk}
	if cfg.Checkpoint != nil {
		opt.Replay, opt.Record = cfg.Checkpoint.cell(label, trials)
	}
	cfg.pool().SubmitOpts([]batch.Shard{sh}, opt, m.Add).Wait()
	cfg.logCell(label, trials, time.Since(start))
	return m
}

// RunJobs submits one pool job per trial for cells that measure something
// other than plain stabilization times: trial t runs job(rc, t, seed_t) on
// a worker (seed derivation as in RunTrials) and its payload is handed
// back, in trial order, to collect. The harness's custom per-trial loops
// (runtime equivalence, churn chains, fault attacks, daemon schedules, ...)
// all route through here so a missweep invocation keeps every worker busy
// across experiment boundaries.
func RunJobs(cfg Config, label string, trials int, masterSeed uint64,
	job func(rc *engine.RunContext, t int, seed uint64) any,
	collect func(t int, payload any)) {
	RunJobsOver(cfg, label, TrialSeeds(masterSeed, trials), job, collect)
}

// RunJobsOver is RunJobs with an explicit seed list (one job per entry; job
// t receives seeds[t]).
func RunJobsOver(cfg Config, label string, seeds []uint64,
	job func(rc *engine.RunContext, t int, seed uint64) any,
	collect func(t int, payload any)) {
	start := time.Now()
	sh := batch.Shard{
		Seeds: seeds,
		Run: func(rc *engine.RunContext, _ *graph.Graph, i int, seed uint64) batch.Outcome {
			return batch.Outcome{Extra: job(rc, i, seed)}
		},
	}
	cfg.pool().SubmitOpts([]batch.Shard{sh}, batch.SubmitOptions{ChunkSize: cfg.Chunk}, func(o batch.Outcome) {
		collect(o.Index, o.Extra)
	}).Wait()
	cfg.logCell(label, len(seeds), time.Since(start))
}

// ScalingRow formats the standard scaling columns for a Measurement at size n.
func ScalingRow(t *Table, n int, m *Measurement) {
	if m.Count() == 0 {
		t.AddRow(n, "-", "-", "-", "-", "-", "-", fmt.Sprintf("%d/%d FAILED", m.failures, m.trials))
		return
	}
	s := m.Summary()
	ln := math.Log(float64(n))
	status := "ok"
	if m.failures > 0 {
		status = fmt.Sprintf("%d/%d capped", m.failures, m.trials)
	}
	if m.misBroken > 0 {
		status = fmt.Sprintf("%d NON-MIS", m.misBroken)
	}
	t.AddRow(n, s.Mean, s.MeanCI95(), s.Median, s.Max, s.Mean/ln, s.Max/(ln*ln), status)
}

// ScalingColumns is the header matching ScalingRow.
func ScalingColumns() []string {
	return []string{"n", "mean", "±95%", "median", "max", "mean/ln n", "max/ln² n", "status"}
}

// PolylogNote fits T ≈ c·ln^k n to the per-size means and renders the claim
// check note.
func PolylogNote(ns []int, means []float64) string {
	if len(ns) < 2 {
		return "too few sizes for a fit"
	}
	fn := make([]float64, len(ns))
	for i, n := range ns {
		fn[i] = float64(n)
	}
	c, k, r2 := stats.PolylogFit(fn, means)
	_, kPow, _ := stats.PowerFit(fn, means)
	return fmt.Sprintf("polylog fit: T ≈ %.2f·ln^%.2f(n) (R²=%.3f); power-law exponent if forced: n^%.3f",
		c, k, r2, kPow)
}

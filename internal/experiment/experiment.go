// Package experiment is the reproduction harness: it maps every
// quantitative claim of the paper (theorems, lemmas, remarks — the paper has
// no numbered tables or figures, so the claims play that role) to a runnable
// experiment that regenerates the corresponding numbers as a formatted
// table. The registry is consumed by cmd/missweep and by the module-level
// benchmarks in bench_test.go; EXPERIMENTS.md records the outcomes.
package experiment

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ssmis/internal/batch"
	"ssmis/internal/mis"
)

// Config controls the cost of a run.
type Config struct {
	// Scale multiplies problem sizes and trial counts. 1.0 is the full
	// EXPERIMENTS.md configuration; 0.25 is the quick configuration used by
	// benchmarks and smoke tests. Values are clamped to [0.05, 4].
	Scale float64
	// Seed is the master seed; every trial derives from it.
	Seed uint64
	// Pool, when non-nil, is the work-stealing scheduler every cell submits
	// its runs to. cmd/missweep creates one per invocation and shares it
	// across all selected experiments, so the pool's workers stay busy
	// across experiment boundaries (cross-experiment parallelism). Nil falls
	// back to a lazily created process-wide pool sized to GOMAXPROCS.
	Pool *batch.Pool
	// Cells, when non-nil, collects per-cell wall times (one entry per
	// scheduler submission) for the sweep commands' timing reports.
	Cells *CellLog
	// Chunk caps how many seeds of one cell a pool worker claims at a time
	// (the missweep -batch flag); <= 0 lets the scheduler choose.
	Chunk int
	// Checkpoint, when non-nil, journals this experiment's measurement
	// cells into a sweep checkpoint and replays any journaled prefix on
	// resume (the missweep -checkpoint/-resume flags); see checkpoint.go.
	Checkpoint *ExperimentCheckpoint
	// ScalarEngine forces every process the harness constructs onto the
	// engine's scalar interface path instead of the bit-sliced kernels (the
	// missweep -scalar flag). The paths are coin-for-coin identical, so the
	// tables must not change — the CI kernel-vs-scalar sweep smoke compares
	// them byte for byte.
	ScalarEngine bool
	// IdentityOrder opts every process out of the locality relabeling the
	// kernel path auto-selects on large graphs (the missweep -identity-order
	// flag). Relabeled runs are graph isomorphisms of identity-ordered ones,
	// so the tables must not change — the CI relabel sweep smoke compares
	// them byte for byte.
	IdentityOrder bool
}

// ProcOpts prepends the configuration-level process options (the
// scalar-engine and identity-order switches) to a cell's own options; every
// runner that constructs a process directly must route its options through
// here so the -scalar and -identity-order invariance smokes cover it.
func (c Config) ProcOpts(opts ...mis.Option) []mis.Option { return c.procOpts(opts...) }

// procOpts prepends the configuration-level process options (the
// scalar-engine and identity-order switches) to a cell's own options.
func (c Config) procOpts(opts ...mis.Option) []mis.Option {
	var pre []mis.Option
	if c.ScalarEngine {
		pre = append(pre, mis.WithScalarEngine())
	}
	if c.IdentityOrder {
		pre = append(pre, mis.WithIdentityOrder())
	}
	if len(pre) == 0 {
		return opts
	}
	return append(pre, opts...)
}

// CellLog accumulates per-cell wall-time measurements; safe for concurrent
// use (cells from concurrently running experiments interleave).
type CellLog struct {
	mu    sync.Mutex
	cells []Cell
}

// Cell is one timed scheduler submission.
type Cell struct {
	Label   string
	Jobs    int
	Elapsed time.Duration
}

func (l *CellLog) add(c Cell) {
	l.mu.Lock()
	l.cells = append(l.cells, c)
	l.mu.Unlock()
}

// Cells returns a copy of the log.
func (l *CellLog) Cells() []Cell {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Cell(nil), l.cells...)
}

// defaultPool is the fallback scheduler for configurations without an
// explicit pool (library users, tests, benchmarks).
var defaultPool struct {
	once sync.Once
	p    *batch.Pool
}

// pool returns the scheduler this configuration submits to.
func (c Config) pool() *batch.Pool {
	if c.Pool != nil {
		return c.Pool
	}
	defaultPool.once.Do(func() { defaultPool.p = batch.NewPool(0) })
	return defaultPool.p
}

// logCell records one timed cell when a log is attached.
func (c Config) logCell(label string, jobs int, elapsed time.Duration) {
	if c.Cells != nil {
		c.Cells.add(Cell{Label: label, Jobs: jobs, Elapsed: elapsed})
	}
}

// DefaultConfig is the full-scale configuration.
func DefaultConfig() Config { return Config{Scale: 1, Seed: 2023} }

// QuickConfig is the reduced configuration for benchmarks and CI.
func QuickConfig() Config { return Config{Scale: 0.25, Seed: 2023} }

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Scale < 0.05 {
		c.Scale = 0.05
	}
	if c.Scale > 4 {
		c.Scale = 4
	}
	if c.Seed == 0 {
		c.Seed = 2023
	}
	return c
}

// trials scales a base trial count, keeping at least 3.
func (c Config) trials(base int) int {
	t := int(float64(base) * c.Scale)
	if t < 3 {
		t = 3
	}
	return t
}

// sizes drops the largest entries of a size ladder at reduced scale: at
// scale >= 1 all sizes run; at scale s only the first ceil(s*len) + 1
// entries (at least 2) run.
func (c Config) sizes(ladder []int) []int {
	if c.Scale >= 1 {
		return ladder
	}
	keep := int(c.Scale*float64(len(ladder))) + 1
	if keep < 2 {
		keep = 2
	}
	if keep > len(ladder) {
		keep = len(ladder)
	}
	return ladder[:keep]
}

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1000 || x <= -1000:
		return fmt.Sprintf("%.0f", x)
	case x >= 10 || x <= -10:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.2f", x)
	}
}

// Render returns a fixed-width text rendering.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV returns a comma-separated rendering (values containing commas are not
// expected and are quoted defensively).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCells := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeCells(t.Columns)
	for _, row := range t.Rows {
		writeCells(row)
	}
	return b.String()
}

// Experiment binds a paper claim to a runnable reproduction.
type Experiment struct {
	// ID is the experiment identifier, e.g. "E1".
	ID string
	// Title is a short description.
	Title string
	// Claim quotes the paper result being reproduced.
	Claim string
	// Run executes the experiment and returns its tables.
	Run func(cfg Config) []Table
}

// Registry returns all experiments in ID order.
func Registry() []Experiment {
	exps := []Experiment{
		e01CliqueTwoState(),
		e02DisjointCliques(),
		e03CliqueThreeState(),
		e04BoundedArboricity(),
		e05MaxDegree(),
		e06GnpTwoState(),
		e07GnpThreeColor(),
		e08LogSwitch(),
		e09GoodGraph(),
		e10Baselines(),
		e11SelfStabilization(),
		e12Runtimes(),
		e13Ablations(),
		e14LocalTimes(),
		e15TopologyChurn(),
		e16MISQuality(),
		e17RestartScheme(),
		e18DaemonSchedules(),
		e19AsyncDrift(),
	}
	sort.Slice(exps, func(i, j int) bool { return idOrder(exps[i].ID) < idOrder(exps[j].ID) })
	return exps
}

func idOrder(id string) int {
	var k int
	fmt.Sscanf(id, "E%d", &k)
	return k
}

// ByID looks an experiment up; ok is false for unknown ids.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

package experiment

// Experiments E15–E16: consequences of self-stabilization beyond the
// paper's explicit statements, measured because a systems adopter would ask
// for them. E15: topology churn — links appear/disappear under a stabilized
// process which keeps its states (the sensor-network motivation of §1).
// E16: solution quality — MIS size by algorithm, since downstream users of
// an MIS (clusterheads, schedulers) care how large the independent set is.

import (
	"fmt"
	"math"

	"ssmis/internal/baseline"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/stats"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

func e15TopologyChurn() Experiment {
	return Experiment{
		ID:    "E15",
		Title: "Topology churn: re-stabilization after edge flips",
		Claim: "Implicit in self-stabilization (§1, wireless sensor networks): a topology change is just another perturbation — the process re-converges from its current states, and locally for local changes",
		Run: func(cfg Config) []Table {
			cfg = cfg.normalized()
			trials := cfg.trials(30)
			n := int(1024 * math.Min(cfg.Scale*2, 1))
			if n < 200 {
				n = 200
			}
			churns := []int{1, 4, 16, 64, 256}
			t := Table{
				Title:   fmt.Sprintf("E15: 2-state re-stabilization after k edge toggles (G(%d, avg 12))", n),
				Columns: []string{"k toggles", "recovery mean", "recovery max", "fresh mean", "recovery/fresh"},
			}
			master := xrand.New(cfg.Seed + 31)
			var freshRounds []float64
			perChurn := make(map[int][]float64, len(churns))
			for i := 0; i < trials; i++ {
				seed := master.Split(uint64(i)).Uint64()
				g := graph.GnpAvgDegree(n, 12, xrand.New(seed))
				p := mis.NewTwoState(g, mis.WithSeed(seed))
				res := mis.Run(p, 8*mis.DefaultRoundCap(n))
				if !res.Stabilized {
					continue
				}
				freshRounds = append(freshRounds, float64(res.Rounds))
				churnRng := master.Split(uint64(10000 + i))
				for _, k := range churns {
					g2, _ := g.WithRandomChurn(k, churnRng)
					p.Rebind(g2)
					before := p.Round()
					rec := mis.Run(p, before+8*mis.DefaultRoundCap(n))
					if !rec.Stabilized || verify.MIS(g2, p.Black) != nil {
						continue
					}
					perChurn[k] = append(perChurn[k], float64(rec.Rounds-before))
					g = g2 // keep churning the same evolving network
				}
			}
			if len(freshRounds) == 0 {
				t.AddRow("-", "-", "-", "-", "-")
				return []Table{t}
			}
			fresh := stats.Summarize(freshRounds)
			for _, k := range churns {
				rs := perChurn[k]
				if len(rs) == 0 {
					t.AddRow(k, "-", "-", fresh.Mean, "-")
					continue
				}
				s := stats.Summarize(rs)
				t.AddRow(k, s.Mean, s.Max, fresh.Mean, s.Mean/fresh.Mean)
			}
			t.Notes = append(t.Notes,
				"claim shape: recovery cost grows with churn size and approaches (but does not exceed) a fresh start; single-link churn is near-free")
			return []Table{t}
		},
	}
}

func e16MISQuality() Experiment {
	return Experiment{
		ID:    "E16",
		Title: "MIS size by algorithm (solution quality)",
		Claim: "Context for adopters: the paper optimizes stabilization time and state, not MIS size — this table shows what, if anything, that costs in solution quality",
		Run: func(cfg Config) []Table {
			cfg = cfg.normalized()
			trials := cfg.trials(30)
			n := int(2048 * math.Min(cfg.Scale*2, 1))
			if n < 256 {
				n = 256
			}
			families := []struct {
				name string
				gen  func(seed uint64) *graph.Graph
			}{
				{"gnp-avg12", func(seed uint64) *graph.Graph {
					return graph.GnpAvgDegree(n, 12, xrand.New(seed))
				}},
				{"tree", func(seed uint64) *graph.Graph {
					return graph.RandomTree(n, xrand.New(seed))
				}},
				{"powerlaw-2.3", func(seed uint64) *graph.Graph {
					return graph.ChungLu(n, 2.3, 12, xrand.New(seed))
				}},
			}
			var tables []Table
			for _, fam := range families {
				t := Table{
					Title:   fmt.Sprintf("E16: MIS size on %s (n=%d)", fam.name, n),
					Columns: []string{"algorithm", "size mean", "±95%", "size/n"},
				}
				master := xrand.New(cfg.Seed + 41)
				sizesByAlg := map[string][]float64{}
				algOrder := []string{"2-state", "3-state", "Luby", "perm-greedy", "greedy(id)"}
				for i := 0; i < trials; i++ {
					seed := master.Split(uint64(i)).Uint64()
					g := fam.gen(seed)
					p2 := mis.NewTwoState(g, mis.WithSeed(seed))
					if mis.Run(p2, 8*mis.DefaultRoundCap(n)).Stabilized {
						sizesByAlg["2-state"] = append(sizesByAlg["2-state"], float64(countBlack(p2)))
					}
					p3 := mis.NewThreeState(g, mis.WithSeed(seed))
					if mis.Run(p3, 8*mis.DefaultRoundCap(n)).Stabilized {
						sizesByAlg["3-state"] = append(sizesByAlg["3-state"], float64(countBlack(p3)))
					}
					sizesByAlg["Luby"] = append(sizesByAlg["Luby"], float64(countTrue(baseline.Luby(g, seed).InMIS)))
					sizesByAlg["perm-greedy"] = append(sizesByAlg["perm-greedy"], float64(countTrue(baseline.PermutationGreedy(g, seed).InMIS)))
					sizesByAlg["greedy(id)"] = append(sizesByAlg["greedy(id)"], float64(countTrue(baseline.GreedyMIS(g, nil))))
				}
				for _, alg := range algOrder {
					xs := sizesByAlg[alg]
					if len(xs) == 0 {
						t.AddRow(alg, "-", "-", "-")
						continue
					}
					s := stats.Summarize(xs)
					t.AddRow(alg, s.Mean, s.MeanCI95(), s.Mean/float64(n))
				}
				t.Notes = append(t.Notes,
					"shape: all algorithms produce statistically similar MIS sizes — the constant-state processes pay no solution-quality penalty")
				tables = append(tables, t)
			}
			return tables
		},
	}
}

func countBlack(p mis.Process) int {
	c := 0
	for u := 0; u < p.N(); u++ {
		if p.Black(u) {
			c++
		}
	}
	return c
}

func countTrue(mask []bool) int {
	c := 0
	for _, b := range mask {
		if b {
			c++
		}
	}
	return c
}

package experiment

// Experiments E15–E16: consequences of self-stabilization beyond the
// paper's explicit statements, measured because a systems adopter would ask
// for them. E15: topology churn — links appear/disappear under a stabilized
// process which keeps its states (the sensor-network motivation of §1).
// E16: solution quality — MIS size by algorithm, since downstream users of
// an MIS (clusterheads, schedulers) care how large the independent set is.

import (
	"fmt"
	"math"

	"ssmis/internal/baseline"
	"ssmis/internal/engine"
	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/stats"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

func e15TopologyChurn() Experiment {
	return Experiment{
		ID:    "E15",
		Title: "Topology churn: re-stabilization after edge flips",
		Claim: "Implicit in self-stabilization (§1, wireless sensor networks): a topology change is just another perturbation — the process re-converges from its current states, and locally for local changes",
		Run: func(cfg Config) []Table {
			cfg = cfg.normalized()
			trials := cfg.trials(30)
			n := int(1024 * math.Min(cfg.Scale*2, 1))
			if n < 200 {
				n = 200
			}
			churns := []int{1, 4, 16, 64, 256}
			t := Table{
				Title:   fmt.Sprintf("E15: 2-state re-stabilization after k edge toggles (G(%d, avg 12))", n),
				Columns: []string{"k toggles", "recovery mean", "recovery max", "fresh mean", "recovery/fresh"},
			}
			freshRounds := stats.NewStream()
			perChurn := make(map[int]*stats.Stream, len(churns))
			for _, k := range churns {
				perChurn[k] = stats.NewStream()
			}
			// Each trial is one pool job running the whole churn chain (the
			// evolving network is inherently sequential within a trial).
			type churnRec struct {
				k      int
				rounds float64
			}
			type churnTrial struct {
				fresh float64
				ok    bool
				recs  []churnRec
			}
			RunJobs(cfg, "E15 churn", trials, cfg.Seed+31,
				func(rc *engine.RunContext, t int, seed uint64) any {
					g := graph.GnpAvgDegree(n, 12, xrand.New(seed))
					p := mis.NewTwoState(g, mis.WithRunContext(rc), mis.WithSeed(seed))
					res := mis.Run(p, 8*mis.DefaultRoundCap(n))
					if !res.Stabilized {
						return churnTrial{}
					}
					out := churnTrial{fresh: float64(res.Rounds), ok: true}
					churnRng := xrand.New(cfg.Seed + 31).Split(uint64(10000 + t))
					for _, k := range churns {
						g2, _ := g.WithRandomChurn(k, churnRng)
						p.Rebind(g2)
						before := p.Round()
						rec := mis.Run(p, before+8*mis.DefaultRoundCap(n))
						if !rec.Stabilized || verify.MIS(g2, p.Black) != nil {
							continue
						}
						out.recs = append(out.recs, churnRec{k: k, rounds: float64(rec.Rounds - before)})
						g = g2 // keep churning the same evolving network
					}
					return out
				},
				func(_ int, payload any) {
					tr := payload.(churnTrial)
					if !tr.ok {
						return
					}
					freshRounds.Add(tr.fresh)
					for _, r := range tr.recs {
						perChurn[r.k].Add(r.rounds)
					}
				})
			if freshRounds.N() == 0 {
				t.AddRow("-", "-", "-", "-", "-")
				return []Table{t}
			}
			for _, k := range churns {
				rs := perChurn[k]
				if rs.N() == 0 {
					t.AddRow(k, "-", "-", freshRounds.Mean(), "-")
					continue
				}
				t.AddRow(k, rs.Mean(), rs.Max(), freshRounds.Mean(), rs.Mean()/freshRounds.Mean())
			}
			t.Notes = append(t.Notes,
				"claim shape: recovery cost grows with churn size and approaches (but does not exceed) a fresh start; single-link churn is near-free")
			return []Table{t}
		},
	}
}

func e16MISQuality() Experiment {
	return Experiment{
		ID:    "E16",
		Title: "MIS size by algorithm (solution quality)",
		Claim: "Context for adopters: the paper optimizes stabilization time and state, not MIS size — this table shows what, if anything, that costs in solution quality",
		Run: func(cfg Config) []Table {
			cfg = cfg.normalized()
			trials := cfg.trials(30)
			n := int(2048 * math.Min(cfg.Scale*2, 1))
			if n < 256 {
				n = 256
			}
			families := []struct {
				name string
				gen  func(seed uint64) *graph.Graph
			}{
				{"gnp-avg12", func(seed uint64) *graph.Graph {
					return graph.GnpAvgDegree(n, 12, xrand.New(seed))
				}},
				{"tree", func(seed uint64) *graph.Graph {
					return graph.RandomTree(n, xrand.New(seed))
				}},
				{"powerlaw-2.3", func(seed uint64) *graph.Graph {
					return graph.ChungLu(n, 2.3, 12, xrand.New(seed))
				}},
			}
			var tables []Table
			for _, fam := range families {
				t := Table{
					Title:   fmt.Sprintf("E16: MIS size on %s (n=%d)", fam.name, n),
					Columns: []string{"algorithm", "size mean", "±95%", "size/n"},
				}
				algOrder := []string{"2-state", "3-state", "Luby", "perm-greedy", "greedy(id)"}
				sizesByAlg := map[string]*stats.Stream{}
				for _, alg := range algOrder {
					sizesByAlg[alg] = stats.NewStream()
				}
				// One pool job per trial; the payload maps algorithm → MIS
				// size (absent when a process failed to stabilize).
				RunJobs(cfg, "E16 quality "+fam.name, trials, cfg.Seed+41,
					func(rc *engine.RunContext, _ int, seed uint64) any {
						sizes := map[string]float64{}
						g := fam.gen(seed)
						p2 := mis.NewTwoState(g, mis.WithRunContext(rc), mis.WithSeed(seed))
						if mis.Run(p2, 8*mis.DefaultRoundCap(n)).Stabilized {
							sizes["2-state"] = float64(countBlack(p2))
						}
						p3 := mis.NewThreeState(g, mis.WithRunContext(rc), mis.WithSeed(seed))
						if mis.Run(p3, 8*mis.DefaultRoundCap(n)).Stabilized {
							sizes["3-state"] = float64(countBlack(p3))
						}
						sizes["Luby"] = float64(countTrue(baseline.Luby(g, seed).InMIS))
						sizes["perm-greedy"] = float64(countTrue(baseline.PermutationGreedy(g, seed).InMIS))
						sizes["greedy(id)"] = float64(countTrue(baseline.GreedyMIS(g, nil)))
						return sizes
					},
					func(_ int, payload any) {
						for alg, sz := range payload.(map[string]float64) {
							sizesByAlg[alg].Add(sz)
						}
					})
				for _, alg := range algOrder {
					xs := sizesByAlg[alg]
					if xs.N() == 0 {
						t.AddRow(alg, "-", "-", "-")
						continue
					}
					t.AddRow(alg, xs.Mean(), xs.MeanCI95(), xs.Mean()/float64(n))
				}
				t.Notes = append(t.Notes,
					"shape: all algorithms produce statistically similar MIS sizes — the constant-state processes pay no solution-quality penalty")
				tables = append(tables, t)
			}
			return tables
		},
	}
}

func countBlack(p mis.Process) int {
	c := 0
	for u := 0; u < p.N(); u++ {
		if p.Black(u) {
			c++
		}
	}
	return c
}

func countTrue(mask []bool) int {
	c := 0
	for _, b := range mask {
		if b {
			c++
		}
	}
	return c
}

package bitset

import (
	"math/bits"
	"testing"

	"ssmis/internal/xrand"
)

// Word-level iteration must enumerate exactly the elements ForEach does, in
// the same increasing order, across sizes that exercise empty words, full
// words, and a partial tail word.
func TestForEachWordMatchesForEach(t *testing.T) {
	rng := xrand.New(3)
	for _, n := range []int{1, 63, 64, 65, 127, 200, 513} {
		for _, density := range []float64{0, 0.03, 0.5, 1} {
			s := New(n)
			for i := 0; i < n; i++ {
				if rng.Float64() < density {
					s.Add(i)
				}
			}
			var perBit, perWord []int
			s.ForEach(func(i int) { perBit = append(perBit, i) })
			s.ForEachWord(func(base int, w uint64) {
				for ; w != 0; w &= w - 1 {
					perWord = append(perWord, base+bits.TrailingZeros64(w))
				}
			})
			if len(perBit) != len(perWord) {
				t.Fatalf("n=%d density=%v: %d elements per-bit, %d per-word", n, density, len(perBit), len(perWord))
			}
			for i := range perBit {
				if perBit[i] != perWord[i] {
					t.Fatalf("n=%d density=%v: element %d is %d per-bit, %d per-word",
						n, density, i, perBit[i], perWord[i])
				}
			}
		}
	}
}

// ForEachWordInRange must agree with ForEachInRange element-for-element,
// including ranges that split words and ranges clamped to the universe.
func TestForEachWordInRangeMatchesForEachInRange(t *testing.T) {
	s := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		s.Add(i)
	}
	ranges := [][2]int{{0, 200}, {1, 64}, {63, 65}, {64, 128}, {128, 199}, {-5, 1000}, {70, 70}, {80, 60}, {190, 200}}
	for _, r := range ranges {
		var perBit, perWord []int
		s.ForEachInRange(r[0], r[1], func(i int) { perBit = append(perBit, i) })
		s.ForEachWordInRange(r[0], r[1], func(base int, w uint64) {
			for ; w != 0; w &= w - 1 {
				perWord = append(perWord, base+bits.TrailingZeros64(w))
			}
		})
		if len(perBit) != len(perWord) {
			t.Fatalf("range %v: %v per-bit vs %v per-word", r, perBit, perWord)
		}
		for i := range perBit {
			if perBit[i] != perWord[i] {
				t.Fatalf("range %v: %v per-bit vs %v per-word", r, perBit, perWord)
			}
		}
	}
}

func TestSetWordMasksTail(t *testing.T) {
	s := New(70) // two words, 6 live bits in the tail word
	s.SetWord(0, ^uint64(0))
	s.SetWord(1, ^uint64(0))
	if got := s.Count(); got != 70 {
		t.Fatalf("count after full SetWord = %d, want 70", got)
	}
	if s.Word(1) != (1<<6)-1 {
		t.Fatalf("tail word = %#x, want %#x", s.Word(1), uint64(1<<6)-1)
	}
	s.SetWord(0, 0b1010)
	if s.Contains(0) || !s.Contains(1) || s.Contains(2) || !s.Contains(3) {
		t.Fatal("SetWord bits landed on wrong elements")
	}
	if s.Words() != 2 {
		t.Fatalf("Words() = %d, want 2", s.Words())
	}
}

// benchSet builds a deterministic set of the given size and density.
func benchSet(n int, density float64) *Set {
	rng := xrand.New(11)
	s := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			s.Add(i)
		}
	}
	return s
}

// The word-parallel satellite's claim: iterating a worklist a word at a time
// beats the per-element callback. sink defeats dead-code elimination.
var sink int

func benchForEach(b *testing.B, n int, density float64) {
	s := benchSet(n, density)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := 0
		s.ForEach(func(u int) { acc += u })
		sink = acc
	}
}

func benchForEachWord(b *testing.B, n int, density float64) {
	s := benchSet(n, density)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := 0
		s.ForEachWord(func(base int, w uint64) {
			for ; w != 0; w &= w - 1 {
				acc += base + bits.TrailingZeros64(w)
			}
		})
		sink = acc
	}
}

func BenchmarkForEachDense64k(b *testing.B)      { benchForEach(b, 1<<16, 0.9) }
func BenchmarkForEachWordDense64k(b *testing.B)  { benchForEachWord(b, 1<<16, 0.9) }
func BenchmarkForEachMid64k(b *testing.B)        { benchForEach(b, 1<<16, 0.2) }
func BenchmarkForEachWordMid64k(b *testing.B)    { benchForEachWord(b, 1<<16, 0.2) }
func BenchmarkForEachSparse64k(b *testing.B)     { benchForEach(b, 1<<16, 0.005) }
func BenchmarkForEachWordSparse64k(b *testing.B) { benchForEachWord(b, 1<<16, 0.005) }

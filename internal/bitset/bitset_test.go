package bitset

import (
	"sync"
	"testing"
	"testing/quick"

	"ssmis/internal/xrand"
)

func TestBasicMembership(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("fresh set contains %d", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("set does not contain %d after Add", i)
		}
		s.Remove(i)
		if s.Contains(i) {
			t.Fatalf("set contains %d after Remove", i)
		}
	}
}

func TestSetToAndFlip(t *testing.T) {
	s := New(70)
	s.SetTo(69, true)
	if !s.Contains(69) {
		t.Fatal("SetTo(69,true) failed")
	}
	s.SetTo(69, false)
	if s.Contains(69) {
		t.Fatal("SetTo(69,false) failed")
	}
	s.Flip(3)
	if !s.Contains(3) {
		t.Fatal("Flip on absent element failed")
	}
	s.Flip(3)
	if s.Contains(3) {
		t.Fatal("Flip on present element failed")
	}
}

func TestCountAndEmpty(t *testing.T) {
	s := New(200)
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("fresh set not empty")
	}
	for i := 0; i < 200; i += 3 {
		s.Add(i)
	}
	if got, want := s.Count(), 67; got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	if s.Empty() {
		t.Fatal("nonempty set reported Empty")
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear did not empty the set")
	}
}

func TestFillRespectsCapacity(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.Fill()
		if got := s.Count(); got != n {
			t.Fatalf("Fill on capacity %d gives Count %d", n, got)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(100)
	b := New(100)
	for i := 0; i < 100; i += 2 {
		a.Add(i) // evens
	}
	for i := 0; i < 100; i += 3 {
		b.Add(i) // multiples of 3
	}

	u := a.Clone()
	u.Union(b)
	inter := a.Clone()
	inter.Intersect(b)
	diff := a.Clone()
	diff.Subtract(b)

	for i := 0; i < 100; i++ {
		even, mult3 := i%2 == 0, i%3 == 0
		if u.Contains(i) != (even || mult3) {
			t.Fatalf("union wrong at %d", i)
		}
		if inter.Contains(i) != (even && mult3) {
			t.Fatalf("intersection wrong at %d", i)
		}
		if diff.Contains(i) != (even && !mult3) {
			t.Fatalf("difference wrong at %d", i)
		}
	}
	if got, want := a.IntersectionCount(b), inter.Count(); got != want {
		t.Fatalf("IntersectionCount = %d, want %d", got, want)
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects false for overlapping sets")
	}
	empty := New(100)
	if a.Intersects(empty) {
		t.Fatal("Intersects true against empty set")
	}
}

func TestEqualAndClone(t *testing.T) {
	a := New(64)
	a.Add(5)
	a.Add(63)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal to original")
	}
	b.Add(6)
	if a.Equal(b) {
		t.Fatal("modified clone equal to original")
	}
	if a.Equal(New(65)) {
		t.Fatal("sets of different capacity reported equal")
	}
	c := New(64)
	c.CopyFrom(a)
	if !c.Equal(a) {
		t.Fatal("CopyFrom result differs")
	}
}

func TestForEachOrderAndElements(t *testing.T) {
	s := New(300)
	want := []int{0, 2, 64, 128, 199, 299}
	for _, i := range want {
		s.Add(i)
	}
	got := s.Elements(nil)
	if len(got) != len(want) {
		t.Fatalf("Elements = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elements = %v, want %v", got, want)
		}
	}
}

func TestString(t *testing.T) {
	s := New(20)
	if got := s.String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
	s.Add(1)
	s.Add(10)
	if got := s.String(); got != "{1 10}" {
		t.Fatalf("String = %q, want {1 10}", got)
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Union across capacities did not panic")
		}
	}()
	New(10).Union(New(11))
}

// Property: De Morgan-ish identity |A ∪ B| = |A| + |B| − |A ∩ B| over random
// sets.
func TestInclusionExclusionProperty(t *testing.T) {
	rng := xrand.New(77)
	f := func(seed uint64) bool {
		r := rng.Split(seed)
		n := 1 + r.Intn(257)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if r.Bit() {
				a.Add(i)
			}
			if r.Bit() {
				b.Add(i)
			}
		}
		u := a.Clone()
		u.Union(b)
		return u.Count() == a.Count()+b.Count()-a.IntersectionCount(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Subtract then Union with the subtrahend's intersection restores
// nothing beyond the original: (A \ B) ∩ B = ∅ and (A \ B) ∪ (A ∩ B) = A.
func TestSubtractPartitionProperty(t *testing.T) {
	rng := xrand.New(78)
	f := func(seed uint64) bool {
		r := rng.Split(seed)
		n := 1 + r.Intn(200)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if r.Bit() {
				a.Add(i)
			}
			if r.Bit() {
				b.Add(i)
			}
		}
		diff := a.Clone()
		diff.Subtract(b)
		if diff.Intersects(b) {
			return false
		}
		inter := a.Clone()
		inter.Intersect(b)
		diff.Union(inter)
		return diff.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCount(b *testing.B) {
	s := New(1 << 16)
	for i := 0; i < s.Len(); i += 7 {
		s.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Count()
	}
}

func BenchmarkForEach(b *testing.B) {
	s := New(1 << 16)
	for i := 0; i < s.Len(); i += 7 {
		s.Add(i)
	}
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		s.ForEach(func(j int) { sink += j })
	}
	_ = sink
}

func TestForEachInRange(t *testing.T) {
	s := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		s.Add(i)
	}
	collect := func(lo, hi int) []int {
		var out []int
		s.ForEachInRange(lo, hi, func(i int) { out = append(out, i) })
		return out
	}
	cases := []struct {
		lo, hi int
		want   []int
	}{
		{0, 200, []int{0, 1, 63, 64, 65, 127, 128, 199}},
		{1, 64, []int{1, 63}},
		{63, 65, []int{63, 64}},
		{64, 128, []int{64, 65, 127}},
		{128, 199, []int{128}},
		{-5, 1000, []int{0, 1, 63, 64, 65, 127, 128, 199}},
		{70, 70, nil},
		{80, 60, nil},
	}
	for _, c := range cases {
		got := collect(c.lo, c.hi)
		if len(got) != len(c.want) {
			t.Fatalf("range [%d,%d): got %v, want %v", c.lo, c.hi, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("range [%d,%d): got %v, want %v", c.lo, c.hi, got, c.want)
			}
		}
	}
}

func TestAddAtomicConcurrent(t *testing.T) {
	const n = 4096
	s := New(n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				s.AddAtomic(i)
			}
		}(w)
	}
	wg.Wait()
	if s.Count() != n {
		t.Fatalf("concurrent AddAtomic: count = %d, want %d", s.Count(), n)
	}
}

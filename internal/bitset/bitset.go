// Package bitset provides a dense, fixed-capacity bitset used by the
// synchronous-process simulator to represent per-round vertex sets (black
// vertices, active vertices, stable vertices, ...) with O(n/64) word
// operations. The simulator's inner loop is dominated by set queries and
// population counts, which this representation makes cache-friendly.
package bitset

import (
	"math/bits"
	"strings"
	"sync/atomic"
)

const wordBits = 64

// Set is a fixed-capacity bitset over the universe [0, Len()). The zero value
// is an empty set of capacity zero; use New to size it.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set over the universe [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity (universe size) of the set.
func (s *Set) Len() int { return s.n }

// Reset reshapes s into an empty set over the universe [0, n), reusing the
// existing word allocation when its capacity suffices. It is the recycling
// primitive behind the engine's per-worker run contexts: a batch worker
// resets the same sets for every run instead of allocating fresh ones.
func (s *Set) Reset(n int) {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	words := (n + wordBits - 1) / wordBits
	if cap(s.words) < words {
		s.words = make([]uint64, words)
	} else {
		s.words = s.words[:words]
		for i := range s.words {
			s.words[i] = 0
		}
	}
	s.n = n
}

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// SetTo adds i when v is true and removes it otherwise.
func (s *Set) SetTo(i int, v bool) {
	if v {
		s.Add(i)
	} else {
		s.Remove(i)
	}
}

// AddAtomic inserts i with an atomic OR on the containing word, making
// concurrent insertions from multiple goroutines safe. Mixing AddAtomic with
// the non-atomic mutators on the same set concurrently is not safe.
func (s *Set) AddAtomic(i int) {
	atomic.OrUint64(&s.words[i/wordBits], 1<<(uint(i)%wordBits))
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Flip toggles membership of i.
func (s *Set) Flip(i int) {
	s.words[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill adds every element of the universe.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes the bits above the universe size in the last word, preserving
// the invariant that Count never sees phantom elements.
func (s *Set) trim() {
	if rem := uint(s.n) % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << rem) - 1
	}
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// CopyFrom overwrites s with the contents of t. The sets must have the same
// capacity.
func (s *Set) CopyFrom(t *Set) {
	s.mustMatch(t)
	copy(s.words, t.words)
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// Union sets s = s ∪ t.
func (s *Set) Union(t *Set) {
	s.mustMatch(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Intersect sets s = s ∩ t.
func (s *Set) Intersect(t *Set) {
	s.mustMatch(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// Subtract sets s = s \ t.
func (s *Set) Subtract(t *Set) {
	s.mustMatch(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Equal reports whether s and t contain exactly the same elements. Sets of
// different capacity are never equal.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ t is nonempty.
func (s *Set) Intersects(t *Set) bool {
	s.mustMatch(t)
	for i, w := range t.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// IntersectionCount returns |s ∩ t| without materializing the intersection.
func (s *Set) IntersectionCount(t *Set) int {
	s.mustMatch(t)
	c := 0
	for i, w := range t.words {
		c += bits.OnesCount64(s.words[i] & w)
	}
	return c
}

// ForEach calls fn for every element of the set in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(base + tz)
			w &= w - 1
		}
	}
}

// Words returns the number of 64-bit words backing the set: ⌈Len()/64⌉.
func (s *Set) Words() int { return len(s.words) }

// Word returns the wi-th backing word; bit b of word wi is element 64·wi+b.
// Bits at or above the universe size are always zero.
func (s *Set) Word(wi int) uint64 { return s.words[wi] }

// SetWord overwrites the wi-th backing word wholesale. Bits above the
// universe size in the final word are masked off, preserving the Count
// invariant. It is the word-parallel counterpart of SetTo: the engine's
// bit-sliced kernel re-derives 64 memberships at a time and lands them here
// with one store instead of 64 Contains/SetTo round trips.
func (s *Set) SetWord(wi int, w uint64) {
	s.words[wi] = w
	if wi == len(s.words)-1 {
		s.trim()
	}
}

// ForEachWord calls fn once per nonzero backing word, in increasing order,
// passing the word's base element index (a multiple of 64) and the word
// itself. Iterating set bits with bits.TrailingZeros64 at the call site
// costs one closure call per 64-element word instead of one per element,
// which is what makes dense worklist scans word-parallel:
//
//	s.ForEachWord(func(base int, w uint64) {
//		for ; w != 0; w &= w - 1 {
//			u := base + bits.TrailingZeros64(w)
//			...
//		}
//	})
func (s *Set) ForEachWord(fn func(base int, w uint64)) {
	for wi, w := range s.words {
		if w != 0 {
			fn(wi*wordBits, w)
		}
	}
}

// ForEachWordInRange calls fn once per backing word with at least one
// element in [lo, hi), masked so only bits inside the range appear. lo and
// hi are clamped to the universe. Word-aligned ranges see their words
// unmasked, so partitioned callers pay no extra work.
func (s *Set) ForEachWordInRange(lo, hi int, fn func(base int, w uint64)) {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return
	}
	for wi := lo / wordBits; wi <= (hi-1)/wordBits; wi++ {
		w := s.words[wi]
		base := wi * wordBits
		if base < lo {
			w &^= (1 << uint(lo-base)) - 1
		}
		if base+wordBits > hi {
			w &= (1 << uint(hi-base)) - 1
		}
		if w != 0 {
			fn(base, w)
		}
	}
}

// ForEachInRange calls fn for every element of s in [lo, hi), in increasing
// order. lo and hi are clamped to the universe; the common caller partitions
// the universe into word-aligned chunks, making per-chunk iteration touch
// disjoint words.
func (s *Set) ForEachInRange(lo, hi int, fn func(i int)) {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return
	}
	for wi := lo / wordBits; wi <= (hi-1)/wordBits; wi++ {
		w := s.words[wi]
		base := wi * wordBits
		// Mask off bits below lo in the first word and at/above hi in the last.
		if base < lo {
			w &^= (1 << uint(lo-base)) - 1
		}
		if base+wordBits > hi {
			w &= (1 << uint(hi-base)) - 1
		}
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(base + tz)
			w &= w - 1
		}
	}
}

// Elements appends the elements of s, in increasing order, to dst and returns
// the extended slice. Pass nil to allocate.
func (s *Set) Elements(dst []int) []int {
	s.ForEach(func(i int) { dst = append(dst, i) })
	return dst
}

// String renders the set as a compact element list, e.g. "{1 5 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		writeInt(&b, i)
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) mustMatch(t *Set) {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
}

// writeInt writes the decimal representation of non-negative v without
// allocating via fmt.
func writeInt(b *strings.Builder, v int) {
	if v == 0 {
		b.WriteByte('0')
		return
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	b.Write(buf[i:])
}

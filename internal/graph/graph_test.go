package graph

import (
	"testing"
	"testing/quick"

	"ssmis/internal/xrand"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Build()
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("got n=%d m=%d, want 4, 4", g.N(), g.M())
	}
	for u := 0; u < 4; u++ {
		if g.Degree(u) != 2 {
			t.Fatalf("vertex %d degree %d, want 2", u, g.Degree(u))
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("M = %d after duplicate edges, want 1", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatal("duplicate edges inflated degrees")
	}
}

func TestBuilderPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"self-loop":    func() { NewBuilder(3).AddEdge(1, 1) },
		"out-of-range": func() { NewBuilder(3).AddEdge(0, 3) },
		"negative":     func() { NewBuilder(3).AddEdge(-1, 0) },
		"negative-n":   func() { NewBuilder(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNeighborsSorted(t *testing.T) {
	rng := xrand.New(1)
	g := Gnp(200, 0.1, rng)
	for u := 0; u < g.N(); u++ {
		nbrs := g.Neighbors(u)
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i-1] >= nbrs[i] {
				t.Fatalf("neighbors of %d not strictly sorted: %v", u, nbrs)
			}
		}
	}
}

func TestCSRSymmetric(t *testing.T) {
	rng := xrand.New(2)
	g := Gnp(150, 0.05, rng)
	g.Edges(func(u, v int) {
		if !g.HasEdge(v, u) {
			t.Fatalf("edge {%d,%d} not symmetric", u, v)
		}
	})
	// Degree sum equals 2m.
	sum := 0
	for u := 0; u < g.N(); u++ {
		sum += g.Degree(u)
	}
	if sum != 2*g.M() {
		t.Fatalf("degree sum %d != 2m = %d", sum, 2*g.M())
	}
}

func TestCompleteGraph(t *testing.T) {
	g := Complete(10)
	if g.M() != 45 {
		t.Fatalf("K_10 has %d edges, want 45", g.M())
	}
	if d := g.Diameter(); d != 1 {
		t.Fatalf("K_10 diameter %d, want 1", d)
	}
	if g.MaxDegree() != 9 {
		t.Fatal("K_10 max degree wrong")
	}
}

// MaxDegree is memoized at build time (the engine's counter-width selection
// reads it on shared read-only graphs); it must agree with a degree scan on
// every construction path — builder, relabeling, and edge edits.
func TestMaxDegreeMemo(t *testing.T) {
	scan := func(g *Graph) int {
		m := 0
		for u := 0; u < g.N(); u++ {
			if d := g.Degree(u); d > m {
				m = d
			}
		}
		return m
	}
	graphs := []*Graph{
		Path(1), Star(50), Complete(12), Caterpillar(10, 3),
		Gnp(300, 0.03, xrand.New(5)), ChungLu(500, 2.2, 6, xrand.New(5)),
	}
	for i, g := range graphs {
		if got, want := g.MaxDegree(), scan(g); got != want {
			t.Fatalf("graph %d: MaxDegree %d, scan says %d", i, got, want)
		}
		perm := make([]int32, g.N())
		for j := range perm {
			perm[j] = int32(g.N() - 1 - j)
		}
		r := Relabel(g, perm)
		if got, want := r.MaxDegree(), scan(r); got != want {
			t.Fatalf("graph %d relabeled: MaxDegree %d, scan says %d", i, got, want)
		}
	}
	g := Star(6)
	if t1 := g.WithEdgeToggled(1, 2); t1.MaxDegree() != scan(t1) {
		t.Fatal("edge toggle stale memo")
	}
	if t2 := g.WithEdgeToggled(0, 1); t2.MaxDegree() != scan(t2) {
		t.Fatal("edge removal stale memo")
	}
}

func TestPathCycleStar(t *testing.T) {
	if g := Path(5); g.M() != 4 || g.Diameter() != 4 {
		t.Fatalf("Path(5): m=%d diam=%d", g.M(), g.Diameter())
	}
	if g := Cycle(6); g.M() != 6 || g.Diameter() != 3 {
		t.Fatalf("Cycle(6): m=%d diam=%d", g.M(), g.Diameter())
	}
	if g := Star(7); g.M() != 6 || g.Degree(0) != 6 || g.Diameter() != 2 {
		t.Fatalf("Star(7) wrong")
	}
	if g := Path(1); g.N() != 1 || g.M() != 0 {
		t.Fatal("Path(1) wrong")
	}
}

func TestTreesAreTrees(t *testing.T) {
	rng := xrand.New(3)
	for _, n := range []int{1, 2, 3, 10, 100, 1000} {
		for name, g := range map[string]*Graph{
			"RandomTree":         RandomTree(n, rng),
			"UniformLabeledTree": UniformLabeledTree(n, rng),
		} {
			if g.N() != n {
				t.Fatalf("%s(%d) has %d vertices", name, n, g.N())
			}
			if g.M() != n-1 && n > 0 {
				t.Fatalf("%s(%d) has %d edges, want %d", name, n, g.M(), n-1)
			}
			if !g.Connected() {
				t.Fatalf("%s(%d) disconnected", name, n)
			}
		}
	}
	if g := CompleteBinaryTree(15); g.M() != 14 || !g.Connected() || g.Diameter() != 6 {
		t.Fatal("CompleteBinaryTree(15) wrong")
	}
}

func TestGridTorusHypercube(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 || g.M() != 3*3+2*4 {
		t.Fatalf("Grid(3,4): n=%d m=%d", g.N(), g.M())
	}
	if g.Diameter() != 5 {
		t.Fatalf("Grid(3,4) diameter %d, want 5", g.Diameter())
	}
	tor := Torus(4, 4)
	if tor.M() != 2*16 {
		t.Fatalf("Torus(4,4) m=%d, want 32", tor.M())
	}
	for u := 0; u < tor.N(); u++ {
		if tor.Degree(u) != 4 {
			t.Fatal("Torus not 4-regular")
		}
	}
	h := Hypercube(4)
	if h.N() != 16 || h.M() != 32 || h.Diameter() != 4 {
		t.Fatalf("Hypercube(4): n=%d m=%d diam=%d", h.N(), h.M(), h.Diameter())
	}
}

func TestDisjointCliques(t *testing.T) {
	g := DisjointCliques(4, 5)
	if g.N() != 20 || g.M() != 4*10 {
		t.Fatalf("DisjointCliques(4,5): n=%d m=%d", g.N(), g.M())
	}
	_, count := g.ConnectedComponents()
	if count != 4 {
		t.Fatalf("components = %d, want 4", count)
	}
	if g.Diameter() != -1 {
		t.Fatal("disconnected graph should report diameter -1")
	}
}

func TestCliqueChain(t *testing.T) {
	g := CliqueChain(3, 4)
	if g.N() != 12 || g.M() != 3*6+2 {
		t.Fatalf("CliqueChain(3,4): n=%d m=%d", g.N(), g.M())
	}
	if !g.Connected() {
		t.Fatal("CliqueChain disconnected")
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.N() != 7 || g.M() != 12 || g.Diameter() != 2 {
		t.Fatalf("K_{3,4}: n=%d m=%d diam=%d", g.N(), g.M(), g.Diameter())
	}
}

func TestGnpEdgeCases(t *testing.T) {
	rng := xrand.New(4)
	if g := Gnp(50, 0, rng); g.M() != 0 {
		t.Fatal("Gnp(p=0) has edges")
	}
	if g := Gnp(20, 1, rng); g.M() != 190 {
		t.Fatalf("Gnp(p=1) m=%d, want 190", g.M())
	}
	if g := Gnp(0, 0.5, rng); g.N() != 0 {
		t.Fatal("Gnp(n=0) wrong")
	}
	if g := Gnp(1, 0.5, rng); g.N() != 1 || g.M() != 0 {
		t.Fatal("Gnp(n=1) wrong")
	}
}

func TestGnpEdgeCountConcentrates(t *testing.T) {
	rng := xrand.New(5)
	// Both code paths: sparse (skipping) and dense (enumeration).
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9} {
		const n = 400
		total := float64(n*(n-1)) / 2
		want := p * total
		// Average over a few graphs to tighten.
		sum := 0.0
		const reps = 5
		for i := 0; i < reps; i++ {
			sum += float64(Gnp(n, p, rng).M())
		}
		got := sum / reps
		sigma := sqrtf(total * p * (1 - p) / reps)
		if absf(got-want) > 6*sigma+1 {
			t.Fatalf("Gnp(%d,%.2f) mean edges %.0f, want ≈ %.0f (±%.0f)", n, p, got, want, 6*sigma)
		}
	}
}

func TestGnpPairCoverageUniform(t *testing.T) {
	// Every pair must be reachable by the sparse generator: generate many
	// sparse graphs on a small n and check each pair appears.
	rng := xrand.New(6)
	const n = 12
	seen := make(map[[2]int]bool)
	for i := 0; i < 400; i++ {
		g := Gnp(n, 0.15, rng)
		g.Edges(func(u, v int) { seen[[2]int{u, v}] = true })
	}
	if len(seen) != n*(n-1)/2 {
		t.Fatalf("sparse Gnp covered %d/%d pairs", len(seen), n*(n-1)/2)
	}
}

func TestPairFromIndex(t *testing.T) {
	for _, n := range []int{2, 3, 5, 17, 100} {
		k := int64(0)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				gu, gv := pairFromIndex(k, n)
				if gu != u || gv != v {
					t.Fatalf("pairFromIndex(%d, n=%d) = (%d,%d), want (%d,%d)", k, n, gu, gv, u, v)
				}
				k++
			}
		}
	}
}

func TestGnpAvgDegree(t *testing.T) {
	rng := xrand.New(7)
	g := GnpAvgDegree(2000, 10, rng)
	if d := g.AvgDegree(); d < 8 || d > 12 {
		t.Fatalf("GnpAvgDegree(2000, 10) average degree %.2f", d)
	}
	if g := GnpAvgDegree(1, 5, rng); g.N() != 1 {
		t.Fatal("GnpAvgDegree(n=1) wrong")
	}
}

func TestRandomRegular(t *testing.T) {
	rng := xrand.New(8)
	g := RandomRegular(100, 6, rng)
	if g.N() != 100 {
		t.Fatal("RandomRegular wrong n")
	}
	short := 0
	for u := 0; u < g.N(); u++ {
		d := g.Degree(u)
		if d > 6 {
			t.Fatalf("vertex %d degree %d > 6", u, d)
		}
		if d < 6 {
			short++
		}
	}
	if short > 5 {
		t.Fatalf("%d vertices below target degree", short)
	}
}

func TestBoundedDegeneracyRandom(t *testing.T) {
	rng := xrand.New(9)
	g := BoundedDegeneracyRandom(500, 3, rng)
	if d := g.Degeneracy(); d > 3 {
		t.Fatalf("degeneracy %d > 3", d)
	}
	if !g.Connected() {
		t.Fatal("BoundedDegeneracyRandom disconnected")
	}
}

func TestCaterpillarAndLollipop(t *testing.T) {
	g := Caterpillar(5, 3)
	if g.N() != 20 || g.M() != 19 || !g.Connected() {
		t.Fatalf("Caterpillar(5,3): n=%d m=%d", g.N(), g.M())
	}
	if g.MaxDegree() < 4 {
		t.Fatal("Caterpillar spine degree too small")
	}
	l := Lollipop(5, 4)
	if l.N() != 9 || l.M() != 10+4 || !l.Connected() {
		t.Fatalf("Lollipop(5,4): n=%d m=%d", l.N(), l.M())
	}
}

func TestBFSAndComponents(t *testing.T) {
	g := Path(5)
	dist := g.BFS(0)
	for i, d := range dist {
		if d != i {
			t.Fatalf("BFS on path: dist[%d]=%d", i, d)
		}
	}
	g2 := DisjointCliques(2, 3)
	dist2 := g2.BFS(0)
	if dist2[3] != -1 {
		t.Fatal("BFS reached another component")
	}
}

func TestDegeneracy(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"empty", Empty(5), 0},
		{"path", Path(10), 1},
		{"tree", CompleteBinaryTree(31), 1},
		{"cycle", Cycle(10), 2},
		{"K5", Complete(5), 4},
		{"grid", Grid(5, 5), 2},
		{"K33", CompleteBipartite(3, 3), 3},
	}
	for _, c := range cases {
		if got := c.g.Degeneracy(); got != c.want {
			t.Errorf("%s degeneracy = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestDegeneracyOrderingIsValid(t *testing.T) {
	rng := xrand.New(10)
	g := Gnp(300, 0.05, rng)
	d, order := g.DegeneracyOrdering()
	if len(order) != g.N() {
		t.Fatalf("ordering length %d", len(order))
	}
	pos := make([]int, g.N())
	seen := make([]bool, g.N())
	for i, u := range order {
		if seen[u] {
			t.Fatalf("vertex %d repeated in ordering", u)
		}
		seen[u] = true
		pos[u] = i
	}
	// Every vertex has at most d neighbors later in the order.
	for u := 0; u < g.N(); u++ {
		later := 0
		for _, v := range g.Neighbors(u) {
			if pos[v] > pos[u] {
				later++
			}
		}
		if later > d {
			t.Fatalf("vertex %d has %d later neighbors, degeneracy claimed %d", u, later, d)
		}
	}
}

func TestArboricityBounds(t *testing.T) {
	lo, hi := Path(10).ArboricityBounds()
	if lo != 1 || hi != 1 {
		t.Fatalf("path arboricity bounds [%d,%d], want [1,1]", lo, hi)
	}
	lo, hi = Complete(6).ArboricityBounds()
	// arboricity(K6) = 3; degeneracy = 5.
	if lo > 3 || hi < 3 {
		t.Fatalf("K6 arboricity bounds [%d,%d] exclude 3", lo, hi)
	}
	if lo, hi := Empty(4).ArboricityBounds(); lo != 0 || hi != 0 {
		t.Fatal("empty graph arboricity bounds wrong")
	}
}

func TestCommonNeighbors(t *testing.T) {
	g := Complete(6)
	if c := g.CommonNeighbors(0, 1); c != 4 {
		t.Fatalf("K6 common neighbors = %d, want 4", c)
	}
	if m := g.MaxCommonNeighbors(); m != 4 {
		t.Fatalf("K6 max common neighbors = %d, want 4", m)
	}
	p := Path(4)
	if c := p.CommonNeighbors(0, 2); c != 1 {
		t.Fatal("path common neighbors wrong")
	}
	if m := p.MaxCommonNeighbors(); m != 1 {
		t.Fatalf("path max common neighbors = %d, want 1", m)
	}
	if m := Empty(3).MaxCommonNeighbors(); m != 0 {
		t.Fatal("empty graph max common neighbors wrong")
	}
	if m := Star(10).MaxCommonNeighbors(); m != 1 {
		t.Fatalf("star max common neighbors = %d, want 1", m)
	}
}

func TestDiameterAtMostTwo(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"K5", Complete(5), true},
		{"star", Star(20), true},
		{"K33", CompleteBipartite(3, 3), true},
		{"path4", Path(4), false},
		{"cycle5", Cycle(5), true},
		{"cycle6", Cycle(6), false},
		{"disconnected", DisjointCliques(2, 3), false},
		{"single", Empty(1), true},
	}
	for _, c := range cases {
		if got := c.g.DiameterAtMostTwo(); got != c.want {
			t.Errorf("%s DiameterAtMostTwo = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestDiameterAtMostTwoMatchesDiameter(t *testing.T) {
	rng := xrand.New(11)
	f := func(seed uint64) bool {
		r := rng.Split(seed)
		n := 2 + r.Intn(40)
		g := Gnp(n, 0.3+0.5*r.Float64(), r)
		d := g.Diameter()
		return g.DiameterAtMostTwo() == (d >= 0 && d <= 2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(6)
	sub, orig := g.InducedSubgraph([]int{1, 3, 5})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced K3: n=%d m=%d", sub.N(), sub.M())
	}
	if orig[0] != 1 || orig[1] != 3 || orig[2] != 5 {
		t.Fatalf("orig mapping %v", orig)
	}
	p := Path(5)
	sub2, _ := p.InducedSubgraph([]int{0, 2, 4})
	if sub2.M() != 0 {
		t.Fatal("independent set induced edges")
	}
}

func TestInducedSubgraphDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate vertex")
		}
	}()
	Path(5).InducedSubgraph([]int{1, 1})
}

func TestNeighborhoodClosureAndEdgesBetween(t *testing.T) {
	g := Path(5) // 0-1-2-3-4
	mask := g.NeighborhoodClosure([]int{2})
	want := []bool{false, true, true, true, false}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("closure mask %v, want %v", mask, want)
		}
	}
	s := []bool{true, true, false, false, false}  // {0,1}
	tt := []bool{false, false, true, true, false} // {2,3}
	if c := g.EdgesBetween(s, tt); c != 1 {
		t.Fatalf("EdgesBetween = %d, want 1", c)
	}
}

func TestAvgDegreeOfSubset(t *testing.T) {
	g := Complete(6)
	if d := g.AvgDegreeOfSubset([]int{0, 1, 2}); d != 2 {
		t.Fatalf("avg degree of K3 subset = %v, want 2", d)
	}
	if d := g.AvgDegreeOfSubset(nil); d != 0 {
		t.Fatal("empty subset avg degree wrong")
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := Star(5).DegreeHistogram()
	if h[1] != 4 || h[4] != 1 {
		t.Fatalf("star degree histogram %v", h)
	}
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	if g.M() != 2 || g.Degree(1) != 2 {
		t.Fatal("FromEdges wrong")
	}
}

// Property: building from a random edge set reproduces exactly that edge set.
func TestBuildRoundTripProperty(t *testing.T) {
	rng := xrand.New(12)
	f := func(seed uint64) bool {
		r := rng.Split(seed)
		n := 2 + r.Intn(50)
		want := make(map[[2]int]bool)
		b := NewBuilder(n)
		for i := 0; i < r.Intn(100); i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			want[[2]int{u, v}] = true
			b.AddEdge(u, v)
		}
		g := b.Build()
		got := make(map[[2]int]bool)
		g.Edges(func(u, v int) { got[[2]int{u, v}] = true })
		if len(got) != len(want) {
			return false
		}
		for e := range want {
			if !got[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func BenchmarkGnpSparse(b *testing.B) {
	rng := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Gnp(10000, 0.001, rng)
	}
}

func BenchmarkDegeneracy(b *testing.B) {
	g := Gnp(5000, 0.002, xrand.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Degeneracy()
	}
}

package graph

// This file implements structural metrics used by the experiments and by the
// (n,p)-good-graph checker: BFS distances, connected components, exact
// diameter, degeneracy (which sandwiches arboricity: arboricity <= degeneracy
// <= 2*arboricity - 1), and common-neighbor statistics (property P5).

// BFS returns the distance from src to every vertex (-1 if unreachable).
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		u := int(queue[0])
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ConnectedComponents returns a component id per vertex and the number of
// components. Ids are assigned in order of discovery from vertex 0.
func (g *Graph) ConnectedComponents() (comp []int, count int) {
	comp = make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	for src := 0; src < g.N(); src++ {
		if comp[src] != -1 {
			continue
		}
		comp[src] = count
		queue = append(queue[:0], int32(src))
		for len(queue) > 0 {
			u := int(queue[0])
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if comp[v] == -1 {
					comp[v] = count
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return comp, count
}

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	_, c := g.ConnectedComponents()
	return c <= 1
}

// Diameter returns the exact diameter via all-pairs BFS, or -1 if the graph
// is disconnected or empty. O(n·m); intended for experiment-scale graphs.
func (g *Graph) Diameter() int {
	if g.N() == 0 {
		return -1
	}
	diam := 0
	for u := 0; u < g.N(); u++ {
		dist := g.BFS(u)
		for _, d := range dist {
			if d == -1 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// DiameterAtMostTwo reports whether every pair of distinct vertices is
// adjacent or has a common neighbor (property P6 of good graphs). It runs in
// O(n·Δ²/64) via per-vertex neighborhood bitmaps, much faster than full BFS
// for the dense graphs where it is true.
func (g *Graph) DiameterAtMostTwo() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	// mark[v] is true when v is u, a neighbor of u, or a neighbor of a
	// neighbor of u.
	mark := make([]int32, n) // stamp per source, avoids clearing
	for i := range mark {
		mark[i] = -1
	}
	for u := 0; u < n; u++ {
		stamp := int32(u)
		mark[u] = stamp
		for _, v := range g.Neighbors(u) {
			mark[v] = stamp
			for _, w := range g.Neighbors(int(v)) {
				mark[w] = stamp
			}
		}
		for v := 0; v < n; v++ {
			if mark[v] != stamp {
				return false
			}
		}
	}
	return true
}

// DegeneracyOrdering returns the degeneracy d of the graph and an elimination
// ordering in which every vertex has at most d neighbors appearing later.
// Uses the linear-time bucket-queue peeling algorithm.
func (g *Graph) DegeneracyOrdering() (degeneracy int, order []int) {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg[u] = g.Degree(u)
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// Bucket queue over current degrees.
	buckets := make([][]int32, maxDeg+1)
	for u := 0; u < n; u++ {
		buckets[deg[u]] = append(buckets[deg[u]], int32(u))
	}
	removed := make([]bool, n)
	order = make([]int, 0, n)
	cur := 0
	for len(order) < n {
		// The minimum degree can drop by at most 1 per removal; rewind one
		// step then scan forward.
		if cur > 0 {
			cur--
		}
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		// Pop a vertex whose recorded bucket is still accurate.
		bucket := buckets[cur]
		u := int(bucket[len(bucket)-1])
		buckets[cur] = bucket[:len(bucket)-1]
		if removed[u] || deg[u] != cur {
			continue // stale entry
		}
		removed[u] = true
		order = append(order, u)
		if cur > degeneracy {
			degeneracy = cur
		}
		for _, v := range g.Neighbors(u) {
			if !removed[v] {
				deg[v]--
				buckets[deg[v]] = append(buckets[deg[v]], v)
			}
		}
	}
	return degeneracy, order
}

// Degeneracy returns only the degeneracy number.
func (g *Graph) Degeneracy() int {
	d, _ := g.DegeneracyOrdering()
	return d
}

// ArboricityBounds returns lower and upper bounds on the arboricity using the
// degeneracy d: ceil((d+1)/2) <= arboricity <= d.
func (g *Graph) ArboricityBounds() (lo, hi int) {
	d := g.Degeneracy()
	if d == 0 {
		return 0, 0
	}
	return (d + 2) / 2, d
}

// CommonNeighbors returns |N(u) ∩ N(v)| by merging the two sorted lists.
func (g *Graph) CommonNeighbors(u, v int) int {
	a, b := g.Neighbors(u), g.Neighbors(v)
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// MaxCommonNeighbors returns max over all vertex pairs of |N(u) ∩ N(v)|
// (property P5 of good graphs). It counts, for every vertex w, the pairs of
// neighbors of w, in O(Σ_w deg(w)²) time — exact, intended for n up to a few
// thousand at G(n,p) densities. Pairs at distance > 2 trivially share no
// neighbors and are never enumerated.
func (g *Graph) MaxCommonNeighbors() int {
	n := g.N()
	if n < 2 {
		return 0
	}
	// counts[pair] via stamped per-source accumulation: for each u, count
	// two-hop multiplicity to every v > u.
	cnt := make([]int, n)
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	best := 0
	for u := 0; u < n; u++ {
		su := int32(u)
		for _, w := range g.Neighbors(u) {
			for _, v := range g.Neighbors(int(w)) {
				if int(v) <= u {
					continue
				}
				if stamp[v] != su {
					stamp[v] = su
					cnt[v] = 0
				}
				cnt[v]++
				if cnt[v] > best {
					best = cnt[v]
				}
			}
		}
	}
	return best
}

// NeighborhoodClosure computes N+(S) = S ∪ N(S) and returns it as a boolean
// mask over the vertices.
func (g *Graph) NeighborhoodClosure(s []int) []bool {
	mask := make([]bool, g.N())
	for _, u := range s {
		mask[u] = true
		for _, v := range g.Neighbors(u) {
			mask[v] = true
		}
	}
	return mask
}

// EdgesBetween returns |E(S, T)| for vertex sets given as boolean masks; an
// edge with both endpoints in S ∩ T is counted once.
func (g *Graph) EdgesBetween(s, t []bool) int {
	c := 0
	g.Edges(func(u, v int) {
		if (s[u] && t[v]) || (s[v] && t[u]) {
			c++
		}
	})
	return c
}

// AvgDegreeOfSubset returns the average degree of the induced subgraph G[S]
// where S is given as a vertex list: 2|E(S)|/|S| (0 for empty S).
func (g *Graph) AvgDegreeOfSubset(s []int) float64 {
	if len(s) == 0 {
		return 0
	}
	in := make(map[int]bool, len(s))
	for _, u := range s {
		in[u] = true
	}
	edges := 0
	for _, u := range s {
		for _, v := range g.Neighbors(u) {
			if int(v) > u && in[int(v)] {
				edges++
			}
		}
	}
	return 2 * float64(edges) / float64(len(s))
}

// ISqrt returns the integer square root ⌊√n⌋ (1 for n < 1): the side length
// used to shape "about n vertices" into grid and disjoint-clique families
// by the commands and the experiment harness.
func ISqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

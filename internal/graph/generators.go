package graph

import (
	"fmt"
	"math"

	"ssmis/internal/xrand"
)

// Complete returns the complete graph K_n (Theorem 8's workload).
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Empty returns the edgeless graph on n vertices.
func Empty(n int) *Graph {
	return NewBuilder(n).Build()
}

// Path returns the path 0-1-...-(n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u+1 < n; u++ {
		b.AddEdge(u, u+1)
	}
	return b.Build()
}

// Cycle returns the n-cycle (n >= 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle requires n >= 3")
	}
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		b.AddEdge(u, (u+1)%n)
	}
	return b.Build()
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for u := 1; u < n; u++ {
		b.AddEdge(0, u)
	}
	return b.Build()
}

// CompleteBinaryTree returns the complete binary tree on n vertices with root
// 0 and children 2i+1, 2i+2 (heap layout).
func CompleteBinaryTree(n int) *Graph {
	b := NewBuilder(n)
	for u := 1; u < n; u++ {
		b.AddEdge(u, (u-1)/2)
	}
	return b.Build()
}

// RandomTree returns a uniformly random recursive tree on n vertices: vertex
// i > 0 attaches to a uniform vertex in [0, i). Such trees have expected
// maximum degree Θ(log n) and arboricity 1, the family of Theorem 11.
func RandomTree(n int, rng *xrand.Rand) *Graph {
	b := NewBuilder(n)
	for u := 1; u < n; u++ {
		b.AddEdge(u, rng.Intn(u))
	}
	return b.Build()
}

// UniformLabeledTree returns a uniformly random labeled tree on n vertices,
// sampled via a random Prüfer sequence (n >= 1).
func UniformLabeledTree(n int, rng *xrand.Rand) *Graph {
	if n <= 2 {
		return Path(n)
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for _, v := range prufer {
		deg[v]++
	}
	b := NewBuilder(n)
	// ptr/leaf scan (O(n) amortized with the standard two-pointer method).
	ptr := 0
	for deg[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range prufer {
		b.AddEdge(leaf, v)
		deg[v]--
		if deg[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	b.AddEdge(leaf, n-1)
	return b.Build()
}

// Grid returns the rows×cols grid graph (4-neighborhood). Arboricity 2.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Torus returns the rows×cols torus (wrap-around grid; rows, cols >= 3).
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: Torus requires rows, cols >= 3")
	}
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id(r, (c+1)%cols))
			b.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return b.Build()
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
func Hypercube(d int) *Graph {
	if d < 0 || d > 24 {
		panic("graph: Hypercube dimension out of range [0,24]")
	}
	n := 1 << uint(d)
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for bit := 0; bit < d; bit++ {
			v := u ^ (1 << uint(bit))
			if v > u {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// DisjointCliques returns the disjoint union of count cliques each of size
// size (Remark 9's workload: √n cliques K_{√n}).
func DisjointCliques(count, size int) *Graph {
	b := NewBuilder(count * size)
	for c := 0; c < count; c++ {
		base := c * size
		for u := 0; u < size; u++ {
			for v := u + 1; v < size; v++ {
				b.AddEdge(base+u, base+v)
			}
		}
	}
	return b.Build()
}

// CliqueChain returns count cliques of the given size arranged in a chain,
// consecutive cliques joined by a single bridge edge. Useful as a
// high-diameter, locally-dense stress case.
func CliqueChain(count, size int) *Graph {
	b := NewBuilder(count * size)
	for c := 0; c < count; c++ {
		base := c * size
		for u := 0; u < size; u++ {
			for v := u + 1; v < size; v++ {
				b.AddEdge(base+u, base+v)
			}
		}
		if c > 0 {
			b.AddEdge(base-1, base)
		}
	}
	return b.Build()
}

// CompleteBipartite returns K_{a,b} with parts [0,a) and [a,a+b).
func CompleteBipartite(a, b int) *Graph {
	bl := NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			bl.AddEdge(u, a+v)
		}
	}
	return bl.Build()
}

// Gnp returns an Erdős–Rényi random graph G(n,p): every pair is an edge
// independently with probability p. For p below a density threshold the
// generator uses geometric skipping and runs in O(n + m) time; above it, it
// enumerates pairs.
func Gnp(n int, p float64, rng *xrand.Rand) *Graph {
	switch {
	case p < 0 || p > 1 || math.IsNaN(p):
		panic(fmt.Sprintf("graph: Gnp probability %v out of [0,1]", p))
	case p == 0:
		return Empty(n)
	case p == 1:
		return Complete(n)
	}
	b := NewBuilder(n)
	if p <= 0.25 {
		// Geometric skipping over the linearized strict upper triangle.
		// Pair index k corresponds to (u, v) with u < v.
		total := int64(n) * int64(n-1) / 2
		k := int64(rng.Geometric(p))
		for k < total {
			u, v := pairFromIndex(k, n)
			b.AddEdge(u, v)
			k += 1 + int64(rng.Geometric(p))
		}
	} else {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Bernoulli(p) {
					b.AddEdge(u, v)
				}
			}
		}
	}
	return b.Build()
}

// pairFromIndex maps a linear index k in [0, n(n-1)/2) to the k-th pair
// (u, v), u < v, in row-major order of the strict upper triangle.
func pairFromIndex(k int64, n int) (int, int) {
	// Row u starts at offset S(u) = u*n - u*(u+3)/2 ... solve incrementally
	// via the quadratic formula on the remaining count.
	// Remaining pairs after row u-1: R(u) = (n-u)(n-u-1)/2. Find largest u
	// with k < S(u+1).
	nn := int64(n)
	// Row u covers linear indices [rowStart(u), rowStart(u+1)) where
	// rowStart(u) = u(n-1) - u(u-1)/2. Estimate u by solving the quadratic,
	// then correct by stepping (the estimate is off by at most a few units).
	rowStart := func(u int64) int64 { return u*(nn-1) - u*(u-1)/2 }
	disc := float64(2*nn-1)*float64(2*nn-1) - 8*float64(k)
	if disc < 0 {
		disc = 0
	}
	u := int64((float64(2*nn-1) - math.Sqrt(disc)) / 2)
	if u < 0 {
		u = 0
	}
	if u > nn-2 {
		u = nn - 2
	}
	for u > 0 && rowStart(u) > k {
		u--
	}
	for rowStart(u+1) <= k {
		u++
	}
	v := u + 1 + (k - rowStart(u))
	return int(u), int(v)
}

// GnpAvgDegree returns G(n, p) with p chosen so that the expected average
// degree is d, i.e. p = d/(n-1).
func GnpAvgDegree(n int, d float64, rng *xrand.Rand) *Graph {
	if n <= 1 {
		return Empty(n)
	}
	p := d / float64(n-1)
	if p > 1 {
		p = 1
	}
	return Gnp(n, p, rng)
}

// RandomRegular returns a d-regular random simple graph via the
// configuration model with repair: stubs are paired uniformly, invalid pairs
// (self-loops, duplicates) are re-paired in further passes, and any remaining
// degree deficits are repaired by double-edge swaps, which preserve all other
// degrees. In rare pathological cases a couple of vertices may end with
// degree d-1; the graph is always simple. n*d must be even.
func RandomRegular(n, d int, rng *xrand.Rand) *Graph {
	if d < 0 || d >= n {
		panic(fmt.Sprintf("graph: RandomRegular degree %d out of range for n=%d", d, n))
	}
	if n*d%2 != 0 {
		panic("graph: RandomRegular requires n*d even")
	}
	type edge struct{ u, v int32 }
	norm := func(u, v int32) edge {
		if u > v {
			u, v = v, u
		}
		return edge{u, v}
	}
	edgeSet := make(map[edge]bool, n*d/2)
	edgeList := make([]edge, 0, n*d/2)
	deg := make([]int, n)
	addEdge := func(u, v int32) bool {
		if u == v {
			return false
		}
		e := norm(u, v)
		if edgeSet[e] {
			return false
		}
		edgeSet[e] = true
		edgeList = append(edgeList, e)
		deg[u]++
		deg[v]++
		return true
	}

	// Pass 1..k: pair the unmatched stubs; stubs from failed pairs carry
	// over to the next pass.
	stubs := make([]int32, 0, n*d)
	for u := 0; u < n; u++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(u))
		}
	}
	for pass := 0; pass < 200 && len(stubs) > 2; pass++ {
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		leftovers := stubs[:0]
		for i := 0; i+1 < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if !addEdge(u, v) {
				leftovers = append(leftovers, u, v)
			}
		}
		stubs = leftovers
	}

	// Repair remaining deficits with double-edge swaps: to give u and v one
	// more edge each, pick a random existing edge {x,y} with x,y ∉ {u,v},
	// u-x and v-y non-edges, remove it and add {u,x}, {v,y}.
	for attempt := 0; attempt < 100*len(stubs) && len(stubs) >= 2; attempt++ {
		u, v := stubs[len(stubs)-1], stubs[len(stubs)-2]
		if addEdge(u, v) {
			stubs = stubs[:len(stubs)-2]
			continue
		}
		if len(edgeList) == 0 {
			break
		}
		ei := rng.Intn(len(edgeList))
		e := edgeList[ei]
		x, y := e.u, e.v
		if x == u || x == v || y == u || y == v {
			continue
		}
		if edgeSet[norm(u, x)] || edgeSet[norm(v, y)] {
			continue
		}
		delete(edgeSet, e)
		edgeList[ei] = edgeList[len(edgeList)-1]
		edgeList = edgeList[:len(edgeList)-1]
		deg[x]--
		deg[y]--
		addEdge(u, x)
		addEdge(v, y)
		stubs = stubs[:len(stubs)-2]
	}

	b := NewBuilder(n)
	for e := range edgeSet {
		b.AddEdge(int(e.u), int(e.v))
	}
	return b.Build()
}

// BoundedDegeneracyRandom returns a random graph with degeneracy (and hence
// arboricity) at most k: vertex i > 0 connects to min(i, k) uniformly chosen
// earlier vertices without replacement. This is the standard "random k-tree
// relaxation" family used to exercise Theorem 11 beyond trees.
func BoundedDegeneracyRandom(n, k int, rng *xrand.Rand) *Graph {
	if k < 1 {
		panic("graph: BoundedDegeneracyRandom requires k >= 1")
	}
	b := NewBuilder(n)
	picked := make(map[int]bool, k)
	for u := 1; u < n; u++ {
		want := k
		if u < k {
			want = u
		}
		for len(picked) < want {
			picked[rng.Intn(u)] = true
		}
		for v := range picked {
			b.AddEdge(u, v)
			delete(picked, v)
		}
	}
	return b.Build()
}

// Caterpillar returns a caterpillar tree: a spine path of length spine with
// legs pendant leaves attached to every spine vertex. Trees with large
// maximum degree but arboricity 1.
func Caterpillar(spine, legs int) *Graph {
	n := spine + spine*legs
	b := NewBuilder(n)
	for u := 0; u+1 < spine; u++ {
		b.AddEdge(u, u+1)
	}
	next := spine
	for u := 0; u < spine; u++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(u, next)
			next++
		}
	}
	return b.Build()
}

// WattsStrogatz returns a small-world graph: a ring lattice where every
// vertex connects to its k nearest neighbors on each side (2k per vertex),
// with each lattice edge rewired to a uniform random endpoint with
// probability beta. beta = 0 is the pure lattice (high diameter, high
// clustering); beta = 1 approaches a random graph. Classic model for
// ad-hoc/sensor network topologies with shortcuts.
func WattsStrogatz(n, k int, beta float64, rng *xrand.Rand) *Graph {
	if k < 1 || 2*k >= n {
		panic(fmt.Sprintf("graph: WattsStrogatz requires 1 <= k and 2k < n, got n=%d k=%d", n, k))
	}
	if beta < 0 || beta > 1 {
		panic(fmt.Sprintf("graph: WattsStrogatz beta %v outside [0,1]", beta))
	}
	type edge struct{ u, v int32 }
	norm := func(u, v int) edge {
		if u > v {
			u, v = v, u
		}
		return edge{int32(u), int32(v)}
	}
	edges := make(map[edge]bool, n*k)
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			edges[norm(u, (u+j)%n)] = true
		}
	}
	// Rewire: for each original lattice edge (u, u+j), with probability
	// beta replace it by (u, w) for uniform w avoiding self-loops and
	// duplicates (skipping the rewire if no valid target is found quickly).
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			if !rng.Bernoulli(beta) {
				continue
			}
			old := norm(u, (u+j)%n)
			if !edges[old] {
				continue // already rewired away by the other endpoint
			}
			for attempt := 0; attempt < 16; attempt++ {
				w := rng.Intn(n)
				if w == u {
					continue
				}
				candidate := norm(u, w)
				if edges[candidate] {
					continue
				}
				delete(edges, old)
				edges[candidate] = true
				break
			}
		}
	}
	b := NewBuilder(n)
	for e := range edges {
		b.AddEdge(int(e.u), int(e.v))
	}
	return b.Build()
}

// ChungLu returns a random graph with expected degree sequence following a
// power law with exponent beta (typically 2 < beta < 3) and average degree
// approximately avgDeg: each pair {u,v} is an edge independently with
// probability min(1, w_u·w_v / Σw), where w_u ∝ (u+1)^(-1/(beta-1)) scaled
// to the requested average. Models the skewed degree distributions of real
// sensor/contact networks, in contrast to the concentrated degrees of
// G(n,p).
func ChungLu(n int, beta, avgDeg float64, rng *xrand.Rand) *Graph {
	if n == 0 {
		return Empty(0)
	}
	if beta <= 1 {
		panic(fmt.Sprintf("graph: ChungLu exponent beta=%v must exceed 1", beta))
	}
	if avgDeg < 0 {
		panic("graph: ChungLu negative average degree")
	}
	if avgDeg == 0 {
		return Empty(n)
	}
	w := make([]float64, n)
	sum := 0.0
	exp := -1.0 / (beta - 1)
	for u := 0; u < n; u++ {
		w[u] = math.Pow(float64(u+1), exp)
		sum += w[u]
	}
	// Scale weights so the expected average degree is avgDeg.
	scale := avgDeg * float64(n) / sum
	for u := range w {
		w[u] *= scale
	}
	totalW := avgDeg * float64(n)
	b := NewBuilder(n)
	// High-weight vertices come first; the weight sequence is decreasing, so
	// for each u the per-pair probability p_uv = w_u·w_v/totalW decreases in
	// v and geometric skipping with the max probability plus rejection keeps
	// generation near O(m).
	for u := 0; u < n; u++ {
		pMax := w[u] * w[u+minInt(1, n-1-u)] / totalW
		if pMax >= 1 {
			// Dense row: enumerate directly.
			for v := u + 1; v < n; v++ {
				p := w[u] * w[v] / totalW
				if p >= 1 || rng.Bernoulli(p) {
					b.AddEdge(u, v)
				}
			}
			continue
		}
		if pMax <= 0 {
			continue
		}
		v := u + 1 + rng.Geometric(pMax)
		for v < n {
			// Accept with the true probability relative to the proposal.
			p := w[u] * w[v] / totalW
			if rng.Bernoulli(p / pMax) {
				b.AddEdge(u, v)
			}
			v += 1 + rng.Geometric(pMax)
		}
	}
	return b.Build()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Lollipop returns a clique of size cliqueSize with a path of length tail
// attached — a classic "dense core, long tail" stress case.
func Lollipop(cliqueSize, tail int) *Graph {
	n := cliqueSize + tail
	b := NewBuilder(n)
	for u := 0; u < cliqueSize; u++ {
		for v := u + 1; v < cliqueSize; v++ {
			b.AddEdge(u, v)
		}
	}
	for i := 0; i < tail; i++ {
		b.AddEdge(cliqueSize-1+i, cliqueSize+i)
	}
	return b.Build()
}

package graph

import (
	"testing"

	"ssmis/internal/xrand"
)

// randPerm returns a deterministic pseudo-random permutation of [0, n).
func randPerm(n int, rng *xrand.Rand) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// sameGraphUnderPerm checks that h is exactly g relabeled by perm: vertex
// perm[u] of h has neighbor set {perm[v] : v ~ u}.
func sameGraphUnderPerm(t *testing.T, g, h *Graph, perm []int32) {
	t.Helper()
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("order/size changed: (%d,%d) -> (%d,%d)", g.N(), g.M(), h.N(), h.M())
	}
	for u := 0; u < g.N(); u++ {
		nu := int(perm[u])
		if h.Degree(nu) != g.Degree(u) {
			t.Fatalf("degree of %d (relabeled %d): %d, want %d", u, nu, h.Degree(nu), g.Degree(u))
		}
		for _, v := range g.Neighbors(u) {
			if !h.HasEdge(nu, int(perm[v])) {
				t.Fatalf("edge {%d,%d} missing as {%d,%d}", u, v, nu, perm[v])
			}
		}
	}
}

func TestRelabelIsomorphism(t *testing.T) {
	rng := xrand.New(11)
	for _, g := range []*Graph{Gnp(200, 0.05, rng), Star(64), Path(33), DisjointCliques(5, 8)} {
		perm := randPerm(g.N(), rng)
		h := Relabel(g, perm)
		sameGraphUnderPerm(t, g, h, perm)
		for u := 0; u < h.N(); u++ {
			if !int32sSorted(h.Neighbors(u)) {
				t.Fatalf("relabeled neighbor list of %d not sorted", u)
			}
		}
	}
}

func TestRelabelValidatesPerm(t *testing.T) {
	g := Path(5)
	for name, perm := range map[string][]int32{
		"short":     {0, 1, 2},
		"duplicate": {0, 1, 1, 3, 4},
		"range":     {0, 1, 2, 3, 5},
		"negative":  {0, 1, 2, 3, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s permutation accepted", name)
				}
			}()
			Relabel(g, perm)
		}()
	}
}

func TestOrderingNilSafe(t *testing.T) {
	var ord *Ordering
	for _, u := range []int{0, 7, 1 << 20} {
		if ord.NewID(u) != u || ord.OldID(u) != u {
			t.Fatalf("nil ordering not identity at %d", u)
		}
	}
}

func TestDegreeBucketOrderIsValid(t *testing.T) {
	rng := xrand.New(7)
	// A star with the hub at the HIGHEST id: the hub must be relabeled to
	// the front. (Star(n) itself already has the hub at id 0 and stays
	// identity — covered by TestDegreeBucketOrderIdentity's logic.)
	revStar := NewBuilder(50)
	for u := 0; u < 49; u++ {
		revStar.AddEdge(u, 49)
	}
	for _, g := range []*Graph{
		ChungLu(2000, 2.5, 8, rng),
		Gnp(500, 0.02, rng),
		revStar.Build(),
		CliqueChain(4, 16),
	} {
		ord := DegreeBucketOrder(g)
		if ord == nil {
			t.Fatal("expected a non-identity ordering")
		}
		n := g.N()
		if len(ord.Perm) != n || len(ord.Inv) != n {
			t.Fatalf("map lengths %d/%d, want %d", len(ord.Perm), len(ord.Inv), n)
		}
		for u := 0; u < n; u++ {
			if ord.OldID(ord.NewID(u)) != u {
				t.Fatalf("Inv[Perm[%d]] = %d", u, ord.OldID(ord.NewID(u)))
			}
		}
		sameGraphUnderPerm(t, g, ord.G, ord.Perm)
		// Hubs first: the degree bucket must be non-increasing along the
		// relabeled id axis, so each bucket occupies one contiguous id range
		// (and thus contiguous lane words).
		prev := int(^uint(0) >> 1)
		for i := 0; i < n; i++ {
			b := degreeBucket(g.Degree(ord.OldID(i)))
			if b > prev {
				t.Fatalf("bucket rises at relabeled id %d: %d after %d", i, b, prev)
			}
			prev = b
		}
	}
}

func TestDegreeBucketOrderDeterministic(t *testing.T) {
	g := ChungLu(1500, 2.5, 8, xrand.New(3))
	a, b := DegreeBucketOrder(g), DegreeBucketOrder(g)
	for u := range a.Perm {
		if a.Perm[u] != b.Perm[u] {
			t.Fatalf("perm differs at %d: %d vs %d", u, a.Perm[u], b.Perm[u])
		}
	}
}

func TestDegreeBucketOrderIdentity(t *testing.T) {
	// Uniform degrees put everything in one bucket, and the BFS from vertex 0
	// discovers complete and empty graphs in id order: the order is the
	// identity and no relabeling is built.
	for _, g := range []*Graph{Complete(16), Empty(10), Complete(1)} {
		if ord := DegreeBucketOrder(g); ord != nil {
			t.Fatalf("identity order not detected (n=%d)", g.N())
		}
	}
	if ord := DegreeBucketOrder(Empty(0)); ord != nil {
		t.Fatal("empty graph must have no ordering")
	}
}

func TestOrderingRebind(t *testing.T) {
	rng := xrand.New(5)
	g := Gnp(300, 0.03, rng)
	ord := DegreeBucketOrder(g)
	if ord == nil {
		t.Skip("identity order on this draw")
	}
	// Toggle an edge, rebind the SAME permutation onto the new topology.
	g2 := g.WithEdgeToggled(0, 1)
	ord2 := ord.Rebind(g2)
	if &ord2.Perm[0] != &ord.Perm[0] {
		t.Fatal("Rebind must share the permutation slices")
	}
	sameGraphUnderPerm(t, g2, ord2.G, ord2.Perm)

	defer func() {
		if recover() == nil {
			t.Fatal("Rebind to a different order did not panic")
		}
	}()
	ord.Rebind(Path(10))
}

// Satellite regression: Build must stay incremental and correct across
// repeated AddEdge/Build cycles — the retained edge list is kept sorted and
// deduplicated, only the appended suffix is sorted, and duplicates both
// within the new batch and against earlier builds are dropped.
func TestBuilderIncrementalBuild(t *testing.T) {
	rng := xrand.New(17)
	b := NewBuilder(60)
	fresh := NewBuilder(60)
	type edge [2]int
	var all []edge
	for round := 0; round < 5; round++ {
		for k := 0; k < 40; k++ {
			u, v := rng.Intn(60), rng.Intn(60)
			if u == v {
				continue
			}
			b.AddEdge(u, v)
			all = append(all, edge{u, v})
			// Duplicate a fraction of the batch, and re-add an edge from an
			// earlier build to exercise cross-build dedup.
			if k%7 == 0 {
				b.AddEdge(v, u)
			}
			if k%11 == 0 && len(all) > 40 {
				old := all[rng.Intn(40)]
				b.AddEdge(old[0], old[1])
			}
		}
		got := b.Build()
		fresh = NewBuilder(60)
		for _, e := range all {
			fresh.AddEdge(e[0], e[1])
		}
		want := fresh.Build()
		if got.N() != want.N() || got.M() != want.M() {
			t.Fatalf("round %d: (n,m) = (%d,%d), want (%d,%d)",
				round, got.N(), got.M(), want.N(), want.M())
		}
		for u := 0; u < got.N(); u++ {
			gn, wn := got.Neighbors(u), want.Neighbors(u)
			if len(gn) != len(wn) {
				t.Fatalf("round %d: degree of %d = %d, want %d", round, u, len(gn), len(wn))
			}
			for i := range gn {
				if gn[i] != wn[i] {
					t.Fatalf("round %d: neighbors of %d differ", round, u)
				}
			}
		}
	}
	// A Build with nothing appended must be a pure re-emit.
	again := b.Build()
	if again.M() != fresh.Build().M() {
		t.Fatal("no-op rebuild changed the graph")
	}
}

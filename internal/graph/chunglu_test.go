package graph

import (
	"sort"
	"testing"

	"ssmis/internal/xrand"
)

func TestChungLuAverageDegree(t *testing.T) {
	rng := xrand.New(1)
	const n, avg = 4000, 10.0
	sum := 0.0
	const reps = 3
	for i := 0; i < reps; i++ {
		g := ChungLu(n, 2.5, avg, rng)
		sum += g.AvgDegree()
	}
	got := sum / reps
	// min(1, ·) capping on the heavy head loses some expected degree; allow
	// a generous band.
	if got < 0.6*avg || got > 1.3*avg {
		t.Fatalf("ChungLu average degree %.2f, want ≈ %.0f", got, avg)
	}
}

func TestChungLuSkewedDegrees(t *testing.T) {
	rng := xrand.New(2)
	g := ChungLu(4000, 2.2, 8, rng)
	degs := make([]int, g.N())
	for u := range degs {
		degs[u] = g.Degree(u)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	// A power law concentrates a large share of edges on the head: the top
	// 1% of vertices should carry several times their proportional share.
	top := g.N() / 100
	headSum := 0
	for _, d := range degs[:top] {
		headSum += d
	}
	share := float64(headSum) / float64(2*g.M())
	if share < 0.05 {
		t.Fatalf("top 1%% of vertices carry only %.1f%% of degree; not skewed", 100*share)
	}
	// And the same-n G(n,p) comparison must be much flatter.
	gn := GnpAvgDegree(4000, 8, rng)
	gdegs := make([]int, gn.N())
	for u := range gdegs {
		gdegs[u] = gn.Degree(u)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(gdegs)))
	gHead := 0
	for _, d := range gdegs[:top] {
		gHead += d
	}
	gShare := float64(gHead) / float64(2*gn.M())
	if share <= gShare {
		t.Fatalf("ChungLu head share %.3f not above Gnp's %.3f", share, gShare)
	}
}

func TestChungLuHeadVertexIsHighDegree(t *testing.T) {
	rng := xrand.New(3)
	g := ChungLu(2000, 2.5, 10, rng)
	avg := g.AvgDegree()
	if float64(g.Degree(0)) < 3*avg {
		t.Fatalf("vertex 0 degree %d not far above average %.1f", g.Degree(0), avg)
	}
}

func TestChungLuEdgeCases(t *testing.T) {
	rng := xrand.New(4)
	if g := ChungLu(0, 2.5, 5, rng); g.N() != 0 {
		t.Fatal("n=0 wrong")
	}
	if g := ChungLu(1, 2.5, 5, rng); g.N() != 1 || g.M() != 0 {
		t.Fatal("n=1 wrong")
	}
	if g := ChungLu(100, 2.5, 0, rng); g.M() != 0 {
		t.Fatal("avgDeg=0 should be edgeless")
	}
	g := ChungLu(50, 2.5, 4, rng)
	g.Edges(func(u, v int) {
		if u == v {
			t.Fatal("self-loop")
		}
	})
}

func TestChungLuPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"beta<=1":  func() { ChungLu(10, 1.0, 5, xrand.New(1)) },
		"negative": func() { ChungLu(10, 2.5, -1, xrand.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWattsStrogatzLattice(t *testing.T) {
	rng := xrand.New(11)
	// beta = 0: exact ring lattice, every vertex degree 2k, connected.
	g := WattsStrogatz(60, 3, 0, rng)
	if g.M() != 60*3 {
		t.Fatalf("lattice m=%d, want 180", g.M())
	}
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) != 6 {
			t.Fatalf("lattice vertex %d degree %d, want 6", u, g.Degree(u))
		}
	}
	if !g.Connected() {
		t.Fatal("lattice disconnected")
	}
}

func TestWattsStrogatzRewiringShrinksDiameter(t *testing.T) {
	rng := xrand.New(12)
	lattice := WattsStrogatz(200, 2, 0, rng)
	small := WattsStrogatz(200, 2, 0.3, rng)
	dl, ds := lattice.Diameter(), small.Diameter()
	if ds <= 0 {
		t.Skip("rewired graph disconnected in this draw")
	}
	if ds >= dl {
		t.Fatalf("rewiring did not shrink diameter: %d vs %d", ds, dl)
	}
	// Edge count is preserved by rewiring (toggles replace, not add).
	if small.M() != lattice.M() {
		t.Fatalf("rewiring changed edge count: %d vs %d", small.M(), lattice.M())
	}
}

func TestWattsStrogatzPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"k too big": func() { WattsStrogatz(6, 3, 0.1, xrand.New(1)) },
		"k zero":    func() { WattsStrogatz(6, 0, 0.1, xrand.New(1)) },
		"bad beta":  func() { WattsStrogatz(10, 2, 1.5, xrand.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestChungLuMISStabilizes(t *testing.T) {
	// The generator exists to feed the MIS processes realistic skew; check
	// the CSR is well-formed by running BFS and degeneracy on it.
	rng := xrand.New(5)
	g := ChungLu(1000, 2.3, 12, rng)
	if g.Degeneracy() <= 0 && g.M() > 0 {
		t.Fatal("degeneracy wrong")
	}
	comp, count := g.ConnectedComponents()
	if len(comp) != g.N() || count < 1 {
		t.Fatal("components wrong")
	}
}

package graph

import (
	"fmt"
	"math/bits"
	"sort"
)

// Ordering is a relabeling view of a graph: a permutation of the vertex set
// together with the CSR graph rebuilt under it. It exists so the engine's
// hot loops (lane words, neighbor counters, dirty-word tracking) can run
// over a cache-friendlier vertex order while everything observable — random
// streams, daemon selections, checkpoints, colors, summaries — stays keyed
// by original ids, mapped only at the boundary.
//
// Perm maps original ids to relabeled ids (Perm[old] = new); Inv is its
// inverse (Inv[new] = old); G is the relabeled graph: vertex Perm[u] of G
// has exactly the neighbors {Perm[v] : v ~ u}. A nil *Ordering everywhere
// means the identity (no relabeling); NewID and OldID are nil-safe.
type Ordering struct {
	Perm []int32 // Perm[old] = new
	Inv  []int32 // Inv[new] = old
	G    *Graph  // CSR rebuilt under Perm
}

// NewID maps an original vertex id to its relabeled id (identity on a nil
// receiver).
func (o *Ordering) NewID(u int) int {
	if o == nil {
		return u
	}
	return int(o.Perm[u])
}

// OldID maps a relabeled vertex id back to its original id (identity on a
// nil receiver).
func (o *Ordering) OldID(u int) int {
	if o == nil {
		return u
	}
	return int(o.Inv[u])
}

// Rebind returns an ordering holding the same permutation over a new graph
// on the same vertex set (topology churn under a held relabeling). The
// Perm/Inv slices are shared with the receiver, which stays valid.
func (o *Ordering) Rebind(g *Graph) *Ordering {
	if g.N() != len(o.Perm) {
		panic(fmt.Sprintf("graph: Rebind ordering of %d vertices to graph of order %d",
			len(o.Perm), g.N()))
	}
	return &Ordering{Perm: o.Perm, Inv: o.Inv, G: Relabel(g, o.Perm)}
}

// HubDegreeMin is the degree at which a vertex counts as a hub for the
// locality ordering. Below it the bucket structure would only scatter the
// BFS locality of the long tail; hub packing pays exactly for the vertices
// whose neighbor-counter words absorb a super-constant share of the commit
// phase's writes.
const HubDegreeMin = 64

// degreeBucket maps a degree to its locality bucket: geometric (bit-length)
// buckets for hubs, one shared tail bucket (0) for everything below
// HubDegreeMin.
func degreeBucket(deg int) int {
	if deg < HubDegreeMin {
		return 0
	}
	return bits.Len(uint(deg))
}

// DegreeBucketOrder computes the locality ordering used by the engine's
// bit-sliced kernel path: hubs (degree >= HubDegreeMin) are grouped into
// geometric degree buckets (bit length of deg(u)), buckets laid out from
// highest to lowest so the high-degree hubs — whose neighbor-counter words
// absorb most of the commit phase's writes — land packed into the lowest,
// contiguous lane words; the entire low-degree tail shares one bucket
// behind them. On sparse families (m <= 32n) the order within each bucket
// follows a deterministic global BFS (restarted from the highest-degree
// unvisited vertex), which keeps topologically close vertices in nearby
// words; on dense families the within-bucket order keeps original ids,
// where the CSR is already local.
//
// The result is a pure function of the graph. DegreeBucketOrder returns nil
// when the computed order is the identity permutation (nothing to relabel).
func DegreeBucketOrder(g *Graph) *Ordering {
	n := g.N()
	if n == 0 {
		return nil
	}
	rank := make([]int32, n) // within-bucket key
	if g.M() <= 32*n {
		bfsRanks(g, rank)
	} else {
		for u := range rank {
			rank[u] = int32(u)
		}
	}
	inv := make([]int32, n)
	for i := range inv {
		inv[i] = int32(i)
	}
	sort.Slice(inv, func(i, j int) bool {
		a, b := inv[i], inv[j]
		ba := degreeBucket(g.Degree(int(a)))
		bb := degreeBucket(g.Degree(int(b)))
		if ba != bb {
			return ba > bb // hubs first
		}
		if rank[a] != rank[b] {
			return rank[a] < rank[b]
		}
		return a < b
	})
	identity := true
	for i, u := range inv {
		if int32(i) != u {
			identity = false
			break
		}
	}
	if identity {
		return nil
	}
	perm := make([]int32, n)
	for i, u := range inv {
		perm[u] = int32(i)
	}
	return &Ordering{Perm: perm, Inv: inv, G: Relabel(g, perm)}
}

// bfsRanks fills rank[u] with u's discovery index in a deterministic
// breadth-first sweep: sources are taken in decreasing degree (ties by
// ascending id), neighbors expand in ascending id, and every component is
// covered by restarting at the next unvisited source.
func bfsRanks(g *Graph, rank []int32) {
	n := g.N()
	seeds := make([]int32, n)
	for i := range seeds {
		seeds[i] = int32(i)
	}
	sort.Slice(seeds, func(i, j int) bool {
		di, dj := g.Degree(int(seeds[i])), g.Degree(int(seeds[j]))
		if di != dj {
			return di > dj
		}
		return seeds[i] < seeds[j]
	})
	visited := make([]bool, n)
	queue := make([]int32, 0, n)
	next := int32(0)
	for _, s := range seeds {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			rank[u] = next
			next++
			for _, v := range g.Neighbors(int(u)) {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
}

// Relabel rebuilds g's CSR under the permutation perm (perm[old] = new):
// vertex perm[u] of the result has neighbor set {perm[v] : v ~ u}, sorted.
// The construction is direct — degrees permuted, prefix sums, lists filled
// and re-sorted — in O(n + m log maxdeg). It panics unless perm is a
// permutation of [0, n).
func Relabel(g *Graph, perm []int32) *Graph {
	n := g.N()
	if len(perm) != n {
		panic(fmt.Sprintf("graph: Relabel permutation of length %d for graph of order %d",
			len(perm), n))
	}
	offsets := make([]int, n+1)
	seen := make([]bool, n)
	for u := 0; u < n; u++ {
		p := perm[u]
		if p < 0 || int(p) >= n || seen[p] {
			panic(fmt.Sprintf("graph: Relabel perm is not a permutation (perm[%d] = %d)", u, p))
		}
		seen[p] = true
		offsets[int(p)+1] = g.Degree(u)
	}
	for i := 0; i < n; i++ {
		offsets[i+1] += offsets[i]
	}
	adj := make([]int32, len(g.adj))
	for u := 0; u < n; u++ {
		nu := int(perm[u])
		out := adj[offsets[nu]:offsets[nu+1]]
		for i, v := range g.Neighbors(u) {
			out[i] = perm[v]
		}
		if !int32sSorted(out) {
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		}
	}
	// A relabeling permutes degrees, so the memo carries over unchanged.
	return &Graph{offsets: offsets, adj: adj, maxDeg: g.maxDeg}
}

package graph

// Topology-editing helpers. Graphs are immutable, so edits produce new
// graphs; the MIS processes can be rebound to an edited graph while keeping
// their vertex states (see mis.TwoState.Rebind), which models topology
// churn in a self-stabilizing network: links appear and disappear, nodes
// keep whatever state they had, and the process must re-converge.

import (
	"fmt"

	"ssmis/internal/xrand"
)

// WithEdgeToggled returns a copy of g with edge {u,v} added if absent or
// removed if present. It panics on self-loops or out-of-range endpoints.
func (g *Graph) WithEdgeToggled(u, v int) *Graph {
	if u == v {
		panic(fmt.Sprintf("graph: toggle self-loop at %d", u))
	}
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		panic(fmt.Sprintf("graph: toggle edge {%d,%d} out of range", u, v))
	}
	remove := g.HasEdge(u, v)
	if u > v {
		u, v = v, u
	}
	b := NewBuilder(g.N())
	g.Edges(func(x, y int) {
		if remove && x == u && y == v {
			return
		}
		b.AddEdge(x, y)
	})
	if !remove {
		b.AddEdge(u, v)
	}
	return b.Build()
}

// WithRandomChurn returns a copy of g with k edge toggles applied at
// uniformly random vertex pairs (self-pairs are re-drawn): existing edges
// among the chosen pairs disappear, missing ones appear. It also returns
// the list of toggled pairs.
func (g *Graph) WithRandomChurn(k int, rng *xrand.Rand) (*Graph, [][2]int) {
	n := g.N()
	if n < 2 || k <= 0 {
		return g, nil
	}
	// Collect the toggle set first (deduplicating pairs so a double toggle
	// doesn't silently cancel), then rebuild once.
	type pair struct{ u, v int32 }
	toggles := make(map[pair]bool, k)
	var order [][2]int
	for len(toggles) < k {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		p := pair{int32(u), int32(v)}
		if toggles[p] {
			continue
		}
		toggles[p] = true
		order = append(order, [2]int{u, v})
	}
	b := NewBuilder(n)
	g.Edges(func(x, y int) {
		if !toggles[pair{int32(x), int32(y)}] {
			b.AddEdge(x, y)
		}
	})
	for p := range toggles {
		if !g.HasEdge(int(p.u), int(p.v)) {
			b.AddEdge(int(p.u), int(p.v))
		}
	}
	return b.Build(), order
}

package graph

import (
	"testing"

	"ssmis/internal/xrand"
)

func TestWithEdgeToggledAddAndRemove(t *testing.T) {
	g := Path(4) // 0-1-2-3
	added := g.WithEdgeToggled(0, 3)
	if !added.HasEdge(0, 3) || added.M() != g.M()+1 {
		t.Fatal("edge not added")
	}
	if g.HasEdge(0, 3) {
		t.Fatal("original mutated")
	}
	removed := added.WithEdgeToggled(3, 0) // order-insensitive
	if removed.HasEdge(0, 3) || removed.M() != g.M() {
		t.Fatal("edge not removed")
	}
	inner := g.WithEdgeToggled(1, 2)
	if inner.HasEdge(1, 2) || inner.M() != 2 {
		t.Fatal("existing edge not removed")
	}
}

func TestWithEdgeToggledPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"self-loop":    func() { Path(3).WithEdgeToggled(1, 1) },
		"out-of-range": func() { Path(3).WithEdgeToggled(0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWithRandomChurn(t *testing.T) {
	rng := xrand.New(1)
	g := Gnp(60, 0.1, rng)
	const k = 15
	g2, toggles := g.WithRandomChurn(k, rng)
	if len(toggles) != k {
		t.Fatalf("%d toggles, want %d", len(toggles), k)
	}
	// Every toggled pair must have flipped; all other pairs unchanged.
	flipped := make(map[[2]int]bool, k)
	for _, p := range toggles {
		flipped[p] = true
		if g.HasEdge(p[0], p[1]) == g2.HasEdge(p[0], p[1]) {
			t.Fatalf("pair %v did not flip", p)
		}
	}
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if flipped[[2]int{u, v}] {
				continue
			}
			if g.HasEdge(u, v) != g2.HasEdge(u, v) {
				t.Fatalf("untouched pair {%d,%d} changed", u, v)
			}
		}
	}
}

func TestWithRandomChurnDegenerate(t *testing.T) {
	rng := xrand.New(2)
	g := Path(1)
	g2, toggles := g.WithRandomChurn(5, rng)
	if g2 != g || toggles != nil {
		t.Fatal("churn on a single vertex should be a no-op")
	}
	g3, toggles3 := Path(5).WithRandomChurn(0, rng)
	if toggles3 != nil || g3.M() != 4 {
		t.Fatal("zero churn should be a no-op")
	}
}

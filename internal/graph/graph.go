// Package graph provides the graph substrate for the ssmis module: an
// immutable compressed-sparse-row (CSR) graph type, a mutable builder,
// generators for every graph family the paper's analysis touches (complete
// graphs, Erdős–Rényi G(n,p), trees and other bounded-arboricity families,
// disjoint unions of cliques, ...), and structural metrics (components,
// diameter, degeneracy, common neighbors) needed by the experiments and by
// the (n,p)-good-graph checker.
//
// All graphs are simple (no self-loops, no parallel edges) and undirected,
// matching the paper's setting.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph in CSR form. Vertices are
// integers in [0, N()).
type Graph struct {
	offsets []int   // len n+1; adjacency of u is adj[offsets[u]:offsets[u+1]]
	adj     []int32 // concatenated sorted neighbor lists
	maxDeg  int     // memoized MaxDegree (immutable graph, computed at build)
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of (undirected) edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int { return g.offsets[u+1] - g.offsets[u] }

// Neighbors returns the sorted neighbor list of u as a shared, read-only
// slice. Callers must not modify it.
func (g *Graph) Neighbors(u int) []int32 {
	return g.adj[g.offsets[u]:g.offsets[u+1]]
}

// ForNeighbors calls fn for each neighbor of u in increasing order.
func (g *Graph) ForNeighbors(u int, fn func(v int)) {
	for _, v := range g.Neighbors(u) {
		fn(int(v))
	}
}

// HasEdge reports whether {u, v} is an edge, in O(log deg(u)).
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return int(nbrs[i]) >= v })
	return i < len(nbrs) && int(nbrs[i]) == v
}

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
// The value is memoized at construction — the graph is immutable, and the
// engine's counter-width selection, DegreeHistogram, restartmis, and both
// CLIs' banner lines all ask repeatedly.
func (g *Graph) MaxDegree() int { return g.maxDeg }

// maxDegreeOf scans a CSR offset vector for the maximum degree; the two
// graph constructors (Build, Relabel) call it once to fill the memo.
func maxDegreeOf(offsets []int) int {
	max := 0
	for u := 0; u+1 < len(offsets); u++ {
		if d := offsets[u+1] - offsets[u]; d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average vertex degree 2m/n, or 0 for n = 0.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.M()) / float64(g.N())
}

// Edges calls fn once per undirected edge {u, v} with u < v.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				fn(u, int(v))
			}
		}
	}
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.N(), g.M())
}

// Builder accumulates edges and produces an immutable Graph. Self-loops are
// rejected immediately by AddEdge; duplicate edges are tolerated and
// deduplicated by Build. The zero value is unusable; create with NewBuilder.
type Builder struct {
	n      int
	edges  [][2]int32
	sorted int // leading edges already sorted and deduplicated by a prior Build
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// N returns the number of vertices the builder was created with.
func (b *Builder) N() int { return b.n }

// AddEdge records the undirected edge {u, v}. It panics on self-loops or
// out-of-range endpoints. Duplicate edges are tolerated and deduplicated by
// Build.
func (b *Builder) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
}

// Build produces the immutable CSR graph. The builder remains usable (more
// edges may be added and Build called again); the retained edge list stays
// sorted and deduplicated across calls, so a repeat Build only sorts the
// edges appended since the previous one and merges them in — O(k log k + m)
// for k new edges instead of re-sorting all m.
func (b *Builder) Build() *Graph {
	b.normalize()

	deg := make([]int, b.n)
	for _, e := range b.edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	offsets := make([]int, b.n+1)
	for u := 0; u < b.n; u++ {
		offsets[u+1] = offsets[u] + deg[u]
	}
	adj := make([]int32, offsets[b.n])
	cursor := make([]int, b.n)
	copy(cursor, offsets[:b.n])
	for _, e := range b.edges {
		u, v := e[0], e[1]
		adj[cursor[u]] = v
		cursor[u]++
		adj[cursor[v]] = u
		cursor[v]++
	}
	// Neighbor lists are sorted because edges were processed in sorted order
	// for the smaller endpoint; for the larger endpoint insertion order
	// follows the smaller endpoints, which are increasing as well. Verify in
	// debug-ish fashion only for small graphs? Sorting is cheap relative to
	// generation; make correctness unconditional:
	for u := 0; u < b.n; u++ {
		nbrs := adj[offsets[u]:offsets[u+1]]
		if !int32sSorted(nbrs) {
			sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		}
	}
	return &Graph{offsets: offsets, adj: adj, maxDeg: maxDegreeOf(offsets)}
}

// normalize brings b.edges to sorted, deduplicated form. Edges up to
// b.sorted are already normalized by the previous Build; only the appended
// suffix is sorted, then the two sorted runs are merged with duplicates
// dropped. A Build with nothing appended does no sorting at all.
func (b *Builder) normalize() {
	if len(b.edges) == b.sorted {
		return
	}
	edgeLess := func(a, c [2]int32) bool {
		if a[0] != c[0] {
			return a[0] < c[0]
		}
		return a[1] < c[1]
	}
	tail := b.edges[b.sorted:]
	sort.Slice(tail, func(i, j int) bool { return edgeLess(tail[i], tail[j]) })
	if b.sorted == 0 {
		// First build: just drop adjacent duplicates in place.
		dedup := b.edges[:0]
		for i, e := range b.edges {
			if i == 0 || e != b.edges[i-1] {
				dedup = append(dedup, e)
			}
		}
		b.edges = dedup
		b.sorted = len(b.edges)
		return
	}
	// Merge the normalized prefix with the sorted tail, dropping duplicates
	// within the tail and against the prefix.
	head := b.edges[:b.sorted]
	merged := make([][2]int32, 0, len(b.edges))
	i, j := 0, 0
	for i < len(head) && j < len(tail) {
		switch {
		case head[i] == tail[j]:
			j++
		case edgeLess(head[i], tail[j]):
			merged = append(merged, head[i])
			i++
		default:
			if len(merged) == 0 || merged[len(merged)-1] != tail[j] {
				merged = append(merged, tail[j])
			}
			j++
		}
	}
	merged = append(merged, head[i:]...)
	for ; j < len(tail); j++ {
		if len(merged) == 0 || merged[len(merged)-1] != tail[j] {
			merged = append(merged, tail[j])
		}
	}
	b.edges = merged
	b.sorted = len(b.edges)
}

func int32sSorted(s []int32) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

// FromEdges builds a graph on n vertices from an explicit edge list.
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// InducedSubgraph returns the induced subgraph G[S] together with the mapping
// from new vertex ids to original ids. S may be in any order; duplicate
// entries panic.
func (g *Graph) InducedSubgraph(s []int) (*Graph, []int) {
	idx := make(map[int]int, len(s))
	orig := make([]int, len(s))
	for i, u := range s {
		if _, dup := idx[u]; dup {
			panic(fmt.Sprintf("graph: duplicate vertex %d in InducedSubgraph", u))
		}
		idx[u] = i
		orig[i] = u
	}
	b := NewBuilder(len(s))
	for i, u := range orig {
		for _, v := range g.Neighbors(u) {
			if j, ok := idx[int(v)]; ok && j > i {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build(), orig
}

// DegreeHistogram returns counts[d] = number of vertices of degree d.
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.MaxDegree()+1)
	for u := 0; u < g.N(); u++ {
		counts[g.Degree(u)]++
	}
	return counts
}

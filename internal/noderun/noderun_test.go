package noderun

import (
	"sync/atomic"
	"testing"

	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

// echoProg beeps iff its flag is set and records what it heard.
type echoProg struct {
	beep    bool
	channel uint
	heard   uint32
	rounds  int32
}

func (p *echoProg) Emit() uint32 {
	if p.beep {
		return 1 << p.channel
	}
	return 0
}

func (p *echoProg) Deliver(heard uint32) {
	p.heard = heard
	atomic.AddInt32(&p.rounds, 1)
}

func newEcho(n int) []*echoProg {
	ps := make([]*echoProg, n)
	for i := range ps {
		ps[i] = &echoProg{}
	}
	return ps
}

func asPrograms(ps []*echoProg) []Program {
	out := make([]Program, len(ps))
	for i, p := range ps {
		out[i] = p
	}
	return out
}

func TestMediumDeliversNeighborOR(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	ps := newEcho(4)
	ps[0].beep = true
	e := NewEngine(g, BeepingCD(), asPrograms(ps))
	defer e.Close()
	e.Step()
	if ps[1].heard != 1 {
		t.Fatalf("vertex 1 heard %b, want beep", ps[1].heard)
	}
	if ps[2].heard != 0 || ps[3].heard != 0 {
		t.Fatal("beep travelled more than one hop")
	}
	if ps[0].heard != 0 {
		t.Fatal("beeper heard its own beep (no beeping neighbor exists)")
	}
}

func TestCollisionDetectionModes(t *testing.T) {
	g := graph.Path(2)
	// Both beep. With CD each hears the other; without CD the own-channel
	// transmission masks reception.
	psCD := newEcho(2)
	psCD[0].beep, psCD[1].beep = true, true
	e := NewEngine(g, BeepingCD(), asPrograms(psCD))
	e.Step()
	e.Close()
	if psCD[0].heard != 1 || psCD[1].heard != 1 {
		t.Fatalf("full-duplex: heard %b/%b, want 1/1", psCD[0].heard, psCD[1].heard)
	}

	psNo := newEcho(2)
	psNo[0].beep, psNo[1].beep = true, true
	e2 := NewEngine(g, BeepingNoCD(), asPrograms(psNo))
	e2.Step()
	e2.Close()
	if psNo[0].heard != 0 || psNo[1].heard != 0 {
		t.Fatalf("no-CD: heard %b/%b, want 0/0", psNo[0].heard, psNo[1].heard)
	}
	// A silent listener adjacent to a beeper still hears it without CD.
	psMix := newEcho(2)
	psMix[0].beep = true
	e3 := NewEngine(g, BeepingNoCD(), asPrograms(psMix))
	e3.Step()
	e3.Close()
	if psMix[1].heard != 1 {
		t.Fatal("listener did not hear beep in no-CD model")
	}
}

func TestChannelAlphabetEnforced(t *testing.T) {
	g := graph.Path(2)
	ps := newEcho(2)
	ps[0].beep = true
	ps[0].channel = 1 // outside the 1-channel beeping alphabet
	e := NewEngine(g, BeepingCD(), asPrograms(ps))
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-alphabet beep did not panic")
		}
	}()
	e.Step()
}

func TestMaxBeepsEnforced(t *testing.T) {
	g := graph.Path(2)
	multi := &multiBeeper{}
	e := NewEngine(g, StoneAge(4), []Program{multi, &echoProg{}})
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("multi-channel beep did not panic in stone age model")
		}
	}()
	e.Step()
}

type multiBeeper struct{}

func (*multiBeeper) Emit() uint32     { return 0b11 }
func (*multiBeeper) Deliver(_ uint32) {}

func TestStoneAgeMultiChannel(t *testing.T) {
	g := graph.Star(4) // center 0
	ps := newEcho(4)
	ps[1].beep, ps[1].channel = true, 0
	ps[2].beep, ps[2].channel = true, 2
	e := NewEngine(g, StoneAge(4), asPrograms(ps))
	defer e.Close()
	e.Step()
	if ps[0].heard != 0b101 {
		t.Fatalf("center heard %04b, want 0101", ps[0].heard)
	}
	if ps[3].heard != 0 {
		t.Fatal("leaf heard non-neighbors")
	}
}

func TestRunUntil(t *testing.T) {
	g := graph.Cycle(5)
	ps := newEcho(5)
	e := NewEngine(g, BeepingCD(), asPrograms(ps))
	defer e.Close()
	rounds, stopped := e.RunUntil(10, func() bool { return e.Round() >= 4 })
	if rounds != 4 || !stopped {
		t.Fatalf("RunUntil: rounds=%d stopped=%v", rounds, stopped)
	}
	rounds, stopped = e.RunUntil(7, func() bool { return false })
	if rounds != 7 || stopped {
		t.Fatalf("RunUntil cap: rounds=%d stopped=%v", rounds, stopped)
	}
}

func TestEveryNodeRunsEveryRound(t *testing.T) {
	g := graph.Gnp(50, 0.1, xrand.New(7))
	ps := newEcho(g.N())
	e := NewEngine(g, BeepingCD(), asPrograms(ps))
	defer e.Close()
	const rounds = 20
	for i := 0; i < rounds; i++ {
		e.Step()
	}
	for u, p := range ps {
		if got := atomic.LoadInt32(&p.rounds); got != rounds {
			t.Fatalf("node %d delivered %d rounds, want %d", u, got, rounds)
		}
	}
	if e.Round() != rounds {
		t.Fatal("round counter wrong")
	}
}

func TestProgramCountValidated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched program count did not panic")
		}
	}()
	NewEngine(graph.Path(3), BeepingCD(), asPrograms(newEcho(2)))
}

func TestModelAccessors(t *testing.T) {
	g := graph.Path(2)
	ps := newEcho(2)
	e := NewEngine(g, StoneAge(3), asPrograms(ps))
	defer e.Close()
	if e.Model().Channels != 3 || e.Model().Name != "stone-age" {
		t.Fatal("Model accessor wrong")
	}
	if e.Program(1) != ps[1] {
		t.Fatal("Program accessor wrong")
	}
}

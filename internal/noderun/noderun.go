// Package noderun is the distributed execution substrate: it runs one
// long-lived goroutine per graph vertex and advances them in synchronous
// rounds through a broadcast medium, the way the beeping and stone age
// models define computation. Node programs only ever see their own state,
// their own random stream, and the per-channel feedback from the medium —
// they have no access to the graph, to other nodes, or to global
// information, which is exactly the locality discipline the paper's
// algorithms claim.
//
// A round proceeds in two phases, separated by barriers:
//
//  1. every node emits a set of beep channels (possibly empty);
//  2. the medium ORs each channel over each node's neighborhood and delivers
//     the resulting feedback mask, upon which the node updates its state.
//
// The medium enforces the communication model's constraints: the beeping
// model allows a single channel and, without sender collision detection,
// masks a beeping node's own feedback; the stone age model allows a constant
// number of channels with at most one beep per node per round.
package noderun

import (
	"fmt"
	"math/bits"

	"ssmis/internal/graph"
)

// Program is a per-node protocol state machine. Implementations must not
// share mutable state across nodes: the engine calls Emit and Deliver from
// the node's own goroutine.
type Program interface {
	// Emit returns the bitmask of channels this node beeps on this round.
	Emit() uint32
	// Deliver hands the node the feedback mask for the round — bit c set iff
	// at least one neighbor beeped on channel c, after model masking — and
	// the node updates its state.
	Deliver(heard uint32)
}

// Model describes the communication-model constraints the medium enforces.
type Model struct {
	// Name for error messages and reports, e.g. "beeping-cd".
	Name string
	// Channels is the number of usable channels (1 for beeping).
	Channels int
	// MaxBeepsPerNode bounds how many channels one node may use in a round
	// (1 in both the beeping and stone age models; 0 means unlimited).
	MaxBeepsPerNode int
	// SenderCollisionDetection: when false, a node that beeped on channel c
	// does not hear channel c that round (classic beeping); when true, the
	// full-duplex model of the paper's 2-state process.
	SenderCollisionDetection bool
}

// BeepingCD is the beeping model with sender collision detection
// (full-duplex), the model of the paper's 2-state process.
func BeepingCD() Model {
	return Model{Name: "beeping-cd", Channels: 1, MaxBeepsPerNode: 1, SenderCollisionDetection: true}
}

// BeepingNoCD is the classic beeping model without collision detection.
func BeepingNoCD() Model {
	return Model{Name: "beeping", Channels: 1, MaxBeepsPerNode: 1, SenderCollisionDetection: false}
}

// StoneAge is the synchronous stone age model: a constant number of beep
// channels, at most one beep per node per round, and message reception
// independent of own transmission (so no collision-detection issue arises).
func StoneAge(channels int) Model {
	return Model{Name: "stone-age", Channels: channels, MaxBeepsPerNode: 1, SenderCollisionDetection: true}
}

// phase is a command sent to node goroutines.
type phase uint8

const (
	phaseEmit phase = iota + 1
	phaseDeliver
)

// Engine drives the node programs over a graph under a model. Create with
// NewEngine and release the node goroutines with Close.
type Engine struct {
	g     *graph.Graph
	model Model
	progs []Program
	round int

	emits []uint32
	heard []uint32

	cmd  []chan phase
	done chan struct{}
}

// NewEngine creates an engine and starts one goroutine per vertex. progs[u]
// is vertex u's program; len(progs) must equal g.N(). Callers must Close the
// engine to stop the goroutines.
func NewEngine(g *graph.Graph, model Model, progs []Program) *Engine {
	if len(progs) != g.N() {
		panic(fmt.Sprintf("noderun: %d programs for %d vertices", len(progs), g.N()))
	}
	if model.Channels < 1 || model.Channels > 32 {
		panic(fmt.Sprintf("noderun: channels %d out of [1,32]", model.Channels))
	}
	n := g.N()
	e := &Engine{
		g:     g,
		model: model,
		progs: progs,
		emits: make([]uint32, n),
		heard: make([]uint32, n),
		cmd:   make([]chan phase, n),
		done:  make(chan struct{}, n),
	}
	for u := 0; u < n; u++ {
		e.cmd[u] = make(chan phase, 1)
		go e.nodeLoop(u, e.cmd[u])
	}
	return e
}

// nodeLoop is the per-node goroutine: it executes phase commands until its
// command channel is closed. Writes to e.emits[u] are synchronized by the
// barrier protocol (the coordinator only reads them after all done signals).
func (e *Engine) nodeLoop(u int, cmd <-chan phase) {
	for ph := range cmd {
		switch ph {
		case phaseEmit:
			e.emits[u] = e.progs[u].Emit()
		case phaseDeliver:
			e.progs[u].Deliver(e.heard[u])
		}
		e.done <- struct{}{}
	}
}

// broadcast sends a phase command to every node and waits for all of them to
// finish it — a synchronous-round barrier.
func (e *Engine) broadcast(ph phase) {
	for _, c := range e.cmd {
		c <- ph
	}
	for range e.cmd {
		<-e.done
	}
}

// Close stops all node goroutines. The engine must not be used afterwards.
func (e *Engine) Close() {
	for _, c := range e.cmd {
		close(c)
	}
	e.cmd = nil
}

// Round returns the number of completed rounds.
func (e *Engine) Round() int { return e.round }

// Model returns the communication model the medium enforces.
func (e *Engine) Model() Model { return e.model }

// Program returns vertex u's program, for inspection between rounds (all
// node goroutines are quiescent then).
func (e *Engine) Program(u int) Program { return e.progs[u] }

// Step executes one synchronous round. It panics if a program violates the
// model's beep constraints — protocol bugs, not runtime conditions.
func (e *Engine) Step() {
	n := e.g.N()
	chanMask := uint32(1)<<uint(e.model.Channels) - 1

	e.broadcast(phaseEmit)
	for u := 0; u < n; u++ {
		m := e.emits[u]
		if m&^chanMask != 0 {
			panic(fmt.Sprintf("noderun: node %d beeped outside the %d-channel alphabet (%s model)",
				u, e.model.Channels, e.model.Name))
		}
		if e.model.MaxBeepsPerNode > 0 && bits.OnesCount32(m) > e.model.MaxBeepsPerNode {
			panic(fmt.Sprintf("noderun: node %d beeped on %d channels, max %d (%s model)",
				u, bits.OnesCount32(m), e.model.MaxBeepsPerNode, e.model.Name))
		}
	}

	// The medium: per-node OR over the neighborhood.
	for u := 0; u < n; u++ {
		var h uint32
		for _, v := range e.g.Neighbors(u) {
			h |= e.emits[v]
		}
		if !e.model.SenderCollisionDetection {
			// A beeping radio cannot listen on the channel it transmits on.
			h &^= e.emits[u]
		}
		e.heard[u] = h
	}

	e.broadcast(phaseDeliver)
	e.round++
}

// RunUntil advances the engine until stop returns true (checked between
// rounds, when all node goroutines are quiescent) or maxRounds elapse.
// It returns the number of rounds executed and whether stop fired.
func (e *Engine) RunUntil(maxRounds int, stop func() bool) (rounds int, stopped bool) {
	for e.round < maxRounds {
		if stop() {
			return e.round, true
		}
		e.Step()
	}
	return e.round, stop()
}

package beeping

import (
	"testing"

	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/noderun"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

func TestBeepingStabilizesToMIS(t *testing.T) {
	rng := xrand.New(1)
	families := map[string]*graph.Graph{
		"path":   graph.Path(30),
		"clique": graph.Complete(24),
		"star":   graph.Star(20),
		"gnp":    graph.Gnp(80, 0.08, rng),
		"tree":   graph.RandomTree(60, rng),
	}
	for name, g := range families {
		m := NewMIS(g, 42, nil)
		_, ok := m.Run(mis.DefaultRoundCap(g.N()))
		if !ok {
			m.Close()
			t.Errorf("%s: beeping protocol did not stabilize", name)
			continue
		}
		if err := verify.MIS(g, m.Black); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		m.Close()
	}
}

// The headline equivalence (experiment E12): the beeping runtime and the
// array simulator execute the 2-state process coin-for-coin identically —
// same graph, same seed, same initial colors produce the same color vector
// at every round and stabilize at the same round.
func TestBeepingMatchesSimulatorExactly(t *testing.T) {
	rng := xrand.New(2)
	for trial := 0; trial < 8; trial++ {
		seed := uint64(100 + trial)
		g := graph.Gnp(60, 0.1, rng.Split(uint64(trial)))
		sim := mis.NewTwoState(g, mis.WithSeed(seed))
		bee := NewMIS(g, seed, nil)

		// Initial colors must already agree (shared InitRandom stream).
		for u := 0; u < g.N(); u++ {
			if sim.Black(u) != bee.Black(u) {
				bee.Close()
				t.Fatalf("trial %d: initial colors differ at %d", trial, u)
			}
		}
		for r := 0; r < 10000; r++ {
			simDone, beeDone := sim.Stabilized(), bee.Stabilized()
			if simDone != beeDone {
				bee.Close()
				t.Fatalf("trial %d round %d: stabilization disagrees (sim=%v bee=%v)",
					trial, r, simDone, beeDone)
			}
			if simDone {
				break
			}
			sim.Step()
			bee.engine.Step()
			for u := 0; u < g.N(); u++ {
				if sim.Black(u) != bee.Black(u) {
					bee.Close()
					t.Fatalf("trial %d round %d: colors diverge at vertex %d", trial, r+1, u)
				}
			}
		}
		if !sim.Stabilized() {
			bee.Close()
			t.Fatalf("trial %d: no stabilization", trial)
		}
		bee.Close()
	}
}

func TestBeepingExplicitInitialColors(t *testing.T) {
	g := graph.Path(4)
	initial := []bool{true, false, true, false} // already an MIS
	m := NewMIS(g, 1, initial)
	defer m.Close()
	if !m.Stabilized() {
		t.Fatal("MIS initialization not stabilized")
	}
	rounds, ok := m.Run(100)
	if rounds != 0 || !ok {
		t.Fatalf("Run on stabilized protocol: rounds=%d ok=%v", rounds, ok)
	}
}

func TestBeepingRandomBitsGrowOnlyWhenActive(t *testing.T) {
	g := graph.Complete(16)
	m := NewMIS(g, 3, make([]bool, 16)) // all white: everyone active
	defer m.Close()
	m.engine.Step()
	if m.RandomBits() != 16 {
		t.Fatalf("bits after round 1 = %d, want 16", m.RandomBits())
	}
	m.Run(mis.DefaultRoundCap(16))
	bits := m.RandomBits()
	m.engine.Step() // stabilized: nobody active, no bits
	if m.RandomBits() != bits {
		t.Fatal("stabilized round consumed random bits")
	}
}

// The paper (§1) requires SENDER collision detection for the 2-state
// process: a black node must hear whether a neighbor beeps while itself
// beeping. This test demonstrates the necessity — under the classic no-CD
// beeping model, two adjacent black nodes each hear silence (their own
// transmission masks reception), conclude they are consistent, and stay
// black forever: a stable-looking configuration that is not independent.
func TestCollisionDetectionIsNecessary(t *testing.T) {
	g := graph.Path(2)
	mkNode := func(seed uint64) *node {
		return &node{black: true, rng: xrand.New(seed)}
	}
	nodes := []*node{mkNode(1), mkNode(2)}
	progs := make([]noderun.Program, 2)
	for i, nd := range nodes {
		progs[i] = nd
	}
	engine := noderun.NewEngine(g, noderun.BeepingNoCD(), progs)
	defer engine.Close()
	for r := 0; r < 100; r++ {
		engine.Step()
	}
	// Under no-CD the deadlock persists: both still black, violating
	// independence — exactly the failure the full-duplex assumption
	// prevents.
	if !nodes[0].black || !nodes[1].black {
		t.Fatal("expected the no-CD deadlock: both nodes should remain black")
	}
	if err := verify.Independent(g, func(u int) bool { return nodes[u].black }); err == nil {
		t.Fatal("adjacent black pair should violate independence")
	}
	// And the same configuration under full duplex resolves.
	nodesCD := []*node{mkNode(1), mkNode(2)}
	progsCD := make([]noderun.Program, 2)
	for i, nd := range nodesCD {
		progsCD[i] = nd
	}
	engineCD := noderun.NewEngine(g, noderun.BeepingCD(), progsCD)
	defer engineCD.Close()
	for r := 0; r < 1000 && nodesCD[0].black == nodesCD[1].black; r++ {
		engineCD.Step()
	}
	if nodesCD[0].black == nodesCD[1].black {
		t.Fatal("full-duplex engine did not break the black-black symmetry")
	}
}

func TestBeepingRoundCounter(t *testing.T) {
	g := graph.Cycle(9)
	m := NewMIS(g, 4, nil)
	defer m.Close()
	r0 := m.Round()
	m.engine.Step()
	if m.Round() != r0+1 {
		t.Fatal("round counter did not advance")
	}
}

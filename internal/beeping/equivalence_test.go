package beeping

// Cross-engine equivalence sweep: the shared frontier engine behind
// internal/mis must stay coin-for-coin identical to the goroutine-per-node
// beeping runtime across graph families and many seeds. The lockstep
// comparison in beeping_test.go covers G(n,p) narrowly; this sweep runs
// ≥20 seeds over Gnp, ChungLu, Grid and DisjointCliques, comparing every
// round's colors and the total bit accounting.

import (
	"testing"

	"ssmis/internal/graph"
	"ssmis/internal/mis"
	"ssmis/internal/xrand"
)

const equivalenceSeeds = 20

func TestBeepingEquivalenceSweep(t *testing.T) {
	graphs := func(seed uint64) map[string]*graph.Graph {
		return map[string]*graph.Graph{
			"gnp":     graph.Gnp(48, 0.08, xrand.New(seed)),
			"chunglu": graph.ChungLu(48, 2.5, 5, xrand.New(seed+1)),
			"grid":    graph.Grid(7, 7),
			"cliques": graph.DisjointCliques(6, 6),
		}
	}
	for seed := uint64(1); seed <= equivalenceSeeds; seed++ {
		for family, g := range graphs(seed) {
			sim := mis.NewTwoState(g, mis.WithSeed(seed))
			bee := NewMIS(g, seed, nil)
			for r := 0; r < 5000 && !sim.Stabilized(); r++ {
				sim.Step()
				bee.engine.Step()
				for u := 0; u < g.N(); u++ {
					if sim.Black(u) != bee.Black(u) {
						bee.Close()
						t.Fatalf("%s seed %d round %d: colors diverge at %d", family, seed, r+1, u)
					}
				}
			}
			if !sim.Stabilized() || !bee.Stabilized() {
				bee.Close()
				t.Fatalf("%s seed %d: stabilization mismatch (sim=%v bee=%v)",
					family, seed, sim.Stabilized(), bee.Stabilized())
			}
			if sim.RandomBits() != bee.RandomBits() {
				bee.Close()
				t.Fatalf("%s seed %d: bit accounting diverges: %d vs %d",
					family, seed, sim.RandomBits(), bee.RandomBits())
			}
			bee.Close()
		}
	}
}

// Package beeping implements the paper's 2-state MIS process as a node
// program for the beeping model with sender collision detection
// (full-duplex), running on the goroutine-per-node engine of
// internal/noderun.
//
// The translation is the one described in the paper's introduction: black
// nodes beep every round, white nodes listen. A black node that hears a beep
// has a black neighbor (this needs full-duplex); a white node that hears
// silence has none. In either case the node is "active" and resets to a
// uniformly random color using a single fresh random bit.
//
// Node u's random stream is Split(u) of the master seed, identical to the
// array simulator in internal/mis, so a beeping run and a simulator run with
// the same (graph, seed, initial colors) produce identical executions
// round-for-round.
package beeping

import (
	"ssmis/internal/graph"
	"ssmis/internal/noderun"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

// node is the per-vertex 2-state program. It knows nothing but its own color
// and its own coin stream.
type node struct {
	black bool
	rng   *xrand.Rand
	bits  int64
}

var _ noderun.Program = (*node)(nil)

// Emit implements noderun.Program: black nodes beep on the single channel.
func (nd *node) Emit() uint32 {
	if nd.black {
		return 1
	}
	return 0
}

// Deliver implements noderun.Program: the 2-state update rule. heard bit 0
// is "some neighbor beeped", i.e. "some neighbor is black".
func (nd *node) Deliver(heard uint32) {
	blackNeighbor := heard&1 != 0
	active := nd.black == blackNeighbor
	if active {
		nd.black = nd.rng.Bit()
		nd.bits++
	}
}

// ProgramSet bundles the per-vertex 2-state programs with their
// observer-side accessors, decoupled from any particular medium: NewMIS runs
// a set on the synchronous noderun engine, and internal/async runs one on
// the asynchronous per-node-clock medium. The programs themselves cannot
// tell the difference — they only ever see Emit/Deliver.
type ProgramSet struct {
	nodes []*node
}

// NewPrograms builds the n per-vertex 2-state programs. Node u's random
// stream is Split(u) of the master seed, and a nil initialBlack draws the
// initial colors from the init stream exactly as the simulator's InitRandom
// does — the same coin contract as NewMIS, so executions replay the
// simulator coin-for-coin on any medium that delivers synchronous-equivalent
// feedback.
func NewPrograms(n int, seed uint64, initialBlack []bool) *ProgramSet {
	master := xrand.New(seed)
	nodes := make([]*node, n)
	var initRng *xrand.Rand
	if initialBlack == nil {
		initRng = master.Split(uint64(n) + 1)
	}
	for u := 0; u < n; u++ {
		nd := &node{rng: master.Split(uint64(u))}
		if initialBlack != nil {
			nd.black = initialBlack[u]
		} else {
			nd.black = initRng.Bit()
		}
		nodes[u] = nd
	}
	return &ProgramSet{nodes: nodes}
}

// Model returns the communication model the programs assume: beeping with
// sender collision detection.
func (ps *ProgramSet) Model() noderun.Model { return noderun.BeepingCD() }

// Programs returns the per-vertex programs in vertex order.
func (ps *ProgramSet) Programs() []noderun.Program {
	progs := make([]noderun.Program, len(ps.nodes))
	for u, nd := range ps.nodes {
		progs[u] = nd
	}
	return progs
}

// Black reports vertex u's current color (valid while the medium is
// quiescent).
func (ps *ProgramSet) Black(u int) bool { return ps.nodes[u].black }

// RandomBits returns the total random bits drawn across all programs.
func (ps *ProgramSet) RandomBits() int64 {
	var total int64
	for _, nd := range ps.nodes {
		total += nd.bits
	}
	return total
}

// MIS runs the 2-state MIS protocol over the beeping medium on g.
type MIS struct {
	g      *graph.Graph
	engine *noderun.Engine
	ps     *ProgramSet
}

// NewMIS creates the protocol instance. initialBlack may be nil for a
// uniformly random initial coloring (drawn exactly as the simulator's
// InitRandom does, from the master seed's init stream).
func NewMIS(g *graph.Graph, seed uint64, initialBlack []bool) *MIS {
	ps := NewPrograms(g.N(), seed, initialBlack)
	return &MIS{
		g:      g,
		engine: noderun.NewEngine(g, ps.Model(), ps.Programs()),
		ps:     ps,
	}
}

// Close releases the node goroutines.
func (m *MIS) Close() { m.engine.Close() }

// Round returns the number of completed rounds.
func (m *MIS) Round() int { return m.engine.Round() }

// Black reports vertex u's current color (valid between rounds).
func (m *MIS) Black(u int) bool { return m.ps.Black(u) }

// RandomBits returns the total random bits drawn across all nodes.
func (m *MIS) RandomBits() int64 { return m.ps.RandomBits() }

// Stabilized reports whether no vertex is active, i.e. the black set is an
// MIS. This is an observer-side check (the nodes themselves cannot detect
// global stabilization — nor do they need to: stabilization is a property of
// the execution, not a node output).
func (m *MIS) Stabilized() bool {
	return verify.Unstable(m.g, m.Black).Empty()
}

// Run advances until stabilization or maxRounds and reports the rounds
// executed and whether the protocol stabilized.
func (m *MIS) Run(maxRounds int) (rounds int, stabilized bool) {
	return m.engine.RunUntil(maxRounds, m.Stabilized)
}

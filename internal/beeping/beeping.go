// Package beeping implements the paper's 2-state MIS process as a node
// program for the beeping model with sender collision detection
// (full-duplex), running on the goroutine-per-node engine of
// internal/noderun.
//
// The translation is the one described in the paper's introduction: black
// nodes beep every round, white nodes listen. A black node that hears a beep
// has a black neighbor (this needs full-duplex); a white node that hears
// silence has none. In either case the node is "active" and resets to a
// uniformly random color using a single fresh random bit.
//
// Node u's random stream is Split(u) of the master seed, identical to the
// array simulator in internal/mis, so a beeping run and a simulator run with
// the same (graph, seed, initial colors) produce identical executions
// round-for-round.
package beeping

import (
	"ssmis/internal/graph"
	"ssmis/internal/noderun"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

// node is the per-vertex 2-state program. It knows nothing but its own color
// and its own coin stream.
type node struct {
	black bool
	rng   *xrand.Rand
	bits  int64
}

var _ noderun.Program = (*node)(nil)

// Emit implements noderun.Program: black nodes beep on the single channel.
func (nd *node) Emit() uint32 {
	if nd.black {
		return 1
	}
	return 0
}

// Deliver implements noderun.Program: the 2-state update rule. heard bit 0
// is "some neighbor beeped", i.e. "some neighbor is black".
func (nd *node) Deliver(heard uint32) {
	blackNeighbor := heard&1 != 0
	active := nd.black == blackNeighbor
	if active {
		nd.black = nd.rng.Bit()
		nd.bits++
	}
}

// MIS runs the 2-state MIS protocol over the beeping medium on g.
type MIS struct {
	g      *graph.Graph
	engine *noderun.Engine
	nodes  []*node
}

// NewMIS creates the protocol instance. initialBlack may be nil for a
// uniformly random initial coloring (drawn exactly as the simulator's
// InitRandom does, from the master seed's init stream).
func NewMIS(g *graph.Graph, seed uint64, initialBlack []bool) *MIS {
	n := g.N()
	master := xrand.New(seed)
	nodes := make([]*node, n)
	progs := make([]noderun.Program, n)
	var initRng *xrand.Rand
	if initialBlack == nil {
		initRng = master.Split(uint64(n) + 1)
	}
	for u := 0; u < n; u++ {
		nd := &node{rng: master.Split(uint64(u))}
		if initialBlack != nil {
			nd.black = initialBlack[u]
		} else {
			nd.black = initRng.Bit()
		}
		nodes[u] = nd
		progs[u] = nd
	}
	return &MIS{
		g:      g,
		engine: noderun.NewEngine(g, noderun.BeepingCD(), progs),
		nodes:  nodes,
	}
}

// Close releases the node goroutines.
func (m *MIS) Close() { m.engine.Close() }

// Round returns the number of completed rounds.
func (m *MIS) Round() int { return m.engine.Round() }

// Black reports vertex u's current color (valid between rounds).
func (m *MIS) Black(u int) bool { return m.nodes[u].black }

// RandomBits returns the total random bits drawn across all nodes.
func (m *MIS) RandomBits() int64 {
	var total int64
	for _, nd := range m.nodes {
		total += nd.bits
	}
	return total
}

// Stabilized reports whether no vertex is active, i.e. the black set is an
// MIS. This is an observer-side check (the nodes themselves cannot detect
// global stabilization — nor do they need to: stabilization is a property of
// the execution, not a node output).
func (m *MIS) Stabilized() bool {
	return verify.Unstable(m.g, m.Black).Empty()
}

// Run advances until stabilization or maxRounds and reports the rounds
// executed and whether the protocol stabilized.
func (m *MIS) Run(maxRounds int) (rounds int, stabilized bool) {
	return m.engine.RunUntil(maxRounds, m.Stabilized)
}

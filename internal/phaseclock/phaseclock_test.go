package phaseclock

import (
	"math"
	"testing"

	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

func TestLevelsStayInRange(t *testing.T) {
	g := graph.Gnp(60, 0.1, xrand.New(1))
	s := NewStandalone(g, 2)
	for r := 0; r < 500; r++ {
		s.Step()
		for u := 0; u < g.N(); u++ {
			if l := s.Level(u); l > s.Top() {
				t.Fatalf("round %d: level(%d) = %d > top %d", r, u, l, s.Top())
			}
		}
	}
}

func TestZeroJumpsToTop(t *testing.T) {
	g := graph.Path(5)
	c := New(g)
	rng := xrand.New(3)
	rngs := make([]*xrand.Rand, g.N())
	for u := range rngs {
		rngs[u] = rng.Split(uint64(u))
	}
	// All levels start 0; one step must send everyone to top.
	c.Step(func(u int) *xrand.Rand { return rngs[u] })
	for u := 0; u < g.N(); u++ {
		if c.Level(u) != c.Top() {
			t.Fatalf("level(%d) = %d, want top %d", u, c.Level(u), c.Top())
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.Gnp(40, 0.15, xrand.New(4))
	a := NewStandalone(g, 9)
	b := NewStandalone(g, 9)
	for r := 0; r < 200; r++ {
		a.Step()
		b.Step()
		for u := 0; u < g.N(); u++ {
			if a.Level(u) != b.Level(u) {
				t.Fatalf("round %d: levels diverged at %d", r, u)
			}
		}
	}
}

func TestStatesAndTop(t *testing.T) {
	g := graph.Path(3)
	c := New(g) // D = 3
	if c.States() != 6 || c.Top() != 5 {
		t.Fatalf("D=3 clock: states=%d top=%d, want 6, 5", c.States(), c.Top())
	}
	c7 := New(g, WithD(7))
	if c7.States() != 10 || c7.Top() != 9 {
		t.Fatalf("D=7 clock: states=%d top=%d", c7.States(), c7.Top())
	}
}

func TestSetLevelValidation(t *testing.T) {
	c := New(graph.Path(3))
	c.SetLevel(0, 5)
	if c.Level(0) != 5 {
		t.Fatal("SetLevel failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetLevel above top did not panic")
		}
	}()
	c.SetLevel(0, 6)
}

func TestOnMapping(t *testing.T) {
	c := New(graph.Path(3))
	for lvl := uint8(0); lvl <= 5; lvl++ {
		c.SetLevel(0, lvl)
		if got, want := c.On(0), lvl <= 2; got != want {
			t.Fatalf("On at level %d = %v, want %v", lvl, got, want)
		}
	}
}

// onOffRuns records, for one vertex, the lengths of maximal runs of
// consecutive equal switch values over a window of rounds.
func onOffRuns(s *Standalone, u, rounds int) (onRuns, offRuns []int) {
	cur := s.On(u)
	length := 1
	for r := 0; r < rounds; r++ {
		s.Step()
		v := s.On(u)
		if v == cur {
			length++
			continue
		}
		if cur {
			onRuns = append(onRuns, length)
		} else {
			offRuns = append(offRuns, length)
		}
		cur = v
		length = 1
	}
	return onRuns, offRuns
}

// Lemma 27 / Definition 25, property (S3): on a diameter-<=2 graph, after a
// constant number of rounds every run of consecutive ON values has length at
// most b = 3.
func TestOnRunsShortOnDiameterTwo(t *testing.T) {
	g := graph.Gnp(80, 0.5, xrand.New(5))
	if !g.DiameterAtMostTwo() {
		t.Skip("sampled graph not of diameter <= 2")
	}
	s := NewStandalone(g, 11)
	// Burn in: t* + 2 <= 7 rounds per the proof; use a few more.
	for r := 0; r < 20; r++ {
		s.Step()
	}
	onRuns, _ := onOffRuns(s, 0, 3000)
	for _, l := range onRuns {
		if l > 3 {
			t.Fatalf("ON run of length %d > 3 after synchronization", l)
		}
	}
	if len(onRuns) == 0 {
		t.Fatal("no ON runs observed in 3000 rounds")
	}
}

// Property (S1): on ANY graph, every OFF run is at most a·ln n w.h.p.
// (a = 4/ζ = 512). We use a smaller ζ = 2^-3 (a = 32) to keep the test
// fast while exercising the same mechanism.
func TestOffRunsBounded(t *testing.T) {
	g := graph.Gnp(50, 0.08, xrand.New(6))
	s := NewStandalone(g, 12, WithZetaLog2(3))
	const a = 32 // 4/ζ
	bound := int(a * math.Log(float64(g.N())))
	for r := 0; r < 30; r++ {
		s.Step() // burn in
	}
	_, offRuns := onOffRuns(s, 1, 4000)
	for _, l := range offRuns {
		if l > bound {
			t.Fatalf("OFF run of length %d > a·ln n = %d", l, bound)
		}
	}
}

// Property (S2): on diameter-<=2 graphs, after synchronization OFF runs are
// at least (a/6)·ln n long. Again with ζ = 2^-3 for test speed.
func TestOffRunsLongOnDiameterTwo(t *testing.T) {
	g := graph.Gnp(64, 0.6, xrand.New(7))
	if !g.DiameterAtMostTwo() {
		t.Skip("sampled graph not of diameter <= 2")
	}
	s := NewStandalone(g, 13, WithZetaLog2(3))
	const a = 32
	minLen := int(a / 6 * math.Log(float64(g.N())))
	for r := 0; r < 100; r++ {
		s.Step() // burn in past synchronization
	}
	_, offRuns := onOffRuns(s, 2, 5000)
	if len(offRuns) == 0 {
		t.Fatal("no OFF runs observed")
	}
	for i, l := range offRuns {
		// Skip a possibly-truncated first run.
		if i == 0 {
			continue
		}
		if l < minLen {
			t.Fatalf("OFF run of length %d < (a/6)·ln n = %d on diam-2 graph", l, minLen)
		}
	}
}

// On a diameter-<=2 graph all vertices synchronize: once synchronized they
// hit level 0 simultaneously.
func TestSynchronizationOnDiameterTwo(t *testing.T) {
	g := graph.Complete(30)
	s := NewStandalone(g, 14)
	for r := 0; r < 50; r++ {
		s.Step()
	}
	for r := 0; r < 2000; r++ {
		s.Step()
		anyZero, allZero := false, true
		for u := 0; u < g.N(); u++ {
			if s.Level(u) == 0 {
				anyZero = true
			} else {
				allZero = false
			}
		}
		if anyZero && !allZero {
			t.Fatalf("round %d: some but not all vertices at level 0", r)
		}
	}
}

func TestCompleteGraphFastPathMatchesGeneric(t *testing.T) {
	// Build K_n twice: once detected as complete, once with the fast path
	// disabled by constructing the clock manually.
	g := graph.Complete(12)
	a := NewStandalone(g, 15)
	b := NewStandalone(g, 15)
	b.completeG = false
	for r := 0; r < 300; r++ {
		a.Step()
		b.Step()
		for u := 0; u < g.N(); u++ {
			if a.Level(u) != b.Level(u) {
				t.Fatalf("fast path diverged at round %d vertex %d", r, u)
			}
		}
	}
}

func TestRandomBitsAccounting(t *testing.T) {
	g := graph.Path(4)
	s := NewStandalone(g, 16)
	for r := 0; r < 100; r++ {
		s.Step()
	}
	if s.RandomBits() == 0 {
		t.Fatal("no random bits accounted")
	}
	// Each top-level vertex costs exactly 7 bits per round; bits must be a
	// multiple of 7.
	if s.RandomBits()%7 != 0 {
		t.Fatalf("bits = %d not a multiple of ζ-bit cost 7", s.RandomBits())
	}
}

func TestInvalidDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("D=0 did not panic")
		}
	}()
	New(graph.Path(3), WithD(0))
}

func TestIsolatedVertexCycles(t *testing.T) {
	g := graph.Empty(1)
	s := NewStandalone(g, 17)
	seenTop, seenZero := false, false
	for r := 0; r < 3000; r++ {
		s.Step()
		switch s.Level(0) {
		case s.Top():
			seenTop = true
		case 0:
			seenZero = true
		}
	}
	if !seenTop || !seenZero {
		t.Fatalf("isolated vertex did not cycle: top=%v zero=%v", seenTop, seenZero)
	}
}

func TestExportOnMatchesOn(t *testing.T) {
	// The SWAR export against the scalar On predicate: every size shape
	// (full words, ragged tails, sub-word universes), every threshold of the
	// paper's switch, and a clock deep enough to force the byte fallback.
	cases := []struct {
		n     int
		d     int
		onMax uint8
	}{
		{1, 3, 2}, {63, 3, 2}, {64, 3, 2}, {65, 3, 2}, {256, 3, 2},
		{300, 3, 0}, {300, 3, 5}, {192, 10, 4}, {200, 130, 64},
	}
	for _, tc := range cases {
		g := graph.Gnp(tc.n, 0.05, xrand.New(uint64(tc.n)))
		c := New(g, WithD(tc.d), WithOnThreshold(tc.onMax))
		c.RandomizeLevels(xrand.New(99))
		dst := make([]uint64, (tc.n+63)/64)
		c.ExportOn(dst)
		for u := 0; u < tc.n; u++ {
			got := dst[u/64]>>(uint(u)%64)&1 == 1
			if got != c.On(u) {
				t.Fatalf("n=%d d=%d onMax=%d: exported bit %d = %v, On = %v (level %d)",
					tc.n, tc.d, tc.onMax, u, got, c.On(u), c.Level(u))
			}
		}
		if last := tc.n % 64; last != 0 {
			if dst[len(dst)-1]>>uint(last) != 0 {
				t.Fatalf("n=%d: phantom bits beyond the universe", tc.n)
			}
		}
	}
}

// Package phaseclock implements the randomized phase-clock machinery the
// paper builds its logarithmic switch on.
//
// The generalized clock (RandPhase of Emek and Keren, PODC 2021 [12]) has
// per-vertex levels {0, 1, ..., D+2} updated in synchronous rounds:
//
//	if level(u) = D+2: draw a bit that is 0 with probability ζ
//	if (level(u) = D+2 and the bit is 1) or level(u) = 0: level'(u) = D+2
//	else:                                 level'(u) = max over N+(u) of level − 1
//
// The paper's randomized logarithmic switch (Definition 26) is exactly the
// D = 3 instance (6 states, levels 0..5) with the on/off mapping
// σ(u) = on iff level(u) ≤ 2, and parameter ζ = 2^-7 (so a = 4/ζ = 512).
// Unlike RandPhase, the switch is used as a local, non-synchronized counter:
// the paper only needs properties (S1)–(S3) of Definition 25.
package phaseclock

import (
	"fmt"

	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

// DefaultZetaLog2 is the paper's switch parameter: ζ = 2^-7, giving
// a = 4/ζ = 512 in Definition 28.
const DefaultZetaLog2 = 7

// SwitchA is the paper's a parameter of the (a,3)-logarithmic switch.
const SwitchA = 512

// Clock is a randomized phase clock over a graph. It is driven externally:
// the owner supplies per-vertex random streams to Step, which lets the
// 3-color MIS process interleave its color coins and switch coins
// deterministically on a single per-vertex stream.
type Clock struct {
	g         *graph.Graph
	d         int // RandPhase parameter D; levels are 0..d+2
	zetaLog2  uint
	onMax     uint8 // σ(u) = on iff level(u) <= onMax
	levels    []uint8
	next      []uint8
	round     int
	bits      int64
	completeG bool // fast path: global max level suffices
}

// Option configures a Clock.
type Option func(*Clock)

// WithD sets the RandPhase parameter D (default 3, the paper's switch).
func WithD(d int) Option {
	return func(c *Clock) { c.d = d }
}

// WithZetaLog2 sets ζ = 2^-k (default k = 7).
func WithZetaLog2(k uint) Option {
	return func(c *Clock) { c.zetaLog2 = k }
}

// WithOnThreshold sets the largest level mapped to "on" (default 2).
func WithOnThreshold(m uint8) Option {
	return func(c *Clock) { c.onMax = m }
}

// WithBuffers builds the clock on caller-owned level arrays instead of
// fresh allocations — the engine.RunContext lease that closes the last
// per-run O(n) allocation of the 18-state process. Both slices must have
// length g.N(); New zeroes them. The caller owns the memory: a clock built
// on leased buffers must not be used after the context's next lease.
func WithBuffers(levels, next []uint8) Option {
	return func(c *Clock) {
		c.levels = levels
		c.next = next
	}
}

// New creates a clock with all levels zero (they jump to top on the first
// step). Use RandomizeLevels or SetLevel for arbitrary (adversarial)
// initialization — the process is self-stabilizing, so any initial levels
// are legal.
func New(g *graph.Graph, opts ...Option) *Clock {
	c := &Clock{
		g:        g,
		d:        3,
		zetaLog2: DefaultZetaLog2,
		onMax:    2,
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.d < 1 {
		panic(fmt.Sprintf("phaseclock: D must be >= 1, got %d", c.d))
	}
	n := g.N()
	if c.levels == nil && c.next == nil {
		c.levels = make([]uint8, n)
		c.next = make([]uint8, n)
	} else {
		if len(c.levels) != n || len(c.next) != n {
			panic(fmt.Sprintf("phaseclock: leased buffers of length %d/%d for graph order %d",
				len(c.levels), len(c.next), n))
		}
		for u := 0; u < n; u++ {
			c.levels[u] = 0
			c.next[u] = 0
		}
	}
	c.completeG = n >= 2 && g.M() == n*(n-1)/2
	return c
}

// Rebind switches the clock to a new graph on the same vertex set, keeping
// all levels (topology churn). It panics on order mismatch.
func (c *Clock) Rebind(g *graph.Graph) {
	if g.N() != c.g.N() {
		panic(fmt.Sprintf("phaseclock: Rebind to order %d != %d", g.N(), c.g.N()))
	}
	c.g = g
	n := g.N()
	c.completeG = n >= 2 && g.M() == n*(n-1)/2
}

// Top returns the highest level, D+2.
func (c *Clock) Top() uint8 { return uint8(c.d + 2) }

// States returns the number of per-vertex states, D+3.
func (c *Clock) States() int { return c.d + 3 }

// Round returns the number of completed steps.
func (c *Clock) Round() int { return c.round }

// RandomBits returns the total random bits consumed so far (a ζ = 2^-k coin
// costs k bits).
func (c *Clock) RandomBits() int64 { return c.bits }

// SetRandomBits overwrites the bit accounting; used when restoring a clock
// from a checkpoint.
func (c *Clock) SetRandomBits(bits int64) { c.bits = bits }

// Level returns the current level of u.
func (c *Clock) Level(u int) uint8 { return c.levels[u] }

// SetLevel overwrites the level of u (adversarial initialization /
// corruption). It panics if the level exceeds Top.
func (c *Clock) SetLevel(u int, level uint8) {
	if level > c.Top() {
		panic(fmt.Sprintf("phaseclock: level %d > top %d", level, c.Top()))
	}
	c.levels[u] = level
}

// RandomizeLevels sets every level to an independent uniform value in
// [0, Top], the "arbitrary initial state" of a self-stabilization adversary.
func (c *Clock) RandomizeLevels(rng *xrand.Rand) {
	c.RandomizeLevelsPerm(rng, nil)
}

// RandomizeLevelsPerm is RandomizeLevels under a vertex relabeling: draws
// stay in ORIGINAL vertex order (the u-th draw belongs to original vertex
// u, keeping the rng sequence identical to an unrelabeled clock) but land
// at slot perm[u] of a clock built on the relabeled graph. A nil perm is
// the identity.
func (c *Clock) RandomizeLevelsPerm(rng *xrand.Rand, perm []int32) {
	top := int(c.Top()) + 1
	for u := range c.levels {
		i := u
		if perm != nil {
			i = int(perm[u])
		}
		c.levels[i] = uint8(rng.Intn(top))
	}
}

// On reports the switch value of u: on iff level(u) <= onMax.
func (c *Clock) On(u int) bool { return c.levels[u] <= c.onMax }

// ExportOn packs the switch values into dst, bit u set iff On(u), 64
// vertices per word in vertex order; bits beyond the universe are left
// zero. This is the word-granular export the engine's bit-sliced kernel
// reads as its gate lane — it runs every round of a kernel-path 3-color
// execution, so the levels are compared eight at a time: a borrow-free
// SWAR byte-less-than over each uint64 of levels (per byte b ≤ 127 and
// threshold t ≤ 128, (b|0x80) − t never borrows across bytes and its high
// bit is clear exactly when b < t), then a multiply-movemask gathers the
// eight flag bits in vertex order. A clock deep enough to break the ≤ 127
// domain (D ≥ 126; the paper's switch has D = 3) takes the byte loop.
// dst must have ⌈n/64⌉ words.
func (c *Clock) ExportOn(dst []uint64) {
	n := len(c.levels)
	if len(dst) != (n+63)/64 {
		panic(fmt.Sprintf("phaseclock: ExportOn into %d words for %d vertices", len(dst), n))
	}
	if c.Top() > 127 || c.onMax >= 127 {
		c.exportOnBytes(dst, 0)
		return
	}
	const (
		ones = 0x0101010101010101
		high = 0x8080808080808080
		mov  = 0x0102040810204080 // gathers the eight >>7 flag bits, in order
	)
	thr := uint64(c.onMax+1) * ones
	full := n / 64 // words whose 64 levels all exist
	for wi := 0; wi < full; wi++ {
		var w uint64
		for k := 0; k < 8; k++ {
			b := c.levels[wi*64+k*8:]
			x := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
				uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
			lt := ^((x | high) - thr) & high
			w |= (lt >> 7 * mov >> 56) << (k * 8)
		}
		dst[wi] = w
	}
	if full < len(dst) {
		dst[full] = 0
		c.exportOnBytes(dst, full)
	}
}

// exportOnBytes is the byte-at-a-time ExportOn over words [fromWord, ...) —
// the SWAR path's tail, and the whole export for out-of-domain clocks.
func (c *Clock) exportOnBytes(dst []uint64, fromWord int) {
	n := len(c.levels)
	for wi := fromWord; wi < len(dst); wi++ {
		base := wi * 64
		hi := base + 64
		if hi > n {
			hi = n
		}
		var w uint64
		for u := base; u < hi; u++ {
			if c.levels[u] <= c.onMax {
				w |= 1 << uint(u-base)
			}
		}
		dst[wi] = w
	}
}

// Step advances the clock one synchronous round. rngAt(u) must return the
// random stream of vertex u; it is consulted only for vertices at the top
// level, in increasing vertex order.
func (c *Clock) Step(rngAt func(u int) *xrand.Rand) {
	top := c.Top()
	var globalMax uint8
	if c.completeG {
		for _, l := range c.levels {
			if l > globalMax {
				globalMax = l
			}
		}
	}
	for u := range c.levels {
		l := c.levels[u]
		stayTop := false
		if l == top {
			// The bit is 0 with probability ζ; on 1 the vertex stays at top.
			leave := rngAt(u).BernoulliPow2(c.zetaLog2)
			c.bits += int64(c.zetaLog2)
			stayTop = !leave
		}
		switch {
		case stayTop || l == 0:
			c.next[u] = top
		default:
			m := l
			if c.completeG {
				if globalMax > m {
					m = globalMax
				}
			} else {
				for _, v := range c.g.Neighbors(u) {
					if lv := c.levels[v]; lv > m {
						m = lv
					}
				}
			}
			c.next[u] = m - 1
		}
	}
	c.levels, c.next = c.next, c.levels
	c.round++
}

// StepOwnRandom advances the clock using streams split from the given master
// generator (stream u = master.Split(u)); convenient for standalone use.
// The split streams are cached on first use.
type Standalone struct {
	*Clock
	rngs []*xrand.Rand
}

// NewStandalone wraps a clock with its own per-vertex streams derived from
// seed, for experiments that run the switch in isolation (E8).
func NewStandalone(g *graph.Graph, seed uint64, opts ...Option) *Standalone {
	c := New(g, opts...)
	master := xrand.New(seed)
	rngs := make([]*xrand.Rand, g.N())
	for u := range rngs {
		rngs[u] = master.Split(uint64(u))
	}
	c.RandomizeLevels(master.Split(uint64(g.N()) + 1))
	return &Standalone{Clock: c, rngs: rngs}
}

// Step advances the standalone clock one round.
func (s *Standalone) Step() {
	s.Clock.Step(func(u int) *xrand.Rand { return s.rngs[u] })
}

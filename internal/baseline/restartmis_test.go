package baseline

import (
	"testing"

	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

func TestRestartMISConvergesOnDiameterTwo(t *testing.T) {
	// Diameter-2 graph, clock D=3: after synchronization every phase is a
	// clean global start and a valid MIS appears quickly.
	g := graph.Gnp(80, 0.4, xrand.New(1))
	if !g.DiameterAtMostTwo() {
		t.Skip("sampled graph not diameter ≤ 2")
	}
	for seed := uint64(0); seed < 5; seed++ {
		r := NewRestartMIS(g, 3, 7, seed)
		rounds, ok := r.RunUntilValid(50000)
		if !ok {
			t.Fatalf("seed %d: no valid MIS within %d rounds", seed, rounds)
		}
	}
}

func TestRestartMISRecoversFromCorruptDecidedFlags(t *testing.T) {
	// The within-phase computation alone is NOT self-stabilizing: force an
	// all-out state (nothing claimed, everything decided) and check the
	// restart mechanism recovers where the phase-less computation cannot.
	g := graph.Complete(30)
	r := NewRestartMIS(g, 3, 7, 7)
	for u := 0; u < g.N(); u++ {
		r.state[u] = phaseOut // corrupted: no MIS vertex, all inert
	}
	if r.Valid() {
		t.Fatal("corrupted all-out configuration must not be a valid MIS")
	}
	rounds, ok := r.RunUntilValid(20000)
	if !ok {
		t.Fatalf("restart did not absorb corrupted decided flags in %d rounds", rounds)
	}
}

func TestRestartMISStatesWellFormed(t *testing.T) {
	g := graph.Gnp(50, 0.1, xrand.New(2))
	r := NewRestartMIS(g, 3, 4, 3)
	for i := 0; i < 2000; i++ {
		r.Step()
		for u := 0; u < g.N(); u++ {
			switch r.state[u] {
			case phaseUndecided, phaseInMIS, phaseOut:
			default:
				t.Fatalf("round %d: vertex %d in invalid state %d", i, u, r.state[u])
			}
		}
	}
	if r.Round() != 2000 {
		t.Fatal("round counter wrong")
	}
}

func TestRestartMISIndependenceWithinPhase(t *testing.T) {
	// Two adjacent vertices must never both claim MIS membership when both
	// joined under the same clean computation. With adversarial initial
	// states adjacent claims can exist transiently, but after the first
	// valid round, claims observed simultaneously must be independent.
	g := graph.Cycle(21)
	r := NewRestartMIS(g, 3, 4, 9)
	if _, ok := r.RunUntilValid(50000); !ok {
		t.Skip("no valid configuration reached; nothing to check")
	}
	// At the valid round, independence holds by definition of Valid.
	for u := 0; u < g.N(); u++ {
		if !r.InMIS(u) {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if r.InMIS(int(v)) {
				t.Fatalf("adjacent MIS claims %d-%d in valid configuration", u, v)
			}
		}
	}
}

// Package baseline implements the classical distributed MIS algorithms the
// paper's related-work section compares against, plus exact sequential
// constructions used by tests:
//
//   - Luby's algorithm [24] in its random-value form: each round every
//     undecided vertex draws a random value; local minima join the MIS and
//     their neighborhoods retire. O(log n) rounds w.h.p., but each vertex
//     needs Θ(log n) random bits per round, Θ(log n)-bit messages, and
//     super-constant state — the costs the paper's constant-state processes
//     avoid — and it is not self-stabilizing (it assumes a clean start).
//
//   - Random-permutation greedy (the parallel greedy of Blelloch et al.):
//     a single global random priority, processed in parallel rounds. Used
//     as a second, structurally different baseline.
//
//   - Sequential greedy MIS over a given order — the exact reference
//     construction for verification.
package baseline

import (
	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

// Result reports a baseline run.
type Result struct {
	// Rounds is the number of synchronous rounds used.
	Rounds int
	// RandomBits counts the random bits consumed (64 per value draw).
	RandomBits int64
	// InMIS is the computed maximal independent set.
	InMIS []bool
}

// Luby runs Luby's random-value MIS algorithm on g with the given seed and
// returns the rounds used. Each round, every undecided vertex draws a
// uniform 64-bit value; a vertex whose value is strictly smaller than all
// undecided neighbors' joins the MIS, and its neighbors leave the graph.
// Ties (probability ~2^-64) are broken toward the smaller vertex id.
func Luby(g *graph.Graph, seed uint64) Result {
	n := g.N()
	master := xrand.New(seed)
	rngs := make([]*xrand.Rand, n)
	for u := range rngs {
		rngs[u] = master.Split(uint64(u))
	}
	const (
		undecided = iota
		inMIS
		retired
	)
	status := make([]uint8, n)
	vals := make([]uint64, n)
	res := Result{InMIS: make([]bool, n)}
	remaining := n
	for remaining > 0 {
		res.Rounds++
		for u := 0; u < n; u++ {
			if status[u] == undecided {
				vals[u] = rngs[u].Uint64()
				res.RandomBits += 64
			}
		}
		// Local minima join — decided against the pre-round status snapshot,
		// then committed, so same-round joins don't hide each other.
		var joined []int
		for u := 0; u < n; u++ {
			if status[u] != undecided {
				continue
			}
			isMin := true
			for _, v := range g.Neighbors(u) {
				if status[v] != undecided {
					continue
				}
				if vals[v] < vals[u] || (vals[v] == vals[u] && int(v) < u) {
					isMin = false
					break
				}
			}
			if isMin {
				joined = append(joined, u)
			}
		}
		for _, u := range joined {
			status[u] = inMIS
			res.InMIS[u] = true
			remaining--
			for _, v := range g.Neighbors(u) {
				if status[v] == undecided {
					status[v] = retired
					remaining--
				}
			}
		}
	}
	return res
}

// PermutationGreedy runs the parallel random-permutation greedy MIS: a
// single uniform priority permutation is drawn up front; in each round,
// every undecided vertex whose priority beats all undecided neighbors joins
// the MIS and retires its neighborhood. Equivalent to sequential greedy over
// the permutation; the round count is the permutation's dependence depth.
func PermutationGreedy(g *graph.Graph, seed uint64) Result {
	n := g.N()
	rng := xrand.New(seed)
	perm := rng.Perm(n)
	prio := make([]int, n) // lower = stronger
	for i, u := range perm {
		prio[u] = i
	}
	const (
		undecided = iota
		inMIS
		retired
	)
	status := make([]uint8, n)
	res := Result{InMIS: make([]bool, n), RandomBits: int64(n) * 64}
	remaining := n
	for remaining > 0 {
		res.Rounds++
		var joined []int
		for u := 0; u < n; u++ {
			if status[u] != undecided {
				continue
			}
			best := true
			for _, v := range g.Neighbors(u) {
				if status[v] == undecided && prio[v] < prio[u] {
					best = false
					break
				}
			}
			if best {
				joined = append(joined, u)
			}
		}
		for _, u := range joined {
			status[u] = inMIS
			res.InMIS[u] = true
			remaining--
			for _, v := range g.Neighbors(u) {
				if status[v] == undecided {
					status[v] = retired
					remaining--
				}
			}
		}
	}
	return res
}

// GreedyMIS computes the sequential greedy MIS over the given vertex order
// (or 0..n-1 when order is nil) — the deterministic reference construction.
func GreedyMIS(g *graph.Graph, order []int) []bool {
	n := g.N()
	inMIS := make([]bool, n)
	blocked := make([]bool, n)
	visit := func(u int) {
		if !blocked[u] {
			inMIS[u] = true
			for _, v := range g.Neighbors(u) {
				blocked[v] = true
			}
		}
	}
	if order == nil {
		for u := 0; u < n; u++ {
			visit(u)
		}
	} else {
		for _, u := range order {
			visit(u)
		}
	}
	return inMIS
}

package baseline

// RestartMIS is a didactic reconstruction of the restart mechanism behind
// the self-stabilizing MIS of Emek and Keren (PODC 2021, [12] in the
// paper): a RandPhase(D) phase clock synchronizes periodic restarts of a
// simple NON-self-stabilizing one-bit MIS computation (each phase: Luby-
// style beeping from a clean slate; a corrupted "decided" flag survives
// only until the next restart). On graphs of diameter at most D the clock
// synchronizes, every phase is a clean global start, and an MIS appears
// within O(D + log n) rounds of a phase boundary; on graphs of larger
// diameter the restart waves desynchronize and vertices restart while
// their neighbors are mid-computation.
//
// This is NOT the algorithm of [12] (which maintains its output across
// phases); it exists to reproduce the paper's comparative claim that
// restart-based self-stabilization is "fast only on graphs whose diameter
// is bounded by a known constant D", in contrast to the paper's processes,
// which need no synchronization at all.

import (
	"ssmis/internal/graph"
	"ssmis/internal/phaseclock"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

// misPhase is the per-vertex state of the within-phase computation.
type misPhase uint8

const (
	phaseUndecided misPhase = iota + 1
	phaseInMIS
	phaseOut
)

// RestartMIS runs the phase-clock-synchronized restart scheme.
type RestartMIS struct {
	g        *graph.Graph
	clock    *phaseclock.Clock
	state    []misPhase
	rngs     []*xrand.Rand
	beepProb float64
	round    int

	prevLevel []uint8
	beeped    []bool
}

// NewRestartMIS creates the scheme with clock parameter D and ζ = 2^-zetaK.
// The within-phase beep probability is 1/(Δ+1) (Luby-style degree
// awareness — with a constant probability, dense graphs make joins
// exponentially unlikely; this is one of the extra resources restart
// schemes consume that the paper's processes do not). Initial MIS states
// and clock levels are adversarial (uniformly random) — the point of the
// construction is to absorb them at the next restart.
func NewRestartMIS(g *graph.Graph, d int, zetaK uint, seed uint64) *RestartMIS {
	n := g.N()
	master := xrand.New(seed)
	r := &RestartMIS{
		g:         g,
		clock:     phaseclock.New(g, phaseclock.WithD(d), phaseclock.WithZetaLog2(zetaK)),
		state:     make([]misPhase, n),
		rngs:      make([]*xrand.Rand, n),
		beepProb:  1.0 / float64(g.MaxDegree()+1),
		prevLevel: make([]uint8, n),
		beeped:    make([]bool, n),
	}
	for u := 0; u < n; u++ {
		r.rngs[u] = master.Split(uint64(u))
	}
	init := master.Split(uint64(n) + 1)
	for u := 0; u < n; u++ {
		r.state[u] = misPhase(1 + init.Intn(3))
	}
	r.clock.RandomizeLevels(init)
	for u := 0; u < n; u++ {
		r.prevLevel[u] = r.clock.Level(u)
	}
	return r
}

// Round returns the completed rounds.
func (r *RestartMIS) Round() int { return r.round }

// InMIS reports whether u currently claims MIS membership.
func (r *RestartMIS) InMIS(u int) bool { return r.state[u] == phaseInMIS }

// Valid reports whether the current claimed set is an MIS of the graph.
func (r *RestartMIS) Valid() bool {
	return verify.MIS(r.g, r.InMIS) == nil
}

// Step advances one synchronous round: the one-bit Luby-style computation
// (beep coin first on each vertex's stream), then the phase clock (clock
// coin second), then restarts for vertices whose clock wrapped 0→top.
func (r *RestartMIS) Step() {
	n := r.g.N()
	// Beep phase: undecided vertices beep with probability 1/(Δ+1).
	for u := 0; u < n; u++ {
		r.beeped[u] = r.state[u] == phaseUndecided && r.rngs[u].Bernoulli(r.beepProb)
	}
	// Decision phase against the snapshot.
	next := make([]misPhase, n)
	for u := 0; u < n; u++ {
		next[u] = r.state[u]
		switch r.state[u] {
		case phaseUndecided:
			inMISNbr := false
			beepNbr := false
			for _, v := range r.g.Neighbors(u) {
				if r.state[v] == phaseInMIS {
					inMISNbr = true
				}
				if r.beeped[v] {
					beepNbr = true
				}
			}
			switch {
			case inMISNbr:
				next[u] = phaseOut
			case r.beeped[u] && !beepNbr:
				next[u] = phaseInMIS
			}
		case phaseOut, phaseInMIS:
			// Decided vertices are inert until the next restart — the
			// non-self-stabilizing part the clock compensates for.
		}
	}
	copy(r.state, next)

	// Clock advances; a 0→top wrap restarts the vertex's computation.
	r.clock.Step(func(u int) *xrand.Rand { return r.rngs[u] })
	for u := 0; u < n; u++ {
		lvl := r.clock.Level(u)
		if r.prevLevel[u] == 0 && lvl == r.clock.Top() {
			r.state[u] = phaseUndecided
		}
		r.prevLevel[u] = lvl
	}
	r.round++
}

// RunUntilValid steps until the claimed set is an MIS or maxRounds elapse,
// returning the rounds executed and success.
func (r *RestartMIS) RunUntilValid(maxRounds int) (int, bool) {
	for r.round < maxRounds {
		if r.Valid() {
			return r.round, true
		}
		r.Step()
	}
	return r.round, r.Valid()
}

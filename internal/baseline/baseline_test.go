package baseline

import (
	"math"
	"testing"
	"testing/quick"

	"ssmis/internal/graph"
	"ssmis/internal/verify"
	"ssmis/internal/xrand"
)

func TestLubyProducesMIS(t *testing.T) {
	rng := xrand.New(1)
	families := map[string]*graph.Graph{
		"single":   graph.Empty(1),
		"edgeless": graph.Empty(10),
		"path":     graph.Path(40),
		"clique":   graph.Complete(50),
		"star":     graph.Star(30),
		"gnp":      graph.Gnp(200, 0.05, rng),
		"tree":     graph.RandomTree(150, rng),
	}
	for name, g := range families {
		res := Luby(g, 7)
		if err := verify.MISBools(g, res.InMIS); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if g.N() > 0 && res.Rounds == 0 {
			t.Errorf("%s: zero rounds", name)
		}
	}
}

func TestPermutationGreedyProducesMIS(t *testing.T) {
	rng := xrand.New(2)
	families := map[string]*graph.Graph{
		"path":   graph.Path(40),
		"clique": graph.Complete(50),
		"gnp":    graph.Gnp(200, 0.05, rng),
	}
	for name, g := range families {
		res := PermutationGreedy(g, 9)
		if err := verify.MISBools(g, res.InMIS); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLubyCliqueOneRoundish(t *testing.T) {
	// On a clique, the global minimum joins in round 1 and everyone else
	// retires: always exactly 1 round.
	res := Luby(graph.Complete(100), 3)
	if res.Rounds != 1 {
		t.Fatalf("Luby on K_100 took %d rounds, want 1", res.Rounds)
	}
	count := 0
	for _, in := range res.InMIS {
		if in {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("clique MIS size %d, want 1", count)
	}
}

func TestLubyLogarithmicRounds(t *testing.T) {
	// O(log n) w.h.p.: loose upper check at one size.
	rng := xrand.New(4)
	g := graph.Gnp(2000, 0.005, rng)
	worst := 0
	for seed := uint64(0); seed < 10; seed++ {
		if r := Luby(g, seed).Rounds; r > worst {
			worst = r
		}
	}
	if bound := int(6 * math.Log2(2000)); worst > bound {
		t.Fatalf("Luby worst rounds %d > %d", worst, bound)
	}
}

func TestLubyRandomBitsAccounting(t *testing.T) {
	g := graph.Complete(10)
	res := Luby(g, 5)
	// Round 1: all 10 vertices draw 64 bits.
	if res.RandomBits != 640 {
		t.Fatalf("RandomBits = %d, want 640", res.RandomBits)
	}
}

func TestGreedyMIS(t *testing.T) {
	g := graph.Path(5)
	mis1 := GreedyMIS(g, nil)
	want := []bool{true, false, true, false, true}
	for i := range want {
		if mis1[i] != want[i] {
			t.Fatalf("GreedyMIS natural order = %v, want %v", mis1, want)
		}
	}
	mis2 := GreedyMIS(g, []int{1, 3, 0, 2, 4})
	if !mis2[1] || !mis2[3] || mis2[0] || mis2[2] || mis2[4] {
		t.Fatalf("GreedyMIS custom order = %v", mis2)
	}
	if err := verify.MISBools(g, mis2); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationGreedyMatchesSequentialGreedy(t *testing.T) {
	// The parallel permutation greedy must compute the same set as the
	// sequential greedy over that permutation. We reconstruct the
	// permutation from the same seed.
	rng := xrand.New(6)
	for trial := 0; trial < 20; trial++ {
		g := graph.Gnp(80, 0.08, rng.Split(uint64(trial)))
		seed := uint64(trial)
		res := PermutationGreedy(g, seed)
		perm := xrand.New(seed).Perm(g.N())
		seq := GreedyMIS(g, perm)
		for u := range seq {
			if seq[u] != res.InMIS[u] {
				t.Fatalf("trial %d: parallel and sequential greedy differ at %d", trial, u)
			}
		}
		if err := verify.CheckGreedyMISCompatible(g, perm, func(u int) bool { return res.InMIS[u] }); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// Property: both baselines always produce an MIS on random graphs.
func TestBaselinesMISProperty(t *testing.T) {
	master := xrand.New(7)
	f := func(seed uint64) bool {
		r := master.Split(seed)
		n := 2 + r.Intn(60)
		g := graph.Gnp(n, r.Float64()*0.4, r)
		return verify.MISBools(g, Luby(g, seed).InMIS) == nil &&
			verify.MISBools(g, PermutationGreedy(g, seed).InMIS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLubyDeterministic(t *testing.T) {
	g := graph.Gnp(100, 0.05, xrand.New(8))
	a, b := Luby(g, 42), Luby(g, 42)
	if a.Rounds != b.Rounds {
		t.Fatal("Luby nondeterministic")
	}
	for u := range a.InMIS {
		if a.InMIS[u] != b.InMIS[u] {
			t.Fatal("Luby sets differ across identical runs")
		}
	}
}

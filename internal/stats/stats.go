// Package stats provides the summary statistics and model-fitting helpers
// the experiment harness uses to turn raw stabilization-time samples into
// the quantities the paper's theorems speak about: means with confidence
// intervals, tail quantiles, and fitted exponents for polylogarithmic
// scaling laws of the form T ≈ c · ln^k(n).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the standard descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
}

// Summarize computes descriptive statistics. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantileSorted(sorted, 0.5)
	s.P90 = quantileSorted(sorted, 0.9)
	s.P99 = quantileSorted(sorted, 0.99)
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.0f med=%.1f p90=%.1f p99=%.1f max=%.0f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P90, s.P99, s.Max)
}

// MeanCI95 returns the normal-approximation 95% confidence half-width of the
// sample mean: 1.96·sd/√n (0 for samples of size < 2).
func (s Summary) MeanCI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// Quantile returns the q-quantile (0 <= q <= 1) of the sample using linear
// interpolation between order statistics. It panics on an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanInts converts and averages an integer sample.
func MeanInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// Floats converts an integer sample to float64.
func Floats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// LinearFit fits y ≈ a + b·x by ordinary least squares and returns the
// intercept a, slope b, and the coefficient of determination R². It panics
// if fewer than 2 points are given or all x are identical.
func LinearFit(x, y []float64) (a, b, r2 float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: LinearFit needs >= 2 paired points")
	}
	n := float64(len(x))
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stats: LinearFit with constant x")
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		return a, b, 1 // y constant: the fit is exact
	}
	// R² = 1 - SSres/SStot.
	ssres := 0.0
	for i := range x {
		res := y[i] - (a + b*x[i])
		ssres += res * res
	}
	r2 = 1 - ssres/syy
	_ = n
	return a, b, r2
}

// PolylogFit fits T ≈ c · ln(n)^k by regressing ln(T) on ln(ln(n)), returning
// the constant c, the exponent k, and R². All n must exceed e (so ln ln n is
// defined and positive) and all T must be positive.
func PolylogFit(ns []float64, ts []float64) (c, k, r2 float64) {
	if len(ns) != len(ts) || len(ns) < 2 {
		panic("stats: PolylogFit needs >= 2 paired points")
	}
	x := make([]float64, len(ns))
	y := make([]float64, len(ns))
	for i := range ns {
		ln := math.Log(ns[i])
		if ln <= 1 {
			panic(fmt.Sprintf("stats: PolylogFit requires n > e, got n=%v", ns[i]))
		}
		if ts[i] <= 0 {
			panic(fmt.Sprintf("stats: PolylogFit requires T > 0, got T=%v", ts[i]))
		}
		x[i] = math.Log(ln)
		y[i] = math.Log(ts[i])
	}
	a, b, r2 := LinearFit(x, y)
	return math.Exp(a), b, r2
}

// PowerFit fits T ≈ c · n^k by regressing ln(T) on ln(n).
func PowerFit(ns []float64, ts []float64) (c, k, r2 float64) {
	if len(ns) != len(ts) || len(ns) < 2 {
		panic("stats: PowerFit needs >= 2 paired points")
	}
	x := make([]float64, len(ns))
	y := make([]float64, len(ns))
	for i := range ns {
		if ns[i] <= 0 || ts[i] <= 0 {
			panic("stats: PowerFit requires positive data")
		}
		x[i] = math.Log(ns[i])
		y[i] = math.Log(ts[i])
	}
	a, b, r2 := LinearFit(x, y)
	return math.Exp(a), b, r2
}

// Histogram bins xs into width-sized bins starting at lo and returns the
// counts; values below lo go to bin 0, values at or above lo+width*len
// clamp into the last bin.
func Histogram(xs []float64, lo, width float64, bins int) []int {
	if bins <= 0 || width <= 0 {
		panic("stats: Histogram needs positive bins and width")
	}
	counts := make([]int, bins)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts
}

// GeometricTailSlope estimates the decay rate of P[X >= k·scale] in
// log2-space by regressing log2 of the empirical tail on k, using only tail
// points with at least minCount samples. The paper's Theorem 8 predicts
// slope ≈ -Θ(1) for the stabilization time on cliques with scale = log2(n).
// Returns the slope and the number of tail points used (0 if too few).
func GeometricTailSlope(xs []float64, scale float64, minCount int) (slope float64, points int) {
	if scale <= 0 || len(xs) == 0 {
		return 0, 0
	}
	n := len(xs)
	var ks, logs []float64
	for k := 1; ; k++ {
		thresh := float64(k) * scale
		cnt := 0
		for _, x := range xs {
			if x >= thresh {
				cnt++
			}
		}
		if cnt < minCount {
			break
		}
		ks = append(ks, float64(k))
		logs = append(logs, math.Log2(float64(cnt)/float64(n)))
	}
	if len(ks) < 2 {
		return 0, len(ks)
	}
	_, b, _ := LinearFit(ks, logs)
	return b, len(ks)
}

package stats

import (
	"math"
	"testing"

	"ssmis/internal/xrand"
)

// The streaming quantiles must agree exactly with the slice-based path on
// integer-valued samples (the only kind the batch sinks feed them).
func TestStreamMatchesSummarize(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(400)
		xs := make([]float64, n)
		s := NewQuantileStream()
		for i := range xs {
			xs[i] = float64(rng.Intn(50))
			s.Add(xs[i])
		}
		want := Summarize(xs)
		got := s.Summary()
		if got.N != want.N || got.Min != want.Min || got.Max != want.Max ||
			got.Median != want.Median || got.P90 != want.P90 || got.P99 != want.P99 {
			t.Fatalf("trial %d: stream %+v vs summarize %+v", trial, got, want)
		}
		if math.Abs(got.Mean-want.Mean) > 1e-9*math.Max(1, math.Abs(want.Mean)) {
			t.Fatalf("trial %d: mean %v vs %v", trial, got.Mean, want.Mean)
		}
		if math.Abs(got.StdDev-want.StdDev) > 1e-9*math.Max(1, want.StdDev) {
			t.Fatalf("trial %d: sd %v vs %v", trial, got.StdDev, want.StdDev)
		}
		if math.Abs(got.Mean-Mean(xs)) > 1e-9*math.Max(1, math.Abs(want.Mean)) {
			t.Fatalf("trial %d: stream mean drifted", trial)
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1} {
			if sq, wq := s.Quantile(q), Quantile(xs, q); sq != wq {
				t.Fatalf("trial %d: q=%v stream %v vs slice %v", trial, q, sq, wq)
			}
		}
	}
}

// Feeding the same sequence twice must produce bit-identical aggregates —
// the property the batch scheduler's in-order delivery relies on.
func TestStreamDeterministic(t *testing.T) {
	mk := func() *Stream {
		s := NewQuantileStream()
		rng := xrand.New(11)
		for i := 0; i < 1000; i++ {
			s.Add(float64(rng.Intn(1000)))
		}
		return s
	}
	a, b := mk(), mk()
	if a.Mean() != b.Mean() || a.StdDev() != b.StdDev() || a.MeanCI95() != b.MeanCI95() {
		t.Fatal("identical sequences produced different aggregates")
	}
}

func TestStreamValues(t *testing.T) {
	s := NewQuantileStream()
	for _, x := range []float64{3, 1, 3, 2} {
		s.Add(x)
	}
	vals := s.Values()
	want := []float64{1, 2, 3, 3}
	if len(vals) != len(want) {
		t.Fatalf("Values len %d", len(vals))
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("Values = %v", vals)
		}
	}
}

func TestStreamEmptyAndPlain(t *testing.T) {
	s := NewStream()
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.MeanCI95() != 0 {
		t.Fatal("empty stream aggregates not zero")
	}
	s.Add(5)
	s.Add(7)
	if s.Mean() != 6 || s.Min() != 5 || s.Max() != 7 {
		t.Fatalf("plain stream wrong: mean=%v min=%v max=%v", s.Mean(), s.Min(), s.Max())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile on a non-quantile stream did not panic")
		}
	}()
	s.Quantile(0.5)
}

package stats

import (
	"math"
	"testing"
	"testing/quick"

	"ssmis/internal/xrand"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeKnownSample(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if !close(s.Mean, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", s.Mean)
	}
	// Sample sd with n-1: variance = 32/7.
	if !close(s.StdDev, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if !close(s.Median, 4.5, 1e-12) {
		t.Fatalf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.StdDev != 0 || s.Median != 3 || s.Min != 3 || s.Max != 3 {
		t.Fatalf("singleton summary wrong: %+v", s)
	}
	if s.MeanCI95() != 0 {
		t.Fatal("singleton CI should be 0")
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Summarize(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !close(got, c.want, 1e-12) {
			t.Errorf("Quantile(%.2f) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.5); !close(got, 5, 1e-12) {
		t.Fatalf("interpolated median = %v", got)
	}
}

func TestQuantileUnsortedInput(t *testing.T) {
	if got := Quantile([]float64{5, 1, 3, 2, 4}, 0.5); !close(got, 3, 1e-12) {
		t.Fatalf("median of unsorted = %v", got)
	}
}

func TestMeanHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if MeanInts([]int{1, 2, 3}) != 2 {
		t.Fatal("MeanInts wrong")
	}
	f := Floats([]int{1, 2})
	if len(f) != 2 || f[0] != 1 || f[1] != 2 {
		t.Fatal("Floats wrong")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b, r2 := LinearFit(x, y)
	if !close(a, 1, 1e-9) || !close(b, 2, 1e-9) || !close(r2, 1, 1e-9) {
		t.Fatalf("fit a=%v b=%v r2=%v, want 1, 2, 1", a, b, r2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	rng := xrand.New(1)
	var x, y []float64
	for i := 0; i < 500; i++ {
		xi := float64(i) / 10
		x = append(x, xi)
		y = append(y, 2+3*xi+(rng.Float64()-0.5))
	}
	a, b, r2 := LinearFit(x, y)
	if !close(a, 2, 0.1) || !close(b, 3, 0.01) {
		t.Fatalf("noisy fit a=%v b=%v", a, b)
	}
	if r2 < 0.99 {
		t.Fatalf("R² = %v too low", r2)
	}
}

func TestLinearFitConstantY(t *testing.T) {
	a, b, r2 := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if !close(a, 4, 1e-12) || !close(b, 0, 1e-12) || r2 != 1 {
		t.Fatalf("constant-y fit a=%v b=%v r2=%v", a, b, r2)
	}
}

func TestLinearFitPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"short":      func() { LinearFit([]float64{1}, []float64{1}) },
		"constant-x": func() { LinearFit([]float64{2, 2}, []float64{1, 3}) },
		"mismatch":   func() { LinearFit([]float64{1, 2}, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPolylogFitRecoversExponent(t *testing.T) {
	// T = 3 · ln(n)^2 exactly.
	var ns, ts []float64
	for _, n := range []float64{100, 1000, 10000, 100000, 1e6} {
		ns = append(ns, n)
		ts = append(ts, 3*math.Pow(math.Log(n), 2))
	}
	c, k, r2 := PolylogFit(ns, ts)
	if !close(c, 3, 1e-6) || !close(k, 2, 1e-6) || !close(r2, 1, 1e-9) {
		t.Fatalf("PolylogFit c=%v k=%v r2=%v, want 3, 2, 1", c, k, r2)
	}
}

func TestPowerFitRecoversExponent(t *testing.T) {
	var ns, ts []float64
	for _, n := range []float64{10, 100, 1000} {
		ns = append(ns, n)
		ts = append(ts, 0.5*math.Pow(n, 1.5))
	}
	c, k, r2 := PowerFit(ns, ts)
	if !close(c, 0.5, 1e-9) || !close(k, 1.5, 1e-9) || !close(r2, 1, 1e-9) {
		t.Fatalf("PowerFit c=%v k=%v r2=%v", c, k, r2)
	}
}

func TestPolylogVsPowerDiscrimination(t *testing.T) {
	// Data that is genuinely polylog should fit polylog with R² near 1 and
	// power-law with small exponent; data that is a power law should show a
	// clearly positive power exponent. This mirrors how the experiments
	// decide "polylog-shaped".
	rng := xrand.New(2)
	var ns, polylog, power []float64
	for _, n := range []float64{256, 1024, 4096, 16384, 65536, 262144} {
		noise := 1 + 0.05*(rng.Float64()-0.5)
		ns = append(ns, n)
		polylog = append(polylog, 2*math.Pow(math.Log(n), 2)*noise)
		power = append(power, 0.1*math.Pow(n, 0.5)*noise)
	}
	_, kPoly, r2Poly := PolylogFit(ns, polylog)
	if r2Poly < 0.98 || kPoly < 1.5 || kPoly > 2.5 {
		t.Fatalf("polylog data: k=%v r2=%v", kPoly, r2Poly)
	}
	_, kPow, _ := PowerFit(ns, power)
	if kPow < 0.4 || kPow > 0.6 {
		t.Fatalf("power data: k=%v", kPow)
	}
	// The power exponent fitted to polylog data must be near zero.
	_, kCross, _ := PowerFit(ns, polylog)
	if kCross > 0.25 {
		t.Fatalf("power fit of polylog data has exponent %v", kCross)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.5, 1.5, 1.7, 2.5, 9.9, -3}
	h := Histogram(xs, 0, 1, 3)
	// bin0: 0.5 and -3 (clamped); bin1: 1.5, 1.7; bin2: 2.5 and 9.9 (clamped).
	if h[0] != 2 || h[1] != 2 || h[2] != 2 {
		t.Fatalf("Histogram = %v", h)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Histogram(nil, 0, 0, 3)
}

func TestGeometricTailSlope(t *testing.T) {
	// Sample from an exact geometric tail: P[X >= k] = 2^-k, i.e. X uniform
	// over {1,2,...} with mass 2^-k at k.
	rng := xrand.New(3)
	xs := make([]float64, 60000)
	for i := range xs {
		k := 1
		for rng.Bit() && k < 40 {
			k++
		}
		xs[i] = float64(k)
	}
	slope, points := GeometricTailSlope(xs, 1, 30)
	if points < 3 {
		t.Fatalf("only %d tail points", points)
	}
	if !close(slope, -1, 0.15) {
		t.Fatalf("tail slope %v, want ≈ -1", slope)
	}
}

func TestGeometricTailSlopeDegenerate(t *testing.T) {
	if s, p := GeometricTailSlope(nil, 1, 5); s != 0 || p != 0 {
		t.Fatal("empty sample should return zeros")
	}
	if _, p := GeometricTailSlope([]float64{0.1, 0.2}, 100, 5); p != 0 {
		t.Fatal("all-below-threshold sample should have 0 points")
	}
}

// Property: Summarize respects Min <= Median <= Max and Mean within [Min,Max].
func TestSummaryOrderingProperty(t *testing.T) {
	rng := xrand.New(4)
	f := func(seed uint64) bool {
		r := rng.Split(seed)
		n := 1 + r.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()*200 - 100
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Median <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: LinearFit on data generated from a known line recovers it.
func TestLinearFitRoundTripProperty(t *testing.T) {
	rng := xrand.New(5)
	f := func(seed uint64) bool {
		r := rng.Split(seed)
		a0 := r.Float64()*10 - 5
		b0 := r.Float64()*10 - 5
		var x, y []float64
		for i := 0; i < 10; i++ {
			xi := float64(i)
			x = append(x, xi)
			y = append(y, a0+b0*xi)
		}
		a, b, r2 := LinearFit(x, y)
		return close(a, a0, 1e-6) && close(b, b0, 1e-6) && r2 > 1-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

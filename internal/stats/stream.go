package stats

// Streaming aggregation. Sweep-scale batch runs fold each outcome into an
// online accumulator instead of materializing per-run sample slices: the
// mean and confidence interval come from Welford's algorithm, and — because
// the quantities the experiments aggregate (stabilization rounds, random
// bits) take values from a small set of integers — the median and tail
// quantiles come exactly from a sparse value-count map rather than from an
// approximation sketch. Aggregation is a pure function of the sample
// SEQUENCE: feeding the same outcomes in the same order yields bit-identical
// summaries, which is what lets internal/batch promise identical results at
// any worker count (outcomes are delivered to sinks in job order).

import (
	"math"
	"sort"
)

// Stream is an online sample accumulator: Welford mean/variance plus
// min/max, and (for quantile streams) exact order statistics via value
// counts. The zero value is NOT usable; construct with NewStream or
// NewQuantileStream.
type Stream struct {
	n        int
	mean, m2 float64
	min, max float64
	counts   map[float64]int // nil unless quantile tracking is on
}

// NewStream returns an accumulator tracking mean, deviation, and extrema.
func NewStream() *Stream { return &Stream{} }

// NewQuantileStream returns an accumulator that additionally tracks exact
// quantiles through a value-count map. Memory is O(#distinct values) — for
// integer-valued samples such as round counts this is far below O(#samples).
func NewQuantileStream() *Stream {
	return &Stream{counts: make(map[float64]int)}
}

// Add folds x into the accumulator.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if s.counts != nil {
		s.counts[x]++
	}
}

// N returns the number of samples folded in so far.
func (s *Stream) N() int { return s.n }

// Mean returns the running mean (0 for an empty stream).
func (s *Stream) Mean() float64 { return s.mean }

// Min and Max return the extrema (0 for an empty stream).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest sample seen (0 for an empty stream).
func (s *Stream) Max() float64 { return s.max }

// StdDev returns the sample standard deviation (n-1 denominator; 0 for
// fewer than two samples).
func (s *Stream) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// MeanCI95 returns the normal-approximation 95% confidence half-width of
// the mean, matching Summary.MeanCI95.
func (s *Stream) MeanCI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.n))
}

// sortedValues returns the distinct values in increasing order; only
// quantile streams have them.
func (s *Stream) sortedValues() []float64 {
	if s.counts == nil {
		panic("stats: quantiles require NewQuantileStream")
	}
	vals := make([]float64, 0, len(s.counts))
	for v := range s.counts {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	return vals
}

// Quantile returns the q-quantile with the same interpolation between order
// statistics as the slice-based Quantile, reconstructed from value counts.
// It panics on an empty stream or a non-quantile stream.
func (s *Stream) Quantile(q float64) float64 {
	if s.n == 0 {
		panic("stats: Quantile of empty stream")
	}
	vals := s.sortedValues()
	orderStat := func(k int) float64 {
		seen := 0
		for _, v := range vals {
			seen += s.counts[v]
			if k < seen {
				return v
			}
		}
		return vals[len(vals)-1]
	}
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[len(vals)-1]
	}
	pos := q * float64(s.n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	vlo := orderStat(lo)
	if lo == hi {
		return vlo
	}
	vhi := orderStat(hi)
	frac := pos - float64(lo)
	return vlo*(1-frac) + vhi*frac
}

// Values reconstructs the full sample in increasing order (multiplicity
// preserved, arrival order not). Compatibility shim for the few analyses
// that need raw samples (tail-slope fits); everything else should stay
// streaming. Panics on a non-quantile stream.
func (s *Stream) Values() []float64 {
	vals := s.sortedValues()
	out := make([]float64, 0, s.n)
	for _, v := range vals {
		for i := 0; i < s.counts[v]; i++ {
			out = append(out, v)
		}
	}
	return out
}

// Summary renders the accumulated sample as the descriptive-statistics
// struct the experiment tables consume. Median/P90/P99 require a quantile
// stream. It panics on an empty stream, matching Summarize.
func (s *Stream) Summary() Summary {
	if s.n == 0 {
		panic("stats: Summary of empty stream")
	}
	return Summary{
		N:      s.n,
		Mean:   s.mean,
		StdDev: s.StdDev(),
		Min:    s.min,
		Max:    s.max,
		Median: s.Quantile(0.5),
		P90:    s.Quantile(0.9),
		P99:    s.Quantile(0.99),
	}
}

package engine

// Per-worker run contexts. A sweep-scale workload executes thousands of
// independent runs back to back on each worker; constructing a fresh Core
// per run used to allocate every bitset, counter array, coverage stamp
// vector, and per-vertex random stream anew — O(n) allocations per run that
// the garbage collector pays for at sweep scale. A RunContext owns one
// reusable copy of all of that scratch. Leasing is destructive by design:
// constructing a new engine (or process) on a context invalidates whatever
// previously leased from it, which is exactly the lifecycle of a batch
// worker — run to completion, fold the result into a streaming aggregate,
// reuse the scratch for the next run.

import (
	"ssmis/internal/bitset"
	"ssmis/internal/engine/kernel"
	"ssmis/internal/graph"
	"ssmis/internal/xrand"
)

// RunContext is reusable per-worker scratch for engine (and process)
// construction. It is not safe for concurrent use: one context belongs to
// one worker. The zero value is not usable; call NewRunContext.
//
// Lease discipline: every buffer handed out remains owned by the context.
// The next New/lease on the same context recycles the same memory, so a
// Core (or a process wrapping one) built on a context must not be used
// after the context's next lease. Checkpoints taken from context-backed
// processes copy what they need and stay valid.
type RunContext struct {
	work, active, inI, dirty bitset.Set
	coveredAt                []int32
	plane                    counterPlane
	stateCnt                 []int
	classTab                 []uint8
	changes                  []change
	priv                     []int
	refreshScr               []refreshScratch
	hubDeltas                []hubDelta
	lanes                    kernel.Lanes
	dirtyW                   bitset.Set

	state []uint8
	mask  []bool
	rands []xrand.Rand
	rngs  []*xrand.Rand

	// clockA/clockB back a rule's phase-clock level arrays (the 3-color
	// switch), leased through ClockBufs.
	clockA, clockB []uint8

	// Locality-ordering memo: batch shards run thousands of seeds over one
	// shared graph, and the degree-bucketed ordering is a pure function of
	// the graph, so it is computed once per (context, graph) pair. ordG is
	// the key; ord may be nil (the computed order was the identity).
	ordG *graph.Graph
	ord  *graph.Ordering
}

// CachedOrdering returns the memoized locality ordering for g and whether
// one has been stored (the stored ordering itself may be nil: identity).
func (c *RunContext) CachedOrdering(g *graph.Graph) (*graph.Ordering, bool) {
	if c.ordG == g {
		return c.ord, true
	}
	return nil, false
}

// StoreOrdering memoizes the locality ordering computed for g.
func (c *RunContext) StoreOrdering(g *graph.Graph, ord *graph.Ordering) {
	c.ordG = g
	c.ord = ord
}

// NewRunContext returns an empty context; buffers grow on first lease and
// are reused afterwards.
func NewRunContext() *RunContext { return &RunContext{} }

// growI32 reshapes buf to length n, zeroed, reusing capacity when possible.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// growU64 mirrors growI32 for uint64 slices (the counter plane's tail
// backing).
func growU64(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// growInts mirrors growI32 for int slices.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Uint8Buf leases the context's per-vertex state buffer, zeroed, length n.
// Process constructors use it for the initial state vector they hand to New.
func (c *RunContext) Uint8Buf(n int) []uint8 {
	c.state = growU8(c.state, n)
	return c.state
}

// growU8 reshapes buf to length n, zeroed, reusing capacity when possible.
func growU8(buf []uint8, n int) []uint8 {
	if cap(buf) < n {
		return make([]uint8, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// ClockBufs leases the context's phase-clock level arrays (current and
// next), zeroed, length n — the 3-color process hands them to its switch
// via phaseclock.WithBuffers, closing that rule's last per-run O(n)
// allocation.
func (c *RunContext) ClockBufs(n int) (levels, next []uint8) {
	c.clockA = growU8(c.clockA, n)
	c.clockB = growU8(c.clockB, n)
	return c.clockA, c.clockB
}

// BoolBuf leases the context's per-vertex mask buffer, zeroed, length n
// (initialization adversaries materialize their black mask here).
func (c *RunContext) BoolBuf(n int) []bool {
	if cap(c.mask) < n {
		c.mask = make([]bool, n)
	} else {
		c.mask = c.mask[:n]
		for i := range c.mask {
			c.mask[i] = false
		}
	}
	return c.mask
}

// VertexStreams leases the context's per-vertex generator array, reseeded to
// master.Split(u) for each vertex u — the allocation-free counterpart of
// splitting n fresh streams per run.
func (c *RunContext) VertexStreams(n int, master *xrand.Rand) []*xrand.Rand {
	return c.VertexStreamsPerm(n, master, nil)
}

// VertexStreamsPerm is VertexStreams under a locality relabeling: the stream
// of original vertex u (always master.Split(u) — stream identity is keyed by
// original ids) lands at slot ord.NewID(u), where the relabeled engine looks
// it up. A nil ordering is the identity.
func (c *RunContext) VertexStreamsPerm(n int, master *xrand.Rand, ord *graph.Ordering) []*xrand.Rand {
	if cap(c.rands) < n {
		c.rands = make([]xrand.Rand, n)
		c.rngs = make([]*xrand.Rand, n)
	}
	c.rands = c.rands[:n]
	c.rngs = c.rngs[:n]
	for u := 0; u < n; u++ {
		i := ord.NewID(u)
		master.SplitInto(&c.rands[i], uint64(u))
		c.rngs[i] = &c.rands[i]
	}
	return c.rngs
}

// lease wires the context's scratch into e in place of fresh allocations.
// Called from New before Rebuild derives every structure. The context holds
// no reference back to e (that would pin the previous run's graph for the
// worker's whole lifetime); instead the engine returns append-grown scratch
// through syncScratch after every round.
func (c *RunContext) lease(e *Core, n, numStates int) {
	c.work.Reset(n)
	c.active.Reset(n)
	c.inI.Reset(n)
	c.dirty.Reset(n)
	e.work = &c.work
	e.active = &c.active
	e.inI = &c.inI
	e.dirty = &c.dirty
	c.coveredAt = growI32(c.coveredAt, n)
	e.coveredAt = c.coveredAt
	c.stateCnt = growInts(c.stateCnt, numStates+1)
	e.stateCnt = c.stateCnt
	c.classTab = growU8(c.classTab, numStates+1)
	e.classTab = c.classTab
	e.changes = c.changes[:0]
	e.priv = c.priv[:0]
	e.refreshScr = c.refreshScr[:0]
	e.hubDeltas = c.hubDeltas[:0]
	// The counter plane (Rebuild configures it per graph) and the parallel
	// commit's hub delta buffers reuse the context's backing across runs.
	e.plane = &c.plane
}

// syncScratch hands the engine's append-grown per-round scratch back to the
// owning context so the next lease reuses its capacity. Called at the end
// of every round; a no-op without a context.
func (e *Core) syncScratch() {
	if e.ctx != nil {
		e.ctx.changes = e.changes
		e.ctx.priv = e.priv
		e.ctx.refreshScr = e.refreshScr
		e.ctx.hubDeltas = e.hubDeltas
	}
}

// leaseLanes leases the context's bit-sliced kernel lanes, configured to
// run the given compiled lane program over [0, n), together with the
// word-granular dirty set the kernel commit marks — the engine requests
// them only when the rule qualifies for the kernel path. Configure fully
// zeroes every lane the program engages, so a context switching between
// rules (2-state → 3-state → back) never leaks stale lane words.
func (c *RunContext) leaseLanes(prog *kernel.Program, n int) (*kernel.Lanes, *bitset.Set) {
	c.lanes.Configure(prog, n)
	c.dirtyW.Reset(c.lanes.Words())
	return &c.lanes, &c.dirtyW
}

package kernel

import (
	"math/bits"
	"testing"

	"ssmis/internal/xrand"
)

const (
	white uint8 = 1
	black uint8 = 2
)

// randomLanes builds lanes plus the per-vertex state/counter vectors they
// were packed from.
func randomLanes(n int, rng *xrand.Rand) (*Lanes, []uint8, []int32) {
	state := make([]uint8, n)
	nbrA := make([]int32, n)
	for u := range state {
		state[u] = white
		if rng.Bit() {
			state[u] = black
		}
		if rng.Bit() {
			nbrA[u] = int32(1 + rng.Intn(5))
		}
	}
	l := New(white, black, n)
	l.LoadState(state)
	l.LoadCounters(nbrA)
	return l, state, nbrA
}

// Lane packing must round-trip bit-for-bit, and the tail word must never
// carry phantom vertices.
func TestLoadRoundTripAndTail(t *testing.T) {
	rng := xrand.New(1)
	for _, n := range []int{1, 63, 64, 65, 130, 512} {
		l, state, nbrA := randomLanes(n, rng)
		for u := 0; u < n; u++ {
			if l.Black(u) != (state[u] == black) {
				t.Fatalf("n=%d: black bit of %d wrong", n, u)
			}
			if l.HasBlackNbr(u) != (nbrA[u] > 0) {
				t.Fatalf("n=%d: hbn bit of %d wrong", n, u)
			}
		}
		last := l.Words() - 1
		if l.BlackWord(last)&^l.mask(last) != 0 || l.ActiveWord(last)&^l.mask(last) != 0 {
			t.Fatalf("n=%d: phantom bits above the universe", n)
		}
	}
}

// The XNOR activity identity must agree with the rule's per-vertex
// definition: black with a black neighbor, or white without one.
func TestActiveWordIdentity(t *testing.T) {
	rng := xrand.New(2)
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(300)
		l, state, nbrA := randomLanes(n, rng)
		for u := 0; u < n; u++ {
			isBlack := state[u] == black
			want := (isBlack && nbrA[u] > 0) || (!isBlack && nbrA[u] == 0)
			got := l.ActiveWord(u/64)>>(uint(u)%64)&1 == 1
			if got != want {
				t.Fatalf("n=%d vertex %d: active=%v, rule says %v", n, u, got, want)
			}
			wantCore := isBlack && nbrA[u] == 0
			if got := l.CoreWord(u/64)>>(uint(u)%64)&1 == 1; got != wantCore {
				t.Fatalf("n=%d vertex %d: core=%v, rule says %v", n, u, got, wantCore)
			}
		}
	}
}

// FillHBNComplete must agree with the per-vertex counter semantics of a
// complete graph at every black total, including the totalA=1 asymmetry
// (the lone black vertex has no black neighbor, everyone else has it).
func TestFillHBNComplete(t *testing.T) {
	rng := xrand.New(3)
	for _, n := range []int{1, 2, 65, 200} {
		for _, totalA := range []int{0, 1, 2, 5} {
			if totalA > n {
				continue
			}
			state := make([]uint8, n)
			for u := range state {
				state[u] = white
			}
			// place totalA blacks at random positions
			perm := rng.Perm(n)
			for i := 0; i < totalA; i++ {
				state[perm[i]] = black
			}
			l := New(white, black, n)
			l.LoadState(state)
			l.FillHBNComplete(totalA)
			for u := 0; u < n; u++ {
				others := totalA
				if state[u] == black {
					others--
				}
				if l.HasBlackNbr(u) != (others > 0) {
					t.Fatalf("n=%d totalA=%d vertex %d: hbn=%v, want %v",
						n, totalA, u, l.HasBlackNbr(u), others > 0)
				}
			}
		}
	}
}

// Incremental maintenance (SetHasBlackNbr on zero crossings) must reach the
// same lane as a bulk re-pack of the final counters.
func TestIncrementalHBNMatchesBulk(t *testing.T) {
	rng := xrand.New(4)
	n := 200
	l, _, nbrA := randomLanes(n, rng)
	for step := 0; step < 2000; step++ {
		u := rng.Intn(n)
		da := int32(1)
		if nbrA[u] > 0 && rng.Bit() {
			da = -1
		}
		nv := nbrA[u] + da
		nbrA[u] = nv
		if da > 0 {
			if nv == 1 {
				l.SetHasBlackNbr(u, true)
			}
		} else if nv == 0 {
			l.SetHasBlackNbr(u, false)
		}
	}
	ref := New(white, black, n)
	ref.LoadCounters(nbrA)
	for wi := 0; wi < l.Words(); wi++ {
		if l.hbn[wi] != ref.hbn[wi] {
			t.Fatalf("word %d: incremental %#x vs bulk %#x", wi, l.hbn[wi], ref.hbn[wi])
		}
	}
}

// scalarEval replays the scalar engine's evaluation loop: every active
// vertex, ascending, draws Coin(u) and flips when the coin disagrees with
// its color. EvalWords must produce the same changes from the same streams
// with the same bit accounting.
func scalarEval(l *Lanes, state []uint8, rngs []*xrand.Rand, bias float64) ([]Change, int64) {
	var changes []Change
	var drawn int64
	for u := 0; u < l.n; u++ {
		if l.ActiveWord(u/64)>>(uint(u)%64)&1 == 0 {
			continue
		}
		var coin bool
		if bias == 0.5 {
			drawn++
			coin = rngs[u].Bit()
		} else {
			drawn += 64
			coin = rngs[u].Bernoulli(bias)
		}
		ns := white
		if coin {
			ns = black
		}
		if ns != state[u] {
			changes = append(changes, Change{U: int32(u), S: ns})
		}
	}
	return changes, drawn
}

func TestEvalWordsMatchesScalar(t *testing.T) {
	master := xrand.New(5)
	for trial := 0; trial < 30; trial++ {
		r := master.Split(uint64(trial))
		n := 1 + r.Intn(400)
		bias := 0.5
		if trial%3 == 1 {
			bias = 0.2 + r.Float64()*0.6
		}
		l, state, _ := randomLanes(n, r)
		mkStreams := func() []*xrand.Rand {
			rngs := make([]*xrand.Rand, n)
			for u := range rngs {
				rngs[u] = master.Split(uint64(1000*trial + u))
			}
			return rngs
		}
		kChanges, kBits := l.EvalWords(0, l.Words(), mkStreams(), bias, nil)
		sChanges, sBits := scalarEval(l, state, mkStreams(), bias)
		if kBits != sBits {
			t.Fatalf("trial %d: bits %d vs %d", trial, kBits, sBits)
		}
		if len(kChanges) != len(sChanges) {
			t.Fatalf("trial %d: %d changes vs %d", trial, len(kChanges), len(sChanges))
		}
		for i := range kChanges {
			if kChanges[i] != sChanges[i] {
				t.Fatalf("trial %d change %d: %+v vs %+v", trial, i, kChanges[i], sChanges[i])
			}
		}
		// Split ranges must concatenate to the full evaluation.
		if l.Words() > 1 {
			cut := 1 + int(master.Split(uint64(trial)).Uint64()%uint64(l.Words()-1))
			rngs := mkStreams()
			part1, b1 := l.EvalWords(0, cut, rngs, bias, nil)
			part2, b2 := l.EvalWords(cut, l.Words(), rngs, bias, part1)
			if b1+b2 != sBits || len(part2) != len(sChanges) {
				t.Fatalf("trial %d: split eval accounting diverged", trial)
			}
			for i := range part2 {
				if part2[i] != sChanges[i] {
					t.Fatalf("trial %d: split eval change %d diverged", trial, i)
				}
			}
		}
	}
}

// Configure must recycle capacity without leaking bits from a previous,
// larger execution.
func TestConfigureRecycles(t *testing.T) {
	l := New(white, black, 300)
	for wi := range l.black {
		l.black[wi] = ^uint64(0)
		l.hbn[wi] = ^uint64(0)
	}
	l.Configure(white, black, 100)
	if l.Words() != 2 || l.N() != 100 {
		t.Fatalf("reshaped to %d words / n=%d", l.Words(), l.N())
	}
	for wi := 0; wi < l.Words(); wi++ {
		if l.black[wi] != 0 || l.hbn[wi] != 0 {
			t.Fatalf("stale bits survived Configure in word %d", wi)
		}
	}
	if popTotal(l) != 0 {
		t.Fatal("stale population")
	}
}

func popTotal(l *Lanes) int {
	c := 0
	for _, w := range l.black {
		c += bits.OnesCount64(w)
	}
	for _, w := range l.hbn {
		c += bits.OnesCount64(w)
	}
	return c
}

package kernel

import (
	"math/bits"
	"testing"

	"ssmis/internal/xrand"
)

// Local mirrors of the three paper rules' lane programs, restated here so
// the kernel package tests do not depend on internal/mis.
var (
	// 2-state: white=1, black=2, the canonical XOR-flip shape.
	twoProg = MustCompile(Spec{
		StateOf: [4]uint8{1, 2, 0, 0},
		Active:  TruthTable(func(code int, a, _ bool) bool { return (code&1 == 1) == a }),
		Touched: TruthTable(func(code int, a, _ bool) bool { return (code&1 == 1) == a }),
		CoinHi:  [4]uint8{1, 1, 0, 0},
		CoinLo:  [4]uint8{0, 0, 0, 0},
	})
	// 3-state: white=1, black0=2 (code 1), black1=3 (code 3), counter-B lane.
	triProg = MustCompile(Spec{
		StateOf: [4]uint8{1, 2, 0, 3},
		UseB:    true,
		Active: TruthTable(func(code int, a, b bool) bool {
			switch code {
			case 3:
				return true
			case 1:
				return !b
			default:
				return !a
			}
		}),
		Touched:   TruthTable(func(code int, a, _ bool) bool { return code&1 == 1 || !a }),
		CoinHi:    [4]uint8{3, 3, 3, 3},
		CoinLo:    [4]uint8{1, 1, 1, 1},
		ForcedOn:  [4]uint8{0, 0, 0, 0},
		ForcedOff: [4]uint8{0, 0, 0, 0},
	})
	// 3-color: white=1, black=2, gray=3 (code 2), gate-driven gray→white.
	colProg = MustCompile(Spec{
		StateOf: [4]uint8{1, 2, 3, 0},
		UseGate: true,
		Active: TruthTable(func(code int, a, _ bool) bool {
			switch code {
			case 1:
				return a
			case 0:
				return !a
			default:
				return false
			}
		}),
		Touched: TruthTable(func(code int, a, _ bool) bool {
			switch code {
			case 1:
				return a
			case 0:
				return !a
			case 2:
				return true
			default:
				return false
			}
		}),
		CoinHi:    [4]uint8{1, 1, 0, 0},
		CoinLo:    [4]uint8{0, 2, 0, 0},
		ForcedOn:  [4]uint8{0, 0, 0, 0},
		ForcedOff: [4]uint8{0, 0, 2, 0},
	})
	allProgs = []struct {
		name string
		prog *Program
	}{{"2-state", twoProg}, {"3-state", triProg}, {"3-color", colProg}}
)

// usedStates returns the program's rule state values.
func usedStates(p *Program) []uint8 {
	var out []uint8
	for _, s := range p.spec.StateOf {
		if s != 0 {
			out = append(out, s)
		}
	}
	return out
}

// randomLanes builds lanes for prog plus the per-vertex state/counter/gate
// vectors they were packed from.
func randomLanes(prog *Program, n int, rng *xrand.Rand) (*Lanes, []uint8, []int32, []int32) {
	states := usedStates(prog)
	state := make([]uint8, n)
	nbrA := make([]int32, n)
	nbrB := make([]int32, n)
	for u := range state {
		state[u] = states[rng.Intn(len(states))]
		if rng.Bit() {
			nbrA[u] = int32(1 + rng.Intn(5))
		}
		if prog.UseB() && rng.Bit() {
			nbrB[u] = int32(1 + rng.Intn(3))
		}
	}
	l := New(prog, n)
	l.LoadState(state)
	l.LoadCounters(nbrA, nbrB)
	if prog.UseGate() {
		gw := l.GateWords()
		for u := 0; u < n; u++ {
			if rng.Bit() {
				gw[u/64] |= 1 << (uint(u) % 64)
			}
		}
	}
	return l, state, nbrA, nbrB
}

// The Shannon-compiled word expressions must agree with their truth tables
// bit-for-bit on arbitrary inputs — every fold shape gets hit across 400
// random tables.
func TestCompileTableMatchesTable(t *testing.T) {
	rng := xrand.New(11)
	for trial := 0; trial < 400; trial++ {
		table := uint16(rng.Uint64())
		f := compileTable(uint32(table), 3)
		lo, hi, a, b := rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()
		got := f(lo, hi, a, b)
		for bit := uint(0); bit < 64; bit++ {
			idx := lo>>bit&1 | hi>>bit&1<<1 | a>>bit&1<<2 | b>>bit&1<<3
			if got>>bit&1 != uint64(table>>idx&1) {
				t.Fatalf("table %#04x bit %d (idx %d): compiled %d, table %d",
					table, bit, idx, got>>bit&1, table>>idx&1)
			}
		}
	}
}

// Lane packing must round-trip bit-for-bit through all engaged lanes, and
// the tail word must never carry phantom vertices.
func TestLoadRoundTripAndTail(t *testing.T) {
	rng := xrand.New(1)
	for _, tc := range allProgs {
		for _, n := range []int{1, 63, 64, 65, 130, 512} {
			l, state, nbrA, nbrB := randomLanes(tc.prog, n, rng)
			for u := 0; u < n; u++ {
				if l.StateAt(u) != state[u] {
					t.Fatalf("%s n=%d: state of %d decodes to %d, want %d", tc.name, n, u, l.StateAt(u), state[u])
				}
				if l.HasANbr(u) != (nbrA[u] > 0) {
					t.Fatalf("%s n=%d: hasANbr bit of %d wrong", tc.name, n, u)
				}
				if tc.prog.UseB() && l.HasBNbr(u) != (nbrB[u] > 0) {
					t.Fatalf("%s n=%d: hasBNbr bit of %d wrong", tc.name, n, u)
				}
			}
			last := l.Words() - 1
			if l.BlackWord(last)&^l.mask(last) != 0 ||
				l.ActiveWord(last)&^l.mask(last) != 0 ||
				l.TouchedWord(last)&^l.mask(last) != 0 {
				t.Fatalf("%s n=%d: phantom bits above the universe", tc.name, n)
			}
		}
	}
}

// The compiled activity/worklist/core words must agree with the per-vertex
// truth tables for every rule shape.
func TestPredicateWordIdentities(t *testing.T) {
	rng := xrand.New(2)
	for _, tc := range allProgs {
		for trial := 0; trial < 10; trial++ {
			n := 1 + rng.Intn(300)
			l, state, nbrA, nbrB := randomLanes(tc.prog, n, rng)
			for u := 0; u < n; u++ {
				code := int(l.Code(u))
				a, b := nbrA[u] > 0, nbrB[u] > 0
				if got := l.ActiveWord(u/64)>>(uint(u)%64)&1 == 1; got != tc.prog.ActiveBit(code, a, b) {
					t.Fatalf("%s n=%d vertex %d: active=%v, table says %v", tc.name, n, u, got, !got)
				}
				if got := l.TouchedWord(u/64)>>(uint(u)%64)&1 == 1; got != tc.prog.TouchedBit(code, a, b) {
					t.Fatalf("%s n=%d vertex %d: touched=%v, table says %v", tc.name, n, u, got, !got)
				}
				wantCore := l.Black(u) && nbrA[u] == 0
				if got := l.CoreWord(u/64)>>(uint(u)%64)&1 == 1; got != wantCore {
					t.Fatalf("%s n=%d vertex %d: core=%v, rule says %v", tc.name, n, u, got, wantCore)
				}
				_ = state
			}
		}
	}
}

// FillHBNComplete must agree with the per-vertex counter semantics of a
// complete graph at every class total, including the total=1 asymmetry (the
// lone member has no same-class neighbor, everyone else has one) — for both
// the ClassA (black) and ClassB (black1) lanes.
func TestFillHBNComplete(t *testing.T) {
	rng := xrand.New(3)
	for _, n := range []int{1, 2, 65, 200} {
		for _, totalB := range []int{0, 1, 2, 5} {
			if totalB > n {
				continue
			}
			for extraA := 0; extraA < 3; extraA++ {
				totalA := totalB + extraA
				if totalA > n {
					continue
				}
				state := make([]uint8, n)
				for u := range state {
					state[u] = 1
				}
				perm := rng.Perm(n)
				for i := 0; i < totalA; i++ {
					state[perm[i]] = 2 // black0
					if i < totalB {
						state[perm[i]] = 3 // black1
					}
				}
				l := New(triProg, n)
				l.LoadState(state)
				l.FillHBNComplete(totalA, totalB)
				for u := 0; u < n; u++ {
					othersA, othersB := totalA, totalB
					if state[u] != 1 {
						othersA--
					}
					if state[u] == 3 {
						othersB--
					}
					if l.HasANbr(u) != (othersA > 0) {
						t.Fatalf("n=%d totalA=%d vertex %d: hasANbr=%v, want %v",
							n, totalA, u, l.HasANbr(u), othersA > 0)
					}
					if l.HasBNbr(u) != (othersB > 0) {
						t.Fatalf("n=%d totalB=%d vertex %d: hasBNbr=%v, want %v",
							n, totalB, u, l.HasBNbr(u), othersB > 0)
					}
				}
			}
		}
	}
}

// Incremental maintenance (SetHasANbr/SetHasBNbr on zero crossings) must
// reach the same lanes as a bulk re-pack of the final counters.
func TestIncrementalHBNMatchesBulk(t *testing.T) {
	rng := xrand.New(4)
	n := 200
	l, _, nbrA, nbrB := randomLanes(triProg, n, rng)
	bump := func(cnt []int32, u int, set func(int, bool)) {
		da := int32(1)
		if cnt[u] > 0 && rng.Bit() {
			da = -1
		}
		nv := cnt[u] + da
		cnt[u] = nv
		if nv == da {
			set(u, true)
		} else if nv == 0 {
			set(u, false)
		}
	}
	for step := 0; step < 4000; step++ {
		u := rng.Intn(n)
		if rng.Bit() {
			bump(nbrA, u, l.SetHasANbr)
		} else {
			bump(nbrB, u, l.SetHasBNbr)
		}
	}
	ref := New(triProg, n)
	ref.LoadCounters(nbrA, nbrB)
	for wi := 0; wi < l.Words(); wi++ {
		if l.hbnA[wi] != ref.hbnA[wi] {
			t.Fatalf("word %d: incremental A %#x vs bulk %#x", wi, l.hbnA[wi], ref.hbnA[wi])
		}
		if l.hbnB[wi] != ref.hbnB[wi] {
			t.Fatalf("word %d: incremental B %#x vs bulk %#x", wi, l.hbnB[wi], ref.hbnB[wi])
		}
	}
}

// scalarEval replays the scalar engine's evaluation loop straight off the
// spec: every touched vertex, ascending, draws a coin if active (next code
// from the coin maps) or takes its gate-selected forced transition.
// EvalWords must produce the same changes from the same streams with the
// same bit accounting — for every rule shape, fast path and generic alike.
func scalarEval(l *Lanes, rngs []*xrand.Rand, bias float64) ([]Change, int64) {
	p := l.prog
	var changes []Change
	var drawn int64
	for u := 0; u < l.n; u++ {
		code := l.Code(u)
		a, b := l.HasANbr(u), l.HasBNbr(u)
		if !p.TouchedBit(int(code), a, b) {
			continue
		}
		var nc uint8
		if p.ActiveBit(int(code), a, b) {
			var coin bool
			if bias == 0.5 {
				drawn++
				coin = rngs[u].Bit()
			} else {
				drawn += 64
				coin = rngs[u].Bernoulli(bias)
			}
			if coin {
				nc = p.spec.CoinHi[code]
			} else {
				nc = p.spec.CoinLo[code]
			}
		} else if l.GateBit(u) {
			nc = p.spec.ForcedOn[code]
		} else {
			nc = p.spec.ForcedOff[code]
		}
		if nc != code {
			changes = append(changes, Change{U: int32(u), S: p.spec.StateOf[nc]})
		}
	}
	return changes, drawn
}

func TestEvalWordsMatchesScalar(t *testing.T) {
	master := xrand.New(5)
	for _, tc := range allProgs {
		for trial := 0; trial < 20; trial++ {
			r := master.Split(uint64(trial))
			n := 1 + r.Intn(400)
			bias := 0.5
			if trial%3 == 1 {
				bias = 0.2 + r.Float64()*0.6
			}
			l, _, _, _ := randomLanes(tc.prog, n, r)
			mkStreams := func() []*xrand.Rand {
				rngs := make([]*xrand.Rand, n)
				for u := range rngs {
					rngs[u] = master.Split(uint64(1000*trial + u))
				}
				return rngs
			}
			kChanges, kBits := l.EvalWords(0, l.Words(), mkStreams(), bias, nil)
			sChanges, sBits := scalarEval(l, mkStreams(), bias)
			if kBits != sBits {
				t.Fatalf("%s trial %d: bits %d vs %d", tc.name, trial, kBits, sBits)
			}
			if len(kChanges) != len(sChanges) {
				t.Fatalf("%s trial %d: %d changes vs %d", tc.name, trial, len(kChanges), len(sChanges))
			}
			for i := range kChanges {
				if kChanges[i] != sChanges[i] {
					t.Fatalf("%s trial %d change %d: %+v vs %+v", tc.name, trial, i, kChanges[i], sChanges[i])
				}
			}
			// Split ranges must concatenate to the full evaluation.
			if l.Words() > 1 {
				cut := 1 + int(master.Split(uint64(trial)).Uint64()%uint64(l.Words()-1))
				rngs := mkStreams()
				part1, b1 := l.EvalWords(0, cut, rngs, bias, nil)
				part2, b2 := l.EvalWords(cut, l.Words(), rngs, bias, part1)
				if b1+b2 != sBits || len(part2) != len(sChanges) {
					t.Fatalf("%s trial %d: split eval accounting diverged", tc.name, trial)
				}
				for i := range part2 {
					if part2[i] != sChanges[i] {
						t.Fatalf("%s trial %d: split eval change %d diverged", tc.name, trial, i)
					}
				}
			}
		}
	}
}

// Only the canonical 2-state shape may take the XOR-flip fast path.
func TestFastPathDetection(t *testing.T) {
	if !twoProg.fast2 {
		t.Fatal("2-state program did not detect the flip fast path")
	}
	if triProg.fast2 || colProg.fast2 {
		t.Fatal("multi-lane program claimed the flip fast path")
	}
}

// Configure must recycle capacity without leaking bits from a previous,
// larger execution — including across rule switches (2-state → 3-state →
// back), where lanes the previous program engaged but the next one also
// uses must come back fully zeroed, not just masked (the reuse-path
// regression: stale words beyond the new tail).
func TestConfigureRuleSwitchClearsLanes(t *testing.T) {
	l := New(triProg, 300)
	dirtyAll := func() {
		for wi := range l.lo {
			l.lo[wi] = ^uint64(0)
			l.hbnA[wi] = ^uint64(0)
		}
		for wi := range l.hi {
			l.hi[wi] = ^uint64(0)
		}
		for wi := range l.hbnB {
			l.hbnB[wi] = ^uint64(0)
		}
		for wi := range l.gate {
			l.gate[wi] = ^uint64(0)
		}
	}
	checkZero := func(step string) {
		t.Helper()
		for _, lane := range [][]uint64{l.lo, l.hi, l.hbnA, l.hbnB, l.gate} {
			for wi, w := range lane {
				if w != 0 {
					t.Fatalf("%s: stale lane word %d = %#x survived Configure", step, wi, w)
				}
			}
		}
	}
	dirtyAll()
	l.Configure(twoProg, 100)
	if l.Words() != 2 || l.N() != 100 {
		t.Fatalf("reshaped to %d words / n=%d", l.Words(), l.N())
	}
	if len(l.hi) != 0 || len(l.hbnB) != 0 || len(l.gate) != 0 {
		t.Fatal("2-state program left multi-lane state engaged")
	}
	checkZero("tri→two")

	// Back to 3-state, larger than the 2-state run but smaller than the
	// original: the hi/hbnB lanes come back from retained capacity and must
	// not resurrect the 300-vertex run's set bits.
	dirtyAll()
	l.Configure(triProg, 130)
	if len(l.hi) != l.Words() || len(l.hbnB) != l.Words() {
		t.Fatal("3-state program did not re-engage the hi/hbnB lanes")
	}
	checkZero("two→tri")

	dirtyAll()
	l.Configure(colProg, 90)
	if len(l.gate) != l.Words() || len(l.hi) != l.Words() || len(l.hbnB) != 0 {
		t.Fatal("3-color program lane engagement wrong")
	}
	checkZero("tri→col")

	if popTotal(l) != 0 {
		t.Fatal("stale population")
	}
}

func popTotal(l *Lanes) int {
	c := 0
	for _, lane := range [][]uint64{l.lo, l.hi, l.hbnA, l.hbnB, l.gate} {
		for _, w := range lane {
			c += bits.OnesCount64(w)
		}
	}
	return c
}

// Compile must reject structurally inconsistent specs.
func TestCompileRejectsBadSpecs(t *testing.T) {
	base := twoProg.spec
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"duplicate state", func(s *Spec) { s.StateOf[2] = s.StateOf[0] }},
		{"no black code", func(s *Spec) { s.StateOf[1] = 0 }},
		{"UseB without code 3", func(s *Spec) { s.UseB = true }},
		{"active outside touched", func(s *Spec) { s.Touched = 0 }},
		{"b-dependent without UseB", func(s *Spec) {
			s.Active = TruthTable(func(code int, a, b bool) bool { return b })
			s.Touched = s.Active
		}},
		{"coin target unused", func(s *Spec) { s.CoinHi = [4]uint8{2, 2, 0, 0} }},
		{"gated forced without UseGate", func(s *Spec) {
			// Make code 0 forced-reachable (touched ⊃ active) with
			// disagreeing gate outcomes.
			s.Touched = TruthTable(func(int, bool, bool) bool { return true })
			s.ForcedOn = [4]uint8{1, 1, 0, 0}
			s.ForcedOff = [4]uint8{0, 0, 0, 0}
		}},
	}
	for _, tc := range cases {
		spec := base
		tc.mut(&spec)
		if _, err := Compile(spec); err == nil {
			t.Fatalf("%s: Compile accepted a bad spec", tc.name)
		}
	}
}

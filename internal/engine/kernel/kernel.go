// Package kernel is the bit-sliced execution path for the canonical 2-state
// MIS rule (Definition 4 of the paper). The rule's entire per-vertex truth is
// two bits — "am I black" and "do I have a black neighbor" — and its activity
// predicate is a pure boolean function of them:
//
//	active(u) ⟺ (black ∧ hasBlackNbr) ∨ (white ∧ ¬hasBlackNbr)
//	          ⟺ ¬(black ⊕ hasBlackNbr)
//
// so instead of asking an interface per vertex, the kernel packs both bits
// into []uint64 lanes and evaluates 64 vertices per machine word:
//
//   - activity, quiescence checks, and membership refresh are branch-free
//     word operations (XNOR of the two lanes, masked by the live-vertex tail
//     word), with population counts replacing per-vertex counter bumps;
//   - the stable core I_t is the word black &^ hasBlackNbr, so new entrants
//     (the vertices that stamp coverage) fall out of one AND-NOT per word;
//   - evaluation iterates only the set bits of each active word via
//     trailing-zero counts, drawing each coin from that vertex's own stream.
//
// Determinism contract: coins are drawn in ascending vertex order, one per
// active vertex, from exactly the per-vertex stream the scalar engine would
// use, consuming exactly the same number of bits (one per coin at bias 1/2,
// one 64-bit Bernoulli sample otherwise). Because every vertex owns its
// stream, the execution is coin-for-coin bit-identical to the scalar
// engine's — summaries, colors, coverage stamps, and RNG bit counts all
// agree, which is what the determinism-matrix and misfuzz differential
// harnesses pin with the scalar engine as the golden reference.
//
// The hasBlackNbr lane is not recomputed from scratch each round: the engine
// maintains it incrementally from its neighbor counters at commit time — the
// bit only flips when a counter crosses zero — or re-derives just the dirty
// words during a parallel refresh (see engine/kernelpath.go for why the
// parallel commit cannot flip bits race-free).
package kernel

import (
	"math/bits"
	"sync/atomic"

	"ssmis/internal/xrand"
)

const wordBits = 64

// Change is one pending transition: vertex U moves to state S. The engine's
// commit consumes these; the layout matches the scalar engine's change
// record so both paths share one commit pipeline.
type Change struct {
	U int32
	S uint8
}

// Lanes is the bit-sliced state of one 2-state execution: one bit per vertex
// per lane, 64 vertices per word. The zero value is not usable; call New
// (or Configure on reused memory).
type Lanes struct {
	black []uint64 // bit u ⟺ vertex u is black
	hbn   []uint64 // bit u ⟺ vertex u has ≥ 1 black neighbor
	n     int
	tail  uint64 // mask of live bits in the final word
	white uint8  // state value encoding white
	blk   uint8  // state value encoding black
}

// New returns zeroed lanes over the universe [0, n) for a rule encoding
// white and black with the given state values.
func New(white, black uint8, n int) *Lanes {
	l := &Lanes{}
	l.Configure(white, black, n)
	return l
}

// Configure reshapes l to the universe [0, n) with the given state encoding,
// zeroing both lanes and reusing word allocations when capacity suffices —
// the run-context recycling primitive (mirrors bitset.Set.Reset).
func (l *Lanes) Configure(white, black uint8, n int) {
	if n < 0 {
		panic("kernel: negative universe")
	}
	words := (n + wordBits - 1) / wordBits
	if cap(l.black) < words {
		l.black = make([]uint64, words)
		l.hbn = make([]uint64, words)
	} else {
		l.black = l.black[:words]
		l.hbn = l.hbn[:words]
		for i := range l.black {
			l.black[i] = 0
			l.hbn[i] = 0
		}
	}
	l.n = n
	l.tail = ^uint64(0)
	if rem := uint(n) % wordBits; rem != 0 {
		l.tail = (1 << rem) - 1
	}
	l.white, l.blk = white, black
}

// N returns the universe size.
func (l *Lanes) N() int { return l.n }

// Words returns the number of 64-bit words per lane.
func (l *Lanes) Words() int { return len(l.black) }

// States returns the (white, black) state encoding.
func (l *Lanes) States() (white, black uint8) { return l.white, l.blk }

// mask returns the live-bit mask of word wi.
func (l *Lanes) mask(wi int) uint64 {
	if wi == len(l.black)-1 {
		return l.tail
	}
	return ^uint64(0)
}

// Black reports the black bit of vertex u.
func (l *Lanes) Black(u int) bool {
	return l.black[u/wordBits]>>(uint(u)%wordBits)&1 == 1
}

// HasBlackNbr reports the hasBlackNbr bit of vertex u.
func (l *Lanes) HasBlackNbr(u int) bool {
	return l.hbn[u/wordBits]>>(uint(u)%wordBits)&1 == 1
}

// SetBlack sets the black bit of vertex u (sequential commit).
func (l *Lanes) SetBlack(u int, b bool) {
	bit := uint64(1) << (uint(u) % wordBits)
	if b {
		l.black[u/wordBits] |= bit
	} else {
		l.black[u/wordBits] &^= bit
	}
}

// SetBlackAtomic sets the black bit of vertex u with an atomic word
// operation, so a parallel commit's workers can land bits in shared words.
// Mixing with the non-atomic mutators concurrently is not safe.
func (l *Lanes) SetBlackAtomic(u int, b bool) {
	bit := uint64(1) << (uint(u) % wordBits)
	if b {
		atomic.OrUint64(&l.black[u/wordBits], bit)
	} else {
		atomic.AndUint64(&l.black[u/wordBits], ^bit)
	}
}

// SetHasBlackNbr sets the hasBlackNbr bit of vertex u — the incremental
// maintenance hook: the engine's sequential commit calls it exactly when
// vertex u's black-neighbor counter crosses zero.
func (l *Lanes) SetHasBlackNbr(u int, b bool) {
	bit := uint64(1) << (uint(u) % wordBits)
	if b {
		l.hbn[u/wordBits] |= bit
	} else {
		l.hbn[u/wordBits] &^= bit
	}
}

// LoadState packs the black lane from a per-vertex state vector (state[u]
// equal to the black encoding sets bit u). Rebuild-time bulk load.
func (l *Lanes) LoadState(state []uint8) {
	if len(state) != l.n {
		panic("kernel: state length mismatch")
	}
	for wi := range l.black {
		base := wi * wordBits
		hi := base + wordBits
		if hi > l.n {
			hi = l.n
		}
		var w uint64
		for u := base; u < hi; u++ {
			if state[u] == l.blk {
				w |= 1 << uint(u-base)
			}
		}
		l.black[wi] = w
	}
}

// LoadCounters packs the hasBlackNbr lane from the engine's black-neighbor
// counters (bit u set ⟺ nbrA[u] > 0) for every word. Rebuild-time bulk load.
func (l *Lanes) LoadCounters(nbrA []int32) {
	if len(nbrA) != l.n {
		panic("kernel: counter length mismatch")
	}
	l.LoadCountersWords(nbrA, 0, len(l.hbn))
}

// LoadCountersWords re-derives the hasBlackNbr bits of words [loWord,
// hiWord) from the counters. The parallel refresh uses it on the dirty words
// of each worker's partition: counter updates commit with atomic adds whose
// interleaving cannot order bit flips race-free, so the settled counters are
// re-read after the commit barrier instead.
func (l *Lanes) LoadCountersWords(nbrA []int32, loWord, hiWord int) {
	for wi := loWord; wi < hiWord; wi++ {
		base := wi * wordBits
		hi := base + wordBits
		if hi > l.n {
			hi = l.n
		}
		var w uint64
		for u := base; u < hi; u++ {
			if nbrA[u] > 0 {
				w |= 1 << uint(u-base)
			}
		}
		l.hbn[wi] = w
	}
}

// FillHBNComplete derives the whole hasBlackNbr lane on a complete graph,
// where the engine keeps class totals instead of per-vertex counters: with
// totalA black vertices overall, a black vertex sees totalA-1 black
// neighbors and a white one sees totalA, so the lane is all-ones for
// totalA ≥ 2, the complement of the black lane for totalA = 1, and zero
// otherwise — O(n/64) for the complete-graph refresh that used to rescan
// all n vertices through the rule interface.
func (l *Lanes) FillHBNComplete(totalA int) {
	l.FillHBNCompleteWords(totalA, 0, len(l.hbn))
}

// FillHBNCompleteWords is FillHBNComplete restricted to words [loWord,
// hiWord) — one partition of the parallel full-rescan refresh.
func (l *Lanes) FillHBNCompleteWords(totalA, loWord, hiWord int) {
	switch {
	case totalA >= 2:
		for wi := loWord; wi < hiWord; wi++ {
			l.hbn[wi] = l.mask(wi)
		}
	case totalA == 1:
		for wi := loWord; wi < hiWord; wi++ {
			l.hbn[wi] = ^l.black[wi] & l.mask(wi)
		}
	default:
		for wi := loWord; wi < hiWord; wi++ {
			l.hbn[wi] = 0
		}
	}
}

// ActiveWord returns the activity word of word wi: the XNOR identity
// ¬(black ⊕ hasBlackNbr), masked by the live-vertex tail. For the 2-state
// rule Touched ≡ Active, so this single word is the worklist, the active
// set, and the quiescence check for its 64 vertices.
func (l *Lanes) ActiveWord(wi int) uint64 {
	return ^(l.black[wi] ^ l.hbn[wi]) & l.mask(wi)
}

// CoreWord returns the stable-core word of word wi: black vertices with no
// black neighbor, i.e. the members of I_t among these 64 vertices.
func (l *Lanes) CoreWord(wi int) uint64 {
	return l.black[wi] &^ l.hbn[wi]
}

// BlackWord returns the black lane word wi.
func (l *Lanes) BlackWord(wi int) uint64 { return l.black[wi] }

// EvalWords evaluates one synchronous round over the words [loWord, hiWord):
// every active vertex draws a coin from its own stream in ascending vertex
// order and the vertices whose color flips are appended to dst as pending
// changes (for the 2-state rule a transition is always a flip: the new state
// is the coin, and a coin equal to the current color is "no transition").
// Nothing is committed — the lanes stay frozen at the pre-round state, so
// concurrent workers may evaluate disjoint word ranges of the same round.
// It returns the extended change list and the number of random bits drawn,
// matching the scalar engine's accounting exactly: one bit per coin at bias
// 1/2, one 64-bit Bernoulli sample per coin otherwise.
func (l *Lanes) EvalWords(loWord, hiWord int, rngs []*xrand.Rand, bias float64, dst []Change) ([]Change, int64) {
	var drawn int64
	for wi := loWord; wi < hiWord; wi++ {
		aw := l.ActiveWord(wi)
		if aw == 0 {
			continue
		}
		base := wi * wordBits
		bw := l.black[wi]
		var flips uint64
		if bias == 0.5 {
			drawn += int64(bits.OnesCount64(aw))
			for w := aw; w != 0; w &= w - 1 {
				tz := uint(bits.TrailingZeros64(w))
				coin := rngs[base+int(tz)].Uint64() >> 63 // 1 = black, the scalar Bit()
				flips |= (coin ^ (bw >> tz & 1)) << tz
			}
		} else {
			drawn += 64 * int64(bits.OnesCount64(aw))
			for w := aw; w != 0; w &= w - 1 {
				tz := uint(bits.TrailingZeros64(w))
				var coin uint64
				if rngs[base+int(tz)].Bernoulli(bias) {
					coin = 1
				}
				flips |= (coin ^ (bw >> tz & 1)) << tz
			}
		}
		for w := flips; w != 0; w &= w - 1 {
			tz := uint(bits.TrailingZeros64(w))
			ns := l.white
			if bw>>tz&1 == 0 {
				ns = l.blk
			}
			dst = append(dst, Change{U: int32(base + int(tz)), S: ns})
		}
	}
	return dst, drawn
}

// Package kernel is the bit-sliced execution path for the paper's MIS rules.
// A rule's entire per-vertex truth is at most four bits — a 2-bit state code
// (lo/hi lanes), "counter A nonzero" (hasANbr), and "counter B nonzero"
// (hasBNbr) — plus, for switch-gated rules, one externally exported gate bit.
// Instead of asking an interface per vertex, the kernel packs each bit into
// []uint64 lanes and evaluates 64 vertices per machine word:
//
//   - activity, quiescence checks, and membership refresh are branch-free
//     word operations compiled at registration from the rule's truth tables
//     (spec.go), masked by the live-vertex tail word;
//   - the stable core I_t is the word lo &^ hasANbr for every rule, because
//     the lo bit is the black projection by the encoding contract;
//   - evaluation iterates only the set bits of each touched word via
//     trailing-zero counts, drawing coins from the vertices' own streams.
//
// Determinism contract: coins are drawn in ascending vertex order, one per
// active vertex, from exactly the per-vertex stream the scalar engine would
// use, consuming exactly the same number of bits (one per coin at bias 1/2,
// one 64-bit Bernoulli sample otherwise). Forced transitions (3-state
// demotion, switch-gated gray→white) draw nothing, matching the scalar
// rules. Because every vertex owns its stream, the execution is coin-for-
// coin bit-identical to the scalar engine's — summaries, colors, coverage
// stamps, and RNG bit counts all agree, which is what the determinism-matrix
// and misfuzz differential harnesses pin with the scalar engine as golden.
//
// The neighbor lanes are not recomputed from scratch each round: the engine
// maintains them incrementally from its counters at commit time — a bit
// flips only when the counter crosses zero — or re-derives just the dirty
// words during a parallel refresh (see engine/kernelpath.go for why the
// parallel commit cannot flip bits race-free). The gate lane is re-exported
// wholesale after each mid-round sub-process step (engine.KernelGate).
package kernel

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"ssmis/internal/xrand"
)

const wordBits = 64

// Change is one pending transition: vertex U moves to state S. The engine's
// commit consumes these; the layout matches the scalar engine's change
// record so both paths share one commit pipeline.
type Change struct {
	U int32
	S uint8
}

// Lanes is the bit-sliced state of one execution: one bit per vertex per
// lane, 64 vertices per word. Lanes the program does not engage stay empty.
// The zero value is not usable; call New (or Configure on reused memory).
type Lanes struct {
	prog *Program
	lo   []uint64 // state code bit 0 — the black projection
	hi   []uint64 // state code bit 1 (empty unless prog.UseHi)
	hbnA []uint64 // bit u ⟺ counter A of u nonzero (has a black neighbor)
	hbnB []uint64 // bit u ⟺ counter B of u nonzero (empty unless prog.UseB)
	gate []uint64 // mid-round gate bits (empty unless prog.UseGate)
	n    int
	tail uint64 // mask of live bits in the final word
}

// New returns zeroed lanes over the universe [0, n) running prog.
func New(prog *Program, n int) *Lanes {
	l := &Lanes{}
	l.Configure(prog, n)
	return l
}

// growLane reshapes a lane to the given word count, fully zeroed, reusing
// capacity when possible.
func growLane(lane []uint64, words int) []uint64 {
	if cap(lane) < words {
		return make([]uint64, words)
	}
	lane = lane[:words]
	for i := range lane {
		lane[i] = 0
	}
	return lane
}

// Configure reshapes l to the universe [0, n) running prog, reusing word
// allocations when capacity suffices — the run-context recycling primitive
// (mirrors bitset.Set.Reset). Every engaged lane is zeroed over its whole
// new length, and lanes the program does not engage are truncated (capacity
// retained): a leased context switching between rules — 2-state to 3-state
// and back — never sees another rule's stale lane words.
func (l *Lanes) Configure(prog *Program, n int) {
	if prog == nil {
		panic("kernel: nil program")
	}
	if n < 0 {
		panic("kernel: negative universe")
	}
	words := (n + wordBits - 1) / wordBits
	l.lo = growLane(l.lo, words)
	l.hbnA = growLane(l.hbnA, words)
	if prog.useHi {
		l.hi = growLane(l.hi, words)
	} else {
		l.hi = l.hi[:0]
	}
	if prog.spec.UseB {
		l.hbnB = growLane(l.hbnB, words)
	} else {
		l.hbnB = l.hbnB[:0]
	}
	if prog.spec.UseGate {
		l.gate = growLane(l.gate, words)
	} else {
		l.gate = l.gate[:0]
	}
	l.prog = prog
	l.n = n
	l.tail = ^uint64(0)
	if rem := uint(n) % wordBits; rem != 0 {
		l.tail = (1 << rem) - 1
	}
}

// N returns the universe size.
func (l *Lanes) N() int { return l.n }

// Words returns the number of 64-bit words per lane.
func (l *Lanes) Words() int { return len(l.lo) }

// Program returns the compiled rule program the lanes run.
func (l *Lanes) Program() *Program { return l.prog }

// mask returns the live-bit mask of word wi.
func (l *Lanes) mask(wi int) uint64 {
	if wi == len(l.lo)-1 {
		return l.tail
	}
	return ^uint64(0)
}

// laneBit reads bit u of a lane; an unengaged (empty) lane reads zero.
func laneBit(lane []uint64, u int) uint64 {
	if lane == nil || len(lane) == 0 {
		return 0
	}
	return lane[u/wordBits] >> (uint(u) % wordBits) & 1
}

// Code returns the 2-bit lane code of vertex u.
func (l *Lanes) Code(u int) uint8 {
	c := l.lo[u/wordBits] >> (uint(u) % wordBits) & 1
	if l.prog.useHi {
		c |= l.hi[u/wordBits] >> (uint(u) % wordBits) & 1 << 1
	}
	return uint8(c)
}

// StateAt returns the rule state value of vertex u (the code round-trip).
func (l *Lanes) StateAt(u int) uint8 { return l.prog.spec.StateOf[l.Code(u)] }

// Black reports the black projection of vertex u — the lo bit, by the
// encoding contract.
func (l *Lanes) Black(u int) bool {
	return l.lo[u/wordBits]>>(uint(u)%wordBits)&1 == 1
}

// HasANbr reports the hasANbr bit of vertex u (counter A nonzero).
func (l *Lanes) HasANbr(u int) bool { return laneBit(l.hbnA, u) == 1 }

// HasBNbr reports the hasBNbr bit of vertex u (counter B nonzero; false
// when the lane is not engaged).
func (l *Lanes) HasBNbr(u int) bool { return laneBit(l.hbnB, u) == 1 }

// GateBit reports the gate bit of vertex u (false when not engaged).
func (l *Lanes) GateBit(u int) bool { return laneBit(l.gate, u) == 1 }

// setBit writes bit u of a lane.
func setBit(lane []uint64, u int, v bool) {
	bit := uint64(1) << (uint(u) % wordBits)
	if v {
		lane[u/wordBits] |= bit
	} else {
		lane[u/wordBits] &^= bit
	}
}

// SetState writes the lane code of state s at vertex u (sequential commit).
// It panics if s is not part of the encoding.
func (l *Lanes) SetState(u int, s uint8) {
	c := l.prog.codeOf[s]
	if c == invalidCode {
		panic(fmt.Sprintf("kernel: state %d not in the lane encoding", s))
	}
	setBit(l.lo, u, c&1 != 0)
	if l.prog.useHi {
		setBit(l.hi, u, c&2 != 0)
	}
}

// SetStateAtomic writes the lane code of state s at vertex u with atomic
// word operations, so a parallel commit's workers can land codes in shared
// words (each vertex's bits are written by exactly one worker per round).
// Mixing with the non-atomic mutators concurrently is not safe.
func (l *Lanes) SetStateAtomic(u int, s uint8) {
	c := l.prog.codeOf[s]
	if c == invalidCode {
		panic(fmt.Sprintf("kernel: state %d not in the lane encoding", s))
	}
	bit := uint64(1) << (uint(u) % wordBits)
	wi := u / wordBits
	if c&1 != 0 {
		atomic.OrUint64(&l.lo[wi], bit)
	} else {
		atomic.AndUint64(&l.lo[wi], ^bit)
	}
	if l.prog.useHi {
		if c&2 != 0 {
			atomic.OrUint64(&l.hi[wi], bit)
		} else {
			atomic.AndUint64(&l.hi[wi], ^bit)
		}
	}
}

// SetHasANbr sets the hasANbr bit of vertex u — the incremental maintenance
// hook: the engine's sequential commit calls it exactly when vertex u's
// counter A crosses zero.
func (l *Lanes) SetHasANbr(u int, v bool) { setBit(l.hbnA, u, v) }

// SetHasBNbr is SetHasANbr for counter B (the 3-state black1 count; its
// zero crossings include the demotion's db = −1 step).
func (l *Lanes) SetHasBNbr(u int, v bool) { setBit(l.hbnB, u, v) }

// HBNWords exposes the raw hasANbr/hasBNbr lane words for the engine's
// sequential commit, whose per-neighbor zero-crossing flips are the hottest
// writes on the kernel path — flipping bits inline there avoids a call per
// crossing. hbnB is nil for a program without counter B. Writers must
// preserve the lane contract (bit u set iff counter u is nonzero, tail bits
// zero); everyone else goes through SetHasANbr/SetHasBNbr or the bulk
// loaders.
func (l *Lanes) HBNWords() (hbnA, hbnB []uint64) { return l.hbnA, l.hbnB }

// StateWords exposes the raw state-code lane words, for the same commit hot
// loop (one inline flip pair per landed change instead of a SetState call).
// hi is nil when the second state lane is not engaged; the same contract
// caveats as HBNWords apply, plus: only codes the program declares may be
// written (Program.CodeOf is the guard).
func (l *Lanes) StateWords() (lo, hi []uint64) { return l.lo, l.hi }

// GateWords exposes the gate lane for the rule's mid-round export
// (engine.KernelGate.ExportGate fills it wholesale). Bits beyond the
// universe must stay zero; nil when the lane is not engaged.
func (l *Lanes) GateWords() []uint64 {
	if !l.prog.spec.UseGate {
		return nil
	}
	return l.gate
}

// LoadState packs the state-code lanes from a per-vertex state vector.
// Rebuild-time bulk load; panics on a state outside the encoding.
func (l *Lanes) LoadState(state []uint8) {
	if len(state) != l.n {
		panic("kernel: state length mismatch")
	}
	for wi := range l.lo {
		base := wi * wordBits
		hi := base + wordBits
		if hi > l.n {
			hi = l.n
		}
		var wlo, whi uint64
		for u := base; u < hi; u++ {
			c := l.prog.codeOf[state[u]]
			if c == invalidCode {
				panic(fmt.Sprintf("kernel: state %d of vertex %d not in the lane encoding", state[u], u))
			}
			wlo |= uint64(c&1) << uint(u-base)
			whi |= uint64(c>>1) << uint(u-base)
		}
		l.lo[wi] = wlo
		if l.prog.useHi {
			l.hi[wi] = whi
		}
	}
}

// LoadCounters packs the neighbor lanes from the engine's counters (bit u
// set ⟺ counter > 0) for every word. Rebuild-time bulk load; nbrB is
// ignored unless the program engages the B lane.
func (l *Lanes) LoadCounters(nbrA, nbrB []int32) {
	if len(nbrA) != l.n {
		panic("kernel: counter length mismatch")
	}
	if l.prog.spec.UseB && len(nbrB) != l.n {
		panic("kernel: counter B length mismatch")
	}
	l.LoadCountersWords(nbrA, nbrB, 0, len(l.hbnA))
}

// LoadCountersWords re-derives the neighbor-lane bits of words [loWord,
// hiWord) from the counters. The parallel refresh uses it on the dirty
// words of each worker's partition: counter updates commit with atomic adds
// whose interleaving cannot order bit flips race-free, so the settled
// counters are re-read after the commit barrier instead.
func (l *Lanes) LoadCountersWords(nbrA, nbrB []int32, loWord, hiWord int) {
	useB := l.prog.spec.UseB
	for wi := loWord; wi < hiWord; wi++ {
		base := wi * wordBits
		hi := base + wordBits
		if hi > l.n {
			hi = l.n
		}
		var wa, wb uint64
		for u := base; u < hi; u++ {
			if nbrA[u] > 0 {
				wa |= 1 << uint(u-base)
			}
		}
		l.hbnA[wi] = wa
		if useB {
			for u := base; u < hi; u++ {
				if nbrB[u] > 0 {
					wb |= 1 << uint(u-base)
				}
			}
			l.hbnB[wi] = wb
		}
	}
}

// FillHBNComplete derives the whole neighbor lanes on a complete graph,
// where the engine keeps class totals instead of per-vertex counters: with
// totalA black vertices overall, a black vertex sees totalA−1 black
// neighbors and a non-black one sees totalA, so the hasANbr lane is
// all-ones for totalA ≥ 2, the complement of the black lane for totalA = 1,
// and zero otherwise — O(n/64) for the complete-graph refresh. The hasBNbr
// lane follows the same shape over the ClassB word lo∧hi with totalB.
func (l *Lanes) FillHBNComplete(totalA, totalB int) {
	l.FillHBNCompleteWords(totalA, totalB, 0, len(l.hbnA))
}

// FillHBNCompleteWords is FillHBNComplete restricted to words [loWord,
// hiWord) — one partition of the parallel full-rescan refresh.
func (l *Lanes) FillHBNCompleteWords(totalA, totalB, loWord, hiWord int) {
	switch {
	case totalA >= 2:
		for wi := loWord; wi < hiWord; wi++ {
			l.hbnA[wi] = l.mask(wi)
		}
	case totalA == 1:
		for wi := loWord; wi < hiWord; wi++ {
			l.hbnA[wi] = ^l.lo[wi] & l.mask(wi)
		}
	default:
		for wi := loWord; wi < hiWord; wi++ {
			l.hbnA[wi] = 0
		}
	}
	if !l.prog.spec.UseB {
		return
	}
	switch {
	case totalB >= 2:
		for wi := loWord; wi < hiWord; wi++ {
			l.hbnB[wi] = l.mask(wi)
		}
	case totalB == 1:
		for wi := loWord; wi < hiWord; wi++ {
			l.hbnB[wi] = ^(l.lo[wi] & l.hi[wi]) & l.mask(wi)
		}
	default:
		for wi := loWord; wi < hiWord; wi++ {
			l.hbnB[wi] = 0
		}
	}
}

// laneWords gathers word wi of the four predicate inputs (unengaged lanes
// read zero).
func (l *Lanes) laneWords(wi int) (lo, hi, a, b uint64) {
	lo, a = l.lo[wi], l.hbnA[wi]
	if l.prog.useHi {
		hi = l.hi[wi]
	}
	if l.prog.spec.UseB {
		b = l.hbnB[wi]
	}
	return lo, hi, a, b
}

// ActiveWord returns the activity word of word wi: the rule's compiled
// activity predicate over the lanes, masked by the live-vertex tail.
func (l *Lanes) ActiveWord(wi int) uint64 {
	lo, hi, a, b := l.laneWords(wi)
	return l.prog.active(lo, hi, a, b) & l.mask(wi)
}

// TouchedWord returns the worklist word of word wi — the vertices that may
// transition this round (active plus forced).
func (l *Lanes) TouchedWord(wi int) uint64 {
	lo, hi, a, b := l.laneWords(wi)
	return l.prog.touched(lo, hi, a, b) & l.mask(wi)
}

// CoreWord returns the stable-core word of word wi: black vertices with no
// black neighbor, i.e. the members of I_t among these 64 vertices. The lo
// bit is the black projection for every rule, so this is rule-generic.
func (l *Lanes) CoreWord(wi int) uint64 {
	return l.lo[wi] &^ l.hbnA[wi]
}

// BlackWord returns the black-projection lane word wi.
func (l *Lanes) BlackWord(wi int) uint64 { return l.lo[wi] }

// EvalWords evaluates one synchronous round over the words [loWord, hiWord):
// every touched vertex, in ascending vertex order, either draws a coin from
// its own stream (active: next code from the CoinHi/CoinLo maps) or takes
// its forced transition (ForcedOn/ForcedOff by its gate bit, no coin), and
// the vertices whose state changes are appended to dst as pending changes.
// Nothing is committed — the lanes stay frozen at the pre-round state, so
// concurrent workers may evaluate disjoint word ranges of the same round.
// It returns the extended change list and the number of random bits drawn,
// matching the scalar engine's accounting exactly: one bit per coin at bias
// 1/2, one 64-bit Bernoulli sample per coin otherwise.
func (l *Lanes) EvalWords(loWord, hiWord int, rngs []*xrand.Rand, bias float64, dst []Change) ([]Change, int64) {
	p := l.prog
	if p.fast2 {
		return l.evalWordsFlip(loWord, hiWord, rngs, bias, dst)
	}
	if p.coinConst {
		return l.evalWordsCoinConst(loWord, hiWord, rngs, bias, dst)
	}
	var drawn int64
	for wi := loWord; wi < hiWord; wi++ {
		low, hiw, aw, bw := l.laneWords(wi)
		m := l.mask(wi)
		tw := p.touched(low, hiw, aw, bw) & m
		if tw == 0 {
			continue
		}
		actw := tw
		if !p.sameTA {
			actw = p.active(low, hiw, aw, bw) & m
		}
		var gw uint64
		if p.spec.UseGate {
			gw = l.gate[wi]
		}
		base := wi * wordBits
		for w := tw; w != 0; w &= w - 1 {
			tz := uint(bits.TrailingZeros64(w))
			bit := uint64(1) << tz
			code := low>>tz&1 | hiw>>tz&1<<1
			var nc uint8
			if actw&bit != 0 {
				var coin bool
				if bias == 0.5 {
					drawn++
					coin = rngs[base+int(tz)].Bit()
				} else {
					drawn += 64
					coin = rngs[base+int(tz)].Bernoulli(bias)
				}
				if coin {
					nc = p.spec.CoinHi[code]
				} else {
					nc = p.spec.CoinLo[code]
				}
			} else if gw&bit != 0 {
				nc = p.spec.ForcedOn[code]
			} else {
				nc = p.spec.ForcedOff[code]
			}
			if nc != uint8(code) {
				dst = append(dst, Change{U: int32(base + int(tz)), S: p.spec.StateOf[nc]})
			}
		}
	}
	return dst, drawn
}

// evalWordsCoinConst is EvalWords specialized to coin-constant programs
// (the 3-state shape): the next code of an active vertex is one constant on
// coin 1 and another on coin 0, and every forced transition lands on a third
// constant, so after the per-vertex coin draws the new lo/hi code bits of a
// whole touched word compose from selector masks and the change word falls
// out of two XORs — no per-bit table lookups, and only the bits that
// actually change are revisited. Coins are still drawn from each active
// vertex's own stream in ascending order (draw order across vertices is
// irrelevant — the streams are independent), and changes are emitted in
// ascending vertex order exactly as the generic loop does.
func (l *Lanes) evalWordsCoinConst(loWord, hiWord int, rngs []*xrand.Rand, bias float64, dst []Change) ([]Change, int64) {
	p := l.prog
	cc := &p.cc
	stateOf := &p.spec.StateOf
	var drawn int64
	for wi := loWord; wi < hiWord; wi++ {
		low, hiw, aw, bw := l.laneWords(wi)
		m := l.mask(wi)
		tw := p.touched(low, hiw, aw, bw) & m
		if tw == 0 {
			continue
		}
		actw := tw
		if !p.sameTA {
			actw = p.active(low, hiw, aw, bw) & m
		}
		base := wi * wordBits
		var coinw uint64
		if bias == 0.5 {
			drawn += int64(bits.OnesCount64(actw))
			for w := actw; w != 0; w &= w - 1 {
				tz := uint(bits.TrailingZeros64(w))
				coinw |= rngs[base+int(tz)].Uint64() >> 63 << tz
			}
		} else {
			drawn += 64 * int64(bits.OnesCount64(actw))
			for w := actw; w != 0; w &= w - 1 {
				tz := uint(bits.TrailingZeros64(w))
				if rngs[base+int(tz)].Bernoulli(bias) {
					coinw |= 1 << tz
				}
			}
		}
		forced := tw &^ actw
		newLo := (coinw&cc.chLo|^coinw&cc.clLo)&actw | cc.fLo&forced
		newHi := (coinw&cc.chHi|^coinw&cc.clHi)&actw | cc.fHi&forced
		for w := tw & ((newLo ^ low) | (newHi ^ hiw)); w != 0; w &= w - 1 {
			tz := uint(bits.TrailingZeros64(w))
			nc := newLo>>tz&1 | newHi>>tz&1<<1
			dst = append(dst, Change{U: int32(base + int(tz)), S: stateOf[nc]})
		}
	}
	return dst, drawn
}

// evalWordsFlip is EvalWords specialized to the canonical 2-state shape
// (Touched ≡ Active ≡ ¬(lo ⊕ hasANbr), new state = the coin): the new code
// is the coin itself, so transitions accumulate as an XOR flip word and
// only the flipped bits are revisited — the hot loop the CI speed gate
// pins, kept free of the generic path's per-bit map lookups.
func (l *Lanes) evalWordsFlip(loWord, hiWord int, rngs []*xrand.Rand, bias float64, dst []Change) ([]Change, int64) {
	white, blk := l.prog.spec.StateOf[0], l.prog.spec.StateOf[1]
	var drawn int64
	for wi := loWord; wi < hiWord; wi++ {
		aw := ^(l.lo[wi] ^ l.hbnA[wi]) & l.mask(wi)
		if aw == 0 {
			continue
		}
		base := wi * wordBits
		bw := l.lo[wi]
		var flips uint64
		if bias == 0.5 {
			drawn += int64(bits.OnesCount64(aw))
			for w := aw; w != 0; w &= w - 1 {
				tz := uint(bits.TrailingZeros64(w))
				coin := rngs[base+int(tz)].Uint64() >> 63 // 1 = black, the scalar Bit()
				flips |= (coin ^ (bw >> tz & 1)) << tz
			}
		} else {
			drawn += 64 * int64(bits.OnesCount64(aw))
			for w := aw; w != 0; w &= w - 1 {
				tz := uint(bits.TrailingZeros64(w))
				var coin uint64
				if rngs[base+int(tz)].Bernoulli(bias) {
					coin = 1
				}
				flips |= (coin ^ (bw >> tz & 1)) << tz
			}
		}
		for w := flips; w != 0; w &= w - 1 {
			tz := uint(bits.TrailingZeros64(w))
			ns := white
			if bw>>tz&1 == 0 {
				ns = blk
			}
			dst = append(dst, Change{U: int32(base + int(tz)), S: ns})
		}
	}
	return dst, drawn
}
